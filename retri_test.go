package retri

import (
	"bytes"
	"math"
	"testing"
	"time"
)

func TestModelReexports(t *testing.T) {
	if got := EStatic(16, 16); got != 0.5 {
		t.Errorf("EStatic(16,16) = %v, want 0.5", got)
	}
	if got := PSuccess(9, 1); got != 1 {
		t.Errorf("PSuccess(9, T=1) = %v, want 1", got)
	}
	if got := CollisionRate(9, 1); got != 0 {
		t.Errorf("CollisionRate(9, T=1) = %v, want 0", got)
	}
	bits, e := OptimalIdentifierBits(16, 16, 32)
	if bits != 9 {
		t.Errorf("OptimalIdentifierBits = %d, want 9", bits)
	}
	if math.Abs(EAFF(16, 9, 16)-e) > 1e-12 {
		t.Error("EAFF at the optimum disagrees with OptimalIdentifierBits")
	}
}

func TestSpaceReexports(t *testing.T) {
	s, err := NewSpace(9)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 512 {
		t.Errorf("Size = %d", s.Size())
	}
	if _, err := NewSpace(0); err == nil {
		t.Error("NewSpace(0) accepted")
	}
	if MustSpace(4).Bits() != 4 {
		t.Error("MustSpace broken")
	}
}

func TestNetworkQuickstart(t *testing.T) {
	net := NewNetwork(WithSeed(42))
	a, err := net.AddNode(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.AddNode(2)
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	b.OnPacket(func(p []byte) { got = append([]byte{}, p...) })

	msg := []byte("hello over 27-byte frames")
	if err := a.Send(msg); err != nil {
		t.Fatal(err)
	}
	net.Run()

	if !bytes.Equal(got, msg) {
		t.Fatalf("received %q, want %q", got, msg)
	}
	if a.Sent() != 1 || b.Delivered() != 1 {
		t.Error("counters wrong")
	}
	if a.ID() != 1 || b.ID() != 2 {
		t.Error("IDs wrong")
	}
	if net.Counters().Sent == 0 {
		t.Error("no frames counted")
	}
	if b.Energy().RxBits == 0 {
		t.Error("no energy accounted")
	}
}

func TestNetworkOptions(t *testing.T) {
	p := DefaultRadioParams()
	p.MTU = 64
	net := NewNetwork(
		WithSeed(7),
		WithIdentifierBits(12),
		WithListening(),
		WithRadioParams(p),
		WithReassemblyTimeout(time.Second),
	)
	a, err := net.AddNode(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.AddNode(2)
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	b.OnPacket(func([]byte) { delivered++ })
	if err := a.Send(make([]byte, 500)); err != nil {
		t.Fatal(err)
	}
	net.Run()
	if delivered != 1 {
		t.Errorf("delivered = %d, want 1", delivered)
	}
}

func TestNetworkUnitDiskTopology(t *testing.T) {
	disk := NewUnitDisk(10)
	disk.Place(1, Point{X: 0, Y: 0})
	disk.Place(2, Point{X: 5, Y: 0})
	disk.Place(3, Point{X: 100, Y: 0})

	net := NewNetwork(WithSeed(9), WithTopology(disk))
	a, err := net.AddNode(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.AddNode(2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := net.AddNode(3)
	if err != nil {
		t.Fatal(err)
	}
	var bGot, cGot int
	b.OnPacket(func([]byte) { bGot++ })
	c.OnPacket(func([]byte) { cGot++ })
	if err := a.Send([]byte("local only")); err != nil {
		t.Fatal(err)
	}
	net.Run()
	if bGot != 1 || cGot != 0 {
		t.Errorf("b=%d c=%d, want 1, 0 (spatial locality)", bGot, cGot)
	}
}

func TestNetworkDuplicateNode(t *testing.T) {
	net := NewNetwork()
	if _, err := net.AddNode(1); err != nil {
		t.Fatal(err)
	}
	if _, err := net.AddNode(1); err == nil {
		t.Error("duplicate node accepted")
	}
}

func TestNetworkScheduleAndClock(t *testing.T) {
	net := NewNetwork()
	fired := false
	net.Schedule(time.Second, func() { fired = true })
	net.RunFor(2 * time.Second)
	if !fired {
		t.Error("scheduled function did not fire")
	}
	if net.Now() != 2*time.Second {
		t.Errorf("Now() = %v, want 2s", net.Now())
	}
}

func TestNodeChurn(t *testing.T) {
	net := NewNetwork(WithSeed(5))
	a, err := net.AddNode(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.AddNode(2)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	b.OnPacket(func([]byte) { got++ })
	b.SetUp(false)
	if err := a.Send([]byte("to nobody")); err != nil {
		t.Fatal(err)
	}
	net.Run()
	if got != 0 {
		t.Error("down node received a packet")
	}
	b.SetUp(true)
	if err := a.Send([]byte("to somebody")); err != nil {
		t.Fatal(err)
	}
	net.Run()
	if got != 1 {
		t.Errorf("delivered = %d after power-on, want 1", got)
	}
}

func TestNetworkDeterminism(t *testing.T) {
	run := func() (int64, time.Duration) {
		net := NewNetwork(WithSeed(1234), WithIdentifierBits(4))
		var nodes []*Node
		for i := 1; i <= 5; i++ {
			nd, err := net.AddNode(i)
			if err != nil {
				t.Fatal(err)
			}
			nodes = append(nodes, nd)
		}
		sink, err := net.AddNode(99)
		if err != nil {
			t.Fatal(err)
		}
		var delivered int64
		sink.OnPacket(func([]byte) { delivered++ })
		for round := 0; round < 10; round++ {
			for _, nd := range nodes {
				if err := nd.Send(bytes.Repeat([]byte{byte(round)}, 60)); err != nil {
					t.Fatal(err)
				}
			}
			net.Run()
		}
		return delivered, net.Now()
	}
	d1, t1 := run()
	d2, t2 := run()
	if d1 != d2 || t1 != t2 {
		t.Errorf("runs diverged: (%d, %v) vs (%d, %v)", d1, t1, d2, t2)
	}
}
