// Benchmarks regenerating every figure in the paper's evaluation plus the
// DESIGN.md ablations. Each benchmark target recomputes one experiment;
// simulation-backed targets use trimmed trial counts and durations so a
// bench pass stays tractable — cmd/retri-experiments runs the full-size
// versions and EXPERIMENTS.md records their output.
package retri

import (
	"runtime"
	"testing"
	"time"

	"retri/internal/energy"
	"retri/internal/experiment"
)

// BenchmarkFigure1 regenerates Figure 1: analytic efficiency vs identifier
// size for 16-bit data at T in {16, 256, 65536} against 16/32-bit static.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiment.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		if fig.Optima[16].H != 9 {
			b.Fatalf("optimum drifted: %d bits", fig.Optima[16].H)
		}
	}
}

// BenchmarkFigure2 regenerates Figure 2: the same sweep at 128-bit data.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Figure2(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3 regenerates Figure 3: efficiency vs offered load, static
// exhaustion against AFF's graceful degradation.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := experiment.Figure3()
		if len(fig.AFF) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// benchFigure4Config trims the Section 5.1 experiment for bench passes.
func benchFigure4Config() experiment.Figure4Config {
	cfg := experiment.DefaultFigure4Config()
	cfg.Trials = 2
	cfg.Duration = 10 * time.Second
	cfg.IDBits = []int{4, 6, 8}
	return cfg
}

// BenchmarkFigure4 regenerates Figure 4: measured collision rate vs
// identifier size for uniform and listening selection against Equation 4.
func BenchmarkFigure4(b *testing.B) {
	cfg := benchFigure4Config()
	for i := 0; i < b.N; i++ {
		res, err := experiment.Figure4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.TruthDelivered == 0 {
			b.Fatal("no packets delivered")
		}
	}
}

// benchFigure4SweepConfig is the 10-trial sweep used to compare the
// sequential and parallel runners: one identifier width, one selector, so
// the wall-clock ratio isolates trial-level parallelism.
func benchFigure4SweepConfig() experiment.Figure4Config {
	cfg := experiment.DefaultFigure4Config()
	cfg.Trials = 10
	cfg.Duration = 5 * time.Second
	cfg.IDBits = []int{6}
	cfg.Selectors = []experiment.SelectorKind{experiment.SelUniform}
	return cfg
}

// BenchmarkFigure4Sequential runs the 10-trial sweep on one goroutine —
// the baseline for BenchmarkFigure4Parallel.
func BenchmarkFigure4Sequential(b *testing.B) {
	cfg := benchFigure4SweepConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Figure4(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4Parallel runs the same sweep with trials fanned across
// all CPUs. On an n-core machine (n >= 2) wall clock should approach the
// sequential time divided by min(n, trials); outputs are byte-identical
// either way (TestFigure4ParallelByteIdentical).
func BenchmarkFigure4Parallel(b *testing.B) {
	cfg := benchFigure4SweepConfig()
	cfg.Parallelism = runtime.GOMAXPROCS(0)
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Figure4(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationListeningWindow sweeps the listening window size
// (Section 3.2/5.1's 2T rule ablated).
func BenchmarkAblationListeningWindow(b *testing.B) {
	cfg := benchFigure4Config()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.AblationListeningWindow(cfg, 6, []int{1, 10, 40}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationHiddenTerminal compares selectors under the footnote-3
// hidden-sender topology.
func BenchmarkAblationHiddenTerminal(b *testing.B) {
	cfg := benchFigure4Config()
	for i := 0; i < b.N; i++ {
		_, err := experiment.AblationHiddenTerminal(cfg, 5,
			[]experiment.SelectorKind{experiment.SelUniform, experiment.SelListening})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMACOverhead measures Section 4.4: header savings under
// RPC-like vs 802.11-like framing.
func BenchmarkAblationMACOverhead(b *testing.B) {
	base := experiment.DefaultEfficiencyConfig(experiment.Scheme{})
	base.Duration = 10 * time.Second
	base.PacketSize = 2
	schemes := []experiment.Scheme{
		experiment.AFFScheme(9, experiment.SelUniform),
		experiment.StaticScheme(32),
	}
	profiles := []energy.MACProfile{
		energy.BareProfile(), energy.RPCProfile(), energy.IEEE80211Profile(),
	}
	for i := 0; i < b.N; i++ {
		if _, err := experiment.AblationMACOverhead(base, schemes, profiles); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationTransactionLengths probes the model's equal-length
// assumption with mixed packet sizes.
func BenchmarkAblationTransactionLengths(b *testing.B) {
	cfg := benchFigure4Config()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.AblationTransactionLengths(cfg, 6, []int{20, 80, 200}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationEstimator compares the two density estimators on
// saturating and bursty workloads (Section 8's future-work question).
func BenchmarkAblationEstimator(b *testing.B) {
	cfg := benchFigure4Config()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.AblationEstimator(cfg, 6); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDynAddrChurn compares AFF against dynamic address
// allocation under node churn (Section 2.3's argument).
func BenchmarkAblationDynAddrChurn(b *testing.B) {
	cfg := experiment.DefaultChurnConfig()
	cfg.Nodes = 4
	cfg.Duration = 30 * time.Second
	for i := 0; i < b.N; i++ {
		_, err := experiment.AblationDynAddrChurn(cfg,
			[]time.Duration{10 * time.Second, 30 * time.Second})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScaling regenerates the network-growth experiment behind the
// paper's central claim: identifier size tracks density, not system size.
func BenchmarkScaling(b *testing.B) {
	cfg := experiment.DefaultScalingConfig()
	cfg.GridSizes = []int{3, 6}
	cfg.Duration = 20 * time.Second
	cfg.Trials = 1
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunScaling(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndPacket measures one 80-byte packet traversing the whole
// stack: fragmentation, five radio frames, reassembly.
func BenchmarkEndToEndPacket(b *testing.B) {
	net := NewNetwork(WithSeed(1))
	tx, err := net.AddNode(1)
	if err != nil {
		b.Fatal(err)
	}
	rx, err := net.AddNode(2)
	if err != nil {
		b.Fatal(err)
	}
	delivered := int64(0)
	rx.OnPacket(func([]byte) { delivered++ })
	packet := make([]byte, 80)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tx.Send(packet); err != nil {
			b.Fatal(err)
		}
		net.Run()
	}
	if delivered != int64(b.N) {
		b.Fatalf("delivered %d of %d", delivered, b.N)
	}
}

// BenchmarkAblationFloodIDBits regenerates the flood duplicate-suppression
// sweep: reach vs dedup-identifier width on a grid.
func BenchmarkAblationFloodIDBits(b *testing.B) {
	cfg := experiment.DefaultFloodConfig()
	cfg.Grid = 4
	cfg.IDBits = []int{3, 8}
	cfg.Duration = 20 * time.Second
	cfg.Trials = 1
	for i := 0; i < b.N; i++ {
		if _, err := experiment.AblationFloodIDBits(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
