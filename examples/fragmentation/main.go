// Fragmentation compares the two designs of the paper head to head on the
// same workload: five sensors streaming small packets at a sink, once with
// address-free fragmentation (9-bit RETRI identifiers) and once with the
// statically addressed baseline (16- and 32-bit addresses). It prints the
// measured Equation 1 efficiency beside the model's prediction.
package main

import (
	"fmt"
	"log"
	"time"

	"retri/internal/experiment"
	"retri/internal/model"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	schemes := []experiment.Scheme{
		experiment.AFFScheme(9, experiment.SelUniform),
		experiment.AFFScheme(9, experiment.SelListening),
		experiment.StaticScheme(16),
		experiment.StaticScheme(32),
	}

	fmt.Println("workload: 5 sensors streaming 80-byte packets for 60 simulated seconds")
	fmt.Printf("%-24s %12s %12s %14s\n", "scheme", "E (framed)", "E (protocol)", "delivered")
	for _, s := range schemes {
		cfg := experiment.DefaultEfficiencyConfig(s)
		cfg.Duration = time.Minute
		out, err := experiment.RunEfficiencyTrial(cfg, nil)
		if err != nil {
			return err
		}
		fmt.Printf("%-24s %12.4f %12.4f %14d\n",
			s.Label(), out.E(), out.EProtocol(), out.PacketsDelivered)
	}

	fmt.Println()
	fmt.Println("analytic model at D=640 bits (80-byte packets), T=5:")
	for _, h := range []int{9, 16, 32} {
		fmt.Printf("  EAFF(h=%2d) = %.4f   EStatic(h=%2d) = %.4f\n",
			h, model.EAFF(640, h, 5), h, model.EStatic(640, h))
	}
	fmt.Println()
	fmt.Println("(simulated efficiency sits below the model: real fragments pay a")
	fmt.Println(" per-fragment header and an introduction frame, while the model")
	fmt.Println(" prices a single header per transaction — the shape, AFF > static")
	fmt.Println(" and 16-bit static > 32-bit static, is what carries over.)")
	return nil
}
