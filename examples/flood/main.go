// Flood demonstrates multi-hop event dissemination with RETRI-keyed
// duplicate suppression: a 5×5 sensor grid floods an event from one
// corner; every relay suppresses duplicates by the event's short random
// identifier rather than a (source, sequence) pair. TTL scoping keeps the
// flood local — the paper's spatial-locality lever.
package main

import (
	"fmt"
	"log"

	"retri/internal/core"
	"retri/internal/flood"
	"retri/internal/radio"
	"retri/internal/sim"
	"retri/internal/xrand"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	eng := sim.NewEngine()
	src := xrand.NewSource(11)
	disk := radio.NewUnitDisk(7.5)
	med := radio.NewMedium(eng, disk, radio.DefaultParams(), src.Stream("medium"))

	const n = 5
	space := core.MustSpace(10)
	cfg := flood.Config{Space: space, TTL: 8}

	routers := make([]*flood.Router, 0, n*n)
	reached := make([]bool, n*n)
	id := 0
	for row := 0; row < n; row++ {
		for col := 0; col < n; col++ {
			nid := radio.NodeID(id)
			disk.Place(nid, radio.Point{X: float64(col) * 5, Y: float64(row) * 5})
			r := med.MustAttach(nid)
			sel := core.NewUniformSelector(space, src.Stream("sel", fmt.Sprint(id)))
			rt, err := flood.NewRouter(cfg, eng, r, sel, src.Stream("rng", fmt.Sprint(id)))
			if err != nil {
				return err
			}
			idx := id
			rt.OnMessage(func(p []byte) { reached[idx] = true })
			routers = append(routers, rt)
			id++
		}
	}

	// Corner node 0 floods an event.
	if err := routers[0].Originate([]byte("fire!")); err != nil {
		return err
	}
	eng.Run()

	fmt.Println("flood reach ('.' = origin, '#' = delivered, 'o' = missed):")
	for row := 0; row < n; row++ {
		for col := 0; col < n; col++ {
			idx := row*n + col
			switch {
			case idx == 0:
				fmt.Print(" .")
			case reached[idx]:
				fmt.Print(" #")
			default:
				fmt.Print(" o")
			}
		}
		fmt.Println()
	}

	var forwarded, suppressed int64
	for _, rt := range routers {
		forwarded += rt.Stats().Forwarded
		suppressed += rt.Stats().Suppressed
	}
	fmt.Printf("\n%d relays forwarded the event once each; %d duplicate copies were\n", forwarded, suppressed)
	fmt.Printf("suppressed using only a %d-bit ephemeral identifier — no source address anywhere.\n", space.Bits())
	return nil
}
