// Churn demonstrates the Section 2.3 argument: in a dynamic network,
// nodes running AFF start communicating the instant they join, while nodes
// that must first acquire a locally unique address through a
// claim-listen-defend protocol pay control traffic and configuration
// latency on every join. This example runs both schemes through the same
// churn schedule and prints the bill.
package main

import (
	"fmt"
	"log"
	"time"

	"retri/internal/experiment"
	"retri/internal/xrand"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := experiment.DefaultChurnConfig()
	cfg.Nodes = 6
	cfg.Duration = 3 * time.Minute

	fmt.Printf("%d nodes send a %d-byte reading every %v for %v; each node is replaced after an\n",
		cfg.Nodes, cfg.PacketSize, cfg.DataInterval, cfg.Duration)
	fmt.Println("exponential lifetime (a re-join = a fresh, unconfigured device).")
	fmt.Println()
	fmt.Printf("%10s %10s | %9s %9s | %13s %9s\n",
		"lifetime", "scheme", "E (Eq.1)", "delivered", "control bits", "rejoins")

	for _, lifetime := range []time.Duration{15 * time.Second, time.Minute, 3 * time.Minute} {
		run := cfg
		run.Lifetime = lifetime
		for _, scheme := range []string{"aff", "dynaddr"} {
			out, err := experiment.RunChurnTrial(run, scheme,
				xrand.NewSource(1).Child("example-churn", scheme, lifetime.String()))
			if err != nil {
				return err
			}
			fmt.Printf("%10v %10s | %9.4f %9d | %13d %9d\n",
				lifetime, scheme, out.E(), out.PacketsDelivered, out.ControlBits, out.Rejoins)
		}
	}
	fmt.Println()
	fmt.Println("AFF's efficiency is flat across churn rates — there is nothing to configure.")
	fmt.Println("The allocator's control traffic grows as lifetimes shrink; that overhead is")
	fmt.Println("amortized over a data rate of a few bytes per second, exactly the regime the")
	fmt.Println("paper calls 'potentially very inefficient'.")
	return nil
}
