// Codebook demonstrates Section 6's second RETRI application:
// attribute-based name compression. A sensor whose readings all share one
// long attribute name announces a (short RETRI code -> name) binding once,
// then tags every reading with the code. The example also stages a code
// collision between two sensors to show the loss-not-resolution
// discipline: the receiver kills the ambiguous binding and life goes on.
package main

import (
	"fmt"
	"log"

	"retri/internal/codebook"
	"retri/internal/core"
	"retri/internal/naming"
	"retri/internal/xrand"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	space := core.MustSpace(8) // 256 codebook codes
	name := naming.Name{
		{Key: "type", Op: naming.Is, Value: "temperature"},
		{Key: "quadrant", Op: naming.Is, Value: "north-east"},
		{Key: "building", Op: naming.Is, Value: "warehouse-7"},
		{Key: "unit", Op: naming.Is, Value: "celsius"},
	}

	enc := codebook.NewEncoder(core.NewUniformSelector(space, xrand.NewSource(3).Stream("codes")))
	dec := codebook.NewDecoder(space, 0, nil)

	// Send 100 readings under the compressed name.
	for i := 0; i < 100; i++ {
		msg, announcement, err := enc.EncodeReading(name, []byte{byte(20 + i%5)})
		if err != nil {
			return err
		}
		if announcement != nil {
			fmt.Printf("announcing binding once: %d bytes carrying %v\n",
				len(announcement), name)
			if _, _, _, err := dec.Ingest(announcement); err != nil {
				return err
			}
		}
		if _, _, _, err := dec.Ingest(msg); err != nil {
			return err
		}
	}

	announce, readings, full := enc.BitsStats()
	fmt.Printf("codebook cost:   %5d bits announcements + %5d bits readings = %d bits\n",
		announce, readings, announce+readings)
	fmt.Printf("inline-name cost: %d bits (the same 100 readings carrying the full name)\n", full)
	fmt.Printf("compression:     %.1fx\n", float64(full)/float64(announce+readings))
	fmt.Printf("decoder resolved %d readings\n\n", dec.Stats().Resolved)

	// Now a second sensor's code collides with an existing binding.
	other := naming.Name{{Key: "type", Op: naming.Is, Value: "humidity"}}
	liveCode, _, _, err := enc.CodeFor(name)
	if err != nil {
		return err
	}
	dec.HandleAnnouncement(codebook.Announcement{Code: liveCode, Name: other})
	fmt.Printf("collision: a second sensor announced %v under code %d\n", other, liveCode)
	fmt.Printf("decoder killed the binding (collisions so far: %d); readings under code %d now drop\n",
		dec.Stats().Collisions, liveCode)
	if _, err := dec.Resolve(codebook.Reading{Code: liveCode}); err != nil {
		fmt.Printf("resolve after collision: %v\n", err)
	}
	fmt.Println("both senders will draw fresh codes for their next epoch — the collision is ephemeral")
	return nil
}
