// Interest demonstrates Section 6's first RETRI application: interest
// reinforcement without addresses. Three sensors stream readings tagged
// with ephemeral stream identifiers; a sink reinforces the stream whose
// readings it finds interesting ("whoever just sent data with identifier
// 4, send more of that") and suppresses the rest. Watch the interesting
// sensor speed up and the boring ones back off.
package main

import (
	"fmt"
	"log"
	"time"

	"retri/internal/aff"
	"retri/internal/core"
	"retri/internal/node"
	"retri/internal/radio"
	"retri/internal/reinforce"
	"retri/internal/sim"
	"retri/internal/xrand"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	eng := sim.NewEngine()
	src := xrand.NewSource(7)
	med := radio.NewMedium(eng, radio.FullMesh{}, radio.DefaultParams(), src.Stream("medium"))

	streamSpace := core.MustSpace(6) // 64 ephemeral stream identifiers
	affCfg := aff.Config{Space: core.MustSpace(9), MTU: 27}

	newDriver := func(id radio.NodeID) (*node.AFFDriver, error) {
		sel := core.NewUniformSelector(affCfg.Space, src.Stream("aff", fmt.Sprint(id)))
		return node.NewAFF(med.MustAttach(id), affCfg, sel, node.AFFOptions{})
	}

	// Three sensors: #1 reports motion (interesting), #2 and #3 report
	// idle readings (boring).
	sources := make([]*reinforce.Source, 3)
	for i := range sources {
		d, err := newDriver(radio.NodeID(i + 1))
		if err != nil {
			return err
		}
		value := byte(0x00) // boring
		if i == 0 {
			value = 0xFF // motion!
		}
		s, err := reinforce.NewSource(reinforce.SourceConfig{
			Space:           streamSpace,
			InitialInterval: 4 * time.Second,
			MinInterval:     500 * time.Millisecond,
			MaxInterval:     30 * time.Second,
			EpochReadings:   32,
		}, eng, d, core.NewUniformSelector(streamSpace, src.Stream("stream", fmt.Sprint(i))),
			func() []byte { return []byte{value} })
		if err != nil {
			return err
		}
		d.SetPacketHandler(s.OnPacket)
		s.Start()
		sources[i] = s
	}

	// The sink reinforces motion readings and suppresses idle ones.
	sinkDriver, err := newDriver(99)
	if err != nil {
		return err
	}
	sink, err := reinforce.NewSink(reinforce.SinkConfig{
		Space:            streamSpace,
		FeedbackInterval: 8 * time.Second,
		Window:           20 * time.Second,
	}, eng, sinkDriver, func(r reinforce.Reading) int {
		if len(r.Value) > 0 && r.Value[0] == 0xFF {
			return reinforce.More
		}
		return reinforce.Less
	})
	if err != nil {
		return err
	}
	sinkDriver.SetPacketHandler(sink.OnPacket)
	sink.Start()

	fmt.Println("t=0s    all sensors report every 4s")
	eng.RunUntil(2 * time.Minute)

	fmt.Println("t=120s  after reinforcement:")
	for i, s := range sources {
		kind := "idle  "
		if i == 0 {
			kind = "motion"
		}
		st := s.Stats()
		fmt.Printf("  sensor %d (%s): interval %6v, sent %3d readings, feedback +%d/-%d\n",
			i+1, kind, s.Interval(), st.ReadingsSent, st.MoreReceived, st.LessReceived)
	}
	fmt.Printf("sink: heard %d readings, sent %d feedback messages totalling %d bits\n",
		sink.Stats().ReadingsHeard, sink.Stats().FeedbackSent, sink.Stats().FeedbackBits)
	saved := reinforce.FeedbackBitsSaved(streamSpace, 48)
	fmt.Printf("each feedback names a %d-bit ephemeral identifier instead of a 48-bit address: %d bits saved per message\n",
		streamSpace.Bits(), saved)
	return nil
}
