// Quickstart: build a simulated sensor network, broadcast a packet through
// the address-free fragmentation service, and watch it arrive — no node
// addresses anywhere on the air.
package main

import (
	"fmt"
	"log"

	"retri"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A full-mesh network of 27-byte-frame radios, like the paper's
	// five-laptop testbed.
	net := retri.NewNetwork(retri.WithSeed(42))

	sensor, err := net.AddNode(1)
	if err != nil {
		return err
	}
	sink, err := net.AddNode(2)
	if err != nil {
		return err
	}

	sink.OnPacket(func(p []byte) {
		fmt.Printf("sink received %d bytes: %q\n", len(p), p)
	})

	// An 80-byte packet fragments into 1 introduction + 4 data frames,
	// all tagged with one random, ephemeral 9-bit identifier.
	msg := []byte("motion detected in the north-east quadrant; confidence 0.92 -- padding!")
	if err := sensor.Send(msg); err != nil {
		return err
	}

	net.Run()

	fmt.Printf("sensor sent %d packet(s); sink delivered %d\n", sensor.Sent(), sink.Delivered())
	fmt.Printf("frames on air: %d, energy at sink: %d bits received\n",
		net.Counters().Sent, sink.Energy().RxBits)

	// The model says a 9-bit identifier is optimal for 16-bit data at
	// T=16 concurrent transactions:
	bits, e := retri.OptimalIdentifierBits(16, 16, 32)
	fmt.Printf("model: optimal identifier width for D=16, T=16 is %d bits (E=%.3f)\n", bits, e)
	return nil
}
