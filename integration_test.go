package retri

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"retri/internal/aff"
	"retri/internal/core"
	"retri/internal/node"
	"retri/internal/radio"
	"retri/internal/sim"
	"retri/internal/staticaddr"
	"retri/internal/xrand"
)

// TestSpatialReuseOfIdentifiers demonstrates the paper's core scaling
// claim (Section 3.2): "nodes that are far apart may use the same
// identifier at the same time." Two radio cells beyond range of each other
// run transactions under the SAME identifier simultaneously; both deliver.
func TestSpatialReuseOfIdentifiers(t *testing.T) {
	eng := sim.NewEngine()
	src := xrand.NewSource(61)
	disk := radio.NewUnitDisk(10)
	med := radio.NewMedium(eng, disk, radio.DefaultParams(), src.Stream("m"))

	// Cell A around the origin; cell B a kilometre away.
	disk.Place(1, radio.Point{X: 0, Y: 0})
	disk.Place(2, radio.Point{X: 5, Y: 0})
	disk.Place(3, radio.Point{X: 1000, Y: 0})
	disk.Place(4, radio.Point{X: 1005, Y: 0})

	cfg := aff.Config{Space: core.MustSpace(4), MTU: 27}
	mk := func(id radio.NodeID, sel core.Selector) *node.AFFDriver {
		d, err := node.NewAFF(med.MustAttach(id), cfg, sel, node.AFFOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	// Both senders are pinned to identifier 11.
	txA := mk(1, core.NewSequentialSelector(cfg.Space, 11))
	rxA := mk(2, core.NewSequentialSelector(cfg.Space, 0))
	txB := mk(3, core.NewSequentialSelector(cfg.Space, 11))
	rxB := mk(4, core.NewSequentialSelector(cfg.Space, 0))

	var gotA, gotB []byte
	rxA.SetPacketHandler(func(p []byte) { gotA = append([]byte{}, p...) })
	rxB.SetPacketHandler(func(p []byte) { gotB = append([]byte{}, p...) })

	pktA := bytes.Repeat([]byte{0xA1}, 60)
	pktB := bytes.Repeat([]byte{0xB2}, 60)
	if err := txA.SendPacket(pktA); err != nil {
		t.Fatal(err)
	}
	if err := txB.SendPacket(pktB); err != nil {
		t.Fatal(err)
	}
	eng.Run()

	if !bytes.Equal(gotA, pktA) {
		t.Error("cell A did not deliver its packet")
	}
	if !bytes.Equal(gotB, pktB) {
		t.Error("cell B did not deliver its packet")
	}
	if c := rxA.Reassembler().Stats().Conflicts + rxB.Reassembler().Stats().Conflicts; c != 0 {
		t.Errorf("conflicts = %d; distant cells must reuse identifiers freely", c)
	}
}

// TestNoCorruptDeliveryUnderLoss is the end-to-end safety property the
// checksum buys: under heavy random frame loss, every packet that IS
// delivered is byte-identical to one that was sent; losses only ever
// manifest as missing packets.
func TestNoCorruptDeliveryUnderLoss(t *testing.T) {
	params := radio.DefaultParams()
	params.FrameLoss = 0.3

	eng := sim.NewEngine()
	src := xrand.NewSource(62)
	med := radio.NewMedium(eng, radio.FullMesh{}, params, src.Stream("m"))
	cfg := aff.Config{Space: core.MustSpace(12), MTU: 27, ReassemblyTimeout: time.Second}

	sent := make(map[string]bool)
	var delivered, corrupt int

	rxRadio := med.MustAttach(0)
	rxSel := core.NewUniformSelector(cfg.Space, src.Stream("rx"))
	rx, err := node.NewAFF(rxRadio, cfg, rxSel, node.AFFOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rx.SetPacketHandler(func(p []byte) {
		delivered++
		if !sent[string(p)] {
			corrupt++
		}
	})

	payloadRng := src.Stream("payload")
	for i := 1; i <= 3; i++ {
		sel := core.NewUniformSelector(cfg.Space, src.Stream("sel", fmt.Sprint(i)))
		d, err := node.NewAFF(med.MustAttach(radio.NodeID(i)), cfg, sel, node.AFFOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 30; j++ {
			pkt := make([]byte, 60)
			for k := range pkt {
				pkt[k] = byte(payloadRng.Uint64())
			}
			sent[string(pkt)] = true
			if err := d.SendPacket(pkt); err != nil {
				t.Fatal(err)
			}
		}
	}
	eng.Run()

	if corrupt != 0 {
		t.Fatalf("%d corrupt deliveries out of %d", corrupt, delivered)
	}
	if delivered == 0 {
		t.Fatal("nothing delivered despite 70% frame survival")
	}
	// With 30% frame loss and 5-fragment packets, far from everything
	// survives — but a decent fraction must.
	if delivered < 5 {
		t.Errorf("only %d/90 packets delivered; loss model suspiciously harsh", delivered)
	}
}

// TestEnergyFollowsHeaderSize verifies the paper's bottom line end to end:
// on identical workloads, the AFF network spends fewer Joules per useful
// bit than the statically addressed one.
func TestEnergyFollowsHeaderSize(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	run := func(bits int, static bool) (joulesPerBit float64) {
		eng := sim.NewEngine()
		src := xrand.NewSource(63)
		med := radio.NewMedium(eng, radio.FullMesh{}, radio.DefaultParams(), src.Stream("m"))

		type sender interface{ SendPacket([]byte) error }
		var rxDelivered func() int64
		mkNode := func(id radio.NodeID) sender {
			r := med.MustAttach(id)
			if static {
				d, err := node.NewStatic(r, staticCfg(bits), uint64(id))
				if err != nil {
					t.Fatal(err)
				}
				if id == 0 {
					rxDelivered = func() int64 { return d.Reassembler().Stats().DeliveredBits }
				}
				return d
			}
			cfg := aff.Config{Space: core.MustSpace(bits), MTU: 27, ReassemblyTimeout: time.Second}
			sel := core.NewUniformSelector(cfg.Space, src.Stream("sel", fmt.Sprint(id)))
			d, err := node.NewAFF(r, cfg, sel, node.AFFOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if id == 0 {
				rxDelivered = func() int64 { return d.Reassembler().Stats().DeliveredBits }
			}
			return d
		}

		mkNode(0) // sink
		senders := []sender{mkNode(1), mkNode(2), mkNode(3)}
		for round := 0; round < 40; round++ {
			for _, s := range senders {
				if err := s.SendPacket(bytes.Repeat([]byte{byte(round)}, 8)); err != nil {
					t.Fatal(err)
				}
			}
			eng.Run()
		}

		var txBits int64
		for id := radio.NodeID(0); id <= 3; id++ {
			txBits += med.Radio(id).Meter().TxBits
		}
		useful := rxDelivered()
		if useful == 0 {
			t.Fatal("nothing delivered")
		}
		return float64(txBits) / float64(useful)
	}

	affCost := run(9, false)
	staticCost := run(32, true)
	if affCost >= staticCost {
		t.Errorf("AFF cost %.3f bits-on-air per useful bit should beat static %.3f", affCost, staticCost)
	}
}

func staticCfg(bits int) staticaddr.Config {
	return staticaddr.Config{AddrBits: bits, MTU: 27, ReassemblyTimeout: time.Second}
}
