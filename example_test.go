package retri_test

import (
	"fmt"

	"retri"
)

// The minimal end-to-end flow: two nodes, one packet, no addresses on the
// air.
func ExampleNetwork() {
	net := retri.NewNetwork(retri.WithSeed(42))
	sensor, err := net.AddNode(1)
	if err != nil {
		panic(err)
	}
	sink, err := net.AddNode(2)
	if err != nil {
		panic(err)
	}

	sink.OnPacket(func(p []byte) {
		fmt.Printf("received %d bytes\n", len(p))
	})
	if err := sensor.Send(make([]byte, 80)); err != nil {
		panic(err)
	}
	net.Run()
	// Output: received 80 bytes
}

// The paper's headline analytic result: for 16-bit data and 16 concurrent
// transactions, a 9-bit random identifier maximizes efficiency — beating
// both a 16-bit and a 32-bit static address.
func ExampleOptimalIdentifierBits() {
	bits, e := retri.OptimalIdentifierBits(16, 16, 32)
	fmt.Printf("optimal width: %d bits\n", bits)
	fmt.Printf("AFF efficiency: %.3f\n", e)
	fmt.Printf("static 16-bit:  %.3f\n", retri.EStatic(16, 16))
	fmt.Printf("static 32-bit:  %.3f\n", retri.EStatic(16, 32))
	// Output:
	// optimal width: 9 bits
	// AFF efficiency: 0.604
	// static 16-bit:  0.500
	// static 32-bit:  0.333
}

// Equation 4: the probability that a transaction survives contention
// shrinks with density and grows with identifier width.
func ExamplePSuccess() {
	for _, bits := range []int{4, 9, 16} {
		fmt.Printf("H=%2d: P(success at T=16) = %.4f\n", bits, retri.PSuccess(bits, 16))
	}
	// Output:
	// H= 4: P(success at T=16) = 0.1443
	// H= 9: P(success at T=16) = 0.9430
	// H=16: P(success at T=16) = 0.9995
}

// A flight recorder captures the frame-level event stream for debugging:
// attach a ring tracer and dump it after the run.
func ExampleNetwork_SetTracer() {
	net := retri.NewNetwork(retri.WithSeed(3))
	ring := retri.NewTraceRing(64)
	net.SetTracer(ring)

	a, _ := net.AddNode(1)
	b, _ := net.AddNode(2)
	b.OnPacket(func([]byte) {})
	if err := a.Send([]byte("traced")); err != nil {
		panic(err)
	}
	net.Run()

	// Two frames (introduction + one data fragment), each traced as a
	// send and a delivery.
	events := ring.Events()
	fmt.Printf("recorded %d events; first kind: %v\n", len(events), events[0].Kind)
	// Output: recorded 4 events; first kind: sent
}

// Spatial locality is what lets identifiers stay small: distant cells
// reuse identifiers freely, so AddNode works against a unit-disk topology
// too.
func ExampleWithTopology() {
	disk := retri.NewUnitDisk(10)
	disk.Place(1, retri.Point{X: 0})
	disk.Place(2, retri.Point{X: 5})

	net := retri.NewNetwork(retri.WithSeed(1), retri.WithTopology(disk))
	a, _ := net.AddNode(1)
	b, _ := net.AddNode(2)
	b.OnPacket(func(p []byte) { fmt.Printf("neighbour heard %d bytes\n", len(p)) })
	if err := a.Send([]byte("local broadcast")); err != nil {
		panic(err)
	}
	net.Run()
	// Output: neighbour heard 15 bytes
}
