package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"retri/internal/span"
)

func TestParseQuickRespectsExplicitFlags(t *testing.T) {
	// -quick alone applies the fast-pass defaults.
	o, err := parseArgs([]string{"-quick"})
	if err != nil {
		t.Fatal(err)
	}
	if o.trials != 3 || o.duration != 20*time.Second {
		t.Errorf("quick defaults = (%d, %v), want (3, 20s)", o.trials, o.duration)
	}
	// Explicit -trials and -duration must survive -quick in either flag
	// order.
	for _, args := range [][]string{
		{"-quick", "-trials", "7", "-duration", "45s"},
		{"-trials", "7", "-duration", "45s", "-quick"},
	} {
		o, err = parseArgs(args)
		if err != nil {
			t.Fatal(err)
		}
		if o.trials != 7 {
			t.Errorf("%v: trials = %d, want user's 7", args, o.trials)
		}
		if o.duration != 45*time.Second {
			t.Errorf("%v: duration = %v, want user's 45s", args, o.duration)
		}
	}
	// One explicit flag still lets quick shrink the other.
	o, err = parseArgs([]string{"-quick", "-trials", "7"})
	if err != nil {
		t.Fatal(err)
	}
	if o.trials != 7 || o.duration != 20*time.Second {
		t.Errorf("partial override = (%d, %v), want (7, 20s)", o.trials, o.duration)
	}
}

func TestParseFormatValidated(t *testing.T) {
	for _, ok := range []string{"table", "csv"} {
		if _, err := parseArgs([]string{"-format", ok}); err != nil {
			t.Errorf("-format %s rejected: %v", ok, err)
		}
	}
	_, err := parseArgs([]string{"-format", "cvs"})
	if err == nil {
		t.Fatal("typo'd -format cvs accepted")
	}
	for _, want := range []string{"cvs", "table", "csv"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("format error %q does not mention %q", err, want)
		}
	}
}

func TestParseParallel(t *testing.T) {
	o, err := parseArgs(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.parallel != 1 {
		t.Errorf("default parallel = %d, want sequential 1", o.parallel)
	}
	o, err = parseArgs([]string{"-parallel", "0"})
	if err != nil {
		t.Fatal(err)
	}
	if o.parallel != runtime.GOMAXPROCS(0) {
		t.Errorf("-parallel 0 resolved to %d, want GOMAXPROCS %d", o.parallel, runtime.GOMAXPROCS(0))
	}
	o, err = parseArgs([]string{"-parallel", "4"})
	if err != nil {
		t.Fatal(err)
	}
	if o.parallel != 4 {
		t.Errorf("-parallel 4 resolved to %d", o.parallel)
	}
}

func TestRunAnalyticFigures(t *testing.T) {
	for _, fig := range []string{"1", "2", "3"} {
		if err := run([]string{"-figure", fig}); err != nil {
			t.Errorf("figure %s: %v", fig, err)
		}
		if err := run([]string{"-figure", fig, "-format", "csv"}); err != nil {
			t.Errorf("figure %s csv: %v", fig, err)
		}
	}
}

func TestRunFigure4Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	if err := run([]string{"-figure", "4", "-trials", "1", "-duration", "5s"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownSelections(t *testing.T) {
	if err := run([]string{"-figure", "7"}); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := run([]string{"-ablation", "nonsense"}); err == nil {
		t.Error("unknown ablation accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunQuickAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	if err := run([]string{"-ablation", "lengths", "-quick"}); err != nil {
		t.Fatal(err)
	}
}

// TestRunAblationCSV: satellite for the silent `-format csv` bug — every
// ablation (here, the fastest ones) must honor CSV instead of ignoring it.
func TestRunAblationCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	if err := run([]string{"-ablation", "lengths", "-quick", "-format", "csv"}); err != nil {
		t.Fatal(err)
	}
}

// TestRunMetricsAndTraceOutputs drives a tiny figure-4 run with every
// observability flag and validates the side files: a JSONL trace, a
// manifest+metrics document, and both pprof profiles.
func TestRunMetricsAndTraceOutputs(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	dir := t.TempDir()
	metricsOut := filepath.Join(dir, "metrics.json")
	traceOut := filepath.Join(dir, "trace.jsonl")
	cpuOut := filepath.Join(dir, "cpu.pprof")
	memOut := filepath.Join(dir, "mem.pprof")
	args := []string{
		"-figure", "4", "-trials", "2", "-duration", "2s", "-parallel", "2",
		"-metrics-out", metricsOut, "-trace-out", traceOut,
		"-cpuprofile", cpuOut, "-memprofile", memOut,
	}
	if err := run(args); err != nil {
		t.Fatal(err)
	}

	// Trace: one JSON object per line, with the core fields.
	raw, err := os.ReadFile(traceOut)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines := 0
	for sc.Scan() {
		lines++
		var ev struct {
			Kind string `json:"kind"`
			Node int    `json:"node"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("trace line %d is not JSON: %v", lines, err)
		}
		if ev.Kind == "" {
			t.Fatalf("trace line %d lacks a kind: %s", lines, sc.Text())
		}
	}
	if lines == 0 {
		t.Error("trace file is empty")
	}

	// Metrics document: manifest echoing the command line plus a snapshot.
	raw, err = os.ReadFile(metricsOut)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Manifest struct {
			Command     string   `json:"command"`
			Args        []string `json:"args"`
			Seed        uint64   `json:"seed"`
			GoVersion   string   `json:"go_version"`
			WallClockNS int64    `json:"wall_clock_ns"`
			Experiments []struct {
				Name        string `json:"name"`
				Trials      int    `json:"trials"`
				WallClockNS int64  `json:"wall_clock_ns"`
				Timings     []struct {
					Trial int   `json:"trial"`
					NS    int64 `json:"ns"`
				} `json:"trial_timings"`
			} `json:"experiments"`
		} `json:"manifest"`
		Metrics struct {
			Counters []struct {
				Name  string `json:"name"`
				Value int64  `json:"value"`
			} `json:"counters"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("metrics file is not JSON: %v", err)
	}
	if doc.Manifest.Command != "retri-experiments" {
		t.Errorf("manifest command = %q", doc.Manifest.Command)
	}
	if len(doc.Manifest.Args) != len(args) {
		t.Errorf("manifest args = %v, want the full command line", doc.Manifest.Args)
	}
	if doc.Manifest.GoVersion != runtime.Version() {
		t.Errorf("manifest go_version = %q", doc.Manifest.GoVersion)
	}
	if doc.Manifest.WallClockNS <= 0 {
		t.Error("manifest wall clock missing")
	}
	if len(doc.Manifest.Experiments) != 1 {
		t.Fatalf("experiments = %+v, want one figure-4 record", doc.Manifest.Experiments)
	}
	exp := doc.Manifest.Experiments[0]
	if exp.Name != "figure-4" {
		t.Errorf("experiment name = %q", exp.Name)
	}
	// 2 trials x 2 ID widths x 2 selectors in the default figure-4 sweep;
	// just require at least one timing per reported trial.
	if exp.Trials == 0 || len(exp.Timings) != exp.Trials {
		t.Errorf("trial timings = %d entries, manifest says %d trials", len(exp.Timings), exp.Trials)
	}
	for _, tt := range exp.Timings {
		if tt.NS <= 0 {
			t.Errorf("trial %d has non-positive wall clock %d", tt.Trial, tt.NS)
		}
	}
	found := false
	for _, c := range doc.Metrics.Counters {
		if c.Name == "sim_events_processed_total" && c.Value > 0 {
			found = true
		}
	}
	if !found {
		t.Error("snapshot lacks sim_events_processed_total")
	}

	// Profiles exist and are non-empty (pprof files are gzipped protobuf;
	// content is opaque here).
	for _, p := range []string{cpuOut, memOut} {
		st, err := os.Stat(p)
		if err != nil {
			t.Errorf("profile %s missing: %v", p, err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

// captureStdout runs the CLI with the given arguments and returns its
// stdout bytes, failing the test on a run error.
func captureStdout(t *testing.T, args ...string) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(r)
		done <- buf.String()
	}()
	runErr := run(args)
	w.Close()
	os.Stdout = old
	out := <-done
	if runErr != nil {
		t.Fatal(runErr)
	}
	return out
}

// TestRunStdoutIdenticalWithObservability is the CLI-level half of the
// zero-perturbation guarantee: stdout bytes must not change when every
// observability flag is on.
func TestRunStdoutIdenticalWithObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	capture := func(extra ...string) string {
		t.Helper()
		return captureStdout(t, append([]string{"-figure", "4", "-trials", "1", "-duration", "2s"}, extra...)...)
	}
	dir := t.TempDir()
	plain := capture()
	observed := capture(
		"-metrics-out", filepath.Join(dir, "m.json"),
		"-trace-out", filepath.Join(dir, "t.jsonl"),
	)
	if plain != observed {
		t.Errorf("stdout changed under observability:\n--- plain ---\n%s--- observed ---\n%s", plain, observed)
	}
	if !strings.Contains(plain, "=== Figure 4 ===") {
		t.Errorf("unexpected baseline output:\n%s", plain)
	}
}

// TestRunSpanFlagsZeroPerturbation is the CLI-level guarantee for the
// span-tracing flags: on every figure that wires spans, stdout must stay
// byte-identical with `-span-out`/`-chrome-trace` on, sequentially and in
// parallel — and the parallel ledger must be byte-identical to the
// sequential one (capture-then-merge, end to end).
func TestRunSpanFlagsZeroPerturbation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	bases := map[string][]string{
		"dynamics":   {"-figure", "dynamics", "-trials", "2", "-duration", "3s", "-scenarios", "churn", "-policies", "fixed,adaptive"},
		"strategies": {"-figure", "strategies", "-trials", "2", "-duration", "3s", "-strategies", "uniform,listening"},
		"recovery":   {"-figure", "recovery", "-trials", "2", "-duration", "3s", "-faults", "none,iid"},
	}
	for name, base := range bases {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			seqOut := filepath.Join(dir, "seq.jsonl")
			parOut := filepath.Join(dir, "par.jsonl")
			chromeOut := filepath.Join(dir, "trace.json")

			plain := captureStdout(t, base...)
			spanned := captureStdout(t, append(base, "-span-out", seqOut, "-chrome-trace", chromeOut)...)
			if plain != spanned {
				t.Errorf("stdout changed under -span-out:\n--- plain ---\n%s--- spanned ---\n%s", plain, spanned)
			}
			parallel := captureStdout(t, append(base, "-parallel", "4", "-span-out", parOut)...)
			if plain != parallel {
				t.Errorf("stdout changed under parallel -span-out:\n--- plain ---\n%s--- parallel ---\n%s", plain, parallel)
			}

			seqRaw, err := os.ReadFile(seqOut)
			if err != nil {
				t.Fatal(err)
			}
			parRaw, err := os.ReadFile(parOut)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(seqRaw, parRaw) {
				t.Error("parallel span ledger differs from sequential")
			}
			recs, _, err := span.ReadJSONL(bytes.NewReader(seqRaw))
			if err != nil {
				t.Fatalf("span ledger does not round-trip: %v", err)
			}
			if len(recs) == 0 {
				t.Fatal("span ledger is empty")
			}
			for i, r := range recs {
				if r.Outcome == "" || r.Trial == "" {
					t.Fatalf("span record %d lacks outcome/trial: %+v", i, r)
				}
			}

			chromeRaw, err := os.ReadFile(chromeOut)
			if err != nil {
				t.Fatal(err)
			}
			var chrome struct {
				DisplayTimeUnit string            `json:"displayTimeUnit"`
				TraceEvents     []json.RawMessage `json:"traceEvents"`
			}
			if err := json.Unmarshal(chromeRaw, &chrome); err != nil {
				t.Fatalf("chrome trace is not JSON: %v", err)
			}
			if chrome.DisplayTimeUnit != "ms" || len(chrome.TraceEvents) == 0 {
				t.Errorf("chrome trace malformed: unit=%q events=%d", chrome.DisplayTimeUnit, len(chrome.TraceEvents))
			}
		})
	}
}

// TestRunManifestSchemaParity: the run manifest must attribute engine
// accounting (and, when audited, the oracle report) to every sweep with
// one schema — strategies and recovery had been the odd ones out.
func TestRunManifestSchemaParity(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	figures := map[string][]string{
		"strategies": {"-figure", "strategies", "-strategies", "uniform", "-trials", "1", "-duration", "3s"},
		"recovery":   {"-figure", "recovery", "-faults", "iid", "-trials", "1", "-duration", "3s", "-oracle"},
		"dynamics":   {"-figure", "dynamics", "-scenarios", "churn", "-policies", "fixed", "-trials", "1", "-duration", "3s", "-oracle"},
	}
	for name, args := range figures {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			mOut := filepath.Join(dir, "m.json")
			sOut := filepath.Join(dir, "s.jsonl")
			captureStdout(t, append(args, "-metrics-out", mOut, "-span-out", sOut)...)
			raw, err := os.ReadFile(mOut)
			if err != nil {
				t.Fatal(err)
			}
			var doc struct {
				Manifest struct {
					TraceEventsDropped *int64 `json:"trace_events_dropped"`
					SpansTraced        int64  `json:"spans_traced"`
					Experiments        []struct {
						Name   string           `json:"name"`
						Sim    map[string]int64 `json:"sim"`
						Oracle map[string]int64 `json:"oracle"`
					} `json:"experiments"`
				} `json:"manifest"`
			}
			if err := json.Unmarshal(raw, &doc); err != nil {
				t.Fatalf("metrics file is not JSON: %v", err)
			}
			if doc.Manifest.TraceEventsDropped == nil {
				t.Error("manifest lacks trace_events_dropped")
			} else if *doc.Manifest.TraceEventsDropped != 0 {
				t.Errorf("trace_events_dropped = %d on an untraced run", *doc.Manifest.TraceEventsDropped)
			}
			if doc.Manifest.SpansTraced == 0 {
				t.Error("manifest spans_traced = 0 with -span-out set")
			}
			if len(doc.Manifest.Experiments) != 1 {
				t.Fatalf("experiments = %d records, want 1", len(doc.Manifest.Experiments))
			}
			exp := doc.Manifest.Experiments[0]
			if exp.Sim["sim_events_processed_total"] == 0 {
				t.Errorf("%s record lacks engine accounting: sim=%v", exp.Name, exp.Sim)
			}
			if exp.Oracle["oracle_tx_opened_total"] == 0 {
				t.Errorf("%s record lacks the oracle report: oracle=%v", exp.Name, exp.Oracle)
			}
		})
	}
}

func TestParseFaultAndARQFlags(t *testing.T) {
	o, err := parseArgs(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.faults != "all" || o.arqRetries != 8 {
		t.Errorf("defaults = (%q, %d), want (all, 8)", o.faults, o.arqRetries)
	}
	if _, err := parseArgs([]string{"-faults", "iid,ge+crash"}); err != nil {
		t.Errorf("valid fault list rejected: %v", err)
	}
	if _, err := parseArgs([]string{"-faults", "volcano"}); err == nil || !strings.Contains(err.Error(), "volcano") {
		t.Errorf("unknown fault model: err = %v", err)
	}
	if _, err := parseArgs([]string{"-arq-retries", "-1"}); err == nil {
		t.Error("negative retry budget accepted")
	}
	if _, err := parseArgs([]string{"-arq-rto", "0s"}); err == nil {
		t.Error("zero RTO accepted")
	}
	if _, err := parseArgs([]string{"-arq-rto", "2s", "-arq-max-rto", "1s"}); err == nil {
		t.Error("RTO above its cap accepted")
	}
}

func TestRunRecoveryTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	args := []string{"-figure", "recovery", "-trials", "1", "-duration", "4s", "-faults", "none,iid"}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	if err := run(append(args, "-format", "csv", "-parallel", "2")); err != nil {
		t.Fatal(err)
	}
}

func TestRunRecoveryScriptFile(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	path := filepath.Join(t.TempDir(), "sched.txt")
	if err := os.WriteFile(path, []byte("2s crash 1\n3s restart 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	args := []string{"-figure", "recovery", "-trials", "1", "-duration", "6s",
		"-faults", "none", "-fault-script", path}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
}

func TestRunFaultScriptErrors(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "nope.txt")
	err := run([]string{"-figure", "recovery", "-fault-script", missing})
	if err == nil {
		t.Fatal("missing fault script accepted")
	}
	if !strings.Contains(err.Error(), "nope.txt") {
		t.Errorf("error %q does not name the file", err)
	}

	malformed := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(malformed, []byte("# header\n1s explode 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-figure", "recovery", "-fault-script", malformed})
	if err == nil {
		t.Fatal("malformed fault script accepted")
	}
	for _, want := range []string{"bad.txt", "line 2", "explode"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q lacks %q", err, want)
		}
	}
}

func TestParseMultihopFlags(t *testing.T) {
	o, err := parseArgs(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.multihopArms != "all" || o.regions != 3 {
		t.Errorf("defaults = (%q, %d), want (all, 3)", o.multihopArms, o.regions)
	}
	if _, err := parseArgs([]string{"-arms", "fixed,dynaddr"}); err != nil {
		t.Errorf("valid arm list rejected: %v", err)
	}
	if _, err := parseArgs([]string{"-arms", "telepathic"}); err == nil || !strings.Contains(err.Error(), "telepathic") {
		t.Errorf("unknown arm: err = %v", err)
	}
	if _, err := parseArgs([]string{"-regions", "0"}); err == nil {
		t.Error("zero region grid accepted")
	}
	if _, err := parseArgs([]string{"-regions", "17"}); err == nil {
		t.Error("oversized region grid accepted")
	}
}

func TestRunMultihopTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	args := []string{"-figure", "multihop", "-trials", "1", "-duration", "4s", "-regions", "2"}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	if err := run(append(args, "-format", "csv", "-parallel", "2", "-arms", "fixed,dynaddr")); err != nil {
		t.Fatal(err)
	}
}
