package main

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestParseQuickRespectsExplicitFlags(t *testing.T) {
	// -quick alone applies the fast-pass defaults.
	o, err := parseArgs([]string{"-quick"})
	if err != nil {
		t.Fatal(err)
	}
	if o.trials != 3 || o.duration != 20*time.Second {
		t.Errorf("quick defaults = (%d, %v), want (3, 20s)", o.trials, o.duration)
	}
	// Explicit -trials and -duration must survive -quick in either flag
	// order.
	for _, args := range [][]string{
		{"-quick", "-trials", "7", "-duration", "45s"},
		{"-trials", "7", "-duration", "45s", "-quick"},
	} {
		o, err = parseArgs(args)
		if err != nil {
			t.Fatal(err)
		}
		if o.trials != 7 {
			t.Errorf("%v: trials = %d, want user's 7", args, o.trials)
		}
		if o.duration != 45*time.Second {
			t.Errorf("%v: duration = %v, want user's 45s", args, o.duration)
		}
	}
	// One explicit flag still lets quick shrink the other.
	o, err = parseArgs([]string{"-quick", "-trials", "7"})
	if err != nil {
		t.Fatal(err)
	}
	if o.trials != 7 || o.duration != 20*time.Second {
		t.Errorf("partial override = (%d, %v), want (7, 20s)", o.trials, o.duration)
	}
}

func TestParseFormatValidated(t *testing.T) {
	for _, ok := range []string{"table", "csv"} {
		if _, err := parseArgs([]string{"-format", ok}); err != nil {
			t.Errorf("-format %s rejected: %v", ok, err)
		}
	}
	_, err := parseArgs([]string{"-format", "cvs"})
	if err == nil {
		t.Fatal("typo'd -format cvs accepted")
	}
	for _, want := range []string{"cvs", "table", "csv"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("format error %q does not mention %q", err, want)
		}
	}
}

func TestParseParallel(t *testing.T) {
	o, err := parseArgs(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.parallel != 1 {
		t.Errorf("default parallel = %d, want sequential 1", o.parallel)
	}
	o, err = parseArgs([]string{"-parallel", "0"})
	if err != nil {
		t.Fatal(err)
	}
	if o.parallel != runtime.GOMAXPROCS(0) {
		t.Errorf("-parallel 0 resolved to %d, want GOMAXPROCS %d", o.parallel, runtime.GOMAXPROCS(0))
	}
	o, err = parseArgs([]string{"-parallel", "4"})
	if err != nil {
		t.Fatal(err)
	}
	if o.parallel != 4 {
		t.Errorf("-parallel 4 resolved to %d", o.parallel)
	}
}

func TestRunAnalyticFigures(t *testing.T) {
	for _, fig := range []string{"1", "2", "3"} {
		if err := run([]string{"-figure", fig}); err != nil {
			t.Errorf("figure %s: %v", fig, err)
		}
		if err := run([]string{"-figure", fig, "-format", "csv"}); err != nil {
			t.Errorf("figure %s csv: %v", fig, err)
		}
	}
}

func TestRunFigure4Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	if err := run([]string{"-figure", "4", "-trials", "1", "-duration", "5s"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownSelections(t *testing.T) {
	if err := run([]string{"-figure", "7"}); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := run([]string{"-ablation", "nonsense"}); err == nil {
		t.Error("unknown ablation accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunQuickAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	if err := run([]string{"-ablation", "lengths", "-quick"}); err != nil {
		t.Fatal(err)
	}
}
