package main

import "testing"

func TestRunAnalyticFigures(t *testing.T) {
	for _, fig := range []string{"1", "2", "3"} {
		if err := run([]string{"-figure", fig}); err != nil {
			t.Errorf("figure %s: %v", fig, err)
		}
		if err := run([]string{"-figure", fig, "-format", "csv"}); err != nil {
			t.Errorf("figure %s csv: %v", fig, err)
		}
	}
}

func TestRunFigure4Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	if err := run([]string{"-figure", "4", "-trials", "1", "-duration", "5s"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownSelections(t *testing.T) {
	if err := run([]string{"-figure", "7"}); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := run([]string{"-ablation", "nonsense"}); err == nil {
		t.Error("unknown ablation accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunQuickAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	if err := run([]string{"-ablation", "lengths", "-quick"}); err != nil {
		t.Fatal(err)
	}
}
