// Command retri-experiments regenerates the data behind every figure in
// the paper's evaluation (Figures 1-4) plus the ablations catalogued in
// DESIGN.md.
//
// Usage:
//
//	retri-experiments -figure all
//	retri-experiments -figure 4 -trials 10 -duration 2m
//	retri-experiments -figure 4 -parallel 0      # trials across all CPUs
//	retri-experiments -ablation mac
//	retri-experiments -ablation all -quick
//	retri-experiments -figure recovery -faults ge,crash -arq-retries 8
//	retri-experiments -figure recovery -fault-script sched.txt
//	retri-experiments -figure dynamics -scenarios waypoint,churn
//	retri-experiments -figure dynamics -mobility-script moves.txt
//	retri-experiments -figure chaos -chaos-profiles storm,cascade
//	retri-experiments -figure chaos -soak 10s -duration 10m
//	retri-experiments -figure multihop -regions 4
//	retri-experiments -figure multihop -arms fixed,dynaddr -quick
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"retri/internal/chaos"
	"retri/internal/energy"
	"retri/internal/experiment"
	"retri/internal/faults"
	"retri/internal/mobility"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "retri-experiments:", err)
		os.Exit(1)
	}
}

// options is the parsed, validated command line.
type options struct {
	figure   string
	ablation string
	trials   int
	duration time.Duration
	seed     uint64
	quick    bool
	format   string
	parallel int
	// Fault-injection knobs for -figure recovery.
	faults      string
	faultScript string
	arqRetries  int
	arqRTO      time.Duration
	arqMaxRTO   time.Duration
	// Dynamics knobs for -figure dynamics.
	scenarios      string
	policies       string
	oracle         bool
	mobilityScript string
	// Strategy list for -figure strategies.
	strategies string
	// Massive-population knobs for -figure massive.
	nodes string
	// shardWindow, when positive, runs dynamics and chaos trials under the
	// region-sharded driver in single-tile mode with this lookahead.
	shardWindow time.Duration
	// trialsSet/durationSet/nodesSet record whether the user set the flag
	// (or -quick resolved it): -figure massive keeps its own scale
	// defaults — a 2-minute million-node trial is not a default anyone
	// wants by accident — unless overridden explicitly.
	trialsSet   bool
	durationSet bool
	nodesSet    bool
	// Chaos knobs for -figure chaos.
	chaosProfiles string
	soak          time.Duration
	// Multihop knobs for -figure multihop.
	multihopArms string
	regions      int
	// Observability outputs. All of them write to side files or stderr;
	// stdout is byte-identical with or without them.
	traceOut    string
	metricsOut  string
	spanOut     string
	chromeTrace string
	progress    bool
	cpuprofile  string
	memprofile  string
}

// parseArgs parses and validates flags. Quick-mode defaults apply only to
// flags the user did not set explicitly (fs.Visit covers exactly the set
// flags), so `-quick -trials 5` keeps the user's 5 trials.
func parseArgs(args []string) (options, error) {
	fs := flag.NewFlagSet("retri-experiments", flag.ContinueOnError)
	var o options
	fs.StringVar(&o.figure, "figure", "", "figure to regenerate: 1, 2, 3, 4, scaling, strategies, recovery, dynamics, chaos, multihop or all")
	fs.StringVar(&o.ablation, "ablation", "", "ablation to run: window, hidden, mac, lengths, flood, estimator, lifetime, churn or all")
	fs.IntVar(&o.trials, "trials", 10, "trials per configuration (figure 4 and ablations)")
	fs.DurationVar(&o.duration, "duration", 2*time.Minute, "simulated time per trial")
	fs.Uint64Var(&o.seed, "seed", 1, "master random seed")
	fs.BoolVar(&o.quick, "quick", false, "shrink trials/duration for a fast pass")
	fs.StringVar(&o.format, "format", "table", "output format for figures: table or csv")
	fs.IntVar(&o.parallel, "parallel", 1, "concurrent trials per experiment; 0 uses all CPUs, 1 is sequential")
	fs.StringVar(&o.traceOut, "trace-out", "", "write the radio event stream as JSON Lines to this file")
	fs.StringVar(&o.metricsOut, "metrics-out", "", "write a JSON run manifest and metrics snapshot to this file")
	fs.StringVar(&o.spanOut, "span-out", "", "write per-transaction lifecycle spans as JSON Lines to this file (query with retri-trace)")
	fs.StringVar(&o.chromeTrace, "chrome-trace", "", "write transaction spans as Chrome trace_event JSON (open in chrome://tracing or Perfetto)")
	fs.BoolVar(&o.progress, "progress", false, "report per-trial progress on stderr")
	fs.StringVar(&o.cpuprofile, "cpuprofile", "", "write a pprof CPU profile to this file")
	fs.StringVar(&o.memprofile, "memprofile", "", "write a pprof heap profile to this file")
	fs.StringVar(&o.faults, "faults", "all", "fault models for -figure recovery: comma list of none, iid, ge, crash, flap, corrupt, ge+crash; or all")
	fs.StringVar(&o.faultScript, "fault-script", "", "fault schedule file for -figure recovery (adds the script fault model)")
	fs.IntVar(&o.arqRetries, "arq-retries", 8, "ARQ retry budget per packet (-figure recovery)")
	fs.DurationVar(&o.arqRTO, "arq-rto", 250*time.Millisecond, "ARQ initial retransmission timeout (-figure recovery)")
	fs.DurationVar(&o.arqMaxRTO, "arq-max-rto", 8*time.Second, "ARQ backoff cap (-figure recovery)")
	fs.StringVar(&o.scenarios, "scenarios", "all", "dynamics scenarios for -figure dynamics: comma list of stationary, waypoint, churn, group; or all")
	fs.StringVar(&o.policies, "policies", "all", "width policies for -figure dynamics: comma list of fixed, adaptive, adaptive-turnover; or all")
	fs.BoolVar(&o.oracle, "oracle", false, "attach the omniscient conformance oracle to -figure dynamics and recovery trials (strategies always audits)")
	fs.StringVar(&o.mobilityScript, "mobility-script", "", "mobility schedule file for -figure dynamics (adds the script scenario)")
	fs.StringVar(&o.strategies, "strategies", "all", "identifier strategies for -figure strategies: comma list of uniform, listening, sequential, permutation, perdest, timeprefix; or all")
	fs.StringVar(&o.nodes, "nodes", "10000,100000,1000000", "population sizes for -figure massive, comma-separated")
	fs.DurationVar(&o.shardWindow, "shard-window", 0, "run -figure dynamics/chaos trials under the sharded driver (single tile) with this lookahead window; 0 uses the legacy engine")
	fs.StringVar(&o.chaosProfiles, "chaos-profiles", "all", "compound-fault profiles for -figure chaos: comma list of calm, storm, cascade; or all")
	fs.DurationVar(&o.soak, "soak", 0, "soak mode for -figure chaos: audit oracle invariants at this interval inside every trial (0 disables)")
	fs.StringVar(&o.multihopArms, "arms", "all", "protocol arms for -figure multihop: comma list of fixed, adaptive-turnover, dynaddr; or all")
	fs.IntVar(&o.regions, "regions", 3, "per-region width table grid for -figure multihop: the field splits into regions x regions cells")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	// Fault flags are validated up front so a typo fails fast even when the
	// recovery figure is not the first thing to run.
	if _, err := experiment.ParseFaultKinds(o.faults); err != nil {
		return options{}, err
	}
	if _, err := experiment.ParseDynScenarios(o.scenarios); err != nil {
		return options{}, err
	}
	if _, err := experiment.ParseWidthPolicies(o.policies); err != nil {
		return options{}, err
	}
	if _, err := experiment.ParseStrategies(o.strategies); err != nil {
		return options{}, err
	}
	if _, err := chaos.ParseProfiles(o.chaosProfiles); err != nil {
		return options{}, err
	}
	if _, err := experiment.ParsePopulations(o.nodes); err != nil {
		return options{}, err
	}
	if _, err := experiment.ParseMultihopArms(o.multihopArms); err != nil {
		return options{}, err
	}
	if o.shardWindow < 0 {
		return options{}, fmt.Errorf("invalid -shard-window %v: must be non-negative", o.shardWindow)
	}
	if o.regions < 1 || o.regions > 16 {
		return options{}, fmt.Errorf("invalid -regions %d: want a grid side in [1, 16]", o.regions)
	}
	if o.soak < 0 {
		return options{}, fmt.Errorf("invalid -soak %v: must be non-negative", o.soak)
	}
	if o.arqRetries < 0 {
		return options{}, fmt.Errorf("invalid -arq-retries %d: must be non-negative", o.arqRetries)
	}
	if o.arqRTO <= 0 || o.arqMaxRTO < o.arqRTO {
		return options{}, fmt.Errorf("invalid ARQ timeouts: want 0 < -arq-rto <= -arq-max-rto, got %v/%v", o.arqRTO, o.arqMaxRTO)
	}
	switch o.format {
	case "table", "csv":
	default:
		return options{}, fmt.Errorf("invalid -format %q: accepted values are table, csv", o.format)
	}
	set := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if o.quick {
		if !set["trials"] {
			o.trials = 3
		}
		if !set["duration"] {
			o.duration = 20 * time.Second
		}
	}
	o.trialsSet = set["trials"]
	o.durationSet = set["duration"]
	o.nodesSet = set["nodes"]
	if o.parallel <= 0 {
		o.parallel = runtime.GOMAXPROCS(0)
	}
	if o.figure == "" && o.ablation == "" {
		o.figure, o.ablation = "all", "all"
	}
	return o, nil
}

// result is anything an experiment produces: a human table and a CSV.
// Every figure and ablation result implements both, so -format csv is
// honored uniformly.
type result interface {
	Render() string
	CSV() string
}

// emit prints a result to stdout in the selected format.
func emit(title string, useCSV bool, r result) {
	if useCSV {
		fmt.Print(r.CSV())
		return
	}
	fmt.Println("=== " + title + " ===")
	fmt.Println(r.Render())
}

func run(args []string) error {
	o, err := parseArgs(args)
	if err != nil {
		return err
	}
	col, err := newCollector(o, args)
	if err != nil {
		return err
	}

	base := experiment.DefaultFigure4Config()
	base.Seed = o.seed
	base.Trials = o.trials
	base.Duration = o.duration
	base.Parallelism = o.parallel
	base.Obs = col.obs()
	base.Hooks = col.hooks()

	useCSV := o.format == "csv"
	figures := map[string]func() error{
		"1": func() error { return printEfficiencyFigure(1, useCSV) },
		"2": func() error { return printEfficiencyFigure(2, useCSV) },
		"3": func() error {
			emit("Figure 3", useCSV, experiment.Figure3())
			return nil
		},
		"4": func() error {
			res, err := experiment.Figure4(base)
			if err != nil {
				return err
			}
			emit("Figure 4", useCSV, res)
			return nil
		},
		"recovery": func() error {
			cfg := experiment.DefaultRecoveryConfig()
			cfg.Seed = o.seed
			cfg.Trials = o.trials
			cfg.Duration = o.duration
			cfg.Parallelism = o.parallel
			cfg.Obs = col.obs()
			cfg.Hooks = col.hooks()
			cfg.ARQ.RetryBudget = o.arqRetries
			cfg.ARQ.RTO = o.arqRTO
			cfg.ARQ.MaxRTO = o.arqMaxRTO
			cfg.Oracle = o.oracle
			kinds, err := experiment.ParseFaultKinds(o.faults)
			if err != nil {
				return err
			}
			cfg.Faults = kinds
			if o.faultScript != "" {
				script, err := loadFaultScript(o.faultScript)
				if err != nil {
					return err
				}
				cfg.Script = script
				cfg.Faults = append(cfg.Faults, experiment.FaultScript)
			}
			res, err := experiment.Recovery(cfg)
			if err != nil {
				return err
			}
			emit("Recovery under faults", useCSV, res)
			return nil
		},
		"dynamics": func() error {
			cfg := experiment.DefaultDynamicsConfig()
			cfg.Seed = o.seed
			cfg.Trials = o.trials
			cfg.Duration = o.duration
			cfg.Parallelism = o.parallel
			cfg.Obs = col.obs()
			cfg.Hooks = col.hooks()
			scenarios, err := experiment.ParseDynScenarios(o.scenarios)
			if err != nil {
				return err
			}
			cfg.Scenarios = scenarios
			policies, err := experiment.ParseWidthPolicies(o.policies)
			if err != nil {
				return err
			}
			cfg.Policies = policies
			cfg.Oracle = o.oracle
			cfg.ShardWindow = o.shardWindow
			if o.mobilityScript != "" {
				script, err := loadMobilityScript(o.mobilityScript)
				if err != nil {
					return err
				}
				cfg.Script = script
				cfg.Scenarios = append(cfg.Scenarios, experiment.DynScript)
			}
			res, err := experiment.Dynamics(cfg)
			if err != nil {
				return err
			}
			emit("Dynamics: identifier sizing under mobility and churn", useCSV, res)
			return nil
		},
		"chaos": func() error {
			cfg := experiment.DefaultChaosConfig()
			cfg.Seed = o.seed
			cfg.Trials = o.trials
			cfg.Duration = o.duration
			cfg.Parallelism = o.parallel
			cfg.Obs = col.obs()
			cfg.Hooks = col.hooks()
			cfg.ARQ.RetryBudget = o.arqRetries
			cfg.ARQ.RTO = o.arqRTO
			cfg.ARQ.MaxRTO = o.arqMaxRTO
			profiles, err := chaos.ParseProfiles(o.chaosProfiles)
			if err != nil {
				return err
			}
			cfg.Profiles = profiles
			cfg.CheckpointEvery = o.soak
			cfg.ShardWindow = o.shardWindow
			res, err := experiment.Chaos(cfg)
			if err != nil {
				return err
			}
			emit("Chaos: compound faults and graceful degradation", useCSV, res)
			// The always-on audit is a gate, not a column: any safety
			// violation in any cell fails the run so CI catches it.
			for _, r := range res.Rows {
				if r.Oracle == nil {
					return fmt.Errorf("chaos %s: no oracle report attached", r.Label())
				}
				if err := r.Oracle.Check(); err != nil {
					return fmt.Errorf("chaos %s: %w", r.Label(), err)
				}
				if r.SoakViolations > 0 {
					return fmt.Errorf("chaos %s: %d soak checkpoint violations (first: %s)",
						r.Label(), r.SoakViolations, r.FirstViolation)
				}
			}
			return nil
		},
		"multihop": func() error {
			cfg := experiment.DefaultMultihopConfig()
			cfg.Seed = o.seed
			cfg.Parallelism = o.parallel
			cfg.Obs = col.obs()
			cfg.Hooks = col.hooks()
			cfg.ShardWindow = o.shardWindow
			cfg.Regions = o.regions
			// Multihop keeps its own trial count (each 2-minute trial
			// saturates a 250 kb/s channel); explicit flags still win, and
			// -quick shrinks to a smoke-sized pass.
			if o.trialsSet {
				cfg.Trials = o.trials
			}
			if o.durationSet || o.quick {
				cfg.Duration = o.duration
			}
			if o.quick && !o.trialsSet {
				cfg.Trials = 1
			}
			arms, err := experiment.ParseMultihopArms(o.multihopArms)
			if err != nil {
				return err
			}
			cfg.Arms = arms
			res, err := experiment.Multihop(cfg)
			if err != nil {
				return err
			}
			emit("Multi-hop regional dynamics", useCSV, res)
			// The oracle rides every AFF trial; any wire-format violation
			// fails the run so CI catches it.
			for _, r := range res.Rows {
				if r.Arm == experiment.MultihopDynaddr {
					continue
				}
				if r.Oracle == nil {
					return fmt.Errorf("multihop %s: no oracle report attached", r.Arm)
				}
				if err := r.Oracle.Check(); err != nil {
					return fmt.Errorf("multihop %s: %w", r.Arm, err)
				}
			}
			return nil
		},
		"massive": func() error {
			cfg := experiment.DefaultMassiveConfig()
			cfg.Seed = o.seed
			cfg.Parallelism = o.parallel
			cfg.Hooks = col.hooks()
			// Massive keeps its own scale defaults (a million-node trial
			// at the generic 2-minute default is a footgun); explicit
			// flags still win, and -quick shrinks to a laptop-sized pass.
			if o.trialsSet {
				cfg.Trials = o.trials
			}
			if o.durationSet {
				cfg.Duration = o.duration
			} else if o.quick {
				cfg.Duration = 5 * time.Second
			}
			if o.nodesSet || o.quick {
				pops, err := experiment.ParsePopulations(o.nodes)
				if err != nil {
					return err
				}
				if o.nodesSet {
					cfg.Populations = pops
				} else {
					cfg.Populations = []int{2_000, 20_000}
				}
			}
			policies, err := experiment.ParseWidthPolicies(o.policies)
			if err != nil {
				return err
			}
			// The sharded sensor model has no idle-gap estimator; the plain
			// "adaptive" arm and the default "all" both resolve to the
			// turnover estimator it does implement.
			cfg.Policies = massivePolicies(policies)
			res, err := experiment.Massive(cfg)
			if err != nil {
				return err
			}
			emit("Massive population: width tracks T, not N", useCSV, res)
			// Wall-clock throughput is real but nondeterministic, so it
			// goes to stderr: stdout stays byte-stable across -parallel.
			fmt.Fprint(os.Stderr, res.PerfNote())
			return res.Check()
		},
		"strategies": func() error {
			cfg := experiment.DefaultStrategiesConfig()
			cfg.Seed = o.seed
			cfg.Trials = o.trials
			cfg.Duration = o.duration
			cfg.Parallelism = o.parallel
			cfg.Obs = col.obs()
			cfg.Hooks = col.hooks()
			names, err := experiment.ParseStrategies(o.strategies)
			if err != nil {
				return err
			}
			cfg.Strategies = names
			res, err := experiment.Strategies(cfg)
			if err != nil {
				return err
			}
			emit("Identifier strategies", useCSV, res)
			return nil
		},
		"scaling": func() error {
			cfg := experiment.DefaultScalingConfig()
			cfg.Seed = o.seed
			cfg.Parallelism = o.parallel
			cfg.Hooks = col.hooks()
			if o.quick {
				cfg.GridSizes = []int{3, 6}
				cfg.Duration = 20 * time.Second
				cfg.Trials = 2
			}
			res, err := experiment.RunScaling(cfg)
			if err != nil {
				return err
			}
			emit("Scaling: identifier size vs network size", useCSV, res)
			return nil
		},
	}
	ablations := map[string]func() error{
		"window": func() error {
			res, err := experiment.AblationListeningWindow(base, 6, []int{1, 2, 5, 10, 20, 40})
			if err != nil {
				return err
			}
			emit("Ablation: listening window", useCSV, res)
			return nil
		},
		"hidden": func() error {
			res, err := experiment.AblationHiddenTerminal(base, 5,
				[]experiment.SelectorKind{experiment.SelUniform, experiment.SelListening, experiment.SelListeningNotify})
			if err != nil {
				return err
			}
			emit("Ablation: hidden terminals", useCSV, res)
			return nil
		},
		"mac": func() error {
			cfg := experiment.DefaultEfficiencyConfig(experiment.Scheme{})
			cfg.Seed = o.seed
			cfg.Duration = o.duration
			cfg.Parallelism = o.parallel
			cfg.Hooks = col.hooks()
			cfg.PacketSize = 2 // few-bit sensor messages (Section 4.4's regime)
			res, err := experiment.AblationMACOverhead(cfg,
				[]experiment.Scheme{
					experiment.AFFScheme(9, experiment.SelUniform),
					experiment.StaticScheme(16),
					experiment.StaticScheme(32),
				},
				[]energy.MACProfile{energy.BareProfile(), energy.RPCProfile(), energy.IEEE80211Profile()})
			if err != nil {
				return err
			}
			emit("Ablation: MAC framing overhead", useCSV, res)
			return nil
		},
		"lengths": func() error {
			res, err := experiment.AblationTransactionLengths(base, 6, []int{20, 80, 200})
			if err != nil {
				return err
			}
			emit("Ablation: transaction lengths", useCSV, res)
			return nil
		},
		"flood": func() error {
			cfg := experiment.DefaultFloodConfig()
			cfg.Seed = o.seed
			cfg.Parallelism = o.parallel
			cfg.Hooks = col.hooks()
			if o.quick {
				cfg.Grid = 4
				cfg.Duration = 20 * time.Second
				cfg.Trials = 2
			}
			res, err := experiment.AblationFloodIDBits(cfg)
			if err != nil {
				return err
			}
			emit("Ablation: flood duplicate-suppression identifiers", useCSV, res)
			return nil
		},
		"estimator": func() error {
			res, err := experiment.AblationEstimator(base, 6)
			if err != nil {
				return err
			}
			emit("Ablation: density estimators", useCSV, res)
			return nil
		},
		"lifetime": func() error {
			cfg := experiment.DefaultLifetimeConfig(o.seed)
			cfg.Parallelism = o.parallel
			cfg.Hooks = col.hooks()
			if o.quick {
				cfg.Duration = 15 * time.Second
			}
			res, err := experiment.RunLifetime(cfg, experiment.DefaultLifetimeSchemes())
			if err != nil {
				return err
			}
			emit("Ablation: energy per useful bit / network lifetime", useCSV, res)
			return nil
		},
		"churn": func() error {
			cfg := experiment.DefaultChurnConfig()
			cfg.Seed = o.seed
			cfg.Parallelism = o.parallel
			cfg.Hooks = col.hooks()
			if o.quick {
				cfg.Duration = time.Minute
			}
			res, err := experiment.AblationDynAddrChurn(cfg,
				[]time.Duration{10 * time.Second, 30 * time.Second, 2 * time.Minute})
			if err != nil {
				return err
			}
			emit("Ablation: dynamic allocation under churn", useCSV, res)
			return nil
		},
	}

	runSet := func(sel, prefix string, m map[string]func() error, order []string) error {
		invoke := func(k string) error {
			col.begin(prefix + k)
			defer col.end()
			return m[k]()
		}
		if sel == "" {
			return nil
		}
		if sel == "all" {
			for _, k := range order {
				if err := invoke(k); err != nil {
					return err
				}
			}
			return nil
		}
		if _, ok := m[sel]; !ok {
			return fmt.Errorf("unknown selection %q", sel)
		}
		return invoke(sel)
	}

	// "all" keeps its historical set; the recovery, dynamics and chaos
	// figures are harnesses beyond the paper's own plots, so they run only
	// when selected explicitly and existing outputs stay byte-identical.
	runErr := runSet(o.figure, "figure-", figures, []string{"1", "2", "3", "4", "scaling"})
	if runErr == nil {
		runErr = runSet(o.ablation, "ablation-", ablations, []string{"window", "hidden", "mac", "lengths", "flood", "estimator", "lifetime", "churn"})
	}
	if err := col.close(); err != nil && runErr == nil {
		runErr = err
	}
	return runErr
}

// massivePolicies maps the -policies selection onto the arms the sharded
// sensor model implements: "adaptive" folds into "adaptive-turnover" (the
// model's only estimator), duplicates collapse, order is preserved.
func massivePolicies(in []experiment.WidthPolicyKind) []experiment.WidthPolicyKind {
	var out []experiment.WidthPolicyKind
	seen := make(map[experiment.WidthPolicyKind]bool)
	for _, p := range in {
		if p == experiment.WidthAdaptive {
			p = experiment.WidthAdaptiveTurnover
		}
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// loadFaultScript parses a fault schedule file, wrapping parse errors
// (which carry line numbers) with the file name.
func loadFaultScript(path string) (*faults.Script, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("fault script: %w", err)
	}
	defer f.Close()
	s, err := faults.ParseScript(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

// loadMobilityScript parses a mobility schedule file, wrapping parse
// errors (which carry line numbers) with the file name.
func loadMobilityScript(path string) (*mobility.Script, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("mobility script: %w", err)
	}
	defer f.Close()
	s, err := mobility.ParseScript(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

func printEfficiencyFigure(n int, useCSV bool) error {
	var (
		fig experiment.EfficiencyFigure
		err error
	)
	if n == 1 {
		fig, err = experiment.Figure1()
	} else {
		fig, err = experiment.Figure2()
	}
	if err != nil {
		return err
	}
	emit(fmt.Sprintf("Figure %d", n), useCSV, fig)
	return nil
}
