package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"retri/internal/experiment"
	"retri/internal/metrics"
	"retri/internal/trace"
)

// trialTiming is one trial's wall-clock cost in the run manifest. Trial
// indexes arrive in completion order under parallelism; the manifest
// records wall-clock reality, not simulation output, so it is the one
// artifact that legitimately differs between runs.
type trialTiming struct {
	Trial int   `json:"trial"`
	NS    int64 `json:"ns"`
}

// experimentRecord is one experiment's entry in the run manifest.
type experimentRecord struct {
	Name        string        `json:"name"`
	Trials      int           `json:"trials"`
	WallClockNS int64         `json:"wall_clock_ns"`
	Timings     []trialTiming `json:"trial_timings,omitempty"`

	started time.Time
}

// manifest reproduces the run: full command line, resolved config, and
// where the wall-clock went.
type manifest struct {
	Command     string              `json:"command"`
	Args        []string            `json:"args"`
	Figure      string              `json:"figure,omitempty"`
	Ablation    string              `json:"ablation,omitempty"`
	Seed        uint64              `json:"seed"`
	Trials      int                 `json:"trials"`
	Duration    string              `json:"duration"`
	Parallel    int                 `json:"parallel"`
	Quick       bool                `json:"quick"`
	Format      string              `json:"format"`
	GoVersion   string              `json:"go_version"`
	StartedAt   string              `json:"started_at"`
	WallClockNS int64               `json:"wall_clock_ns"`
	Experiments []*experimentRecord `json:"experiments"`
}

// metricsDocument is the -metrics-out file: the manifest beside the merged
// metrics snapshot.
type metricsDocument struct {
	Manifest manifest         `json:"manifest"`
	Metrics  metrics.Snapshot `json:"metrics"`
}

// collector owns the CLI's observability state: the merged metrics
// registry, the streaming trace writer, the run manifest, profiling, and
// progress display. Everything it produces goes to side files or stderr —
// stdout stays byte-identical to a run without it.
type collector struct {
	opts     options
	registry *metrics.Registry
	tracer   trace.Tracer

	traceFile *os.File
	traceBuf  *bufio.Writer
	cpuFile   *os.File

	man           manifest
	cur           *experimentRecord
	started       time.Time
	progressShown bool
}

// newCollector opens the output files and starts profiling per the parsed
// options. A collector with no observability flags set is inert.
func newCollector(o options, args []string) (*collector, error) {
	c := &collector{
		opts:    o,
		started: time.Now(),
		man: manifest{
			Command:   "retri-experiments",
			Args:      args,
			Figure:    o.figure,
			Ablation:  o.ablation,
			Seed:      o.seed,
			Trials:    o.trials,
			Duration:  o.duration.String(),
			Parallel:  o.parallel,
			Quick:     o.quick,
			Format:    o.format,
			GoVersion: runtime.Version(),
			StartedAt: time.Now().UTC().Format(time.RFC3339),
		},
	}
	if o.metricsOut != "" {
		c.registry = metrics.NewRegistry()
	}
	if o.traceOut != "" {
		f, err := os.Create(o.traceOut)
		if err != nil {
			return nil, fmt.Errorf("-trace-out: %w", err)
		}
		c.traceFile = f
		c.traceBuf = bufio.NewWriter(f)
		c.tracer = trace.NewJSONWriter(c.traceBuf)
	}
	if o.cpuprofile != "" {
		f, err := os.Create(o.cpuprofile)
		if err != nil {
			c.abandonFiles()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			c.abandonFiles()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		c.cpuFile = f
	}
	return c, nil
}

// obs returns the experiment observability config, nil when no
// observability flag was given so the experiment layer stays on its
// zero-cost path.
func (c *collector) obs() *experiment.Obs {
	if c.registry == nil && c.tracer == nil {
		return nil
	}
	return &experiment.Obs{Metrics: c.registry, Trace: c.tracer}
}

// hooks returns the runner callbacks: progress display when -progress,
// per-trial manifest timings when -metrics-out. Zero hooks otherwise, so
// the runner does not even read the clock.
func (c *collector) hooks() experiment.RunHooks {
	var h experiment.RunHooks
	if c.opts.progress {
		h.OnProgress = func(completed, total int) {
			name := ""
			if c.cur != nil {
				name = c.cur.Name
			}
			fmt.Fprintf(os.Stderr, "\r%s: %d/%d trials", name, completed, total)
			c.progressShown = true
		}
	}
	if c.opts.metricsOut != "" {
		h.OnTrialTime = func(trial int, elapsed time.Duration) {
			if c.cur != nil {
				c.cur.Timings = append(c.cur.Timings, trialTiming{Trial: trial, NS: elapsed.Nanoseconds()})
			}
		}
	}
	return h
}

// begin opens a manifest record for the named experiment; end closes it.
func (c *collector) begin(name string) {
	c.cur = &experimentRecord{Name: name, started: time.Now()}
	c.progressShown = false
	c.man.Experiments = append(c.man.Experiments, c.cur)
}

func (c *collector) end() {
	if c.cur == nil {
		return
	}
	c.cur.WallClockNS = time.Since(c.cur.started).Nanoseconds()
	c.cur.Trials = len(c.cur.Timings)
	if c.progressShown {
		fmt.Fprintln(os.Stderr)
		c.progressShown = false
	}
	c.cur = nil
}

// close flushes every output the collector owns: the trace stream, the
// metrics document (manifest + merged snapshot), and the pprof profiles.
func (c *collector) close() error {
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if c.cpuFile != nil {
		pprof.StopCPUProfile()
		keep(c.cpuFile.Close())
	}
	if c.traceBuf != nil {
		keep(c.traceBuf.Flush())
		keep(c.traceFile.Close())
	}
	if c.registry != nil {
		c.man.WallClockNS = time.Since(c.started).Nanoseconds()
		doc := metricsDocument{Manifest: c.man, Metrics: c.registry.Snapshot()}
		raw, err := json.MarshalIndent(doc, "", "  ")
		keep(err)
		if err == nil {
			keep(os.WriteFile(c.opts.metricsOut, append(raw, '\n'), 0o644))
		}
	}
	if c.opts.memprofile != "" {
		f, err := os.Create(c.opts.memprofile)
		keep(err)
		if err == nil {
			runtime.GC()
			keep(pprof.WriteHeapProfile(f))
			keep(f.Close())
		}
	}
	return firstErr
}

// abandonFiles closes files opened so far when construction fails midway.
func (c *collector) abandonFiles() {
	if c.traceFile != nil {
		c.traceFile.Close()
	}
}
