package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"retri/internal/experiment"
	"retri/internal/metrics"
	"retri/internal/span"
	"retri/internal/trace"
)

// trialTiming is one trial's wall-clock cost in the run manifest. Trial
// indexes arrive in completion order under parallelism; the manifest
// records wall-clock reality, not simulation output, so it is the one
// artifact that legitimately differs between runs.
type trialTiming struct {
	Trial int   `json:"trial"`
	NS    int64 `json:"ns"`
}

// experimentRecord is one experiment's entry in the run manifest. Sim and
// Oracle attribute the merged snapshot's engine accounting and conformance
// audit back to the experiment that produced them: each is the delta of
// the matching counter family (summed across labels) between the record's
// begin and end, so every sweep — figures and ablations alike — reports
// the same schema instead of only the sweeps that happened to publish.
type experimentRecord struct {
	Name        string           `json:"name"`
	Trials      int              `json:"trials"`
	WallClockNS int64            `json:"wall_clock_ns"`
	Sim         map[string]int64 `json:"sim,omitempty"`
	Oracle      map[string]int64 `json:"oracle,omitempty"`
	Timings     []trialTiming    `json:"trial_timings,omitempty"`

	started   time.Time
	startSnap metrics.Snapshot
}

// counterDiff sums cur's counters with the given name prefix across labels
// and subtracts prev's, keeping the names that moved. Nil when nothing did.
func counterDiff(prev, cur metrics.Snapshot, prefix string) map[string]int64 {
	out := make(map[string]int64)
	for _, c := range cur.Counters {
		if strings.HasPrefix(c.Name, prefix) {
			out[c.Name] += c.Value
		}
	}
	for _, c := range prev.Counters {
		if strings.HasPrefix(c.Name, prefix) {
			out[c.Name] -= c.Value
		}
	}
	for name, v := range out {
		if v == 0 {
			delete(out, name)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// manifest reproduces the run: full command line, resolved config, and
// where the wall-clock went.
type manifest struct {
	Command     string   `json:"command"`
	Args        []string `json:"args"`
	Figure      string   `json:"figure,omitempty"`
	Ablation    string   `json:"ablation,omitempty"`
	Seed        uint64   `json:"seed"`
	Trials      int      `json:"trials"`
	Duration    string   `json:"duration"`
	Parallel    int      `json:"parallel"`
	Quick       bool     `json:"quick"`
	Format      string   `json:"format"`
	GoVersion   string   `json:"go_version"`
	StartedAt   string   `json:"started_at"`
	WallClockNS int64    `json:"wall_clock_ns"`
	// TraceEventsDropped counts events the per-trial trace buffers shed
	// across the whole run; zero certifies the -trace-out stream and the
	// merged metrics are complete. Always present so consumers need not
	// distinguish "absent" from "none dropped".
	TraceEventsDropped int64               `json:"trace_events_dropped"`
	SpansTraced        int64               `json:"spans_traced,omitempty"`
	Experiments        []*experimentRecord `json:"experiments"`
}

// metricsDocument is the -metrics-out file: the manifest beside the merged
// metrics snapshot.
type metricsDocument struct {
	Manifest manifest         `json:"manifest"`
	Metrics  metrics.Snapshot `json:"metrics"`
}

// collector owns the CLI's observability state: the merged metrics
// registry, the streaming trace writer, the run manifest, profiling, and
// progress display. Everything it produces goes to side files or stderr —
// stdout stays byte-identical to a run without it.
type collector struct {
	opts     options
	registry *metrics.Registry
	tracer   trace.Tracer
	spans    *span.Ledger
	shared   *experiment.Obs

	traceFile *os.File
	traceBuf  *bufio.Writer
	cpuFile   *os.File

	man           manifest
	cur           *experimentRecord
	started       time.Time
	progressShown bool
}

// newCollector opens the output files and starts profiling per the parsed
// options. A collector with no observability flags set is inert.
func newCollector(o options, args []string) (*collector, error) {
	c := &collector{
		opts:    o,
		started: time.Now(),
		man: manifest{
			Command:   "retri-experiments",
			Args:      args,
			Figure:    o.figure,
			Ablation:  o.ablation,
			Seed:      o.seed,
			Trials:    o.trials,
			Duration:  o.duration.String(),
			Parallel:  o.parallel,
			Quick:     o.quick,
			Format:    o.format,
			GoVersion: runtime.Version(),
			StartedAt: time.Now().UTC().Format(time.RFC3339),
		},
	}
	if o.metricsOut != "" {
		c.registry = metrics.NewRegistry()
	}
	if o.spanOut != "" || o.chromeTrace != "" {
		c.spans = span.NewLedger()
	}
	if o.traceOut != "" {
		f, err := os.Create(o.traceOut)
		if err != nil {
			return nil, fmt.Errorf("-trace-out: %w", err)
		}
		c.traceFile = f
		c.traceBuf = bufio.NewWriter(f)
		c.tracer = trace.NewJSONWriter(c.traceBuf)
	}
	if o.cpuprofile != "" {
		f, err := os.Create(o.cpuprofile)
		if err != nil {
			c.abandonFiles()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			c.abandonFiles()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		c.cpuFile = f
	}
	if c.registry != nil || c.tracer != nil || c.spans != nil {
		c.shared = &experiment.Obs{Metrics: c.registry, Trace: c.tracer, Spans: c.spans}
	}
	return c, nil
}

// obs returns the experiment observability config, nil when no
// observability flag was given so the experiment layer stays on its
// zero-cost path. Every experiment in the run shares the one Obs, so
// run-wide accumulators (the span ledger, the dropped-event tally) see
// the whole run rather than the last figure to ask.
func (c *collector) obs() *experiment.Obs {
	return c.shared
}

// hooks returns the runner callbacks: progress display when -progress,
// per-trial manifest timings when -metrics-out. Zero hooks otherwise, so
// the runner does not even read the clock.
func (c *collector) hooks() experiment.RunHooks {
	var h experiment.RunHooks
	if c.opts.progress {
		h.OnProgress = func(completed, total int) {
			name := ""
			if c.cur != nil {
				name = c.cur.Name
			}
			fmt.Fprintf(os.Stderr, "\r%s: %d/%d trials", name, completed, total)
			c.progressShown = true
		}
	}
	if c.opts.metricsOut != "" {
		h.OnTrialTime = func(trial int, elapsed time.Duration) {
			if c.cur != nil {
				c.cur.Timings = append(c.cur.Timings, trialTiming{Trial: trial, NS: elapsed.Nanoseconds()})
			}
		}
	}
	return h
}

// begin opens a manifest record for the named experiment; end closes it,
// attributing the engine and oracle counter movement in between.
func (c *collector) begin(name string) {
	c.cur = &experimentRecord{Name: name, started: time.Now()}
	c.progressShown = false
	if c.registry != nil {
		c.cur.startSnap = c.registry.Snapshot()
	}
	c.man.Experiments = append(c.man.Experiments, c.cur)
}

func (c *collector) end() {
	if c.cur == nil {
		return
	}
	c.cur.WallClockNS = time.Since(c.cur.started).Nanoseconds()
	c.cur.Trials = len(c.cur.Timings)
	if c.registry != nil {
		endSnap := c.registry.Snapshot()
		c.cur.Sim = counterDiff(c.cur.startSnap, endSnap, "sim_")
		c.cur.Oracle = counterDiff(c.cur.startSnap, endSnap, "oracle_")
		c.cur.startSnap = metrics.Snapshot{}
	}
	if c.progressShown {
		fmt.Fprintln(os.Stderr)
		c.progressShown = false
	}
	c.cur = nil
}

// close flushes every output the collector owns: the trace stream, the
// metrics document (manifest + merged snapshot), and the pprof profiles.
func (c *collector) close() error {
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if c.cpuFile != nil {
		pprof.StopCPUProfile()
		keep(c.cpuFile.Close())
	}
	if c.traceBuf != nil {
		keep(c.traceBuf.Flush())
		keep(c.traceFile.Close())
	}
	if c.spans != nil {
		if c.opts.spanOut != "" {
			keep(writeFileWith(c.opts.spanOut, "-span-out", c.spans.WriteJSONL))
		}
		if c.opts.chromeTrace != "" {
			keep(writeFileWith(c.opts.chromeTrace, "-chrome-trace", func(w io.Writer) error {
				return span.WriteChrome(w, c.spans.Records(), c.spans.WidthChanges())
			}))
		}
	}
	if c.registry != nil {
		c.man.WallClockNS = time.Since(c.started).Nanoseconds()
		c.man.TraceEventsDropped = c.shared.TraceDropped()
		if c.spans != nil {
			c.man.SpansTraced = c.spans.Report().Spans
		}
		doc := metricsDocument{Manifest: c.man, Metrics: c.registry.Snapshot()}
		raw, err := json.MarshalIndent(doc, "", "  ")
		keep(err)
		if err == nil {
			keep(os.WriteFile(c.opts.metricsOut, append(raw, '\n'), 0o644))
		}
	}
	if c.opts.memprofile != "" {
		f, err := os.Create(c.opts.memprofile)
		keep(err)
		if err == nil {
			runtime.GC()
			keep(pprof.WriteHeapProfile(f))
			keep(f.Close())
		}
	}
	return firstErr
}

// writeFileWith creates path and streams fn's output through a buffered
// writer, labeling any error with the flag that asked for the file.
func writeFileWith(path, flagName string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("%s: %w", flagName, err)
	}
	w := bufio.NewWriter(f)
	err = fn(w)
	if ferr := w.Flush(); err == nil {
		err = ferr
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("%s: %w", flagName, err)
	}
	return nil
}

// abandonFiles closes files opened so far when construction fails midway.
func (c *collector) abandonFiles() {
	if c.traceFile != nil {
		c.traceFile.Close()
	}
}
