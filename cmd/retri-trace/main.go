// Command retri-trace queries a span ledger written by
// retri-experiments -span-out: per-transaction causal chains, root-cause
// summaries of failed transactions, ARQ retry-chain statistics, and a
// per-second timeline of the medium.
//
// Usage:
//
//	retri-trace -in spans.jsonl -tx 4:11      # causal chains for width 4, id 0xb
//	retri-trace -in spans.jsonl -tx 11        # any width with id 0xb
//	retri-trace -in spans.jsonl -failed       # what killed the non-delivered spans
//
// The -failed root causes include the graceful-degradation outcomes:
// "reassembly-evicted" (a receiver's MaxPartials cap dropped the partial
// state) and "retry-budget-exhausted" (the ARQ endpoint gave up the chain,
// possibly early under loss-aware budget shedding).
//
//	retri-trace -in spans.jsonl -retries      # retry chain-length histogram
//	retri-trace -in spans.jsonl -timeline     # per-second CSV time series
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"retri/internal/span"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "retri-trace:", err)
		os.Exit(1)
	}
}

type options struct {
	in       string
	tx       string
	failed   bool
	retries  bool
	timeline bool
	interval time.Duration
}

func parseArgs(args []string) (options, error) {
	fs := flag.NewFlagSet("retri-trace", flag.ContinueOnError)
	var o options
	fs.StringVar(&o.in, "in", "", "span ledger (JSON Lines from retri-experiments -span-out); - reads stdin")
	fs.StringVar(&o.tx, "tx", "", "dump causal chains for a transaction identifier, as width:id or bare id (decimal or 0x hex)")
	fs.BoolVar(&o.failed, "failed", false, "summarize non-delivered transactions by root cause")
	fs.BoolVar(&o.retries, "retries", false, "histogram ARQ retry chain lengths")
	fs.BoolVar(&o.timeline, "timeline", false, "write the per-interval time series as CSV")
	fs.DurationVar(&o.interval, "interval", time.Second, "bucket width for -timeline")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	if o.in == "" {
		return options{}, fmt.Errorf("-in is required")
	}
	modes := 0
	for _, on := range []bool{o.tx != "", o.failed, o.retries, o.timeline} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		return options{}, fmt.Errorf("pick exactly one of -tx, -failed, -retries, -timeline")
	}
	if o.interval <= 0 {
		return options{}, fmt.Errorf("invalid -interval %v: must be positive", o.interval)
	}
	return o, nil
}

func run(args []string, w io.Writer) error {
	o, err := parseArgs(args)
	if err != nil {
		return err
	}
	var in io.Reader = os.Stdin
	if o.in != "-" {
		f, err := os.Open(o.in)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	recs, _, err := span.ReadJSONL(in)
	if err != nil {
		return err
	}
	switch {
	case o.tx != "":
		return printTx(w, recs, o.tx)
	case o.failed:
		return printFailed(w, recs)
	case o.retries:
		return printRetries(w, recs)
	default:
		return span.WriteSeriesCSV(w, span.Series(recs, o.interval))
	}
}

// parseTx accepts "width:id" or a bare "id"; ids may be decimal or 0x hex.
// A width of -1 matches every width.
func parseTx(s string) (width int, id uint64, err error) {
	width = -1
	if i := strings.IndexByte(s, ':'); i >= 0 {
		w64, werr := strconv.ParseInt(s[:i], 10, 32)
		if werr != nil || w64 < 1 {
			return 0, 0, fmt.Errorf("invalid -tx width %q", s[:i])
		}
		width = int(w64)
		s = s[i+1:]
	}
	id, err = strconv.ParseUint(strings.TrimPrefix(s, "0x"), base(s), 64)
	if err != nil {
		return 0, 0, fmt.Errorf("invalid -tx identifier %q", s)
	}
	return width, id, nil
}

func base(s string) int {
	if strings.HasPrefix(s, "0x") {
		return 16
	}
	return 10
}

// index locates spans by (trial, span-index) so retry chains can be
// walked in either direction.
type index struct {
	byRef    map[string]map[int]span.Record
	children map[string]map[int][]int
}

func buildIndex(recs []span.Record) index {
	ix := index{
		byRef:    make(map[string]map[int]span.Record),
		children: make(map[string]map[int][]int),
	}
	for _, r := range recs {
		if ix.byRef[r.Trial] == nil {
			ix.byRef[r.Trial] = make(map[int]span.Record)
			ix.children[r.Trial] = make(map[int][]int)
		}
		ix.byRef[r.Trial][r.Span] = r
		if r.Parent >= 0 {
			ix.children[r.Trial][r.Parent] = append(ix.children[r.Trial][r.Parent], r.Span)
		}
	}
	return ix
}

// chainRoot walks a record's retry ancestry to the first attempt.
func (ix index) chainRoot(r span.Record) span.Record {
	for r.Parent >= 0 {
		p, ok := ix.byRef[r.Trial][r.Parent]
		if !ok {
			break
		}
		r = p
	}
	return r
}

// printTx dumps the full causal chain of every span matching the
// identifier: the whole retry lineage, each attempt's fragments with
// their channel fates, and the receiver-side events.
func printTx(w io.Writer, recs []span.Record, sel string) error {
	width, id, err := parseTx(sel)
	if err != nil {
		return err
	}
	ix := buildIndex(recs)
	printed := make(map[string]bool) // chain roots already dumped
	matches := 0
	for _, r := range recs {
		if r.ID != id || (width > 0 && r.Width != width) {
			continue
		}
		matches++
		root := ix.chainRoot(r)
		ref := fmt.Sprintf("%s/%d", root.Trial, root.Span)
		if printed[ref] {
			continue
		}
		printed[ref] = true
		printChain(w, ix, root, 0)
		fmt.Fprintln(w)
	}
	if matches == 0 {
		return fmt.Errorf("no spans match %s", sel)
	}
	return nil
}

func printChain(w io.Writer, ix index, r span.Record, depth int) {
	pad := strings.Repeat("  ", depth)
	attempt := ""
	if r.Retry >= 0 {
		attempt = fmt.Sprintf("  arq-seq=%d retry=%d", r.ARQSeq, r.Retry)
	}
	fmt.Fprintf(w, "%strial %s span %d: node %d  width=%d id=0x%x  strategy=%s redraws=%d%s\n",
		pad, r.Trial, r.Span, r.Sender, r.Width, r.ID, orDash(r.Strategy), r.Redraws, attempt)
	fmt.Fprintf(w, "%s  queued %s  opened %s  closed %s  len=%d  outcome=%s\n",
		pad, ns(r.QueuedNS), ns(r.OpenedNS), ns(r.ClosedNS), r.TotalLen, r.Outcome)
	for _, f := range r.Frags {
		kind := "data "
		off := fmt.Sprintf("off=%d len=%d", f.Offset, f.Len)
		if f.Intro {
			kind = "intro"
			off = fmt.Sprintf("len=%d", f.Len)
		}
		fmt.Fprintf(w, "%s  %s at %s  %s  %s\n", pad, kind, ns(int64(f.At)), off, fragFates(f))
	}
	for _, e := range r.Events {
		fmt.Fprintf(w, "%s  event at %s  node %d  %s\n", pad, ns(int64(e.At)), e.Node, e.Kind)
	}
	kids := append([]int(nil), ix.children[r.Trial][r.Span]...)
	sort.Ints(kids)
	for _, k := range kids {
		child := ix.byRef[r.Trial][k]
		fmt.Fprintf(w, "%s  └─ retried as span %d (fresh id 0x%x)\n", pad, child.Span, child.ID)
		printChain(w, ix, child, depth+1)
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func ns(v int64) string {
	if v < 0 {
		return "-"
	}
	return time.Duration(v).String()
}

// fragFates renders a fragment's per-receiver channel fates.
func fragFates(f span.Frag) string {
	var parts []string
	add := func(n int, what string) {
		if n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", what, n))
		}
	}
	add(f.Delivered, "delivered")
	add(f.Collided, "collided")
	add(f.RandomLoss, "lost")
	add(f.Corrupted, "corrupted")
	add(f.NotHeard, "not-heard")
	add(f.HalfDuplex, "half-duplex")
	if len(parts) == 0 {
		return "no receivers"
	}
	return strings.Join(parts, " ")
}

// printFailed groups every non-delivered span by its outcome and, within
// each group, by the dominant channel fate of its fragments — the
// root-cause view.
func printFailed(w io.Writer, recs []span.Record) error {
	type group struct {
		count  int
		causes map[string]int
		sample span.Record
	}
	groups := make(map[string]*group)
	total, failed := 0, 0
	for _, r := range recs {
		total++
		if r.Outcome == "delivered" {
			continue
		}
		failed++
		g := groups[r.Outcome]
		if g == nil {
			g = &group{causes: make(map[string]int), sample: r}
			groups[r.Outcome] = g
		}
		g.count++
		g.causes[dominantFate(r)]++
	}
	fmt.Fprintf(w, "%d spans, %d failed (%.1f%%)\n", total, failed, pct(failed, total))
	if failed == 0 {
		return nil
	}
	outcomes := make([]string, 0, len(groups))
	for o := range groups {
		outcomes = append(outcomes, o)
	}
	sort.Slice(outcomes, func(i, j int) bool {
		if groups[outcomes[i]].count != groups[outcomes[j]].count {
			return groups[outcomes[i]].count > groups[outcomes[j]].count
		}
		return outcomes[i] < outcomes[j]
	})
	for _, o := range outcomes {
		g := groups[o]
		fmt.Fprintf(w, "\n%-20s %6d (%.1f%%)  e.g. trial %s span %d\n",
			o, g.count, pct(g.count, failed), g.sample.Trial, g.sample.Span)
		causes := make([]string, 0, len(g.causes))
		for c := range g.causes {
			causes = append(causes, c)
		}
		sort.Slice(causes, func(i, j int) bool {
			if g.causes[causes[i]] != g.causes[causes[j]] {
				return g.causes[causes[i]] > g.causes[causes[j]]
			}
			return causes[i] < causes[j]
		})
		for _, c := range causes {
			fmt.Fprintf(w, "  fragments mostly %-12s %6d\n", c, g.causes[c])
		}
	}
	return nil
}

// dominantFate names the most common channel fate across a span's
// fragments, breaking ties toward the harsher fate.
func dominantFate(r span.Record) string {
	var delivered, collided, lost, corrupted, notHeard, half int
	for _, f := range r.Frags {
		delivered += f.Delivered
		collided += f.Collided
		lost += f.RandomLoss
		corrupted += f.Corrupted
		notHeard += f.NotHeard
		half += f.HalfDuplex
	}
	best, n := "never-aired", 0
	for _, c := range []struct {
		name string
		n    int
	}{
		{"collided", collided},
		{"lost", lost},
		{"corrupted", corrupted},
		{"not-heard", notHeard},
		{"half-duplex", half},
		{"delivered", delivered},
	} {
		if c.n > n {
			best, n = c.name, c.n
		}
	}
	return best
}

// printRetries histograms ARQ chain lengths: how many attempts each
// root transaction needed, and how the chains ended.
func printRetries(w io.Writer, recs []span.Record) error {
	ix := buildIndex(recs)
	type chainKey struct {
		trial string
		span  int
	}
	// Chain length per root: 1 + number of descendants.
	lengths := make(map[chainKey]int)
	ends := make(map[chainKey]string)
	for _, r := range recs {
		if r.ARQSeq < 0 {
			continue // not an ARQ transaction
		}
		root := ix.chainRoot(r)
		k := chainKey{root.Trial, root.Span}
		lengths[k]++
		if len(ix.children[r.Trial][r.Span]) == 0 {
			ends[k] = r.Outcome
		}
	}
	if len(lengths) == 0 {
		fmt.Fprintln(w, "no ARQ transactions in ledger")
		return nil
	}
	hist := make(map[int]int)
	delivered := make(map[int]int)
	maxLen := 0
	for k, n := range lengths {
		hist[n]++
		if ends[k] == "delivered" {
			delivered[n]++
		}
		if n > maxLen {
			maxLen = n
		}
	}
	fmt.Fprintf(w, "%d ARQ chains\n", len(lengths))
	fmt.Fprintf(w, "%-9s %8s %10s\n", "attempts", "chains", "delivered")
	for n := 1; n <= maxLen; n++ {
		if hist[n] == 0 {
			continue
		}
		fmt.Fprintf(w, "%-9d %8d %10d\n", n, hist[n], delivered[n])
	}
	return nil
}

func pct(n, of int) float64 {
	if of == 0 {
		return 0
	}
	return 100 * float64(n) / float64(of)
}
