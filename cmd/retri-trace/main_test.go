package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"retri/internal/span"
)

// writeLedger marshals records the way span.Ledger.WriteJSONL does, so the
// CLI sees exactly the on-disk contract.
func writeLedger(t *testing.T, recs []span.Record, widths []span.WidthRecord) string {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			t.Fatal(err)
		}
	}
	for _, w := range widths {
		if err := enc.Encode(w); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "spans.jsonl")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// testLedger: one two-attempt ARQ chain (collided then delivered), one
// plain delivered span, one expired span nobody heard.
func testLedger(t *testing.T) string {
	sec := int64(time.Second)
	recs := []span.Record{
		{
			Type: "span", Trial: "cell#0", Span: 0, Sender: 1,
			Key: 0xb, Width: 4, ID: 0xb, Strategy: "uniform",
			ARQSeq: 5, Retry: 0, Parent: -1,
			QueuedNS: 1 * sec, OpenedNS: 1 * sec, ClosedNS: 2 * sec,
			TotalLen: 8, State: "abandoned", Outcome: "collided", Collided: true,
			FragsSent: 2,
			Frags: []span.Frag{
				{Intro: true, Len: 8, At: time.Second, Collided: 2},
				{Offset: 0, Len: 8, At: time.Second + 100*time.Millisecond, Collided: 2},
			},
		},
		{
			Type: "span", Trial: "cell#0", Span: 1, Sender: 1,
			Key: 0x3, Width: 4, ID: 0x3, Strategy: "uniform",
			ARQSeq: 5, Retry: 1, Parent: 0,
			QueuedNS: 2 * sec, OpenedNS: 2 * sec, ClosedNS: 3 * sec,
			TotalLen: 8, State: "closed", Outcome: "delivered", Deliveries: 1,
			FragsSent: 2,
			Frags: []span.Frag{
				{Intro: true, Len: 8, At: 2 * time.Second, Delivered: 2},
				{Offset: 0, Len: 8, At: 2*time.Second + 100*time.Millisecond, Delivered: 2},
			},
			Events: []span.Event{{At: 3 * time.Second, Node: 2, Kind: "delivered"}},
		},
		{
			Type: "span", Trial: "cell#1", Span: 0, Sender: 3,
			Key: 0xb, Width: 4, ID: 0xb,
			ARQSeq: -1, Retry: -1, Parent: -1,
			QueuedNS: 1 * sec, OpenedNS: 1 * sec, ClosedNS: 2 * sec,
			TotalLen: 4, State: "closed", Outcome: "delivered", Deliveries: 1,
			FragsSent: 1,
			Frags:     []span.Frag{{Intro: true, Len: 4, At: time.Second, Delivered: 1}},
		},
		{
			Type: "span", Trial: "cell#1", Span: 1, Sender: 4,
			Key: 0x7, Width: 4, ID: 0x7,
			ARQSeq: -1, Retry: -1, Parent: -1,
			QueuedNS: 4 * sec, OpenedNS: 4 * sec, ClosedNS: -1,
			TotalLen: 4, State: "abandoned", Outcome: "expired", Expired: 1,
			FragsSent: 1,
			Frags:     []span.Frag{{Intro: true, Len: 4, At: 4 * time.Second, NotHeard: 2}},
		},
	}
	widths := []span.WidthRecord{{Type: "width", Trial: "cell#0", AtNS: 2 * sec, Node: 1, From: 4, To: 5}}
	return writeLedger(t, recs, widths)
}

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return buf.String()
}

func TestTxDumpsFullRetryChain(t *testing.T) {
	in := testLedger(t)
	out := runCLI(t, "-in", in, "-tx", "4:11")
	// The chain root (id 0xb), its retry link, and the fresh-id child must
	// all appear, as must the unrelated cell#1 bearer of the same id.
	for _, want := range []string{
		"trial cell#0 span 0",
		"id=0xb",
		"outcome=collided",
		"retried as span 1 (fresh id 0x3)",
		"outcome=delivered",
		"trial cell#1 span 0",
		"collided=2",
		"arq-seq=5 retry=1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-tx output lacks %q:\n%s", want, out)
		}
	}
}

func TestTxSelectorForms(t *testing.T) {
	in := testLedger(t)
	dec := runCLI(t, "-in", in, "-tx", "11")
	hex := runCLI(t, "-in", in, "-tx", "0xb")
	if dec != hex {
		t.Errorf("decimal and hex selectors disagree:\n%s\nvs\n%s", dec, hex)
	}
	if err := run([]string{"-in", in, "-tx", "4:999"}, &bytes.Buffer{}); err == nil {
		t.Error("unmatched -tx id accepted")
	}
	if err := run([]string{"-in", in, "-tx", "banana"}, &bytes.Buffer{}); err == nil {
		t.Error("malformed -tx accepted")
	}
}

func TestFailedRootCauseSummary(t *testing.T) {
	in := testLedger(t)
	out := runCLI(t, "-in", in, "-failed")
	for _, want := range []string{
		"4 spans, 2 failed (50.0%)",
		"collided",
		"expired",
		"not-heard",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-failed output lacks %q:\n%s", want, out)
		}
	}
}

// TestFailedDegradationBuckets pins the graceful-degradation root causes:
// spans killed by a receiver's MaxPartials cap or by loss-aware retry
// shedding must surface as their own -failed buckets, not vanish into
// "expired" or "abandoned".
func TestFailedDegradationBuckets(t *testing.T) {
	sec := int64(time.Second)
	in := writeLedger(t, []span.Record{
		{
			Type: "span", Trial: "cell#0", Span: 0, Sender: 1,
			Key: 0x5, Width: 4, ID: 0x5,
			ARQSeq: -1, Retry: -1, Parent: -1,
			QueuedNS: 1 * sec, OpenedNS: 1 * sec, ClosedNS: 2 * sec,
			TotalLen: 8, State: "closed", Outcome: "reassembly-evicted", Evicted: 1,
			FragsSent: 1,
			Frags:     []span.Frag{{Intro: true, Len: 8, At: time.Second, Delivered: 1}},
		},
		{
			Type: "span", Trial: "cell#0", Span: 1, Sender: 2,
			Key: 0x9, Width: 4, ID: 0x9,
			ARQSeq: 3, Retry: 2, Parent: 0,
			QueuedNS: 2 * sec, OpenedNS: 2 * sec, ClosedNS: 3 * sec,
			TotalLen: 8, State: "abandoned", Outcome: "retry-budget-exhausted", BudgetExhausted: true,
			FragsSent: 1,
			Frags:     []span.Frag{{Intro: true, Len: 8, At: 2 * time.Second, NotHeard: 1}},
		},
	}, nil)
	out := runCLI(t, "-in", in, "-failed")
	for _, want := range []string{
		"2 spans, 2 failed (100.0%)",
		"reassembly-evicted",
		"retry-budget-exhausted",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-failed output lacks %q:\n%s", want, out)
		}
	}
}

func TestRetriesHistogram(t *testing.T) {
	in := testLedger(t)
	out := runCLI(t, "-in", in, "-retries")
	if !strings.Contains(out, "1 ARQ chains") {
		t.Errorf("-retries chain count wrong:\n%s", out)
	}
	// One chain of two attempts, ending delivered.
	if !strings.Contains(out, "2         ") || !strings.Contains(out, "        1 ") {
		t.Errorf("-retries histogram row missing:\n%s", out)
	}
}

func TestTimelineCSV(t *testing.T) {
	in := testLedger(t)
	out := runCLI(t, "-in", in, "-timeline")
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "start_s,opened,closed,collisions,delivered,active_mean,width_mean,collision_rate" {
		t.Errorf("timeline header = %q", lines[0])
	}
	// Buckets span t=0 through the last close at 4s.
	if len(lines) < 5 {
		t.Errorf("timeline rows = %d, want >= 5:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[2], "1,2,") {
		t.Errorf("t=1s bucket should open 2 spans: %q", lines[2])
	}
	// A custom interval changes the bucketing.
	coarse := runCLI(t, "-in", in, "-timeline", "-interval", "10s")
	if n := len(strings.Split(strings.TrimSpace(coarse), "\n")); n != 2 {
		t.Errorf("10s interval rows = %d, want header + one bucket", n)
	}
}

func TestFlagValidation(t *testing.T) {
	var sink bytes.Buffer
	if err := run([]string{"-failed"}, &sink); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run([]string{"-in", "x.jsonl"}, &sink); err == nil {
		t.Error("no mode accepted")
	}
	if err := run([]string{"-in", "x.jsonl", "-failed", "-retries"}, &sink); err == nil {
		t.Error("two modes accepted")
	}
	if err := run([]string{"-in", filepath.Join(t.TempDir(), "absent.jsonl"), "-failed"}, &sink); err == nil {
		t.Error("missing ledger file accepted")
	}
}
