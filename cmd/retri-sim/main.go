// Command retri-sim runs one configurable simulation scenario: N
// transmitters streaming packets at a receiver over the simulated radio,
// reporting delivery, collision and efficiency measurements next to the
// model's prediction.
//
// Usage:
//
//	retri-sim -transmitters 5 -bits 8 -duration 2m
//	retri-sim -selector listening -bits 6 -packet 80
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"retri/internal/experiment"
	"retri/internal/model"
	"retri/internal/xrand"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "retri-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("retri-sim", flag.ContinueOnError)
	var (
		transmitters = fs.Int("transmitters", 5, "streaming transmitters")
		bits         = fs.Int("bits", 8, "RETRI identifier width")
		packet       = fs.Int("packet", 80, "packet size in bytes")
		duration     = fs.Duration("duration", 2*time.Minute, "simulated time")
		selector     = fs.String("selector", "uniform", "identifier selector: uniform, listening, listening+notify, sequential")
		seed         = fs.Uint64("seed", 1, "random seed")
		hidden       = fs.Bool("hidden", false, "make transmitters mutually hidden (footnote-3 topology)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := experiment.DefaultFigure4Config()
	cfg.Seed = *seed
	cfg.Transmitters = *transmitters
	cfg.PacketSize = *packet
	cfg.Duration = *duration
	if *hidden {
		cfg.Topology = experiment.HiddenStarTopology
	}

	out, err := experiment.RunCollisionTrial(cfg, experiment.SelectorKind(*selector), *bits,
		xrand.NewSource(*seed).Child("retri-sim"))
	if err != nil {
		return err
	}

	fmt.Printf("scenario: %d transmitters, %d-byte packets, %d-bit identifiers, %s selection, %v\n",
		*transmitters, *packet, *bits, *selector, *duration)
	fmt.Printf("packets reassembled (ground truth): %d\n", out.TruthDelivered)
	fmt.Printf("packets reassembled (AFF id only):  %d\n", out.AFFDelivered)
	fmt.Printf("measured collision rate:            %.6f\n", out.CollisionRate)
	fmt.Printf("model collision rate (Eq. 4, T=%d):  %.6f\n",
		*transmitters, model.CollisionRate(*bits, float64(*transmitters)))
	fmt.Printf("receiver's density estimate:        %.2f\n", out.EstimatedT)
	return nil
}
