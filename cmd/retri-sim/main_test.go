package main

import "testing"

func TestRunDefaultScenarioTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	if err := run([]string{"-duration", "5s", "-bits", "6"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunListeningHidden(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	if err := run([]string{"-duration", "5s", "-bits", "5", "-selector", "listening", "-hidden"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownSelector(t *testing.T) {
	if err := run([]string{"-duration", "1s", "-selector", "psychic"}); err == nil {
		t.Error("unknown selector accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-wat"}); err == nil {
		t.Error("bad flag accepted")
	}
}
