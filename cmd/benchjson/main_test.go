package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	b, ok := parseBenchLine("BenchmarkFragment80Byte-8   \t 1000000\t      1531.5 ns/op\t     464 B/op\t      14 allocs/op", "retri/internal/aff")
	if !ok {
		t.Fatal("well-formed line rejected")
	}
	if b.Name != "Fragment80Byte" || b.Package != "retri/internal/aff" || b.Iterations != 1000000 {
		t.Errorf("parsed %+v", b)
	}
	if b.Metrics["ns/op"] != 1531.5 || b.Metrics["B/op"] != 464 || b.Metrics["allocs/op"] != 14 {
		t.Errorf("metrics %v", b.Metrics)
	}
	if want := 1e9 / 1531.5; b.OpsPerSec != want {
		t.Errorf("ops/sec = %v, want %v", b.OpsPerSec, want)
	}

	// Custom metric units flow through untouched.
	b, ok = parseBenchLine("BenchmarkMedium \t 2 \t 80153 ns/op \t 12475 deliveries/sec", "p")
	if !ok || b.Metrics["deliveries/sec"] != 12475 {
		t.Errorf("custom unit lost: %+v, ok=%v", b, ok)
	}

	// Benchmarks without a -N suffix keep their name whole, including
	// interior dashes.
	b, ok = parseBenchLine("BenchmarkA-B \t 1 \t 5 ns/op", "p")
	if !ok || b.Name != "A-B" {
		t.Errorf("interior dash mangled: %+v", b)
	}

	for _, bad := range []string{
		"BenchmarkX", "BenchmarkX 1", "BenchmarkX one 5 ns/op",
		"BenchmarkX 1 fast ns/op", "PASS", "BenchmarkX 1 logline",
	} {
		if _, ok := parseBenchLine(bad, "p"); ok {
			t.Errorf("malformed line %q accepted", bad)
		}
	}
}

// snapFile writes a snapshot to disk for the compare tests.
func snapFile(t *testing.T, name string, s Snapshot) string {
	t.Helper()
	raw, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func bench(pkg, name string, iters int64, ns, allocs float64) Benchmark {
	return Benchmark{Package: pkg, Name: name, Iterations: iters,
		Metrics: map[string]float64{"ns/op": ns, "allocs/op": allocs}}
}

func TestParseDedupesKeepingMostIterations(t *testing.T) {
	// The smoke stage runs everything at 1x then re-runs gated families at
	// a real count; the snapshot must keep the better measurement.
	in := strings.Join([]string{
		"pkg: retri/internal/frame",
		"BenchmarkAFFEncodeData-8 \t 1 \t 10000 ns/op \t 40 B/op \t 2 allocs/op",
		"BenchmarkOther-8 \t 1 \t 50 ns/op \t 0 B/op \t 0 allocs/op",
		"pkg: retri/internal/frame",
		"BenchmarkAFFEncodeData-8 \t 100 \t 750 ns/op \t 40 B/op \t 2 allocs/op",
	}, "\n")
	out := filepath.Join(t.TempDir(), "b.json")
	var stdout bytes.Buffer
	if err := run([]string{"-pr", "7", "-out", out}, strings.NewReader(in), &stdout); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %d, want 2 after dedupe: %+v", len(snap.Benchmarks), snap.Benchmarks)
	}
	b := snap.Benchmarks[0]
	if b.Name != "AFFEncodeData" || b.Iterations != 100 || b.Metrics["ns/op"] != 750 {
		t.Errorf("dedupe kept the wrong run: %+v", b)
	}
	// Stdin still echoes through untouched.
	if !strings.Contains(stdout.String(), "BenchmarkOther-8") {
		t.Error("echo lost a line")
	}
}

func TestParseDedupesKeepingMinTimeAcrossRepeats(t *testing.T) {
	// With -count repeats at the same iteration count, the minimum ns/op
	// wins: steal time on a shared box only ever slows a repeat down.
	in := strings.Join([]string{
		"pkg: retri/internal/frame",
		"BenchmarkAFFEncodeData-8 \t 1000 \t 900 ns/op \t 40 B/op \t 2 allocs/op",
		"BenchmarkAFFEncodeData-8 \t 1000 \t 610 ns/op \t 40 B/op \t 2 allocs/op",
		"BenchmarkAFFEncodeData-8 \t 1000 \t 755 ns/op \t 40 B/op \t 2 allocs/op",
	}, "\n")
	out := filepath.Join(t.TempDir(), "b.json")
	if err := run([]string{"-pr", "8", "-out", out}, strings.NewReader(in), &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 1 {
		t.Fatalf("benchmarks = %d, want 1 after dedupe", len(snap.Benchmarks))
	}
	if ns := snap.Benchmarks[0].Metrics["ns/op"]; ns != 610 {
		t.Errorf("kept ns/op = %v, want the 610 minimum", ns)
	}
	// A higher-iteration run still beats a faster low-iteration one.
	if !better(bench("p", "X", 1000, 900, 2), bench("p", "X", 100, 10, 2)) {
		t.Error("iteration count no longer dominates the dedupe")
	}
}

func TestCompareWithinThresholdPasses(t *testing.T) {
	old := snapFile(t, "old.json", Snapshot{PR: 6, Benchmarks: []Benchmark{
		bench("p/frame", "AFFEncodeData", 100, 1000, 2),
		bench("p/radio", "MediumNoTracer", 100, 90000, 776),
		bench("p/x", "Unrelated", 1, 5, 0),
	}})
	newer := snapFile(t, "new.json", Snapshot{PR: 7, Benchmarks: []Benchmark{
		bench("p/frame", "AFFEncodeData", 100, 1100, 2), // +10%: inside the gate
		bench("p/radio", "MediumNoTracer", 100, 80000, 776),
	}})
	var out bytes.Buffer
	if err := run([]string{"-compare", old, newer}, nil, &out); err != nil {
		t.Fatalf("in-threshold compare failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "2 gated benchmarks within threshold") {
		t.Errorf("summary missing:\n%s", out.String())
	}
	// The unmatched benchmark must not be part of the gate.
	if strings.Contains(out.String(), "Unrelated") {
		t.Errorf("ungated benchmark compared:\n%s", out.String())
	}
}

// TestCompareFailsOnSyntheticRegression is the negative test for the perf
// gate: a fabricated >20% ns/op regression must fail the comparison.
func TestCompareFailsOnSyntheticRegression(t *testing.T) {
	old := snapFile(t, "old.json", Snapshot{PR: 6, Benchmarks: []Benchmark{
		bench("p/frame", "AFFEncodeData", 100, 1000, 2),
	}})
	newer := snapFile(t, "new.json", Snapshot{PR: 7, Benchmarks: []Benchmark{
		bench("p/frame", "AFFEncodeData", 100, 1500, 2), // +50% ns/op
	}})
	var out bytes.Buffer
	err := run([]string{"-compare", old, newer}, nil, &out)
	if err == nil {
		t.Fatalf("synthetic +50%% ns/op regression passed the gate:\n%s", out.String())
	}
	for _, want := range []string{"AFFEncodeData", "ns/op", "+50.0%"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("regression error %q lacks %q", err, want)
		}
	}
}

func TestCompareFailsOnAllocRegressionEvenAtOneIteration(t *testing.T) {
	// allocs/op is deterministic: gated even when ns/op is too noisy to trust.
	old := snapFile(t, "old.json", Snapshot{PR: 6, Benchmarks: []Benchmark{
		bench("p/sim", "ScheduleRun", 1, 27000, 209),
	}})
	newer := snapFile(t, "new.json", Snapshot{PR: 7, Benchmarks: []Benchmark{
		bench("p/sim", "ScheduleRun", 1, 99000, 300), // allocs +43%, ns ignored
	}})
	var out bytes.Buffer
	err := run([]string{"-compare", old, newer}, nil, &out)
	if err == nil {
		t.Fatalf("alloc regression passed:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "allocs/op") || strings.Contains(err.Error(), "ns/op") {
		t.Errorf("gate should fail on allocs/op only at 1x: %v", err)
	}
	if !strings.Contains(out.String(), "skipped (iterations 1 -> 1 below 10)") {
		t.Errorf("noisy ns/op not skipped:\n%s", out.String())
	}
}

func TestCompareFailsOnMissingGatedBenchmark(t *testing.T) {
	old := snapFile(t, "old.json", Snapshot{PR: 6, Benchmarks: []Benchmark{
		bench("p/frame", "AFFEncodeData", 100, 1000, 2),
		bench("p/frame", "AFFDecodeData", 100, 800, 2),
	}})
	newer := snapFile(t, "new.json", Snapshot{PR: 7, Benchmarks: []Benchmark{
		bench("p/frame", "AFFEncodeData", 100, 1000, 2),
	}})
	err := run([]string{"-compare", old, newer}, nil, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "AFFDecodeData") {
		t.Errorf("missing gated benchmark not reported: %v", err)
	}
}

func TestCompareRejectsVacuousGate(t *testing.T) {
	old := snapFile(t, "old.json", Snapshot{PR: 6, Benchmarks: []Benchmark{
		bench("p/x", "Unrelated", 100, 10, 0),
	}})
	newer := snapFile(t, "new.json", Snapshot{PR: 7, Benchmarks: []Benchmark{
		bench("p/x", "Unrelated", 100, 10, 0),
	}})
	err := run([]string{"-compare", old, newer}, nil, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "vacuous") {
		t.Errorf("empty gate accepted: %v", err)
	}
}

func TestCompareFlagValidation(t *testing.T) {
	if err := run([]string{"-compare", "one.json"}, nil, &bytes.Buffer{}); err == nil {
		t.Error("one-argument -compare accepted")
	}
	if err := run([]string{"-compare", "-match", "([", "a.json", "b.json"}, nil, &bytes.Buffer{}); err == nil {
		t.Error("bad -match regexp accepted")
	}
	if err := run([]string{"-compare", filepath.Join(t.TempDir(), "no.json"), "b.json"}, nil, &bytes.Buffer{}); err == nil {
		t.Error("missing snapshot accepted")
	}
}
