package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	b, ok := parseBenchLine("BenchmarkFragment80Byte-8   \t 1000000\t      1531.5 ns/op\t     464 B/op\t      14 allocs/op", "retri/internal/aff")
	if !ok {
		t.Fatal("well-formed line rejected")
	}
	if b.Name != "Fragment80Byte" || b.Package != "retri/internal/aff" || b.Iterations != 1000000 {
		t.Errorf("parsed %+v", b)
	}
	if b.Metrics["ns/op"] != 1531.5 || b.Metrics["B/op"] != 464 || b.Metrics["allocs/op"] != 14 {
		t.Errorf("metrics %v", b.Metrics)
	}
	if want := 1e9 / 1531.5; b.OpsPerSec != want {
		t.Errorf("ops/sec = %v, want %v", b.OpsPerSec, want)
	}

	// Custom metric units flow through untouched.
	b, ok = parseBenchLine("BenchmarkMedium \t 2 \t 80153 ns/op \t 12475 deliveries/sec", "p")
	if !ok || b.Metrics["deliveries/sec"] != 12475 {
		t.Errorf("custom unit lost: %+v, ok=%v", b, ok)
	}

	// Benchmarks without a -N suffix keep their name whole, including
	// interior dashes.
	b, ok = parseBenchLine("BenchmarkA-B \t 1 \t 5 ns/op", "p")
	if !ok || b.Name != "A-B" {
		t.Errorf("interior dash mangled: %+v", b)
	}

	for _, bad := range []string{
		"BenchmarkX", "BenchmarkX 1", "BenchmarkX one 5 ns/op",
		"BenchmarkX 1 fast ns/op", "PASS", "BenchmarkX 1 logline",
	} {
		if _, ok := parseBenchLine(bad, "p"); ok {
			t.Errorf("malformed line %q accepted", bad)
		}
	}
}
