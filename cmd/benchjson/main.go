// Command benchjson turns `go test -bench` output into a machine-readable
// perf snapshot, so the benchmark smoke stage leaves a BENCH_<pr>.json
// artifact behind and the perf trajectory across PRs is diffable instead
// of buried in CI logs.
//
// It reads benchmark output on stdin, echoes every line to stdout
// unchanged (so it tees transparently into an existing pipeline), and
// writes one JSON document to -out:
//
//	go test -run '^$' -bench . -benchtime 1x -benchmem ./... | benchjson -pr 6 -out BENCH_6.json
//
// Each benchmark line contributes one record carrying the package, the
// benchmark name (GOMAXPROCS suffix stripped), the iteration count, every
// value/unit metric pair go test printed (ns/op, B/op, allocs/op, plus
// any custom b.ReportMetric units), and a derived ops_per_sec rate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Package    string `json:"package"`
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	// Metrics maps each reported unit to its value: "ns/op", "B/op",
	// "allocs/op", and any custom units the benchmark reported.
	Metrics map[string]float64 `json:"metrics"`
	// OpsPerSec is 1e9 / ns_per_op — the deliveries-, events- or
	// encodes-per-second view of the same measurement, so rate claims can
	// be read straight off the artifact.
	OpsPerSec float64 `json:"ops_per_sec,omitempty"`
}

// Snapshot is the whole document.
type Snapshot struct {
	PR         int         `json:"pr"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run() error {
	pr := flag.Int("pr", 0, "PR number stamped into the snapshot")
	out := flag.String("out", "", "output JSON path (required)")
	flag.Parse()
	if *out == "" {
		return fmt.Errorf("-out is required")
	}

	snap := Snapshot{PR: *pr, Benchmarks: []Benchmark{}}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(w, line)
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
		case strings.HasPrefix(line, "goos: "):
			snap.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos: "))
		case strings.HasPrefix(line, "goarch: "):
			snap.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch: "))
		case strings.HasPrefix(line, "cpu: "):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu: "))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line, pkg); ok {
				snap.Benchmarks = append(snap.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(*out, append(data, '\n'), 0o644)
}

// parseBenchLine parses one `BenchmarkName-8  N  V unit  V unit ...` line.
// Lines that do not fit the shape (e.g. a benchmark's own log output) are
// skipped rather than treated as errors.
func parseBenchLine(line, pkg string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Strip the -GOMAXPROCS suffix go test appends.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Package: pkg, Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	if len(b.Metrics) == 0 {
		return Benchmark{}, false
	}
	if ns := b.Metrics["ns/op"]; ns > 0 {
		b.OpsPerSec = 1e9 / ns
	}
	return b, true
}
