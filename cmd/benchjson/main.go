// Command benchjson turns `go test -bench` output into a machine-readable
// perf snapshot, so the benchmark smoke stage leaves a BENCH_<pr>.json
// artifact behind and the perf trajectory across PRs is diffable instead
// of buried in CI logs.
//
// It reads benchmark output on stdin, echoes every line to stdout
// unchanged (so it tees transparently into an existing pipeline), and
// writes one JSON document to -out:
//
//	go test -run '^$' -bench . -benchtime 1x -benchmem ./... | benchjson -pr 7 -out BENCH_7.json
//
// Each benchmark line contributes one record carrying the package, the
// benchmark name (GOMAXPROCS suffix stripped), the iteration count, every
// value/unit metric pair go test printed (ns/op, B/op, allocs/op, plus
// any custom b.ReportMetric units), and a derived ops_per_sec rate. When
// the stream reports the same benchmark more than once — the smoke stage
// runs everything once at 1x, then re-runs the gated families at a real
// iteration count with -count repeats — the record with the most
// iterations wins, and among equal-iteration repeats the lowest ns/op
// wins: on a shared machine timing noise is one-sided (steal time only
// slows a run down), so the minimum over repeats is the honest estimate.
//
// With -compare, benchjson is a regression gate instead of a parser:
//
//	benchjson -compare BENCH_6.json BENCH_7.json
//
// compares the snapshots' gated benchmarks (-match selects them) and
// fails when ns/op or allocs/op grew more than their thresholds, or
// when a gated benchmark disappeared. ns/op is only compared when both
// sides ran at least -min-iters iterations — a 1x measurement is a smoke
// signal, not a number — while allocs/op is deterministic and is always
// compared, against its own -alloc-threshold. That threshold defaults to
// 0: allocation counts are exact, so the gate is a ratchet — once a hot
// path reaches N allocs/op it may never grow, not even by one.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Package    string `json:"package"`
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	// Metrics maps each reported unit to its value: "ns/op", "B/op",
	// "allocs/op", and any custom units the benchmark reported.
	Metrics map[string]float64 `json:"metrics"`
	// OpsPerSec is 1e9 / ns_per_op — the deliveries-, events- or
	// encodes-per-second view of the same measurement, so rate claims can
	// be read straight off the artifact.
	OpsPerSec float64 `json:"ops_per_sec,omitempty"`
}

// Snapshot is the whole document.
type Snapshot struct {
	PR         int         `json:"pr"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// defaultMatch selects the gated benchmark families: the wire codec, the
// radio medium delivery path, the event engine, and the sharded core.
const defaultMatch = `^(AFFEncodeData|AFFDecodeData|Medium|ScheduleRun|Shard)`

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	pr := fs.Int("pr", 0, "PR number stamped into the snapshot")
	out := fs.String("out", "", "output JSON path (required unless -compare)")
	compare := fs.Bool("compare", false, "compare two snapshots (old.json new.json) instead of parsing; non-zero exit on regression")
	threshold := fs.Float64("threshold", 20, "percent growth in ns/op that fails -compare")
	allocThreshold := fs.Float64("alloc-threshold", 0, "percent growth in allocs/op that fails -compare (0 = ratchet: any growth fails)")
	match := fs.String("match", defaultMatch, "regexp naming the benchmarks -compare gates")
	minIters := fs.Int64("min-iters", 10, "minimum iterations on both sides before ns/op is trusted in -compare")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *compare {
		if fs.NArg() != 2 {
			return fmt.Errorf("-compare wants exactly two snapshots: old.json new.json")
		}
		re, err := regexp.Compile(*match)
		if err != nil {
			return fmt.Errorf("-match: %w", err)
		}
		return runCompare(stdout, fs.Arg(0), fs.Arg(1), re, *threshold, *allocThreshold, *minIters)
	}
	if *out == "" {
		return fmt.Errorf("-out is required")
	}
	return runParse(stdin, stdout, *pr, *out)
}

func runParse(stdin io.Reader, stdout io.Writer, pr int, out string) error {
	snap := Snapshot{PR: pr, Benchmarks: []Benchmark{}}
	// seen dedupes repeated benchmarks by (package, name), keeping the
	// run with the most iterations.
	seen := map[string]int{}
	pkg := ""
	sc := bufio.NewScanner(stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	w := bufio.NewWriter(stdout)
	defer w.Flush()
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(w, line)
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
		case strings.HasPrefix(line, "goos: "):
			snap.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos: "))
		case strings.HasPrefix(line, "goarch: "):
			snap.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch: "))
		case strings.HasPrefix(line, "cpu: "):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu: "))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line, pkg)
			if !ok {
				continue
			}
			key := b.Package + " " + b.Name
			if i, dup := seen[key]; dup {
				if better(b, snap.Benchmarks[i]) {
					snap.Benchmarks[i] = b
				}
				continue
			}
			seen[key] = len(snap.Benchmarks)
			snap.Benchmarks = append(snap.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(data, '\n'), 0o644)
}

// better reports whether measurement b should replace measurement cur for
// the same benchmark: more iterations always wins; at equal iterations the
// lower ns/op wins, because steal-time noise on a shared machine only ever
// inflates a timing, never deflates it.
func better(b, cur Benchmark) bool {
	if b.Iterations != cur.Iterations {
		return b.Iterations > cur.Iterations
	}
	bn, bOK := b.Metrics["ns/op"]
	cn, cOK := cur.Metrics["ns/op"]
	return bOK && cOK && bn < cn
}

// parseBenchLine parses one `BenchmarkName-8  N  V unit  V unit ...` line.
// Lines that do not fit the shape (e.g. a benchmark's own log output) are
// skipped rather than treated as errors.
func parseBenchLine(line, pkg string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Strip the -GOMAXPROCS suffix go test appends.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Package: pkg, Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	if len(b.Metrics) == 0 {
		return Benchmark{}, false
	}
	if ns := b.Metrics["ns/op"]; ns > 0 {
		b.OpsPerSec = 1e9 / ns
	}
	return b, true
}

func loadSnapshot(path string) (Snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, err
	}
	var s Snapshot
	if err := json.Unmarshal(raw, &s); err != nil {
		return Snapshot{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// runCompare gates new against old: every matched benchmark in old must
// still exist in new, and its gated metrics must not have grown past
// their thresholds — ns/op against threshold, allocs/op against
// allocThreshold (default 0, an exact-count ratchet). The comparison
// table goes to stdout either way; regressions come back as the error.
func runCompare(w io.Writer, oldPath, newPath string, match *regexp.Regexp, threshold, allocThreshold float64, minIters int64) error {
	oldSnap, err := loadSnapshot(oldPath)
	if err != nil {
		return err
	}
	newSnap, err := loadSnapshot(newPath)
	if err != nil {
		return err
	}
	newBy := make(map[string]Benchmark)
	for _, b := range newSnap.Benchmarks {
		newBy[b.Package+" "+b.Name] = b
	}
	var regressions []string
	matched := 0
	bw := bufio.NewWriter(w)
	defer bw.Flush()
	fmt.Fprintf(bw, "benchjson compare: %s (pr %d) -> %s (pr %d), ns/op threshold %g%%, allocs/op threshold %g%%\n",
		oldPath, oldSnap.PR, newPath, newSnap.PR, threshold, allocThreshold)
	for _, ob := range oldSnap.Benchmarks {
		if !match.MatchString(ob.Name) {
			continue
		}
		matched++
		key := ob.Package + " " + ob.Name
		nb, ok := newBy[key]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: gated benchmark missing from %s", key, newPath))
			continue
		}
		for _, metric := range []string{"ns/op", "allocs/op"} {
			ov, oOK := ob.Metrics[metric]
			nv, nOK := nb.Metrics[metric]
			if !oOK || !nOK {
				continue
			}
			if metric == "ns/op" && (ob.Iterations < minIters || nb.Iterations < minIters) {
				fmt.Fprintf(bw, "  %-55s %-9s skipped (iterations %d -> %d below %d)\n",
					key, metric, ob.Iterations, nb.Iterations, minIters)
				continue
			}
			limit := threshold
			if metric == "allocs/op" {
				limit = allocThreshold
			}
			growth := 0.0
			if ov > 0 {
				growth = 100 * (nv - ov) / ov
			} else if nv > 0 {
				growth = limit + 1 // zero -> nonzero is unbounded growth
			}
			verdict := "ok"
			if growth > limit {
				verdict = "REGRESSION"
				regressions = append(regressions, fmt.Sprintf("%s: %s %.4g -> %.4g (%+.1f%%, threshold %g%%)",
					key, metric, ov, nv, growth, limit))
			}
			fmt.Fprintf(bw, "  %-55s %-9s %12.4g -> %-12.4g %+7.1f%%  %s\n",
				key, metric, ov, nv, growth, verdict)
		}
	}
	if matched == 0 {
		return fmt.Errorf("no benchmarks in %s match %q — the gate is vacuous", oldPath, match)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d perf regression(s):\n  %s", len(regressions), strings.Join(regressions, "\n  "))
	}
	fmt.Fprintf(bw, "  %d gated benchmarks within threshold\n", matched)
	return nil
}
