// Command retri-model prints the paper's analytic model (Section 4):
// efficiency curves, collision probabilities and optimal identifier sizes
// for arbitrary parameters.
//
// Usage:
//
//	retri-model -data 16 -t 16                # one AFF curve + optimum
//	retri-model -data 128 -t 256 -static 32   # compare with a static line
//	retri-model -collision -t 5               # Eq. 4 collision rates
package main

import (
	"flag"
	"fmt"
	"os"

	"retri/internal/model"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "retri-model:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("retri-model", flag.ContinueOnError)
	var (
		dataBits  = fs.Int("data", 16, "data size D in bits")
		density   = fs.Float64("t", 16, "transaction density T")
		hMin      = fs.Int("hmin", 1, "smallest identifier width")
		hMax      = fs.Int("hmax", 32, "largest identifier width")
		static    = fs.Int("static", 0, "also print a static line with this address width")
		collision = fs.Bool("collision", false, "print Eq. 4 collision rates instead of efficiency")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *collision {
		fmt.Printf("Collision rate at T=%g\n", *density)
		fmt.Printf("%6s %12s %14s %14s\n", "bits", "Eq.4", "exp-lengths", "listening(2T)")
		w := 2 * int(*density)
		for h := *hMin; h <= *hMax; h++ {
			fmt.Printf("%6d %12.6f %14.6f %14.6f\n", h,
				model.CollisionRate(h, *density),
				model.CollisionRatePoisson(h, *density),
				model.CollisionRateListening(h, *density, w))
		}
		return nil
	}

	curve, err := model.AFFCurve(*dataBits, *density, *hMin, *hMax)
	if err != nil {
		return err
	}
	fmt.Printf("AFF efficiency (Eq. 3), D=%d bits, T=%g\n", *dataBits, *density)
	if *static > 0 {
		fmt.Printf("%6s %12s %12s\n", "bits", "E_aff", fmt.Sprintf("E_static(%d)", *static))
	} else {
		fmt.Printf("%6s %12s\n", "bits", "E_aff")
	}
	for _, p := range curve {
		if *static > 0 {
			fmt.Printf("%6d %12.6f %12.6f\n", p.H, p.E, model.EStatic(*dataBits, *static))
		} else {
			fmt.Printf("%6d %12.6f\n", p.H, p.E)
		}
	}
	h, e := model.OptimalBits(*dataBits, *density, *hMax)
	fmt.Printf("optimum: %d bits (E=%.6f)\n", h, e)
	return nil
}
