package main

import "testing"

func TestRunEfficiencyCurve(t *testing.T) {
	if err := run([]string{"-data", "16", "-t", "16", "-hmax", "12"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithStaticLine(t *testing.T) {
	if err := run([]string{"-data", "128", "-t", "256", "-static", "32"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCollisionTable(t *testing.T) {
	if err := run([]string{"-collision", "-t", "5", "-hmin", "2", "-hmax", "10"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadRange(t *testing.T) {
	if err := run([]string{"-hmin", "10", "-hmax", "2"}); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Error("bad flag accepted")
	}
}
