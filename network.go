package retri

import (
	"fmt"
	"time"

	"retri/internal/aff"
	"retri/internal/core"
	"retri/internal/density"
	"retri/internal/energy"
	"retri/internal/node"
	"retri/internal/radio"
	"retri/internal/sim"
	"retri/internal/trace"
	"retri/internal/xrand"
)

// Network is a simulated broadcast sensor network whose nodes exchange
// packets through the AFF fragmentation service. It wraps the
// discrete-event engine, the radio medium, and per-node protocol stacks
// behind a small API.
type Network struct {
	eng  *sim.Engine
	med  *radio.Medium
	src  *xrand.Source
	opts networkOptions
}

type networkOptions struct {
	seed    uint64
	idBits  int
	listen  bool
	params  radio.Params
	topo    radio.Topology
	timeout time.Duration
}

// Option configures a Network.
type Option interface {
	apply(*networkOptions)
}

type optionFunc func(*networkOptions)

func (f optionFunc) apply(o *networkOptions) { f(o) }

// WithSeed fixes the master random seed; identical seeds reproduce runs
// exactly.
func WithSeed(seed uint64) Option {
	return optionFunc(func(o *networkOptions) { o.seed = seed })
}

// WithIdentifierBits sets the RETRI pool width for all nodes (default 9,
// the paper's Figure 1 optimum for T=16 with 16-bit data).
func WithIdentifierBits(bits int) Option {
	return optionFunc(func(o *networkOptions) { o.idBits = bits })
}

// WithListening enables the listening heuristic on every node: selectors
// avoid identifiers heard within the adaptive 2T window.
func WithListening() Option {
	return optionFunc(func(o *networkOptions) { o.listen = true })
}

// WithRadioParams overrides the radio defaults (27-byte MTU, 40kbit/s,
// CSMA, RPC-like framing).
func WithRadioParams(p radio.Params) Option {
	return optionFunc(func(o *networkOptions) { o.params = p })
}

// WithTopology overrides the full-mesh default (e.g. a unit-disk layout).
func WithTopology(t radio.Topology) Option {
	return optionFunc(func(o *networkOptions) { o.topo = t })
}

// WithReassemblyTimeout sets how long partial packets are held before
// eviction (default 30s).
func WithReassemblyTimeout(d time.Duration) Option {
	return optionFunc(func(o *networkOptions) { o.timeout = d })
}

// RadioParams re-exports the medium configuration for WithRadioParams.
type RadioParams = radio.Params

// DefaultRadioParams returns the paper-calibrated radio: 27-byte frames at
// 40 kbit/s with RPC-like framing and CSMA.
func DefaultRadioParams() RadioParams { return radio.DefaultParams() }

// Topology re-exports the connectivity interface for WithTopology.
type Topology = radio.Topology

// Topology constructors.
var (
	// NewFullMesh connects everyone (the paper's testbed).
	NewFullMesh = func() Topology { return radio.FullMesh{} }
)

// Point is a 2-D position for unit-disk topologies.
type Point = radio.Point

// NewUnitDisk returns a position-based topology with the given range;
// place nodes with its Place method before (or while) the simulation runs.
func NewUnitDisk(radioRange float64) *radio.UnitDisk { return radio.NewUnitDisk(radioRange) }

// NewShadowed returns a unit-disk topology with per-link log-normal
// shadowing (sigma in dB): irregular, reproducible coverage instead of
// perfect circles.
func NewShadowed(radioRange, sigmaDB float64, seed uint64) *radio.Shadowed {
	return radio.NewShadowed(radioRange, sigmaDB, seed)
}

// NewNetwork builds an empty network.
func NewNetwork(opts ...Option) *Network {
	o := networkOptions{
		seed:   1,
		idBits: 9,
		params: radio.DefaultParams(),
		topo:   radio.FullMesh{},
	}
	for _, opt := range opts {
		opt.apply(&o)
	}
	src := xrand.NewSource(o.seed)
	eng := sim.NewEngine()
	med := radio.NewMedium(eng, o.topo, o.params, src.Stream("medium"))
	return &Network{eng: eng, med: med, src: src, opts: o}
}

// Node is one sensor node: a radio plus the AFF stack.
type Node struct {
	id     radio.NodeID
	driver *node.AFFDriver
	net    *Network
}

// AddNode attaches a node with the network-wide defaults. IDs are
// simulation bookkeeping only; they never appear on the air.
func (n *Network) AddNode(id int) (*Node, error) {
	r, err := n.med.Attach(radio.NodeID(id))
	if err != nil {
		return nil, err
	}
	space, err := core.NewSpace(n.opts.idBits)
	if err != nil {
		return nil, err
	}
	label := fmt.Sprint(id)
	est := density.New(0, 0, n.eng.Now)
	var sel core.Selector
	if n.opts.listen {
		sel = core.NewListeningSelector(space, n.src.Stream("sel", label), est.Window)
	} else {
		sel = core.NewUniformSelector(space, n.src.Stream("sel", label))
	}
	d, err := node.NewAFF(r, aff.Config{
		Space:             space,
		MTU:               n.opts.params.MTU,
		ReassemblyTimeout: n.opts.timeout,
	}, sel, node.AFFOptions{
		Estimator:  est,
		ObserveOwn: n.opts.listen,
	})
	if err != nil {
		return nil, err
	}
	return &Node{id: radio.NodeID(id), driver: d, net: n}, nil
}

// Run executes the simulation until no events remain.
func (n *Network) Run() { n.eng.Run() }

// RunFor executes the simulation for a span of virtual time.
func (n *Network) RunFor(d time.Duration) { n.eng.RunFor(d) }

// Now returns the current virtual time.
func (n *Network) Now() time.Duration { return n.eng.Now() }

// Schedule runs fn after a virtual delay; use it to script traffic.
func (n *Network) Schedule(d time.Duration, fn func()) { n.eng.Schedule(d, fn) }

// Counters returns medium-wide frame statistics.
func (n *Network) Counters() radio.Counters { return n.med.Counters() }

// Tracer consumes structured simulation events; see NewTraceRing.
type Tracer = trace.Tracer

// TraceEvent is one structured simulation event.
type TraceEvent = trace.Event

// NewTraceRing returns a flight recorder keeping the last n events; attach
// it with SetTracer and inspect with its Events or Dump methods.
func NewTraceRing(n int) *trace.Ring { return trace.NewRing(n) }

// SetTracer streams radio-level events (frames sent, delivered, collided,
// lost) to t; nil disables tracing.
func (n *Network) SetTracer(t Tracer) { n.med.SetTracer(t) }

// ID returns the node's simulation ID.
func (nd *Node) ID() int { return int(nd.id) }

// Send fragments and broadcasts a packet (up to 64 KiB) under a fresh
// RETRI identifier.
func (nd *Node) Send(p []byte) error { return nd.driver.SendPacket(p) }

// OnPacket installs the delivery callback for reassembled packets.
func (nd *Node) OnPacket(fn func(p []byte)) { nd.driver.SetPacketHandler(fn) }

// Sent reports packets this node has transmitted.
func (nd *Node) Sent() int64 { return nd.driver.PacketsSent() }

// Delivered reports packets this node has reassembled and delivered.
func (nd *Node) Delivered() int64 { return nd.driver.PacketsDelivered() }

// Collisions reports transactions this node dropped due to identifier
// conflicts.
func (nd *Node) Collisions() int64 { return nd.driver.Reassembler().Stats().Conflicts }

// Energy returns the node's radio energy meter.
func (nd *Node) Energy() energy.Meter { return nd.driver.Radio().Meter() }

// SetUp powers the node's radio on or off (node churn).
func (nd *Node) SetUp(up bool) { nd.driver.Radio().SetUp(up) }
