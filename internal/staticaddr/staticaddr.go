// Package staticaddr implements the baseline the paper compares against:
// fragmentation keyed by a statically allocated, guaranteed-unique node
// address plus a per-sender sequence number (Section 2.1's IP-style
// (source address, identification) tuple).
//
// Identifier collisions are impossible by construction, so every
// transaction succeeds (Equation 2) — but every fragment carries the full
// address, and in a sensor network "globally unique addresses would need to
// be very large ... compared to the typical few bits of data attached to
// them" (Section 2.3). The address widths the paper discusses: 16 bits
// (optimal allocation for tens of thousands of nodes), 32 bits
// (conservative), 48 bits (Ethernet-style decentralized allocation).
package staticaddr

import (
	"errors"
	"fmt"
	"time"

	"retri/internal/checksum"
	"retri/internal/frame"
)

var (
	// ErrPacketTooLarge is returned for packets beyond the 64 KiB limit.
	ErrPacketTooLarge = errors.New("staticaddr: packet exceeds 64KiB limit")
	// ErrEmptyPacket is returned for zero-length packets.
	ErrEmptyPacket = errors.New("staticaddr: empty packet")
	// ErrMTUTooSmall is returned when no payload fits in a data fragment.
	ErrMTUTooSmall = errors.New("staticaddr: MTU too small for fragment header")
	// ErrBadAddress is returned when an address does not fit AddrBits.
	ErrBadAddress = errors.New("staticaddr: address out of range")
)

// Config parameterizes the static fragmentation service.
type Config struct {
	// AddrBits is the static address width (16, 32 or 48 in the paper's
	// comparisons).
	AddrBits int
	// SeqBits is the per-sender sequence width (default 16, as in IP).
	SeqBits int
	// MTU is the radio frame size in bytes (default 27).
	MTU int
	// Checksum selects the packet checksum (default Internet).
	Checksum checksum.Kind
	// ReassemblyTimeout evicts stale partial packets (default 30s).
	ReassemblyTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.SeqBits == 0 {
		c.SeqBits = frame.DefaultSeqBits
	}
	if c.MTU == 0 {
		c.MTU = 27
	}
	if c.Checksum == 0 {
		c.Checksum = checksum.Internet
	}
	if c.ReassemblyTimeout == 0 {
		c.ReassemblyTimeout = 30 * time.Second
	}
	return c
}

func (c Config) codec() frame.StaticCodec {
	return frame.StaticCodec{AddrBits: c.AddrBits, SeqBits: c.SeqBits}
}

// Fragment is one encoded radio frame.
type Fragment struct {
	Bytes []byte
	Bits  int
}

// Transaction is a fragmented packet ready for transmission.
type Transaction struct {
	// Src and Seq form the guaranteed-unique packet key.
	Src uint64
	Seq uint64
	// Fragments holds the introduction first, then data in offset order.
	Fragments []Fragment
	// DataBits is the packet payload size in bits.
	DataBits int
}

// TotalBits sums meaningful bits across fragments.
func (t Transaction) TotalBits() int {
	sum := 0
	for _, f := range t.Fragments {
		sum += f.Bits
	}
	return sum
}

// Fragmenter splits packets into statically addressed fragments.
type Fragmenter struct {
	cfg   Config
	codec frame.StaticCodec
	addr  uint64
	seq   uint64
}

// NewFragmenter returns a fragmenter for the node with the given static
// address.
func NewFragmenter(cfg Config, addr uint64) (*Fragmenter, error) {
	cfg = cfg.withDefaults()
	if cfg.AddrBits < 1 || cfg.AddrBits > 64 {
		return nil, fmt.Errorf("staticaddr: address width %d out of range", cfg.AddrBits)
	}
	if cfg.AddrBits < 64 && addr >= 1<<uint(cfg.AddrBits) {
		return nil, fmt.Errorf("%w: %d needs more than %d bits", ErrBadAddress, addr, cfg.AddrBits)
	}
	codec := cfg.codec()
	if codec.MaxPayload(cfg.MTU) <= 0 {
		return nil, fmt.Errorf("%w: %d bytes", ErrMTUTooSmall, cfg.MTU)
	}
	if (codec.IntroBits()+7)/8 > cfg.MTU {
		return nil, fmt.Errorf("%w: intro needs %d bytes", ErrMTUTooSmall, (codec.IntroBits()+7)/8)
	}
	return &Fragmenter{cfg: cfg, codec: codec, addr: addr}, nil
}

// Config returns the effective configuration.
func (f *Fragmenter) Config() Config { return f.cfg }

// Addr returns the node's static address.
func (f *Fragmenter) Addr() uint64 { return f.addr }

// Fragment splits packet into one introduction plus data fragments under
// the next sequence number.
func (f *Fragmenter) Fragment(packet []byte) (Transaction, error) {
	if len(packet) == 0 {
		return Transaction{}, ErrEmptyPacket
	}
	if len(packet) > frame.MaxPacketLen {
		return Transaction{}, fmt.Errorf("%w: %d bytes", ErrPacketTooLarge, len(packet))
	}
	seq := f.seq
	f.seq = (f.seq + 1) % (1 << uint(f.cfg.SeqBits))

	maxPayload := f.codec.MaxPayload(f.cfg.MTU)
	nData := (len(packet) + maxPayload - 1) / maxPayload
	tx := Transaction{
		Src:       f.addr,
		Seq:       seq,
		Fragments: make([]Fragment, 0, nData+1),
		DataBits:  8 * len(packet),
	}

	introBytes, introBits, err := f.codec.EncodeIntro(frame.StaticIntro{
		Src:      f.addr,
		Seq:      seq,
		TotalLen: len(packet),
		Checksum: checksum.Sum(f.cfg.Checksum, packet),
	})
	if err != nil {
		return Transaction{}, fmt.Errorf("staticaddr: encode intro: %w", err)
	}
	tx.Fragments = append(tx.Fragments, Fragment{Bytes: introBytes, Bits: introBits})

	for off := 0; off < len(packet); off += maxPayload {
		end := off + maxPayload
		if end > len(packet) {
			end = len(packet)
		}
		dataBytes, dataBits, err := f.codec.EncodeData(frame.StaticData{
			Src:     f.addr,
			Seq:     seq,
			Offset:  off,
			Payload: packet[off:end],
		})
		if err != nil {
			return Transaction{}, fmt.Errorf("staticaddr: encode data at %d: %w", off, err)
		}
		tx.Fragments = append(tx.Fragments, Fragment{Bytes: dataBytes, Bits: dataBits})
	}
	return tx, nil
}
