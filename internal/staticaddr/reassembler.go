package staticaddr

import (
	"time"

	"retri/internal/checksum"
	"retri/internal/frame"
)

// Stats counts reassembler outcomes. There is no Conflicts counter:
// (source, sequence) keys cannot collide, which is precisely what the
// extra header bits buy.
type Stats struct {
	Delivered        int64
	DeliveredBits    int64
	ChecksumFailures int64
	Timeouts         int64
	FragmentsIn      int64
	Malformed        int64
}

// Packet is a reassembled, verified packet.
type Packet struct {
	Src  uint64
	Seq  uint64
	Data []byte
}

type key struct {
	src, seq uint64
}

type pending struct {
	haveIntro bool
	totalLen  int
	sum       uint16

	buf      []byte
	covered  []bool
	gotBytes int

	early []*frame.StaticData

	lastActivity time.Duration
}

const maxEarlyFragments = 1 << 12

// Reassembler rebuilds packets keyed by (source address, sequence).
type Reassembler struct {
	cfg     Config
	codec   frame.StaticCodec
	now     func() time.Duration
	deliver func(Packet)

	pending map[key]*pending
	stats   Stats
}

// NewReassembler returns a reassembler calling deliver for each verified
// packet. A nil now disables timeout eviction.
func NewReassembler(cfg Config, now func() time.Duration, deliver func(Packet)) *Reassembler {
	cfg = cfg.withDefaults()
	if now == nil {
		now = func() time.Duration { return 0 }
		cfg.ReassemblyTimeout = 0
	}
	return &Reassembler{
		cfg:     cfg,
		codec:   cfg.codec(),
		now:     now,
		deliver: deliver,
		pending: make(map[key]*pending),
	}
}

// Stats returns a snapshot of the counters.
func (r *Reassembler) Stats() Stats { return r.stats }

// PendingCount reports partial packets held.
func (r *Reassembler) PendingCount() int { return len(r.pending) }

// Reset discards all partial-packet state, modelling a node crash.
// Counters belong to the measurement harness and survive.
func (r *Reassembler) Reset() {
	r.pending = make(map[key]*pending)
}

// Ingest processes one received frame.
func (r *Reassembler) Ingest(frameBytes []byte) {
	r.expire()
	decoded, err := r.codec.Decode(frameBytes)
	if err != nil {
		r.stats.Malformed++
		return
	}
	r.stats.FragmentsIn++
	switch fr := decoded.(type) {
	case *frame.StaticIntro:
		k := key{src: fr.Src, seq: fr.Seq}
		p := r.get(k)
		if p.haveIntro {
			return
		}
		p.haveIntro = true
		p.totalLen = fr.TotalLen
		p.sum = fr.Checksum
		p.buf = make([]byte, fr.TotalLen)
		p.covered = make([]bool, fr.TotalLen)
		early := p.early
		p.early = nil
		for _, d := range early {
			r.apply(p, d)
		}
		r.maybeComplete(k, p)
	case *frame.StaticData:
		k := key{src: fr.Src, seq: fr.Seq}
		p := r.get(k)
		if !p.haveIntro {
			if len(p.early) < maxEarlyFragments {
				p.early = append(p.early, fr)
			}
			return
		}
		r.apply(p, fr)
		r.maybeComplete(k, p)
	}
}

func (r *Reassembler) get(k key) *pending {
	p, ok := r.pending[k]
	if !ok {
		p = &pending{}
		r.pending[k] = p
	}
	p.lastActivity = r.now()
	return p
}

// apply merges a data fragment. Out-of-range offsets can only be
// corruption under a unique key; the fragment is ignored.
func (r *Reassembler) apply(p *pending, d *frame.StaticData) {
	end := d.Offset + len(d.Payload)
	if end > p.totalLen {
		return
	}
	for i, b := range d.Payload {
		at := d.Offset + i
		if !p.covered[at] {
			p.covered[at] = true
			p.gotBytes++
		}
		p.buf[at] = b
	}
}

func (r *Reassembler) maybeComplete(k key, p *pending) {
	if !p.haveIntro || p.gotBytes != p.totalLen {
		return
	}
	delete(r.pending, k)
	if checksum.Sum(r.cfg.Checksum, p.buf) != p.sum {
		r.stats.ChecksumFailures++
		return
	}
	r.stats.Delivered++
	r.stats.DeliveredBits += int64(8 * len(p.buf))
	if r.deliver != nil {
		r.deliver(Packet{Src: k.src, Seq: k.seq, Data: p.buf})
	}
}

func (r *Reassembler) expire() {
	if r.cfg.ReassemblyTimeout <= 0 {
		return
	}
	cutoff := r.now() - r.cfg.ReassemblyTimeout
	if cutoff <= 0 {
		return
	}
	for k, p := range r.pending {
		if p.lastActivity < cutoff {
			delete(r.pending, k)
			r.stats.Timeouts++
		}
	}
}
