package staticaddr

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"math/rand/v2"

	"retri/internal/frame"
)

func testConfig() Config {
	return Config{AddrBits: 16, MTU: 27}
}

func TestFragmentShape(t *testing.T) {
	f, err := NewFragmenter(testConfig(), 42)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := f.Fragment(make([]byte, 80))
	if err != nil {
		t.Fatal(err)
	}
	if tx.Src != 42 || tx.Seq != 0 {
		t.Errorf("key = (%d, %d), want (42, 0)", tx.Src, tx.Seq)
	}
	// Static data header: 1+16+16+16 = 49 bits -> 7 bytes; 20-byte payload
	// per fragment at MTU 27 -> 4 data fragments for 80 bytes.
	if len(tx.Fragments) != 5 {
		t.Errorf("fragments = %d, want 5", len(tx.Fragments))
	}
	for i, fr := range tx.Fragments {
		if len(fr.Bytes) > 27 {
			t.Errorf("fragment %d exceeds MTU: %d bytes", i, len(fr.Bytes))
		}
	}
}

func TestSequenceAdvancesAndWraps(t *testing.T) {
	cfg := testConfig()
	cfg.SeqBits = 2 // wrap after 4
	f, err := NewFragmenter(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	var seqs []uint64
	for i := 0; i < 6; i++ {
		tx, err := f.Fragment([]byte("x"))
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, tx.Seq)
	}
	want := []uint64{0, 1, 2, 3, 0, 1}
	for i := range want {
		if seqs[i] != want[i] {
			t.Errorf("seqs = %v, want %v", seqs, want)
			break
		}
	}
}

func TestFragmenterValidation(t *testing.T) {
	if _, err := NewFragmenter(Config{AddrBits: 0}, 0); err == nil {
		t.Error("AddrBits 0 accepted")
	}
	if _, err := NewFragmenter(Config{AddrBits: 8}, 256); !errors.Is(err, ErrBadAddress) {
		t.Errorf("oversize address err = %v, want ErrBadAddress", err)
	}
	cfg := testConfig()
	cfg.MTU = 3
	if _, err := NewFragmenter(cfg, 1); !errors.Is(err, ErrMTUTooSmall) {
		t.Errorf("tiny MTU err = %v, want ErrMTUTooSmall", err)
	}
}

func TestFragmentRejectsBadPackets(t *testing.T) {
	f, err := NewFragmenter(testConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Fragment(nil); !errors.Is(err, ErrEmptyPacket) {
		t.Errorf("empty err = %v", err)
	}
	if _, err := f.Fragment(make([]byte, frame.MaxPacketLen+1)); !errors.Is(err, ErrPacketTooLarge) {
		t.Errorf("oversize err = %v", err)
	}
}

func TestRoundTrip(t *testing.T) {
	cfg := testConfig()
	f, err := NewFragmenter(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	var out []Packet
	r := NewReassembler(cfg, nil, func(p Packet) { out = append(out, p) })
	packet := make([]byte, 200)
	for i := range packet {
		packet[i] = byte(i * 3)
	}
	tx, err := f.Fragment(packet)
	if err != nil {
		t.Fatal(err)
	}
	for _, fr := range tx.Fragments {
		r.Ingest(fr.Bytes)
	}
	if len(out) != 1 || !bytes.Equal(out[0].Data, packet) {
		t.Fatal("round trip failed")
	}
	if out[0].Src != 7 || out[0].Seq != 0 {
		t.Errorf("delivered key (%d, %d), want (7, 0)", out[0].Src, out[0].Seq)
	}
	if r.PendingCount() != 0 {
		t.Errorf("pending leak: %d", r.PendingCount())
	}
}

// TestInterleavedSendersNoCollision is the baseline's defining property:
// many senders interleaving identical-length packets all deliver, because
// the address disambiguates — the scenario where AFF would collide.
func TestInterleavedSendersNoCollision(t *testing.T) {
	cfg := testConfig()
	r := NewReassembler(cfg, nil, nil)
	var txs []Transaction
	for addr := uint64(0); addr < 8; addr++ {
		f, err := NewFragmenter(cfg, addr)
		if err != nil {
			t.Fatal(err)
		}
		pkt := bytes.Repeat([]byte{byte(addr)}, 60)
		tx, err := f.Fragment(pkt)
		if err != nil {
			t.Fatal(err)
		}
		txs = append(txs, tx)
	}
	// Interleave all senders fragment by fragment.
	for i := 0; i < len(txs[0].Fragments); i++ {
		for _, tx := range txs {
			r.Ingest(tx.Fragments[i].Bytes)
		}
	}
	if got := r.Stats().Delivered; got != 8 {
		t.Errorf("Delivered = %d, want 8", got)
	}
	if r.Stats().ChecksumFailures != 0 {
		t.Errorf("checksum failures: %d", r.Stats().ChecksumFailures)
	}
}

func TestStaticHeaderCostGrowsWithAddrBits(t *testing.T) {
	tx := func(addrBits int) int {
		cfg := Config{AddrBits: addrBits, MTU: 27}
		f, err := NewFragmenter(cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		out, err := f.Fragment(make([]byte, 80))
		if err != nil {
			t.Fatal(err)
		}
		return out.TotalBits()
	}
	b16, b32, b48 := tx(16), tx(32), tx(48)
	if !(b16 < b32 && b32 < b48) {
		t.Errorf("total bits should grow with address width: %d, %d, %d", b16, b32, b48)
	}
}

func TestEarlyDataBuffered(t *testing.T) {
	cfg := testConfig()
	f, err := NewFragmenter(cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	var out []Packet
	r := NewReassembler(cfg, nil, func(p Packet) { out = append(out, p) })
	tx, err := f.Fragment(make([]byte, 50))
	if err != nil {
		t.Fatal(err)
	}
	for _, fr := range tx.Fragments[1:] {
		r.Ingest(fr.Bytes)
	}
	if len(out) != 0 {
		t.Fatal("delivered before introduction")
	}
	r.Ingest(tx.Fragments[0].Bytes)
	if len(out) != 1 {
		t.Error("not delivered after introduction")
	}
}

func TestTimeoutEviction(t *testing.T) {
	cfg := testConfig()
	cfg.ReassemblyTimeout = 5 * time.Second
	now := time.Duration(0)
	f, err := NewFragmenter(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReassembler(cfg, func() time.Duration { return now }, nil)
	tx, err := f.Fragment(make([]byte, 80))
	if err != nil {
		t.Fatal(err)
	}
	r.Ingest(tx.Fragments[0].Bytes)
	now = time.Minute
	tx2, err := f.Fragment([]byte("y"))
	if err != nil {
		t.Fatal(err)
	}
	for _, fr := range tx2.Fragments {
		r.Ingest(fr.Bytes)
	}
	if r.Stats().Timeouts != 1 {
		t.Errorf("Timeouts = %d, want 1", r.Stats().Timeouts)
	}
}

func TestMalformedCounted(t *testing.T) {
	r := NewReassembler(testConfig(), nil, nil)
	r.Ingest([]byte{0xFF})
	if r.Stats().Malformed != 1 {
		t.Errorf("Malformed = %d, want 1", r.Stats().Malformed)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64, sizeRaw uint16, addrBitsRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 9))
		addrBits := int(addrBitsRaw%48) + 8
		size := int(sizeRaw%1500) + 1
		cfg := Config{AddrBits: addrBits, MTU: 27}
		var addrMask uint64 = 1<<uint(addrBits) - 1
		fr, err := NewFragmenter(cfg, rng.Uint64()&addrMask)
		if err != nil {
			return false
		}
		packet := make([]byte, size)
		for i := range packet {
			packet[i] = byte(rng.Uint64())
		}
		var out []Packet
		r := NewReassembler(cfg, nil, func(p Packet) { out = append(out, p) })
		tx, err := fr.Fragment(packet)
		if err != nil {
			return false
		}
		for _, f := range tx.Fragments {
			r.Ingest(f.Bytes)
		}
		return len(out) == 1 && bytes.Equal(out[0].Data, packet)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
