// Package faults is the deterministic fault-injection engine behind the
// recovery experiments: scripted and stochastic schedules for node
// crash/restart and per-edge link flapping, a Gilbert–Elliott burst-loss
// channel (an alternative to the medium's i.i.d. FrameLoss), and payload
// corruption the checksum layer must catch.
//
// Everything runs on the simulation clock from labelled xrand streams, so
// a (seed, schedule) pair reproduces the same fault sequence exactly —
// fault injection never perturbs a run's determinism, it is part of the
// run's definition. Crash semantics follow the paper's node-dynamics
// story: a crash wipes the node's soft state (reassembler, selector
// window) and takes the radio down; a restart brings the radio back with
// empty state, and any higher recovery layer simply resumes — every
// retransmission drawing a fresh RETRI identifier (Section 3).
package faults

import (
	"fmt"
	"math/rand/v2"
	"time"

	"retri/internal/radio"
	"retri/internal/sim"
	"retri/internal/trace"
)

// NodeControl is the slice of a node stack the injector needs: Crash takes
// the radio down and wipes soft state; Restart powers the radio back up.
// Both node.AFFDriver and node.StaticDriver implement it.
type NodeControl interface {
	Crash()
	Restart()
}

// Counters tallies injected faults.
type Counters struct {
	Crashes   int64
	Restarts  int64
	LinkDowns int64
	LinkUps   int64
}

// Injector schedules and applies faults on one trial's engine. Like every
// other simulation component it is single-goroutine: one injector per
// trial.
type Injector struct {
	eng    *sim.Engine
	nodes  map[radio.NodeID]NodeControl
	flaky  *FlakyTopology
	tracer trace.Tracer
	// horizon bounds stochastic plans: no new fault begins at or after it
	// (in-progress downtime still completes, so a run always ends with
	// every node restarted and every link restored).
	horizon time.Duration
	ctr     Counters
}

// NewInjector returns an injector on eng whose stochastic plans stop
// starting new faults at the horizon.
func NewInjector(eng *sim.Engine, horizon time.Duration) *Injector {
	return &Injector{
		eng:     eng,
		nodes:   make(map[radio.NodeID]NodeControl),
		horizon: horizon,
	}
}

// SetTracer installs a tracer for fault events; nil disables.
func (in *Injector) SetTracer(t trace.Tracer) { in.tracer = t }

// SetFlaky installs the wrapped topology link faults act on.
func (in *Injector) SetFlaky(f *FlakyTopology) { in.flaky = f }

// Register attaches a node's control interface under its radio ID.
func (in *Injector) Register(id radio.NodeID, n NodeControl) {
	in.nodes[id] = n
}

// Counters returns a snapshot of the injected-fault tallies.
func (in *Injector) Counters() Counters { return in.ctr }

func (in *Injector) emit(kind trace.Kind, node, peer radio.NodeID) {
	if in.tracer == nil {
		return
	}
	in.tracer.Record(trace.Event{At: in.eng.Now(), Kind: kind, Node: int(node), Peer: int(peer)})
}

// Crash crashes a registered node immediately.
func (in *Injector) Crash(id radio.NodeID) error {
	n, ok := in.nodes[id]
	if !ok {
		return fmt.Errorf("faults: crash of unregistered node %d", id)
	}
	n.Crash()
	in.ctr.Crashes++
	in.emit(trace.NodeCrash, id, id)
	return nil
}

// Restart restarts a registered node immediately.
func (in *Injector) Restart(id radio.NodeID) error {
	n, ok := in.nodes[id]
	if !ok {
		return fmt.Errorf("faults: restart of unregistered node %d", id)
	}
	n.Restart()
	in.ctr.Restarts++
	in.emit(trace.NodeRestart, id, id)
	return nil
}

// LinkDown severs the link a—b on the flaky topology.
func (in *Injector) LinkDown(a, b radio.NodeID) error {
	if in.flaky == nil {
		return fmt.Errorf("faults: link fault without a flaky topology")
	}
	in.flaky.SetLinkDown(a, b, true)
	in.ctr.LinkDowns++
	in.emit(trace.LinkDown, a, b)
	return nil
}

// LinkUp restores the link a—b on the flaky topology.
func (in *Injector) LinkUp(a, b radio.NodeID) error {
	if in.flaky == nil {
		return fmt.Errorf("faults: link fault without a flaky topology")
	}
	in.flaky.SetLinkDown(a, b, false)
	in.ctr.LinkUps++
	in.emit(trace.LinkUp, a, b)
	return nil
}

// Apply validates a script against the registered nodes/topology and
// schedules every action at its absolute virtual time. Call it before
// running the engine.
func (in *Injector) Apply(s Script) error {
	for _, a := range s.Actions {
		switch a.Op {
		case OpCrash, OpRestart:
			if _, ok := in.nodes[a.Node]; !ok {
				return fmt.Errorf("faults: script line %d: node %d not part of this experiment", a.Line, a.Node)
			}
		case OpLinkDown, OpLinkUp:
			if in.flaky == nil {
				return fmt.Errorf("faults: script line %d: link faults need a flappable topology", a.Line)
			}
		default:
			return fmt.Errorf("faults: script line %d: unknown op %q", a.Line, a.Op)
		}
	}
	for _, a := range s.Actions {
		a := a
		in.eng.ScheduleAt(a.At, func() {
			switch a.Op {
			case OpCrash:
				_ = in.Crash(a.Node)
			case OpRestart:
				_ = in.Restart(a.Node)
			case OpLinkDown:
				_ = in.LinkDown(a.Node, a.Peer)
			case OpLinkUp:
				_ = in.LinkUp(a.Node, a.Peer)
			}
		})
	}
	return nil
}

// CrashPlan is a stochastic crash/restart schedule for one node:
// exponential up-times with the given mean between failures, then an
// exponential downtime before restart.
type CrashPlan struct {
	// MTBF is the mean up-time before a crash.
	MTBF time.Duration
	// MeanDowntime is the mean time a crashed node stays down.
	MeanDowntime time.Duration
}

// Validate rejects non-positive means.
func (p CrashPlan) Validate() error {
	if p.MTBF <= 0 || p.MeanDowntime <= 0 {
		return fmt.Errorf("faults: crash plan needs positive MTBF and downtime, got %v/%v", p.MTBF, p.MeanDowntime)
	}
	return nil
}

// StartCrashPlan runs the plan for a registered node until the horizon,
// drawing from rng. The final restart always completes.
func (in *Injector) StartCrashPlan(id radio.NodeID, p CrashPlan, rng *rand.Rand) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if _, ok := in.nodes[id]; !ok {
		return fmt.Errorf("faults: crash plan for unregistered node %d", id)
	}
	var up func()
	up = func() {
		life := expDuration(rng, p.MTBF)
		at := in.eng.Now() + life
		if at >= in.horizon {
			return
		}
		in.eng.Schedule(life, func() {
			_ = in.Crash(id)
			down := expDuration(rng, p.MeanDowntime)
			in.eng.Schedule(down, func() {
				_ = in.Restart(id)
				up()
			})
		})
	}
	up()
	return nil
}

// FlapPlan is a stochastic link-flapping schedule for one edge:
// exponential up-times, then exponential outages.
type FlapPlan struct {
	// MeanUp is the mean time the link stays up between flaps.
	MeanUp time.Duration
	// MeanDown is the mean outage length.
	MeanDown time.Duration
}

// Validate rejects non-positive means.
func (p FlapPlan) Validate() error {
	if p.MeanUp <= 0 || p.MeanDown <= 0 {
		return fmt.Errorf("faults: flap plan needs positive up/down means, got %v/%v", p.MeanUp, p.MeanDown)
	}
	return nil
}

// StartFlapPlan runs the plan for the edge a—b until the horizon, drawing
// from rng. The final restore always completes.
func (in *Injector) StartFlapPlan(a, b radio.NodeID, p FlapPlan, rng *rand.Rand) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if in.flaky == nil {
		return fmt.Errorf("faults: flap plan without a flappable topology")
	}
	var up func()
	up = func() {
		hold := expDuration(rng, p.MeanUp)
		at := in.eng.Now() + hold
		if at >= in.horizon {
			return
		}
		in.eng.Schedule(hold, func() {
			_ = in.LinkDown(a, b)
			outage := expDuration(rng, p.MeanDown)
			in.eng.Schedule(outage, func() {
				_ = in.LinkUp(a, b)
				up()
			})
		})
	}
	up()
	return nil
}

// expDuration draws an exponential duration with the given mean, clamped
// to at least one nanosecond so schedules always advance.
func expDuration(rng *rand.Rand, mean time.Duration) time.Duration {
	d := time.Duration(rng.ExpFloat64() * float64(mean))
	if d < 1 {
		d = 1
	}
	return d
}
