package faults

import (
	"fmt"
	"math/rand/v2"
	"time"

	"retri/internal/radio"
)

// GEParams configures a Gilbert–Elliott two-state burst-loss channel.
// Every (frame, receiver) delivery attempt on a directed link first
// advances that link's good/bad state with the per-frame transition
// probabilities, then draws loss at the state's rate. The stationary bad
// probability is PGB/(PGB+PBG); mean burst length in frames is 1/PBG.
type GEParams struct {
	// PGB is the per-frame probability of a good→bad transition.
	PGB float64
	// PBG is the per-frame probability of a bad→good transition.
	PBG float64
	// LossGood is the loss rate while the link is good.
	LossGood float64
	// LossBad is the loss rate while the link is bad.
	LossBad float64
}

// DefaultGEParams is a moderately bursty channel: ~17% of frames arrive in
// a bad state losing 60% of them, against a 0.5% background — about 10%
// average loss in bursts a few frames long.
func DefaultGEParams() GEParams {
	return GEParams{PGB: 0.05, PBG: 0.25, LossGood: 0.005, LossBad: 0.6}
}

// Validate rejects parameters outside [0, 1].
func (p GEParams) Validate() error {
	for _, v := range []struct {
		name string
		v    float64
	}{{"PGB", p.PGB}, {"PBG", p.PBG}, {"LossGood", p.LossGood}, {"LossBad", p.LossBad}} {
		if v.v < 0 || v.v > 1 {
			return fmt.Errorf("faults: Gilbert–Elliott %s = %v out of [0, 1]", v.name, v.v)
		}
	}
	return nil
}

// MeanLoss returns the stationary average loss rate.
func (p GEParams) MeanLoss() float64 {
	if p.PGB+p.PBG == 0 {
		return p.LossGood
	}
	bad := p.PGB / (p.PGB + p.PBG)
	return (1-bad)*p.LossGood + bad*p.LossBad
}

// GilbertElliott is a radio.LossModel with independent per-directed-link
// chains. All state advances happen in the medium's deterministic delivery
// order from a private rng stream, so runs are reproducible.
type GilbertElliott struct {
	p     GEParams
	rng   *rand.Rand
	bad   map[[2]radio.NodeID]bool
	drops int64
}

var _ radio.LossModel = (*GilbertElliott)(nil)

// NewGilbertElliott returns a burst-loss channel driven by rng. Every link
// starts in the good state.
func NewGilbertElliott(p GEParams, rng *rand.Rand) *GilbertElliott {
	return &GilbertElliott{p: p, rng: rng, bad: make(map[[2]radio.NodeID]bool)}
}

// Drop advances the from→to chain one frame and draws loss at the
// resulting state's rate.
func (g *GilbertElliott) Drop(from, to radio.NodeID, _ time.Duration) bool {
	key := [2]radio.NodeID{from, to}
	bad := g.bad[key]
	if bad {
		if g.p.PBG > 0 && g.rng.Float64() < g.p.PBG {
			bad = false
		}
	} else if g.p.PGB > 0 && g.rng.Float64() < g.p.PGB {
		bad = true
	}
	g.bad[key] = bad
	rate := g.p.LossGood
	if bad {
		rate = g.p.LossBad
	}
	if rate > 0 && g.rng.Float64() < rate {
		g.drops++
		return true
	}
	return false
}

// Drops reports frames this model has dropped.
func (g *GilbertElliott) Drops() int64 { return g.drops }
