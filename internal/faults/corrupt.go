package faults

import "math/rand/v2"

// BitFlipper is a radio.Corrupter that, with probability Prob per
// delivery, flips one uniformly chosen bit of the payload — the classic
// single-bit channel error the frame checksum must catch. It always
// mutates a private copy; the on-air payload shared with other receivers
// is untouched.
type BitFlipper struct {
	prob  float64
	rng   *rand.Rand
	flips int64
}

// NewBitFlipper returns a corrupter flipping one bit with the given
// per-delivery probability.
func NewBitFlipper(prob float64, rng *rand.Rand) *BitFlipper {
	return &BitFlipper{prob: prob, rng: rng}
}

// Corrupt possibly flips one bit in a copy of p.
func (b *BitFlipper) Corrupt(p []byte) ([]byte, bool) {
	if b.prob <= 0 || len(p) == 0 || b.rng.Float64() >= b.prob {
		return p, false
	}
	out := append([]byte(nil), p...)
	bit := b.rng.IntN(8 * len(out))
	out[bit/8] ^= 1 << uint(bit%8)
	b.flips++
	return out, true
}

// Flips reports payloads this corrupter has damaged.
func (b *BitFlipper) Flips() int64 { return b.flips }
