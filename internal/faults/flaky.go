package faults

import "retri/internal/radio"

// FlakyTopology wraps any radio.Topology with a set of administratively
// severed links, so the fault engine can flap individual edges without
// knowing how the base topology computes connectivity. Severed links are
// symmetric, like every provided topology.
type FlakyTopology struct {
	base radio.Topology
	down map[[2]radio.NodeID]bool
}

var _ radio.Topology = (*FlakyTopology)(nil)

// NewFlakyTopology wraps base with no links severed.
func NewFlakyTopology(base radio.Topology) *FlakyTopology {
	return &FlakyTopology{base: base, down: make(map[[2]radio.NodeID]bool)}
}

// SetLinkDown severs or restores the symmetric link a—b. Severing a link
// the base topology never had is harmless.
func (f *FlakyTopology) SetLinkDown(a, b radio.NodeID, isDown bool) {
	if a == b {
		return
	}
	key := edgeKey(a, b)
	if isDown {
		f.down[key] = true
	} else {
		delete(f.down, key)
	}
}

// LinkDown reports whether the link a—b is currently severed.
func (f *FlakyTopology) LinkDown(a, b radio.NodeID) bool {
	return f.down[edgeKey(a, b)]
}

// Connected reports base connectivity minus severed links.
func (f *FlakyTopology) Connected(from, to radio.NodeID) bool {
	if f.down[edgeKey(from, to)] {
		return false
	}
	return f.base.Connected(from, to)
}

func edgeKey(a, b radio.NodeID) [2]radio.NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]radio.NodeID{a, b}
}
