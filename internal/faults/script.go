package faults

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"retri/internal/radio"
)

// Op is a scripted fault action.
type Op string

// Script operations.
const (
	OpCrash    Op = "crash"
	OpRestart  Op = "restart"
	OpLinkDown Op = "linkdown"
	OpLinkUp   Op = "linkup"
)

// Action is one scripted fault.
type Action struct {
	// At is the absolute virtual time the fault fires.
	At time.Duration
	// Op selects the fault.
	Op Op
	// Node is the crash/restart target, or one endpoint of a link fault.
	Node radio.NodeID
	// Peer is the other endpoint of a link fault (unused for node faults).
	Peer radio.NodeID
	// Line is the 1-based script line, for error messages.
	Line int
}

// Script is a parsed, validated fault schedule.
type Script struct {
	Actions []Action
}

// ParseScript reads a fault script: one action per line, `#` comments and
// blank lines ignored. Grammar:
//
//	<when> crash <node>
//	<when> restart <node>
//	<when> linkdown <nodeA> <nodeB>
//	<when> linkup <nodeA> <nodeB>
//
// where <when> is a Go duration (absolute virtual time, e.g. 10s, 1m30s)
// and nodes are non-negative radio IDs. Malformed lines are rejected with
// the line number and what was expected.
func ParseScript(r io.Reader) (Script, error) {
	var s Script
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = strings.TrimSpace(text[:i])
		}
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return Script{}, fmt.Errorf("faults: script line %d: want \"<time> <action> <node...>\", got %q", line, text)
		}
		at, err := time.ParseDuration(fields[0])
		if err != nil {
			return Script{}, fmt.Errorf("faults: script line %d: bad time %q: %v", line, fields[0], err)
		}
		if at < 0 {
			return Script{}, fmt.Errorf("faults: script line %d: negative time %q", line, fields[0])
		}
		a := Action{At: at, Op: Op(fields[1]), Line: line}
		switch a.Op {
		case OpCrash, OpRestart:
			if len(fields) != 3 {
				return Script{}, fmt.Errorf("faults: script line %d: %s wants one node ID, got %d args", line, a.Op, len(fields)-2)
			}
			a.Node, err = parseNode(fields[2])
			if err != nil {
				return Script{}, fmt.Errorf("faults: script line %d: %v", line, err)
			}
		case OpLinkDown, OpLinkUp:
			if len(fields) != 4 {
				return Script{}, fmt.Errorf("faults: script line %d: %s wants two node IDs, got %d args", line, a.Op, len(fields)-2)
			}
			a.Node, err = parseNode(fields[2])
			if err != nil {
				return Script{}, fmt.Errorf("faults: script line %d: %v", line, err)
			}
			a.Peer, err = parseNode(fields[3])
			if err != nil {
				return Script{}, fmt.Errorf("faults: script line %d: %v", line, err)
			}
			if a.Node == a.Peer {
				return Script{}, fmt.Errorf("faults: script line %d: link endpoints must differ, got %d—%d", line, a.Node, a.Peer)
			}
		default:
			return Script{}, fmt.Errorf("faults: script line %d: unknown action %q (want crash, restart, linkdown or linkup)", line, fields[1])
		}
		s.Actions = append(s.Actions, a)
	}
	if err := sc.Err(); err != nil {
		return Script{}, fmt.Errorf("faults: reading script: %w", err)
	}
	// Stable-sort by time so Apply schedules in firing order and
	// same-instant actions keep script order.
	sort.SliceStable(s.Actions, func(i, j int) bool { return s.Actions[i].At < s.Actions[j].At })
	return s, nil
}

// ParseScriptString is ParseScript over a string.
func ParseScriptString(text string) (Script, error) {
	return ParseScript(strings.NewReader(text))
}

// MaxNode returns the largest node ID the script references, or -1 for an
// empty script — used to validate a script against an experiment's
// population before running it.
func (s Script) MaxNode() radio.NodeID {
	max := radio.NodeID(-1)
	for _, a := range s.Actions {
		if a.Node > max {
			max = a.Node
		}
		switch a.Op {
		case OpLinkDown, OpLinkUp:
			if a.Peer > max {
				max = a.Peer
			}
		}
	}
	return max
}

func parseNode(s string) (radio.NodeID, error) {
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad node ID %q (want a non-negative integer)", s)
	}
	return radio.NodeID(n), nil
}
