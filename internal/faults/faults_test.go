package faults

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"retri/internal/radio"
	"retri/internal/sim"
	"retri/internal/xrand"
)

func TestParseScriptGrammar(t *testing.T) {
	s, err := ParseScriptString(`
# warm-up, nothing happens
10s crash 2
500ms linkdown 0 3   # sever the sink link early
10s restart 2        # same instant as the crash: keeps script order
1m30s linkup 0 3
`)
	if err != nil {
		t.Fatal(err)
	}
	want := []Action{
		{At: 500 * time.Millisecond, Op: OpLinkDown, Node: 0, Peer: 3, Line: 4},
		{At: 10 * time.Second, Op: OpCrash, Node: 2, Line: 3},
		{At: 10 * time.Second, Op: OpRestart, Node: 2, Line: 5},
		{At: 90 * time.Second, Op: OpLinkUp, Node: 0, Peer: 3, Line: 6},
	}
	if len(s.Actions) != len(want) {
		t.Fatalf("parsed %d actions, want %d: %+v", len(s.Actions), len(want), s.Actions)
	}
	for i, a := range s.Actions {
		if a != want[i] {
			t.Errorf("action %d = %+v, want %+v", i, a, want[i])
		}
	}
	if got := s.MaxNode(); got != 3 {
		t.Errorf("MaxNode = %d, want 3 (a link peer)", got)
	}
}

func TestParseScriptErrors(t *testing.T) {
	cases := []struct {
		script string
		line   int
		expect string // substring the error must carry besides the line number
	}{
		{"banana\n", 1, "<time>"},
		{"\n\nnonsense crash 1\n", 3, "bad time"},
		{"-5s crash 1\n", 1, "negative"},
		{"1s explode 1\n", 1, "unknown action"},
		{"1s crash\n", 1, "one node ID"},
		{"1s crash 1 2\n", 1, "one node ID"},
		{"1s crash minus-one\n", 1, "bad node ID"},
		{"1s crash -1\n", 1, "bad node ID"},
		{"1s linkdown 1\n", 1, "two node IDs"},
		{"1s linkup 4 4\n", 1, "endpoints must differ"},
	}
	for _, c := range cases {
		_, err := ParseScriptString(c.script)
		if err == nil {
			t.Errorf("script %q accepted", c.script)
			continue
		}
		if want := fmt.Sprintf("line %d", c.line); !strings.Contains(err.Error(), want) {
			t.Errorf("script %q: error %q lacks %q", c.script, err, want)
		}
		if !strings.Contains(err.Error(), c.expect) {
			t.Errorf("script %q: error %q lacks %q", c.script, err, c.expect)
		}
	}
}

func TestMaxNodeEmptyScript(t *testing.T) {
	s, err := ParseScriptString("# only comments\n")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.MaxNode(); got != -1 {
		t.Errorf("MaxNode of empty script = %d, want -1", got)
	}
}

func TestGEParamsValidate(t *testing.T) {
	if err := DefaultGEParams().Validate(); err != nil {
		t.Errorf("defaults rejected: %v", err)
	}
	bad := []GEParams{
		{PGB: -0.1, PBG: 0.5},
		{PGB: 0.1, PBG: 1.5},
		{LossGood: 2},
		{LossBad: -1},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%+v accepted", p)
		}
	}
}

func TestGEMeanLoss(t *testing.T) {
	p := GEParams{PGB: 0.1, PBG: 0.3, LossGood: 0, LossBad: 1}
	// Stationary bad probability 0.1/0.4 = 0.25.
	if got := p.MeanLoss(); got < 0.24 || got > 0.26 {
		t.Errorf("MeanLoss = %v, want 0.25", got)
	}
	// Degenerate chain: never transitions, loss is the good rate.
	p = GEParams{LossGood: 0.07}
	if got := p.MeanLoss(); got != 0.07 {
		t.Errorf("frozen-chain MeanLoss = %v, want 0.07", got)
	}
}

func TestGilbertElliottDeterministic(t *testing.T) {
	draw := func() []bool {
		g := NewGilbertElliott(DefaultGEParams(), xrand.NewSource(42).Stream("ge"))
		out := make([]bool, 0, 500)
		for i := 0; i < 500; i++ {
			out = append(out, g.Drop(1, 2, time.Duration(i)))
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("drop sequence diverged at frame %d: same seed must reproduce", i)
		}
	}
}

func TestGilbertElliottLossNearStationaryMean(t *testing.T) {
	p := DefaultGEParams()
	g := NewGilbertElliott(p, xrand.NewSource(7).Stream("ge-mean"))
	const n = 20000
	drops := 0
	for i := 0; i < n; i++ {
		if g.Drop(1, 2, time.Duration(i)) {
			drops++
		}
	}
	if int64(drops) != g.Drops() {
		t.Errorf("Drops() = %d, observed %d", g.Drops(), drops)
	}
	got := float64(drops) / n
	want := p.MeanLoss()
	if got < want/2 || got > want*2 {
		t.Errorf("observed loss %v too far from stationary mean %v", got, want)
	}
}

func TestGilbertElliottPerLinkChains(t *testing.T) {
	// Two directed links advance independent chains: hammering one link
	// into its bad state must not raise the other's loss.
	p := GEParams{PGB: 1, PBG: 0, LossGood: 0, LossBad: 1}
	g := NewGilbertElliott(p, xrand.NewSource(9).Stream("ge-links"))
	if !g.Drop(1, 2, 0) {
		t.Fatal("link 1→2 should be bad (and lossy) after one frame")
	}
	// A fresh link starts good; its first frame transitions it to bad and
	// then loses it, so frame one drops but the *state map* is per-link.
	if len(g.bad) != 2 && !g.bad[[2]radio.NodeID{1, 2}] {
		t.Errorf("chains are not per-link: %v", g.bad)
	}
}

func TestFlakyTopology(t *testing.T) {
	f := NewFlakyTopology(radio.FullMesh{})
	if !f.Connected(1, 2) {
		t.Fatal("full mesh starts connected")
	}
	f.SetLinkDown(2, 1, true) // reversed endpoints: edges are symmetric
	if f.Connected(1, 2) || f.Connected(2, 1) {
		t.Error("severed link still connected")
	}
	if !f.LinkDown(1, 2) {
		t.Error("LinkDown not reported")
	}
	if !f.Connected(1, 3) {
		t.Error("unrelated link severed")
	}
	f.SetLinkDown(1, 2, false)
	if !f.Connected(1, 2) {
		t.Error("restored link still severed")
	}
	// Self-loops are ignored; full mesh never connects a node to itself.
	f.SetLinkDown(4, 4, true)
	if f.LinkDown(4, 4) {
		t.Error("self-loop recorded")
	}
}

func TestBitFlipper(t *testing.T) {
	rng := xrand.NewSource(3).Stream("flip")
	never := NewBitFlipper(0, rng)
	p := []byte{1, 2, 3}
	if out, hit := never.Corrupt(p); hit || !bytes.Equal(out, p) {
		t.Error("zero-probability flipper corrupted")
	}
	always := NewBitFlipper(1, rng)
	for i := 0; i < 100; i++ {
		orig := []byte{0xAA, 0x55, 0x00, 0xFF}
		out, hit := always.Corrupt(orig)
		if !hit {
			t.Fatal("certain flipper did not corrupt")
		}
		if !bytes.Equal(orig, []byte{0xAA, 0x55, 0x00, 0xFF}) {
			t.Fatal("corrupter mutated the shared on-air payload")
		}
		diff := 0
		for j := range out {
			b := out[j] ^ orig[j]
			for ; b != 0; b &= b - 1 {
				diff++
			}
		}
		if diff != 1 {
			t.Fatalf("flip changed %d bits, want exactly 1", diff)
		}
	}
	if always.Flips() != 100 {
		t.Errorf("Flips = %d, want 100", always.Flips())
	}
	if out, hit := always.Corrupt(nil); hit || out != nil {
		t.Error("empty payload corrupted")
	}
}

// recorder is a NodeControl that logs fault times against the engine clock.
type recorder struct {
	eng      *sim.Engine
	up       bool
	crashes  []time.Duration
	restarts []time.Duration
}

func (r *recorder) Crash()   { r.up = false; r.crashes = append(r.crashes, r.eng.Now()) }
func (r *recorder) Restart() { r.up = true; r.restarts = append(r.restarts, r.eng.Now()) }

func TestInjectorScriptedFaults(t *testing.T) {
	eng := sim.NewEngine()
	in := NewInjector(eng, time.Hour)
	n := &recorder{eng: eng, up: true}
	in.Register(5, n)
	flaky := NewFlakyTopology(radio.FullMesh{})
	in.SetFlaky(flaky)

	s, err := ParseScriptString("2s crash 5\n3s linkdown 0 1\n4s restart 5\n5s linkup 0 1\n")
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Apply(s); err != nil {
		t.Fatal(err)
	}
	eng.Run()

	if len(n.crashes) != 1 || n.crashes[0] != 2*time.Second {
		t.Errorf("crashes at %v, want [2s]", n.crashes)
	}
	if len(n.restarts) != 1 || n.restarts[0] != 4*time.Second {
		t.Errorf("restarts at %v, want [4s]", n.restarts)
	}
	if !n.up {
		t.Error("node left crashed after scripted restart")
	}
	if flaky.LinkDown(0, 1) {
		t.Error("link left severed after scripted linkup")
	}
	ctr := in.Counters()
	want := Counters{Crashes: 1, Restarts: 1, LinkDowns: 1, LinkUps: 1}
	if ctr != want {
		t.Errorf("counters = %+v, want %+v", ctr, want)
	}
}

func TestInjectorApplyValidation(t *testing.T) {
	eng := sim.NewEngine()
	in := NewInjector(eng, time.Hour)
	in.Register(0, &recorder{eng: eng})

	s, _ := ParseScriptString("1s crash 9\n")
	if err := in.Apply(s); err == nil || !strings.Contains(err.Error(), "node 9") {
		t.Errorf("crash of unregistered node: err = %v", err)
	}
	s, _ = ParseScriptString("1s linkdown 0 1\n")
	if err := in.Apply(s); err == nil || !strings.Contains(err.Error(), "topology") {
		t.Errorf("link fault without flaky topology: err = %v", err)
	}
	if err := in.Crash(42); err == nil {
		t.Error("direct crash of unregistered node accepted")
	}
	if err := in.Restart(42); err == nil {
		t.Error("direct restart of unregistered node accepted")
	}
	if err := in.LinkDown(0, 1); err == nil {
		t.Error("direct link fault without topology accepted")
	}
}

func TestCrashPlanRespectsHorizonAndRecovers(t *testing.T) {
	const horizon = time.Minute
	eng := sim.NewEngine()
	in := NewInjector(eng, horizon)
	n := &recorder{eng: eng, up: true}
	in.Register(1, n)

	plan := CrashPlan{MTBF: 5 * time.Second, MeanDowntime: time.Second}
	rng := xrand.NewSource(1).Stream("crash-plan")
	if err := in.StartCrashPlan(1, plan, rng); err != nil {
		t.Fatal(err)
	}
	eng.Run() // must terminate: no fault starts at or past the horizon

	if len(n.crashes) == 0 {
		t.Fatal("a 1-minute run at 5s MTBF injected no crashes")
	}
	if len(n.restarts) != len(n.crashes) {
		t.Errorf("%d crashes but %d restarts: every downtime must complete", len(n.crashes), len(n.restarts))
	}
	if !n.up {
		t.Error("node left crashed after the plan wound down")
	}
	for _, at := range n.crashes {
		if at >= horizon {
			t.Errorf("crash at %v, at/after horizon %v", at, horizon)
		}
	}
	ctr := in.Counters()
	if ctr.Crashes != int64(len(n.crashes)) || ctr.Restarts != int64(len(n.restarts)) {
		t.Errorf("counters %+v disagree with recorder (%d/%d)", ctr, len(n.crashes), len(n.restarts))
	}
}

func TestCrashPlanValidation(t *testing.T) {
	eng := sim.NewEngine()
	in := NewInjector(eng, time.Minute)
	in.Register(1, &recorder{eng: eng})
	rng := xrand.NewSource(2).Stream("bad-plan")
	if err := in.StartCrashPlan(1, CrashPlan{}, rng); err == nil {
		t.Error("zero-mean crash plan accepted")
	}
	if err := in.StartCrashPlan(7, CrashPlan{MTBF: time.Second, MeanDowntime: time.Second}, rng); err == nil {
		t.Error("crash plan for unregistered node accepted")
	}
}

func TestFlapPlanRespectsHorizonAndRestores(t *testing.T) {
	const horizon = time.Minute
	eng := sim.NewEngine()
	in := NewInjector(eng, horizon)
	flaky := NewFlakyTopology(radio.FullMesh{})
	in.SetFlaky(flaky)

	plan := FlapPlan{MeanUp: 5 * time.Second, MeanDown: time.Second}
	rng := xrand.NewSource(3).Stream("flap-plan")
	if err := in.StartFlapPlan(2, 3, plan, rng); err != nil {
		t.Fatal(err)
	}
	eng.Run()

	ctr := in.Counters()
	if ctr.LinkDowns == 0 {
		t.Fatal("a 1-minute run at 5s mean up-time flapped nothing")
	}
	if ctr.LinkUps != ctr.LinkDowns {
		t.Errorf("%d downs but %d ups: every outage must end", ctr.LinkDowns, ctr.LinkUps)
	}
	if flaky.LinkDown(2, 3) {
		t.Error("link left severed after the plan wound down")
	}
	if err := in.StartFlapPlan(2, 3, FlapPlan{}, rng); err == nil {
		t.Error("zero-mean flap plan accepted")
	}
	bare := NewInjector(eng, horizon)
	if err := bare.StartFlapPlan(1, 2, plan, rng); err == nil {
		t.Error("flap plan without flaky topology accepted")
	}
}

func TestDeterministicPlansSameSeed(t *testing.T) {
	run := func() []time.Duration {
		eng := sim.NewEngine()
		in := NewInjector(eng, 30*time.Second)
		n := &recorder{eng: eng, up: true}
		in.Register(1, n)
		rng := xrand.NewSource(99).Stream("det")
		if err := in.StartCrashPlan(1, CrashPlan{MTBF: 3 * time.Second, MeanDowntime: 500 * time.Millisecond}, rng); err != nil {
			t.Fatal(err)
		}
		eng.Run()
		return append(append([]time.Duration{}, n.crashes...), n.restarts...)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("fault counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault time %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}
