// Package core implements RETRI — Random, Ephemeral TRansaction
// Identifiers — the paper's primary contribution (Section 3).
//
// Wherever a protocol needs a unique identifier, a node instead draws a
// short, probabilistically unique identifier from a small pool and uses it
// for exactly one transaction. Collisions are not resolved; they surface as
// ordinary loss, and choosing a fresh identifier per transaction prevents
// persistent collisions.
//
// Two selection algorithms from the paper are provided:
//
//   - UniformSelector: identifiers drawn uniformly at random with no learned
//     state — the pessimistic case analysed by Equation 4.
//   - ListeningSelector: identifiers drawn uniformly from the pool of
//     not-recently-heard identifiers, where "recently" is the most recent
//     2T observed transactions and T is estimated online (Section 5.1).
//
// A SequentialSelector is included for ablations: it shows why *ephemeral*
// randomness matters (deterministic choices collide persistently).
package core

import (
	"fmt"
	"math/rand/v2"
)

// MaxBits bounds identifier width; the paper never considers identifiers
// wider than a 32-bit static address.
const MaxBits = 32

// Space is an identifier pool of 2^Bits values.
type Space struct {
	bits int
}

// NewSpace validates bits and returns the identifier space.
func NewSpace(bits int) (Space, error) {
	if bits < 1 || bits > MaxBits {
		return Space{}, fmt.Errorf("core: identifier width %d out of range [1, %d]", bits, MaxBits)
	}
	return Space{bits: bits}, nil
}

// MustSpace is NewSpace for compile-time-constant widths.
func MustSpace(bits int) Space {
	s, err := NewSpace(bits)
	if err != nil {
		panic(err)
	}
	return s
}

// Bits returns the identifier width.
func (s Space) Bits() int { return s.bits }

// Size returns the number of identifiers in the pool, 2^Bits.
func (s Space) Size() uint64 { return uint64(1) << uint(s.bits) }

// Contains reports whether id is representable in the space.
func (s Space) Contains(id uint64) bool { return id < s.Size() }

// WidthKey packs an identifier heard at a given width into the canonical
// cross-width observation keyspace. Identifiers drawn at different widths
// are distinct transactions even when their numeric values coincide — a
// 4-bit id 3 and a 9-bit id 3 never share the air — so every piece of
// learned selection state that survives a width change is keyed by the
// (width, id) composite. Widths are at most MaxBits (32), so the pair
// packs losslessly into one uint64.
func WidthKey(bits int, id uint64) uint64 {
	return uint64(bits)<<32 | id
}

// SplitWidthKey undoes WidthKey, returning the width and raw identifier.
func SplitWidthKey(key uint64) (bits int, id uint64) {
	return int(key >> 32), key & (1<<32 - 1)
}

// widthSize is the pool size of a width-bits keyspace.
func widthSize(bits int) uint64 { return uint64(1) << uint(bits) }

// Selector chooses the identifier for each new transaction.
//
// The keyspace contract: Next and NextWidth return raw identifiers in
// [0, 2^width); Observe and ObserveWidth take raw identifiers paired with
// the width they were heard at. Observe(id) is shorthand for
// ObserveWidth(Space().Bits(), id), and Next() for
// NextWidth(Space().Bits()), so fixed-width deployments never see widths
// at all. Selectors with learned state key it by the WidthKey composite
// internally — never by raw identifiers — so adaptive-width observations
// can always match future draws at the same width.
type Selector interface {
	// Next returns the identifier for a new transaction at the full space
	// width.
	Next() uint64
	// NextWidth returns the identifier for a new transaction drawn at the
	// given width; bits must be in [1, Space().Bits()]. The draw is a
	// first-class strategy decision, not a masked full-width draw: a
	// strategy that is collision-free or counter-driven within one width
	// class stays so under adaptive width.
	NextWidth(bits int) uint64
	// Observe informs the selector that id was seen in use at the full
	// space width (a heard transaction, or a receiver's collision
	// notification). Selectors without learned state ignore it.
	Observe(id uint64)
	// ObserveWidth informs the selector that id was seen in use at the
	// given width. Out-of-range widths or identifiers are ignored.
	ObserveWidth(bits int, id uint64)
	// Space returns the identifier space the selector draws from.
	Space() Space
	// Name identifies the algorithm for experiment output.
	Name() string
}

// UniformSelector draws identifiers uniformly at random, independent of any
// observed state. This is the algorithm the analytic model assumes
// (Section 4.1: "every node picks its transaction identifiers uniformly
// from the identifier space without regard to any learned state").
type UniformSelector struct {
	space Space
	rng   *rand.Rand
}

var _ Selector = (*UniformSelector)(nil)

// NewUniformSelector returns a uniform selector over space using rng.
func NewUniformSelector(space Space, rng *rand.Rand) *UniformSelector {
	return &UniformSelector{space: space, rng: rng}
}

// Next draws uniformly from the space.
func (u *UniformSelector) Next() uint64 { return u.rng.Uint64N(u.space.Size()) }

// NextWidth draws uniformly from the width-bits keyspace. A fresh bounded
// draw, not a masked full-width one, so narrow draws stay exactly uniform.
func (u *UniformSelector) NextWidth(bits int) uint64 { return u.rng.Uint64N(widthSize(bits)) }

// Observe is a no-op: the uniform selector keeps no learned state.
func (u *UniformSelector) Observe(uint64) {}

// ObserveWidth is a no-op: the uniform selector keeps no learned state.
func (u *UniformSelector) ObserveWidth(int, uint64) {}

// Space returns the identifier space.
func (u *UniformSelector) Space() Space { return u.space }

// Name returns "uniform".
func (u *UniformSelector) Name() string { return "uniform" }

// WindowFunc reports the current listening-window size in transactions.
// The paper's adaptive rule is 2T with T estimated from observed concurrent
// transactions; wire an Estimator's view in here.
type WindowFunc func() int

// ListeningSelector avoids identifiers heard recently on the channel: the
// choice is uniform over the pool of not-recently-used identifiers
// (Section 5.1). When every identifier in the space has been heard
// recently, it falls back to a uniform draw — listening can only help, not
// block.
//
// Learned state is keyed by the (width, id) WidthKey composite: an
// identifier heard at width 4 only blocks future draws at width 4, because
// only same-width transactions share its reassembly keyspace on the air.
// Fixed-width deployments see exactly the old behaviour — every key then
// carries the one space width.
type ListeningSelector struct {
	space  Space
	rng    *rand.Rand
	window WindowFunc

	// recent is a FIFO of the last window observed (width, id) keys.
	recent []uint64
	counts map[uint64]int
	// perWidth counts distinct identifiers currently in the window per
	// width class, so the exhausted-pool fallback compares a width's
	// distinct count against that width's own pool size — never against
	// composite-key totals, which could exceed it.
	perWidth map[int]int
}

var _ Selector = (*ListeningSelector)(nil)

// NewListeningSelector returns a listening selector whose window size is
// reevaluated via window on every observation. A nil window selects a
// fixed window of 2*DefaultAssumedT transactions.
func NewListeningSelector(space Space, rng *rand.Rand, window WindowFunc) *ListeningSelector {
	if window == nil {
		fixed := 2 * DefaultAssumedT
		window = func() int { return fixed }
	}
	return &ListeningSelector{
		space:    space,
		rng:      rng,
		window:   window,
		counts:   make(map[uint64]int),
		perWidth: make(map[int]int),
	}
}

// DefaultAssumedT is the transaction density assumed when no estimator is
// wired in; it matches the paper's five-transmitter experiment.
const DefaultAssumedT = 5

// FixedWindow returns a WindowFunc that always reports n.
func FixedWindow(n int) WindowFunc { return func() int { return n } }

// Next draws uniformly from identifiers not in the recent window, falling
// back to a fully uniform draw when the window covers the whole space.
func (l *ListeningSelector) Next() uint64 { return l.NextWidth(l.space.Bits()) }

// NextWidth draws uniformly from width-bits identifiers not recently heard
// at that width, falling back to a fully uniform draw when the window
// covers the whole width-bits pool.
func (l *ListeningSelector) NextWidth(bits int) uint64 {
	size := widthSize(bits)
	distinct := uint64(l.perWidth[bits])
	if distinct >= size {
		return l.rng.Uint64N(size)
	}
	if size <= 4096 {
		// Small pool: enumerate the complement for an exactly uniform
		// draw even when most identifiers are excluded.
		k := l.rng.Uint64N(size - distinct)
		for id := uint64(0); id < size; id++ {
			if l.counts[WidthKey(bits, id)] > 0 {
				continue
			}
			if k == 0 {
				return id
			}
			k--
		}
		// Unreachable: distinct < size guarantees a return above.
	}
	// Large pool: rejection sampling terminates almost immediately since
	// the window is tiny relative to the pool.
	for i := 0; i < 256; i++ {
		id := l.rng.Uint64N(size)
		if l.counts[WidthKey(bits, id)] == 0 {
			return id
		}
	}
	return l.rng.Uint64N(size)
}

// Observe records an identifier heard at the full space width and evicts
// entries older than the current window.
func (l *ListeningSelector) Observe(id uint64) {
	l.ObserveWidth(l.space.Bits(), id)
}

// ObserveWidth records an identifier heard at the given width and evicts
// entries older than the current window.
func (l *ListeningSelector) ObserveWidth(bits int, id uint64) {
	if bits < 1 || bits > l.space.Bits() || id >= widthSize(bits) {
		return
	}
	key := WidthKey(bits, id)
	l.recent = append(l.recent, key)
	if l.counts[key] == 0 {
		l.perWidth[bits]++
	}
	l.counts[key]++
	l.trim(l.window())
}

// Recent reports the number of observations currently in the window.
func (l *ListeningSelector) Recent() int { return len(l.recent) }

// Reset forgets every observation, modelling a node crash: the listening
// window lives in RAM, so a restarted node selects as if freshly booted
// until it has listened again.
func (l *ListeningSelector) Reset() {
	l.recent = nil
	l.counts = make(map[uint64]int)
	l.perWidth = make(map[int]int)
}

// RecentDistinct reports the number of distinct identifiers in the window.
func (l *ListeningSelector) RecentDistinct() int { return len(l.counts) }

// Space returns the identifier space.
func (l *ListeningSelector) Space() Space { return l.space }

// Name returns "listening".
func (l *ListeningSelector) Name() string { return "listening" }

func (l *ListeningSelector) trim(window int) {
	if window < 0 {
		window = 0
	}
	for len(l.recent) > window {
		old := l.recent[0]
		l.recent = l.recent[1:]
		if l.counts[old] <= 1 {
			delete(l.counts, old)
			bits, _ := SplitWidthKey(old)
			l.perWidth[bits]--
			if l.perWidth[bits] <= 0 {
				delete(l.perWidth, bits)
			}
		} else {
			l.counts[old]--
		}
	}
}

// SequentialSelector cycles deterministically through the space. It is not
// part of the paper's design — it exists as the ablation control showing
// that deterministic identifier choice produces *persistent* collisions
// when two nodes start in phase, the failure mode RETRI's per-transaction
// randomness eliminates (Section 3.1).
type SequentialSelector struct {
	space Space
	next  uint64
}

var _ Selector = (*SequentialSelector)(nil)

// NewSequentialSelector returns a selector that yields start, start+1, ...
// modulo the space size.
func NewSequentialSelector(space Space, start uint64) *SequentialSelector {
	return &SequentialSelector{space: space, next: start % space.Size()}
}

// Next returns the next identifier in sequence.
func (s *SequentialSelector) Next() uint64 {
	id := s.next
	s.next = (s.next + 1) % s.space.Size()
	return id
}

// NextWidth returns the shared counter masked to the requested width, then
// advances it. The space size is a power-of-two multiple of every narrower
// pool, so each width class still sees a deterministic full cycle — the
// persistent-collision failure mode this ablation exists to show.
func (s *SequentialSelector) NextWidth(bits int) uint64 {
	id := s.next & (widthSize(bits) - 1)
	s.next = (s.next + 1) % s.space.Size()
	return id
}

// Observe is a no-op.
func (s *SequentialSelector) Observe(uint64) {}

// ObserveWidth is a no-op.
func (s *SequentialSelector) ObserveWidth(int, uint64) {}

// Space returns the identifier space.
func (s *SequentialSelector) Space() Space { return s.space }

// Name returns "sequential".
func (s *SequentialSelector) Name() string { return "sequential" }
