package core

import (
	"fmt"
	"testing"
	"time"

	"retri/internal/xrand"
)

// TestStrategyConformance runs every registered strategy through the
// Selector keyspace contract: draws stay in [0, 2^width) at every width,
// Next agrees with the full-width keyspace, and observations at any legal
// (width, id) pair are accepted without panicking.
func TestStrategyConformance(t *testing.T) {
	space := MustSpace(9)
	for _, name := range Strategies() {
		t.Run(name, func(t *testing.T) {
			var clock time.Duration
			sel, err := NewStrategy(name, StrategyConfig{
				Space: space,
				RNG:   xrand.NewSource(7).Stream("conf", name),
				Now:   func() time.Duration { return clock },
			})
			if err != nil {
				t.Fatalf("NewStrategy(%q): %v", name, err)
			}
			if sel.Name() == "" {
				t.Error("empty strategy name")
			}
			if sel.Space() != space {
				t.Error("selector space mismatch")
			}
			for _, bits := range []int{1, 4, space.Bits()} {
				size := uint64(1) << uint(bits)
				for i := 0; i < 500; i++ {
					clock += time.Millisecond / 4
					if id := sel.NextWidth(bits); id >= size {
						t.Fatalf("NextWidth(%d) = %d outside [0, %d)", bits, id, size)
					}
					sel.ObserveWidth(bits, uint64(i)%size)
				}
			}
			for i := 0; i < 100; i++ {
				if id := sel.Next(); id >= space.Size() {
					t.Fatalf("Next() = %d outside the space", id)
				}
				sel.Observe(uint64(i) % space.Size())
			}
			// Out-of-range observations must be ignored, not crash.
			sel.ObserveWidth(0, 0)
			sel.ObserveWidth(space.Bits()+1, 0)
			sel.ObserveWidth(4, 1<<40)
		})
	}
}

func TestNewStrategyErrors(t *testing.T) {
	space := MustSpace(8)
	if _, err := NewStrategy("nope", StrategyConfig{Space: space, RNG: xrand.NewSource(1).Stream("x")}); err == nil {
		t.Error("unknown strategy accepted")
	}
	if _, err := NewStrategy("uniform", StrategyConfig{Space: space}); err == nil {
		t.Error("nil RNG accepted")
	}
}

func TestRegisterStrategyDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	RegisterStrategy("uniform", func(StrategyConfig) (Selector, error) { return nil, nil })
}

// TestPermutationEpochCollisionFree is the PERIDOT property: within one
// epoch (one full walk of a width's pool) every draw is distinct, at every
// width class independently — even with the width classes interleaved.
func TestPermutationEpochCollisionFree(t *testing.T) {
	space := MustSpace(10)
	for _, bits := range []int{1, 4, 6, 10} {
		sel := NewPermutationSelector(space, xrand.NewSource(3).Stream("perm", fmt.Sprint(bits)))
		size := uint64(1) << uint(bits)
		// Interleave draws at a second width to show the walks are
		// independent; it must differ from the width under test or it
		// would advance the same epoch.
		other := space.Bits()
		if bits == other {
			other = 1
		}
		for epoch := 0; epoch < 3; epoch++ {
			seen := make(map[uint64]bool, size)
			for i := uint64(0); i < size; i++ {
				id := sel.NextWidth(bits)
				if id >= size {
					t.Fatalf("width %d: draw %d outside pool", bits, id)
				}
				if seen[id] {
					t.Fatalf("width %d epoch %d: identifier %d drawn twice", bits, epoch, id)
				}
				seen[id] = true
				sel.NextWidth(other)
			}
		}
	}
}

func TestPermutationResetRedraws(t *testing.T) {
	space := MustSpace(8)
	sel := NewPermutationSelector(space, xrand.NewSource(5).Stream("perm"))
	first := sel.Next()
	sel.Reset()
	// After a reset the walk restarts with fresh parameters; the next
	// epoch is still collision-free.
	seen := map[uint64]bool{}
	for i := 0; i < 256; i++ {
		id := sel.Next()
		if seen[id] {
			t.Fatalf("post-reset epoch repeated identifier %d", id)
		}
		seen[id] = true
	}
	_ = first // value itself is arbitrary; the property is the fresh walk
}

// TestPerDestCounterBanks checks the IPv4-ID counter semantics: one bank
// per (destination, width), each a wrapping increment from a random seed.
func TestPerDestCounterBanks(t *testing.T) {
	space := MustSpace(8)
	sel := NewPerDestSelector(space, xrand.NewSource(11).Stream("perdest"))

	a0 := sel.Next()
	a1 := sel.Next()
	if a1 != (a0+1)%space.Size() {
		t.Errorf("bank 0: %d then %d, want consecutive", a0, a1)
	}

	sel.SetDest(42)
	b0 := sel.Next()
	b1 := sel.Next()
	if b1 != (b0+1)%space.Size() {
		t.Errorf("bank 42: %d then %d, want consecutive", b0, b1)
	}

	// Returning to the first bank resumes its own counter.
	sel.SetDest(0)
	if a2 := sel.Next(); a2 != (a1+1)%space.Size() {
		t.Errorf("bank 0 resumed at %d, want %d", a2, (a1+1)%space.Size())
	}

	// Width classes are separate banks: a narrow draw does not advance the
	// full-width counter.
	w0 := sel.NextWidth(4)
	if w1 := sel.NextWidth(4); w1 != (w0+1)%16 {
		t.Errorf("width-4 bank: %d then %d, want consecutive mod 16", w0, w1)
	}
	if a3 := sel.Next(); a3 != (a1+2)%space.Size() {
		t.Errorf("full-width bank advanced by narrow draws: got %d, want %d", a3, (a1+2)%space.Size())
	}

	// Wraparound is implicit at each width's own pool size.
	for i := 0; i < 40; i++ {
		if id := sel.NextWidth(4); id >= 16 {
			t.Fatalf("width-4 draw %d escaped the pool", id)
		}
	}
}

// TestTimePrefixTracksClock checks the UUIDv7/ULID split: high bits follow
// the clock granule, low bits stay random, and a 1-bit draw is pure
// suffix.
func TestTimePrefixTracksClock(t *testing.T) {
	space := MustSpace(8)
	var clock time.Duration
	sel := NewTimePrefixSelector(space, xrand.NewSource(13).Stream("tp"),
		func() time.Duration { return clock }, time.Millisecond)

	// 8-bit draw: 4 prefix bits, 4 suffix bits.
	for _, granule := range []uint64{0, 1, 7, 15, 16, 31} {
		clock = time.Duration(granule) * time.Millisecond
		id := sel.NextWidth(8)
		if got, want := id>>4, granule%16; got != want {
			t.Errorf("granule %d: prefix = %d, want %d", granule, got, want)
		}
	}

	// Same granule, many draws: prefix constant, suffix varies.
	clock = 5 * time.Millisecond
	suffixes := make(map[uint64]bool)
	for i := 0; i < 200; i++ {
		id := sel.NextWidth(8)
		if id>>4 != 5 {
			t.Fatalf("prefix drifted to %d inside one granule", id>>4)
		}
		suffixes[id&15] = true
	}
	if len(suffixes) < 8 {
		t.Errorf("only %d distinct suffixes in 200 draws; suffix not random", len(suffixes))
	}

	// 1-bit draws have no prefix at all.
	clock = time.Hour
	seen := map[uint64]bool{}
	for i := 0; i < 64; i++ {
		seen[sel.NextWidth(1)] = true
	}
	if !seen[0] || !seen[1] {
		t.Error("1-bit draws are not purely random")
	}
}

// TestListeningSelectorMixedWidths is the keyspace-contract regression for
// the adaptive-width Observe bug: identifiers heard at one width must
// block only that width's draws, and each width's pool-exhaustion fallback
// must count that width's own distinct identifiers.
func TestListeningSelectorMixedWidths(t *testing.T) {
	space := MustSpace(9)
	sel := NewListeningSelector(space, xrand.NewSource(17).Stream("mixed"), FixedWindow(1024))

	// Fill width 4 entirely except identifier 7.
	for id := uint64(0); id < 16; id++ {
		if id == 7 {
			continue
		}
		sel.ObserveWidth(4, id)
	}
	for i := 0; i < 32; i++ {
		if got := sel.NextWidth(4); got != 7 {
			t.Fatalf("width 4 with one free id drew %d, want 7", got)
		}
	}

	// The same numeric identifiers heard at width 4 must not block them at
	// width 5: ids 0..15 (sans 7) are free again in the wider pool.
	counts := make(map[uint64]int)
	for i := 0; i < 2000; i++ {
		counts[sel.NextWidth(5)]++
	}
	blocked := 0
	for id := uint64(0); id < 16; id++ {
		if id != 7 && counts[id] == 0 {
			blocked++
		}
	}
	if blocked > 2 {
		t.Errorf("%d width-4 observations leaked into width-5 draws", blocked)
	}

	// Exhausting width 1 falls back to uniform instead of spinning, and
	// leaves width 9 untouched.
	sel.ObserveWidth(1, 0)
	sel.ObserveWidth(1, 1)
	for i := 0; i < 16; i++ {
		if id := sel.NextWidth(1); id > 1 {
			t.Fatalf("width-1 fallback drew %d", id)
		}
	}
	if id := sel.NextWidth(9); id >= space.Size() {
		t.Fatalf("width-9 draw %d outside the space", id)
	}

	// Trimming evicts per-width state symmetrically: shrink the window to
	// zero and width 4 is unconstrained again.
	sel.ObserveWidth(4, 3) // trim runs on observe; window now tiny
	sel.Reset()
	seen := make(map[uint64]bool)
	for i := 0; i < 400; i++ {
		seen[sel.NextWidth(4)] = true
	}
	if len(seen) != 16 {
		t.Errorf("post-reset width-4 draws cover %d/16 identifiers", len(seen))
	}
}

// TestWidthKeyRoundTrip pins the composite keyspace encoding.
func TestWidthKeyRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		bits int
		id   uint64
	}{{1, 0}, {4, 3}, {9, 3}, {32, 1<<32 - 1}} {
		bits, id := SplitWidthKey(WidthKey(tc.bits, tc.id))
		if bits != tc.bits || id != tc.id {
			t.Errorf("WidthKey(%d, %d) round-tripped to (%d, %d)", tc.bits, tc.id, bits, id)
		}
	}
	// Same numeric id at different widths must produce distinct keys —
	// that distinctness is what the adaptive-width bugfixes rest on.
	if WidthKey(4, 3) == WidthKey(9, 3) {
		t.Error("width classes share observation keys")
	}
}
