package core

import (
	"testing"
	"testing/quick"

	"retri/internal/xrand"
)

func TestNewSpaceValidation(t *testing.T) {
	for _, bits := range []int{1, 9, 16, 32} {
		s, err := NewSpace(bits)
		if err != nil {
			t.Errorf("NewSpace(%d) error: %v", bits, err)
		}
		if s.Bits() != bits {
			t.Errorf("Bits() = %d, want %d", s.Bits(), bits)
		}
	}
	for _, bits := range []int{0, -1, 33, 64} {
		if _, err := NewSpace(bits); err == nil {
			t.Errorf("NewSpace(%d) = nil error, want failure", bits)
		}
	}
}

func TestMustSpacePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustSpace(0) did not panic")
		}
	}()
	MustSpace(0)
}

func TestSpaceSizeAndContains(t *testing.T) {
	s := MustSpace(9)
	if s.Size() != 512 {
		t.Errorf("Size() = %d, want 512", s.Size())
	}
	if !s.Contains(0) || !s.Contains(511) {
		t.Error("Contains rejects in-range ids")
	}
	if s.Contains(512) {
		t.Error("Contains accepts out-of-range id")
	}
	if got := MustSpace(32).Size(); got != 1<<32 {
		t.Errorf("32-bit Size() = %d, want 2^32", got)
	}
}

func TestUniformSelectorInRange(t *testing.T) {
	rng := xrand.NewSource(1).Stream("uniform")
	s := MustSpace(4)
	sel := NewUniformSelector(s, rng)
	if sel.Name() != "uniform" || sel.Space() != s {
		t.Error("selector metadata wrong")
	}
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		id := sel.Next()
		if !s.Contains(id) {
			t.Fatalf("Next() = %d outside 4-bit space", id)
		}
		seen[id] = true
	}
	if len(seen) != 16 {
		t.Errorf("1000 draws hit %d/16 identifiers", len(seen))
	}
}

func TestUniformSelectorIgnoresObserve(t *testing.T) {
	s := MustSpace(2)
	a := NewUniformSelector(s, xrand.NewSource(9).Stream("a"))
	b := NewUniformSelector(s, xrand.NewSource(9).Stream("a"))
	for i := uint64(0); i < 4; i++ {
		a.Observe(i)
	}
	for i := 0; i < 32; i++ {
		if a.Next() != b.Next() {
			t.Fatal("Observe changed uniform selector behaviour")
		}
	}
}

func TestListeningSelectorAvoidsRecent(t *testing.T) {
	rng := xrand.NewSource(2).Stream("listen")
	s := MustSpace(3) // 8 identifiers
	sel := NewListeningSelector(s, rng, FixedWindow(4))
	sel.Observe(0)
	sel.Observe(1)
	sel.Observe(2)
	sel.Observe(3)
	for i := 0; i < 200; i++ {
		id := sel.Next()
		if id <= 3 {
			t.Fatalf("Next() returned recently heard id %d", id)
		}
	}
}

func TestListeningSelectorWindowEviction(t *testing.T) {
	rng := xrand.NewSource(3).Stream("evict")
	s := MustSpace(3)
	sel := NewListeningSelector(s, rng, FixedWindow(2))
	sel.Observe(0)
	sel.Observe(1)
	sel.Observe(2) // evicts 0
	if sel.Recent() != 2 || sel.RecentDistinct() != 2 {
		t.Fatalf("window = %d/%d distinct, want 2/2", sel.Recent(), sel.RecentDistinct())
	}
	saw0 := false
	for i := 0; i < 400; i++ {
		id := sel.Next()
		if id == 1 || id == 2 {
			t.Fatalf("Next() returned in-window id %d", id)
		}
		if id == 0 {
			saw0 = true
		}
	}
	if !saw0 {
		t.Error("evicted id 0 never drawn again")
	}
}

func TestListeningSelectorDuplicateObservations(t *testing.T) {
	rng := xrand.NewSource(4).Stream("dup")
	s := MustSpace(2)
	sel := NewListeningSelector(s, rng, FixedWindow(3))
	sel.Observe(1)
	sel.Observe(1)
	sel.Observe(1)
	if sel.RecentDistinct() != 1 {
		t.Fatalf("distinct = %d, want 1", sel.RecentDistinct())
	}
	// One eviction must not free id 1 (two copies remain).
	sel.Observe(2)
	for i := 0; i < 100; i++ {
		if id := sel.Next(); id == 1 || id == 2 {
			t.Fatalf("Next() returned in-window id %d", id)
		}
	}
}

func TestListeningSelectorFullWindowFallsBack(t *testing.T) {
	rng := xrand.NewSource(5).Stream("full")
	s := MustSpace(2) // 4 ids
	sel := NewListeningSelector(s, rng, FixedWindow(8))
	for i := 0; i < 8; i++ {
		sel.Observe(uint64(i % 4))
	}
	if sel.RecentDistinct() != 4 {
		t.Fatalf("distinct = %d, want whole space", sel.RecentDistinct())
	}
	// Every identifier is "recent": selector must still produce ids.
	seen := make(map[uint64]bool)
	for i := 0; i < 200; i++ {
		id := sel.Next()
		if !s.Contains(id) {
			t.Fatalf("fallback draw %d out of space", id)
		}
		seen[id] = true
	}
	if len(seen) < 3 {
		t.Errorf("fallback draws concentrated: saw %d/4", len(seen))
	}
}

func TestListeningSelectorIgnoresForeignIDs(t *testing.T) {
	rng := xrand.NewSource(6).Stream("foreign")
	sel := NewListeningSelector(MustSpace(2), rng, FixedWindow(4))
	sel.Observe(1 << 40) // not representable in 2 bits
	if sel.Recent() != 0 {
		t.Error("out-of-space observation recorded")
	}
}

func TestListeningSelectorAdaptiveWindow(t *testing.T) {
	rng := xrand.NewSource(7).Stream("adapt")
	window := 4
	sel := NewListeningSelector(MustSpace(8), rng, func() int { return window })
	for i := 0; i < 10; i++ {
		sel.Observe(uint64(i))
	}
	if sel.Recent() != 4 {
		t.Fatalf("Recent() = %d, want 4", sel.Recent())
	}
	window = 2
	sel.Observe(99)
	if sel.Recent() != 2 {
		t.Errorf("Recent() after shrink = %d, want 2", sel.Recent())
	}
}

func TestListeningSelectorNilWindowDefault(t *testing.T) {
	rng := xrand.NewSource(8).Stream("nilwin")
	sel := NewListeningSelector(MustSpace(8), rng, nil)
	for i := 0; i < 100; i++ {
		sel.Observe(uint64(i))
	}
	if sel.Recent() != 2*DefaultAssumedT {
		t.Errorf("default window = %d, want %d", sel.Recent(), 2*DefaultAssumedT)
	}
}

func TestListeningSelectorLargeSpaceRejection(t *testing.T) {
	rng := xrand.NewSource(9).Stream("large")
	s := MustSpace(24) // forces the rejection-sampling path
	sel := NewListeningSelector(s, rng, FixedWindow(16))
	for i := 0; i < 16; i++ {
		sel.Observe(uint64(i))
	}
	for i := 0; i < 1000; i++ {
		id := sel.Next()
		if id < 16 {
			t.Fatalf("rejection path returned in-window id %d", id)
		}
	}
}

// TestListeningUniformOverComplement checks the small-space exact draw is
// roughly uniform over the not-recent identifiers.
func TestListeningUniformOverComplement(t *testing.T) {
	rng := xrand.NewSource(10).Stream("unifcomp")
	sel := NewListeningSelector(MustSpace(3), rng, FixedWindow(4))
	for _, id := range []uint64{0, 2, 4, 6} {
		sel.Observe(id)
	}
	counts := make(map[uint64]int)
	const n = 8000
	for i := 0; i < n; i++ {
		counts[sel.Next()]++
	}
	for _, id := range []uint64{1, 3, 5, 7} {
		got := counts[id]
		if got < n/4-n/16 || got > n/4+n/16 {
			t.Errorf("id %d drawn %d times, want ~%d", id, got, n/4)
		}
	}
}

func TestSequentialSelectorCycles(t *testing.T) {
	s := MustSpace(2)
	sel := NewSequentialSelector(s, 2)
	want := []uint64{2, 3, 0, 1, 2}
	for i, w := range want {
		if got := sel.Next(); got != w {
			t.Errorf("draw %d = %d, want %d", i, got, w)
		}
	}
	sel.Observe(0) // no-op
	if sel.Name() != "sequential" || sel.Space() != s {
		t.Error("sequential selector metadata wrong")
	}
}

func TestSequentialSelectorStartWraps(t *testing.T) {
	sel := NewSequentialSelector(MustSpace(2), 6)
	if got := sel.Next(); got != 2 {
		t.Errorf("start 6 mod 4: first draw = %d, want 2", got)
	}
}

// TestSelectorsStayInSpace is the cross-selector safety property.
func TestSelectorsStayInSpace(t *testing.T) {
	f := func(seed uint64, bitsRaw uint8, draws uint8) bool {
		bits := int(bitsRaw%16) + 1
		s := MustSpace(bits)
		src := xrand.NewSource(seed)
		sels := []Selector{
			NewUniformSelector(s, src.Stream("u")),
			NewListeningSelector(s, src.Stream("l"), FixedWindow(10)),
			NewSequentialSelector(s, seed),
		}
		rng := src.Stream("obs")
		for _, sel := range sels {
			for i := 0; i < int(draws); i++ {
				id := sel.Next()
				if !s.Contains(id) {
					return false
				}
				sel.Observe(rng.Uint64N(s.Size()))
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkUniformNext(b *testing.B) {
	sel := NewUniformSelector(MustSpace(16), xrand.NewSource(1).Stream("b"))
	for i := 0; i < b.N; i++ {
		sel.Next()
	}
}

func BenchmarkListeningNextSmallSpace(b *testing.B) {
	sel := NewListeningSelector(MustSpace(8), xrand.NewSource(1).Stream("b"), FixedWindow(10))
	for i := 0; i < 10; i++ {
		sel.Observe(uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel.Next()
	}
}

func BenchmarkListeningNextLargeSpace(b *testing.B) {
	sel := NewListeningSelector(MustSpace(24), xrand.NewSource(1).Stream("b"), FixedWindow(10))
	for i := 0; i < 10; i++ {
		sel.Observe(uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel.Next()
	}
}
