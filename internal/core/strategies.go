// Identifier-selection strategies beyond the paper's own three. The paper
// draws its pool uniformly at random, but the design question — how wide an
// ephemeral identifier must be for a given concurrent-transaction density —
// is strategy-dependent, and the literature names real alternatives:
//
//   - PERIDOT-style permutation codes are collision-free by construction
//     within an epoch (Euchner & Senger): PermutationSelector.
//   - The IPv4-ID selection taxonomy (Daymude et al.) catalogs global
//     sequential, per-destination-counter and PRNG schemes with measurably
//     different collision behavior: PerDestSelector is the counter scheme.
//   - UUIDv7/ULID-style identifiers spend a prefix on coarse time so that
//     only transactions in the same time granule can ever collide:
//     TimePrefixSelector.
//
// Every strategy honors the Selector keyspace contract: width-aware draws
// are first-class (per-width state, never a masked full-width draw), and
// observations arrive as (width, id) pairs.
package core

import (
	"math/rand/v2"
	"time"
)

// permEpoch is one width class's epoch of a permutation selector: an
// affine permutation x -> (mult*x + add) mod 2^bits, walked by index.
// mult is odd, hence invertible mod a power of two, so the walk visits
// every identifier exactly once before the epoch ends.
type permEpoch struct {
	mult, add uint64
	i         uint64
}

// PermutationSelector draws each width class's identifiers by walking a
// random affine permutation of that class's pool — the PERIDOT idea:
// within one epoch (one full walk) no two draws can collide, because a
// permutation never repeats. When a walk exhausts its pool the selector
// opens a fresh epoch with new random permutation parameters, so
// successive epochs stay unpredictable across nodes while each node's own
// draws remain collision-free per epoch.
//
// Two nodes can still collide with each other — their permutations are
// independent — but a single sender can never self-collide inside an
// epoch, which removes the "fresh draw happens to equal my own recent
// draw" term entirely.
type PermutationSelector struct {
	space  Space
	rng    *rand.Rand
	epochs map[int]*permEpoch
}

var _ Selector = (*PermutationSelector)(nil)

// NewPermutationSelector returns a permutation selector over space using
// rng for the per-epoch permutation parameters.
func NewPermutationSelector(space Space, rng *rand.Rand) *PermutationSelector {
	return &PermutationSelector{space: space, rng: rng, epochs: make(map[int]*permEpoch)}
}

// Next draws at the full space width.
func (p *PermutationSelector) Next() uint64 { return p.NextWidth(p.space.Bits()) }

// NextWidth returns the next element of the current epoch's permutation of
// the width-bits pool, opening a fresh epoch when the pool is exhausted.
func (p *PermutationSelector) NextWidth(bits int) uint64 {
	size := widthSize(bits)
	e := p.epochs[bits]
	if e == nil {
		// A fresh permutation: random odd multiplier, random offset.
		e = &permEpoch{
			mult: p.rng.Uint64N(size/2)*2 + 1,
			add:  p.rng.Uint64N(size),
		}
		p.epochs[bits] = e
	}
	id := (e.mult*e.i + e.add) & (size - 1)
	e.i++
	if e.i >= size {
		delete(p.epochs, bits) // epoch over; re-permute on the next draw
	}
	return id
}

// Observe is a no-op: the permutation is fixed for the epoch.
func (p *PermutationSelector) Observe(uint64) {}

// ObserveWidth is a no-op.
func (p *PermutationSelector) ObserveWidth(int, uint64) {}

// Reset drops every epoch, modelling a crash: a restarted node re-draws
// its permutation parameters rather than resuming a walk it lost.
func (p *PermutationSelector) Reset() { p.epochs = make(map[int]*permEpoch) }

// Space returns the identifier space.
func (p *PermutationSelector) Space() Space { return p.space }

// Name returns "permutation".
func (p *PermutationSelector) Name() string { return "permutation" }

// perDestKey identifies one counter bank: the destination a transaction is
// aimed at and the width class it draws in.
type perDestKey struct {
	dest uint64
	bits int
}

// PerDestSelector is the IPv4-ID taxonomy's per-destination-counter scheme
// transplanted to RETRI: one monotonically incrementing counter per
// (destination, width) bank, each seeded at a random offset so that two
// nodes booting together do not start in phase. Successive draws toward
// one destination are maximally spaced in the pool — a sender never
// self-collides until the counter wraps — while unrelated destinations
// consume independent counter ranges.
//
// RETRI's fragmentation service is address-free, so "destination" is
// whatever stream discriminator the caller supplies via SetDest; the
// broadcast experiments leave it at the zero bank, degenerating to the
// taxonomy's global-counter scheme, which is exactly the point of
// measuring it: counters that are safe per destination collide across an
// open broadcast medium.
type PerDestSelector struct {
	space Space
	rng   *rand.Rand
	dest  uint64
	ctrs  map[perDestKey]uint64
}

var _ Selector = (*PerDestSelector)(nil)

// NewPerDestSelector returns a per-destination-counter selector over space
// using rng to seed each bank's starting offset.
func NewPerDestSelector(space Space, rng *rand.Rand) *PerDestSelector {
	return &PerDestSelector{space: space, rng: rng, ctrs: make(map[perDestKey]uint64)}
}

// SetDest selects the counter bank for subsequent draws.
func (c *PerDestSelector) SetDest(dest uint64) { c.dest = dest }

// Next draws at the full space width.
func (c *PerDestSelector) Next() uint64 { return c.NextWidth(c.space.Bits()) }

// NextWidth returns the current bank's counter masked to the width, then
// increments it; the mask makes wraparound implicit at each width's own
// pool size.
func (c *PerDestSelector) NextWidth(bits int) uint64 {
	k := perDestKey{dest: c.dest, bits: bits}
	ctr, ok := c.ctrs[k]
	if !ok {
		ctr = c.rng.Uint64N(widthSize(bits))
	}
	c.ctrs[k] = ctr + 1
	return ctr & (widthSize(bits) - 1)
}

// Observe is a no-op: counters ignore the channel.
func (c *PerDestSelector) Observe(uint64) {}

// ObserveWidth is a no-op.
func (c *PerDestSelector) ObserveWidth(int, uint64) {}

// Reset drops every bank, modelling a crash; restarted banks reseed at
// fresh random offsets.
func (c *PerDestSelector) Reset() { c.ctrs = make(map[perDestKey]uint64) }

// Space returns the identifier space.
func (c *PerDestSelector) Space() Space { return c.space }

// Name returns "perdest".
func (c *PerDestSelector) Name() string { return "perdest" }

// DefaultTimeGranule is the coarse-time step of TimePrefixSelector's
// prefix when the constructor is given none: 1ms, a little under one
// fragment's airtime on the default radio, so consecutive transactions
// land in distinct granules.
const DefaultTimeGranule = time.Millisecond

// TimePrefixSelector spends the identifier's high bits on coarse time and
// the rest on randomness — the UUIDv7/ULID recipe scaled down to sensor
// widths. Two transactions can only collide when they start within the
// same time granule and draw the same random suffix, so the effective
// birthday pool shrinks from all concurrent transactions to the granule's
// cohort. The cost is that the prefix bits carry no entropy against
// same-granule contenders, which is the trade the strategy sweep measures.
//
// The prefix occupies half the drawn width (rounded down); a 1-bit draw is
// purely random.
type TimePrefixSelector struct {
	space   Space
	rng     *rand.Rand
	now     func() time.Duration
	granule time.Duration
}

var _ Selector = (*TimePrefixSelector)(nil)

// NewTimePrefixSelector returns a time-prefixed selector over space; now
// supplies the clock (nil pins time to zero, making the selector purely
// random within the suffix bits) and granule the prefix's time step (0
// selects DefaultTimeGranule).
func NewTimePrefixSelector(space Space, rng *rand.Rand, now func() time.Duration, granule time.Duration) *TimePrefixSelector {
	if now == nil {
		now = func() time.Duration { return 0 }
	}
	if granule <= 0 {
		granule = DefaultTimeGranule
	}
	return &TimePrefixSelector{space: space, rng: rng, now: now, granule: granule}
}

// Next draws at the full space width.
func (t *TimePrefixSelector) Next() uint64 { return t.NextWidth(t.space.Bits()) }

// NextWidth returns granule-count prefix bits followed by random suffix
// bits.
func (t *TimePrefixSelector) NextWidth(bits int) uint64 {
	prefixBits := bits / 2
	suffixBits := bits - prefixBits
	suffix := t.rng.Uint64N(widthSize(suffixBits))
	if prefixBits == 0 {
		return suffix
	}
	prefix := uint64(t.now()/t.granule) & (widthSize(prefixBits) - 1)
	return prefix<<uint(suffixBits) | suffix
}

// Observe is a no-op: the clock, not the channel, drives the prefix.
func (t *TimePrefixSelector) Observe(uint64) {}

// ObserveWidth is a no-op.
func (t *TimePrefixSelector) ObserveWidth(int, uint64) {}

// Space returns the identifier space.
func (t *TimePrefixSelector) Space() Space { return t.space }

// Name returns "timeprefix".
func (t *TimePrefixSelector) Name() string { return "timeprefix" }
