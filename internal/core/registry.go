package core

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"time"
)

// StrategyConfig carries everything any registered strategy might need;
// each strategy uses the fields it cares about and ignores the rest.
type StrategyConfig struct {
	// Space is the identifier pool. Required.
	Space Space
	// RNG supplies the strategy's randomness. Required for every built-in
	// strategy (even sequential seeds its start from it, so two nodes
	// given independent streams start out of phase).
	RNG *rand.Rand
	// Window is the listening-window rule for listening strategies; nil
	// selects the fixed 2*DefaultAssumedT default.
	Window WindowFunc
	// Now supplies virtual time for time-prefixed strategies; nil pins
	// time to zero.
	Now func() time.Duration
}

// StrategyFactory builds a selector from a config.
type StrategyFactory func(cfg StrategyConfig) (Selector, error)

// strategies is the registry of named identifier-selection strategies. It
// is populated at init time and never mutated afterwards except through
// RegisterStrategy, so concurrent trial workers may read it freely.
var strategies = map[string]StrategyFactory{
	"uniform": func(cfg StrategyConfig) (Selector, error) {
		return NewUniformSelector(cfg.Space, cfg.RNG), nil
	},
	"listening": func(cfg StrategyConfig) (Selector, error) {
		return NewListeningSelector(cfg.Space, cfg.RNG, cfg.Window), nil
	},
	"sequential": func(cfg StrategyConfig) (Selector, error) {
		return NewSequentialSelector(cfg.Space, cfg.RNG.Uint64N(cfg.Space.Size())), nil
	},
	"permutation": func(cfg StrategyConfig) (Selector, error) {
		return NewPermutationSelector(cfg.Space, cfg.RNG), nil
	},
	"perdest": func(cfg StrategyConfig) (Selector, error) {
		return NewPerDestSelector(cfg.Space, cfg.RNG), nil
	},
	"timeprefix": func(cfg StrategyConfig) (Selector, error) {
		return NewTimePrefixSelector(cfg.Space, cfg.RNG, cfg.Now, 0), nil
	},
}

// RegisterStrategy adds a named strategy; it panics on a duplicate name so
// a wiring mistake fails loudly at init time. Call before any trial runs —
// the registry is read without locks.
func RegisterStrategy(name string, f StrategyFactory) {
	if _, dup := strategies[name]; dup {
		panic(fmt.Sprintf("core: strategy %q registered twice", name))
	}
	if f == nil {
		panic(fmt.Sprintf("core: strategy %q registered with nil factory", name))
	}
	strategies[name] = f
}

// NewStrategy builds the named strategy.
func NewStrategy(name string, cfg StrategyConfig) (Selector, error) {
	f, ok := strategies[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown identifier strategy %q (have %v)", name, Strategies())
	}
	if cfg.RNG == nil {
		return nil, fmt.Errorf("core: strategy %q needs a random stream", name)
	}
	return f(cfg)
}

// Strategies lists every registered strategy name, sorted.
func Strategies() []string {
	names := make([]string, 0, len(strategies))
	for name := range strategies {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
