package naming

import "testing"

// FuzzDecode: the name decoder must never panic and must be left-inverse
// of Encode for whatever it accepts.
func FuzzDecode(f *testing.F) {
	good, _ := (Name{
		{Key: "type", Op: Is, Value: "motion"},
		{Key: "quadrant", Op: EQ, Value: "ne"},
	}).Encode()
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{255, 1, 1, 'k', 1, 'v'})

	f.Fuzz(func(t *testing.T, p []byte) {
		n, err := Decode(p)
		if err != nil {
			return
		}
		buf, err := n.Encode()
		if err != nil {
			t.Fatalf("decoded name failed to encode: %v (%v)", err, n)
		}
		again, err := Decode(buf)
		if err != nil || !Equal(n, again) {
			t.Fatalf("round trip drift: %v vs %v (%v)", n, again, err)
		}
	})
}
