// Package naming implements attribute-based data naming, the SCADDS-style
// substrate (Section 3) the paper's applications assume: applications ask
// "Was there motion detected in the north-east quadrant?" rather than
// naming node addresses.
//
// A Name is a set of attribute tuples. Data carries facts (key = value);
// interests carry predicates (key op value). An interest matches data when
// every predicate is satisfied by some fact. Names also serialize to a
// compact wire form, which is what the codebook application compresses.
package naming

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"retri/internal/bitio"
)

// Op is a predicate operator.
type Op int

// Predicate operators. Is denotes a fact (data-side actual value).
const (
	Is Op = iota + 1
	EQ
	NE
	GT
	LT
	GE
	LE
	Exists
)

var opNames = map[Op]string{
	Is: "is", EQ: "==", NE: "!=", GT: ">", LT: "<", GE: ">=", LE: "<=", Exists: "exists",
}

// String renders the operator.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return "op?"
}

// Attribute is one tuple of a name.
type Attribute struct {
	Key   string
	Op    Op
	Value string
}

// String renders "key op value".
func (a Attribute) String() string {
	if a.Op == Exists {
		return fmt.Sprintf("%s exists", a.Key)
	}
	return fmt.Sprintf("%s %s %s", a.Key, a.Op, a.Value)
}

// Name is a set of attributes: facts for data, predicates for interests.
type Name []Attribute

// String renders the name as a bracketed tuple list.
func (n Name) String() string {
	parts := make([]string, len(n))
	for i, a := range n {
		parts[i] = a.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// Normalize returns a canonical copy: attributes sorted by key, then op,
// then value. Canonical form makes Equal and codebook keys stable.
func (n Name) Normalize() Name {
	out := make(Name, len(n))
	copy(out, n)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key != out[j].Key {
			return out[i].Key < out[j].Key
		}
		if out[i].Op != out[j].Op {
			return out[i].Op < out[j].Op
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// Equal reports whether two names are identical up to ordering.
func Equal(a, b Name) bool {
	if len(a) != len(b) {
		return false
	}
	na, nb := a.Normalize(), b.Normalize()
	for i := range na {
		if na[i] != nb[i] {
			return false
		}
	}
	return true
}

// Matches reports whether every predicate of the interest is satisfied by
// some fact in data. Data attributes are facts regardless of their Op
// field's value; numeric comparisons parse both sides as floats and fail
// closed on parse errors.
func (interest Name) Matches(data Name) bool {
	for _, pred := range interest {
		if !satisfied(pred, data) {
			return false
		}
	}
	return true
}

func satisfied(pred Attribute, data Name) bool {
	for _, fact := range data {
		if fact.Key != pred.Key {
			continue
		}
		switch pred.Op {
		case Exists:
			return true
		case Is, EQ:
			if fact.Value == pred.Value {
				return true
			}
		case NE:
			if fact.Value != pred.Value {
				return true
			}
		case GT, LT, GE, LE:
			fv, err1 := strconv.ParseFloat(fact.Value, 64)
			pv, err2 := strconv.ParseFloat(pred.Value, 64)
			if err1 != nil || err2 != nil {
				continue
			}
			switch pred.Op {
			case GT:
				if fv > pv {
					return true
				}
			case LT:
				if fv < pv {
					return true
				}
			case GE:
				if fv >= pv {
					return true
				}
			case LE:
				if fv <= pv {
					return true
				}
			}
		}
	}
	return false
}

// Wire format limits.
const (
	maxAttrs  = 255
	maxString = 255
)

var (
	// ErrNameTooLarge is returned when a name exceeds wire-format limits.
	ErrNameTooLarge = errors.New("naming: name exceeds wire limits")
	// ErrBadEncoding is returned for undecodable name bytes.
	ErrBadEncoding = errors.New("naming: malformed encoding")
)

// Encode serializes the name: an attribute count, then per attribute an
// operator byte and length-prefixed key and value strings.
func (n Name) Encode() ([]byte, error) {
	if len(n) > maxAttrs {
		return nil, fmt.Errorf("%w: %d attributes", ErrNameTooLarge, len(n))
	}
	w := bitio.NewWriter()
	must(w, uint64(len(n)), 8)
	for _, a := range n {
		if len(a.Key) > maxString || len(a.Value) > maxString {
			return nil, fmt.Errorf("%w: string too long", ErrNameTooLarge)
		}
		must(w, uint64(a.Op), 8)
		must(w, uint64(len(a.Key)), 8)
		w.WriteBytes([]byte(a.Key))
		must(w, uint64(len(a.Value)), 8)
		w.WriteBytes([]byte(a.Value))
	}
	return w.Bytes(), nil
}

// EncodedBits reports the wire size of the name in bits.
func (n Name) EncodedBits() (int, error) {
	b, err := n.Encode()
	if err != nil {
		return 0, err
	}
	return 8 * len(b), nil
}

// Decode parses a name serialized by Encode.
func Decode(p []byte) (Name, error) {
	r := bitio.NewReader(p)
	count, err := r.ReadBits(8)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadEncoding, err)
	}
	name := make(Name, 0, count)
	for i := uint64(0); i < count; i++ {
		op, err := r.ReadBits(8)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadEncoding, err)
		}
		if op < uint64(Is) || op > uint64(Exists) {
			return nil, fmt.Errorf("%w: op %d", ErrBadEncoding, op)
		}
		key, err := readString(r)
		if err != nil {
			return nil, err
		}
		value, err := readString(r)
		if err != nil {
			return nil, err
		}
		name = append(name, Attribute{Key: key, Op: Op(op), Value: value})
	}
	return name, nil
}

func readString(r *bitio.Reader) (string, error) {
	n, err := r.ReadBits(8)
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrBadEncoding, err)
	}
	buf := make([]byte, n)
	if err := r.ReadBytes(buf); err != nil {
		return "", fmt.Errorf("%w: %v", ErrBadEncoding, err)
	}
	return string(buf), nil
}

// Key returns a canonical string key for map lookups (codebooks).
func (n Name) Key() string {
	norm := n.Normalize()
	var b strings.Builder
	for _, a := range norm {
		fmt.Fprintf(&b, "%d\x00%s\x00%s\x01", a.Op, a.Key, a.Value)
	}
	return b.String()
}

func must(w *bitio.Writer, v uint64, bits int) {
	if err := w.WriteBits(v, bits); err != nil {
		panic(err)
	}
}
