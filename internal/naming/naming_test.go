package naming

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func sensorData() Name {
	return Name{
		{Key: "type", Op: Is, Value: "motion"},
		{Key: "quadrant", Op: Is, Value: "north-east"},
		{Key: "confidence", Op: Is, Value: "0.92"},
	}
}

func TestMatchesPaperExample(t *testing.T) {
	// "Was there motion detected in the north-east quadrant?"
	interest := Name{
		{Key: "type", Op: EQ, Value: "motion"},
		{Key: "quadrant", Op: EQ, Value: "north-east"},
	}
	if !interest.Matches(sensorData()) {
		t.Error("interest should match the sensor data")
	}
	elsewhere := Name{
		{Key: "type", Op: EQ, Value: "motion"},
		{Key: "quadrant", Op: EQ, Value: "south-west"},
	}
	if elsewhere.Matches(sensorData()) {
		t.Error("wrong quadrant should not match")
	}
}

func TestMatchOperators(t *testing.T) {
	data := Name{{Key: "temp", Op: Is, Value: "21.5"}}
	tests := []struct {
		name string
		pred Attribute
		want bool
	}{
		{"eq hit", Attribute{Key: "temp", Op: EQ, Value: "21.5"}, true},
		{"eq miss", Attribute{Key: "temp", Op: EQ, Value: "22"}, false},
		{"ne hit", Attribute{Key: "temp", Op: NE, Value: "30"}, true},
		{"ne miss", Attribute{Key: "temp", Op: NE, Value: "21.5"}, false},
		{"gt hit", Attribute{Key: "temp", Op: GT, Value: "20"}, true},
		{"gt miss", Attribute{Key: "temp", Op: GT, Value: "25"}, false},
		{"lt hit", Attribute{Key: "temp", Op: LT, Value: "25"}, true},
		{"lt miss", Attribute{Key: "temp", Op: LT, Value: "20"}, false},
		{"ge equal", Attribute{Key: "temp", Op: GE, Value: "21.5"}, true},
		{"le equal", Attribute{Key: "temp", Op: LE, Value: "21.5"}, true},
		{"exists hit", Attribute{Key: "temp", Op: Exists}, true},
		{"exists miss", Attribute{Key: "humidity", Op: Exists}, false},
		{"missing key", Attribute{Key: "humidity", Op: EQ, Value: "40"}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := (Name{tt.pred}).Matches(data)
			if got != tt.want {
				t.Errorf("Matches = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestNumericComparisonFailsClosedOnGarbage(t *testing.T) {
	data := Name{{Key: "state", Op: Is, Value: "on-fire"}}
	pred := Name{{Key: "state", Op: GT, Value: "10"}}
	if pred.Matches(data) {
		t.Error("non-numeric comparison should fail closed")
	}
}

func TestEmptyInterestMatchesEverything(t *testing.T) {
	if !(Name{}).Matches(sensorData()) {
		t.Error("empty interest should match anything")
	}
	if !(Name{}).Matches(Name{}) {
		t.Error("empty interest should match empty data")
	}
}

func TestNormalizeAndEqual(t *testing.T) {
	a := Name{
		{Key: "b", Op: Is, Value: "2"},
		{Key: "a", Op: Is, Value: "1"},
	}
	b := Name{
		{Key: "a", Op: Is, Value: "1"},
		{Key: "b", Op: Is, Value: "2"},
	}
	if !Equal(a, b) {
		t.Error("order should not affect equality")
	}
	if Equal(a, a[:1]) {
		t.Error("different lengths equal")
	}
	c := Name{
		{Key: "a", Op: Is, Value: "1"},
		{Key: "b", Op: Is, Value: "3"},
	}
	if Equal(a, c) {
		t.Error("different values equal")
	}
	// Normalize must not mutate the receiver.
	orig := a[0]
	_ = a.Normalize()
	if a[0] != orig {
		t.Error("Normalize mutated its receiver")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	n := sensorData()
	buf, err := n.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(n, got) {
		t.Errorf("round trip: %v -> %v", n, got)
	}
}

func TestEncodeEmptyName(t *testing.T) {
	buf, err := (Name{}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf)
	if err != nil || len(got) != 0 {
		t.Errorf("empty round trip: %v, %v", got, err)
	}
}

func TestEncodeLimits(t *testing.T) {
	big := make(Name, 256)
	if _, err := big.Encode(); !errors.Is(err, ErrNameTooLarge) {
		t.Errorf("256 attrs err = %v", err)
	}
	long := Name{{Key: strings.Repeat("k", 256), Op: Is, Value: "v"}}
	if _, err := long.Encode(); !errors.Is(err, ErrNameTooLarge) {
		t.Errorf("long key err = %v", err)
	}
}

func TestDecodeMalformed(t *testing.T) {
	n := sensorData()
	buf, err := n.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(buf); cut++ {
		if _, err := Decode(buf[:cut]); err == nil {
			// A shorter prefix can still be self-consistent only if the
			// truncated count is satisfied; cut=0 is the only empty case
			// and it errors on the count byte.
			t.Errorf("Decode(%d/%d bytes) accepted", cut, len(buf))
		}
	}
	if _, err := Decode([]byte{1, 99, 0, 0}); !errors.Is(err, ErrBadEncoding) {
		t.Errorf("bad op err = %v", err)
	}
}

func TestEncodedBits(t *testing.T) {
	n := Name{{Key: "k", Op: Is, Value: "vv"}}
	bits, err := n.EncodedBits()
	if err != nil {
		t.Fatal(err)
	}
	// 1 count + (1 op + 1 len + 1 key + 1 len + 2 value) bytes = 7 bytes.
	if bits != 56 {
		t.Errorf("EncodedBits = %d, want 56", bits)
	}
}

func TestKeyStability(t *testing.T) {
	a := Name{{Key: "x", Op: Is, Value: "1"}, {Key: "y", Op: Is, Value: "2"}}
	b := Name{{Key: "y", Op: Is, Value: "2"}, {Key: "x", Op: Is, Value: "1"}}
	if a.Key() != b.Key() {
		t.Error("Key() should be order independent")
	}
	c := Name{{Key: "x", Op: Is, Value: "1"}}
	if a.Key() == c.Key() {
		t.Error("different names share a Key()")
	}
	// The separator must prevent concatenation ambiguity.
	d := Name{{Key: "xy", Op: Is, Value: ""}}
	e := Name{{Key: "x", Op: Is, Value: "y"}}
	if d.Key() == e.Key() {
		t.Error("ambiguous keys for distinct names")
	}
}

func TestStringRendering(t *testing.T) {
	n := Name{{Key: "temp", Op: GT, Value: "20"}, {Key: "x", Op: Exists}}
	s := n.String()
	if !strings.Contains(s, "temp > 20") || !strings.Contains(s, "x exists") {
		t.Errorf("String() = %q", s)
	}
	if Op(99).String() != "op?" {
		t.Error("unknown op should render as op?")
	}
}

// TestRoundTripProperty fuzzes names through encode/decode.
func TestRoundTripProperty(t *testing.T) {
	f := func(keys [][]byte, vals [][]byte, ops []uint8) bool {
		var n Name
		for i := 0; i < len(keys) && i < len(vals) && i < len(ops) && i < 20; i++ {
			k, v := keys[i], vals[i]
			if len(k) > 255 {
				k = k[:255]
			}
			if len(v) > 255 {
				v = v[:255]
			}
			n = append(n, Attribute{
				Key:   string(k),
				Op:    Op(int(ops[i])%int(Exists)) + 1,
				Value: string(v),
			})
		}
		buf, err := n.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(buf)
		if err != nil {
			return false
		}
		return Equal(n, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
