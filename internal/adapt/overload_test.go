package adapt

import "testing"

func TestOverloadClampsToMax(t *testing.T) {
	est := &stubEstimator{t: 2}
	var changes [][2]int
	c := newController(t, Config{
		DataBits: 640, Min: 1, Max: 16, Overload: 100,
		OnChange: func(o, n int) { changes = append(changes, [2]int{o, n}) },
	}, est)

	// Settle well below Max first.
	for i := 0; i < 32; i++ {
		c.Bits()
	}
	settled := c.Current()
	if settled >= 16 {
		t.Fatalf("controller settled at %d, want below Max for a meaningful clamp", settled)
	}

	// Saturate: the very next decision pins to Max in one move, not a
	// one-bit walk.
	est.t = 150
	if got := c.Bits(); got != 16 {
		t.Fatalf("Bits() = %d under saturation, want immediate clamp to 16", got)
	}
	if c.Overloads() != 1 || !c.Overloaded() {
		t.Errorf("Overloads/Overloaded = %d/%v, want 1/true", c.Overloads(), c.Overloaded())
	}
	last := changes[len(changes)-1]
	if last != [2]int{settled, 16} {
		t.Errorf("OnChange saw %v for the clamp, want [%d 16]", last, settled)
	}

	// Inside the hysteresis band (exit defaults to 0.75×100 = 75) the
	// clamp holds even though the estimate dipped below the entry level.
	est.t = 90
	if got := c.Bits(); got != 16 || !c.Overloaded() {
		t.Errorf("Bits() = %d, overloaded = %v inside hysteresis band, want 16/true", got, c.Overloaded())
	}

	// Below the exit the controller resumes one-bit tracking downward.
	est.t = 2
	if got := c.Bits(); got != 15 || c.Overloaded() {
		t.Errorf("Bits() = %d, overloaded = %v after release, want 15/false", got, c.Overloaded())
	}
	if c.Overloads() != 1 {
		t.Errorf("Overloads = %d after release, want still 1", c.Overloads())
	}

	// Re-entry counts again.
	est.t = 200
	c.Bits()
	if c.Overloads() != 2 {
		t.Errorf("Overloads = %d after re-entry, want 2", c.Overloads())
	}
}

func TestOverloadZeroDisables(t *testing.T) {
	// With the clamp disabled, a saturated estimator exhibits exactly the
	// pathology Overload exists to fix: Equation 4's efficiency is near
	// zero at every width once T dwarfs the keyspace, the argmax collapses
	// to a tiny width, and the controller walks DOWN into maximum
	// collision pressure. This pins the (mis)behavior so the clamp's
	// absence stays byte-identical for existing configurations.
	est := &stubEstimator{t: 1e9}
	c := newController(t, Config{DataBits: 640, Min: 1, Max: 16, Initial: 4}, est)
	if got := c.Bits(); got != 3 {
		t.Errorf("Bits() = %d with Overload disabled, want the pathological step down to 3", got)
	}
	if c.Overloads() != 0 || c.Overloaded() {
		t.Errorf("overload machinery ran while disabled: %d/%v", c.Overloads(), c.Overloaded())
	}
}

func TestOverloadResetReleasesLatch(t *testing.T) {
	est := &stubEstimator{t: 500}
	c := newController(t, Config{DataBits: 640, Min: 1, Max: 16, Overload: 100}, est)
	c.Bits()
	if !c.Overloaded() {
		t.Fatal("clamp never engaged")
	}
	c.Reset()
	if c.Overloaded() {
		t.Error("Reset kept the overload latch — crash must wipe RAM state")
	}
	if c.Current() != 16 {
		t.Errorf("Current = %d after Reset, want Initial (Max) 16", c.Current())
	}
	if c.Overloads() != 1 {
		t.Errorf("Overloads = %d after Reset, want counter to survive", c.Overloads())
	}
}

func TestOverloadValidation(t *testing.T) {
	est := &stubEstimator{t: 1}
	if _, err := New(Config{DataBits: 640, Min: 1, Max: 16, Overload: -1}, est); err == nil {
		t.Error("negative Overload accepted")
	}
	if _, err := New(Config{DataBits: 640, Min: 1, Max: 16, Overload: 50, OverloadExit: 60}, est); err == nil {
		t.Error("OverloadExit above Overload accepted")
	}
	if _, err := New(Config{DataBits: 640, Min: 1, Max: 16, Overload: 50}, est); err != nil {
		t.Errorf("defaulted OverloadExit rejected: %v", err)
	}
}
