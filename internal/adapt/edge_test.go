package adapt

import (
	"testing"
)

// TestTargetSetPointEdges pins the Equation 4 set-point at the degenerate
// densities. At T=1 the success exponent 2(T-1) is zero, so every width is
// collision-free and the unclamped optimum collapses to H=1; T=0 (an
// estimator that has seen nothing) degenerates the same way. In both cases
// the Min clamp is the controller's floor.
func TestTargetSetPointEdges(t *testing.T) {
	cases := []struct {
		name     string
		density  float64
		min, max int
		want     int
	}{
		{"T=0 clamps to Min", 0, 2, 16, 2},
		{"T=1 clamps to Min", 1, 2, 16, 2},
		{"T=1 with Min=1", 1, 1, 16, 1},
		{"T=0 with high floor", 0, 8, 16, 8},
		{"T=1 respects Max", 1, 4, 4, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := newController(t, Config{DataBits: 384, Min: tc.min, Max: tc.max}, &stubEstimator{t: tc.density})
			if got := c.Target(); got != tc.want {
				t.Errorf("Target() at T=%v with [%d,%d] = %d, want %d",
					tc.density, tc.min, tc.max, got, tc.want)
			}
		})
	}
}

// TestDeadbandBoundaryEquality pins the hysteresis comparison at exact
// equality: a target exactly Deadband bits away must move the width, one
// bit less must hold it — in both directions.
func TestDeadbandBoundaryEquality(t *testing.T) {
	// Densities chosen so the clamped Equation 4 target for 384-bit
	// payloads sits a known distance from the initial width.
	target := func(t *testing.T, density float64, min, max int) int {
		t.Helper()
		c := newController(t, Config{DataBits: 384, Min: min, Max: max}, &stubEstimator{t: density})
		return c.Target()
	}
	base := target(t, 1, 2, 16) // = Min clamp 2
	cases := []struct {
		name     string
		deadband int
		initial  int // distance to target is |initial - base|
		wantMove bool
	}{
		{"gap equals deadband moves (down)", 2, base + 2, true},
		{"gap below deadband holds (down)", 2, base + 1, false},
		{"gap above deadband moves (down)", 2, base + 3, true},
		{"deadband 1 tracks a 1-bit gap", 1, base + 1, true},
		{"zero gap holds", 1, base, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := newController(t, Config{
				DataBits: 384, Min: 2, Max: 16,
				Deadband: tc.deadband, Initial: tc.initial,
			}, &stubEstimator{t: 1})
			got := c.Bits()
			moved := got != tc.initial
			if moved != tc.wantMove {
				t.Errorf("initial %d, target %d, deadband %d: Bits() = %d (moved=%v), want moved=%v",
					tc.initial, base, tc.deadband, got, moved, tc.wantMove)
			}
			if moved && got != tc.initial-1 {
				t.Errorf("moved to %d, want a single-bit step to %d", got, tc.initial-1)
			}
		})
	}

	// Upward direction: a dense network pulls the target above Initial.
	c := newController(t, Config{DataBits: 384, Min: 2, Max: 16, Deadband: 2, Initial: 2}, &stubEstimator{t: 40})
	up := c.Target()
	if up < 4 {
		t.Fatalf("test premise broken: target at T=40 is %d, want >= 4", up)
	}
	if got := c.Bits(); got != 3 {
		t.Errorf("upward gap %d with deadband 2: Bits() = %d, want single-bit step to 3", up-2, got)
	}
}

// TestClampOneBitSteps drives the controller across its whole range and
// checks every decision moves at most one bit and never leaves [Min, Max].
func TestClampOneBitSteps(t *testing.T) {
	cases := []struct {
		name     string
		density  float64
		min, max int
		initial  int
		settle   int // expected steady-state width
	}{
		{"descend to Min clamp", 1, 2, 10, 10, 2},
		{"ascend to Max clamp", 40, 1, 4, 1, 4},
		{"already at clamp holds", 1, 3, 8, 3, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := newController(t, Config{
				DataBits: 384, Min: tc.min, Max: tc.max, Initial: tc.initial,
			}, &stubEstimator{t: tc.density})
			prev := c.Current()
			for i := 0; i < 2*(tc.max-tc.min)+4; i++ {
				w := c.Bits()
				if d := w - prev; d < -1 || d > 1 {
					t.Fatalf("decision %d jumped %d -> %d", i, prev, w)
				}
				if w < tc.min || w > tc.max {
					t.Fatalf("decision %d left the clamp: %d outside [%d, %d]", i, w, tc.min, tc.max)
				}
				prev = w
			}
			if c.Current() != tc.settle {
				t.Errorf("settled at %d, want %d", c.Current(), tc.settle)
			}
		})
	}
}

// TestCrashResetMidStep crashes the controller halfway through a descent:
// the width must snap back to Initial (RAM state is gone), the harness
// counters must survive, and recovery must restart in single-bit steps.
func TestCrashResetMidStep(t *testing.T) {
	est := &stubEstimator{t: 1}
	c := newController(t, Config{DataBits: 384, Min: 2, Max: 12}, est)
	// Descend partway toward the Min-clamped target of 2.
	for i := 0; i < 4; i++ {
		c.Bits()
	}
	if c.Current() != 8 {
		t.Fatalf("mid-descent width = %d, want 8", c.Current())
	}
	decisions, moves := c.Decisions(), c.Moves()

	c.Reset()
	if c.Current() != 12 {
		t.Errorf("Reset left width %d, want Initial 12", c.Current())
	}
	if c.Decisions() != decisions || c.Moves() != moves {
		t.Error("Reset wiped harness counters")
	}

	// Recovery is rate-limited exactly like a cold start.
	if got := c.Bits(); got != 11 {
		t.Errorf("first post-crash decision = %d, want single-bit step to 11", got)
	}
	if c.Decisions() != decisions+1 || c.Moves() != moves+1 {
		t.Errorf("post-crash counters decisions=%d moves=%d, want %d/%d",
			c.Decisions(), c.Moves(), decisions+1, moves+1)
	}
}
