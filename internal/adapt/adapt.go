// Package adapt closes the loop the paper leaves open: identifier width
// should track the *observed* transaction density T, not a compile-time
// guess (Section 4 — "the optimal number of bits depends on the transaction
// density, not on the number of nodes"). A Controller feeds a running
// density estimate into Equation 4's optimum and steps a per-transaction
// identifier width toward it, with hysteresis and min/max clamps so the
// width never thrashes on estimator noise.
//
// The controller only decides a width; carrying it on air is the aff
// layer's adaptive-width wire format (aff.Config.AdaptiveWidth), and wiring
// the decision into each outgoing transaction is the node layer's
// AFFOptions.Width hook.
package adapt

import (
	"errors"
	"fmt"

	"retri/internal/density"
	"retri/internal/model"
)

// Config parameterizes a width controller.
type Config struct {
	// DataBits is the typical packet payload size in bits — the D of
	// Equation 1 the optimum is computed against.
	DataBits int
	// Min and Max clamp the chosen width (bits). Max also bounds the
	// Equation 4 search and must not exceed the identifier space width.
	Min, Max int
	// Deadband is the hysteresis: the width only moves when the computed
	// target differs from the current width by at least this many bits.
	// Default 1 (track every whole-bit change); larger values trade
	// tracking lag for stability. Must be >= 1.
	Deadband int
	// Initial is the width before any density evidence arrives. Default
	// Max: a cold node assumes contention rather than risking collisions.
	Initial int
	// OnChange, when set, observes every width move the controller makes
	// (oldBits != newBits). It is a passive measurement tap — span tracing
	// records width-change instants through it — and must not call back
	// into the controller.
	OnChange func(oldBits, newBits int)
	// Overload is the density estimate at or above which the controller
	// declares the estimator saturated and clamps straight to Max instead
	// of stepping one bit at a time: under compound faults the estimate
	// can swing across its whole range faster than one-bit tracking can
	// follow, and oscillating mid-range widths collide more than a pinned
	// maximum. The clamp releases with hysteresis once the estimate falls
	// below OverloadExit. Zero disables (the default).
	Overload float64
	// OverloadExit is the estimate below which an overloaded controller
	// resumes normal tracking (default 0.75 × Overload).
	OverloadExit float64
}

func (c Config) withDefaults() Config {
	if c.Deadband == 0 {
		c.Deadband = 1
	}
	if c.Initial == 0 {
		c.Initial = c.Max
	}
	if c.Overload > 0 && c.OverloadExit == 0 {
		c.OverloadExit = 0.75 * c.Overload
	}
	return c
}

func (c Config) validate() error {
	if c.DataBits <= 0 {
		return fmt.Errorf("adapt: DataBits %d must be positive", c.DataBits)
	}
	if c.Min < 1 || c.Max < c.Min {
		return fmt.Errorf("adapt: width clamp [%d, %d] invalid", c.Min, c.Max)
	}
	if c.Deadband < 1 {
		return fmt.Errorf("adapt: deadband %d must be >= 1", c.Deadband)
	}
	if c.Initial < c.Min || c.Initial > c.Max {
		return fmt.Errorf("adapt: initial width %d outside [%d, %d]", c.Initial, c.Min, c.Max)
	}
	if c.Overload < 0 {
		return fmt.Errorf("adapt: negative overload threshold %v", c.Overload)
	}
	if c.Overload > 0 && (c.OverloadExit <= 0 || c.OverloadExit > c.Overload) {
		return fmt.Errorf("adapt: overload exit %v outside (0, %v]", c.OverloadExit, c.Overload)
	}
	return nil
}

// Controller is a per-node closed-loop width policy. It is not safe for
// concurrent use; like every other protocol component it lives on one
// node inside one single-threaded simulation.
type Controller struct {
	cfg Config
	est density.TEstimator
	cur int

	overloaded bool

	decisions int64
	moves     int64
	overloads int64
}

// New returns a controller reading density from est.
func New(cfg Config, est density.TEstimator) (*Controller, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if est == nil {
		return nil, errors.New("adapt: nil estimator")
	}
	return &Controller{cfg: cfg, est: est, cur: cfg.Initial}, nil
}

// Target computes the Equation 4 optimum for the current density estimate,
// clamped to the configured range, without moving the width.
func (c *Controller) Target() int {
	h, _ := model.OptimalBits(c.cfg.DataBits, c.est.Estimate(), c.cfg.Max)
	if h < c.cfg.Min {
		h = c.cfg.Min
	}
	return h
}

// Bits decides the width for the next transaction: one bit toward the
// target when the gap reaches the deadband, otherwise hold. One-bit steps
// rate-limit the response so a transient density spike cannot slam the
// width across its whole range within a single estimator excursion.
// While the overload clamp is engaged the width pins to Max instead —
// saturation is the one regime where a one-bit walk is the wrong shape.
func (c *Controller) Bits() int {
	c.decisions++
	old := c.cur
	if c.updateOverload() {
		c.cur = c.cfg.Max
	} else {
		gap := c.Target() - c.cur
		if gap >= c.cfg.Deadband {
			c.cur++
		} else if -gap >= c.cfg.Deadband {
			c.cur--
		}
	}
	if c.cur != old {
		c.moves++
		if c.cfg.OnChange != nil {
			c.cfg.OnChange(old, c.cur)
		}
	}
	return c.cur
}

// updateOverload advances the saturation latch: engage at or above
// Overload, release below OverloadExit (hysteresis so estimator noise
// around the threshold cannot flap the clamp).
func (c *Controller) updateOverload() bool {
	if c.cfg.Overload <= 0 {
		return false
	}
	est := c.est.Estimate()
	if c.overloaded {
		if est < c.cfg.OverloadExit {
			c.overloaded = false
		}
	} else if est >= c.cfg.Overload {
		c.overloaded = true
		c.overloads++
	}
	return c.overloaded
}

// Current returns the width without deciding (instrumentation).
func (c *Controller) Current() int { return c.cur }

// Decisions and Moves report how often the controller was consulted and
// how often it changed width — the thrash diagnostics.
func (c *Controller) Decisions() int64 { return c.decisions }
func (c *Controller) Moves() int64     { return c.moves }

// Overloads reports how many times the saturation clamp engaged.
func (c *Controller) Overloads() int64 { return c.overloads }

// Overloaded reports whether the clamp is currently engaged.
func (c *Controller) Overloaded() bool { return c.overloaded }

// Reset returns the width to its initial value and releases the overload
// latch, modelling a node crash wiping RAM state. Counters belong to the
// harness and survive.
func (c *Controller) Reset() {
	c.cur = c.cfg.Initial
	c.overloaded = false
}

// Fixed is the degenerate policy: a constant width. It exists so the
// adaptive machinery (in-band width format, mixed-width reassembly) can be
// exercised at a pinned width in tests and ablations.
type Fixed int

// Bits returns the constant width.
func (f Fixed) Bits() int { return int(f) }
