package adapt

import (
	"testing"

	"retri/internal/model"
)

// stubEstimator returns a settable density, satisfying density.TEstimator.
type stubEstimator struct{ t float64 }

func (s *stubEstimator) Observe(uint64)    {}
func (s *stubEstimator) Estimate() float64 { return s.t }
func (s *stubEstimator) Window() int       { return 2 * int(s.t) }

func newController(t *testing.T, cfg Config, est *stubEstimator) *Controller {
	t.Helper()
	c, err := New(cfg, est)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	est := &stubEstimator{t: 1}
	cases := []Config{
		{DataBits: 0, Min: 1, Max: 9},
		{DataBits: 640, Min: 0, Max: 9},
		{DataBits: 640, Min: 5, Max: 4},
		{DataBits: 640, Min: 2, Max: 9, Initial: 1},
		{DataBits: 640, Min: 2, Max: 9, Initial: 10},
	}
	for _, cfg := range cases {
		if _, err := New(cfg, est); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if _, err := New(Config{DataBits: 640, Min: 1, Max: 9}, nil); err == nil {
		t.Error("nil estimator accepted")
	}
}

func TestColdStartAssumesContention(t *testing.T) {
	c := newController(t, Config{DataBits: 640, Min: 1, Max: 16}, &stubEstimator{t: 1})
	if c.Current() != 16 {
		t.Errorf("initial width = %d, want Max (16)", c.Current())
	}
}

// TestConvergesToOptimum drives the controller at a constant density until
// steady state: it must land exactly on the clamped Equation 4 optimum and
// hold there (deadband 1, so zero steady-state error).
func TestConvergesToOptimum(t *testing.T) {
	for _, density := range []float64{1, 3, 10, 40} {
		est := &stubEstimator{t: density}
		c := newController(t, Config{DataBits: 640, Min: 1, Max: 16}, est)
		want, _ := model.OptimalBits(640, density, 16)
		if want < 1 {
			want = 1
		}
		for i := 0; i < 32; i++ {
			c.Bits()
		}
		if c.Current() != want {
			t.Errorf("T=%v: settled at %d bits, optimum %d", density, c.Current(), want)
		}
		moves := c.Moves()
		c.Bits()
		if c.Moves() != moves {
			t.Errorf("T=%v: controller still moving at steady state", density)
		}
	}
}

func TestOneBitStepsRateLimit(t *testing.T) {
	est := &stubEstimator{t: 1}
	c := newController(t, Config{DataBits: 640, Min: 1, Max: 16, Initial: 16}, est)
	first := c.Bits()
	if first != 15 {
		t.Errorf("first decision moved to %d, want a single-bit step to 15", first)
	}
}

func TestDeadbandHolds(t *testing.T) {
	est := &stubEstimator{t: 10}
	c := newController(t, Config{DataBits: 640, Min: 1, Max: 16, Deadband: 2}, est)
	for i := 0; i < 32; i++ {
		c.Bits()
	}
	settled := c.Current()
	target := c.Target()
	if diff := settled - target; diff < 0 || diff >= 2 {
		t.Errorf("deadband 2 settled %d bits from target", diff)
	}
	// A one-bit target wobble must not move the width.
	moves := c.Moves()
	est.t = 12 // nudges the optimum by at most a bit at these densities
	if gap := c.Target() - settled; gap > -2 && gap < 2 {
		c.Bits()
		if c.Moves() != moves {
			t.Error("deadband 2 moved on a sub-deadband target change")
		}
	}
}

func TestClampsRespectMinMax(t *testing.T) {
	// T=1 makes every width collision-free, so the unclamped optimum is
	// H=1; Min must hold the floor.
	est := &stubEstimator{t: 1}
	c := newController(t, Config{DataBits: 640, Min: 6, Max: 9}, est)
	for i := 0; i < 16; i++ {
		c.Bits()
	}
	if c.Current() != 6 {
		t.Errorf("width %d, want Min clamp 6", c.Current())
	}
	// At T=40 the unclamped optimum for 640-bit packets exceeds 4 bits
	// (TestConvergesToOptimum pins it at Max=16), so Max=4 must cap it.
	est.t = 40
	c2 := newController(t, Config{DataBits: 640, Min: 1, Max: 4}, est)
	for i := 0; i < 16; i++ {
		c2.Bits()
	}
	if c2.Current() != 4 {
		t.Errorf("width %d, want Max clamp 4", c2.Current())
	}
}

func TestResetRestoresInitialKeepsCounters(t *testing.T) {
	est := &stubEstimator{t: 4}
	c := newController(t, Config{DataBits: 640, Min: 1, Max: 16}, est)
	for i := 0; i < 8; i++ {
		c.Bits()
	}
	decisions := c.Decisions()
	c.Reset()
	if c.Current() != 16 {
		t.Errorf("Reset left width %d, want Initial 16", c.Current())
	}
	if c.Decisions() != decisions {
		t.Error("Reset wiped harness counters")
	}
}

func TestFixedPolicy(t *testing.T) {
	if Fixed(9).Bits() != 9 {
		t.Error("Fixed(9).Bits() != 9")
	}
}
