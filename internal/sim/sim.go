// Package sim implements a deterministic, single-threaded discrete-event
// simulation engine.
//
// The engine replaces the paper's physical testbed clock: radios, MAC
// backoffs, reassembly timeouts and workload generators all schedule
// callbacks on one virtual timeline. Events at equal timestamps fire in
// scheduling order, so a run is a pure function of its inputs and random
// seeds. The engine is not safe for concurrent use; the whole simulation is
// intentionally one goroutine (see DESIGN.md, "Determinism").
package sim

import (
	"container/heap"
	"time"
)

// Engine is a discrete-event scheduler with a virtual clock.
//
// The zero value is not usable; call NewEngine.
type Engine struct {
	now    time.Duration
	events eventHeap
	seq    uint64
	nRun   uint64
	// nCancelled counts cancelled events still occupying heap slots, so
	// Pending is O(1) and Cancel knows when compaction pays off.
	nCancelled int
	// Event-loop accounting for Stats: total cancellations, lazy-deletion
	// compactions, and the heap's high-water mark. Each costs at most one
	// increment or compare per operation, so the accounting is always on
	// and cannot perturb scheduling.
	nCancelledTotal uint64
	nCompactions    uint64
	heapHighWater   int
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Pending reports the number of scheduled, uncancelled events.
func (e *Engine) Pending() int {
	return len(e.events) - e.nCancelled
}

// Processed reports the total number of events executed so far.
func (e *Engine) Processed() uint64 { return e.nRun }

// Stats is a snapshot of the engine's event-loop accounting, for the
// observability layer. All fields are totals since NewEngine except
// HeapHighWater (the largest heap the run ever held, cancelled slots
// included) and Pending (live events right now).
type Stats struct {
	// Processed counts events executed.
	Processed uint64
	// Scheduled counts events ever scheduled.
	Scheduled uint64
	// Cancelled counts timers cancelled before firing.
	Cancelled uint64
	// Compactions counts cancelled-timer heap rebuilds (maybeCompact).
	Compactions uint64
	// HeapHighWater is the maximum heap length observed.
	HeapHighWater int
	// Pending is the current count of scheduled, uncancelled events.
	Pending int
}

// Stats returns the engine's event-loop accounting.
func (e *Engine) Stats() Stats {
	return Stats{
		Processed:     e.nRun,
		Scheduled:     e.seq,
		Cancelled:     e.nCancelledTotal,
		Compactions:   e.nCompactions,
		HeapHighWater: e.heapHighWater,
		Pending:       e.Pending(),
	}
}

// Timer is a handle to a scheduled event.
type Timer struct {
	eng *Engine
	ev  *event
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled timer is a no-op. Cancel reports whether the event was
// still pending.
func (t *Timer) Cancel() bool {
	if t == nil || t.ev == nil || t.ev.cancelled || t.ev.fired {
		return false
	}
	t.ev.cancelled = true
	t.eng.nCancelled++
	t.eng.nCancelledTotal++
	t.eng.maybeCompact()
	return true
}

// Stopped reports whether the timer has fired or been cancelled.
func (t *Timer) Stopped() bool {
	return t == nil || t.ev == nil || t.ev.cancelled || t.ev.fired
}

// When returns the virtual time the event is (or was) scheduled for.
func (t *Timer) When() time.Duration {
	if t == nil || t.ev == nil {
		return 0
	}
	return t.ev.at
}

// Schedule runs fn after delay d of virtual time. A non-positive delay
// schedules fn at the current time, after all events already scheduled for
// that instant. The returned Timer may be used to cancel.
func (e *Engine) Schedule(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return e.ScheduleAt(e.now+d, fn)
}

// ScheduleAt runs fn at absolute virtual time t. Times in the past are
// clamped to the present.
func (e *Engine) ScheduleAt(t time.Duration, fn func()) *Timer {
	if t < e.now {
		t = e.now
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	if len(e.events) > e.heapHighWater {
		e.heapHighWater = len(e.events)
	}
	return &Timer{eng: e, ev: ev}
}

// compactThreshold is the smallest heap worth compacting; below it the
// lazy-deletion slots cost less than the rebuild.
const compactThreshold = 64

// maybeCompact rebuilds the heap without cancelled events once they occupy
// more than half of it, bounding heap growth under cancel/reschedule churn
// (MAC backoffs, reassembly timeouts) at ~2x the live event count.
func (e *Engine) maybeCompact() {
	if len(e.events) < compactThreshold || e.nCancelled*2 <= len(e.events) {
		return
	}
	kept := e.events[:0]
	for _, ev := range e.events {
		if !ev.cancelled {
			kept = append(kept, ev)
		}
	}
	for i := len(kept); i < len(e.events); i++ {
		e.events[i] = nil
	}
	e.events = kept
	e.nCancelled = 0
	e.nCompactions++
	heap.Init(&e.events)
}

// Step executes the next pending event, advancing the clock to its
// timestamp. It reports whether an event was executed.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.cancelled {
			e.nCancelled--
			continue
		}
		e.now = ev.at
		ev.fired = true
		e.nRun++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// exactly t. Events scheduled for later remain pending.
func (e *Engine) RunUntil(t time.Duration) {
	for {
		ev := e.peek()
		if ev == nil || ev.at > t {
			break
		}
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunFor executes events for a span d of virtual time from now.
func (e *Engine) RunFor(d time.Duration) {
	e.RunUntil(e.now + d)
}

// NextAt reports the timestamp of the earliest pending event, if any. The
// sharded driver (internal/shard) uses it to window a legacy engine without
// ever advancing the clock past the last event actually executed — which is
// what keeps windowed replay byte-identical to Run (listening-energy meters
// accrue up to Now, so overshooting the final event would change them).
func (e *Engine) NextAt() (time.Duration, bool) {
	ev := e.peek()
	if ev == nil {
		return 0, false
	}
	return ev.at, true
}

// peek returns the earliest uncancelled event without executing it.
func (e *Engine) peek() *event {
	for len(e.events) > 0 {
		ev := e.events[0]
		if !ev.cancelled {
			return ev
		}
		heap.Pop(&e.events)
		e.nCancelled--
	}
	return nil
}

type event struct {
	at        time.Duration
	seq       uint64
	fn        func()
	cancelled bool
	fired     bool
}

// eventHeap orders by (time, insertion sequence) so simultaneous events run
// in the order they were scheduled — the determinism guarantee.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
