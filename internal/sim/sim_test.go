package sim

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30*time.Millisecond, func() { order = append(order, 3) })
	e.Schedule(10*time.Millisecond, func() { order = append(order, 1) })
	e.Schedule(20*time.Millisecond, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("execution order = %v, want [1 2 3]", order)
	}
	if e.Now() != 30*time.Millisecond {
		t.Errorf("Now() = %v, want 30ms", e.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events ran out of order: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var hits []time.Duration
	e.Schedule(time.Second, func() {
		hits = append(hits, e.Now())
		e.Schedule(time.Second, func() {
			hits = append(hits, e.Now())
		})
	})
	e.Run()
	if len(hits) != 2 || hits[0] != time.Second || hits[1] != 2*time.Second {
		t.Errorf("hits = %v, want [1s 2s]", hits)
	}
}

func TestScheduleZeroAndNegativeDelay(t *testing.T) {
	e := NewEngine()
	e.Schedule(time.Second, func() {})
	e.Run()

	fired := false
	e.Schedule(-5*time.Second, func() {
		fired = true
		if e.Now() != time.Second {
			t.Errorf("negative delay fired at %v, want clamp to 1s", e.Now())
		}
	})
	e.Run()
	if !fired {
		t.Error("negative-delay event never fired")
	}
}

func TestScheduleAtPastClamped(t *testing.T) {
	e := NewEngine()
	e.Schedule(time.Minute, func() {})
	e.Run()
	var at time.Duration
	e.ScheduleAt(time.Second, func() { at = e.Now() })
	e.Run()
	if at != time.Minute {
		t.Errorf("past ScheduleAt fired at %v, want clamped to 1m", at)
	}
}

func TestTimerCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.Schedule(time.Second, func() { fired = true })
	if tm.Stopped() {
		t.Error("fresh timer reports Stopped")
	}
	if !tm.Cancel() {
		t.Error("first Cancel returned false")
	}
	if tm.Cancel() {
		t.Error("second Cancel returned true")
	}
	if !tm.Stopped() {
		t.Error("cancelled timer does not report Stopped")
	}
	e.Run()
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestTimerCancelAfterFire(t *testing.T) {
	e := NewEngine()
	tm := e.Schedule(time.Second, func() {})
	e.Run()
	if tm.Cancel() {
		t.Error("Cancel after fire returned true")
	}
	if !tm.Stopped() {
		t.Error("fired timer does not report Stopped")
	}
}

func TestTimerWhen(t *testing.T) {
	e := NewEngine()
	tm := e.Schedule(42*time.Millisecond, func() {})
	if tm.When() != 42*time.Millisecond {
		t.Errorf("When() = %v, want 42ms", tm.When())
	}
	var nilTimer *Timer
	if nilTimer.When() != 0 || !nilTimer.Stopped() || nilTimer.Cancel() {
		t.Error("nil Timer methods misbehave")
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []int
	e.Schedule(1*time.Second, func() { fired = append(fired, 1) })
	e.Schedule(2*time.Second, func() { fired = append(fired, 2) })
	e.Schedule(3*time.Second, func() { fired = append(fired, 3) })
	e.RunUntil(2 * time.Second)
	if len(fired) != 2 {
		t.Errorf("fired = %v, want events 1 and 2", fired)
	}
	if e.Now() != 2*time.Second {
		t.Errorf("Now() = %v, want 2s", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending() = %d, want 1", e.Pending())
	}
	e.Run()
	if len(fired) != 3 {
		t.Errorf("after Run, fired = %v, want all three", fired)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEngine()
	e.RunUntil(5 * time.Second)
	if e.Now() != 5*time.Second {
		t.Errorf("Now() = %v, want 5s with empty queue", e.Now())
	}
}

func TestRunFor(t *testing.T) {
	e := NewEngine()
	e.RunUntil(time.Second)
	fired := false
	e.Schedule(500*time.Millisecond, func() { fired = true })
	e.RunFor(time.Second)
	if !fired {
		t.Error("event within RunFor window did not fire")
	}
	if e.Now() != 2*time.Second {
		t.Errorf("Now() = %v, want 2s", e.Now())
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Error("Step on empty engine returned true")
	}
	e.Schedule(0, func() {})
	if !e.Step() {
		t.Error("Step with pending event returned false")
	}
	if e.Processed() != 1 {
		t.Errorf("Processed() = %d, want 1", e.Processed())
	}
}

func TestPendingSkipsCancelled(t *testing.T) {
	e := NewEngine()
	tm := e.Schedule(time.Second, func() {})
	e.Schedule(time.Second, func() {})
	tm.Cancel()
	if e.Pending() != 1 {
		t.Errorf("Pending() = %d, want 1", e.Pending())
	}
}

// TestCancelledTimerCompaction: regression for unbounded heap growth. A
// long-lived simulation that keeps cancelling and rescheduling timers (MAC
// backoffs, reassembly timeouts) must not accumulate cancelled entries.
func TestCancelledTimerCompaction(t *testing.T) {
	e := NewEngine()
	// One live anchor event so the heap is never trivially empty.
	anchor := e.Schedule(time.Hour, func() {})
	maxLen := 0
	for i := 0; i < 100000; i++ {
		tm := e.Schedule(time.Minute, func() {})
		tm.Cancel()
		if len(e.events) > maxLen {
			maxLen = len(e.events)
		}
	}
	// Lazy deletion may keep up to 2x the live count plus the compaction
	// floor; anything near 1e5 means cancelled events leaked.
	if maxLen > 4*compactThreshold {
		t.Fatalf("heap grew to %d entries across 1e5 cancel/reschedule cycles", maxLen)
	}
	if got := e.Pending(); got != 1 {
		t.Errorf("Pending() = %d, want 1 (the anchor)", got)
	}
	fired := 0
	e.Schedule(2*time.Hour, func() { fired++ })
	anchor.Cancel()
	e.Run()
	if fired != 1 {
		t.Errorf("post-compaction event fired %d times, want 1", fired)
	}
}

// TestCompactionPreservesOrder: compaction must not disturb the
// (time, sequence) execution order of surviving events.
func TestCompactionPreservesOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 50; i++ {
		i := i
		e.Schedule(time.Duration(50-i)*time.Second, func() { order = append(order, i) })
	}
	// Force several compactions around the live events.
	for i := 0; i < 1000; i++ {
		e.Schedule(time.Hour, func() {}).Cancel()
	}
	e.RunUntil(51 * time.Second)
	if len(order) != 50 {
		t.Fatalf("ran %d events, want 50", len(order))
	}
	for i, v := range order {
		if v != 49-i {
			t.Fatalf("execution order corrupted by compaction: %v", order)
		}
	}
}

// TestPendingCountsAcrossCancelAndRun: the O(1) Pending counter must agree
// with a direct scan through schedule, cancel, and pop paths.
func TestPendingCountsAcrossCancelAndRun(t *testing.T) {
	e := NewEngine()
	var timers []*Timer
	for i := 0; i < 200; i++ {
		timers = append(timers, e.Schedule(time.Duration(i)*time.Millisecond, func() {}))
	}
	for i := 0; i < 200; i += 2 {
		timers[i].Cancel()
	}
	check := func() {
		scan := 0
		for _, ev := range e.events {
			if !ev.cancelled {
				scan++
			}
		}
		if got := e.Pending(); got != scan {
			t.Fatalf("Pending() = %d, scan says %d", got, scan)
		}
	}
	check()
	e.RunUntil(50 * time.Millisecond)
	check()
	e.Run()
	check()
	if e.Pending() != 0 {
		t.Errorf("Pending() = %d after Run, want 0", e.Pending())
	}
}

// TestStatsAccounting: Stats must agree with the operations performed,
// including compactions and the heap high-water mark.
func TestStatsAccounting(t *testing.T) {
	e := NewEngine()
	if (e.Stats() != Stats{}) {
		t.Errorf("fresh engine Stats = %+v, want zero", e.Stats())
	}

	var timers []*Timer
	for i := 0; i < 10; i++ {
		timers = append(timers, e.Schedule(time.Duration(i)*time.Second, func() {}))
	}
	timers[0].Cancel()
	timers[1].Cancel()
	timers[1].Cancel() // no-op, must not double-count

	s := e.Stats()
	if s.Scheduled != 10 || s.Cancelled != 2 || s.Pending != 8 || s.Processed != 0 {
		t.Errorf("Stats = %+v, want scheduled 10, cancelled 2, pending 8", s)
	}
	if s.HeapHighWater != 10 {
		t.Errorf("HeapHighWater = %d, want 10", s.HeapHighWater)
	}

	e.Run()
	s = e.Stats()
	if s.Processed != 8 || s.Pending != 0 {
		t.Errorf("after Run, Stats = %+v, want processed 8, pending 0", s)
	}
	if s.HeapHighWater != 10 {
		t.Errorf("high water shrank to %d after Run", s.HeapHighWater)
	}

	// Force compactions with cancel/reschedule churn and verify they are
	// counted and the totals keep up.
	for i := 0; i < 1000; i++ {
		e.Schedule(time.Hour, func() {}).Cancel()
	}
	s = e.Stats()
	if s.Compactions == 0 {
		t.Error("cancel/reschedule churn triggered no compactions")
	}
	if s.Scheduled != 1010 || s.Cancelled != 1002 {
		t.Errorf("after churn, Stats = %+v, want scheduled 1010, cancelled 1002", s)
	}
}

// TestClockMonotonicProperty: under random scheduling, observed event times
// never decrease and never precede their scheduling time.
func TestClockMonotonicProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0))
		e := NewEngine()
		ok := true
		last := time.Duration(0)
		var schedule func(depth int)
		schedule = func(depth int) {
			if depth > 3 {
				return
			}
			n := rng.IntN(5) + 1
			for i := 0; i < n; i++ {
				d := time.Duration(rng.IntN(1000)) * time.Millisecond
				earliest := e.Now() + d
				e.Schedule(d, func() {
					if e.Now() < earliest || e.Now() < last {
						ok = false
					}
					last = e.Now()
					schedule(depth + 1)
				})
			}
		}
		schedule(0)
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestDeterminism: two identical runs process identical event counts and
// finish at identical times.
func TestDeterminism(t *testing.T) {
	run := func() (uint64, time.Duration) {
		rng := rand.New(rand.NewPCG(7, 7))
		e := NewEngine()
		var rec func()
		count := 0
		rec = func() {
			count++
			if count < 200 {
				e.Schedule(time.Duration(rng.IntN(100))*time.Millisecond, rec)
			}
		}
		e.Schedule(0, rec)
		e.Run()
		return e.Processed(), e.Now()
	}
	n1, t1 := run()
	n2, t2 := run()
	if n1 != n2 || t1 != t2 {
		t.Errorf("runs diverged: (%d, %v) vs (%d, %v)", n1, t1, n2, t2)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 100; j++ {
			e.Schedule(time.Duration(j)*time.Millisecond, func() {})
		}
		e.Run()
	}
}
