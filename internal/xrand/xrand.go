// Package xrand derives deterministic, independent random streams from a
// single master seed.
//
// Every stochastic component of the simulation (the medium's loss draws,
// each node's identifier selector, each workload generator, each
// experimental trial) owns its own stream, labelled by a stable string
// path. Two runs with the same master seed therefore produce identical
// results, and changing one component's draw pattern cannot perturb any
// other component — a property the experiment harness depends on when
// comparing selector algorithms on otherwise-identical traffic.
package xrand

import (
	"hash/fnv"
	"math/rand/v2"
	"strconv"
)

// Source is a deterministic factory for labelled random streams.
type Source struct {
	seed uint64
}

// NewSource returns a stream factory rooted at the master seed.
func NewSource(seed uint64) *Source { return &Source{seed: seed} }

// Seed returns the master seed.
func (s *Source) Seed() uint64 { return s.seed }

// Stream returns an independent *rand.Rand identified by the label path.
// The same (seed, labels) pair always yields an identical stream.
func (s *Source) Stream(labels ...string) *rand.Rand {
	return rand.New(rand.NewPCG(s.seed, deriveKey(labels)))
}

// Child returns a Source whose streams are independent of the parent's,
// keyed by the label path. Use it to hand a subsystem its own namespace.
func (s *Source) Child(labels ...string) *Source {
	return &Source{seed: mix(s.seed, deriveKey(labels))}
}

// Trial is shorthand for Stream with a numbered-trial label, the common
// case in the experiment harness.
func (s *Source) Trial(name string, i int) *rand.Rand {
	return s.Stream(name, strconv.Itoa(i))
}

// deriveKey hashes a label path into the PCG stream-selection word.
func deriveKey(labels []string) uint64 {
	h := fnv.New64a()
	for _, l := range labels {
		_, _ = h.Write([]byte(l))
		_, _ = h.Write([]byte{0}) // separator so ("ab","c") != ("a","bc")
	}
	return h.Sum64()
}

// mix combines a seed with a derived key using the SplitMix64 finalizer, so
// Child sources do not collide with sibling Streams of the same labels.
func mix(seed, key uint64) uint64 {
	z := seed + 0x9E3779B97F4A7C15 + key
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}
