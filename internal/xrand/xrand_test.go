package xrand

import (
	"testing"
)

func drawN(src *Source, n int, labels ...string) []uint64 {
	r := src.Stream(labels...)
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.Uint64()
	}
	return out
}

func TestStreamDeterministic(t *testing.T) {
	a := drawN(NewSource(42), 16, "medium", "loss")
	b := drawN(NewSource(42), 16, "medium", "loss")
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %x vs %x", i, a[i], b[i])
		}
	}
}

func TestStreamsIndependentByLabel(t *testing.T) {
	src := NewSource(42)
	a := drawN(src, 16, "node", "1")
	b := drawN(src, 16, "node", "2")
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/16 draws identical across differently labelled streams", same)
	}
}

func TestLabelSeparatorPreventsConcatCollision(t *testing.T) {
	src := NewSource(7)
	a := drawN(src, 8, "ab", "c")
	b := drawN(src, 8, "a", "bc")
	identical := true
	for i := range a {
		if a[i] != b[i] {
			identical = false
			break
		}
	}
	if identical {
		t.Error(`streams for ("ab","c") and ("a","bc") are identical`)
	}
}

func TestSeedsProduceDifferentStreams(t *testing.T) {
	a := drawN(NewSource(1), 8, "x")
	b := drawN(NewSource(2), 8, "x")
	identical := true
	for i := range a {
		if a[i] != b[i] {
			identical = false
			break
		}
	}
	if identical {
		t.Error("streams for seeds 1 and 2 are identical")
	}
}

func TestChildNamespaceIsolation(t *testing.T) {
	src := NewSource(99)
	child := src.Child("radio")
	a := drawN(child, 8, "x")
	b := drawN(src, 8, "x")
	identical := true
	for i := range a {
		if a[i] != b[i] {
			identical = false
			break
		}
	}
	if identical {
		t.Error("child stream collides with parent stream of same label")
	}

	// Child derivation is itself deterministic.
	c := drawN(NewSource(99).Child("radio"), 8, "x")
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("child stream not reproducible at draw %d", i)
		}
	}
}

func TestTrialShorthand(t *testing.T) {
	src := NewSource(5)
	a := src.Trial("fig4", 3).Uint64()
	b := src.Stream("fig4", "3").Uint64()
	if a != b {
		t.Errorf("Trial(fig4,3) = %x, Stream(fig4,3) = %x", a, b)
	}
	c := src.Trial("fig4", 4).Uint64()
	if a == c {
		t.Error("trials 3 and 4 produced the same first draw")
	}
}

func TestSeedAccessor(t *testing.T) {
	if got := NewSource(123).Seed(); got != 123 {
		t.Errorf("Seed() = %d, want 123", got)
	}
}

// TestStreamUniformityRough sanity-checks that a derived stream is not
// obviously degenerate: across 4096 draws of IntN(16), every bucket is hit.
func TestStreamUniformityRough(t *testing.T) {
	r := NewSource(42).Stream("uniformity")
	var buckets [16]int
	for i := 0; i < 4096; i++ {
		buckets[r.IntN(16)]++
	}
	for i, c := range buckets {
		if c == 0 {
			t.Errorf("bucket %d never hit in 4096 draws", i)
		}
	}
}
