// Package flood implements scoped flooding with RETRI-keyed duplicate
// suppression — a third application of the paper's idea, in the spirit of
// its Section 6 catalogue ("these applications all have in common a need
// to reference some state that has meaning over some time period and in
// some location").
//
// Flooding needs a per-message identity so relays can suppress duplicates.
// The traditional choice is (source address, sequence number); the RETRI
// choice is a short random identifier drawn fresh per message. The
// suppression state is the transaction: it must be unique only among
// messages circulating in the same neighbourhood within the dedup window.
// An identifier collision suppresses a distinct message as if it were a
// duplicate — a loss, detected by nothing and recovered by nothing, which
// is exactly the paper's discipline. TTL scoping bounds how far a flood
// travels (the spatial-reuse lever the paper credits to SDR's multicast
// scopes).
package flood

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"time"

	"retri/internal/bitio"
	"retri/internal/core"
	"retri/internal/radio"
	"retri/internal/sim"
)

const ttlBits = 4

// MaxTTL is the widest hop scope the wire format carries.
const MaxTTL = 1<<ttlBits - 1

var (
	// ErrBadMessage is returned for undecodable flood frames.
	ErrBadMessage = errors.New("flood: malformed message")
	// ErrTooLarge is returned when a payload cannot fit one frame.
	ErrTooLarge = errors.New("flood: payload exceeds frame capacity")
	// ErrBadTTL is returned for out-of-range hop scopes.
	ErrBadTTL = errors.New("flood: ttl out of range")
)

// Message is one flood frame: an ephemeral identifier, a hop budget, and
// an opaque payload that must fit a single radio frame.
type Message struct {
	ID      uint64
	TTL     int
	Payload []byte
}

// Encode packs a message, returning bytes and meaningful bits.
func Encode(space core.Space, m Message) ([]byte, int, error) {
	if !space.Contains(m.ID) {
		return nil, 0, fmt.Errorf("%w: id %d", ErrBadMessage, m.ID)
	}
	if m.TTL < 0 || m.TTL > MaxTTL {
		return nil, 0, fmt.Errorf("%w: %d", ErrBadTTL, m.TTL)
	}
	w := bitio.NewWriter()
	if err := w.WriteBits(m.ID, space.Bits()); err != nil {
		return nil, 0, err
	}
	if err := w.WriteBits(uint64(m.TTL), ttlBits); err != nil {
		return nil, 0, err
	}
	w.Align()
	w.WriteBytes(m.Payload)
	return w.Bytes(), w.Len(), nil
}

// Decode unpacks a message.
func Decode(space core.Space, p []byte) (Message, error) {
	r := bitio.NewReader(p)
	id, err := r.ReadBits(space.Bits())
	if err != nil {
		return Message{}, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	ttl, err := r.ReadBits(ttlBits)
	if err != nil {
		return Message{}, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	r.Align()
	payload := make([]byte, r.Remaining()/8)
	if err := r.ReadBytes(payload); err != nil {
		return Message{}, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	return Message{ID: id, TTL: int(ttl), Payload: payload}, nil
}

// Config parameterizes a flood router.
type Config struct {
	// Space is the flood-identifier pool.
	Space core.Space
	// TTL is the default hop scope for originated messages.
	TTL int
	// DedupWindow is how long a seen identifier suppresses re-forwarding.
	// It bounds the transaction: after it lapses the identifier is free
	// for reuse (temporal locality).
	DedupWindow time.Duration
	// ForwardJitter bounds the random delay before a relay rebroadcasts,
	// desynchronizing neighbours that all heard the same frame.
	ForwardJitter time.Duration
}

func (c Config) withDefaults() Config {
	if c.TTL == 0 {
		c.TTL = 4
	}
	if c.DedupWindow == 0 {
		c.DedupWindow = 10 * time.Second
	}
	if c.ForwardJitter == 0 {
		c.ForwardJitter = 20 * time.Millisecond
	}
	return c
}

// Stats counts a router's activity.
type Stats struct {
	Originated int64
	Delivered  int64 // messages handed to the application (first copy)
	Forwarded  int64
	Suppressed int64 // duplicates (or collisions!) dropped
	Expired    int64 // ttl exhausted on arrival
	Malformed  int64
}

// Router floods messages over one radio with duplicate suppression.
type Router struct {
	cfg   Config
	eng   *sim.Engine
	r     *radio.Radio
	sel   core.Selector
	rng   *rand.Rand
	seen  map[uint64]time.Duration
	stats Stats

	handler func(payload []byte)
}

// NewRouter builds a flood router on r. The radio's handler is taken over.
func NewRouter(cfg Config, eng *sim.Engine, r *radio.Radio, sel core.Selector, rng *rand.Rand) (*Router, error) {
	if eng == nil || r == nil || sel == nil || rng == nil {
		return nil, errors.New("flood: nil dependency")
	}
	cfg = cfg.withDefaults()
	if cfg.TTL < 1 || cfg.TTL > MaxTTL {
		return nil, fmt.Errorf("%w: %d", ErrBadTTL, cfg.TTL)
	}
	if sel.Space() != cfg.Space {
		return nil, errors.New("flood: selector space mismatch")
	}
	rt := &Router{
		cfg:  cfg,
		eng:  eng,
		r:    r,
		sel:  sel,
		rng:  rng,
		seen: make(map[uint64]time.Duration),
	}
	r.SetHandler(rt.onFrame)
	return rt, nil
}

// OnMessage installs the application delivery callback.
func (rt *Router) OnMessage(fn func(payload []byte)) { rt.handler = fn }

// Stats returns a snapshot of the router's counters.
func (rt *Router) Stats() Stats { return rt.stats }

// Radio returns the underlying radio.
func (rt *Router) Radio() *radio.Radio { return rt.r }

// Originate floods a payload under a fresh ephemeral identifier with the
// configured hop scope.
func (rt *Router) Originate(payload []byte) error {
	id := rt.sel.Next()
	buf, bits, err := Encode(rt.cfg.Space, Message{ID: id, TTL: rt.cfg.TTL, Payload: payload})
	if err != nil {
		return err
	}
	if len(buf) > 27 {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(buf))
	}
	// The originator marks its own identifier seen so echoes from
	// neighbours are not re-forwarded (and not self-delivered).
	rt.mark(id)
	if err := rt.r.Send(buf, bits); err != nil {
		return err
	}
	rt.stats.Originated++
	return nil
}

// onFrame handles a received flood frame: deliver first copies, forward
// within scope, suppress the rest.
func (rt *Router) onFrame(f radio.Frame) {
	msg, err := Decode(rt.cfg.Space, f.Payload)
	if err != nil {
		rt.stats.Malformed++
		return
	}
	if rt.seenRecently(msg.ID) {
		rt.stats.Suppressed++
		return
	}
	rt.mark(msg.ID)
	rt.sel.Observe(msg.ID)
	rt.stats.Delivered++
	if rt.handler != nil {
		rt.handler(msg.Payload)
	}
	if msg.TTL <= 0 {
		rt.stats.Expired++
		return
	}
	// Relay after a short random delay so the neighbourhood does not
	// rebroadcast in lockstep.
	fwd := msg
	fwd.TTL--
	buf, bits, err := Encode(rt.cfg.Space, fwd)
	if err != nil {
		return
	}
	delay := time.Duration(rt.rng.Int64N(int64(rt.cfg.ForwardJitter)))
	rt.eng.Schedule(delay, func() {
		if rt.r.Send(buf, bits) == nil {
			rt.stats.Forwarded++
		}
	})
}

func (rt *Router) seenRecently(id uint64) bool {
	at, ok := rt.seen[id]
	if !ok {
		return false
	}
	if rt.eng.Now()-at > rt.cfg.DedupWindow {
		delete(rt.seen, id)
		return false
	}
	return true
}

func (rt *Router) mark(id uint64) {
	now := rt.eng.Now()
	// Opportunistic sweep keeps the table bounded by the window.
	for k, at := range rt.seen {
		if now-at > rt.cfg.DedupWindow {
			delete(rt.seen, k)
		}
	}
	rt.seen[id] = now
}
