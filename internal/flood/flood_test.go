package flood

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"retri/internal/core"
	"retri/internal/radio"
	"retri/internal/sim"
	"retri/internal/xrand"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	space := core.MustSpace(8)
	m := Message{ID: 200, TTL: 7, Payload: []byte("event: door opened")}
	buf, bits, err := Encode(space, m)
	if err != nil {
		t.Fatal(err)
	}
	if bits <= 0 {
		t.Error("no bits")
	}
	got, err := Decode(space, buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != m.ID || got.TTL != m.TTL || !bytes.Equal(got.Payload, m.Payload) {
		t.Errorf("round trip: %+v -> %+v", m, got)
	}
}

func TestEncodeValidation(t *testing.T) {
	space := core.MustSpace(4)
	if _, _, err := Encode(space, Message{ID: 16}); !errors.Is(err, ErrBadMessage) {
		t.Error("oversize id accepted")
	}
	if _, _, err := Encode(space, Message{ID: 1, TTL: MaxTTL + 1}); !errors.Is(err, ErrBadTTL) {
		t.Error("oversize ttl accepted")
	}
	if _, err := Decode(space, nil); !errors.Is(err, ErrBadMessage) {
		t.Error("empty decode accepted")
	}
}

// line builds n routers on a line where only adjacent nodes hear each
// other — delivery to the far end requires relaying.
func line(t *testing.T, n int, cfg Config, seed uint64) (*sim.Engine, []*Router) {
	t.Helper()
	eng := sim.NewEngine()
	src := xrand.NewSource(seed).Child("flood", t.Name())
	disk := radio.NewUnitDisk(6)
	med := radio.NewMedium(eng, disk, radio.DefaultParams(), src.Stream("m"))
	routers := make([]*Router, n)
	for i := 0; i < n; i++ {
		disk.Place(radio.NodeID(i), radio.Point{X: float64(i) * 5})
		r := med.MustAttach(radio.NodeID(i))
		sel := core.NewUniformSelector(cfg.Space, src.Stream("sel", fmt.Sprint(i)))
		rt, err := NewRouter(cfg, eng, r, sel, src.Stream("rng", fmt.Sprint(i)))
		if err != nil {
			t.Fatal(err)
		}
		routers[i] = rt
	}
	return eng, routers
}

func TestMultiHopDelivery(t *testing.T) {
	cfg := Config{Space: core.MustSpace(12), TTL: 6}
	eng, routers := line(t, 5, cfg, 1)
	var got []byte
	routers[4].OnMessage(func(p []byte) { got = append([]byte{}, p...) })

	msg := []byte("four hops away")
	if err := routers[0].Originate(msg); err != nil {
		t.Fatal(err)
	}
	eng.Run()

	if !bytes.Equal(got, msg) {
		t.Fatal("message did not cross the line")
	}
	// Every intermediate node forwarded exactly once.
	for i := 1; i <= 3; i++ {
		if f := routers[i].Stats().Forwarded; f != 1 {
			t.Errorf("router %d forwarded %d times, want 1", i, f)
		}
	}
	// The originator suppresses its own echo.
	if s := routers[0].Stats().Suppressed; s == 0 {
		t.Error("originator never suppressed its echo")
	}
	if d := routers[0].Stats().Delivered; d != 0 {
		t.Errorf("originator delivered its own message %d times", d)
	}
}

func TestTTLScopesTheFlood(t *testing.T) {
	// TTL 2 reaches node 0+1+2 hops; node 3 hears the TTL-0 copy... the
	// frame forwarded by node 2 carries TTL 0, so node 3 delivers but
	// does not forward; node 4 never hears anything.
	cfg := Config{Space: core.MustSpace(12), TTL: 2}
	eng, routers := line(t, 6, cfg, 2)
	reached := make([]bool, 6)
	for i, rt := range routers {
		i := i
		rt.OnMessage(func([]byte) { reached[i] = true })
	}
	if err := routers[0].Originate([]byte("scoped")); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	want := []bool{false, true, true, true, false, false}
	for i := range want {
		if reached[i] != want[i] {
			t.Errorf("node %d reached=%v, want %v (TTL scope)", i, reached[i], want[i])
		}
	}
	if routers[3].Stats().Expired != 1 {
		t.Errorf("node 3 Expired = %d, want 1", routers[3].Stats().Expired)
	}
}

func TestDuplicateSuppressionInDenseCell(t *testing.T) {
	// Full mesh of 5: everyone hears the original; each delivers once and
	// forwards once; all the echoes are suppressed.
	eng := sim.NewEngine()
	src := xrand.NewSource(3).Child("dense")
	med := radio.NewMedium(eng, radio.FullMesh{}, radio.DefaultParams(), src.Stream("m"))
	cfg := Config{Space: core.MustSpace(12), TTL: 3}
	routers := make([]*Router, 5)
	delivered := make([]int, 5)
	for i := range routers {
		r := med.MustAttach(radio.NodeID(i))
		sel := core.NewUniformSelector(cfg.Space, src.Stream("sel", fmt.Sprint(i)))
		rt, err := NewRouter(cfg, eng, r, sel, src.Stream("rng", fmt.Sprint(i)))
		if err != nil {
			t.Fatal(err)
		}
		i := i
		rt.OnMessage(func([]byte) { delivered[i]++ })
		routers[i] = rt
	}
	if err := routers[0].Originate([]byte("dense")); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	for i := 1; i < 5; i++ {
		if delivered[i] != 1 {
			t.Errorf("node %d delivered %d times, want exactly 1", i, delivered[i])
		}
	}
}

// TestIdentifierCollisionSuppressesDistinctMessage is the RETRI loss mode
// in this application: two messages sharing an identifier within the
// window — the second is mistaken for a duplicate and dies.
func TestIdentifierCollisionSuppressesDistinctMessage(t *testing.T) {
	eng := sim.NewEngine()
	src := xrand.NewSource(4).Child("coll")
	med := radio.NewMedium(eng, radio.FullMesh{}, radio.DefaultParams(), src.Stream("m"))
	cfg := Config{Space: core.MustSpace(4), TTL: 1}
	mk := func(id radio.NodeID, sel core.Selector) *Router {
		r := med.MustAttach(id)
		rt, err := NewRouter(cfg, eng, r, sel, src.Stream("rng", fmt.Sprint(id)))
		if err != nil {
			t.Fatal(err)
		}
		return rt
	}
	// Both senders pinned to identifier 3.
	a := mk(1, core.NewSequentialSelector(cfg.Space, 3))
	b := mk(2, core.NewSequentialSelector(cfg.Space, 3))
	sink := mk(0, core.NewSequentialSelector(cfg.Space, 0))
	got := 0
	sink.OnMessage(func([]byte) { got++ })

	if err := a.Originate([]byte("first")); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if err := b.Originate([]byte("second, same id")); err != nil {
		t.Fatal(err)
	}
	eng.Run()

	if got != 1 {
		t.Errorf("sink delivered %d messages, want 1 (collision suppression)", got)
	}
	if sink.Stats().Suppressed == 0 {
		t.Error("no suppression recorded")
	}
}

// TestWindowLapseAllowsReuse: the same identifier works again once the
// dedup window has passed — temporal locality.
func TestWindowLapseAllowsReuse(t *testing.T) {
	eng := sim.NewEngine()
	src := xrand.NewSource(5).Child("reuse")
	med := radio.NewMedium(eng, radio.FullMesh{}, radio.DefaultParams(), src.Stream("m"))
	cfg := Config{Space: core.MustSpace(4), TTL: 1, DedupWindow: time.Second}
	a, err := NewRouter(cfg, eng, med.MustAttach(1),
		core.NewSequentialSelector(cfg.Space, 9), src.Stream("ra"))
	if err != nil {
		t.Fatal(err)
	}
	sink, err := NewRouter(cfg, eng, med.MustAttach(0),
		core.NewSequentialSelector(cfg.Space, 0), src.Stream("rs"))
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	sink.OnMessage(func([]byte) { got++ })

	// Reset the sender's selector phase so both messages use id 9.
	if err := a.Originate([]byte("one")); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	eng.RunUntil(eng.Now() + 5*time.Second) // window lapses
	a2, err := NewRouter(cfg, eng, a.Radio(), core.NewSequentialSelector(cfg.Space, 9), src.Stream("ra2"))
	if err != nil {
		t.Fatal(err)
	}
	if err := a2.Originate([]byte("two")); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if got != 2 {
		t.Errorf("delivered %d, want 2 (temporal reuse after window)", got)
	}
}

func TestOriginateValidation(t *testing.T) {
	cfg := Config{Space: core.MustSpace(12), TTL: 3}
	_, routers := line(t, 2, cfg, 6)
	if err := routers[0].Originate(make([]byte, 100)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversize payload err = %v", err)
	}
}

func TestNewRouterValidation(t *testing.T) {
	eng := sim.NewEngine()
	src := xrand.NewSource(7).Child("val")
	med := radio.NewMedium(eng, radio.FullMesh{}, radio.DefaultParams(), src.Stream("m"))
	r := med.MustAttach(1)
	space := core.MustSpace(8)
	sel := core.NewUniformSelector(space, src.Stream("s"))
	if _, err := NewRouter(Config{Space: space}, nil, r, sel, src.Stream("r")); err == nil {
		t.Error("nil engine accepted")
	}
	wrong := core.NewUniformSelector(core.MustSpace(4), src.Stream("w"))
	if _, err := NewRouter(Config{Space: space}, eng, r, wrong, src.Stream("r")); err == nil {
		t.Error("space mismatch accepted")
	}
	if _, err := NewRouter(Config{Space: space, TTL: 99}, eng, r, sel, src.Stream("r")); !errors.Is(err, ErrBadTTL) {
		t.Error("bad ttl accepted")
	}
}

func TestMalformedFrameCounted(t *testing.T) {
	eng := sim.NewEngine()
	src := xrand.NewSource(8).Child("mal")
	med := radio.NewMedium(eng, radio.FullMesh{}, radio.DefaultParams(), src.Stream("m"))
	space := core.MustSpace(12)
	rt, err := NewRouter(Config{Space: space}, eng, med.MustAttach(0),
		core.NewUniformSelector(space, src.Stream("s")), src.Stream("r"))
	if err != nil {
		t.Fatal(err)
	}
	// A raw 1-byte frame cannot carry a 12-bit id + 4-bit ttl.
	other := med.MustAttach(1)
	if err := other.Send([]byte{0xFF}, 0); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if rt.Stats().Malformed != 1 {
		t.Errorf("Malformed = %d, want 1", rt.Stats().Malformed)
	}
}
