// Relay is the second flood application: where Router floods whole
// opaque messages under its own wire format, Relay extends an *existing*
// stack (AFF fragments, dynaddr frames) across multiple hops. Every
// outgoing frame is wrapped in a one-byte hop-scope envelope (4-bit TTL +
// 4 pad bits); every relay that hears a copy it has not seen before hands
// the inner frame up its own stack and rebroadcasts it with the TTL
// decremented, after a small desynchronizing jitter.
//
// Duplicate suppression is the RETRI discipline again: the dedup key is
// extracted from the inner frame by a pluggable Keyer. The AFF keyer uses
// the fragment's (width, id) composite reassembly key plus its position,
// so fragments of transactions at *different* widths never suppress each
// other even when their raw identifiers coincide — and an identifier
// collision within the dedup window suppresses a distinct transaction's
// fragments as if they were duplicates, a silent loss exactly as the
// paper prescribes.

package flood

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"time"

	"retri/internal/aff"
	"retri/internal/bitio"
	"retri/internal/frame"
	"retri/internal/radio"
	"retri/internal/sim"
)

// envelopeBits is the hop-scope header: 4 TTL bits padded to one byte, so
// the inner frame stays byte-aligned and observers can strip it cheaply.
const envelopeBits = 8

// introMark distinguishes an introduction from a data fragment in the
// AFF keyer's position slot; offsets are packet-sized and never reach it.
const introMark = uint64(1) << 63

// RelayKey is a dedup key extracted from an inner frame.
type RelayKey struct{ A, B uint64 }

// Keyer extracts the duplicate-suppression key for one inner frame.
// ok=false means the frame is unreadable under this keyer: it is still
// delivered up the local stack but never forwarded.
type Keyer func(inner []byte) (RelayKey, bool)

// AFFKeyer keys AFF fragments by their (width, id) composite reassembly
// key and position: the introduction under a sentinel mark, each data
// fragment under its byte offset. Distinct widths map to distinct
// composites (aff.WidthKey), so a relay carrying mixed-width traffic
// never suppresses across widths.
func AFFKeyer(cfg aff.Config) Keyer {
	codec := frame.AFFCodec{
		IDBits:      cfg.Space.Bits(),
		Instrument:  cfg.Instrument,
		InBandWidth: cfg.AdaptiveWidth,
	}
	key := func(decodedWidth int, id uint64) uint64 {
		if decodedWidth == 0 {
			return id
		}
		return aff.WidthKey(decodedWidth, id)
	}
	return func(inner []byte) (RelayKey, bool) {
		decoded, err := codec.Decode(inner)
		if err != nil {
			return RelayKey{}, false
		}
		switch fr := decoded.(type) {
		case *frame.Intro:
			return RelayKey{A: key(fr.IDBits, fr.ID), B: introMark}, true
		case *frame.Data:
			return RelayKey{A: key(fr.IDBits, fr.ID), B: uint64(fr.Offset)}, true
		}
		return RelayKey{}, false
	}
}

// DigestKeyer keys opaque inner frames by an FNV-1a digest of their
// bytes — for stacks whose wire format the relay has no business reading
// (the dynaddr baseline). Identical frames suppress; that is the point.
func DigestKeyer() Keyer {
	return func(inner []byte) (RelayKey, bool) {
		const offset64, prime64 = uint64(14695981039346656037), uint64(1099511628211)
		h := offset64
		for _, b := range inner {
			h ^= uint64(b)
			h *= prime64
		}
		return RelayKey{A: h, B: uint64(len(inner))}, true
	}
}

// RelayConfig parameterizes a Relay.
type RelayConfig struct {
	// TTL is the hop budget stamped on originated frames, in [1, MaxTTL].
	TTL int
	// DedupWindow bounds how long a seen key suppresses copies.
	DedupWindow time.Duration
	// ForwardJitter bounds the random delay before a rebroadcast.
	ForwardJitter time.Duration
	// MaxQueue is congestion control: a rebroadcast is dropped (not
	// queued) when the radio's transmit queue is at least this deep at
	// fire time, so flood amplification on a saturated channel cannot
	// grow queues without bound. Zero selects DefaultRelayMaxQueue;
	// negative disables the guard.
	MaxQueue int
	// Keyer extracts dedup keys from inner frames.
	Keyer Keyer
}

// DefaultRelayMaxQueue bounds the transmit queue a relay will add a
// forward to: deep enough to ride out a burst, shallow enough that
// forwarded traffic tracks the virtual clock instead of piling into an
// ever-longer backlog.
const DefaultRelayMaxQueue = 8

func (c RelayConfig) withDefaults() RelayConfig {
	if c.TTL == 0 {
		c.TTL = 3
	}
	if c.DedupWindow == 0 {
		c.DedupWindow = 10 * time.Second
	}
	if c.ForwardJitter == 0 {
		c.ForwardJitter = 20 * time.Millisecond
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = DefaultRelayMaxQueue
	}
	return c
}

// RelayStats counts one relay's activity.
type RelayStats struct {
	Originated    int64 // own frames wrapped for multi-hop origination
	Forwarded     int64 // copies rebroadcast with the TTL decremented
	ForwardedBits int64 // meaningful bits across forwarded copies
	Suppressed    int64 // duplicate copies (or key collisions!) dropped
	Expired       int64 // copies delivered locally with the hop budget spent
	Malformed     int64 // envelope undecodable
	Unkeyed       int64 // inner frame unreadable: delivered, never forwarded
	Congested     int64 // rebroadcasts dropped by the MaxQueue guard
}

// Merge folds another snapshot into this one.
func (s *RelayStats) Merge(o RelayStats) {
	s.Originated += o.Originated
	s.Forwarded += o.Forwarded
	s.ForwardedBits += o.ForwardedBits
	s.Suppressed += o.Suppressed
	s.Expired += o.Expired
	s.Malformed += o.Malformed
	s.Unkeyed += o.Unkeyed
	s.Congested += o.Congested
}

// Relay is one node's multi-hop forwarding service. It satisfies the
// relay hooks of both stacks (node.AFFOptions.Relay, dynaddr's Relay):
// the driver wraps outgoing frames through it and routes every received
// frame through UnwrapIncoming, which dedups, schedules the rebroadcast,
// and says whether the local stack should see the inner frame.
type Relay struct {
	cfg RelayConfig
	eng *sim.Engine
	r   *radio.Radio
	rng *rand.Rand

	seen  map[RelayKey]time.Duration
	gen   int // bumped by Reset so pre-crash forwards die with the RAM
	stats RelayStats
}

// NewRelay builds a relay on r. Unlike Router it does not take over the
// radio handler: the owning driver calls UnwrapIncoming from its own.
func NewRelay(cfg RelayConfig, eng *sim.Engine, r *radio.Radio, rng *rand.Rand) (*Relay, error) {
	if eng == nil || r == nil || rng == nil {
		return nil, errors.New("flood: relay nil dependency")
	}
	cfg = cfg.withDefaults()
	if cfg.TTL < 1 || cfg.TTL > MaxTTL {
		return nil, fmt.Errorf("%w: %d", ErrBadTTL, cfg.TTL)
	}
	if cfg.Keyer == nil {
		return nil, errors.New("flood: relay needs a Keyer")
	}
	return &Relay{
		cfg:  cfg,
		eng:  eng,
		r:    r,
		rng:  rng,
		seen: make(map[RelayKey]time.Duration),
	}, nil
}

// Stats returns a snapshot of the relay's counters.
func (rl *Relay) Stats() RelayStats { return rl.stats }

// Reset wipes the dedup table and orphans pending forwards — the crash
// semantics every other RAM-resident protocol state follows.
func (rl *Relay) Reset() {
	rl.seen = make(map[RelayKey]time.Duration)
	rl.gen++
}

// WrapOutgoing envelopes one of this node's own frames with the full hop
// budget, marking its key seen so echoes from neighbours are neither
// re-forwarded nor self-delivered. The envelope costs one byte; callers
// must leave it room within the radio MTU.
func (rl *Relay) WrapOutgoing(payload []byte, bits int) ([]byte, int) {
	if k, ok := rl.cfg.Keyer(payload); ok {
		rl.mark(k)
	}
	rl.stats.Originated++
	return wrapEnvelope(rl.cfg.TTL, payload, bits)
}

// UnwrapIncoming strips a received frame's envelope. First copies are
// delivered (deliver=true) and, while the hop budget lasts, rebroadcast
// with the TTL decremented after a desynchronizing jitter; duplicates
// and undecodable envelopes are swallowed.
func (rl *Relay) UnwrapIncoming(f radio.Frame) (inner []byte, deliver bool) {
	inner, ttl, ok := stripEnvelope(f.Payload)
	if !ok {
		rl.stats.Malformed++
		return nil, false
	}
	k, keyed := rl.cfg.Keyer(inner)
	if !keyed {
		// Unreadable inner frame: the local stack's own robustness layers
		// get to judge it, but garbage is never amplified across hops.
		rl.stats.Unkeyed++
		return inner, true
	}
	if rl.seenRecently(k) {
		rl.stats.Suppressed++
		return nil, false
	}
	rl.mark(k)
	if ttl <= 0 {
		rl.stats.Expired++
		return inner, true
	}
	ib := f.Bits - envelopeBits
	if ib < 0 {
		ib = len(inner) * 8
	}
	fwd, bits := wrapEnvelope(ttl-1, inner, ib)
	delay := time.Duration(rl.rng.Int64N(int64(rl.cfg.ForwardJitter)))
	gen := rl.gen
	rl.eng.Schedule(delay, func() {
		if rl.gen != gen {
			return // the node crashed in between: the copy died with its RAM
		}
		if rl.cfg.MaxQueue > 0 && rl.r.QueueLen() >= rl.cfg.MaxQueue {
			rl.stats.Congested++
			return
		}
		if rl.r.Send(fwd, bits) == nil {
			rl.stats.Forwarded++
			rl.stats.ForwardedBits += int64(bits)
		}
	})
	return inner, true
}

func (rl *Relay) seenRecently(k RelayKey) bool {
	at, ok := rl.seen[k]
	if !ok {
		return false
	}
	if rl.eng.Now()-at > rl.cfg.DedupWindow {
		delete(rl.seen, k)
		return false
	}
	return true
}

func (rl *Relay) mark(k RelayKey) {
	now := rl.eng.Now()
	for old, at := range rl.seen {
		if now-at > rl.cfg.DedupWindow {
			delete(rl.seen, old)
		}
	}
	rl.seen[k] = now
}

// wrapEnvelope prefixes the one-byte hop-scope header.
func wrapEnvelope(ttl int, inner []byte, innerBits int) ([]byte, int) {
	w := bitio.NewWriter()
	_ = w.WriteBits(uint64(ttl), ttlBits)
	w.Align()
	w.WriteBytes(inner)
	return w.Bytes(), envelopeBits + innerBits
}

// StripEnvelope removes the relay envelope without dedup or forwarding —
// the hook passive observers (oracle, span tracer) use to read the inner
// AFF frame. The returned slice aliases p.
func StripEnvelope(p []byte) ([]byte, bool) {
	inner, _, ok := stripEnvelope(p)
	return inner, ok
}

func stripEnvelope(p []byte) ([]byte, int, bool) {
	if len(p) < 1 {
		return nil, 0, false
	}
	r := bitio.NewReader(p)
	ttl, err := r.ReadBits(ttlBits)
	if err != nil {
		return nil, 0, false
	}
	// The header is exactly one byte, so the inner frame is the rest.
	return p[1:], int(ttl), true
}
