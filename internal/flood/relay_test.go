package flood

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"retri/internal/aff"
	"retri/internal/core"
	"retri/internal/frame"
	"retri/internal/node"
	"retri/internal/radio"
	"retri/internal/sim"
	"retri/internal/xrand"
)

// relayRig is one node's relay plus the plumbing to receive through it:
// the radio handler routes every frame through UnwrapIncoming and stashes
// delivered inner frames.
type relayRig struct {
	relay     *Relay
	radio     *radio.Radio
	delivered [][]byte
}

// relayLine builds n relays on a line where only adjacent nodes hear each
// other, all using the digest keyer over opaque payloads.
func relayLine(t *testing.T, n int, cfg RelayConfig, seed uint64) (*sim.Engine, []*relayRig) {
	t.Helper()
	eng := sim.NewEngine()
	src := xrand.NewSource(seed).Child("relay", t.Name())
	disk := radio.NewUnitDisk(6)
	med := radio.NewMedium(eng, disk, radio.DefaultParams(), src.Stream("m"))
	rigs := make([]*relayRig, n)
	for i := 0; i < n; i++ {
		disk.Place(radio.NodeID(i), radio.Point{X: float64(i) * 5})
		r := med.MustAttach(radio.NodeID(i))
		rl, err := NewRelay(cfg, eng, r, src.Stream("rng", fmt.Sprint(i)))
		if err != nil {
			t.Fatal(err)
		}
		rig := &relayRig{relay: rl, radio: r}
		r.SetHandler(func(f radio.Frame) {
			if inner, ok := rl.UnwrapIncoming(f); ok {
				rig.delivered = append(rig.delivered, append([]byte(nil), inner...))
			}
		})
		rigs[i] = rig
	}
	return eng, rigs
}

func (rig *relayRig) originate(t *testing.T, payload []byte) {
	t.Helper()
	fwd, bits := rig.relay.WrapOutgoing(payload, len(payload)*8)
	if err := rig.radio.Send(fwd, bits); err != nil {
		t.Fatal(err)
	}
}

func TestRelayEnvelopeRoundTrip(t *testing.T) {
	eng, rigs := relayLine(t, 1, RelayConfig{TTL: 5, Keyer: DigestKeyer()}, 1)
	_ = eng
	payload := []byte("inner frame bytes")
	fwd, bits := rigs[0].relay.WrapOutgoing(payload, len(payload)*8)
	if bits != envelopeBits+len(payload)*8 {
		t.Errorf("wrapped bits = %d, want %d", bits, envelopeBits+len(payload)*8)
	}
	inner, ok := StripEnvelope(fwd)
	if !ok || !bytes.Equal(inner, payload) {
		t.Fatalf("StripEnvelope = %q, %v; want original payload", inner, ok)
	}
	if _, ok := StripEnvelope(nil); ok {
		t.Error("StripEnvelope accepted an empty frame")
	}
}

func TestRelayHopScope(t *testing.T) {
	// TTL 2: the origin's copy carries 2, one hop later 1, two hops later
	// 0; the node that receives the TTL-0 copy delivers but never
	// forwards, so audibility is TTL+1 hops.
	eng, rigs := relayLine(t, 6, RelayConfig{TTL: 2, Keyer: DigestKeyer()}, 2)
	rigs[0].originate(t, []byte("scoped"))
	eng.Run()
	for i, wantDelivered := range []int{0, 1, 1, 1, 0, 0} {
		if got := len(rigs[i].delivered); got != wantDelivered {
			t.Errorf("node %d delivered %d, want %d", i, got, wantDelivered)
		}
	}
	if exp := rigs[3].relay.Stats().Expired; exp != 1 {
		t.Errorf("node 3 Expired = %d, want 1", exp)
	}
	if fwd := rigs[3].relay.Stats().Forwarded; fwd != 0 {
		t.Errorf("node 3 forwarded an expired copy %d times", fwd)
	}
}

func TestRelayDuplicateSuppression(t *testing.T) {
	// 0 and 2 both hear 1; 1's rebroadcast echoes back to 0, which marked
	// its own key at origination and must swallow the echo.
	eng, rigs := relayLine(t, 3, RelayConfig{TTL: 3, Keyer: DigestKeyer()}, 3)
	rigs[0].originate(t, []byte("once"))
	eng.Run()
	if got := len(rigs[0].delivered); got != 0 {
		t.Errorf("originator delivered its own echo %d times", got)
	}
	if s := rigs[0].relay.Stats().Suppressed; s == 0 {
		t.Error("originator never suppressed the echo")
	}
	if got := len(rigs[2].delivered); got != 1 {
		t.Errorf("node 2 delivered %d copies, want exactly 1", got)
	}
}

func TestRelayResetOrphansPendingForwards(t *testing.T) {
	eng, rigs := relayLine(t, 3, RelayConfig{TTL: 3, ForwardJitter: 50 * time.Millisecond, Keyer: DigestKeyer()}, 4)
	rigs[0].originate(t, []byte("doomed"))
	// Let node 1 receive and schedule its forward, then crash it before
	// the jitter elapses: the pending copy died with its RAM.
	eng.Schedule(20*time.Millisecond, func() { rigs[1].relay.Reset() })
	eng.Run()
	if fwd := rigs[1].relay.Stats().Forwarded; fwd != 0 {
		t.Errorf("reset relay still forwarded %d copies", fwd)
	}
	if got := len(rigs[2].delivered); got != 0 {
		t.Errorf("node 2 heard %d copies through a crashed relay", got)
	}
}

func TestRelayCongestionGuard(t *testing.T) {
	// MaxQueue 1 with a jammed transmit queue: the scheduled forward must
	// be dropped at fire time, not queued behind the backlog.
	eng, rigs := relayLine(t, 2, RelayConfig{TTL: 3, MaxQueue: 1, Keyer: DigestKeyer()}, 5)
	// Jam node 1's radio with unrelated traffic so its queue is deep when
	// the forward fires. The junk carries a spent hop budget so node 0
	// never re-floods it back.
	junk := append([]byte{0x00}, bytes.Repeat([]byte{0xEE}, 19)...)
	for i := 0; i < 6; i++ {
		if err := rigs[1].radio.Send(junk, len(junk)*8); err != nil {
			t.Fatal(err)
		}
	}
	rigs[0].originate(t, []byte("storm"))
	eng.Run()
	st := rigs[1].relay.Stats()
	if st.Congested == 0 {
		t.Fatalf("congestion guard never fired: %+v", st)
	}
	if st.Forwarded != 0 {
		t.Errorf("jammed relay still forwarded %d copies", st.Forwarded)
	}
	// The inner frame was still delivered locally: congestion sheds
	// forwarding load, never reception.
	if got := len(rigs[1].delivered); got != 1 {
		t.Errorf("congested relay delivered %d, want 1", got)
	}
}

func TestRelayUnlimitedQueueDisablesGuard(t *testing.T) {
	eng, rigs := relayLine(t, 2, RelayConfig{TTL: 3, MaxQueue: -1, Keyer: DigestKeyer()}, 6)
	junk := append([]byte{0x00}, bytes.Repeat([]byte{0xEE}, 19)...)
	for i := 0; i < 6; i++ {
		if err := rigs[1].radio.Send(junk, len(junk)*8); err != nil {
			t.Fatal(err)
		}
	}
	rigs[0].originate(t, []byte("patient"))
	eng.Run()
	st := rigs[1].relay.Stats()
	if st.Congested != 0 || st.Forwarded != 1 {
		t.Errorf("negative MaxQueue should disable the guard: %+v", st)
	}
}

func TestRelayValidation(t *testing.T) {
	eng := sim.NewEngine()
	src := xrand.NewSource(9).Child("val")
	disk := radio.NewUnitDisk(6)
	med := radio.NewMedium(eng, disk, radio.DefaultParams(), src.Stream("m"))
	r := med.MustAttach(0)
	if _, err := NewRelay(RelayConfig{Keyer: DigestKeyer()}, nil, r, src.Stream("r")); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := NewRelay(RelayConfig{}, eng, r, src.Stream("r")); err == nil {
		t.Error("nil keyer accepted")
	}
	if _, err := NewRelay(RelayConfig{TTL: MaxTTL + 1, Keyer: DigestKeyer()}, eng, r, src.Stream("r")); err == nil {
		t.Error("oversize ttl accepted")
	}
}

// TestAFFKeyerMixedWidthKeys is the composite-key property at the unit
// level: the same raw identifier at different in-band widths must map to
// distinct dedup keys, while repeats of the same (width, id, position)
// must collide exactly.
func TestAFFKeyerMixedWidthKeys(t *testing.T) {
	affCfg := aff.Config{Space: core.MustSpace(16), MTU: 27, AdaptiveWidth: true}
	keyer := AFFKeyer(affCfg)
	codec := frame.AFFCodec{IDBits: 16, InBandWidth: true}
	intro := func(width int, id uint64) RelayKey {
		c := codec
		c.IDBits = width
		buf, _, err := c.EncodeIntro(frame.Intro{ID: id, TotalLen: 48, Checksum: 7})
		if err != nil {
			t.Fatal(err)
		}
		k, ok := keyer(buf)
		if !ok {
			t.Fatalf("intro at width %d unkeyed", width)
		}
		return k
	}
	data := func(width int, id uint64, off int) RelayKey {
		c := codec
		c.IDBits = width
		buf, _, err := c.EncodeData(frame.Data{ID: id, Offset: off, Payload: []byte{1, 2, 3}})
		if err != nil {
			t.Fatal(err)
		}
		k, ok := keyer(buf)
		if !ok {
			t.Fatalf("data at width %d unkeyed", width)
		}
		return k
	}

	cases := []struct {
		name     string
		a, b     RelayKey
		wantSame bool
	}{
		{"same id across widths 4/8", intro(4, 5), intro(8, 5), false},
		{"same id across widths 8/12", intro(8, 5), intro(12, 5), false},
		{"same width and id", intro(8, 5), intro(8, 5), true},
		{"intro vs first data fragment", intro(8, 5), data(8, 5, 0), false},
		{"data offsets disambiguate", data(8, 5, 0), data(8, 5, 24), false},
		{"same data fragment repeats", data(12, 9, 24), data(12, 9, 24), true},
		{"cross-width data", data(4, 5, 24), data(12, 5, 24), false},
	}
	for _, tc := range cases {
		if got := tc.a == tc.b; got != tc.wantSame {
			t.Errorf("%s: keys equal=%v, want %v (a=%+v b=%+v)", tc.name, got, tc.wantSame, tc.a, tc.b)
		}
	}

	if _, ok := keyer([]byte{0xFF, 0xFF, 0xFF}); ok {
		t.Error("undecodable inner frame keyed")
	}
}

// pinSelector always draws the same identifier — the adversarial choice
// for collision tests.
type pinSelector struct {
	space core.Space
	id    uint64
}

func (s pinSelector) Next() uint64              { return s.id }
func (s pinSelector) NextWidth(bits int) uint64 { return s.id }
func (s pinSelector) Observe(uint64)            {}
func (s pinSelector) ObserveWidth(int, uint64)  {}
func (s pinSelector) Space() core.Space         { return s.space }
func (s pinSelector) Name() string              { return "pin" }

// mixedWidthRig wires a full AFF stack (fragmenter, reassembler, relay)
// on one radio for the end-to-end mixed-width tests.
func mixedWidthRig(t *testing.T, eng *sim.Engine, med *radio.Medium, id radio.NodeID,
	affCfg aff.Config, rcfg RelayConfig, width int, pinID uint64, src *xrand.Source) (*node.AFFDriver, *Relay, *[][]byte) {
	t.Helper()
	r := med.MustAttach(id)
	rcfg.Keyer = AFFKeyer(affCfg)
	rl, err := NewRelay(rcfg, eng, r, src.Stream("relay", fmt.Sprint(id)))
	if err != nil {
		t.Fatal(err)
	}
	opts := node.AFFOptions{Engine: eng, Relay: rl}
	if width > 0 {
		opts.Width = widthPin(width)
	}
	d, err := node.NewAFF(r, affCfg, pinSelector{space: affCfg.Space, id: pinID}, opts)
	if err != nil {
		t.Fatal(err)
	}
	var got [][]byte
	d.SetPacketHandler(func(p []byte) { got = append(got, append([]byte(nil), p...)) })
	return d, rl, &got
}

type widthPin int

func (w widthPin) Bits() int { return int(w) }

// TestMixedWidthRelayNeverMisdelivers is the end-to-end composite-key
// property: two senders pin the SAME raw identifier at different widths
// and reach the receiver only through a relay. The (width, id) composite
// must keep their fragments apart — both packets arrive intact — while
// the same (width, id) is deduped as a copy, the paper's silent loss.
// Several send rounds spaced past the dedup window ride out one-shot
// CSMA backoff collisions without weakening either property: within
// every round B transmits inside the window A's keys opened.
func TestMixedWidthRelayNeverMisdelivers(t *testing.T) {
	for _, tc := range []struct {
		name           string
		widthA, widthB int
		wantB          bool // does B's packet survive?
	}{
		{"widths 4 and 12 never suppress", 4, 12, true},
		{"widths 6 and 10 never suppress", 6, 10, true},
		// Same width and id is the paper's silent loss: the relay dedups
		// B's fragments as copies of A's.
		{"same width collides", 8, 8, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			eng := sim.NewEngine()
			src := xrand.NewSource(11).Child("mixed", tc.name)
			disk := radio.NewUnitDisk(6)
			med := radio.NewMedium(eng, disk, radio.DefaultParams(), src.Stream("m"))
			affCfg := aff.Config{Space: core.MustSpace(16), MTU: radio.DefaultParams().MTU, AdaptiveWidth: true}
			rcfg := RelayConfig{TTL: 3, DedupWindow: time.Second}

			// Senders 1 and 2 sit together, the receiver is two hops out:
			// only the relay at node 3 connects them.
			disk.Place(1, radio.Point{X: 0})
			disk.Place(2, radio.Point{X: 0, Y: 1})
			disk.Place(3, radio.Point{X: 5})
			disk.Place(4, radio.Point{X: 10})
			const pinned = 5
			a, _, _ := mixedWidthRig(t, eng, med, 1, affCfg, rcfg, tc.widthA, pinned, src)
			b, _, _ := mixedWidthRig(t, eng, med, 2, affCfg, rcfg, tc.widthB, pinned, src)
			_, relay3, _ := mixedWidthRig(t, eng, med, 3, affCfg, rcfg, 0, pinned, src)
			_, _, got := mixedWidthRig(t, eng, med, 4, affCfg, rcfg, 0, pinned, src)

			pa := bytes.Repeat([]byte{0xAA}, 48)
			pb := bytes.Repeat([]byte{0xBB}, 48)
			for round := 0; round < 5; round++ {
				at := time.Duration(round) * 2 * time.Second
				eng.ScheduleAt(at, func() {
					if err := a.SendPacket(pa); err != nil {
						t.Error(err)
					}
				})
				// B sends while A's fragments are fresh in every dedup
				// table, so same-key suppression would bite.
				eng.ScheduleAt(at+50*time.Millisecond, func() {
					if err := b.SendPacket(pb); err != nil {
						t.Error(err)
					}
				})
			}
			eng.Run()

			var gotA, gotB bool
			for _, p := range *got {
				switch {
				case bytes.Equal(p, pa):
					gotA = true
				case bytes.Equal(p, pb):
					gotB = true
				default:
					t.Errorf("receiver delivered a packet nobody sent: %x", p[:8])
				}
			}
			if !gotA {
				t.Error("receiver missed sender A's packet")
			}
			if gotB != tc.wantB {
				t.Errorf("receiver got B's packet = %v, want %v", gotB, tc.wantB)
			}
			if relay3.Stats().Forwarded == 0 {
				t.Error("relay never forwarded")
			}
			if !tc.wantB && relay3.Stats().Suppressed == 0 {
				t.Error("same-key fragments were never suppressed")
			}
		})
	}
}

// FuzzRelayEnvelope throws arbitrary bytes at the receive path: the relay
// must never panic, and whatever StripEnvelope accepts must round-trip
// through the wrap side.
func FuzzRelayEnvelope(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x30})
	f.Add([]byte{0x30, 0xDE, 0xAD, 0xBE, 0xEF})
	f.Add(bytes.Repeat([]byte{0xFF}, 30))
	f.Fuzz(func(t *testing.T, payload []byte) {
		eng := sim.NewEngine()
		src := xrand.NewSource(7).Child("fuzz")
		disk := radio.NewUnitDisk(6)
		med := radio.NewMedium(eng, disk, radio.DefaultParams(), src.Stream("m"))
		r := med.MustAttach(0)
		rl, err := NewRelay(RelayConfig{TTL: 3, Keyer: DigestKeyer()}, eng, r, src.Stream("r"))
		if err != nil {
			t.Fatal(err)
		}
		inner, deliver := rl.UnwrapIncoming(radio.Frame{Payload: payload, Bits: len(payload) * 8})
		stripped, ok := StripEnvelope(payload)
		if deliver != ok {
			t.Fatalf("UnwrapIncoming deliver=%v but StripEnvelope ok=%v", deliver, ok)
		}
		if deliver && !bytes.Equal(inner, stripped) {
			t.Fatalf("inner %x != stripped %x", inner, stripped)
		}
		if ok {
			// Re-wrap what we stripped: the inner bytes must survive.
			wrapped, _ := rl.WrapOutgoing(stripped, len(stripped)*8)
			again, ok2 := StripEnvelope(wrapped)
			if !ok2 || !bytes.Equal(again, stripped) {
				t.Fatalf("re-wrap round trip failed: %x -> %x", stripped, again)
			}
		}
		eng.Run()
	})
}
