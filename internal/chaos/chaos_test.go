package chaos

import (
	"testing"
	"time"

	"retri/internal/faults"
	"retri/internal/mobility"
	"retri/internal/radio"
	"retri/internal/sim"
	"retri/internal/xrand"
)

func TestNamedProfilesValidate(t *testing.T) {
	for _, p := range Profiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	if Calm().Faulty() {
		t.Error("calm declares faults; it is the control")
	}
	if !Storm().Faulty() || !Cascade().Faulty() {
		t.Error("storm/cascade declare no faults")
	}
}

func TestProfileForAndParse(t *testing.T) {
	if _, err := ProfileFor("monsoon"); err == nil {
		t.Error("unknown profile accepted")
	}
	got, err := ParseProfiles("storm, calm")
	if err != nil || len(got) != 2 || got[0].Name != "storm" || got[1].Name != "calm" {
		t.Errorf("ParseProfiles = %v, %v", got, err)
	}
	if _, err := ParseProfiles(","); err == nil {
		t.Error("empty list accepted")
	}
	all, err := ParseProfiles("all")
	if err != nil || len(all) != 3 {
		t.Errorf("ParseProfiles(all) = %d profiles, %v", len(all), err)
	}
}

func TestProfileValidationRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Profile)
	}{
		{"nameless", func(p *Profile) { p.Name = "" }},
		{"waypoint speeds", func(p *Profile) { p.Waypoint = true; p.MinSpeed = 0 }},
		{"onset at one", func(p *Profile) { p.Onset = 1 }},
		{"corrupt prob", func(p *Profile) { p.CorruptProb = 1 }},
		{"cascade without stagger", func(p *Profile) { p.CascadeFraction = 0.5; p.CascadeDowntime = 0 }},
		{"cascade fraction", func(p *Profile) { p.CascadeFraction = 1.5; p.CascadeDowntime = time.Second }},
	}
	for _, tc := range cases {
		p := Calm()
		tc.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, p)
		}
	}
}

// fakeControl counts crash/restart calls for one registered node.
type fakeControl struct{ crashes, restarts int }

func (f *fakeControl) Crash()   { f.crashes++ }
func (f *fakeControl) Restart() { f.restarts++ }

func TestChannelGatesAtOnset(t *testing.T) {
	eng := sim.NewEngine()
	p := Cascade() // GE + corruption, onset 0.25
	params := radio.DefaultParams()
	horizon := 40 * time.Second
	ch := p.InstallChannel(&params, horizon, eng.Now, xrand.NewSource(7).Child("t"))
	if params.Loss == nil || params.Corrupt == nil {
		t.Fatal("channel models not installed")
	}

	onset := p.OnsetTime(horizon)
	if onset != 10*time.Second {
		t.Fatalf("onset = %v, want 10s", onset)
	}
	// Before onset nothing drops and nothing flips, no matter how often
	// the channel is consulted.
	for i := 0; i < 1000; i++ {
		if params.Loss.Drop(1, 2, onset-time.Millisecond) {
			t.Fatal("pre-onset drop")
		}
		if _, damaged := params.Corrupt.Corrupt([]byte{0xAA, 0x55}); damaged {
			t.Fatal("pre-onset corruption")
		}
	}
	if ch.Drops() != 0 || ch.Flips() != 0 {
		t.Fatalf("pre-onset counters %d/%d, want 0/0", ch.Drops(), ch.Flips())
	}
	// After onset the burst channel and flipper act with their usual
	// rates; with DefaultGEParams and 2% flips, 10k consultations cannot
	// all pass.
	var drops, flips int
	for i := 0; i < 10000; i++ {
		if params.Loss.Drop(1, 2, onset+time.Duration(i)*time.Millisecond) {
			drops++
		}
	}
	eng.ScheduleAt(onset, func() {
		for i := 0; i < 10000; i++ {
			if _, damaged := params.Corrupt.Corrupt([]byte{0xAA, 0x55}); damaged {
				flips++
			}
		}
	})
	eng.Run()
	if drops == 0 || flips == 0 {
		t.Errorf("post-onset drops/flips = %d/%d, want both positive", drops, flips)
	}
	if ch.Drops() != int64(drops) || ch.Flips() != int64(flips) {
		t.Errorf("Channel counters %d/%d disagree with observed %d/%d", ch.Drops(), ch.Flips(), drops, flips)
	}
}

func TestApplySchedulesFaultsAtOnset(t *testing.T) {
	eng := sim.NewEngine()
	horizon := 40 * time.Second
	disk := radio.NewUnitDisk(20)
	inj := faults.NewInjector(eng, horizon)
	flaky := faults.NewFlakyTopology(disk)
	inj.SetFlaky(flaky)
	churner := mobility.NewChurner(eng, horizon)
	churner.SetDisk(disk)

	senders := []radio.NodeID{1, 2, 3, 4}
	ctls := make(map[radio.NodeID]*fakeControl)
	sinkCtl := &fakeControl{}
	inj.Register(0, sinkCtl)
	for _, id := range senders {
		c := &fakeControl{}
		ctls[id] = c
		inj.Register(id, c)
		churner.Register(id, c)
		disk.Place(id, radio.Point{X: float64(id), Y: float64(id)})
	}

	p := Cascade()
	onset, err := p.Apply(Deps{
		Engine: eng, Disk: disk, Injector: inj, Churner: churner,
		Area: mobility.Area{W: 60, H: 60}, Horizon: horizon,
		Sink: 0, Senders: senders, Src: xrand.NewSource(11).Child("t"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if onset != 10*time.Second {
		t.Fatalf("onset = %v, want 10s", onset)
	}

	// Nothing faulty may happen before onset.
	preChecked := false
	eng.ScheduleAt(onset-time.Millisecond, func() {
		preChecked = true
		c := inj.Counters()
		if c.Crashes != 0 || c.LinkDowns != 0 {
			t.Errorf("pre-onset fault counters %+v, want zero crashes and link downs", c)
		}
	})
	eng.Run()
	if !preChecked {
		t.Fatal("pre-onset probe never ran")
	}

	// The cascade fells ceil(0.5 × 4) = 2 lowest-id senders at onset and
	// every cascade victim is eventually restarted.
	for _, id := range []radio.NodeID{1, 2} {
		if ctls[id].crashes == 0 {
			t.Errorf("cascade victim %d never crashed", id)
		}
		if ctls[id].restarts != ctls[id].crashes {
			t.Errorf("node %d: %d crashes but %d restarts", id, ctls[id].crashes, ctls[id].restarts)
		}
	}
	c := inj.Counters()
	if c.Crashes < 2 {
		t.Errorf("Crashes = %d, want at least the cascade's 2", c.Crashes)
	}
	if c.Crashes != c.Restarts {
		t.Errorf("Crashes/Restarts = %d/%d, want every crash restarted", c.Crashes, c.Restarts)
	}
}

func TestApplyDeterministic(t *testing.T) {
	run := func() (faults.Counters, mobility.ChurnCounters) {
		eng := sim.NewEngine()
		horizon := 30 * time.Second
		disk := radio.NewUnitDisk(20)
		inj := faults.NewInjector(eng, horizon)
		flaky := faults.NewFlakyTopology(disk)
		inj.SetFlaky(flaky)
		churner := mobility.NewChurner(eng, horizon)
		churner.SetDisk(disk)
		senders := []radio.NodeID{1, 2, 3}
		inj.Register(0, &fakeControl{})
		for _, id := range senders {
			c := &fakeControl{}
			inj.Register(id, c)
			churner.Register(id, c)
			disk.Place(id, radio.Point{X: float64(id), Y: 1})
		}
		if _, err := Cascade().Apply(Deps{
			Engine: eng, Disk: disk, Injector: inj, Churner: churner,
			Area: mobility.Area{W: 50, H: 50}, Horizon: horizon,
			Sink: 0, Senders: senders, Src: xrand.NewSource(42).Child("d"),
		}); err != nil {
			t.Fatal(err)
		}
		eng.Run()
		return inj.Counters(), churner.Counters()
	}
	f1, c1 := run()
	f2, c2 := run()
	if f1 != f2 || c1 != c2 {
		t.Errorf("replays diverge: %+v/%+v vs %+v/%+v", f1, c1, f2, c2)
	}
	if f1.Crashes == 0 {
		t.Error("cascade replay crashed nothing")
	}
}

func TestApplyRejectsMissingDeps(t *testing.T) {
	eng := sim.NewEngine()
	src := xrand.NewSource(1).Child("x")
	base := Deps{Engine: eng, Horizon: time.Second, Src: src}
	if _, err := Storm().Apply(base); err == nil {
		t.Error("storm accepted without disk/injector/churner")
	}
	if _, err := Calm().Apply(base); err == nil {
		t.Error("calm (waypoint) accepted without a disk")
	}
	if _, err := Calm().Apply(Deps{Disk: radio.NewUnitDisk(1), Horizon: time.Second, Src: src}); err == nil {
		t.Error("nil engine accepted")
	}
}
