// Package chaos composes the repo's fault and mobility machinery into
// named compound-fault profiles: deterministic, seeded schedules that
// layer crash/restart plans, link flaps, Gilbert–Elliott burst loss and
// bit corruption from internal/faults on top of waypoint mobility and
// duty-cycle churn from internal/mobility. A profile is the unit the
// chaos experiment sweeps — calm, storm and cascade are three validated
// intensity levels — and everything an applied profile does is drawn
// from labelled xrand streams, so a trial replays bit for bit from its
// seed at any parallelism.
//
// A profile splits across the trial's construction order. Channel damage
// (burst loss, corruption) must exist before radio.NewMedium is built, so
// InstallChannel runs first and patches radio.Params; both models are
// gated on the fault onset instant so the pre-onset channel is clean.
// Everything else — mobility from t=0, scheduled fault plans and the
// cascade mass-crash from onset — is wired by Apply once the nodes exist.
package chaos

import (
	"fmt"
	"strings"
	"time"

	"retri/internal/faults"
	"retri/internal/mobility"
	"retri/internal/radio"
	"retri/internal/sim"
	"retri/internal/xrand"
)

// Profile is one named compound-fault intensity level: which mobility,
// channel-damage and crash processes run together, and when the faults
// switch on. Mobility fields act from t=0 (the network is dynamic before
// it is faulty); every fault field acts from the onset instant, so
// time-to-recover is measured against a well-defined cliff edge.
type Profile struct {
	// Name labels the profile in sweeps, tables and CSV output.
	Name string

	// Waypoint moves every sender with the random-waypoint model.
	Waypoint bool
	// MinSpeed, MaxSpeed and Pause parameterize Waypoint.
	MinSpeed, MaxSpeed float64
	Pause              time.Duration

	// Duty, when non-nil, duty-cycles every sender: returning nodes wake
	// with wiped RAM state mid-chaos.
	Duty *mobility.DutyCycle

	// GE, when non-nil, runs a Gilbert–Elliott burst-loss channel on
	// every link from onset onward.
	GE *faults.GEParams
	// CorruptProb, when positive, flips payload bits in delivered frames
	// from onset onward; the checksum layer must catch the damage.
	CorruptProb float64

	// Crash, when non-nil, crashes and restarts every node (sink
	// included) stochastically from onset onward.
	Crash *faults.CrashPlan
	// Flap, when non-nil, flaps every sender—sink edge from onset onward.
	Flap *faults.FlapPlan

	// Onset is the fraction of the horizon at which the faults begin,
	// in [0, 1). The pre-onset window establishes the healthy baseline
	// the recovery metrics are measured against.
	Onset float64

	// CascadeFraction, when positive, crashes the ceil(fraction × N)
	// lowest-id senders simultaneously at onset — correlated mass
	// failure, the one shape stochastic per-node plans never produce —
	// with restarts staggered CascadeDowntime apart so the survivors
	// absorb a wave of cold rejoins, not one thundering herd.
	CascadeFraction float64
	// CascadeDowntime spaces the staggered cascade restarts. Required
	// positive when CascadeFraction is set.
	CascadeDowntime time.Duration
}

// Calm is the control profile: light waypoint drift, no faults. It pins
// the degradation machinery's zero-cost path — every graceful-degradation
// counter must read zero here.
func Calm() Profile {
	return Profile{
		Name:     "calm",
		Waypoint: true,
		MinSpeed: 0.5,
		MaxSpeed: 1.5,
		Pause:    4 * time.Second,
		Onset:    0.25,
	}
}

// Storm layers burst loss, link flaps and duty-cycle churn over faster
// mobility: the sustained-degradation regime where loss-aware backoff
// and the reassembly cap earn their keep.
func Storm() Profile {
	ge := faults.DefaultGEParams()
	return Profile{
		Name:     "storm",
		Waypoint: true,
		MinSpeed: 1,
		MaxSpeed: 3,
		Pause:    2 * time.Second,
		Duty:     &mobility.DutyCycle{MeanUp: 20 * time.Second, MeanDown: 4 * time.Second},
		GE:       &ge,
		Flap:     &faults.FlapPlan{MeanUp: 8 * time.Second, MeanDown: time.Second},
		Onset:    0.25,
	}
}

// Cascade is storm plus stochastic crash/restart, bit corruption and a
// correlated mass-crash of half the senders at onset — the compound
// worst case the oracle must still certify clean.
func Cascade() Profile {
	p := Storm()
	p.Name = "cascade"
	p.Crash = &faults.CrashPlan{MTBF: 15 * time.Second, MeanDowntime: time.Second}
	p.CorruptProb = 0.02
	p.CascadeFraction = 0.5
	p.CascadeDowntime = 500 * time.Millisecond
	return p
}

// Profiles lists the named profiles in sweep order.
func Profiles() []Profile {
	return []Profile{Calm(), Storm(), Cascade()}
}

// ProfileFor resolves a profile by name.
func ProfileFor(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("chaos: unknown profile %q (want calm, storm or cascade)", name)
}

// ParseProfiles parses a comma-separated profile list for the CLI.
func ParseProfiles(s string) ([]Profile, error) {
	if s == "all" {
		return Profiles(), nil
	}
	var out []Profile
	for _, part := range strings.Split(s, ",") {
		name := strings.TrimSpace(part)
		if name == "" {
			continue
		}
		p, err := ProfileFor(name)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("chaos: empty profile list %q", s)
	}
	return out, nil
}

// Validate rejects profiles the composer cannot schedule.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("chaos: profile needs a name")
	}
	if p.Waypoint && (!(p.MinSpeed > 0) || p.MaxSpeed < p.MinSpeed || p.Pause < 0) {
		return fmt.Errorf("chaos: %s waypoint speeds [%v, %v] pause %v invalid", p.Name, p.MinSpeed, p.MaxSpeed, p.Pause)
	}
	if p.Duty != nil {
		if err := p.Duty.Validate(); err != nil {
			return err
		}
	}
	if p.GE != nil {
		if err := p.GE.Validate(); err != nil {
			return err
		}
	}
	if p.CorruptProb < 0 || p.CorruptProb >= 1 {
		return fmt.Errorf("chaos: %s corruption probability %v out of [0, 1)", p.Name, p.CorruptProb)
	}
	if p.Crash != nil {
		if err := p.Crash.Validate(); err != nil {
			return err
		}
	}
	if p.Flap != nil {
		if err := p.Flap.Validate(); err != nil {
			return err
		}
	}
	if p.Onset < 0 || p.Onset >= 1 {
		return fmt.Errorf("chaos: %s onset fraction %v out of [0, 1)", p.Name, p.Onset)
	}
	if p.CascadeFraction < 0 || p.CascadeFraction > 1 {
		return fmt.Errorf("chaos: %s cascade fraction %v out of [0, 1]", p.Name, p.CascadeFraction)
	}
	if p.CascadeFraction > 0 && p.CascadeDowntime <= 0 {
		return fmt.Errorf("chaos: %s cascade needs a positive stagger, got %v", p.Name, p.CascadeDowntime)
	}
	return nil
}

// Faulty reports whether the profile injects any fault at all (calm does
// not; its onset is a label with nothing behind it).
func (p Profile) Faulty() bool {
	return p.GE != nil || p.CorruptProb > 0 || p.Crash != nil || p.Flap != nil || p.CascadeFraction > 0
}

// OnsetTime is the absolute fault-onset instant for a horizon.
func (p Profile) OnsetTime(horizon time.Duration) time.Duration {
	return time.Duration(p.Onset * float64(horizon))
}

// Channel holds the profile's channel-damage models for post-run
// accounting; fields are nil when the profile does not use them.
type Channel struct {
	GE      *faults.GilbertElliott
	Flipper *faults.BitFlipper
}

// Drops reports burst-model drops so far (0 without a GE channel).
func (c Channel) Drops() int64 {
	if c.GE == nil {
		return 0
	}
	return c.GE.Drops()
}

// Flips reports corrupted deliveries so far (0 without a flipper).
func (c Channel) Flips() int64 {
	if c.Flipper == nil {
		return 0
	}
	return c.Flipper.Flips()
}

// InstallChannel builds the profile's loss and corruption models into
// params before the medium exists, gated so they act only from the fault
// onset onward. The returned Channel exposes their damage counters.
func (p Profile) InstallChannel(params *radio.Params, horizon time.Duration, now func() time.Duration, src *xrand.Source) Channel {
	var ch Channel
	onset := p.OnsetTime(horizon)
	if p.GE != nil {
		ch.GE = faults.NewGilbertElliott(*p.GE, src.Stream("chaos", "ge"))
		params.Loss = gatedLoss{inner: ch.GE, onset: onset}
	}
	if p.CorruptProb > 0 {
		ch.Flipper = faults.NewBitFlipper(p.CorruptProb, src.Stream("chaos", "corrupt"))
		params.Corrupt = &gatedCorrupter{inner: ch.Flipper, onset: onset, now: now}
	}
	return ch
}

// gatedLoss passes frames untouched before onset and delegates after:
// the burst channel's Markov chain only advances on post-onset frames,
// so the healthy baseline window stays genuinely clean.
type gatedLoss struct {
	inner radio.LossModel
	onset time.Duration
}

func (g gatedLoss) Drop(from, to radio.NodeID, at time.Duration) bool {
	if at < g.onset {
		return false
	}
	return g.inner.Drop(from, to, at)
}

// gatedCorrupter is the same gate for payload damage; the Corrupter
// interface carries no clock, so the gate reads the engine's.
type gatedCorrupter struct {
	inner radio.Corrupter
	onset time.Duration
	now   func() time.Duration
}

func (g *gatedCorrupter) Corrupt(payload []byte) ([]byte, bool) {
	if g.now() < g.onset {
		return payload, false
	}
	return g.inner.Corrupt(payload)
}

// Deps wires a profile into one trial's already-constructed simulation.
// Callers register every node with the Injector (and senders with the
// Churner when the profile duty-cycles) before Apply; the composer only
// starts processes, it never attaches nodes.
type Deps struct {
	// Engine is the trial's event loop.
	Engine *sim.Engine
	// Disk is the placement surface mobility moves nodes on. Required
	// when the profile uses Waypoint.
	Disk *radio.UnitDisk
	// Injector executes crashes, restarts and link flaps. Required when
	// the profile uses Crash, Flap or Cascade.
	Injector *faults.Injector
	// Churner executes duty-cycle sleep/wake. Required when the profile
	// sets Duty.
	Churner *mobility.Churner
	// Area bounds waypoint movement.
	Area mobility.Area
	// Horizon is the trial length; the onset fraction resolves against
	// it and every started plan is bounded by its executor's horizon.
	Horizon time.Duration
	// Sink is the node the Flap plan pairs each sender against.
	Sink radio.NodeID
	// Senders are the mobile workload nodes, lowest id first; the
	// cascade crashes a prefix of this slice.
	Senders []radio.NodeID
	// Src roots the profile's randomness; every process draws from a
	// labelled child stream.
	Src *xrand.Source
}

// Apply starts the profile's processes: mobility and churn immediately,
// fault plans and the cascade at the onset instant. It returns the onset
// time so the harness can measure recovery against it. Plan starts
// inside scheduled callbacks follow the faults.Script convention of
// discarding errors; Apply validates everything those calls check up
// front, so the discarded errors are unreachable.
func (p Profile) Apply(d Deps) (time.Duration, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if d.Engine == nil || d.Src == nil || d.Horizon <= 0 {
		return 0, fmt.Errorf("chaos: %s needs an engine, a source and a positive horizon", p.Name)
	}
	if p.Waypoint && d.Disk == nil {
		return 0, fmt.Errorf("chaos: %s moves nodes but has no disk", p.Name)
	}
	if (p.Crash != nil || p.Flap != nil || p.CascadeFraction > 0) && d.Injector == nil {
		return 0, fmt.Errorf("chaos: %s injects faults but has no injector", p.Name)
	}
	if p.Duty != nil && d.Churner == nil {
		return 0, fmt.Errorf("chaos: %s duty-cycles but has no churner", p.Name)
	}

	// Mobility and churn run from t=0: the network is dynamic before it
	// is faulty, exactly as the paper's deployments were.
	for _, id := range d.Senders {
		label := fmt.Sprint(id)
		if p.Waypoint {
			wcfg := mobility.WaypointConfig{
				Area:     d.Area,
				MinSpeed: p.MinSpeed,
				MaxSpeed: p.MaxSpeed,
				Pause:    p.Pause,
			}
			if _, err := mobility.StartWaypoint(d.Engine, d.Disk, id, wcfg, d.Src.Stream("chaos", "mob", label), d.Horizon); err != nil {
				return 0, err
			}
		}
		if p.Duty != nil {
			if err := d.Churner.StartDutyCycle(id, *p.Duty, d.Src.Stream("chaos", "duty", label)); err != nil {
				return 0, err
			}
		}
	}

	onset := p.OnsetTime(d.Horizon)
	if !p.Faulty() {
		return onset, nil
	}
	d.Engine.ScheduleAt(onset, func() {
		if p.Crash != nil {
			_ = d.Injector.StartCrashPlan(d.Sink, *p.Crash, d.Src.Stream("chaos", "crash", "sink"))
			for _, id := range d.Senders {
				_ = d.Injector.StartCrashPlan(id, *p.Crash, d.Src.Stream("chaos", "crash", fmt.Sprint(id)))
			}
		}
		if p.Flap != nil {
			for _, id := range d.Senders {
				_ = d.Injector.StartFlapPlan(d.Sink, id, *p.Flap, d.Src.Stream("chaos", "flap", fmt.Sprint(id)))
			}
		}
		if p.CascadeFraction > 0 {
			// ceil(fraction × N) lowest-id senders fall together.
			n := (len(d.Senders)*int(p.CascadeFraction*1000) + 999) / 1000
			if n > len(d.Senders) {
				n = len(d.Senders)
			}
			for k := 0; k < n; k++ {
				id := d.Senders[k]
				_ = d.Injector.Crash(id)
				d.Engine.Schedule(time.Duration(k+1)*p.CascadeDowntime, func() {
					_ = d.Injector.Restart(id)
				})
			}
		}
	})
	return onset, nil
}
