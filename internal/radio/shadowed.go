package radio

import (
	"encoding/binary"
	"hash/fnv"
	"math"
)

// Shadowed is a unit-disk topology with log-normal shadowing: each node
// pair carries a fixed random fade, so coverage is irregular rather than
// circular — closer to the "vagaries of RF connectivity" the paper keeps
// invoking than an ideal disk. A pair is connected when
//
//	distance * 10^(fade/10) <= Range
//
// with fade ~ Normal(0, Sigma) dB, drawn deterministically per unordered
// pair from the topology's seed, so connectivity is stable across a run
// and reproducible across runs. Fades are symmetric (the same both ways).
type Shadowed struct {
	// Range is the nominal radio range (the zero-fade disk radius).
	Range float64
	// Sigma is the shadowing standard deviation in dB; 0 degrades to a
	// pure unit disk. Field measurements commonly sit in 4-8 dB.
	Sigma float64

	seed      uint64
	positions map[NodeID]Point
}

// NewShadowed returns an empty shadowed topology.
func NewShadowed(radioRange, sigmaDB float64, seed uint64) *Shadowed {
	return &Shadowed{
		Range:     radioRange,
		Sigma:     sigmaDB,
		seed:      seed,
		positions: make(map[NodeID]Point),
	}
}

// Place sets (or moves) a node's position.
func (s *Shadowed) Place(id NodeID, p Point) { s.positions[id] = p }

// Position returns the node's position and whether it has been placed.
func (s *Shadowed) Position(id NodeID) (Point, bool) {
	p, ok := s.positions[id]
	return p, ok
}

// FadeDB returns the pair's fixed shadowing fade in dB.
func (s *Shadowed) FadeDB(a, b NodeID) float64 {
	if s.Sigma <= 0 {
		return 0
	}
	return s.Sigma * pairGaussian(s.seed, a, b)
}

// Connected reports whether the faded distance is within range.
func (s *Shadowed) Connected(from, to NodeID) bool {
	if from == to {
		return false
	}
	a, okA := s.positions[from]
	b, okB := s.positions[to]
	if !okA || !okB {
		return false
	}
	d := a.Dist(b)
	if d == 0 {
		return true
	}
	effective := d * math.Pow(10, s.FadeDB(from, to)/10)
	return effective <= s.Range
}

// pairGaussian derives a deterministic standard-normal draw for an
// unordered node pair via a hash-seeded Box-Muller transform.
func pairGaussian(seed uint64, a, b NodeID) float64 {
	if a > b {
		a, b = b, a
	}
	u1 := pairUniform(seed, a, b, 0)
	u2 := pairUniform(seed, a, b, 1)
	// Box-Muller; u1 is bounded away from 0 by construction below.
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// pairUniform hashes (seed, a, b, k) into (0, 1).
func pairUniform(seed uint64, a, b NodeID, k uint64) float64 {
	h := fnv.New64a()
	var buf [8 * 4]byte
	binary.LittleEndian.PutUint64(buf[0:], seed)
	binary.LittleEndian.PutUint64(buf[8:], uint64(a))
	binary.LittleEndian.PutUint64(buf[16:], uint64(b))
	binary.LittleEndian.PutUint64(buf[24:], k)
	_, _ = h.Write(buf[:])
	// FNV's avalanche is weak on structured input; finish with the
	// SplitMix64 finalizer before mapping to (0, 1). Add 1 to avoid an
	// exact zero.
	z := h.Sum64() + 0x9E3779B97F4A7C15
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	z ^= z >> 31
	return (float64(z>>11) + 1) / float64(1<<53)
}
