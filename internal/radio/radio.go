package radio

import (
	"fmt"
	"time"

	"retri/internal/energy"
)

// Radio is one node's attachment to the medium. All methods must be called
// from the simulation goroutine.
type Radio struct {
	id NodeID
	m  *Medium

	handler func(Frame)

	queue          []Frame
	inFlight       bool
	attemptPending bool

	up          bool
	listening   bool
	listenSince time.Duration

	// txWindows records recent transmission intervals for half-duplex
	// reception checks.
	txWindows []txWindow

	meter energy.Meter
}

type txWindow struct {
	start, end time.Duration
}

// ID returns the radio's node ID.
func (r *Radio) ID() NodeID { return r.id }

// Now returns the medium's virtual time; protocol layers use it as their
// clock.
func (r *Radio) Now() time.Duration { return r.m.eng.Now() }

// SetHandler installs the receive callback. The callback runs inside the
// simulation event that completes the frame; it may call Send.
func (r *Radio) SetHandler(h func(Frame)) { r.handler = h }

// Send queues a frame for transmission. bits is the number of meaningful
// payload bits (0 means 8*len(payload)). Send returns an error if the
// payload exceeds the MTU or the radio is down; queued frames are
// transmitted in order under the medium's MAC discipline.
func (r *Radio) Send(payload []byte, bits int) error {
	if !r.up {
		return fmt.Errorf("%w: node %d", ErrRadioDown, r.id)
	}
	if len(payload) > r.m.p.MTU {
		return fmt.Errorf("%w: %d > %d bytes", ErrFrameTooLarge, len(payload), r.m.p.MTU)
	}
	if bits <= 0 || bits > 8*len(payload) {
		bits = 8 * len(payload)
	}
	r.queue = append(r.queue, Frame{From: r.id, Payload: payload, Bits: bits})
	r.pump()
	return nil
}

// QueueLen reports the number of frames waiting to transmit (not counting
// one in flight).
func (r *Radio) QueueLen() int { return len(r.queue) }

// Idle reports whether the radio has nothing queued or in flight.
func (r *Radio) Idle() bool { return len(r.queue) == 0 && !r.inFlight }

// Up reports whether the radio is powered.
func (r *Radio) Up() bool { return r.up }

// SetUp powers the radio on or off. Powering off drops the transmit queue
// (the node is gone, per the paper's node-dynamics assumption) and stops
// listening-energy accrual; powering on resumes listening if it was
// enabled.
func (r *Radio) SetUp(up bool) {
	if up == r.up {
		return
	}
	if !up {
		r.flushListen()
		r.queue = nil
	} else if r.listening {
		r.listenSince = r.m.eng.Now()
	}
	r.up = up
	if up {
		r.pump()
	}
}

// Listening reports whether the receiver is enabled.
func (r *Radio) Listening() bool { return r.listening }

// SetListening enables or disables reception. The paper notes some nodes
// "minimize the time they spend listening because of the significant power
// requirements of running a radio" (Section 3.2); disabling reception stops
// both frame delivery and listen-energy accrual.
func (r *Radio) SetListening(on bool) {
	if on == r.listening {
		return
	}
	if on {
		if r.up {
			r.listenSince = r.m.eng.Now()
		}
	} else {
		r.flushListen()
	}
	r.listening = on
}

// Meter returns a snapshot of the radio's energy accounting, including
// listening time accrued up to the present instant.
func (r *Radio) Meter() energy.Meter {
	m := r.meter
	if r.up && r.listening {
		m.AddListen(r.m.eng.Now() - r.listenSince)
	}
	return m
}

// flushListen folds the open listening interval into the meter.
func (r *Radio) flushListen() {
	if r.up && r.listening {
		r.meter.AddListen(r.m.eng.Now() - r.listenSince)
	}
	r.listenSince = r.m.eng.Now()
}

// pump moves the queue forward. Under ALOHA the head frame transmits
// immediately. Under CSMA every attempt — a fresh frame, a sender's next
// frame, or a waiter woken by a completed transmission — first waits a
// uniform draw from the contention window, then senses the carrier:
// transmit if idle, rejoin the waiters if busy. All contenders follow the
// same rule, so nodes interleave frame by frame instead of one sender
// monopolizing the channel.
func (r *Radio) pump() {
	if !r.up || r.inFlight || len(r.queue) == 0 {
		return
	}
	if r.m.p.Access == ALOHA {
		r.transmitHead()
		return
	}
	if r.attemptPending {
		return
	}
	r.attemptPending = true
	d := time.Duration(r.m.rng.Int64N(int64(r.m.p.Contention)))
	r.m.eng.Schedule(d, r.attempt)
}

// attempt is the post-contention-delay carrier sense.
func (r *Radio) attempt() {
	r.attemptPending = false
	if !r.up || r.inFlight || len(r.queue) == 0 {
		return
	}
	if r.m.busyAt(r.id) {
		r.m.ctr.Backoffs++
		r.m.addWaiter(r)
		return
	}
	r.transmitHead()
}

// transmitHead puts the head-of-queue frame on the air.
func (r *Radio) transmitHead() {
	f := r.queue[0]
	r.queue = r.queue[1:]
	r.inFlight = true
	r.m.begin(r, f)
}

// noteTx records a transmission interval for half-duplex checks.
func (r *Radio) noteTx(start, end time.Duration) {
	// Prune windows that ended long before any frame still on air began.
	kept := r.txWindows[:0]
	for _, w := range r.txWindows {
		if w.end > start-time.Second {
			kept = append(kept, w)
		}
	}
	r.txWindows = append(kept, txWindow{start: start, end: end})
}

// txOverlaps reports whether this radio transmitted during [start, end).
func (r *Radio) txOverlaps(start, end time.Duration) bool {
	for _, w := range r.txWindows {
		if w.start < end && w.end > start {
			return true
		}
	}
	return false
}
