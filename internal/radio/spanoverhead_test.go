// Span-hook perf budget for flagless runs.
//
// This file is package radio_test (not radio) on purpose: the <2% budget
// the span layer promises is about what a real, flagless figure pays, so
// the test needs the experiment harness on one side and the raw medium on
// the other — importable together only from an external test package.
package radio_test

import (
	"math"
	"sort"
	"testing"
	"time"

	"retri/internal/experiment"
	"retri/internal/radio"
	"retri/internal/sim"
	"retri/internal/span"
	"retri/internal/xrand"
)

// nopFates is interface dispatch with an empty body on every send and
// reception verdict — the span tracer's hook machinery minus the span
// tracer. A flagless run pays one nil check per site, strictly cheaper
// than this dispatch, so timing the dispatch bounds the flagless cost
// from above.
type nopFates struct{}

func (nopFates) FrameSent(radio.Frame)                           {}
func (nopFates) FrameFate(radio.NodeID, radio.Frame, radio.Fate) {}

const (
	microRadios = 6
	microRounds = 10
)

// microEvents is the exact fate-feed callback count of one microOp:
// every send is one FrameSent plus one FrameFate per other radio
// (deliver runs exactly one fate per in-range receiver, whatever the
// verdict), and all radios are in range under FullMesh.
const microEvents = microRounds * microRadios * microRadios

// microOp is one op of the contention-heavy broadcast workload from the
// medium benchmarks, kept deliberately light so the fate hooks are the
// largest possible share of the work and their per-event cost resolves
// out of the nil-vs-dispatch difference.
func microOp(t *testing.T, fates radio.FateObserver) {
	eng := sim.NewEngine()
	rng := xrand.NewSource(99).Stream("bench")
	m := radio.NewMedium(eng, radio.FullMesh{}, radio.DefaultParams(), rng)
	if fates != nil {
		m.SetFateObserver(fates)
	}
	radios := make([]*radio.Radio, microRadios)
	for j := range radios {
		radios[j] = m.MustAttach(radio.NodeID(j))
		radios[j].SetHandler(func(radio.Frame) {})
	}
	for round := 0; round < microRounds; round++ {
		for _, r := range radios {
			if err := r.Send([]byte{0xAB, 0xCD, 0xEF}, 0); err != nil {
				t.Fatal(err)
			}
		}
		eng.Run()
	}
}

// perEventDispatchNS estimates what one fate-feed callback costs, in ns.
// The true cost (sub-ns dispatch, and less for the flagless nil check) is
// far below this machine's run-to-run benchmark noise, so independent
// before/after timings cannot resolve it: the estimator instead times
// nil/dispatch batches back to back in alternation, so slow drift (CPU
// frequency, a noisy neighbour) hits both sides of each pair alike, and
// takes the median of the paired differences.
func perEventDispatchNS(t *testing.T) float64 {
	const (
		opsPerBatch = 50
		pairs       = 101
	)
	batch := func(fates radio.FateObserver) time.Duration {
		start := time.Now()
		for k := 0; k < opsPerBatch; k++ {
			microOp(t, fates)
		}
		return time.Since(start)
	}
	batch(nil) // warm caches and the page allocator before sampling
	batch(nopFates{})
	deltas := make([]float64, 0, pairs)
	for i := 0; i < pairs; i++ {
		base := batch(nil)
		hooked := batch(nopFates{})
		deltas = append(deltas,
			float64(hooked-base)/float64(opsPerBatch)/float64(microEvents))
	}
	sort.Float64s(deltas)
	perEvent := deltas[len(deltas)/2]
	t.Logf("fate dispatch: median %+.2f ns/event over %d pairs (spread %+.2f .. %+.2f)",
		perEvent, pairs, deltas[0], deltas[len(deltas)-1])
	if perEvent < 0 {
		return 0 // dispatch below measurement noise: no observable cost
	}
	return perEvent
}

// TestNilSpanPathOverhead enforces the zero-perturbation perf budget: the
// span hook sites must cost a flagless figure run less than 2%. The
// budget is about a real run, so the test composes two measurements
// instead of asserting a ratio on a stripped-down micro workload (where
// the hooks are by construction a large share of nearly nothing):
//
//  1. per-event hook cost, from paired nil-vs-nop-dispatch timings of the
//     micro workload over its exactly-known event count — an upper bound
//     on the flagless path, which is a nil check per site;
//  2. per-fragment cost of a real flagless strategies trial, with the
//     fragment count taken from a span-ledger run of the same seed (the
//     ledger is passive, so the flagless run sends the same fragments).
//
// Every fragment triggers one FrameSent plus one fate per in-range radio,
// so worst-case hook cost per fragment = (1+density) x per-event cost,
// and the budget is that this stays under 2% of what the figure already
// spends per fragment. Ratios keep the budget meaningful under -race.
func TestNilSpanPathOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing")
	}

	perEvent := perEventDispatchNS(t)

	// Per-fragment cost of a real flagless run.
	const density = 5
	cfg := experiment.StrategiesConfig{
		Seed:              1,
		Strategies:        []string{"uniform"},
		Densities:         []int{density},
		IDBits:            8,
		PacketSize:        80,
		Duration:          2 * time.Second,
		Trials:            1,
		Parallelism:       1,
		ReassemblyTimeout: 250 * time.Millisecond,
	}
	counting := cfg
	led := span.NewLedger()
	counting.Obs = &experiment.Obs{Spans: led}
	if _, err := experiment.Strategies(counting); err != nil {
		t.Fatal(err)
	}
	frags := led.Report().FragmentsSent
	if frags < 200 {
		t.Fatalf("counting run sent only %d fragments; workload too small to time", frags)
	}
	best := time.Duration(math.MaxInt64)
	for i := 0; i < 5; i++ {
		start := time.Now()
		if _, err := experiment.Strategies(cfg); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	perFragment := float64(best.Nanoseconds()) / float64(frags)

	// Worst case: full dispatch at every site the flagless run nil-checks.
	worst := float64(1+density) * perEvent
	t.Logf("flagless trial %v for %d fragments = %.0f ns/fragment; worst-case hook share %.3f%%",
		best, frags, perFragment, 100*worst/perFragment)
	if worst >= 0.02*perFragment {
		t.Errorf("span hook sites could cost a flagless run %.2f%% per fragment (%.1f ns of %.0f ns), over the 2%% budget",
			100*worst/perFragment, worst, perFragment)
	}
}
