package radio

import (
	"math"
	"testing"
)

func TestShadowedZeroSigmaIsUnitDisk(t *testing.T) {
	s := NewShadowed(10, 0, 1)
	s.Place(1, Point{})
	s.Place(2, Point{X: 9})
	s.Place(3, Point{X: 11})
	if !s.Connected(1, 2) {
		t.Error("in-range pair disconnected with zero shadowing")
	}
	if s.Connected(1, 3) {
		t.Error("out-of-range pair connected with zero shadowing")
	}
	if s.FadeDB(1, 2) != 0 {
		t.Error("zero sigma produced a fade")
	}
}

func TestShadowedBasics(t *testing.T) {
	s := NewShadowed(10, 6, 42)
	s.Place(1, Point{})
	if s.Connected(1, 1) {
		t.Error("self-connection")
	}
	if s.Connected(1, 99) {
		t.Error("unplaced node connected")
	}
	s.Place(2, Point{})
	if !s.Connected(1, 2) {
		t.Error("co-located nodes must always connect")
	}
	if p, ok := s.Position(1); !ok || p != (Point{}) {
		t.Error("Position accessor broken")
	}
}

func TestShadowedSymmetricAndStable(t *testing.T) {
	s := NewShadowed(10, 6, 7)
	s.Place(1, Point{})
	s.Place(2, Point{X: 8})
	if s.FadeDB(1, 2) != s.FadeDB(2, 1) {
		t.Error("fade asymmetric")
	}
	if s.Connected(1, 2) != s.Connected(2, 1) {
		t.Error("connectivity asymmetric")
	}
	first := s.Connected(1, 2)
	for i := 0; i < 10; i++ {
		if s.Connected(1, 2) != first {
			t.Fatal("connectivity not stable across calls")
		}
	}
	// Same seed reproduces; different seed generally differs somewhere.
	again := NewShadowed(10, 6, 7)
	again.Place(1, Point{})
	again.Place(2, Point{X: 8})
	if again.FadeDB(1, 2) != s.FadeDB(1, 2) {
		t.Error("fade not reproducible from seed")
	}
}

func TestShadowedIrregularCoverage(t *testing.T) {
	// With strong shadowing, some pairs just inside nominal range drop
	// and some just outside survive: coverage is no longer a disk.
	s := NewShadowed(10, 8, 3)
	s.Place(0, Point{})
	insideLost, outsideGained := 0, 0
	for i := 1; i <= 200; i++ {
		id := NodeID(i)
		if i%2 == 0 {
			s.Place(id, Point{X: 9}) // inside nominal range
			if !s.Connected(0, id) {
				insideLost++
			}
		} else {
			s.Place(id, Point{X: 11.5}) // outside nominal range
			if s.Connected(0, id) {
				outsideGained++
			}
		}
	}
	if insideLost == 0 {
		t.Error("no in-range pair ever faded out; shadowing inert")
	}
	if outsideGained == 0 {
		t.Error("no out-of-range pair ever faded in; shadowing one-sided")
	}
}

func TestPairGaussianRoughlyStandard(t *testing.T) {
	var sum, sumSq float64
	const n = 4000
	for i := 0; i < n; i++ {
		g := pairGaussian(99, NodeID(i), NodeID(i+10000))
		sum += g
		sumSq += g * g
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.08 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if variance < 0.85 || variance > 1.15 {
		t.Errorf("variance = %v, want ~1", variance)
	}
}

func TestShadowedEndToEnd(t *testing.T) {
	// The topology plugs into the medium like any other.
	s := NewShadowed(10, 4, 5)
	s.Place(1, Point{})
	s.Place(2, Point{X: 5})
	eng, m := newTestMedium(t, s, DefaultParams())
	a := m.MustAttach(1)
	b := m.MustAttach(2)
	got := 0
	b.SetHandler(func(Frame) { got++ })
	if err := a.Send([]byte{1}, 0); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	want := 0
	if s.Connected(1, 2) {
		want = 1
	}
	if got != want {
		t.Errorf("delivered %d, topology says %d", got, want)
	}
}
