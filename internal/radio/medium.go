// Package radio simulates the broadcast wireless medium the paper's
// implementation ran on: short fixed-size frames, half-duplex radios, RF
// collisions, random loss, and a choice of trivial MACs.
//
// The model is deliberately simple — the class of radio the paper targets
// (Radiometrix RPC and kin) has "extremely simple MACs and framing"
// (Section 4.4). A frame transmitted by node u occupies the channel, as
// heard by each receiver v in range of u, for its airtime. v receives the
// frame unless (a) another in-range transmission overlapped it at v (RF
// collision), (b) v itself transmitted during the window (half-duplex
// miss), (c) v was down or not listening, or (d) an independent random
// loss draw failed.
package radio

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"time"

	"retri/internal/energy"
	"retri/internal/sim"
	"retri/internal/trace"
)

// MACKind selects the channel-access discipline.
type MACKind int

const (
	// CSMA senses the carrier before transmitting and backs off randomly
	// while the channel is busy (as heard at the transmitter).
	CSMA MACKind = iota + 1
	// ALOHA transmits immediately regardless of channel state.
	ALOHA
)

// LossModel decides whether an otherwise-receivable frame is lost on the
// directed link from→to. It replaces the i.i.d. FrameLoss draw when set,
// allowing correlated loss processes (e.g. a Gilbert–Elliott burst
// channel, internal/faults). The medium consults it once per (frame,
// receiver) pair in attachment order, so a deterministic implementation
// keeps the whole run deterministic.
type LossModel interface {
	Drop(from, to NodeID, at time.Duration) bool
}

// Corrupter may damage a frame's payload on its way to one receiver. It
// must return a private copy when it mutates (the same payload bytes are
// delivered to every other receiver) and report whether it did. Corrupted
// frames are still delivered — catching them is the checksum layer's job.
type Corrupter interface {
	Corrupt(payload []byte) ([]byte, bool)
}

// Params configures a Medium.
type Params struct {
	// MTU is the maximum frame payload in bytes (the paper's RPC radio:
	// 27 bytes).
	MTU int
	// BitRate is the on-air rate in bits per second.
	BitRate float64
	// FrameLoss is the independent per-receiver probability that an
	// otherwise-receivable frame is lost. Ignored when Loss is set.
	FrameLoss float64
	// Loss, when non-nil, replaces the FrameLoss coin flip with a
	// correlated loss process (fault injection).
	Loss LossModel
	// Corrupt, when non-nil, may flip bits in delivered payloads (fault
	// injection); corrupted deliveries are counted and traced.
	Corrupt Corrupter
	// MAC is the per-frame framing overhead profile (airtime and energy).
	MAC energy.MACProfile
	// Access selects CSMA or ALOHA.
	Access MACKind
	// Contention is the CSMA contention window: every transmission
	// attempt (including a sender's next frame) is delayed by a uniform
	// draw from [0, Contention), so contending nodes interleave fairly
	// frame by frame, as the paper's testbed radios did. Zero selects a
	// 4ms default.
	Contention time.Duration
	// SenseDelay is the carrier-sense blind spot: a transmission younger
	// than this is not yet audible to other carrier sensors, so two
	// attempts within SenseDelay of each other produce a real RF
	// collision. Zero selects a 25µs default (one bit time at 40kbit/s).
	SenseDelay time.Duration
}

// DefaultParams models the paper's testbed radio: 27-byte frames at
// 40 kbit/s with RPC-like framing and CSMA access, no random loss.
func DefaultParams() Params {
	return Params{
		MTU:     27,
		BitRate: 40e3,
		MAC:     energy.RPCProfile(),
		Access:  CSMA,
	}
}

// Counters aggregates medium-wide outcomes, one increment per (frame,
// receiver) pair except Sent, which counts transmissions.
type Counters struct {
	Sent       int64 // frames put on air
	Delivered  int64 // successful receptions
	Collided   int64 // receptions destroyed by overlapping transmissions
	HalfDuplex int64 // receptions missed because the receiver was transmitting
	RandomLoss int64 // receptions dropped by the loss model
	NotHeard   int64 // receiver down or not listening during the frame
	Backoffs   int64 // CSMA backoff events
	Corrupted  int64 // deliveries whose payload the fault model damaged
}

var (
	// ErrFrameTooLarge is returned by Send when the payload exceeds the MTU.
	ErrFrameTooLarge = errors.New("radio: frame exceeds MTU")
	// ErrRadioDown is returned by Send when the radio is powered off.
	ErrRadioDown = errors.New("radio: radio is down")
	// ErrDuplicateNode is returned by Attach for an already-attached ID.
	ErrDuplicateNode = errors.New("radio: node already attached")
)

// Frame is one on-air transmission unit.
type Frame struct {
	// From is the transmitting radio. It is simulation ground truth for
	// the harness and MAC bookkeeping; protocol code under test must not
	// read it (the AFF wire format carries no source).
	From NodeID
	// Payload is the frame body as produced by a wire-format encoder.
	Payload []byte
	// Bits is the exact number of meaningful payload bits; it may be less
	// than 8*len(Payload) when a bit-packed header leaves padding in the
	// final byte. Airtime and energy accounting use Bits.
	Bits int
}

// FrameObserver watches raw frames from the simulator's privileged
// viewpoint: unlike trace.Tracer it sees payload bytes and the ground-truth
// sender, so a conformance oracle can decode instrumented fragments and
// audit the protocol under test. Implementations must be passive — no
// randomness draws, no event scheduling, no mutation of the payload — so
// that attaching one cannot perturb the simulation.
type FrameObserver interface {
	// FrameSent fires once per transmission, when the frame is put on air.
	FrameSent(f Frame)
	// FrameDelivered fires once per successful reception, just before the
	// receiver's handler. corrupted reports whether a fault model damaged
	// this receiver's copy of the payload.
	FrameDelivered(to NodeID, f Frame, corrupted bool)
}

// Fate classifies the outcome of one (frame, receiver) pair — the
// per-receiver verdict the reception model reaches in Medium.deliver.
type Fate int

// Fates, in the order the reception model rules them out.
const (
	FateNotHeard Fate = iota + 1
	FateHalfDuplex
	FateCollided
	FateRandomLoss
	FateCorrupted // delivered, but the fault model damaged this copy
	FateDelivered
)

// String names a fate for ledgers and query output.
func (f Fate) String() string {
	switch f {
	case FateNotHeard:
		return "not-heard"
	case FateHalfDuplex:
		return "half-duplex"
	case FateCollided:
		return "collided"
	case FateRandomLoss:
		return "random-loss"
	case FateCorrupted:
		return "corrupted"
	case FateDelivered:
		return "delivered"
	default:
		return "unknown"
	}
}

// FateObserver watches every per-receiver reception outcome from the
// simulator's privileged viewpoint — the span tracer's channel-fate feed.
// Where FrameObserver reports only transmissions and successful
// deliveries, a FateObserver additionally hears about every loss and why.
// FrameFate always receives the sender's original payload, even when a
// corrupter damaged the delivered copy, so observers can attribute the
// outcome to the transaction that was actually sent. Implementations must
// be passive: no randomness, no scheduling, no payload mutation.
type FateObserver interface {
	// FrameSent fires once per transmission, when the frame is put on air.
	FrameSent(f Frame)
	// FrameFate fires once per (frame, receiver) pair when the reception
	// model reaches its verdict.
	FrameFate(to NodeID, f Frame, fate Fate)
}

// Medium is the shared broadcast channel.
type Medium struct {
	eng   *sim.Engine
	p     Params
	topo  Topology
	rng   *rand.Rand
	nodes map[NodeID]*Radio
	// order lists attached IDs in attachment order so delivery iteration
	// (and therefore random-loss draw order) is deterministic.
	order   []NodeID
	onAir   []*transmission
	waiters []*Radio
	// free recycles transmission records. A record is recycled only by
	// prune, which drops it only when its airtime ended strictly before a
	// later transmission's start — so its completion event has already
	// fired and no scheduled closure still holds it. This keeps the
	// per-frame hot path (begin) allocation-free in steady state.
	free     []*transmission
	ctr      Counters
	tracer   trace.Tracer
	observer FrameObserver
	fates    FateObserver
}

type transmission struct {
	from       NodeID
	frame      Frame
	start, end time.Duration
}

// NewMedium creates a broadcast medium on the given engine, topology and
// random stream.
func NewMedium(eng *sim.Engine, topo Topology, p Params, rng *rand.Rand) *Medium {
	if p.MTU <= 0 {
		p.MTU = 27
	}
	if p.BitRate <= 0 {
		p.BitRate = 40e3
	}
	if p.Access == 0 {
		p.Access = CSMA
	}
	if p.Contention <= 0 {
		p.Contention = 4 * time.Millisecond
	}
	if p.SenseDelay <= 0 {
		p.SenseDelay = 25 * time.Microsecond
	}
	return &Medium{
		eng:   eng,
		p:     p,
		topo:  topo,
		rng:   rng,
		nodes: make(map[NodeID]*Radio),
	}
}

// Params returns the medium's configuration.
func (m *Medium) Params() Params { return m.p }

// Counters returns a snapshot of medium-wide counters.
func (m *Medium) Counters() Counters { return m.ctr }

// SetTracer installs an event tracer; nil disables tracing.
func (m *Medium) SetTracer(t trace.Tracer) { m.tracer = t }

// SetFrameObserver installs a privileged frame observer; nil disables it.
func (m *Medium) SetFrameObserver(o FrameObserver) { m.observer = o }

// SetFateObserver installs a privileged per-receiver fate observer; nil
// disables it. It is a separate slot from the frame observer so the
// conformance oracle and the span tracer can watch one medium together.
func (m *Medium) SetFateObserver(o FateObserver) { m.fates = o }

// fate reports one reception verdict when a fate observer is installed;
// like emit, the disabled path is a single nil check.
func (m *Medium) fate(to NodeID, f Frame, k Fate) {
	if m.fates == nil {
		return
	}
	m.fates.FrameFate(to, f, k)
}

// emit records a trace event when tracing is enabled.
func (m *Medium) emit(kind trace.Kind, node, peer NodeID, bits int) {
	if m.tracer == nil {
		return
	}
	m.tracer.Record(trace.Event{
		At:   m.eng.Now(),
		Kind: kind,
		Node: int(node),
		Peer: int(peer),
		Bits: bits,
	})
}

// Engine returns the simulation engine the medium schedules on.
func (m *Medium) Engine() *sim.Engine { return m.eng }

// Attach creates a radio for id. The radio starts up and listening.
func (m *Medium) Attach(id NodeID) (*Radio, error) {
	if _, ok := m.nodes[id]; ok {
		return nil, fmt.Errorf("%w: %d", ErrDuplicateNode, id)
	}
	r := &Radio{
		id:          id,
		m:           m,
		up:          true,
		listening:   true,
		listenSince: m.eng.Now(),
	}
	m.nodes[id] = r
	m.order = append(m.order, id)
	return r, nil
}

// MustAttach is Attach for test and example setup paths where a duplicate
// ID is a programming error.
func (m *Medium) MustAttach(id NodeID) *Radio {
	r, err := m.Attach(id)
	if err != nil {
		panic(err)
	}
	return r
}

// Radio returns the radio attached as id, or nil.
func (m *Medium) Radio(id NodeID) *Radio { return m.nodes[id] }

// AirtimeOf returns the on-air duration of a frame with the given number of
// payload bits, including MAC framing overhead.
func (m *Medium) AirtimeOf(payloadBits int) time.Duration {
	return airtime(payloadBits+m.p.MAC.PerFrameOverhead, m.p.BitRate)
}

func airtime(bits int, rate float64) time.Duration {
	if bits <= 0 {
		bits = 1
	}
	return time.Duration(float64(bits) / rate * float64(time.Second))
}

// busyAt reports whether any on-air transmission audible at id overlaps the
// present instant. Used for carrier sense: a transmission younger than the
// sense delay is not yet detectable, which is how real RF collisions arise.
func (m *Medium) busyAt(id NodeID) bool {
	now := m.eng.Now()
	for _, tx := range m.onAir {
		if tx.end <= now {
			continue
		}
		if now-tx.start < m.p.SenseDelay && tx.from != id {
			continue // not yet detectable
		}
		if tx.from == id || m.topo.Connected(tx.from, id) {
			return true
		}
	}
	return false
}

// addWaiter registers a radio to be re-kicked when a transmission
// completes (the channel may then be idle).
func (m *Medium) addWaiter(r *Radio) {
	for _, w := range m.waiters {
		if w == r {
			return
		}
	}
	m.waiters = append(m.waiters, r)
}

// kickWaiters wakes every waiting radio; each schedules a fresh contention
// attempt.
func (m *Medium) kickWaiters() {
	if len(m.waiters) == 0 {
		return
	}
	ws := m.waiters
	m.waiters = m.waiters[:0]
	for _, w := range ws {
		w.pump()
	}
}

// begin puts a frame on the air and schedules its delivery.
func (m *Medium) begin(r *Radio, f Frame) {
	now := m.eng.Now()
	var t *transmission
	if n := len(m.free); n > 0 {
		t = m.free[n-1]
		m.free[n-1] = nil
		m.free = m.free[:n-1]
	} else {
		t = new(transmission)
	}
	*t = transmission{
		from:  r.id,
		frame: f,
		start: now,
		end:   now + m.AirtimeOf(f.Bits),
	}
	m.onAir = append(m.onAir, t)
	m.ctr.Sent++
	onAirBits := f.Bits + m.p.MAC.PerFrameOverhead
	r.meter.AddTx(onAirBits)
	r.noteTx(t.start, t.end)
	m.emit(trace.FrameSent, r.id, r.id, onAirBits)
	if m.observer != nil {
		m.observer.FrameSent(f)
	}
	if m.fates != nil {
		m.fates.FrameSent(f)
	}
	m.eng.ScheduleAt(t.end, func() { m.complete(t) })
}

// complete ends a transmission: attempts delivery at every in-range radio
// and prunes expired transmissions.
func (m *Medium) complete(t *transmission) {
	for _, id := range m.order {
		if id == t.from || !m.topo.Connected(t.from, id) {
			continue
		}
		m.deliver(t, m.nodes[id])
	}
	m.prune(t.start)
	if tx := m.nodes[t.from]; tx != nil {
		tx.inFlight = false
		tx.pump()
	}
	m.kickWaiters()
}

// deliver applies the reception model for one receiver.
func (m *Medium) deliver(t *transmission, v *Radio) {
	bits := t.frame.Bits + m.p.MAC.PerFrameOverhead
	if !v.up || !v.listening {
		m.ctr.NotHeard++
		m.emit(trace.FrameNotHeard, v.id, t.from, bits)
		m.fate(v.id, t.frame, FateNotHeard)
		return
	}
	if v.txOverlaps(t.start, t.end) {
		m.ctr.HalfDuplex++
		m.emit(trace.FrameHalfDuplex, v.id, t.from, bits)
		m.fate(v.id, t.frame, FateHalfDuplex)
		return
	}
	if m.collidedAt(t, v.id) {
		m.ctr.Collided++
		m.emit(trace.FrameCollided, v.id, t.from, bits)
		m.fate(v.id, t.frame, FateCollided)
		return
	}
	if m.p.Loss != nil {
		if m.p.Loss.Drop(t.from, v.id, m.eng.Now()) {
			m.ctr.RandomLoss++
			m.emit(trace.FrameRandomLoss, v.id, t.from, bits)
			m.fate(v.id, t.frame, FateRandomLoss)
			return
		}
	} else if m.p.FrameLoss > 0 && m.rng.Float64() < m.p.FrameLoss {
		m.ctr.RandomLoss++
		m.emit(trace.FrameRandomLoss, v.id, t.from, bits)
		m.fate(v.id, t.frame, FateRandomLoss)
		return
	}
	f := t.frame
	corrupted := false
	if m.p.Corrupt != nil {
		if damaged, ok := m.p.Corrupt.Corrupt(f.Payload); ok {
			f.Payload = damaged
			corrupted = true
			m.ctr.Corrupted++
			m.emit(trace.FrameCorrupted, v.id, t.from, bits)
		}
	}
	m.ctr.Delivered++
	m.emit(trace.FrameDelivered, v.id, t.from, bits)
	if corrupted {
		m.fate(v.id, t.frame, FateCorrupted)
	} else {
		m.fate(v.id, t.frame, FateDelivered)
	}
	if m.observer != nil {
		m.observer.FrameDelivered(v.id, f, corrupted)
	}
	v.meter.AddRx(bits)
	if v.handler != nil {
		v.handler(f)
	}
}

// collidedAt reports whether any other transmission audible at id
// overlapped t in time.
func (m *Medium) collidedAt(t *transmission, id NodeID) bool {
	for _, o := range m.onAir {
		if o == t || o.from == t.from {
			continue
		}
		if o.start >= t.end || o.end <= t.start {
			continue
		}
		if m.topo.Connected(o.from, id) {
			return true
		}
	}
	return false
}

// prune drops transmissions that can no longer overlap anything delivered
// at or after the given start time, recycling them onto the freelist.
// Dropped records are collected inside the in-place filter — the tail
// slots after compaction may alias kept entries, so they are only
// cleared, never recycled.
func (m *Medium) prune(before time.Duration) {
	kept := m.onAir[:0]
	for _, o := range m.onAir {
		if o.end > before {
			kept = append(kept, o)
		} else {
			o.frame = Frame{} // drop the payload reference before reuse
			m.free = append(m.free, o)
		}
	}
	for i := len(kept); i < len(m.onAir); i++ {
		m.onAir[i] = nil
	}
	m.onAir = kept
}
