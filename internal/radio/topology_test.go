package radio

import (
	"math"
	"testing"
)

func TestFullMesh(t *testing.T) {
	var fm FullMesh
	if !fm.Connected(1, 2) || !fm.Connected(2, 1) {
		t.Error("full mesh should connect distinct nodes")
	}
	if fm.Connected(3, 3) {
		t.Error("full mesh should not self-connect")
	}
}

func TestGraphSymmetricLinks(t *testing.T) {
	g := NewGraph()
	g.SetLink(1, 2, true)
	if !g.Connected(1, 2) || !g.Connected(2, 1) {
		t.Error("link 1-2 should be symmetric")
	}
	if g.Connected(1, 3) {
		t.Error("unlinked pair reported connected")
	}
	g.SetLink(2, 1, false)
	if g.Connected(1, 2) {
		t.Error("removed link still connected")
	}
}

func TestGraphSelfLinkIgnored(t *testing.T) {
	g := NewGraph()
	g.SetLink(5, 5, true)
	if g.Connected(5, 5) {
		t.Error("self link should be impossible")
	}
}

func TestGraphHiddenTerminal(t *testing.T) {
	// The paper's footnote-3 scenario: A and C both reach B but not each
	// other.
	g := NewGraph()
	g.SetLink(1, 2, true)
	g.SetLink(2, 3, true)
	if !g.Connected(1, 2) || !g.Connected(3, 2) {
		t.Fatal("A-B and C-B should be connected")
	}
	if g.Connected(1, 3) {
		t.Error("hidden terminals A and C should not hear each other")
	}
}

func TestUnitDisk(t *testing.T) {
	u := NewUnitDisk(10)
	u.Place(1, Point{X: 0, Y: 0})
	u.Place(2, Point{X: 6, Y: 8}) // distance exactly 10
	u.Place(3, Point{X: 20, Y: 0})
	if !u.Connected(1, 2) {
		t.Error("nodes at exactly Range should be connected")
	}
	if u.Connected(1, 3) {
		t.Error("nodes beyond Range reported connected")
	}
	if u.Connected(1, 4) {
		t.Error("unplaced node reported connected")
	}
	if u.Connected(1, 1) {
		t.Error("self-connection reported")
	}
}

func TestUnitDiskMobility(t *testing.T) {
	u := NewUnitDisk(5)
	u.Place(1, Point{})
	u.Place(2, Point{X: 100})
	if u.Connected(1, 2) {
		t.Fatal("distant nodes connected")
	}
	u.Place(2, Point{X: 3})
	if !u.Connected(1, 2) {
		t.Error("node moved into range but not connected")
	}
	p, ok := u.Position(2)
	if !ok || p.X != 3 {
		t.Errorf("Position(2) = %v, %v", p, ok)
	}
	if _, ok := u.Position(9); ok {
		t.Error("Position of unplaced node reported ok")
	}
}

func TestGraphRemove(t *testing.T) {
	g := NewGraph()
	g.SetLink(1, 2, true)
	g.SetLink(2, 3, true)
	g.SetLink(3, 4, true)
	g.Remove(2)
	if g.Connected(1, 2) || g.Connected(2, 3) {
		t.Error("links touching removed node survive")
	}
	if !g.Connected(3, 4) {
		t.Error("unrelated link removed")
	}
	if len(g.links) != 1 {
		t.Errorf("link state not freed: %d entries, want 1", len(g.links))
	}
}

func TestUnitDiskRemove(t *testing.T) {
	u := NewUnitDisk(10)
	u.Place(1, Point{})
	u.Place(2, Point{X: 5})
	if !u.Connected(1, 2) {
		t.Fatal("setup: nodes should connect")
	}
	u.Remove(2)
	if u.Connected(1, 2) {
		t.Error("removed node still connected")
	}
	if _, ok := u.Position(2); ok {
		t.Error("removed node still has a position")
	}
	if u.Len() != 1 {
		t.Errorf("Len = %d, want 1", u.Len())
	}
	if got := u.Neighbors(1); len(got) != 0 {
		t.Errorf("Neighbors(1) = %v after removal, want none", got)
	}
	u.Remove(2) // removing twice is a no-op
	u.Place(2, Point{X: 5})
	if !u.Connected(1, 2) {
		t.Error("re-placed node not connected")
	}
}

// TestUnitDiskNeighborsMatchesConnected is the grid's correctness
// invariant: for every pair, membership in Neighbors must equal Connected,
// including after moves that cross cells and nodes sitting on negative
// coordinates and cell boundaries.
func TestUnitDiskNeighborsMatchesConnected(t *testing.T) {
	u := NewUnitDisk(7)
	pts := []Point{
		{0, 0}, {6.9, 0}, {7.1, 0}, {-3, -3}, {-14, 2}, {21, 21},
		{7, 7}, {13.9, 0}, {0, -7}, {3.5, 3.5},
	}
	for i, p := range pts {
		u.Place(NodeID(i), p)
	}
	// Move a few nodes across cell boundaries.
	u.Place(2, Point{X: -6, Y: 0})
	u.Place(5, Point{X: 1, Y: 1})
	u.Remove(8)
	check := func() {
		t.Helper()
		for id := NodeID(0); id < NodeID(len(pts)); id++ {
			nbrs := u.Neighbors(id)
			inNbrs := make(map[NodeID]bool, len(nbrs))
			for i, n := range nbrs {
				inNbrs[n] = true
				if i > 0 && nbrs[i-1] >= n {
					t.Fatalf("Neighbors(%d) = %v not in ascending order", id, nbrs)
				}
			}
			if got, want := len(nbrs), u.NeighborCount(id); got != want {
				t.Errorf("NeighborCount(%d) = %d, Neighbors len = %d", id, want, got)
			}
			for other := NodeID(0); other < NodeID(len(pts)); other++ {
				if got, want := inNbrs[other], u.Connected(id, other); got != want {
					t.Errorf("Neighbors(%d) contains %d = %v, Connected = %v", id, other, got, want)
				}
			}
		}
	}
	check()
	// Mutating Range directly must not desync the grid: it rebuilds lazily.
	u.Range = 15
	check()
	u.Range = 2
	check()
}

func TestPointDist(t *testing.T) {
	d := Point{X: 1, Y: 2}.Dist(Point{X: 4, Y: 6})
	if math.Abs(d-5) > 1e-12 {
		t.Errorf("Dist = %v, want 5", d)
	}
}
