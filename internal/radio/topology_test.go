package radio

import (
	"math"
	"testing"
)

func TestFullMesh(t *testing.T) {
	var fm FullMesh
	if !fm.Connected(1, 2) || !fm.Connected(2, 1) {
		t.Error("full mesh should connect distinct nodes")
	}
	if fm.Connected(3, 3) {
		t.Error("full mesh should not self-connect")
	}
}

func TestGraphSymmetricLinks(t *testing.T) {
	g := NewGraph()
	g.SetLink(1, 2, true)
	if !g.Connected(1, 2) || !g.Connected(2, 1) {
		t.Error("link 1-2 should be symmetric")
	}
	if g.Connected(1, 3) {
		t.Error("unlinked pair reported connected")
	}
	g.SetLink(2, 1, false)
	if g.Connected(1, 2) {
		t.Error("removed link still connected")
	}
}

func TestGraphSelfLinkIgnored(t *testing.T) {
	g := NewGraph()
	g.SetLink(5, 5, true)
	if g.Connected(5, 5) {
		t.Error("self link should be impossible")
	}
}

func TestGraphHiddenTerminal(t *testing.T) {
	// The paper's footnote-3 scenario: A and C both reach B but not each
	// other.
	g := NewGraph()
	g.SetLink(1, 2, true)
	g.SetLink(2, 3, true)
	if !g.Connected(1, 2) || !g.Connected(3, 2) {
		t.Fatal("A-B and C-B should be connected")
	}
	if g.Connected(1, 3) {
		t.Error("hidden terminals A and C should not hear each other")
	}
}

func TestUnitDisk(t *testing.T) {
	u := NewUnitDisk(10)
	u.Place(1, Point{X: 0, Y: 0})
	u.Place(2, Point{X: 6, Y: 8}) // distance exactly 10
	u.Place(3, Point{X: 20, Y: 0})
	if !u.Connected(1, 2) {
		t.Error("nodes at exactly Range should be connected")
	}
	if u.Connected(1, 3) {
		t.Error("nodes beyond Range reported connected")
	}
	if u.Connected(1, 4) {
		t.Error("unplaced node reported connected")
	}
	if u.Connected(1, 1) {
		t.Error("self-connection reported")
	}
}

func TestUnitDiskMobility(t *testing.T) {
	u := NewUnitDisk(5)
	u.Place(1, Point{})
	u.Place(2, Point{X: 100})
	if u.Connected(1, 2) {
		t.Fatal("distant nodes connected")
	}
	u.Place(2, Point{X: 3})
	if !u.Connected(1, 2) {
		t.Error("node moved into range but not connected")
	}
	p, ok := u.Position(2)
	if !ok || p.X != 3 {
		t.Errorf("Position(2) = %v, %v", p, ok)
	}
	if _, ok := u.Position(9); ok {
		t.Error("Position of unplaced node reported ok")
	}
}

func TestGraphRemove(t *testing.T) {
	g := NewGraph()
	g.SetLink(1, 2, true)
	g.SetLink(2, 3, true)
	g.SetLink(3, 4, true)
	g.Remove(2)
	if g.Connected(1, 2) || g.Connected(2, 3) {
		t.Error("links touching removed node survive")
	}
	if !g.Connected(3, 4) {
		t.Error("unrelated link removed")
	}
	if len(g.links) != 1 {
		t.Errorf("link state not freed: %d entries, want 1", len(g.links))
	}
}

func TestUnitDiskRemove(t *testing.T) {
	u := NewUnitDisk(10)
	u.Place(1, Point{})
	u.Place(2, Point{X: 5})
	if !u.Connected(1, 2) {
		t.Fatal("setup: nodes should connect")
	}
	u.Remove(2)
	if u.Connected(1, 2) {
		t.Error("removed node still connected")
	}
	if _, ok := u.Position(2); ok {
		t.Error("removed node still has a position")
	}
	if u.Len() != 1 {
		t.Errorf("Len = %d, want 1", u.Len())
	}
	if got := u.Neighbors(1); len(got) != 0 {
		t.Errorf("Neighbors(1) = %v after removal, want none", got)
	}
	u.Remove(2) // removing twice is a no-op
	u.Place(2, Point{X: 5})
	if !u.Connected(1, 2) {
		t.Error("re-placed node not connected")
	}
}

// TestUnitDiskNeighborsMatchesConnected is the grid's correctness
// invariant: for every pair, membership in Neighbors must equal Connected,
// including after moves that cross cells and nodes sitting on negative
// coordinates and cell boundaries.
func TestUnitDiskNeighborsMatchesConnected(t *testing.T) {
	u := NewUnitDisk(7)
	pts := []Point{
		{0, 0}, {6.9, 0}, {7.1, 0}, {-3, -3}, {-14, 2}, {21, 21},
		{7, 7}, {13.9, 0}, {0, -7}, {3.5, 3.5},
	}
	for i, p := range pts {
		u.Place(NodeID(i), p)
	}
	// Move a few nodes across cell boundaries.
	u.Place(2, Point{X: -6, Y: 0})
	u.Place(5, Point{X: 1, Y: 1})
	u.Remove(8)
	check := func() {
		t.Helper()
		for id := NodeID(0); id < NodeID(len(pts)); id++ {
			nbrs := u.Neighbors(id)
			inNbrs := make(map[NodeID]bool, len(nbrs))
			for i, n := range nbrs {
				inNbrs[n] = true
				if i > 0 && nbrs[i-1] >= n {
					t.Fatalf("Neighbors(%d) = %v not in ascending order", id, nbrs)
				}
			}
			if got, want := len(nbrs), u.NeighborCount(id); got != want {
				t.Errorf("NeighborCount(%d) = %d, Neighbors len = %d", id, want, got)
			}
			for other := NodeID(0); other < NodeID(len(pts)); other++ {
				if got, want := inNbrs[other], u.Connected(id, other); got != want {
					t.Errorf("Neighbors(%d) contains %d = %v, Connected = %v", id, other, got, want)
				}
			}
		}
	}
	check()
	// Mutating Range directly must not desync the grid: it rebuilds lazily.
	u.Range = 15
	check()
	u.Range = 2
	check()
}

// TestUnitDiskMoveAll: the batch move must be equivalent to a sequence of
// Place calls — same positions, same grid (checked through Neighbors) —
// including cell crossings, first-time placements, duplicate IDs and a
// stale grid from a direct Range mutation.
func TestUnitDiskMoveAll(t *testing.T) {
	seq := NewUnitDisk(7)
	bat := NewUnitDisk(7)
	init := []Point{{0, 0}, {3, 4}, {10, 10}, {-5, 2}, {6.9, 0}}
	for i, p := range init {
		seq.Place(NodeID(i), p)
		bat.Place(NodeID(i), p)
	}
	moves := []Placement{
		{ID: 0, At: Point{X: 20, Y: 20}},  // cell crossing
		{ID: 1, At: Point{X: 3.5, Y: 4}},  // within-cell move
		{ID: 5, At: Point{X: 1, Y: 1}},    // first placement via batch
		{ID: 0, At: Point{X: 2, Y: 2}},    // duplicate ID: last wins
		{ID: 3, At: Point{X: -12, Y: -1}}, // negative-coordinate crossing
	}
	bat.Range = 9 // stale grid: MoveAll must resync before indexing
	seq.Range = 9
	for _, m := range moves {
		seq.Place(m.ID, m.At)
	}
	bat.MoveAll(moves)
	for id := NodeID(0); id <= 5; id++ {
		sp, sok := seq.Position(id)
		bp, bok := bat.Position(id)
		if sok != bok || sp != bp {
			t.Errorf("node %d: sequential (%v,%v) vs batch (%v,%v)", id, sp, sok, bp, bok)
		}
		sn, bn := seq.Neighbors(id), bat.Neighbors(id)
		if len(sn) != len(bn) {
			t.Fatalf("node %d: neighbors %v vs %v", id, sn, bn)
		}
		for i := range sn {
			if sn[i] != bn[i] {
				t.Fatalf("node %d: neighbors %v vs %v", id, sn, bn)
			}
		}
	}
}

// TestUnitDiskNeighborsAppend: the append form must extend the given
// buffer in place, sort only the appended region, and agree with
// Neighbors; an unplaced node appends nothing.
func TestUnitDiskNeighborsAppend(t *testing.T) {
	u := NewUnitDisk(10)
	for i, p := range []Point{{0, 0}, {3, 0}, {6, 0}, {9, 0}, {30, 30}} {
		u.Place(NodeID(i), p)
	}
	prefix := []NodeID{99, 98} // must survive untouched and unsorted
	out := u.NeighborsAppend(1, prefix)
	if out[0] != 99 || out[1] != 98 {
		t.Fatalf("prefix disturbed: %v", out)
	}
	got := out[2:]
	want := u.Neighbors(1)
	if len(got) != len(want) {
		t.Fatalf("NeighborsAppend %v vs Neighbors %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NeighborsAppend %v vs Neighbors %v", got, want)
		}
	}
	if more := u.NeighborsAppend(77, out); len(more) != len(out) {
		t.Errorf("unplaced node appended %d entries", len(more)-len(out))
	}
	// Reuse without reallocation: a second query into the same buffer.
	buf := out[:0]
	buf = u.NeighborsAppend(0, buf)
	if len(buf) != u.NeighborCount(0) {
		t.Errorf("reused buffer query returned %d, want %d", len(buf), u.NeighborCount(0))
	}
}

func TestPointDist(t *testing.T) {
	d := Point{X: 1, Y: 2}.Dist(Point{X: 4, Y: 6})
	if math.Abs(d-5) > 1e-12 {
		t.Errorf("Dist = %v, want 5", d)
	}
}
