package radio

import (
	"math"
	"testing"
)

func TestFullMesh(t *testing.T) {
	var fm FullMesh
	if !fm.Connected(1, 2) || !fm.Connected(2, 1) {
		t.Error("full mesh should connect distinct nodes")
	}
	if fm.Connected(3, 3) {
		t.Error("full mesh should not self-connect")
	}
}

func TestGraphSymmetricLinks(t *testing.T) {
	g := NewGraph()
	g.SetLink(1, 2, true)
	if !g.Connected(1, 2) || !g.Connected(2, 1) {
		t.Error("link 1-2 should be symmetric")
	}
	if g.Connected(1, 3) {
		t.Error("unlinked pair reported connected")
	}
	g.SetLink(2, 1, false)
	if g.Connected(1, 2) {
		t.Error("removed link still connected")
	}
}

func TestGraphSelfLinkIgnored(t *testing.T) {
	g := NewGraph()
	g.SetLink(5, 5, true)
	if g.Connected(5, 5) {
		t.Error("self link should be impossible")
	}
}

func TestGraphHiddenTerminal(t *testing.T) {
	// The paper's footnote-3 scenario: A and C both reach B but not each
	// other.
	g := NewGraph()
	g.SetLink(1, 2, true)
	g.SetLink(2, 3, true)
	if !g.Connected(1, 2) || !g.Connected(3, 2) {
		t.Fatal("A-B and C-B should be connected")
	}
	if g.Connected(1, 3) {
		t.Error("hidden terminals A and C should not hear each other")
	}
}

func TestUnitDisk(t *testing.T) {
	u := NewUnitDisk(10)
	u.Place(1, Point{X: 0, Y: 0})
	u.Place(2, Point{X: 6, Y: 8}) // distance exactly 10
	u.Place(3, Point{X: 20, Y: 0})
	if !u.Connected(1, 2) {
		t.Error("nodes at exactly Range should be connected")
	}
	if u.Connected(1, 3) {
		t.Error("nodes beyond Range reported connected")
	}
	if u.Connected(1, 4) {
		t.Error("unplaced node reported connected")
	}
	if u.Connected(1, 1) {
		t.Error("self-connection reported")
	}
}

func TestUnitDiskMobility(t *testing.T) {
	u := NewUnitDisk(5)
	u.Place(1, Point{})
	u.Place(2, Point{X: 100})
	if u.Connected(1, 2) {
		t.Fatal("distant nodes connected")
	}
	u.Place(2, Point{X: 3})
	if !u.Connected(1, 2) {
		t.Error("node moved into range but not connected")
	}
	p, ok := u.Position(2)
	if !ok || p.X != 3 {
		t.Errorf("Position(2) = %v, %v", p, ok)
	}
	if _, ok := u.Position(9); ok {
		t.Error("Position of unplaced node reported ok")
	}
}

func TestPointDist(t *testing.T) {
	d := Point{X: 1, Y: 2}.Dist(Point{X: 4, Y: 6})
	if math.Abs(d-5) > 1e-12 {
		t.Errorf("Dist = %v, want 5", d)
	}
}
