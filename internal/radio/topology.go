package radio

import (
	"math"
)

// NodeID identifies a radio on a medium. IDs are assigned by the caller and
// carry no protocol meaning — that is the point of the paper: the wire
// formats under test never transmit them (except the static-addressing
// baseline, which does, and pays for it).
type NodeID int

// Topology decides which pairs of radios can hear each other. Connectivity
// may be asymmetric in general, but all provided implementations are
// symmetric.
type Topology interface {
	// Connected reports whether a transmission from 'from' reaches 'to'.
	Connected(from, to NodeID) bool
}

// FullMesh connects every pair of nodes — the paper's Section 5 testbed
// ("all the radios were well in range of each other").
type FullMesh struct{}

// Connected always reports true for distinct nodes.
func (FullMesh) Connected(from, to NodeID) bool { return from != to }

// Graph is an explicit adjacency topology. Use it to construct
// hidden-terminal scenarios: A—B and B—C connected, A—C not.
type Graph struct {
	links map[[2]NodeID]bool
}

// Remove severs every link touching id, freeing the topology state a
// churned-out node leaves behind.
func (g *Graph) Remove(id NodeID) {
	for key := range g.links {
		if key[0] == id || key[1] == id {
			delete(g.links, key)
		}
	}
}

// NewGraph returns a topology with no links.
func NewGraph() *Graph {
	return &Graph{links: make(map[[2]NodeID]bool)}
}

// SetLink adds or removes the symmetric link a—b.
func (g *Graph) SetLink(a, b NodeID, connected bool) {
	if a == b {
		return
	}
	key := linkKey(a, b)
	if connected {
		g.links[key] = true
	} else {
		delete(g.links, key)
	}
}

// Connected reports whether the symmetric link exists.
func (g *Graph) Connected(from, to NodeID) bool {
	if from == to {
		return false
	}
	return g.links[linkKey(from, to)]
}

func linkKey(a, b NodeID) [2]NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]NodeID{a, b}
}

// Point is a 2-D position for the unit-disk topology.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance to q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// UnitDisk connects nodes within Range of each other — the standard
// sensor-network propagation abstraction. Positions may be changed at any
// time (node mobility, one of the paper's "dynamics").
//
// Placed nodes are also indexed in a spatial grid with cells the size of
// the radio range, maintained incrementally on Place and Remove, so
// Neighbors answers range queries by scanning the 3×3 cell block around a
// node instead of the whole population.
type UnitDisk struct {
	Range     float64
	positions map[NodeID]Point

	// cellSize is the grid pitch the cells map was built with. It tracks
	// Range lazily: mutating Range directly invalidates the grid, which is
	// rebuilt on the next Place/Remove/Neighbors.
	cellSize float64
	cells    map[cellKey]map[NodeID]struct{}
}

// cellKey addresses one grid cell.
type cellKey struct{ x, y int32 }

// NewUnitDisk returns an empty unit-disk topology with the given radio range.
func NewUnitDisk(radioRange float64) *UnitDisk {
	u := &UnitDisk{Range: radioRange, positions: make(map[NodeID]Point)}
	u.rebuildGrid()
	return u
}

// pitch returns the grid pitch for the current range; a degenerate range
// still yields usable (if pointless) cells.
func (u *UnitDisk) pitch() float64 {
	if u.Range > 0 {
		return u.Range
	}
	return 1
}

// rebuildGrid reindexes every placed node, called when the pitch changes.
func (u *UnitDisk) rebuildGrid() {
	u.cellSize = u.pitch()
	u.cells = make(map[cellKey]map[NodeID]struct{})
	for id, p := range u.positions {
		u.gridAdd(id, p)
	}
}

// syncGrid rebuilds the index iff Range was mutated since the last build.
func (u *UnitDisk) syncGrid() {
	if u.cellSize != u.pitch() {
		u.rebuildGrid()
	}
}

func (u *UnitDisk) cellOf(p Point) cellKey {
	return cellKey{int32(math.Floor(p.X / u.cellSize)), int32(math.Floor(p.Y / u.cellSize))}
}

func (u *UnitDisk) gridAdd(id NodeID, p Point) {
	key := u.cellOf(p)
	cell, ok := u.cells[key]
	if !ok {
		cell = make(map[NodeID]struct{})
		u.cells[key] = cell
	}
	cell[id] = struct{}{}
}

func (u *UnitDisk) gridRemove(id NodeID, p Point) {
	key := u.cellOf(p)
	if cell, ok := u.cells[key]; ok {
		delete(cell, id)
		if len(cell) == 0 {
			delete(u.cells, key)
		}
	}
}

// Place sets (or moves) a node's position, updating the grid index
// incrementally — a move within one cell costs two map lookups.
func (u *UnitDisk) Place(id NodeID, p Point) {
	u.syncGrid()
	if old, ok := u.positions[id]; ok {
		if u.cellOf(old) == u.cellOf(p) {
			u.positions[id] = p
			return
		}
		u.gridRemove(id, old)
	}
	u.positions[id] = p
	u.gridAdd(id, p)
}

// Placement pairs a node with a position for batch moves.
type Placement struct {
	ID NodeID
	At Point
}

// MoveAll applies a batch of placements: the mobility-step fast path for
// large populations. The grid is synchronized once up front, then every
// entry takes Place's incremental path — a move within one cell costs two
// map operations, a cell crossing four. Entries are applied in order, so
// a duplicate ID ends up at its last position.
func (u *UnitDisk) MoveAll(batch []Placement) {
	u.syncGrid()
	for _, m := range batch {
		if old, ok := u.positions[m.ID]; ok {
			if u.cellOf(old) == u.cellOf(m.At) {
				u.positions[m.ID] = m.At
				continue
			}
			u.gridRemove(m.ID, old)
		}
		u.positions[m.ID] = m.At
		u.gridAdd(m.ID, m.At)
	}
}

// Remove forgets a node's position and frees its grid slot. A node that
// has churned out of the network keeps no topology state; Connected
// reports false for it until the next Place.
func (u *UnitDisk) Remove(id NodeID) {
	u.syncGrid()
	if p, ok := u.positions[id]; ok {
		u.gridRemove(id, p)
		delete(u.positions, id)
	}
}

// Position returns the node's position and whether it has been placed.
func (u *UnitDisk) Position(id NodeID) (Point, bool) {
	p, ok := u.positions[id]
	return p, ok
}

// Len reports the number of placed nodes.
func (u *UnitDisk) Len() int { return len(u.positions) }

// Connected reports whether both nodes are placed and within range.
func (u *UnitDisk) Connected(from, to NodeID) bool {
	if from == to {
		return false
	}
	a, okA := u.positions[from]
	b, okB := u.positions[to]
	return okA && okB && a.Dist(b) <= u.Range
}

// Neighbors returns the placed nodes within range of id, in ascending ID
// order (deterministic despite the map-backed grid). It scans only the
// 3×3 cell block around the node's cell; with cells the size of the radio
// range that block covers every possible neighbor.
func (u *UnitDisk) Neighbors(id NodeID) []NodeID {
	out := u.NeighborsAppend(id, nil)
	if len(out) == 0 {
		return nil
	}
	return out
}

// NeighborsAppend appends id's in-range neighbors to out and returns the
// extended slice, sorted ascending over the appended region. With a
// caller-reused buffer the query is allocation-free — the tile-scoped
// form the sharded core's per-window neighbor scans use.
func (u *UnitDisk) NeighborsAppend(id NodeID, out []NodeID) []NodeID {
	u.syncGrid()
	p, ok := u.positions[id]
	if !ok {
		return out
	}
	base := len(out)
	center := u.cellOf(p)
	for dx := int32(-1); dx <= 1; dx++ {
		for dy := int32(-1); dy <= 1; dy++ {
			cell, ok := u.cells[cellKey{center.x + dx, center.y + dy}]
			if !ok {
				continue
			}
			for other := range cell {
				if other == id {
					continue
				}
				if q := u.positions[other]; p.Dist(q) <= u.Range {
					out = append(out, other)
				}
			}
		}
	}
	// Insertion sort: neighbor sets are small (tens of nodes) and
	// sort.Slice's closure would be this query's only allocation.
	fresh := out[base:]
	for i := 1; i < len(fresh); i++ {
		for j := i; j > 0 && fresh[j] < fresh[j-1]; j-- {
			fresh[j], fresh[j-1] = fresh[j-1], fresh[j]
		}
	}
	return out
}

// NeighborCount reports how many placed nodes are within range of id,
// without allocating the sorted slice Neighbors returns.
func (u *UnitDisk) NeighborCount(id NodeID) int {
	u.syncGrid()
	p, ok := u.positions[id]
	if !ok {
		return 0
	}
	center := u.cellOf(p)
	n := 0
	for dx := int32(-1); dx <= 1; dx++ {
		for dy := int32(-1); dy <= 1; dy++ {
			cell, ok := u.cells[cellKey{center.x + dx, center.y + dy}]
			if !ok {
				continue
			}
			for other := range cell {
				if other == id {
					continue
				}
				if q := u.positions[other]; p.Dist(q) <= u.Range {
					n++
				}
			}
		}
	}
	return n
}
