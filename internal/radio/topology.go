package radio

import "math"

// NodeID identifies a radio on a medium. IDs are assigned by the caller and
// carry no protocol meaning — that is the point of the paper: the wire
// formats under test never transmit them (except the static-addressing
// baseline, which does, and pays for it).
type NodeID int

// Topology decides which pairs of radios can hear each other. Connectivity
// may be asymmetric in general, but all provided implementations are
// symmetric.
type Topology interface {
	// Connected reports whether a transmission from 'from' reaches 'to'.
	Connected(from, to NodeID) bool
}

// FullMesh connects every pair of nodes — the paper's Section 5 testbed
// ("all the radios were well in range of each other").
type FullMesh struct{}

// Connected always reports true for distinct nodes.
func (FullMesh) Connected(from, to NodeID) bool { return from != to }

// Graph is an explicit adjacency topology. Use it to construct
// hidden-terminal scenarios: A—B and B—C connected, A—C not.
type Graph struct {
	links map[[2]NodeID]bool
}

// NewGraph returns a topology with no links.
func NewGraph() *Graph {
	return &Graph{links: make(map[[2]NodeID]bool)}
}

// SetLink adds or removes the symmetric link a—b.
func (g *Graph) SetLink(a, b NodeID, connected bool) {
	if a == b {
		return
	}
	key := linkKey(a, b)
	if connected {
		g.links[key] = true
	} else {
		delete(g.links, key)
	}
}

// Connected reports whether the symmetric link exists.
func (g *Graph) Connected(from, to NodeID) bool {
	if from == to {
		return false
	}
	return g.links[linkKey(from, to)]
}

func linkKey(a, b NodeID) [2]NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]NodeID{a, b}
}

// Point is a 2-D position for the unit-disk topology.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance to q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// UnitDisk connects nodes within Range of each other — the standard
// sensor-network propagation abstraction. Positions may be changed at any
// time (node mobility, one of the paper's "dynamics").
type UnitDisk struct {
	Range     float64
	positions map[NodeID]Point
}

// NewUnitDisk returns an empty unit-disk topology with the given radio range.
func NewUnitDisk(radioRange float64) *UnitDisk {
	return &UnitDisk{Range: radioRange, positions: make(map[NodeID]Point)}
}

// Place sets (or moves) a node's position.
func (u *UnitDisk) Place(id NodeID, p Point) {
	u.positions[id] = p
}

// Position returns the node's position and whether it has been placed.
func (u *UnitDisk) Position(id NodeID) (Point, bool) {
	p, ok := u.positions[id]
	return p, ok
}

// Connected reports whether both nodes are placed and within range.
func (u *UnitDisk) Connected(from, to NodeID) bool {
	if from == to {
		return false
	}
	a, okA := u.positions[from]
	b, okB := u.positions[to]
	return okA && okB && a.Dist(b) <= u.Range
}
