package radio

import (
	"errors"
	"testing"
	"time"

	"retri/internal/sim"
	"retri/internal/xrand"
)

// newTestMedium builds a medium with handy defaults for tests.
func newTestMedium(t *testing.T, topo Topology, p Params) (*sim.Engine, *Medium) {
	t.Helper()
	eng := sim.NewEngine()
	rng := xrand.NewSource(1).Stream("radio-test", t.Name())
	return eng, NewMedium(eng, topo, p, rng)
}

func TestSimpleDelivery(t *testing.T) {
	eng, m := newTestMedium(t, FullMesh{}, DefaultParams())
	a := m.MustAttach(1)
	b := m.MustAttach(2)
	var got []byte
	b.SetHandler(func(f Frame) { got = append([]byte{}, f.Payload...) })
	if err := a.Send([]byte("hello"), 0); err != nil {
		t.Fatalf("Send: %v", err)
	}
	eng.Run()
	if string(got) != "hello" {
		t.Errorf("received %q, want %q", got, "hello")
	}
	c := m.Counters()
	if c.Sent != 1 || c.Delivered != 1 {
		t.Errorf("counters = %+v, want Sent=1 Delivered=1", c)
	}
}

func TestBroadcastReachesAllInRange(t *testing.T) {
	eng, m := newTestMedium(t, FullMesh{}, DefaultParams())
	a := m.MustAttach(1)
	heard := make(map[NodeID]bool)
	for id := NodeID(2); id <= 5; id++ {
		id := id
		m.MustAttach(id).SetHandler(func(Frame) { heard[id] = true })
	}
	if err := a.Send([]byte{0xAB}, 0); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(heard) != 4 {
		t.Errorf("heard by %d receivers, want 4", len(heard))
	}
	if heard[1] {
		t.Error("sender heard its own frame")
	}
}

func TestTopologyLimitsDelivery(t *testing.T) {
	g := NewGraph()
	g.SetLink(1, 2, true)
	eng, m := newTestMedium(t, g, DefaultParams())
	a := m.MustAttach(1)
	b := m.MustAttach(2)
	c := m.MustAttach(3)
	var bGot, cGot int
	b.SetHandler(func(Frame) { bGot++ })
	c.SetHandler(func(Frame) { cGot++ })
	if err := a.Send([]byte{1}, 0); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if bGot != 1 || cGot != 0 {
		t.Errorf("b=%d c=%d, want 1, 0", bGot, cGot)
	}
}

func TestFrameTooLarge(t *testing.T) {
	_, m := newTestMedium(t, FullMesh{}, DefaultParams())
	a := m.MustAttach(1)
	err := a.Send(make([]byte, 28), 0)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("Send oversized frame err = %v, want ErrFrameTooLarge", err)
	}
}

func TestDuplicateAttach(t *testing.T) {
	_, m := newTestMedium(t, FullMesh{}, DefaultParams())
	if _, err := m.Attach(1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Attach(1); !errors.Is(err, ErrDuplicateNode) {
		t.Errorf("second Attach err = %v, want ErrDuplicateNode", err)
	}
	if m.Radio(1) == nil {
		t.Error("Radio(1) = nil after attach")
	}
	if m.Radio(9) != nil {
		t.Error("Radio(9) != nil for unattached id")
	}
}

func TestSendWhileDown(t *testing.T) {
	_, m := newTestMedium(t, FullMesh{}, DefaultParams())
	a := m.MustAttach(1)
	a.SetUp(false)
	if err := a.Send([]byte{1}, 0); !errors.Is(err, ErrRadioDown) {
		t.Errorf("Send while down err = %v, want ErrRadioDown", err)
	}
}

func TestDownReceiverMissesFrame(t *testing.T) {
	eng, m := newTestMedium(t, FullMesh{}, DefaultParams())
	a := m.MustAttach(1)
	b := m.MustAttach(2)
	got := 0
	b.SetHandler(func(Frame) { got++ })
	b.SetUp(false)
	if err := a.Send([]byte{1}, 0); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if got != 0 {
		t.Error("down receiver got a frame")
	}
	if m.Counters().NotHeard != 1 {
		t.Errorf("NotHeard = %d, want 1", m.Counters().NotHeard)
	}
}

func TestNotListeningMissesFrame(t *testing.T) {
	eng, m := newTestMedium(t, FullMesh{}, DefaultParams())
	a := m.MustAttach(1)
	b := m.MustAttach(2)
	got := 0
	b.SetHandler(func(Frame) { got++ })
	b.SetListening(false)
	if err := a.Send([]byte{1}, 0); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if got != 0 {
		t.Error("non-listening receiver got a frame")
	}
}

func TestALOHACollision(t *testing.T) {
	p := DefaultParams()
	p.Access = ALOHA
	eng, m := newTestMedium(t, FullMesh{}, p)
	a := m.MustAttach(1)
	b := m.MustAttach(2)
	c := m.MustAttach(3)
	got := 0
	c.SetHandler(func(Frame) { got++ })
	// Two simultaneous ALOHA transmissions of equal length collide at C.
	if err := a.Send([]byte{1, 2, 3}, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Send([]byte{4, 5, 6}, 0); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if got != 0 {
		t.Errorf("receiver decoded %d frames out of a collision", got)
	}
	if m.Counters().Collided == 0 {
		t.Error("no collisions counted")
	}
}

func TestCSMADefersSecondSender(t *testing.T) {
	eng, m := newTestMedium(t, FullMesh{}, DefaultParams())
	a := m.MustAttach(1)
	b := m.MustAttach(2)
	c := m.MustAttach(3)
	got := 0
	c.SetHandler(func(Frame) { got++ })
	if err := a.Send([]byte{1, 2, 3}, 0); err != nil {
		t.Fatal(err)
	}
	// B senses A's carrier (both in range of each other) and defers.
	eng.RunFor(time.Microsecond)
	if err := b.Send([]byte{4, 5, 6}, 0); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if got != 2 {
		t.Errorf("receiver decoded %d frames, want 2 (CSMA should avoid the collision)", got)
	}
	if m.Counters().Backoffs == 0 {
		t.Error("no backoffs counted")
	}
}

func TestHiddenTerminalCollides(t *testing.T) {
	// A-B, C-B connected; A and C cannot carrier-sense each other, so CSMA
	// does not help and their frames collide at B (paper footnote 3).
	g := NewGraph()
	g.SetLink(1, 2, true)
	g.SetLink(3, 2, true)
	eng, m := newTestMedium(t, g, DefaultParams())
	a := m.MustAttach(1)
	b := m.MustAttach(2)
	c := m.MustAttach(3)
	got := 0
	b.SetHandler(func(Frame) { got++ })
	if err := a.Send([]byte{1, 2, 3}, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Send([]byte{4, 5, 6}, 0); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if got != 0 {
		t.Errorf("B decoded %d frames despite hidden-terminal collision", got)
	}
	if m.Counters().Collided != 2 {
		t.Errorf("Collided = %d, want 2 (both frames destroyed at B)", m.Counters().Collided)
	}
}

func TestHalfDuplexMiss(t *testing.T) {
	p := DefaultParams()
	p.Access = ALOHA
	g := NewGraph()
	// A can hear B; B cannot hear... make it symmetric but time overlapped:
	// B transmits to C while A transmits to B.
	g.SetLink(1, 2, true)
	g.SetLink(2, 3, true)
	eng, m := newTestMedium(t, g, p)
	a := m.MustAttach(1)
	b := m.MustAttach(2)
	m.MustAttach(3)
	got := 0
	b.SetHandler(func(Frame) { got++ })
	if err := a.Send([]byte{1, 2, 3}, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Send([]byte{9, 9, 9}, 0); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if got != 0 {
		t.Errorf("B received while transmitting: got %d", got)
	}
	// Two misses: A's frame at B (B was transmitting), and B's frame at A
	// (A was transmitting). C still receives B's frame cleanly.
	if m.Counters().HalfDuplex != 2 {
		t.Errorf("HalfDuplex = %d, want 2", m.Counters().HalfDuplex)
	}
}

func TestRandomLoss(t *testing.T) {
	p := DefaultParams()
	p.FrameLoss = 0.5
	eng, m := newTestMedium(t, FullMesh{}, p)
	a := m.MustAttach(1)
	b := m.MustAttach(2)
	got := 0
	b.SetHandler(func(Frame) { got++ })
	const n = 400
	for i := 0; i < n; i++ {
		if err := a.Send([]byte{byte(i)}, 0); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if got < n/4 || got > 3*n/4 {
		t.Errorf("delivered %d/%d with 50%% loss, want roughly half", got, n)
	}
	if int(m.Counters().RandomLoss)+got != n {
		t.Errorf("RandomLoss (%d) + delivered (%d) != sent (%d)",
			m.Counters().RandomLoss, got, n)
	}
}

func TestQueueTransmitsInOrder(t *testing.T) {
	eng, m := newTestMedium(t, FullMesh{}, DefaultParams())
	a := m.MustAttach(1)
	b := m.MustAttach(2)
	var got []byte
	b.SetHandler(func(f Frame) { got = append(got, f.Payload[0]) })
	for i := byte(0); i < 10; i++ {
		if err := a.Send([]byte{i}, 0); err != nil {
			t.Fatal(err)
		}
	}
	if a.QueueLen() == 0 {
		t.Error("queue empty immediately after burst of sends")
	}
	eng.Run()
	if len(got) != 10 {
		t.Fatalf("received %d frames, want 10", len(got))
	}
	for i := byte(0); i < 10; i++ {
		if got[i] != i {
			t.Fatalf("frames out of order: %v", got)
		}
	}
	if !a.Idle() {
		t.Error("radio not idle after draining queue")
	}
}

func TestAirtimeScalesWithBits(t *testing.T) {
	_, m := newTestMedium(t, FullMesh{}, DefaultParams())
	short := m.AirtimeOf(8)
	long := m.AirtimeOf(216)
	if long <= short {
		t.Errorf("airtime(216 bits)=%v should exceed airtime(8 bits)=%v", long, short)
	}
	// 27 bytes + 40 bits overhead at 40kbps = 256/40000 s = 6.4ms.
	want := time.Duration(256.0 / 40e3 * float64(time.Second))
	if got := m.AirtimeOf(216); got != want {
		t.Errorf("AirtimeOf(216) = %v, want %v", got, want)
	}
}

func TestEnergyAccounting(t *testing.T) {
	eng, m := newTestMedium(t, FullMesh{}, DefaultParams())
	a := m.MustAttach(1)
	b := m.MustAttach(2)
	b.SetHandler(func(Frame) {})
	if err := a.Send([]byte{1, 2}, 0); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	eng.RunUntil(eng.Now() + time.Second)

	am, bm := a.Meter(), b.Meter()
	wantBits := int64(16 + 40) // payload + RPC overhead
	if am.TxBits != wantBits || am.TxFrames != 1 {
		t.Errorf("sender meter = %+v, want TxBits=%d", am, wantBits)
	}
	if bm.RxBits != wantBits || bm.RxFrames != 1 {
		t.Errorf("receiver meter = %+v, want RxBits=%d", bm, wantBits)
	}
	if bm.ListenFor < time.Second {
		t.Errorf("receiver ListenFor = %v, want >= 1s", bm.ListenFor)
	}
}

func TestListeningEnergyStopsWhenDisabled(t *testing.T) {
	eng, m := newTestMedium(t, FullMesh{}, DefaultParams())
	a := m.MustAttach(1)
	eng.RunUntil(time.Second)
	a.SetListening(false)
	eng.RunUntil(3 * time.Second)
	got := a.Meter().ListenFor
	if got != time.Second {
		t.Errorf("ListenFor = %v, want exactly 1s", got)
	}
	a.SetListening(true)
	eng.RunUntil(4 * time.Second)
	if got := a.Meter().ListenFor; got != 2*time.Second {
		t.Errorf("ListenFor after re-enable = %v, want 2s", got)
	}
}

func TestSetUpDropQueueAndResume(t *testing.T) {
	eng, m := newTestMedium(t, FullMesh{}, DefaultParams())
	a := m.MustAttach(1)
	b := m.MustAttach(2)
	got := 0
	b.SetHandler(func(Frame) { got++ })
	for i := 0; i < 5; i++ {
		if err := a.Send([]byte{1}, 0); err != nil {
			t.Fatal(err)
		}
	}
	a.SetUp(false)
	if a.QueueLen() != 0 {
		t.Errorf("queue not dropped on power-off: %d", a.QueueLen())
	}
	a.SetUp(true)
	if err := a.Send([]byte{7}, 0); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	// The first frame was already in flight when the radio went down (the
	// simplification documented in the package); at most it and the
	// post-restart frame arrive.
	if got > 2 {
		t.Errorf("received %d frames, want <= 2 after queue drop", got)
	}
}

func TestDefaultParamsFillDefaults(t *testing.T) {
	eng := sim.NewEngine()
	rng := xrand.NewSource(1).Stream("defaults")
	m := NewMedium(eng, FullMesh{}, Params{}, rng)
	p := m.Params()
	if p.MTU != 27 || p.BitRate != 40e3 || p.Access != CSMA || p.Contention <= 0 || p.SenseDelay <= 0 {
		t.Errorf("zero Params not defaulted: %+v", p)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (Counters, time.Duration) {
		eng := sim.NewEngine()
		rng := xrand.NewSource(77).Stream("det")
		p := DefaultParams()
		p.FrameLoss = 0.3
		m := NewMedium(eng, FullMesh{}, p, rng)
		senders := make([]*Radio, 4)
		for i := range senders {
			senders[i] = m.MustAttach(NodeID(i))
		}
		sink := m.MustAttach(99)
		sink.SetHandler(func(Frame) {})
		for round := 0; round < 20; round++ {
			for _, s := range senders {
				if err := s.Send([]byte{byte(round)}, 0); err != nil {
					t.Fatal(err)
				}
			}
			eng.Run()
		}
		return m.Counters(), eng.Now()
	}
	c1, t1 := run()
	c2, t2 := run()
	if c1 != c2 || t1 != t2 {
		t.Errorf("runs diverged:\n%+v @ %v\n%+v @ %v", c1, t1, c2, t2)
	}
}
