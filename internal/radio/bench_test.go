package radio

import (
	"io"
	"testing"

	"retri/internal/metrics"
	"retri/internal/sim"
	"retri/internal/trace"
	"retri/internal/xrand"
)

// benchWorkload drives one contention-heavy round-robin broadcast workload
// through a fresh medium with the given tracer. The workload is identical
// across variants so the benchmark isolates the tracer's cost in the radio
// hot path (Medium.emit on every send and reception outcome).
func benchWorkload(b *testing.B, tracer trace.Tracer) {
	b.Helper()
	b.ReportAllocs()
	payload := []byte{0xAB, 0xCD, 0xEF}
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		rng := xrand.NewSource(99).Stream("bench")
		m := NewMedium(eng, FullMesh{}, DefaultParams(), rng)
		m.SetTracer(tracer)
		radios := make([]*Radio, 6)
		for j := range radios {
			radios[j] = m.MustAttach(NodeID(j))
			radios[j].SetHandler(func(Frame) {})
		}
		for round := 0; round < 10; round++ {
			for _, r := range radios {
				if err := r.Send(payload, 0); err != nil {
					b.Fatal(err)
				}
			}
			eng.Run()
		}
	}
}

// BenchmarkMediumNoTracer is the disabled path: the observability layer's
// contract is that this stays within ~2% of a build without the layer at
// all (a nil check per emit site).
func BenchmarkMediumNoTracer(b *testing.B) {
	benchWorkload(b, nil)
}

// BenchmarkMediumMetricsBridge measures the capture path used per trial by
// the experiment layer: trace events folded straight into counters.
func BenchmarkMediumMetricsBridge(b *testing.B) {
	benchWorkload(b, metrics.FromTrace(metrics.NewRegistry()))
}

// BenchmarkMediumJSONWriter measures the heaviest tracer: every event
// serialized to JSON Lines (sunk into io.Discard so only encoding cost is
// measured, not disk).
func BenchmarkMediumJSONWriter(b *testing.B) {
	benchWorkload(b, trace.NewJSONWriter(io.Discard))
}
