package radio

import (
	"io"
	"math"
	"testing"

	"retri/internal/metrics"
	"retri/internal/sim"
	"retri/internal/trace"
	"retri/internal/xrand"
)

// benchWorkload drives one contention-heavy round-robin broadcast workload
// through a fresh medium with the given tracer. The workload is identical
// across variants so the benchmark isolates the tracer's cost in the radio
// hot path (Medium.emit on every send and reception outcome).
func benchWorkload(b *testing.B, tracer trace.Tracer) {
	benchWorkloadFate(b, tracer, nil)
}

// benchWorkloadFate is benchWorkload with a fate observer installed, so
// the span-tracing feed's cost is measurable against the same workload.
func benchWorkloadFate(b *testing.B, tracer trace.Tracer, fates FateObserver) {
	b.Helper()
	b.ReportAllocs()
	payload := []byte{0xAB, 0xCD, 0xEF}
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		rng := xrand.NewSource(99).Stream("bench")
		m := NewMedium(eng, FullMesh{}, DefaultParams(), rng)
		m.SetTracer(tracer)
		if fates != nil {
			m.SetFateObserver(fates)
		}
		radios := make([]*Radio, 6)
		for j := range radios {
			radios[j] = m.MustAttach(NodeID(j))
			radios[j].SetHandler(func(Frame) {})
		}
		for round := 0; round < 10; round++ {
			for _, r := range radios {
				if err := r.Send(payload, 0); err != nil {
					b.Fatal(err)
				}
			}
			eng.Run()
		}
	}
}

// BenchmarkMediumNoTracer is the disabled path: the observability layer's
// contract is that this stays within ~2% of a build without the layer at
// all (a nil check per emit site).
func BenchmarkMediumNoTracer(b *testing.B) {
	benchWorkload(b, nil)
}

// BenchmarkMediumMetricsBridge measures the capture path used per trial by
// the experiment layer: trace events folded straight into counters.
func BenchmarkMediumMetricsBridge(b *testing.B) {
	benchWorkload(b, metrics.FromTrace(metrics.NewRegistry()))
}

// BenchmarkMediumJSONWriter measures the heaviest tracer: every event
// serialized to JSON Lines (sunk into io.Discard so only encoding cost is
// measured, not disk).
func BenchmarkMediumJSONWriter(b *testing.B) {
	benchWorkload(b, trace.NewJSONWriter(io.Discard))
}

// nopFateObserver is interface dispatch with an empty body on every send
// and reception verdict — the span tracer's hook machinery minus the
// span tracer. It upper-bounds what the hook sites can cost a run that
// never asked for spans (the disabled path is one nil check per site,
// strictly cheaper than this dispatch).
type nopFateObserver struct{}

func (nopFateObserver) FrameSent(Frame)               {}
func (nopFateObserver) FrameFate(NodeID, Frame, Fate) {}

// BenchmarkMediumNilSpanPath is the disabled span path: no fate observer,
// so every fate site is a nil check. This is the configuration every
// flagless figure runs in; its trajectory is gated by benchcompare.
func BenchmarkMediumNilSpanPath(b *testing.B) {
	benchWorkloadFate(b, nil, nil)
}

// BenchmarkMediumFateObserver is the same workload with the fate feed
// dispatching (to a no-op), isolating the hook overhead itself.
func BenchmarkMediumFateObserver(b *testing.B) {
	benchWorkloadFate(b, nil, nopFateObserver{})
}

// benchDisk builds a populated unit disk for the mobility benchmarks:
// 256 nodes scattered over a 10×10-cell area.
func benchDisk() *UnitDisk {
	u := NewUnitDisk(10)
	rng := xrand.NewSource(7).Stream("disk")
	for i := 0; i < 256; i++ {
		u.Place(NodeID(i), Point{X: rng.Float64() * 100, Y: rng.Float64() * 100})
	}
	return u
}

// BenchmarkUnitDiskConnectedUnderMoves interleaves moves with connectivity
// checks — the dynamics workload. The spatial grid must keep Place cheap
// (two map ops within a cell) without slowing the Connected hot path the
// medium hits on every delivery.
func BenchmarkUnitDiskConnectedUnderMoves(b *testing.B) {
	u := benchDisk()
	rng := xrand.NewSource(7).Stream("moves")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := NodeID(rng.IntN(256))
		u.Place(id, Point{X: rng.Float64() * 100, Y: rng.Float64() * 100})
		for j := 0; j < 8; j++ {
			u.Connected(id, NodeID(rng.IntN(256)))
		}
	}
}

// BenchmarkUnitDiskNeighbors measures the grid-backed range query against
// the O(n) scan it replaces (every experiment-side omniscient density
// probe is one of these).
func BenchmarkUnitDiskNeighbors(b *testing.B) {
	u := benchDisk()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.Neighbors(NodeID(i % 256))
	}
}

// benchDisk100k is a 100_000-node world at massive-sweep density: ~500
// nodes per range-sized cell block region, range 10, area scaled to hold
// the population at the same spatial density the sharded sweep uses.
func benchDisk100k() *UnitDisk {
	const n = 100_000
	u := NewUnitDisk(10)
	// 200 tiles of side 10 per axis hold 100k nodes at 500/tile... keep it
	// simple: a square world sized for 5 nodes per unit^2 / 500 per tile.
	side := 10.0 * math.Sqrt(float64(n)/500.0)
	rng := xrand.NewSource(3).Stream("topo100k")
	for i := 0; i < n; i++ {
		u.Place(NodeID(i), Point{X: rng.Float64() * side, Y: rng.Float64() * side})
	}
	return u
}

// BenchmarkUnitDiskMoveAll100k is one mobility step over a 100k-node
// world: every node batch-moved a small random delta. This is the
// massive-population scale the sharded core runs at; per-op cost is one
// full-population step.
func BenchmarkUnitDiskMoveAll100k(b *testing.B) {
	u := benchDisk100k()
	side := 10.0 * math.Sqrt(100_000.0/500.0)
	rng := xrand.NewSource(5).Stream("moves100k")
	batch := make([]Placement, u.Len())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := range batch {
			p, _ := u.Position(NodeID(j))
			p.X += (rng.Float64() - 0.5) * 2
			p.Y += (rng.Float64() - 0.5) * 2
			if p.X < 0 {
				p.X = 0
			} else if p.X > side {
				p.X = side
			}
			if p.Y < 0 {
				p.Y = 0
			} else if p.Y > side {
				p.Y = side
			}
			batch[j] = Placement{ID: NodeID(j), At: p}
		}
		b.StartTimer()
		u.MoveAll(batch)
	}
}

// BenchmarkUnitDiskNeighborsAppend100k is the allocation-free range query
// on the 100k-node world, buffer reused across queries as the sharded
// core's per-window scans do. The gate ratchets this at 0 allocs/op.
func BenchmarkUnitDiskNeighborsAppend100k(b *testing.B) {
	u := benchDisk100k()
	buf := make([]NodeID, 0, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = u.NeighborsAppend(NodeID(i%100_000), buf[:0])
	}
}
