package radio

import (
	"io"
	"testing"

	"retri/internal/metrics"
	"retri/internal/sim"
	"retri/internal/trace"
	"retri/internal/xrand"
)

// benchWorkload drives one contention-heavy round-robin broadcast workload
// through a fresh medium with the given tracer. The workload is identical
// across variants so the benchmark isolates the tracer's cost in the radio
// hot path (Medium.emit on every send and reception outcome).
func benchWorkload(b *testing.B, tracer trace.Tracer) {
	b.Helper()
	b.ReportAllocs()
	payload := []byte{0xAB, 0xCD, 0xEF}
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		rng := xrand.NewSource(99).Stream("bench")
		m := NewMedium(eng, FullMesh{}, DefaultParams(), rng)
		m.SetTracer(tracer)
		radios := make([]*Radio, 6)
		for j := range radios {
			radios[j] = m.MustAttach(NodeID(j))
			radios[j].SetHandler(func(Frame) {})
		}
		for round := 0; round < 10; round++ {
			for _, r := range radios {
				if err := r.Send(payload, 0); err != nil {
					b.Fatal(err)
				}
			}
			eng.Run()
		}
	}
}

// BenchmarkMediumNoTracer is the disabled path: the observability layer's
// contract is that this stays within ~2% of a build without the layer at
// all (a nil check per emit site).
func BenchmarkMediumNoTracer(b *testing.B) {
	benchWorkload(b, nil)
}

// BenchmarkMediumMetricsBridge measures the capture path used per trial by
// the experiment layer: trace events folded straight into counters.
func BenchmarkMediumMetricsBridge(b *testing.B) {
	benchWorkload(b, metrics.FromTrace(metrics.NewRegistry()))
}

// BenchmarkMediumJSONWriter measures the heaviest tracer: every event
// serialized to JSON Lines (sunk into io.Discard so only encoding cost is
// measured, not disk).
func BenchmarkMediumJSONWriter(b *testing.B) {
	benchWorkload(b, trace.NewJSONWriter(io.Discard))
}

// benchDisk builds a populated unit disk for the mobility benchmarks:
// 256 nodes scattered over a 10×10-cell area.
func benchDisk() *UnitDisk {
	u := NewUnitDisk(10)
	rng := xrand.NewSource(7).Stream("disk")
	for i := 0; i < 256; i++ {
		u.Place(NodeID(i), Point{X: rng.Float64() * 100, Y: rng.Float64() * 100})
	}
	return u
}

// BenchmarkUnitDiskConnectedUnderMoves interleaves moves with connectivity
// checks — the dynamics workload. The spatial grid must keep Place cheap
// (two map ops within a cell) without slowing the Connected hot path the
// medium hits on every delivery.
func BenchmarkUnitDiskConnectedUnderMoves(b *testing.B) {
	u := benchDisk()
	rng := xrand.NewSource(7).Stream("moves")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := NodeID(rng.IntN(256))
		u.Place(id, Point{X: rng.Float64() * 100, Y: rng.Float64() * 100})
		for j := 0; j < 8; j++ {
			u.Connected(id, NodeID(rng.IntN(256)))
		}
	}
}

// BenchmarkUnitDiskNeighbors measures the grid-backed range query against
// the O(n) scan it replaces (every experiment-side omniscient density
// probe is one of these).
func BenchmarkUnitDiskNeighbors(b *testing.B) {
	u := benchDisk()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.Neighbors(NodeID(i % 256))
	}
}
