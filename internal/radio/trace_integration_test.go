package radio

import (
	"testing"

	"retri/internal/sim"
	"retri/internal/trace"
	"retri/internal/xrand"
)

// TestTracerMatchesCounters: the event stream and the aggregate counters
// are two views of the same run and must agree exactly.
func TestTracerMatchesCounters(t *testing.T) {
	p := DefaultParams()
	p.FrameLoss = 0.2
	eng := sim.NewEngine()
	rng := xrand.NewSource(17).Stream("trace")
	m := NewMedium(eng, FullMesh{}, p, rng)
	counter := trace.NewCounter()
	ring := trace.NewRing(1 << 12)
	m.SetTracer(trace.Multi(counter, ring))

	radios := make([]*Radio, 4)
	for i := range radios {
		radios[i] = m.MustAttach(NodeID(i))
		radios[i].SetHandler(func(Frame) {})
	}
	for round := 0; round < 20; round++ {
		for _, r := range radios {
			if err := r.Send([]byte{byte(round)}, 0); err != nil {
				t.Fatal(err)
			}
		}
		eng.Run()
	}

	c := m.Counters()
	checks := []struct {
		kind trace.Kind
		want int64
	}{
		{trace.FrameSent, c.Sent},
		{trace.FrameDelivered, c.Delivered},
		{trace.FrameCollided, c.Collided},
		{trace.FrameHalfDuplex, c.HalfDuplex},
		{trace.FrameRandomLoss, c.RandomLoss},
		{trace.FrameNotHeard, c.NotHeard},
	}
	for _, tc := range checks {
		if got := counter.Count(tc.kind); got != tc.want {
			t.Errorf("%v: trace %d, counter %d", tc.kind, got, tc.want)
		}
	}
	if ring.Len() == 0 {
		t.Error("ring recorded nothing")
	}
	// Events carry sane metadata.
	for _, e := range ring.Events() {
		if e.Bits <= 0 {
			t.Fatalf("event with no bits: %+v", e)
		}
		if e.Kind != trace.FrameSent && e.Node == e.Peer {
			t.Fatalf("reception event with node==peer: %+v", e)
		}
	}
}

// TestTracerDisabledIsFree: no tracer, no events, no crash.
func TestTracerDisabled(t *testing.T) {
	eng := sim.NewEngine()
	rng := xrand.NewSource(18).Stream("notrace")
	m := NewMedium(eng, FullMesh{}, DefaultParams(), rng)
	a := m.MustAttach(1)
	m.MustAttach(2).SetHandler(func(Frame) {})
	if err := a.Send([]byte{1}, 0); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if m.Counters().Delivered != 1 {
		t.Error("delivery failed without tracer")
	}
	// Installing and clearing a tracer mid-run is safe.
	m.SetTracer(trace.NewCounter())
	m.SetTracer(nil)
	if err := a.Send([]byte{2}, 0); err != nil {
		t.Fatal(err)
	}
	eng.Run()
}
