package radio

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"retri/internal/sim"
	"retri/internal/xrand"
)

// TestCounterConservation: every (frame, in-range receiver) pair resolves
// to exactly one outcome — delivered, collided, half-duplex miss, random
// loss, or not-heard — so the counters must sum to the number of
// receptions attempted.
func TestCounterConservation(t *testing.T) {
	f := func(seed uint64, lossPct uint8, useALOHA bool) bool {
		p := DefaultParams()
		p.FrameLoss = float64(lossPct%50) / 100
		if useALOHA {
			p.Access = ALOHA
		}
		eng := sim.NewEngine()
		rng := xrand.NewSource(seed).Stream("cons")
		m := NewMedium(eng, FullMesh{}, p, rng)

		const n = 5
		radios := make([]*Radio, n)
		for i := range radios {
			radios[i] = m.MustAttach(NodeID(i))
			radios[i].SetHandler(func(Frame) {})
		}
		// Random traffic bursts.
		for round := 0; round < 10; round++ {
			for i, r := range radios {
				if rng.Uint64N(2) == 0 {
					if err := r.Send([]byte{byte(i), byte(round)}, 0); err != nil {
						return false
					}
				}
			}
			eng.Run()
		}
		c := m.Counters()
		attempts := c.Sent * (n - 1) // full mesh: every frame reaches n-1 radios
		outcomes := c.Delivered + c.Collided + c.HalfDuplex + c.RandomLoss + c.NotHeard
		return outcomes == attempts
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestMobilityMidSimulation: a node walking out of range stops receiving;
// walking back in, it resumes.
func TestMobilityMidSimulation(t *testing.T) {
	eng := sim.NewEngine()
	rng := xrand.NewSource(2).Stream("mob")
	disk := NewUnitDisk(10)
	m := NewMedium(eng, disk, DefaultParams(), rng)
	disk.Place(1, Point{})
	disk.Place(2, Point{X: 5})

	a := m.MustAttach(1)
	b := m.MustAttach(2)
	got := 0
	b.SetHandler(func(Frame) { got++ })

	send := func() {
		if err := a.Send([]byte{1}, 0); err != nil {
			t.Fatal(err)
		}
		eng.Run()
	}
	send()
	if got != 1 {
		t.Fatalf("in range: got %d", got)
	}
	disk.Place(2, Point{X: 50})
	send()
	if got != 1 {
		t.Fatalf("out of range: got %d", got)
	}
	disk.Place(2, Point{X: 8})
	send()
	if got != 2 {
		t.Fatalf("back in range: got %d", got)
	}
}

// TestCSMABeatsALOHAUnderContention: with several contending senders, the
// carrier-sensing MAC delivers a higher fraction of frames than ALOHA —
// the sanity check that carrier sensing does anything at all.
func TestCSMABeatsALOHAUnderContention(t *testing.T) {
	run := func(access MACKind) (delivered, sent int64) {
		p := DefaultParams()
		p.Access = access
		eng := sim.NewEngine()
		rng := xrand.NewSource(3).Stream("mac", fmt.Sprint(access))
		m := NewMedium(eng, FullMesh{}, p, rng)
		sink := m.MustAttach(0)
		sink.SetHandler(func(Frame) {})
		senders := make([]*Radio, 4)
		for i := range senders {
			senders[i] = m.MustAttach(NodeID(i + 1))
		}
		for round := 0; round < 50; round++ {
			for _, s := range senders {
				if err := s.Send(make([]byte, 20), 0); err != nil {
					t.Fatal(err)
				}
			}
			eng.Run()
		}
		c := m.Counters()
		return c.Delivered, c.Sent
	}
	dCSMA, sCSMA := run(CSMA)
	dALOHA, sALOHA := run(ALOHA)
	rateCSMA := float64(dCSMA) / float64(sCSMA)
	rateALOHA := float64(dALOHA) / float64(sALOHA)
	if rateCSMA <= rateALOHA {
		t.Errorf("CSMA delivery ratio %.3f should beat ALOHA %.3f", rateCSMA, rateALOHA)
	}
	// Simultaneous equal-length ALOHA bursts are a collision bloodbath.
	if rateALOHA > 0.5 {
		t.Errorf("ALOHA ratio %.3f suspiciously high for synchronized bursts", rateALOHA)
	}
}

// TestBusySenderStillDrainsQueue: frames queued while the channel is
// contended must all eventually transmit (no starvation, no lost pumps).
func TestBusySenderStillDrainsQueue(t *testing.T) {
	eng := sim.NewEngine()
	rng := xrand.NewSource(4).Stream("drain")
	m := NewMedium(eng, FullMesh{}, DefaultParams(), rng)
	a := m.MustAttach(1)
	b := m.MustAttach(2)
	sink := m.MustAttach(3)
	got := 0
	sink.SetHandler(func(Frame) { got++ })
	for i := 0; i < 30; i++ {
		if err := a.Send([]byte{byte(i)}, 0); err != nil {
			t.Fatal(err)
		}
		if err := b.Send([]byte{byte(100 + i)}, 0); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if !a.Idle() || !b.Idle() {
		t.Error("queues not drained")
	}
	if m.Counters().Sent != 60 {
		t.Errorf("Sent = %d, want 60", m.Counters().Sent)
	}
}

// TestAirtimeMatchesClock: a single frame's delivery time equals its
// computed airtime plus the contention delay (bounded by the window).
func TestAirtimeMatchesClock(t *testing.T) {
	eng := sim.NewEngine()
	rng := xrand.NewSource(5).Stream("clk")
	p := DefaultParams()
	m := NewMedium(eng, FullMesh{}, p, rng)
	a := m.MustAttach(1)
	b := m.MustAttach(2)
	var deliveredAt time.Duration
	b.SetHandler(func(Frame) { deliveredAt = eng.Now() })
	if err := a.Send(make([]byte, 27), 0); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	air := m.AirtimeOf(27 * 8)
	if deliveredAt < air {
		t.Errorf("delivered at %v, before one airtime %v", deliveredAt, air)
	}
	// Use the effective params: NewMedium fills the contention default.
	if limit := air + m.Params().Contention; deliveredAt > limit {
		t.Errorf("delivered at %v, beyond airtime+contention %v", deliveredAt, limit)
	}
}
