package dynaddr

import (
	"fmt"
	"testing"
	"time"

	"retri/internal/radio"
	"retri/internal/sim"
	"retri/internal/xrand"
)

// TestChurnReallocationStorm quantifies the per-rejoin price of dynamic
// allocation — the Section 2.3 cost the multihop dynaddr arm measures at
// scale. A full mesh acquires addresses, then a subset crash-restarts in
// waves; every rejoin must pay a full claim phase (ClaimCount CLAIMs plus
// their control bits), must refuse data with ErrNoAddress until it
// completes, and the crashed nodes' amnesia (the wiped heard table) makes
// re-draws of taken addresses — hence conflicts — possible again.
func TestChurnReallocationStorm(t *testing.T) {
	const (
		population = 8
		churners   = 4
		waves      = 3
	)
	eng := sim.NewEngine()
	src := xrand.NewSource(41).Child("storm")
	med := radio.NewMedium(eng, radio.FullMesh{}, radio.DefaultParams(), src.Stream("m"))
	cfg := Config{AddrBits: 4} // tight space: amnesia re-draws collide
	nodes := make([]*Node, population)
	for i := range nodes {
		r := med.MustAttach(radio.NodeID(i))
		n, err := NewNode(eng, r, cfg, src.Stream("n", fmt.Sprint(i)))
		if err != nil {
			t.Fatal(err)
		}
		n.Start()
		nodes[i] = n
	}
	eng.Run()
	for i, n := range nodes {
		if _, ok := n.Allocator().Addr(); !ok {
			t.Fatalf("node %d unassigned after initial convergence", i)
		}
	}
	baseline := make([]Stats, population)
	for i, n := range nodes {
		baseline[i] = n.Allocator().Stats()
	}

	// Waves of crash-restart churn on the first half of the population.
	var denied int
	for w := 0; w < waves; w++ {
		for i := 0; i < churners; i++ {
			nodes[i].Crash()
		}
		for i := 0; i < churners; i++ {
			n := nodes[i]
			n.Restart()
			if n.Allocator().State() != Claiming {
				t.Fatalf("wave %d: node %d not claiming after restart", w, i)
			}
			// The availability gap: data is refused mid-claim.
			if err := n.SendPacket([]byte{0xAB}); err == nil {
				t.Fatalf("wave %d: node %d sent data without an address", w, i)
			} else if err == ErrNoAddress {
				denied++
			}
		}
		eng.Run()
		for i := 0; i < churners; i++ {
			if _, ok := nodes[i].Allocator().Addr(); !ok {
				t.Fatalf("wave %d: node %d never re-acquired", w, i)
			}
		}
	}
	if denied != waves*churners {
		t.Errorf("ErrNoAddress on %d mid-claim sends, want %d", denied, waves*churners)
	}

	// Per-rejoin accounting: each of the waves re-acquisitions pays at
	// least a full claim phase; conflicts (amnesia re-draws of taken
	// addresses, defended by survivors) add more.
	ccount := int64(cfg.withDefaults().ClaimCount)
	for i := 0; i < churners; i++ {
		st := nodes[i].Allocator().Stats()
		rejoins := st.Acquisitions - baseline[i].Acquisitions
		if rejoins != waves {
			t.Errorf("node %d re-acquired %d times, want %d", i, rejoins, waves)
		}
		claims := st.ClaimsSent - baseline[i].ClaimsSent
		if claims < rejoins*ccount {
			t.Errorf("node %d paid %d claims for %d rejoins, want >= %d",
				i, claims, rejoins, rejoins*ccount)
		}
		bits := st.ControlBits - baseline[i].ControlBits
		frameBits := int64(codec{addrBits: cfg.AddrBits}.controlBits())
		if bits < claims*frameBits {
			t.Errorf("node %d control bits %d below %d claims' worth", i, bits, claims)
		}
		if claims > rejoins*ccount && st.Conflicts == baseline[i].Conflicts {
			t.Errorf("node %d paid %d extra claims but recorded no conflicts", i, claims-rejoins*ccount)
		}
	}
	// The stable half never re-claims; their only new traffic is defends.
	for i := churners; i < population; i++ {
		st := nodes[i].Allocator().Stats()
		if st.Acquisitions != baseline[i].Acquisitions {
			t.Errorf("stable node %d re-acquired", i)
		}
	}
}

// TestResetWipesHeardTable: Reset models a crash — unlike Release, the
// heard-address table is forgotten, so the next candidate draw can pick
// an address the node itself had heard as taken.
func TestResetWipesHeardTable(t *testing.T) {
	eng := sim.NewEngine()
	src := xrand.NewSource(42).Child("reset")
	med := radio.NewMedium(eng, radio.FullMesh{}, radio.DefaultParams(), src.Stream("m"))
	r := med.MustAttach(1)
	a := NewAllocator(eng, r, Config{AddrBits: 4}, src.Stream("a"), nil)
	for addr := uint64(0); addr < 16; addr++ {
		a.HandleControl(Control{Kind: MsgAnnounce, Addr: addr, Nonce: 1})
	}
	if len(a.heard) != 16 {
		t.Fatalf("heard %d addresses, want 16", len(a.heard))
	}
	a.Release()
	if len(a.heard) != 16 {
		t.Error("Release wiped the heard table; only Reset models amnesia")
	}
	a.Reset()
	if len(a.heard) != 0 {
		t.Errorf("Reset left %d heard addresses", len(a.heard))
	}
	if a.State() != Unassigned {
		t.Errorf("state %v after Reset", a.State())
	}
}

// TestAnnounceGenerationInvalidation: a keepalive chain from an earlier
// assignment must die when the address is released and re-acquired, or
// the announce rate would double with every churn cycle.
func TestAnnounceGenerationInvalidation(t *testing.T) {
	eng := sim.NewEngine()
	src := xrand.NewSource(43).Child("gen")
	med := radio.NewMedium(eng, radio.FullMesh{}, radio.DefaultParams(), src.Stream("m"))
	r := med.MustAttach(1)
	n, err := NewNode(eng, r, Config{AddrBits: 10, AnnounceInterval: time.Second}, src.Stream("n"))
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	eng.RunUntil(3 * time.Second)
	n.Crash()
	n.Restart()
	eng.RunUntil(4 * time.Second) // re-acquired; fresh chain running
	mark := n.Allocator().Stats().AnnouncesSent
	eng.RunUntil(10 * time.Second)
	got := n.Allocator().Stats().AnnouncesSent - mark
	// One live chain over ~6s at 1s spacing: ~6 announces. A doubled
	// chain would send ~12.
	if got > 8 {
		t.Errorf("%d announces in 6s at 1s interval: stale keepalive chain survived the crash", got)
	}
	if got < 4 {
		t.Errorf("%d announces in 6s at 1s interval: live chain missing", got)
	}
}

// TestHorizonStopsKeepalives: with a horizon set, the announce chain stops
// scheduling past it and the event queue drains — the property the
// multihop experiment's bounded trials depend on. Without it, eng.Run()
// on an assigned node with keepalives would never return.
func TestHorizonStopsKeepalives(t *testing.T) {
	eng := sim.NewEngine()
	src := xrand.NewSource(44).Child("horizon")
	med := radio.NewMedium(eng, radio.FullMesh{}, radio.DefaultParams(), src.Stream("m"))
	r := med.MustAttach(1)
	horizon := 10 * time.Second
	n, err := NewNode(eng, r, Config{AddrBits: 10, AnnounceInterval: time.Second, Horizon: horizon}, src.Stream("n"))
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	eng.Run() // must terminate: the chain stops at the horizon
	if now := eng.Now(); now > horizon+time.Second {
		t.Errorf("queue drained at %v, far past the %v horizon", now, horizon)
	}
	st := n.Allocator().Stats()
	if st.AnnouncesSent < 5 {
		t.Errorf("AnnouncesSent = %d before the horizon, want a steady chain", st.AnnouncesSent)
	}
	if _, ok := n.Allocator().Addr(); !ok {
		t.Error("address lost at the horizon")
	}
}
