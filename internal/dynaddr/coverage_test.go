package dynaddr

import (
	"testing"
	"time"

	"retri/internal/radio"
	"retri/internal/sim"
	"retri/internal/xrand"
)

func TestStartIsIdempotent(t *testing.T) {
	eng, _, nodes := testSetup(t, 1)
	nodes[0].Start()
	nodes[0].Start() // claiming: no-op
	eng.Run()
	nodes[0].Start() // assigned: no-op
	if got := nodes[0].Allocator().Stats().Acquisitions; got != 1 {
		t.Errorf("Acquisitions = %d, want 1 despite repeated Start", got)
	}
}

func TestNodeAccessors(t *testing.T) {
	_, _, nodes := testSetup(t, 1)
	if nodes[0].Radio() == nil {
		t.Error("Radio() = nil")
	}
	if nodes[0].Reassembler() == nil {
		t.Error("Reassembler() = nil")
	}
	if _, ok := nodes[0].Allocator().Addr(); ok {
		t.Error("Addr ok before assignment")
	}
}

func TestNewNodeNilRadio(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := NewNode(eng, nil, Config{}, xrand.NewSource(1).Stream("n")); err == nil {
		t.Error("nil radio accepted")
	}
}

func TestHeardTableExpires(t *testing.T) {
	eng := sim.NewEngine()
	src := xrand.NewSource(51).Child("ttl")
	med := radio.NewMedium(eng, radio.FullMesh{}, radio.DefaultParams(), src.Stream("m"))
	r := med.MustAttach(1)
	cfg := Config{AddrBits: 4, HeardTTL: time.Second}
	n, err := NewNode(eng, r, cfg, src.Stream("n"))
	if err != nil {
		t.Fatal(err)
	}
	// Fill the allocator's heard table with every address.
	for addr := uint64(0); addr < 16; addr++ {
		n.Allocator().HandleControl(Control{Kind: MsgAnnounce, Addr: addr, Nonce: 1})
	}
	// With the whole space heard, a claim must still be possible (uniform
	// fallback); and after the TTL, the table clears.
	eng.RunUntil(5 * time.Second)
	n.Start()
	eng.Run()
	if _, ok := n.Allocator().Addr(); !ok {
		t.Error("node never acquired an address after heard-table saturation")
	}
}

func TestDefendAgainstAnnounce(t *testing.T) {
	// A claiming node that hears an ANNOUNCE for its candidate aborts.
	eng := sim.NewEngine()
	src := xrand.NewSource(52).Child("ann")
	med := radio.NewMedium(eng, radio.FullMesh{}, radio.DefaultParams(), src.Stream("m"))
	r := med.MustAttach(1)
	n, err := NewNode(eng, r, Config{AddrBits: 10}, src.Stream("n"))
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	// Snatch the candidate mid-claim.
	cand := n.Allocator().addr
	n.Allocator().HandleControl(Control{Kind: MsgAnnounce, Addr: cand, Nonce: 99})
	if n.Allocator().State() == Claiming && n.Allocator().addr == cand {
		t.Error("claim not aborted on ANNOUNCE for candidate")
	}
	eng.Run()
	if addr, ok := n.Allocator().Addr(); !ok {
		t.Error("node never re-acquired")
	} else if addr == cand && n.Allocator().Stats().Conflicts == 0 {
		t.Error("conflict unrecorded")
	}
}

func TestDefendAgainstDefend(t *testing.T) {
	eng := sim.NewEngine()
	src := xrand.NewSource(53).Child("def")
	med := radio.NewMedium(eng, radio.FullMesh{}, radio.DefaultParams(), src.Stream("m"))
	r := med.MustAttach(1)
	n, err := NewNode(eng, r, Config{AddrBits: 10}, src.Stream("n"))
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	cand := n.Allocator().addr
	n.Allocator().HandleControl(Control{Kind: MsgDefend, Addr: cand, Nonce: 7})
	if n.Allocator().Stats().Conflicts != 1 {
		t.Errorf("Conflicts = %d, want 1 after DEFEND", n.Allocator().Stats().Conflicts)
	}
	eng.Run()
	if _, ok := n.Allocator().Addr(); !ok {
		t.Error("node never recovered after DEFEND")
	}
}

func TestTransmitFailsWhenRadioDown(t *testing.T) {
	eng, _, nodes := testSetup(t, 1)
	nodes[0].Radio().SetUp(false)
	nodes[0].Start()
	eng.Run()
	// Claims could not be transmitted; control-bit accounting stays zero.
	if got := nodes[0].Allocator().Stats().ControlBits; got != 0 {
		t.Errorf("ControlBits = %d with radio down, want 0", got)
	}
}

func TestControlBitsConstant(t *testing.T) {
	c := codec{addrBits: 10}
	if got := c.controlBits(); got != 1+2+10+16 {
		t.Errorf("controlBits = %d, want 29", got)
	}
}
