package dynaddr

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"retri/internal/radio"
	"retri/internal/sim"
	"retri/internal/xrand"
)

func testSetup(t *testing.T, n int) (*sim.Engine, *radio.Medium, []*Node) {
	t.Helper()
	eng := sim.NewEngine()
	src := xrand.NewSource(31).Child("dynaddr", t.Name())
	med := radio.NewMedium(eng, radio.FullMesh{}, radio.DefaultParams(), src.Stream("medium"))
	nodes := make([]*Node, n)
	for i := range nodes {
		r := med.MustAttach(radio.NodeID(i))
		node, err := NewNode(eng, r, Config{AddrBits: 10}, src.Stream("node", fmt.Sprint(i)))
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	return eng, med, nodes
}

func TestCodecControlRoundTrip(t *testing.T) {
	c := codec{addrBits: 10}
	for _, kind := range []int{MsgClaim, MsgDefend, MsgAnnounce} {
		m := Control{Kind: kind, Addr: 777, Nonce: 0xBEEF}
		buf, bits, err := c.encodeControl(m)
		if err != nil {
			t.Fatal(err)
		}
		if bits != 1+2+10+16 {
			t.Errorf("control bits = %d, want 29", bits)
		}
		got, _, isControl, err := c.decode(buf)
		if err != nil || !isControl {
			t.Fatalf("decode: %v (control=%v)", err, isControl)
		}
		if got != m {
			t.Errorf("round trip %+v -> %+v", m, got)
		}
	}
}

func TestCodecRejectsBadControl(t *testing.T) {
	c := codec{addrBits: 10}
	if _, _, err := c.encodeControl(Control{Kind: 0}); err == nil {
		t.Error("kind 0 accepted")
	}
	if _, _, err := c.encodeControl(Control{Kind: MsgClaim, Addr: 1 << 10}); err == nil {
		t.Error("oversize address accepted")
	}
	if _, _, _, err := c.decode(nil); !errors.Is(err, ErrBadControl) {
		t.Errorf("empty frame err = %v", err)
	}
}

func TestCodecDataRoundTrip(t *testing.T) {
	c := codec{addrBits: 10}
	inner := []byte{9, 8, 7, 6}
	buf, bits := wrapData(inner, 8*len(inner))
	if bits != 1+32 {
		t.Errorf("wrapped bits = %d, want 33", bits)
	}
	_, data, isControl, err := c.decode(buf)
	if err != nil || isControl {
		t.Fatalf("decode: %v (control=%v)", err, isControl)
	}
	if !bytes.Equal(data, inner) {
		t.Errorf("data = %v, want %v", data, inner)
	}
}

func TestSingleNodeAcquiresAddress(t *testing.T) {
	eng, _, nodes := testSetup(t, 1)
	nodes[0].Start()
	eng.Run()
	addr, ok := nodes[0].Allocator().Addr()
	if !ok {
		t.Fatal("node never acquired an address")
	}
	if addr >= 1<<10 {
		t.Errorf("address %d outside 10-bit space", addr)
	}
	st := nodes[0].Allocator().Stats()
	if st.ClaimsSent != 3 {
		t.Errorf("ClaimsSent = %d, want 3", st.ClaimsSent)
	}
	if st.Acquisitions != 1 {
		t.Errorf("Acquisitions = %d, want 1", st.Acquisitions)
	}
	if st.ControlBits == 0 {
		t.Error("control traffic not accounted")
	}
}

func TestManyNodesAcquireDistinctAddresses(t *testing.T) {
	eng, _, nodes := testSetup(t, 12)
	for _, n := range nodes {
		n.Start()
	}
	eng.Run()
	seen := make(map[uint64]int)
	for i, n := range nodes {
		addr, ok := n.Allocator().Addr()
		if !ok {
			t.Fatalf("node %d unassigned after run", i)
		}
		seen[addr]++
	}
	for addr, count := range seen {
		if count > 1 {
			t.Errorf("address %d assigned to %d nodes", addr, count)
		}
	}
}

func TestCompetingClaimsResolved(t *testing.T) {
	// A tiny 2-bit space with 4 nodes forces claim contention; all must
	// still converge to distinct addresses.
	eng := sim.NewEngine()
	src := xrand.NewSource(32).Child("contend")
	med := radio.NewMedium(eng, radio.FullMesh{}, radio.DefaultParams(), src.Stream("m"))
	nodes := make([]*Node, 4)
	for i := range nodes {
		r := med.MustAttach(radio.NodeID(i))
		n, err := NewNode(eng, r, Config{AddrBits: 2}, src.Stream("n", fmt.Sprint(i)))
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		n.Start()
	}
	eng.Run()
	seen := make(map[uint64]bool)
	for i, n := range nodes {
		addr, ok := n.Allocator().Addr()
		if !ok {
			t.Fatalf("node %d unassigned", i)
		}
		if seen[addr] {
			t.Fatalf("duplicate address %d", addr)
		}
		seen[addr] = true
	}
}

func TestDefendRejectsLateClaimer(t *testing.T) {
	eng, med, nodes := testSetup(t, 1)
	nodes[0].Start()
	eng.Run()
	owned, _ := nodes[0].Allocator().Addr()

	// A latecomer joins knowing nothing; force its RNG toward conflicts
	// by claiming in a space of... instead, directly inject a claim for
	// the owned address and watch the DEFEND.
	r2 := med.MustAttach(99)
	late, err := NewNode(eng, r2, Config{AddrBits: 10}, xrand.NewSource(77).Stream("late"))
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the latecomer's first claim colliding: feed the owner a
	// CLAIM for its own address.
	c := codec{addrBits: 10}
	buf, bits, err := c.encodeControl(Control{Kind: MsgClaim, Addr: owned, Nonce: 0x1234})
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.Send(buf, bits); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if nodes[0].Allocator().Stats().DefendsSent == 0 {
		t.Error("owner did not defend its address")
	}
	_ = late
}

func TestSendBeforeAssignmentFails(t *testing.T) {
	_, _, nodes := testSetup(t, 1)
	if err := nodes[0].SendPacket([]byte("data")); !errors.Is(err, ErrNoAddress) {
		t.Errorf("SendPacket before assignment err = %v, want ErrNoAddress", err)
	}
}

func TestDataFlowsAfterAssignment(t *testing.T) {
	eng, _, nodes := testSetup(t, 2)
	var got []byte
	nodes[1].SetPacketHandler(func(p []byte) { got = append([]byte{}, p...) })
	nodes[0].Start()
	nodes[1].Start()
	eng.Run()

	packet := []byte("dynamic short-address data packet")
	if err := nodes[0].SendPacket(packet); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !bytes.Equal(got, packet) {
		t.Fatalf("received %q, want %q", got, packet)
	}
	if nodes[0].PacketsSent() != 1 || nodes[1].PacketsDelivered() != 1 {
		t.Error("packet counters wrong")
	}
}

func TestAnnounceKeepalives(t *testing.T) {
	eng := sim.NewEngine()
	src := xrand.NewSource(33).Child("ann")
	med := radio.NewMedium(eng, radio.FullMesh{}, radio.DefaultParams(), src.Stream("m"))
	r := med.MustAttach(1)
	n, err := NewNode(eng, r, Config{AddrBits: 10, AnnounceInterval: time.Second}, src.Stream("n"))
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	eng.RunUntil(5 * time.Second)
	if got := n.Allocator().Stats().AnnouncesSent; got < 3 {
		t.Errorf("AnnouncesSent = %d, want >= 3 over ~4.4s", got)
	}
}

func TestReleaseStopsAllocator(t *testing.T) {
	eng, _, nodes := testSetup(t, 1)
	nodes[0].Start()
	eng.Run()
	nodes[0].Allocator().Release()
	if nodes[0].Allocator().State() != Unassigned {
		t.Error("Release did not return to Unassigned")
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		Unassigned: "unassigned",
		Claiming:   "claiming",
		Assigned:   "assigned",
		State(0):   "invalid",
	} {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", s, got, want)
		}
	}
}

func TestControlOverheadGrowsWithChurn(t *testing.T) {
	// The Section 2.3 argument made measurable: more joins, more control
	// bits.
	run := func(joins int) int64 {
		eng := sim.NewEngine()
		src := xrand.NewSource(34).Child("churn", fmt.Sprint(joins))
		med := radio.NewMedium(eng, radio.FullMesh{}, radio.DefaultParams(), src.Stream("m"))
		var total int64
		for i := 0; i < joins; i++ {
			r := med.MustAttach(radio.NodeID(i))
			n, err := NewNode(eng, r, Config{AddrBits: 10}, src.Stream("n", fmt.Sprint(i)))
			if err != nil {
				t.Fatal(err)
			}
			n.Start()
			eng.Run()
			total += n.Allocator().Stats().ControlBits
		}
		return total
	}
	few, many := run(2), run(10)
	if many <= few {
		t.Errorf("control bits: %d joins -> %d bits, %d joins -> %d bits; should grow",
			2, few, 10, many)
	}
}
