// Package dynaddr implements the alternative the paper argues against in
// Section 2.3: a protocol that dynamically assigns locally unique short
// addresses, in the style of SDR/MASC claim-listen-defend allocation.
//
// A joining node draws a candidate address it has not heard in use,
// broadcasts a CLAIM several times while listening for objections, and
// takes the address if unopposed. A node hearing a CLAIM for its own
// address broadcasts a DEFEND, forcing the claimer to re-draw. Assigned
// nodes send data through the statically addressed fragmentation stack
// using their short address.
//
// Every control message is real traffic: the point of the module is to
// measure the allocation overhead that AFF avoids — "this scheme will be
// efficient only as long as the address-allocation overhead is small
// compared to the amount of useful data transmitted ... In sensor
// networks, the expected dynamics make this scheme potentially very
// inefficient given the low data rate."
//
// Because control messages and data fragments share one radio, every frame
// carries a one-bit demultiplexing prefix (0 = data, 1 = control); like the
// collision-notification extension, that bit is charged as header overhead.
package dynaddr

import (
	"errors"
	"fmt"

	"retri/internal/bitio"
)

// Frame demultiplexer values.
const (
	demuxData    = 0
	demuxControl = 1
)

// Control message kinds.
const (
	// MsgClaim announces a candidate address under consideration.
	MsgClaim = 1
	// MsgDefend rejects a claim for an address already owned.
	MsgDefend = 2
	// MsgAnnounce is a periodic keepalive for an owned address.
	MsgAnnounce = 3
)

const (
	kindBits  = 2
	nonceBits = 16
)

// ErrBadControl is returned for undecodable control frames.
var ErrBadControl = errors.New("dynaddr: malformed control frame")

// Control is an allocation-protocol message.
type Control struct {
	// Kind is MsgClaim, MsgDefend or MsgAnnounce.
	Kind int
	// Addr is the address being claimed, defended or announced.
	Addr uint64
	// Nonce distinguishes claimers that picked the same address.
	Nonce uint16
}

// codec packs control messages and the demux prefix.
type codec struct {
	addrBits int
}

// controlBits is the meaningful size of a control frame on air.
func (c codec) controlBits() int {
	return 1 + kindBits + c.addrBits + nonceBits
}

// encodeControl builds a control frame (with demux prefix).
func (c codec) encodeControl(m Control) ([]byte, int, error) {
	if m.Kind < MsgClaim || m.Kind > MsgAnnounce {
		return nil, 0, fmt.Errorf("dynaddr: bad control kind %d", m.Kind)
	}
	if c.addrBits < 64 && m.Addr >= 1<<uint(c.addrBits) {
		return nil, 0, fmt.Errorf("dynaddr: address %d exceeds %d bits", m.Addr, c.addrBits)
	}
	w := bitio.NewWriter()
	mustWrite(w, demuxControl, 1)
	mustWrite(w, uint64(m.Kind), kindBits)
	mustWrite(w, m.Addr, c.addrBits)
	mustWrite(w, uint64(m.Nonce), nonceBits)
	bits := w.Len()
	w.Align()
	return w.Bytes(), bits, nil
}

// wrapData prefixes a data frame with the demux bit.
func wrapData(payload []byte, bits int) ([]byte, int) {
	w := bitio.NewWriter()
	mustWrite(w, demuxData, 1)
	w.WriteBytes(payload)
	return w.Bytes(), 1 + bits
}

// decode splits a frame into either a control message or an inner data
// frame. Exactly one of ctrl/data is meaningful, per isControl.
func (c codec) decode(p []byte) (ctrl Control, data []byte, isControl bool, err error) {
	r := bitio.NewReader(p)
	demux, err := r.ReadBits(1)
	if err != nil {
		return Control{}, nil, false, fmt.Errorf("%w: empty frame", ErrBadControl)
	}
	if demux == demuxData {
		inner := make([]byte, r.Remaining()/8)
		if err := r.ReadBytes(inner); err != nil {
			return Control{}, nil, false, fmt.Errorf("%w: %v", ErrBadControl, err)
		}
		return Control{}, inner, false, nil
	}
	kind, err := r.ReadBits(kindBits)
	if err != nil {
		return Control{}, nil, true, fmt.Errorf("%w: %v", ErrBadControl, err)
	}
	addr, err := r.ReadBits(c.addrBits)
	if err != nil {
		return Control{}, nil, true, fmt.Errorf("%w: %v", ErrBadControl, err)
	}
	nonce, err := r.ReadBits(nonceBits)
	if err != nil {
		return Control{}, nil, true, fmt.Errorf("%w: %v", ErrBadControl, err)
	}
	if kind < MsgClaim || kind > MsgAnnounce {
		return Control{}, nil, true, fmt.Errorf("%w: kind %d", ErrBadControl, kind)
	}
	return Control{Kind: int(kind), Addr: addr, Nonce: uint16(nonce)}, nil, true, nil
}

func mustWrite(w *bitio.Writer, v uint64, n int) {
	if err := w.WriteBits(v, n); err != nil {
		panic(err)
	}
}
