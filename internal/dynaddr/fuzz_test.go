package dynaddr

import "testing"

// FuzzDecode: the demux/control decoder must never panic, and any control
// message it accepts must re-encode to an equivalent frame.
func FuzzDecode(f *testing.F) {
	c := codec{addrBits: 10}
	claim, _, _ := c.encodeControl(Control{Kind: MsgClaim, Addr: 5, Nonce: 9})
	data, _ := wrapData([]byte{1, 2, 3}, 24)
	f.Add(claim, 10)
	f.Add(data, 10)
	f.Add([]byte{}, 4)
	f.Add([]byte{0xFF}, 64)

	f.Fuzz(func(t *testing.T, p []byte, addrBits int) {
		b := ((addrBits % 64) + 64) % 64
		if b == 0 {
			b = 1
		}
		c := codec{addrBits: b}
		ctrl, _, isControl, err := c.decode(p)
		if err != nil || !isControl {
			return
		}
		buf, _, err := c.encodeControl(ctrl)
		if err != nil {
			t.Fatalf("decoded control failed to re-encode: %v (%+v)", err, ctrl)
		}
		again, _, ok, err := c.decode(buf)
		if err != nil || !ok || again != ctrl {
			t.Fatalf("control round trip drift: %+v vs %+v (%v)", ctrl, again, err)
		}
	})
}
