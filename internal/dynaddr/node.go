package dynaddr

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"time"

	"retri/internal/radio"
	"retri/internal/sim"
	"retri/internal/staticaddr"
)

// ErrNoAddress is returned by SendPacket before an address is acquired —
// the cost in *availability* that dynamic allocation imposes and AFF does
// not.
var ErrNoAddress = errors.New("dynaddr: no address assigned yet")

// Relay is the multi-hop forwarding service SetRelay plugs in
// (flood.Relay satisfies it): WrapOutgoing envelopes outgoing frames
// with the hop budget, UnwrapIncoming dedups and rebroadcasts received
// copies, Reset wipes the dedup table on a crash.
type Relay interface {
	WrapOutgoing(payload []byte, bits int) ([]byte, int)
	UnwrapIncoming(f radio.Frame) (inner []byte, deliver bool)
	Reset()
}

// Node is a complete dynamically addressed stack: the claim-listen-defend
// allocator plus the short-address fragmentation driver, demultiplexed
// over one radio.
type Node struct {
	eng   *sim.Engine
	r     *radio.Radio
	alloc *Allocator
	codec codec
	relay Relay

	fragCfg staticaddr.Config
	frag    *staticaddr.Fragmenter
	reasm   *staticaddr.Reassembler
	// deliveredBase carries delivery counts across the reassembler
	// rebuilds a crash forces (staticaddr reassemblers are not resettable).
	deliveredBase int64

	handler func(data []byte)
	sent    int64
}

// NewNode builds a dynamically addressed node. Data packets can be sent
// only after the allocator acquires an address; call Start to begin
// claiming.
func NewNode(eng *sim.Engine, r *radio.Radio, cfg Config, rng *rand.Rand) (*Node, error) {
	if r == nil {
		return nil, errors.New("dynaddr: nil radio")
	}
	cfg = cfg.withDefaults()
	n := &Node{
		eng:   eng,
		r:     r,
		codec: codec{addrBits: cfg.AddrBits},
		fragCfg: staticaddr.Config{
			AddrBits: cfg.AddrBits,
			// Data frames carry the demux prefix, so the fragmenter must
			// leave one byte of headroom.
			MTU:               mtuOf(r) - 1,
			ReassemblyTimeout: 30 * time.Second,
		},
	}
	n.alloc = NewAllocator(eng, r, cfg, rng, n.onAssigned)
	n.reasm = staticaddr.NewReassembler(n.fragCfg, r.Now, n.deliver)
	r.SetHandler(n.onFrame)
	return n, nil
}

func (n *Node) deliver(p staticaddr.Packet) {
	if n.handler != nil {
		n.handler(p.Data)
	}
}

// SetRelay extends the stack across multiple hops: control and data
// frames are wrapped in the relay's hop-scope envelope, and received
// frames pass through its dedup/rebroadcast path before demultiplexing.
// Must be called before Start and before any traffic — the envelope byte
// shrinks the data MTU, so the fragmenter geometry changes.
func (n *Node) SetRelay(rl Relay) {
	n.relay = rl
	n.fragCfg.MTU--
	n.reasm = staticaddr.NewReassembler(n.fragCfg, n.r.Now, n.deliver)
	n.alloc.SetSend(func(p []byte, bits int) error {
		wp, wb := rl.WrapOutgoing(p, bits)
		return n.r.Send(wp, wb)
	})
}

func mtuOf(r *radio.Radio) int {
	// The radio's medium enforces the MTU on Send; the fragment sizing
	// needs the same figure. DefaultParams uses 27.
	return 27
}

// Start begins address acquisition.
func (n *Node) Start() { n.alloc.Start() }

// Allocator exposes the allocation state machine.
func (n *Node) Allocator() *Allocator { return n.alloc }

// Radio returns the underlying radio.
func (n *Node) Radio() *radio.Radio { return n.r }

// SetPacketHandler installs the delivery callback.
func (n *Node) SetPacketHandler(h func(data []byte)) { n.handler = h }

// PacketsSent reports data packets accepted for transmission.
func (n *Node) PacketsSent() int64 { return n.sent }

// PacketsDelivered reports data packets reassembled at this node,
// including by reassemblers retired across crashes.
func (n *Node) PacketsDelivered() int64 { return n.deliveredBase + n.reasm.Stats().Delivered }

// Crash models a node failure: the radio goes down (dropping its
// transmit queue) and all RAM state is wiped — the owned address, any
// claim in progress, the heard-address table, partial reassemblies, and
// the relay's duplicate-suppression table.
func (n *Node) Crash() {
	n.r.SetUp(false)
	n.alloc.Reset()
	n.frag = nil
	n.deliveredBase += n.reasm.Stats().Delivered
	n.reasm = staticaddr.NewReassembler(n.fragCfg, n.r.Now, n.deliver)
	if n.relay != nil {
		n.relay.Reset()
	}
}

// Restart powers the radio back up and begins re-claiming an address
// from scratch. Data stays unsendable (ErrNoAddress) until the claim
// phase completes — the availability gap, and the re-allocation traffic
// it triggers, are exactly the churn costs RETRI avoids by construction.
func (n *Node) Restart() {
	n.r.SetUp(true)
	n.alloc.Start()
}

// Reassembler exposes the data reassembler for stats.
func (n *Node) Reassembler() *staticaddr.Reassembler { return n.reasm }

// SendPacket fragments and queues a data packet under the node's acquired
// short address. It fails with ErrNoAddress until allocation completes.
func (n *Node) SendPacket(p []byte) error {
	if n.frag == nil {
		return ErrNoAddress
	}
	tx, err := n.frag.Fragment(p)
	if err != nil {
		return err
	}
	for _, fr := range tx.Fragments {
		payload, bits := wrapData(fr.Bytes, fr.Bits)
		if n.relay != nil {
			payload, bits = n.relay.WrapOutgoing(payload, bits)
		}
		if err := n.r.Send(payload, bits); err != nil {
			return fmt.Errorf("dynaddr: send fragment: %w", err)
		}
	}
	n.sent++
	return nil
}

// onAssigned (re)builds the data fragmenter under the new address.
func (n *Node) onAssigned(addr uint64) {
	frag, err := staticaddr.NewFragmenter(n.fragCfg, addr)
	if err != nil {
		// Configuration error; leave the node data-mute rather than
		// panic inside a simulation event.
		n.frag = nil
		return
	}
	n.frag = frag
}

// onFrame demultiplexes received frames between the allocator and the
// data reassembler.
func (n *Node) onFrame(f radio.Frame) {
	payload := f.Payload
	if n.relay != nil {
		inner, deliver := n.relay.UnwrapIncoming(f)
		if !deliver {
			return
		}
		payload = inner
	}
	ctrl, data, isControl, err := n.codec.decode(payload)
	if err != nil {
		return
	}
	if isControl {
		n.alloc.HandleControl(ctrl)
		return
	}
	n.reasm.Ingest(data)
}
