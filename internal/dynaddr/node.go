package dynaddr

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"time"

	"retri/internal/radio"
	"retri/internal/sim"
	"retri/internal/staticaddr"
)

// ErrNoAddress is returned by SendPacket before an address is acquired —
// the cost in *availability* that dynamic allocation imposes and AFF does
// not.
var ErrNoAddress = errors.New("dynaddr: no address assigned yet")

// Node is a complete dynamically addressed stack: the claim-listen-defend
// allocator plus the short-address fragmentation driver, demultiplexed
// over one radio.
type Node struct {
	eng   *sim.Engine
	r     *radio.Radio
	alloc *Allocator
	codec codec

	fragCfg staticaddr.Config
	frag    *staticaddr.Fragmenter
	reasm   *staticaddr.Reassembler

	handler func(data []byte)
	sent    int64
}

// NewNode builds a dynamically addressed node. Data packets can be sent
// only after the allocator acquires an address; call Start to begin
// claiming.
func NewNode(eng *sim.Engine, r *radio.Radio, cfg Config, rng *rand.Rand) (*Node, error) {
	if r == nil {
		return nil, errors.New("dynaddr: nil radio")
	}
	cfg = cfg.withDefaults()
	n := &Node{
		eng:   eng,
		r:     r,
		codec: codec{addrBits: cfg.AddrBits},
		fragCfg: staticaddr.Config{
			AddrBits: cfg.AddrBits,
			// Data frames carry the demux prefix, so the fragmenter must
			// leave one byte of headroom.
			MTU:               mtuOf(r) - 1,
			ReassemblyTimeout: 30 * time.Second,
		},
	}
	n.alloc = NewAllocator(eng, r, cfg, rng, n.onAssigned)
	n.reasm = staticaddr.NewReassembler(n.fragCfg, r.Now, func(p staticaddr.Packet) {
		if n.handler != nil {
			n.handler(p.Data)
		}
	})
	r.SetHandler(n.onFrame)
	return n, nil
}

func mtuOf(r *radio.Radio) int {
	// The radio's medium enforces the MTU on Send; the fragment sizing
	// needs the same figure. DefaultParams uses 27.
	return 27
}

// Start begins address acquisition.
func (n *Node) Start() { n.alloc.Start() }

// Allocator exposes the allocation state machine.
func (n *Node) Allocator() *Allocator { return n.alloc }

// Radio returns the underlying radio.
func (n *Node) Radio() *radio.Radio { return n.r }

// SetPacketHandler installs the delivery callback.
func (n *Node) SetPacketHandler(h func(data []byte)) { n.handler = h }

// PacketsSent reports data packets accepted for transmission.
func (n *Node) PacketsSent() int64 { return n.sent }

// PacketsDelivered reports data packets reassembled at this node.
func (n *Node) PacketsDelivered() int64 { return n.reasm.Stats().Delivered }

// Reassembler exposes the data reassembler for stats.
func (n *Node) Reassembler() *staticaddr.Reassembler { return n.reasm }

// SendPacket fragments and queues a data packet under the node's acquired
// short address. It fails with ErrNoAddress until allocation completes.
func (n *Node) SendPacket(p []byte) error {
	if n.frag == nil {
		return ErrNoAddress
	}
	tx, err := n.frag.Fragment(p)
	if err != nil {
		return err
	}
	for _, fr := range tx.Fragments {
		payload, bits := wrapData(fr.Bytes, fr.Bits)
		if err := n.r.Send(payload, bits); err != nil {
			return fmt.Errorf("dynaddr: send fragment: %w", err)
		}
	}
	n.sent++
	return nil
}

// onAssigned (re)builds the data fragmenter under the new address.
func (n *Node) onAssigned(addr uint64) {
	frag, err := staticaddr.NewFragmenter(n.fragCfg, addr)
	if err != nil {
		// Configuration error; leave the node data-mute rather than
		// panic inside a simulation event.
		n.frag = nil
		return
	}
	n.frag = frag
}

// onFrame demultiplexes received frames between the allocator and the
// data reassembler.
func (n *Node) onFrame(f radio.Frame) {
	ctrl, data, isControl, err := n.codec.decode(f.Payload)
	if err != nil {
		return
	}
	if isControl {
		n.alloc.HandleControl(ctrl)
		return
	}
	n.reasm.Ingest(data)
}
