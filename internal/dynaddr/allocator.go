package dynaddr

import (
	"math/rand/v2"
	"time"

	"retri/internal/radio"
	"retri/internal/sim"
)

// State is an allocator's lifecycle position.
type State int

// Allocation states.
const (
	// Unassigned means no address and no claim in progress.
	Unassigned State = iota + 1
	// Claiming means a candidate is being advertised and defended
	// against.
	Claiming
	// Assigned means the node owns a locally unique address.
	Assigned
)

// String names the state.
func (s State) String() string {
	switch s {
	case Unassigned:
		return "unassigned"
	case Claiming:
		return "claiming"
	case Assigned:
		return "assigned"
	default:
		return "invalid"
	}
}

// Config parameterizes the allocation protocol.
type Config struct {
	// AddrBits is the local address width (the whole point is that this
	// is small).
	AddrBits int
	// ClaimCount is how many CLAIMs are sent before taking an address.
	ClaimCount int
	// ClaimInterval spaces successive CLAIMs; the node listens for
	// objections in between.
	ClaimInterval time.Duration
	// AnnounceInterval spaces keepalive ANNOUNCEs once assigned; zero
	// disables them.
	AnnounceInterval time.Duration
	// Horizon, when positive, stops the keepalive chain from scheduling
	// past it, so a bounded experiment's event queue drains — the same
	// freeze-at-horizon idiom mobility timers follow. Zero keeps
	// keepalives running forever.
	Horizon time.Duration
	// HeardTTL is how long a heard address is considered in use.
	HeardTTL time.Duration
}

func (c Config) withDefaults() Config {
	if c.AddrBits == 0 {
		c.AddrBits = 10
	}
	if c.ClaimCount == 0 {
		c.ClaimCount = 3
	}
	if c.ClaimInterval == 0 {
		c.ClaimInterval = 200 * time.Millisecond
	}
	if c.HeardTTL == 0 {
		c.HeardTTL = 30 * time.Second
	}
	return c
}

// Stats counts the protocol's work — the overhead AFF avoids.
type Stats struct {
	ClaimsSent    int64
	DefendsSent   int64
	AnnouncesSent int64
	// ControlBits totals meaningful bits of control traffic transmitted.
	ControlBits int64
	// Conflicts counts claims abandoned after an objection or a
	// competing claim.
	Conflicts int64
	// Acquisitions counts addresses successfully taken.
	Acquisitions int64
}

// Allocator runs claim-listen-defend on one radio. It does not own the
// radio's handler; the owning node must route control frames to
// HandleControl.
type Allocator struct {
	eng   *sim.Engine
	r     *radio.Radio
	rng   *rand.Rand
	cfg   Config
	codec codec

	state      State
	addr       uint64
	nonce      uint16
	claimsLeft int
	claimTimer *sim.Timer
	// announceGen invalidates keepalive chains across re-acquisitions: a
	// stale chain from an earlier assignment must not double the
	// announce rate of the current one.
	announceGen int
	// send transmits one encoded control frame; defaults to the radio,
	// replaceable so a multi-hop relay can envelope control traffic.
	send func(payload []byte, bits int) error

	// heard maps addresses believed in use to their last-heard time.
	heard map[uint64]time.Duration

	stats      Stats
	onAssigned func(addr uint64)
}

// NewAllocator builds an allocator on r. onAssigned, if non-nil, fires
// each time an address is acquired.
func NewAllocator(eng *sim.Engine, r *radio.Radio, cfg Config, rng *rand.Rand, onAssigned func(addr uint64)) *Allocator {
	cfg = cfg.withDefaults()
	a := &Allocator{
		eng:        eng,
		r:          r,
		rng:        rng,
		cfg:        cfg,
		codec:      codec{addrBits: cfg.AddrBits},
		state:      Unassigned,
		heard:      make(map[uint64]time.Duration),
		onAssigned: onAssigned,
	}
	a.send = r.Send
	return a
}

// SetSend replaces the control-frame transmit path (e.g. to envelope
// control traffic through a multi-hop relay). Nil restores the radio.
func (a *Allocator) SetSend(fn func(payload []byte, bits int) error) {
	if fn == nil {
		fn = a.r.Send
	}
	a.send = fn
}

// State reports the allocator's lifecycle position.
func (a *Allocator) State() State { return a.state }

// Addr returns the owned address; ok is false unless Assigned.
func (a *Allocator) Addr() (addr uint64, ok bool) {
	return a.addr, a.state == Assigned
}

// Stats returns a snapshot of protocol counters.
func (a *Allocator) Stats() Stats { return a.stats }

// Start begins claiming an address. It is a no-op when already claiming or
// assigned.
func (a *Allocator) Start() {
	if a.state != Unassigned {
		return
	}
	a.beginClaim()
}

// Release abandons the current address or claim (e.g. before the node
// powers down), returning the allocator to Unassigned.
func (a *Allocator) Release() {
	if a.claimTimer != nil {
		a.claimTimer.Cancel()
		a.claimTimer = nil
	}
	a.announceGen++
	a.state = Unassigned
}

// Reset is Release plus amnesia: the heard-address table — RAM state — is
// wiped, modelling a crash rather than a graceful power-down. The node
// must relearn which addresses are taken, which is exactly what makes
// churned re-allocation expensive.
func (a *Allocator) Reset() {
	a.Release()
	a.heard = make(map[uint64]time.Duration)
}

// beginClaim draws a candidate not recently heard and starts advertising.
func (a *Allocator) beginClaim() {
	a.state = Claiming
	a.addr = a.pickCandidate()
	a.nonce = uint16(a.rng.Uint64())
	a.claimsLeft = a.cfg.ClaimCount
	a.sendClaim()
}

// pickCandidate draws uniformly from addresses not believed in use,
// falling back to a uniform draw when everything has been heard.
func (a *Allocator) pickCandidate() uint64 {
	size := uint64(1) << uint(a.cfg.AddrBits)
	a.expireHeard()
	if uint64(len(a.heard)) >= size {
		return a.rng.Uint64N(size)
	}
	for i := 0; i < 256; i++ {
		addr := a.rng.Uint64N(size)
		if _, inUse := a.heard[addr]; !inUse {
			return addr
		}
	}
	return a.rng.Uint64N(size)
}

func (a *Allocator) expireHeard() {
	cutoff := a.eng.Now() - a.cfg.HeardTTL
	for addr, at := range a.heard {
		if at < cutoff {
			delete(a.heard, addr)
		}
	}
}

// sendClaim broadcasts one CLAIM and schedules the next step.
func (a *Allocator) sendClaim() {
	if a.state != Claiming {
		return
	}
	if a.claimsLeft == 0 {
		// Unopposed through the whole claim phase: take the address.
		a.state = Assigned
		a.stats.Acquisitions++
		if a.cfg.AnnounceInterval > 0 {
			a.scheduleAnnounce()
		}
		if a.onAssigned != nil {
			a.onAssigned(a.addr)
		}
		return
	}
	a.claimsLeft--
	a.transmit(Control{Kind: MsgClaim, Addr: a.addr, Nonce: a.nonce})
	a.stats.ClaimsSent++
	a.claimTimer = a.eng.Schedule(a.cfg.ClaimInterval, a.sendClaim)
}

func (a *Allocator) scheduleAnnounce() {
	if a.cfg.Horizon > 0 && a.eng.Now()+a.cfg.AnnounceInterval >= a.cfg.Horizon {
		return
	}
	gen := a.announceGen
	a.eng.Schedule(a.cfg.AnnounceInterval, func() {
		if a.state != Assigned || a.announceGen != gen {
			return
		}
		a.transmit(Control{Kind: MsgAnnounce, Addr: a.addr, Nonce: a.nonce})
		a.stats.AnnouncesSent++
		a.scheduleAnnounce()
	})
}

// transmit encodes and queues a control frame.
func (a *Allocator) transmit(m Control) {
	payload, bits, err := a.codec.encodeControl(m)
	if err != nil {
		return
	}
	if err := a.send(payload, bits); err != nil {
		return
	}
	a.stats.ControlBits += int64(bits)
}

// HandleControl processes a received control message.
func (a *Allocator) HandleControl(m Control) {
	switch m.Kind {
	case MsgClaim:
		a.heard[m.Addr] = a.eng.Now()
		switch {
		case a.state == Assigned && m.Addr == a.addr:
			// Defend the owned address.
			a.transmit(Control{Kind: MsgDefend, Addr: a.addr, Nonce: a.nonce})
			a.stats.DefendsSent++
		case a.state == Claiming && m.Addr == a.addr && m.Nonce != a.nonce:
			// A competing claim for the same candidate: both back off
			// and re-draw (resolution by re-randomization).
			a.abortClaim()
		}
	case MsgDefend:
		a.heard[m.Addr] = a.eng.Now()
		if a.state == Claiming && m.Addr == a.addr {
			a.abortClaim()
		}
	case MsgAnnounce:
		a.heard[m.Addr] = a.eng.Now()
		if a.state == Claiming && m.Addr == a.addr {
			a.abortClaim()
		}
	}
}

// abortClaim abandons the current candidate and re-draws after a random
// backoff.
func (a *Allocator) abortClaim() {
	a.stats.Conflicts++
	if a.claimTimer != nil {
		a.claimTimer.Cancel()
		a.claimTimer = nil
	}
	a.state = Unassigned
	backoff := time.Duration(a.rng.Int64N(int64(a.cfg.ClaimInterval))) + a.cfg.ClaimInterval/2
	a.eng.Schedule(backoff, func() {
		if a.state == Unassigned {
			a.beginClaim()
		}
	})
}
