package frame

import (
	"fmt"

	"retri/internal/bitio"
)

// StaticCodec encodes and decodes statically addressed fragments: the
// baseline design in which every fragment carries the sender's
// AddrBits-wide unique address and a SeqBits-wide per-sender packet
// sequence number. (Source address, sequence) is then a guaranteed-unique
// packet key, the role IP's (source address, identification) tuple plays
// in Section 2.1.
type StaticCodec struct {
	AddrBits int
	SeqBits  int
}

// DefaultSeqBits matches IP's 16-bit identification field.
const DefaultSeqBits = 16

// StaticIntro is the statically addressed introduction fragment.
type StaticIntro struct {
	Src      uint64
	Seq      uint64
	TotalLen int
	Checksum uint16
}

// StaticData is the statically addressed data fragment.
type StaticData struct {
	Src     uint64
	Seq     uint64
	Offset  int
	Payload []byte
}

// IntroBits returns the meaningful bit length of an introduction fragment.
func (c StaticCodec) IntroBits() int {
	return kindBits + c.AddrBits + c.SeqBits + lenBits + checksumBits
}

// DataHeaderBits returns the meaningful bit length of a data fragment's
// header, excluding payload.
func (c StaticCodec) DataHeaderBits() int {
	return kindBits + c.AddrBits + c.SeqBits + offsetBits
}

// MaxPayload returns the data bytes that fit in one fragment under the MTU.
func (c StaticCodec) MaxPayload(mtu int) int {
	headerBytes := (c.DataHeaderBits() + 7) / 8
	if mtu <= headerBytes {
		return 0
	}
	return mtu - headerBytes
}

func (c StaticCodec) validate() error {
	if c.AddrBits < 1 || c.AddrBits > 64 {
		return fmt.Errorf("%w: address width %d", ErrBadField, c.AddrBits)
	}
	if c.SeqBits < 1 || c.SeqBits > 32 {
		return fmt.Errorf("%w: sequence width %d", ErrBadField, c.SeqBits)
	}
	return nil
}

func (c StaticCodec) checkKey(src, seq uint64) error {
	if c.AddrBits < 64 && src >= 1<<uint(c.AddrBits) {
		return fmt.Errorf("%w: source %d exceeds %d bits", ErrBadField, src, c.AddrBits)
	}
	if seq >= 1<<uint(c.SeqBits) {
		return fmt.Errorf("%w: sequence %d exceeds %d bits", ErrBadField, seq, c.SeqBits)
	}
	return nil
}

// EncodeIntro serializes an introduction fragment, returning the frame
// bytes and the count of meaningful bits.
func (c StaticCodec) EncodeIntro(in StaticIntro) ([]byte, int, error) {
	if err := c.validate(); err != nil {
		return nil, 0, err
	}
	if err := c.checkKey(in.Src, in.Seq); err != nil {
		return nil, 0, err
	}
	if in.TotalLen < 0 || in.TotalLen > MaxPacketLen {
		return nil, 0, fmt.Errorf("%w: total length %d", ErrBadField, in.TotalLen)
	}
	w := getWriter()
	mustWrite(w, kindIntro, kindBits)
	mustWrite(w, in.Src, c.AddrBits)
	mustWrite(w, in.Seq, c.SeqBits)
	mustWrite(w, uint64(in.TotalLen), lenBits)
	mustWrite(w, uint64(in.Checksum), checksumBits)
	bits := w.Len()
	w.Align()
	return seal(w), bits, nil
}

// EncodeData serializes a data fragment, returning the frame bytes and the
// count of meaningful bits.
func (c StaticCodec) EncodeData(d StaticData) ([]byte, int, error) {
	if err := c.validate(); err != nil {
		return nil, 0, err
	}
	if err := c.checkKey(d.Src, d.Seq); err != nil {
		return nil, 0, err
	}
	if d.Offset < 0 || d.Offset > MaxPacketLen {
		return nil, 0, fmt.Errorf("%w: offset %d", ErrBadField, d.Offset)
	}
	if len(d.Payload) == 0 {
		return nil, 0, fmt.Errorf("%w: empty data fragment", ErrBadField)
	}
	w := getWriter()
	mustWrite(w, kindData, kindBits)
	mustWrite(w, d.Src, c.AddrBits)
	mustWrite(w, d.Seq, c.SeqBits)
	mustWrite(w, uint64(d.Offset), offsetBits)
	w.Align()
	w.WriteBytes(d.Payload)
	bits := w.Len()
	return seal(w), bits, nil
}

// Decode parses a fragment, returning *StaticIntro or *StaticData.
func (c StaticCodec) Decode(p []byte) (any, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	r := bitio.NewReader(p)
	kind, err := r.ReadBits(kindBits)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	src, err := r.ReadBits(c.AddrBits)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	seq, err := r.ReadBits(c.SeqBits)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	switch kind {
	case kindIntro:
		total, err := r.ReadBits(lenBits)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
		}
		sum, err := r.ReadBits(checksumBits)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
		}
		return &StaticIntro{Src: src, Seq: seq, TotalLen: int(total), Checksum: uint16(sum)}, nil
	default:
		off, err := r.ReadBits(offsetBits)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
		}
		r.Align()
		n := r.Remaining() / 8
		if n == 0 {
			return nil, fmt.Errorf("%w: data fragment with no payload", ErrTruncated)
		}
		payload := make([]byte, n)
		if err := r.ReadBytes(payload); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
		}
		return &StaticData{Src: src, Seq: seq, Offset: int(off), Payload: payload}, nil
	}
}
