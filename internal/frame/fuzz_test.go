package frame

import (
	"bytes"
	"testing"
)

// FuzzAFFDecode: the AFF decoder must never panic on arbitrary bytes, and
// anything it does decode must re-encode to an equivalent fragment.
func FuzzAFFDecode(f *testing.F) {
	c := AFFCodec{IDBits: 9}
	seedIntro, _, _ := c.EncodeIntro(Intro{ID: 5, TotalLen: 80, Checksum: 0xAB})
	seedData, _, _ := c.EncodeData(Data{ID: 5, Offset: 20, Payload: []byte{1, 2, 3}})
	f.Add(seedIntro, 9, false)
	f.Add(seedData, 9, false)
	f.Add([]byte{}, 1, true)
	f.Add([]byte{0xFF, 0xFF, 0xFF}, 32, true)

	f.Fuzz(func(t *testing.T, p []byte, idBits int, instrument bool) {
		c := AFFCodec{IDBits: ((idBits % 32) + 32) % 32, Instrument: instrument}
		if c.IDBits == 0 {
			c.IDBits = 1
		}
		decoded, err := c.Decode(p)
		if err != nil {
			return
		}
		switch fr := decoded.(type) {
		case *Intro:
			buf, _, err := c.EncodeIntro(*fr)
			if err != nil {
				t.Fatalf("decoded intro failed to re-encode: %v (%+v)", err, fr)
			}
			re, err := c.Decode(buf)
			if err != nil {
				t.Fatalf("re-decode: %v", err)
			}
			ri := re.(*Intro)
			if ri.ID != fr.ID || ri.TotalLen != fr.TotalLen || ri.Checksum != fr.Checksum {
				t.Fatalf("intro round trip drift: %+v vs %+v", fr, ri)
			}
		case *Data:
			buf, _, err := c.EncodeData(*fr)
			if err != nil {
				t.Fatalf("decoded data failed to re-encode: %v (%+v)", err, fr)
			}
			re, err := c.Decode(buf)
			if err != nil {
				t.Fatalf("re-decode: %v", err)
			}
			rd := re.(*Data)
			if rd.ID != fr.ID || rd.Offset != fr.Offset || !bytes.Equal(rd.Payload, fr.Payload) {
				t.Fatalf("data round trip drift")
			}
		default:
			t.Fatalf("unexpected decode type %T", decoded)
		}
	})
}

// FuzzStaticDecode: same contract for the statically addressed format.
func FuzzStaticDecode(f *testing.F) {
	c := StaticCodec{AddrBits: 16, SeqBits: 16}
	seedIntro, _, _ := c.EncodeIntro(StaticIntro{Src: 7, Seq: 3, TotalLen: 10, Checksum: 1})
	seedData, _, _ := c.EncodeData(StaticData{Src: 7, Seq: 3, Offset: 0, Payload: []byte{9}})
	f.Add(seedIntro, 16, 16)
	f.Add(seedData, 16, 16)
	f.Add([]byte{0x00}, 48, 16)

	f.Fuzz(func(t *testing.T, p []byte, addrBits, seqBits int) {
		c := StaticCodec{
			AddrBits: ((addrBits % 64) + 64) % 64,
			SeqBits:  ((seqBits % 32) + 32) % 32,
		}
		if c.AddrBits == 0 {
			c.AddrBits = 1
		}
		if c.SeqBits == 0 {
			c.SeqBits = 1
		}
		decoded, err := c.Decode(p)
		if err != nil {
			return
		}
		switch fr := decoded.(type) {
		case *StaticIntro:
			if _, _, err := c.EncodeIntro(*fr); err != nil {
				t.Fatalf("decoded intro failed to re-encode: %v (%+v)", err, fr)
			}
		case *StaticData:
			if _, _, err := c.EncodeData(*fr); err != nil {
				t.Fatalf("decoded data failed to re-encode: %v (%+v)", err, fr)
			}
		default:
			t.Fatalf("unexpected decode type %T", decoded)
		}
	})
}

// FuzzAFFBitFlip models the channel-corruption threat directly at the
// codec: take a well-formed frame, flip one fuzz-chosen bit, and require
// the decoder to either reject it or produce a fragment that still
// satisfies the re-encode round trip. Whatever survives here is caught
// one layer up by the packet checksum (see the node-level corruption
// test); the codec's own duty is merely to never panic or drift.
func FuzzAFFBitFlip(f *testing.F) {
	f.Add(uint64(5), 80, uint16(0xAB), 20, []byte{1, 2, 3}, 9, uint(0))
	f.Add(uint64(511), 1, uint16(0), 0, []byte{}, 9, uint(13))
	f.Add(uint64(1), 300, uint16(0xFFFF), 299, []byte{0xFF}, 32, uint(77))

	f.Fuzz(func(t *testing.T, id uint64, totalLen int, sum uint16, offset int, payload []byte, idBits int, flip uint) {
		c := AFFCodec{IDBits: ((idBits%32)+32)%32 + 1}
		if c.IDBits > 32 {
			c.IDBits = 32
		}
		id &= 1<<uint(c.IDBits) - 1
		totalLen = ((totalLen % MaxPacketLen) + MaxPacketLen) % MaxPacketLen
		offset = ((offset % MaxPacketLen) + MaxPacketLen) % MaxPacketLen

		check := func(buf []byte) {
			if len(buf) == 0 {
				return
			}
			mut := append([]byte(nil), buf...)
			bit := int(flip) % (8 * len(mut))
			mut[bit/8] ^= 1 << uint(bit%8)
			decoded, err := c.Decode(mut)
			if err != nil {
				return // rejected: fine
			}
			switch fr := decoded.(type) {
			case *Intro:
				re, _, err := c.EncodeIntro(*fr)
				if err != nil {
					t.Fatalf("decoded corrupt intro failed to re-encode: %v (%+v)", err, fr)
				}
				back, err := c.Decode(re)
				if err != nil {
					t.Fatalf("re-decode of corrupt intro: %v", err)
				}
				ri := back.(*Intro)
				if ri.ID != fr.ID || ri.TotalLen != fr.TotalLen || ri.Checksum != fr.Checksum {
					t.Fatalf("corrupt intro round trip drift: %+v vs %+v", fr, ri)
				}
			case *Data:
				if _, _, err := c.EncodeData(*fr); err != nil {
					t.Fatalf("decoded corrupt data failed to re-encode: %v (%+v)", err, fr)
				}
			default:
				t.Fatalf("unexpected decode type %T", decoded)
			}
		}

		if buf, _, err := c.EncodeIntro(Intro{ID: id, TotalLen: totalLen, Checksum: sum}); err == nil {
			check(buf)
		}
		if buf, _, err := c.EncodeData(Data{ID: id, Offset: offset, Payload: payload}); err == nil {
			check(buf)
		}
	})
}

// FuzzStaticBitFlip: the same single-bit-corruption contract for the
// statically addressed format.
func FuzzStaticBitFlip(f *testing.F) {
	f.Add(uint64(7), uint64(3), 10, uint16(1), 0, []byte{9}, uint(0))
	f.Add(uint64(0xFFFF), uint64(0xFFFF), 300, uint16(0xFFFF), 299, []byte{}, uint(50))

	f.Fuzz(func(t *testing.T, src, seq uint64, totalLen int, sum uint16, offset int, payload []byte, flip uint) {
		c := StaticCodec{AddrBits: 16, SeqBits: 16}
		src &= 1<<16 - 1
		seq &= 1<<16 - 1
		totalLen = ((totalLen % MaxPacketLen) + MaxPacketLen) % MaxPacketLen
		offset = ((offset % MaxPacketLen) + MaxPacketLen) % MaxPacketLen

		check := func(buf []byte) {
			if len(buf) == 0 {
				return
			}
			mut := append([]byte(nil), buf...)
			bit := int(flip) % (8 * len(mut))
			mut[bit/8] ^= 1 << uint(bit%8)
			decoded, err := c.Decode(mut)
			if err != nil {
				return
			}
			switch fr := decoded.(type) {
			case *StaticIntro:
				if _, _, err := c.EncodeIntro(*fr); err != nil {
					t.Fatalf("decoded corrupt intro failed to re-encode: %v (%+v)", err, fr)
				}
			case *StaticData:
				if _, _, err := c.EncodeData(*fr); err != nil {
					t.Fatalf("decoded corrupt data failed to re-encode: %v (%+v)", err, fr)
				}
			default:
				t.Fatalf("unexpected decode type %T", decoded)
			}
		}

		if buf, _, err := c.EncodeIntro(StaticIntro{Src: src, Seq: seq, TotalLen: totalLen, Checksum: sum}); err == nil {
			check(buf)
		}
		if buf, _, err := c.EncodeData(StaticData{Src: src, Seq: seq, Offset: offset, Payload: payload}); err == nil {
			check(buf)
		}
	})
}
