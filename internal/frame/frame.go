// Package frame defines the on-air wire formats.
//
// The AFF format is the paper's Section 5 fragment layout: a packet
// introduction carrying the random identifier, total length and checksum,
// followed by data fragments carrying the identifier and a byte offset. No
// fragment carries a source or destination address — that is the design.
//
// The static format is the baseline the paper compares against: every
// fragment carries the sender's statically allocated unique address plus a
// per-sender sequence number, forming a guaranteed-unique packet key
// exactly as IP fragmentation does with (source address, identification).
//
// Both formats are packed with bit precision: an H-bit identifier costs H
// bits on air, not a rounded-up byte. Encoders return the meaningful bit
// count alongside the byte buffer so the radio layer can price airtime and
// energy honestly.
//
// For the Figure 4 methodology, both formats can carry an instrumentation
// trailer with the simulation's ground-truth (node, sequence) pair. The
// reassembler under test never reads it; only the measurement harness does
// (Section 5.1: "the fragment format is augmented to include this
// identifier along with the randomly selected AFF identifier").
package frame

import (
	"errors"
	"fmt"

	"retri/internal/bitio"
)

// Field widths shared by both formats.
const (
	kindBits       = 1
	lenBits        = 16 // packets up to 64 KiB, the paper's driver limit
	checksumBits   = 16
	offsetBits     = 16
	truthBits      = 64 // 32-bit node + 32-bit sequence, instrumentation only
	truthGuardBits = 8  // XOR-fold guard over the trailer, instrumentation only
	widthBits      = 5  // in-band identifier width, stored as IDBits-1 (1..32)

	// MaxPacketLen is the largest packet either format can describe.
	MaxPacketLen = 1<<lenBits - 1

	// MaxIDBits is the widest identifier either AFF format can carry.
	MaxIDBits = 32
)

// Fragment kinds on the wire.
const (
	kindIntro = 0
	kindData  = 1
)

var (
	// ErrTruncated is returned when a frame is too short for its own
	// header.
	ErrTruncated = errors.New("frame: truncated frame")
	// ErrBadField is returned when a field value cannot be encoded.
	ErrBadField = errors.New("frame: field out of range")
)

// Truth is the instrumentation trailer: simulation ground truth identifying
// the true sender and packet. It exists so the harness can count packets
// that would have been lost to identifier collisions (Section 5.1); the
// protocol under test must never consult it.
type Truth struct {
	Node uint32
	Seq  uint32
}

// Intro is a packet-introduction fragment: "containing the packet's AFF
// identifier, total length, and checksum" (Section 5).
type Intro struct {
	ID       uint64
	TotalLen int
	Checksum uint16
	Truth    *Truth
	// IDBits is the identifier width the fragment was decoded with. It is
	// set only by in-band-width codecs (InBandWidth); fixed-width decodes
	// leave it 0, meaning "the codec's configured width".
	IDBits int
}

// Data is a data fragment: the identifier plus "the byte offset of the
// data it carries" (Section 5).
type Data struct {
	ID      uint64
	Offset  int
	Payload []byte
	Truth   *Truth
	// IDBits is the decoded identifier width; see Intro.IDBits.
	IDBits int
}

// AFFCodec encodes and decodes address-free fragments with IDBits-wide
// identifiers. Instrument appends the Truth trailer to every fragment.
//
// InBandWidth switches to the adaptive-width wire format: a 5-bit field
// after the kind bit carries the identifier width (stored as IDBits-1),
// and the identifier that follows is exactly that many bits. Encoding
// still uses the codec's IDBits — an adaptive fragmenter builds one codec
// per transaction at the width its controller chose — while decoding
// trusts the in-band field, so one receiver codec demuxes a mix of widths.
// With InBandWidth unset the wire format is bit-for-bit the original.
type AFFCodec struct {
	IDBits      int
	Instrument  bool
	InBandWidth bool
}

// IntroBits returns the meaningful bit length of an introduction fragment.
func (c AFFCodec) IntroBits() int {
	return kindBits + c.widthOverhead() + c.IDBits + lenBits + checksumBits + c.truthOverhead()
}

// DataHeaderBits returns the meaningful bit length of a data fragment's
// header, excluding payload.
func (c AFFCodec) DataHeaderBits() int {
	return kindBits + c.widthOverhead() + c.IDBits + offsetBits + c.truthOverhead()
}

func (c AFFCodec) widthOverhead() int {
	if c.InBandWidth {
		return widthBits
	}
	return 0
}

// MaxPayload returns the number of data bytes that fit in one data
// fragment under the given MTU (in bytes), or 0 if none fit.
func (c AFFCodec) MaxPayload(mtu int) int {
	headerBytes := (c.DataHeaderBits() + 7) / 8
	if mtu <= headerBytes {
		return 0
	}
	return mtu - headerBytes
}

func (c AFFCodec) truthOverhead() int {
	if c.Instrument {
		return truthBits + truthGuardBits
	}
	return 0
}

func (c AFFCodec) validate() error {
	if c.IDBits < 1 || c.IDBits > 32 {
		return fmt.Errorf("%w: identifier width %d", ErrBadField, c.IDBits)
	}
	return nil
}

// EncodeIntro serializes an introduction fragment, returning the frame
// bytes and the count of meaningful bits.
func (c AFFCodec) EncodeIntro(in Intro) ([]byte, int, error) {
	if err := c.validate(); err != nil {
		return nil, 0, err
	}
	if in.ID >= 1<<uint(c.IDBits) {
		return nil, 0, fmt.Errorf("%w: id %d exceeds %d bits", ErrBadField, in.ID, c.IDBits)
	}
	if in.TotalLen < 0 || in.TotalLen > MaxPacketLen {
		return nil, 0, fmt.Errorf("%w: total length %d", ErrBadField, in.TotalLen)
	}
	w := getWriter()
	mustWrite(w, kindIntro, kindBits)
	c.writeWidth(w)
	mustWrite(w, in.ID, c.IDBits)
	mustWrite(w, uint64(in.TotalLen), lenBits)
	mustWrite(w, uint64(in.Checksum), checksumBits)
	writeTruth(w, c.Instrument, in.Truth)
	bits := w.Len()
	w.Align()
	return seal(w), bits, nil
}

// EncodeData serializes a data fragment, returning the frame bytes and the
// count of meaningful bits. The payload begins at the next byte boundary
// after the header.
func (c AFFCodec) EncodeData(d Data) ([]byte, int, error) {
	if err := c.validate(); err != nil {
		return nil, 0, err
	}
	if d.ID >= 1<<uint(c.IDBits) {
		return nil, 0, fmt.Errorf("%w: id %d exceeds %d bits", ErrBadField, d.ID, c.IDBits)
	}
	if d.Offset < 0 || d.Offset > MaxPacketLen {
		return nil, 0, fmt.Errorf("%w: offset %d", ErrBadField, d.Offset)
	}
	if len(d.Payload) == 0 {
		return nil, 0, fmt.Errorf("%w: empty data fragment", ErrBadField)
	}
	w := getWriter()
	mustWrite(w, kindData, kindBits)
	c.writeWidth(w)
	mustWrite(w, d.ID, c.IDBits)
	mustWrite(w, uint64(d.Offset), offsetBits)
	writeTruth(w, c.Instrument, d.Truth)
	w.Align()
	w.WriteBytes(d.Payload)
	bits := w.Len()
	return seal(w), bits, nil
}

// Decode parses a fragment. It returns *Intro or *Data.
func (c AFFCodec) Decode(p []byte) (any, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	r := bitio.NewReader(p)
	kind, err := r.ReadBits(kindBits)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	idBits, decodedWidth, err := c.readWidth(r)
	if err != nil {
		return nil, err
	}
	id, err := r.ReadBits(idBits)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	switch kind {
	case kindIntro:
		total, err := r.ReadBits(lenBits)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
		}
		sum, err := r.ReadBits(checksumBits)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
		}
		truth, err := readTruth(r, c.Instrument)
		if err != nil {
			return nil, err
		}
		return &Intro{ID: id, TotalLen: int(total), Checksum: uint16(sum), Truth: truth, IDBits: decodedWidth}, nil
	default: // kindData; a 1-bit field has no other values
		off, err := r.ReadBits(offsetBits)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
		}
		truth, err := readTruth(r, c.Instrument)
		if err != nil {
			return nil, err
		}
		r.Align()
		n := r.Remaining() / 8
		if n == 0 {
			return nil, fmt.Errorf("%w: data fragment with no payload", ErrTruncated)
		}
		payload := make([]byte, n)
		if err := r.ReadBytes(payload); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
		}
		return &Data{ID: id, Offset: int(off), Payload: payload, Truth: truth, IDBits: decodedWidth}, nil
	}
}

// writeWidth emits the in-band width field (IDBits-1) when enabled.
func (c AFFCodec) writeWidth(w *bitio.Writer) {
	if c.InBandWidth {
		mustWrite(w, uint64(c.IDBits-1), widthBits)
	}
}

// readWidth returns the identifier width to decode with. In fixed mode it
// is the codec's own width and the reported decoded width is 0; in in-band
// mode the width is read off the wire (always 1..32 — every 5-bit value
// plus one is a legal width) and reported back to the caller.
func (c AFFCodec) readWidth(r *bitio.Reader) (idBits, decodedWidth int, err error) {
	if !c.InBandWidth {
		return c.IDBits, 0, nil
	}
	v, err := r.ReadBits(widthBits)
	if err != nil {
		return 0, 0, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	return int(v) + 1, int(v) + 1, nil
}

func writeTruth(w *bitio.Writer, on bool, t *Truth) {
	if !on {
		return
	}
	var node, seq uint32
	if t != nil {
		node, seq = t.Node, t.Seq
	}
	mustWrite(w, uint64(node), 32)
	mustWrite(w, uint64(seq), 32)
	mustWrite(w, uint64(truthGuard(node, seq)), truthGuardBits)
}

// readTruth parses the instrumentation trailer. The trailer sits outside
// the packet checksum's coverage, so a channel error here would otherwise
// forge ground truth and make a perfectly good delivery look misdelivered
// to the oracle. The guard byte detects any single-bit damage; a damaged
// trailer decodes as nil — "unauditable" — never as a wrong identity.
func readTruth(r *bitio.Reader, on bool) (*Truth, error) {
	if !on {
		return nil, nil
	}
	node, err := r.ReadBits(32)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	seq, err := r.ReadBits(32)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	guard, err := r.ReadBits(truthGuardBits)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	if uint8(guard) != truthGuard(uint32(node), uint32(seq)) {
		return nil, nil
	}
	return &Truth{Node: uint32(node), Seq: uint32(seq)}, nil
}

// truthGuard folds the trailer into one byte. An XOR fold flips exactly
// one guard bit for any single flipped trailer bit, so every single-bit
// error is caught; the constant keeps an all-zero trailer from carrying an
// all-zero (trivially forgeable) guard.
func truthGuard(node, seq uint32) uint8 {
	v := node ^ seq
	v ^= v >> 16
	v ^= v >> 8
	return uint8(v) ^ 0xA5
}

// mustWrite panics on a width programming error; all widths in this
// package are compile-time constants or validated first.
func mustWrite(w *bitio.Writer, v uint64, n int) {
	if err := w.WriteBits(v, n); err != nil {
		panic(err)
	}
}
