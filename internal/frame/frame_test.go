package frame

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestAFFIntroRoundTrip(t *testing.T) {
	c := AFFCodec{IDBits: 9}
	in := Intro{ID: 0x1AB, TotalLen: 80, Checksum: 0xBEEF}
	buf, bits, err := c.EncodeIntro(in)
	if err != nil {
		t.Fatalf("EncodeIntro: %v", err)
	}
	if want := 1 + 9 + 16 + 16; bits != want {
		t.Errorf("intro bits = %d, want %d", bits, want)
	}
	if bits != c.IntroBits() {
		t.Errorf("IntroBits() = %d, encoder produced %d", c.IntroBits(), bits)
	}
	got, err := c.Decode(buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	gi, ok := got.(*Intro)
	if !ok {
		t.Fatalf("Decode returned %T, want *Intro", got)
	}
	if gi.ID != in.ID || gi.TotalLen != in.TotalLen || gi.Checksum != in.Checksum {
		t.Errorf("round trip: got %+v, want %+v", gi, in)
	}
	if gi.Truth != nil {
		t.Error("uninstrumented decode produced a Truth trailer")
	}
}

func TestAFFDataRoundTrip(t *testing.T) {
	c := AFFCodec{IDBits: 9}
	d := Data{ID: 5, Offset: 48, Payload: []byte("sensor reading")}
	buf, bits, err := c.EncodeData(d)
	if err != nil {
		t.Fatalf("EncodeData: %v", err)
	}
	// Header 26 bits aligns to 32, plus payload.
	wantBits := ((1+9+16+7)/8)*8 + 8*len(d.Payload)
	if bits != wantBits {
		t.Errorf("data bits = %d, want %d", bits, wantBits)
	}
	got, err := c.Decode(buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	gd, ok := got.(*Data)
	if !ok {
		t.Fatalf("Decode returned %T, want *Data", got)
	}
	if gd.ID != d.ID || gd.Offset != d.Offset || !bytes.Equal(gd.Payload, d.Payload) {
		t.Errorf("round trip: got %+v, want %+v", gd, d)
	}
}

func TestAFFInstrumentedRoundTrip(t *testing.T) {
	c := AFFCodec{IDBits: 4, Instrument: true}
	truth := &Truth{Node: 3, Seq: 41}
	buf, _, err := c.EncodeIntro(Intro{ID: 7, TotalLen: 80, Checksum: 1, Truth: truth})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	gi := got.(*Intro)
	if gi.Truth == nil || *gi.Truth != *truth {
		t.Errorf("intro truth = %+v, want %+v", gi.Truth, truth)
	}

	buf, _, err = c.EncodeData(Data{ID: 7, Offset: 16, Payload: []byte{1}, Truth: truth})
	if err != nil {
		t.Fatal(err)
	}
	got, err = c.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	gd := got.(*Data)
	if gd.Truth == nil || *gd.Truth != *truth {
		t.Errorf("data truth = %+v, want %+v", gd.Truth, truth)
	}
}

func TestAFFInstrumentNilTruthEncodesZero(t *testing.T) {
	c := AFFCodec{IDBits: 4, Instrument: true}
	buf, _, err := c.EncodeIntro(Intro{ID: 1, TotalLen: 2, Checksum: 3})
	if err != nil {
		t.Fatal(err)
	}
	gi, err := c.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	truth := gi.(*Intro).Truth
	if truth == nil || truth.Node != 0 || truth.Seq != 0 {
		t.Errorf("nil truth should encode as zeros, got %+v", truth)
	}
}

func TestAFFInstrumentationCostsBits(t *testing.T) {
	plain := AFFCodec{IDBits: 9}
	inst := AFFCodec{IDBits: 9, Instrument: true}
	// 64 bits of (node, seq) ground truth plus the 8-bit trailer guard.
	if inst.IntroBits() != plain.IntroBits()+72 {
		t.Errorf("instrumented intro = %d bits, want %d", inst.IntroBits(), plain.IntroBits()+72)
	}
	if inst.DataHeaderBits() != plain.DataHeaderBits()+72 {
		t.Errorf("instrumented data header = %d bits, want %d", inst.DataHeaderBits(), plain.DataHeaderBits()+72)
	}
}

// TestAFFTruthGuardCatchesEveryBitFlip flips each trailer bit of an
// instrumented fragment in turn. The trailer is outside the packet
// checksum's coverage, so without its own guard a flip there would forge
// ground truth; with the guard every such fragment must decode with a nil
// (unauditable) Truth, never a wrong one.
func TestAFFTruthGuardCatchesEveryBitFlip(t *testing.T) {
	c := AFFCodec{IDBits: 4, Instrument: true}
	truth := &Truth{Node: 3, Seq: 41}
	buf, _, err := c.EncodeData(Data{ID: 7, Offset: 16, Payload: []byte{1, 2}, Truth: truth})
	if err != nil {
		t.Fatal(err)
	}
	trailerStart := c.DataHeaderBits() - (truthBits + truthGuardBits)
	for bit := trailerStart; bit < c.DataHeaderBits(); bit++ {
		damaged := append([]byte(nil), buf...)
		damaged[bit/8] ^= 0x80 >> uint(bit%8)
		got, err := c.Decode(damaged)
		if err != nil {
			t.Fatalf("bit %d: decode failed: %v", bit, err)
		}
		gd := got.(*Data)
		if gd.Truth != nil {
			t.Fatalf("bit %d: damaged trailer decoded as Truth %+v, want nil", bit, gd.Truth)
		}
	}
	// Sanity: the clean frame still round-trips its truth.
	got, err := c.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if gd := got.(*Data); gd.Truth == nil || *gd.Truth != *truth {
		t.Fatalf("clean frame truth = %+v, want %+v", gd.Truth, truth)
	}
}

func TestAFFEncodeValidation(t *testing.T) {
	tests := []struct {
		name string
		c    AFFCodec
		run  func(c AFFCodec) error
	}{
		{"id too wide", AFFCodec{IDBits: 4}, func(c AFFCodec) error {
			_, _, err := c.EncodeIntro(Intro{ID: 16})
			return err
		}},
		{"bad codec width 0", AFFCodec{IDBits: 0}, func(c AFFCodec) error {
			_, _, err := c.EncodeIntro(Intro{})
			return err
		}},
		{"bad codec width 33", AFFCodec{IDBits: 33}, func(c AFFCodec) error {
			_, _, err := c.EncodeData(Data{Payload: []byte{1}})
			return err
		}},
		{"negative length", AFFCodec{IDBits: 4}, func(c AFFCodec) error {
			_, _, err := c.EncodeIntro(Intro{TotalLen: -1})
			return err
		}},
		{"length too large", AFFCodec{IDBits: 4}, func(c AFFCodec) error {
			_, _, err := c.EncodeIntro(Intro{TotalLen: MaxPacketLen + 1})
			return err
		}},
		{"negative offset", AFFCodec{IDBits: 4}, func(c AFFCodec) error {
			_, _, err := c.EncodeData(Data{Offset: -1, Payload: []byte{1}})
			return err
		}},
		{"empty payload", AFFCodec{IDBits: 4}, func(c AFFCodec) error {
			_, _, err := c.EncodeData(Data{})
			return err
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.run(tt.c); !errors.Is(err, ErrBadField) {
				t.Errorf("err = %v, want ErrBadField", err)
			}
		})
	}
}

func TestAFFDecodeTruncated(t *testing.T) {
	c := AFFCodec{IDBits: 9}
	buf, _, err := c.EncodeIntro(Intro{ID: 1, TotalLen: 100, Checksum: 0xAA})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(buf); cut++ {
		if _, err := c.Decode(buf[:cut]); !errors.Is(err, ErrTruncated) {
			t.Errorf("Decode(%d/%d bytes) err = %v, want ErrTruncated", cut, len(buf), err)
		}
	}
}

func TestAFFDecodeEmptyDataPayload(t *testing.T) {
	// Craft a data fragment header with no payload bytes after alignment.
	c := AFFCodec{IDBits: 7}
	buf, _, err := c.EncodeData(Data{ID: 1, Offset: 0, Payload: []byte{0xEE}})
	if err != nil {
		t.Fatal(err)
	}
	headerOnly := buf[:len(buf)-1]
	if _, err := c.Decode(headerOnly); !errors.Is(err, ErrTruncated) {
		t.Errorf("payload-less data fragment err = %v, want ErrTruncated", err)
	}
}

func TestAFFMaxPayload(t *testing.T) {
	c := AFFCodec{IDBits: 9}
	// Header: 26 bits -> 4 bytes. 27-byte MTU leaves 23.
	if got := c.MaxPayload(27); got != 23 {
		t.Errorf("MaxPayload(27) = %d, want 23", got)
	}
	if got := c.MaxPayload(4); got != 0 {
		t.Errorf("MaxPayload(4) = %d, want 0", got)
	}
	// Instrumented header: 26 + 72 trailer bits -> 13 bytes.
	inst := AFFCodec{IDBits: 9, Instrument: true}
	if got := inst.MaxPayload(27); got != 27-13 {
		t.Errorf("instrumented MaxPayload(27) = %d, want 14", got)
	}
}

// TestAFFRoundTripProperty fuzzes id widths, offsets and payloads.
func TestAFFRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		c := AFFCodec{IDBits: int(rng.Uint64N(32)) + 1, Instrument: rng.Uint64N(2) == 0}
		id := rng.Uint64N(uint64(1) << uint(c.IDBits))
		payload := make([]byte, rng.Uint64N(20)+1)
		for i := range payload {
			payload[i] = byte(rng.Uint64())
		}
		truth := &Truth{Node: uint32(rng.Uint64()), Seq: uint32(rng.Uint64())}
		d := Data{ID: id, Offset: int(rng.Uint64N(MaxPacketLen + 1)), Payload: payload, Truth: truth}
		buf, _, err := c.EncodeData(d)
		if err != nil {
			return false
		}
		got, err := c.Decode(buf)
		if err != nil {
			return false
		}
		gd, ok := got.(*Data)
		if !ok || gd.ID != d.ID || gd.Offset != d.Offset || !bytes.Equal(gd.Payload, d.Payload) {
			return false
		}
		if c.Instrument && (gd.Truth == nil || *gd.Truth != *truth) {
			return false
		}
		in := Intro{ID: id, TotalLen: int(rng.Uint64N(MaxPacketLen + 1)), Checksum: uint16(rng.Uint64()), Truth: truth}
		buf, _, err = c.EncodeIntro(in)
		if err != nil {
			return false
		}
		got, err = c.Decode(buf)
		if err != nil {
			return false
		}
		gi, ok := got.(*Intro)
		return ok && gi.ID == in.ID && gi.TotalLen == in.TotalLen && gi.Checksum == in.Checksum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAFFInBandWidthCostsBits(t *testing.T) {
	plain := AFFCodec{IDBits: 9}
	adaptive := AFFCodec{IDBits: 9, InBandWidth: true}
	if adaptive.IntroBits() != plain.IntroBits()+5 {
		t.Errorf("in-band intro = %d bits, want %d", adaptive.IntroBits(), plain.IntroBits()+5)
	}
	if adaptive.DataHeaderBits() != plain.DataHeaderBits()+5 {
		t.Errorf("in-band data header = %d bits, want %d", adaptive.DataHeaderBits(), plain.DataHeaderBits()+5)
	}
}

// TestAFFInBandWidthDemux is the adaptive-width contract: one receiver
// codec decodes fragments produced at any width, recovering both the
// identifier and the width it was sent at.
func TestAFFInBandWidthDemux(t *testing.T) {
	rx := AFFCodec{IDBits: MaxIDBits, InBandWidth: true}
	for _, w := range []int{1, 2, 5, 9, 16, 32} {
		tx := AFFCodec{IDBits: w, InBandWidth: true}
		id := uint64(1)<<uint(w) - 1 // all-ones id exercises every bit
		buf, bits, err := tx.EncodeIntro(Intro{ID: id, TotalLen: 80, Checksum: 0xBEEF})
		if err != nil {
			t.Fatalf("width %d: EncodeIntro: %v", w, err)
		}
		if bits != tx.IntroBits() {
			t.Errorf("width %d: intro bits = %d, want %d", w, bits, tx.IntroBits())
		}
		got, err := rx.Decode(buf)
		if err != nil {
			t.Fatalf("width %d: Decode: %v", w, err)
		}
		gi, ok := got.(*Intro)
		if !ok {
			t.Fatalf("width %d: Decode returned %T, want *Intro", w, got)
		}
		if gi.ID != id || gi.IDBits != w {
			t.Errorf("width %d: decoded id=%d bits=%d, want id=%d bits=%d", w, gi.ID, gi.IDBits, id, w)
		}

		buf, _, err = tx.EncodeData(Data{ID: id, Offset: 32, Payload: []byte{0xA5}})
		if err != nil {
			t.Fatalf("width %d: EncodeData: %v", w, err)
		}
		gd, err := rx.Decode(buf)
		if err != nil {
			t.Fatalf("width %d: Decode data: %v", w, err)
		}
		d, ok := gd.(*Data)
		if !ok {
			t.Fatalf("width %d: Decode returned %T, want *Data", w, gd)
		}
		if d.ID != id || d.IDBits != w {
			t.Errorf("width %d: decoded data id=%d bits=%d, want id=%d bits=%d", w, d.ID, d.IDBits, id, w)
		}
	}
}

// TestAFFFixedWidthBytesUnchanged pins the original wire format: a codec
// without InBandWidth must emit exactly the bytes it always has, and its
// decodes must leave IDBits zero.
func TestAFFFixedWidthBytesUnchanged(t *testing.T) {
	c := AFFCodec{IDBits: 9}
	buf, bits, err := c.EncodeIntro(Intro{ID: 0x1AB, TotalLen: 80, Checksum: 0xBEEF})
	if err != nil {
		t.Fatal(err)
	}
	if bits != 1+9+16+16 {
		t.Errorf("fixed intro bits = %d, want 42", bits)
	}
	// kind=0, id=0x1AB (9 bits), len=80, sum=0xBEEF, packed MSB-first.
	want := []byte{0x6A, 0xC0, 0x14, 0x2F, 0xBB, 0xC0}
	if !bytes.Equal(buf, want) {
		t.Errorf("fixed intro bytes = %x, want %x", buf, want)
	}
	got, err := c.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if gi := got.(*Intro); gi.IDBits != 0 {
		t.Errorf("fixed decode set IDBits = %d, want 0", gi.IDBits)
	}
}

func BenchmarkAFFEncodeData(b *testing.B) {
	c := AFFCodec{IDBits: 9}
	payload := make([]byte, 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _, _ = c.EncodeData(Data{ID: 5, Offset: 40, Payload: payload})
	}
}

func BenchmarkAFFDecodeData(b *testing.B) {
	c := AFFCodec{IDBits: 9}
	buf, _, _ := c.EncodeData(Data{ID: 5, Offset: 40, Payload: make([]byte, 20)})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = c.Decode(buf)
	}
}
