package frame

import (
	"sync"

	"retri/internal/bitio"
)

// Encoders are the hottest allocation site in a trial: every fragment of
// every transaction builds a bit-packed buffer, and the zero-value
// bitio.Writer grows it through the append size ladder — seven
// allocations for a typical instrumented frame. The pool below keeps
// warmed writers around so an encode costs exactly one allocation: the
// sealed output buffer.
//
// Sealing copies rather than aliasing: encoded frames outlive the encode
// call by design (the medium holds them in flight, receivers retain
// decoded payloads), so the writer's internal buffer can never be handed
// out. The copy is exact-size, which also keeps frames from pinning a
// writer-sized backing array.
var writerPool = sync.Pool{New: func() any { return bitio.NewWriter() }}

// getWriter returns an empty pooled writer.
func getWriter() *bitio.Writer {
	w := writerPool.Get().(*bitio.Writer)
	w.Reset()
	return w
}

// seal copies the writer's packed bytes into an exact-size buffer and
// returns the writer to the pool. The writer must not be used afterwards.
func seal(w *bitio.Writer) []byte {
	src := w.Bytes()
	out := make([]byte, len(src))
	copy(out, src)
	writerPool.Put(w)
	return out
}
