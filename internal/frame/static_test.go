package frame

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestStaticIntroRoundTrip(t *testing.T) {
	c := StaticCodec{AddrBits: 16, SeqBits: 16}
	in := StaticIntro{Src: 0xABCD, Seq: 77, TotalLen: 80, Checksum: 0xF00D}
	buf, bits, err := c.EncodeIntro(in)
	if err != nil {
		t.Fatalf("EncodeIntro: %v", err)
	}
	if want := 1 + 16 + 16 + 16 + 16; bits != want {
		t.Errorf("intro bits = %d, want %d", bits, want)
	}
	got, err := c.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	gi, ok := got.(*StaticIntro)
	if !ok {
		t.Fatalf("Decode returned %T", got)
	}
	if *gi != in {
		t.Errorf("round trip: got %+v, want %+v", *gi, in)
	}
}

func TestStaticDataRoundTrip(t *testing.T) {
	c := StaticCodec{AddrBits: 48, SeqBits: 16}
	d := StaticData{Src: 0xDEADBEEFCAFE, Seq: 3, Offset: 40, Payload: []byte{9, 8, 7}}
	buf, _, err := c.EncodeData(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	gd, ok := got.(*StaticData)
	if !ok {
		t.Fatalf("Decode returned %T", got)
	}
	if gd.Src != d.Src || gd.Seq != d.Seq || gd.Offset != d.Offset || !bytes.Equal(gd.Payload, d.Payload) {
		t.Errorf("round trip: got %+v, want %+v", gd, d)
	}
}

func TestStaticHeaderCostExceedsAFF(t *testing.T) {
	// The comparison at the heart of the paper: a 9-bit AFF identifier vs
	// a 16-bit (or wider) static address plus sequence number.
	aff := AFFCodec{IDBits: 9}
	st := StaticCodec{AddrBits: 16, SeqBits: 16}
	if aff.DataHeaderBits() >= st.DataHeaderBits() {
		t.Errorf("AFF header (%d bits) should be smaller than static header (%d bits)",
			aff.DataHeaderBits(), st.DataHeaderBits())
	}
	if aff.MaxPayload(27) <= st.MaxPayload(27) {
		t.Errorf("AFF payload (%d) should exceed static payload (%d) at MTU 27",
			aff.MaxPayload(27), st.MaxPayload(27))
	}
}

func TestStaticValidation(t *testing.T) {
	tests := []struct {
		name string
		c    StaticCodec
		run  func(c StaticCodec) error
	}{
		{"addr width 0", StaticCodec{AddrBits: 0, SeqBits: 16}, func(c StaticCodec) error {
			_, _, err := c.EncodeIntro(StaticIntro{})
			return err
		}},
		{"addr width 65", StaticCodec{AddrBits: 65, SeqBits: 16}, func(c StaticCodec) error {
			_, _, err := c.EncodeIntro(StaticIntro{})
			return err
		}},
		{"seq width 0", StaticCodec{AddrBits: 16, SeqBits: 0}, func(c StaticCodec) error {
			_, _, err := c.EncodeIntro(StaticIntro{})
			return err
		}},
		{"src too wide", StaticCodec{AddrBits: 8, SeqBits: 16}, func(c StaticCodec) error {
			_, _, err := c.EncodeIntro(StaticIntro{Src: 256})
			return err
		}},
		{"seq too wide", StaticCodec{AddrBits: 8, SeqBits: 8}, func(c StaticCodec) error {
			_, _, err := c.EncodeData(StaticData{Seq: 256, Payload: []byte{1}})
			return err
		}},
		{"empty payload", StaticCodec{AddrBits: 8, SeqBits: 8}, func(c StaticCodec) error {
			_, _, err := c.EncodeData(StaticData{})
			return err
		}},
		{"bad offset", StaticCodec{AddrBits: 8, SeqBits: 8}, func(c StaticCodec) error {
			_, _, err := c.EncodeData(StaticData{Offset: -2, Payload: []byte{1}})
			return err
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.run(tt.c); !errors.Is(err, ErrBadField) {
				t.Errorf("err = %v, want ErrBadField", err)
			}
		})
	}
}

func TestStaticDecodeTruncated(t *testing.T) {
	c := StaticCodec{AddrBits: 32, SeqBits: 16}
	buf, _, err := c.EncodeIntro(StaticIntro{Src: 9, Seq: 9, TotalLen: 9, Checksum: 9})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(buf); cut++ {
		if _, err := c.Decode(buf[:cut]); !errors.Is(err, ErrTruncated) {
			t.Errorf("Decode(%d bytes) err = %v, want ErrTruncated", cut, err)
		}
	}
}

func TestStatic64BitAddress(t *testing.T) {
	c := StaticCodec{AddrBits: 64, SeqBits: 16}
	src := ^uint64(0)
	buf, _, err := c.EncodeIntro(StaticIntro{Src: src, Seq: 1, TotalLen: 5, Checksum: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if gi := got.(*StaticIntro); gi.Src != src {
		t.Errorf("64-bit src round trip = %x, want %x", gi.Src, src)
	}
}

func TestStaticRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 4))
		c := StaticCodec{AddrBits: int(rng.Uint64N(64)) + 1, SeqBits: int(rng.Uint64N(32)) + 1}
		var srcMask uint64 = ^uint64(0)
		if c.AddrBits < 64 {
			srcMask = 1<<uint(c.AddrBits) - 1
		}
		d := StaticData{
			Src:     rng.Uint64() & srcMask,
			Seq:     rng.Uint64N(uint64(1) << uint(c.SeqBits)),
			Offset:  int(rng.Uint64N(MaxPacketLen + 1)),
			Payload: []byte{byte(rng.Uint64()), byte(rng.Uint64())},
		}
		buf, _, err := c.EncodeData(d)
		if err != nil {
			return false
		}
		got, err := c.Decode(buf)
		if err != nil {
			return false
		}
		gd, ok := got.(*StaticData)
		return ok && gd.Src == d.Src && gd.Seq == d.Seq && gd.Offset == d.Offset &&
			bytes.Equal(gd.Payload, d.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
