package stats

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= eps
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if a.N() != 0 {
		t.Errorf("N() = %d, want 0", a.N())
	}
	if !math.IsNaN(a.Mean()) || !math.IsNaN(a.Variance()) || !math.IsNaN(a.Min()) || !math.IsNaN(a.Max()) {
		t.Error("empty accumulator should report NaN statistics")
	}
}

func TestAccumulatorSingle(t *testing.T) {
	var a Accumulator
	a.Add(3.5)
	if a.Mean() != 3.5 || a.Min() != 3.5 || a.Max() != 3.5 {
		t.Errorf("single sample: mean=%v min=%v max=%v", a.Mean(), a.Min(), a.Max())
	}
	if !math.IsNaN(a.Variance()) {
		t.Errorf("single-sample variance = %v, want NaN", a.Variance())
	}
	s := a.Summary()
	if s.StdDev != 0 {
		t.Errorf("single-sample Summary stddev = %v, want 0", s.StdDev)
	}
}

func TestAccumulatorKnownValues(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if !almost(a.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", a.Mean())
	}
	// Sample variance of that classic set is 32/7.
	if !almost(a.Variance(), 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", a.Variance(), 32.0/7.0)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", a.Min(), a.Max())
	}
}

// TestWelfordMatchesNaive compares the streaming computation against the
// two-pass textbook formulas on random data.
func TestWelfordMatchesNaive(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 0))
		m := int(n%100) + 2
		xs := make([]float64, m)
		var a Accumulator
		for i := range xs {
			xs[i] = rng.NormFloat64()*10 + 5
			a.Add(xs[i])
		}
		var sum float64
		for _, x := range xs {
			sum += x
		}
		mean := sum / float64(m)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		variance := ss / float64(m-1)
		return almost(a.Mean(), mean, 1e-9) && almost(a.Variance(), variance, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSummaryCI95(t *testing.T) {
	var a Accumulator
	for i := 0; i < 4; i++ {
		a.Add(float64(i)) // 0,1,2,3: mean 1.5, sample sd = sqrt(5/3)
	}
	s := a.Summary()
	want := 1.96 * math.Sqrt(5.0/3.0) / 2
	if !almost(s.CI95(), want, 1e-12) {
		t.Errorf("CI95 = %v, want %v", s.CI95(), want)
	}
	if (Summary{N: 1}).CI95() != 0 {
		t.Error("CI95 with n=1 should be 0")
	}
}

func TestSummaryString(t *testing.T) {
	var a Accumulator
	a.Add(1)
	a.Add(3)
	got := a.Summary().String()
	if !strings.Contains(got, "2") || !strings.Contains(got, "n=2") {
		t.Errorf("Summary.String() = %q, want mean 2 and n=2 present", got)
	}
}

func TestSeriesPointsSorted(t *testing.T) {
	s := NewSeries("collisions")
	s.Add(9, 0.5)
	s.Add(3, 0.9)
	s.Add(6, 0.7)
	s.Add(3, 0.8)
	pts := s.Points()
	if len(pts) != 3 {
		t.Fatalf("len(Points) = %d, want 3", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i-1].X >= pts[i].X {
			t.Errorf("points not sorted: %v before %v", pts[i-1].X, pts[i].X)
		}
	}
	if pts[0].Y.N != 2 {
		t.Errorf("x=3 sample count = %d, want 2", pts[0].Y.N)
	}
	if !almost(pts[0].Y.Mean, 0.85, 1e-12) {
		t.Errorf("x=3 mean = %v, want 0.85", pts[0].Y.Mean)
	}
}

func TestSeriesAt(t *testing.T) {
	s := NewSeries("x")
	s.Add(1, 2)
	if _, ok := s.At(7); ok {
		t.Error("At(7) reported a sample where none exists")
	}
	got, ok := s.At(1)
	if !ok || got.Mean != 2 {
		t.Errorf("At(1) = %+v, %v; want mean 2, true", got, ok)
	}
	if s.Len() != 1 {
		t.Errorf("Len() = %d, want 1", s.Len())
	}
}

func TestSeriesName(t *testing.T) {
	if got := NewSeries("model T=5").Name; got != "model T=5" {
		t.Errorf("Name = %q", got)
	}
}
