// Package stats provides the small statistical toolkit used by the
// experiment harness: streaming accumulators (Welford), summaries with
// standard deviations (the paper's Figure 4 error bars are ±1 stddev over
// ten trials), and keyed series for building figure data.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator computes count, mean and variance in one streaming pass using
// Welford's algorithm. The zero value is an empty accumulator.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// N reports the number of samples.
func (a *Accumulator) N() int { return a.n }

// Mean reports the sample mean, or NaN when empty.
func (a *Accumulator) Mean() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.mean
}

// Variance reports the unbiased sample variance (n-1 denominator), or NaN
// with fewer than two samples.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return math.NaN()
	}
	return a.m2 / float64(a.n-1)
}

// StdDev reports the sample standard deviation, or NaN with fewer than two
// samples.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min reports the smallest sample, or NaN when empty.
func (a *Accumulator) Min() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.min
}

// Max reports the largest sample, or NaN when empty.
func (a *Accumulator) Max() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.max
}

// Summary is a frozen view of an accumulator.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summary freezes the accumulator's current state. StdDev is 0 for a single
// sample (so single-trial experiments render without NaNs).
func (a *Accumulator) Summary() Summary {
	sd := a.StdDev()
	if a.n == 1 {
		sd = 0
	}
	return Summary{N: a.n, Mean: a.Mean(), StdDev: sd, Min: a.Min(), Max: a.Max()}
}

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval around the mean.
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.StdDev / math.Sqrt(float64(s.N))
}

// String renders "mean ± stddev (n=N)".
func (s Summary) String() string {
	return fmt.Sprintf("%.6g ± %.3g (n=%d)", s.Mean, s.StdDev, s.N)
}

// Series accumulates samples keyed by a float64 x-coordinate; each distinct
// x gets its own Accumulator. It is the backing store for one curve of a
// figure (e.g. collision rate vs identifier bits).
type Series struct {
	Name string
	byX  map[float64]*Accumulator
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series {
	return &Series{Name: name, byX: make(map[float64]*Accumulator)}
}

// Add folds y into the accumulator for x.
func (s *Series) Add(x, y float64) {
	acc, ok := s.byX[x]
	if !ok {
		acc = &Accumulator{}
		s.byX[x] = acc
	}
	acc.Add(y)
}

// Point is one (x, summary) pair of a series.
type Point struct {
	X float64
	Y Summary
}

// Points returns the series contents sorted by x.
func (s *Series) Points() []Point {
	xs := make([]float64, 0, len(s.byX))
	for x := range s.byX {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	pts := make([]Point, len(xs))
	for i, x := range xs {
		pts[i] = Point{X: x, Y: s.byX[x].Summary()}
	}
	return pts
}

// At returns the summary at x and whether any sample exists there.
func (s *Series) At(x float64) (Summary, bool) {
	acc, ok := s.byX[x]
	if !ok {
		return Summary{}, false
	}
	return acc.Summary(), true
}

// Len reports the number of distinct x values.
func (s *Series) Len() int { return len(s.byX) }
