package aff

import (
	"testing"

	"retri/internal/core"
	"retri/internal/xrand"
)

func TestFragmentWidthAvoidingValidation(t *testing.T) {
	fixed := newFragmenter(t, testConfig(9), 1)
	if _, err := fixed.FragmentWidthAvoiding([]byte("x"), 4, 0); err == nil {
		t.Error("FragmentWidthAvoiding accepted on a fixed-width fragmenter")
	}
	f := newFragmenter(t, adaptiveConfig(9), 1)
	if _, err := f.FragmentWidthAvoiding([]byte("x"), 0, 0); err == nil {
		t.Error("width 0 accepted")
	}
	if _, err := f.FragmentWidthAvoiding([]byte("x"), 10, 0); err == nil {
		t.Error("width beyond the space accepted")
	}
	if _, err := f.FragmentWidthAvoiding(nil, 4, 0); err == nil {
		t.Error("empty packet accepted")
	}
}

// TestFragmentWidthAvoidingRedraws pins the retransmission freshness
// property at a per-transaction width: with a two-identifier pool and the
// previous attempt's composite to avoid, every retry must take the one
// other identifier.
func TestFragmentWidthAvoidingRedraws(t *testing.T) {
	f := newFragmenter(t, adaptiveConfig(9), 3)
	for _, avoidID := range []uint64{0, 1} {
		for i := 0; i < 16; i++ {
			tx, err := f.FragmentWidthAvoiding([]byte("payload"), 1, WidthKey(1, avoidID))
			if err != nil {
				t.Fatalf("FragmentWidthAvoiding: %v", err)
			}
			if tx.IDBits != 1 {
				t.Fatalf("retry drew width %d, want 1", tx.IDBits)
			}
			if tx.ID == avoidID {
				t.Fatalf("retry reused avoided identifier %d", avoidID)
			}
		}
	}
}

// TestFragmentAvoidingComparesComposites is the cross-width regression:
// the avoided key names a (width, id) pair, so the same numeric
// identifier at a different width shares nothing on the air and must NOT
// be redrawn away. A raw-id comparison would starve the width-1 pool
// whenever the previous attempt's raw id covered it.
func TestFragmentAvoidingComparesComposites(t *testing.T) {
	f := newFragmenter(t, adaptiveConfig(9), 5)
	// Previous attempt: width 9, id 0. A width-1 retry may legally draw
	// raw id 0 — only WidthKey(1, 0) would be a true reuse.
	avoid := WidthKey(9, 0)
	seen := make(map[uint64]bool)
	for i := 0; i < 64; i++ {
		tx, err := f.FragmentWidthAvoiding([]byte("payload"), 1, avoid)
		if err != nil {
			t.Fatalf("FragmentWidthAvoiding: %v", err)
		}
		seen[tx.ID] = true
	}
	if !seen[0] {
		t.Error("width-1 retries never drew id 0: avoid compared raw ids across widths")
	}
	if !seen[1] {
		t.Error("width-1 retries never drew id 1")
	}
}

// TestFragmentAvoidingFixedWidth pins the legacy fixed-width semantics:
// avoid is a raw identifier and the one other identifier of a 1-bit pool
// is always taken.
func TestFragmentAvoidingFixedWidth(t *testing.T) {
	cfg := testConfig(1)
	sel := core.NewUniformSelector(cfg.Space, xrand.NewSource(7).Stream("sel"))
	f, err := NewFragmenter(cfg, sel, 1)
	if err != nil {
		t.Fatalf("NewFragmenter: %v", err)
	}
	for i := 0; i < 16; i++ {
		tx, err := f.FragmentAvoiding([]byte("p"), 0)
		if err != nil {
			t.Fatalf("FragmentAvoiding: %v", err)
		}
		if tx.ID != 1 {
			t.Fatalf("fixed-width retry drew %d, want 1", tx.ID)
		}
	}
}
