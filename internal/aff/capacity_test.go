package aff

import (
	"testing"
	"time"

	"retri/internal/core"
)

// seqFragmenter draws sequential identifiers so every transaction in a
// test gets a distinct, predictable id.
func seqFragmenter(t *testing.T, cfg Config) *Fragmenter {
	t.Helper()
	f, err := NewFragmenter(cfg, core.NewSequentialSelector(cfg.Space, 0), 1)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// startPartial ingests all but the final fragment of one fresh
// transaction and returns its identifier.
func startPartial(t *testing.T, f *Fragmenter, r *Reassembler) uint64 {
	t.Helper()
	tx, err := f.Fragment(make([]byte, 80))
	if err != nil {
		t.Fatal(err)
	}
	for _, fr := range tx.Fragments[:len(tx.Fragments)-1] {
		r.Ingest(fr.Bytes)
	}
	return tx.ID
}

func TestCapEvictsOldestFirst(t *testing.T) {
	cfg := testConfig(9)
	cfg.ReassemblyTimeout = time.Hour // far away: only the cap evicts
	cfg.MaxPartials = 3
	now := time.Duration(0)
	f := seqFragmenter(t, cfg)
	r := NewReassembler(cfg, func() time.Duration { return now }, nil)

	var evicted, expired []uint64
	r.SetCapEvictHandler(func(id uint64) { evicted = append(evicted, id) })
	r.SetExpiryHandler(func(id uint64) { expired = append(expired, id) })

	ids := make([]uint64, 4)
	for i := range ids {
		now = time.Duration(i) * time.Millisecond
		ids[i] = startPartial(t, f, r)
	}
	if r.PendingCount() != 3 {
		t.Fatalf("PendingCount = %d, want cap of 3", r.PendingCount())
	}
	st := r.Stats()
	if st.CapEvictions != 1 || st.Timeouts != 0 {
		t.Errorf("CapEvictions/Timeouts = %d/%d, want 1/0 (distinct counters)",
			st.CapEvictions, st.Timeouts)
	}
	if st.PendingPeak != 3 {
		t.Errorf("PendingPeak = %d, want 3", st.PendingPeak)
	}
	// The oldest-activity partial — the first started — is the victim, and
	// both hooks hear about it.
	if len(evicted) != 1 || evicted[0] != ids[0] {
		t.Errorf("cap-evict hook saw %v, want [%d]", evicted, ids[0])
	}
	if len(expired) != 1 || expired[0] != ids[0] {
		t.Errorf("onExpire hook saw %v on cap eviction, want [%d]", expired, ids[0])
	}
	// The survivors are untouched and still complete later.
	if _, ok := r.pending[ids[1]]; !ok {
		t.Error("second-oldest partial evicted alongside the oldest")
	}
}

func TestCapRefreshedPartialSurvives(t *testing.T) {
	cfg := testConfig(9)
	cfg.ReassemblyTimeout = time.Hour
	cfg.MaxPartials = 2
	now := time.Duration(0)
	f := seqFragmenter(t, cfg)
	r := NewReassembler(cfg, func() time.Duration { return now }, nil)

	txA, err := f.Fragment(make([]byte, 80))
	if err != nil {
		t.Fatal(err)
	}
	r.Ingest(txA.Fragments[0].Bytes) // A born at t=0
	now = time.Millisecond
	idB := startPartial(t, f, r) // B born at t=1ms
	now = 2 * time.Millisecond
	r.Ingest(txA.Fragments[1].Bytes) // A refreshed at t=2ms

	now = 3 * time.Millisecond
	startPartial(t, f, r) // C forces an eviction

	if _, ok := r.pending[txA.ID]; !ok {
		t.Error("refreshed partial A evicted despite newer activity")
	}
	if _, ok := r.pending[idB]; ok {
		t.Error("coldest partial B survived the cap")
	}
	if got := r.Stats().CapEvictions; got != 1 {
		t.Errorf("CapEvictions = %d, want 1", got)
	}
}

func TestCapZeroMeansUnbounded(t *testing.T) {
	cfg := testConfig(9)
	cfg.ReassemblyTimeout = time.Hour
	now := time.Duration(0)
	f := seqFragmenter(t, cfg)
	r := NewReassembler(cfg, func() time.Duration { return now }, nil)

	const n = 50
	for i := 0; i < n; i++ {
		now = time.Duration(i) * time.Millisecond
		startPartial(t, f, r)
	}
	st := r.Stats()
	if r.PendingCount() != n || st.CapEvictions != 0 {
		t.Errorf("pending/evictions = %d/%d with no cap, want %d/0",
			r.PendingCount(), st.CapEvictions, n)
	}
	if st.PendingPeak != n {
		t.Errorf("PendingPeak = %d, want %d", st.PendingPeak, n)
	}
}

func TestCapWorksWithoutTimeouts(t *testing.T) {
	// A nil clock disables idle timeouts, but the memory cap must still
	// hold: the expiry queue doubles as the (insertion-order) eviction
	// order at a constant clock.
	cfg := testConfig(9)
	cfg.MaxPartials = 2
	f := seqFragmenter(t, cfg)
	r := NewReassembler(cfg, nil, nil)

	ids := make([]uint64, 3)
	for i := range ids {
		ids[i] = startPartial(t, f, r)
	}
	if r.PendingCount() != 2 {
		t.Fatalf("PendingCount = %d, want 2", r.PendingCount())
	}
	if _, ok := r.pending[ids[0]]; ok {
		t.Error("first partial survived; insertion-order eviction broken")
	}
	if got := r.Stats().Timeouts; got != 0 {
		t.Errorf("Timeouts = %d on cap eviction, want 0", got)
	}
}

func TestCapEvictedIDCanRestart(t *testing.T) {
	// After eviction, fresh fragments under the evicted identifier start a
	// clean transaction: the second attempt delivers normally.
	cfg := testConfig(9)
	cfg.ReassemblyTimeout = time.Hour
	cfg.MaxPartials = 1
	now := time.Duration(0)
	f := seqFragmenter(t, cfg)
	var got int
	r := NewReassembler(cfg, func() time.Duration { return now }, func(Packet) { got++ })

	startPartial(t, f, r) // victim
	now = time.Millisecond
	tx, err := f.Fragment(make([]byte, 80))
	if err != nil {
		t.Fatal(err)
	}
	for _, fr := range tx.Fragments {
		r.Ingest(fr.Bytes)
	}
	if got != 1 {
		t.Fatalf("delivered %d packets after eviction made room, want 1", got)
	}
	if r.PendingCount() != 0 {
		t.Errorf("PendingCount = %d after delivery, want 0", r.PendingCount())
	}
}
