package aff

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"retri/internal/checksum"
	"retri/internal/core"
	"retri/internal/frame"
	"retri/internal/xrand"
)

func testConfig(bits int) Config {
	return Config{Space: core.MustSpace(bits), MTU: 27}
}

func newFragmenter(t *testing.T, cfg Config, seed uint64) *Fragmenter {
	t.Helper()
	sel := core.NewUniformSelector(cfg.Space, xrand.NewSource(seed).Stream("sel", t.Name()))
	f, err := NewFragmenter(cfg, sel, 1)
	if err != nil {
		t.Fatalf("NewFragmenter: %v", err)
	}
	return f
}

func TestFragmentPacketShape(t *testing.T) {
	// The paper's experiment: an 80-byte packet becomes "a single fragment
	// introduction and four data fragments" at MTU 27.
	f := newFragmenter(t, testConfig(9), 1)
	tx, err := f.Fragment(make([]byte, 80))
	if err != nil {
		t.Fatalf("Fragment: %v", err)
	}
	if len(tx.Fragments) != 5 {
		t.Errorf("80-byte packet produced %d fragments, want 5 (1 intro + 4 data)", len(tx.Fragments))
	}
	if tx.DataBits != 640 {
		t.Errorf("DataBits = %d, want 640", tx.DataBits)
	}
	if !f.cfg.Space.Contains(tx.ID) {
		t.Errorf("transaction ID %d outside space", tx.ID)
	}
	for i, fr := range tx.Fragments {
		if len(fr.Bytes) > 27 {
			t.Errorf("fragment %d is %d bytes, exceeds MTU", i, len(fr.Bytes))
		}
		if fr.Bits <= 0 || fr.Bits > 8*len(fr.Bytes) {
			t.Errorf("fragment %d bit count %d inconsistent with %d bytes", i, fr.Bits, len(fr.Bytes))
		}
	}
	if tx.TotalBits() <= tx.DataBits {
		t.Error("TotalBits must exceed DataBits (headers cost something)")
	}
}

func TestFragmentRejectsBadPackets(t *testing.T) {
	f := newFragmenter(t, testConfig(9), 2)
	if _, err := f.Fragment(nil); !errors.Is(err, ErrEmptyPacket) {
		t.Errorf("empty packet err = %v, want ErrEmptyPacket", err)
	}
	if _, err := f.Fragment(make([]byte, frame.MaxPacketLen+1)); !errors.Is(err, ErrPacketTooLarge) {
		t.Errorf("oversize packet err = %v, want ErrPacketTooLarge", err)
	}
}

func TestNewFragmenterValidation(t *testing.T) {
	cfg := testConfig(9)
	if _, err := NewFragmenter(cfg, nil, 0); err == nil {
		t.Error("nil selector accepted")
	}
	wrongSel := core.NewUniformSelector(core.MustSpace(4), xrand.NewSource(1).Stream("x"))
	if _, err := NewFragmenter(cfg, wrongSel, 0); err == nil {
		t.Error("selector space mismatch accepted")
	}
	tiny := cfg
	tiny.MTU = 2
	sel := core.NewUniformSelector(cfg.Space, xrand.NewSource(1).Stream("y"))
	if _, err := NewFragmenter(tiny, sel, 0); !errors.Is(err, ErrMTUTooSmall) {
		t.Errorf("tiny MTU err = %v, want ErrMTUTooSmall", err)
	}
}

func TestFreshIdentifierPerTransaction(t *testing.T) {
	// "By choosing a new random identifier for each transaction,
	// persistent losses are avoided." Successive IDs must vary.
	f := newFragmenter(t, testConfig(16), 3)
	ids := make(map[uint64]bool)
	for i := 0; i < 64; i++ {
		tx, err := f.Fragment([]byte("x"))
		if err != nil {
			t.Fatal(err)
		}
		ids[tx.ID] = true
	}
	if len(ids) < 48 {
		t.Errorf("64 transactions used only %d distinct identifiers", len(ids))
	}
}

func roundTrip(t *testing.T, cfg Config, packet []byte, seed uint64) []Packet {
	t.Helper()
	f := newFragmenter(t, cfg, seed)
	var out []Packet
	r := NewReassembler(cfg, nil, func(p Packet) { out = append(out, p) })
	tx, err := f.Fragment(packet)
	if err != nil {
		t.Fatalf("Fragment: %v", err)
	}
	for _, fr := range tx.Fragments {
		r.Ingest(fr.Bytes)
	}
	return out
}

func TestReassembleRoundTrip(t *testing.T) {
	packet := make([]byte, 80)
	for i := range packet {
		packet[i] = byte(i * 7)
	}
	out := roundTrip(t, testConfig(9), packet, 4)
	if len(out) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(out))
	}
	if !bytes.Equal(out[0].Data, packet) {
		t.Error("reassembled payload differs from original")
	}
}

func TestReassembleSingleFragmentPacket(t *testing.T) {
	out := roundTrip(t, testConfig(9), []byte{0x42}, 5)
	if len(out) != 1 || len(out[0].Data) != 1 || out[0].Data[0] != 0x42 {
		t.Errorf("single-byte packet round trip failed: %+v", out)
	}
}

func TestReassembleLargePacket(t *testing.T) {
	packet := make([]byte, 64*1024-1)
	for i := range packet {
		packet[i] = byte(i)
	}
	out := roundTrip(t, testConfig(9), packet, 6)
	if len(out) != 1 || !bytes.Equal(out[0].Data, packet) {
		t.Fatal("64KiB-1 packet round trip failed")
	}
}

func TestReassembleChecksumKinds(t *testing.T) {
	for _, k := range []checksum.Kind{checksum.Internet, checksum.CRC16} {
		cfg := testConfig(9)
		cfg.Checksum = k
		out := roundTrip(t, cfg, []byte("checksum variant"), 7)
		if len(out) != 1 {
			t.Errorf("checksum %v: delivered %d, want 1", k, len(out))
		}
	}
}

func TestReassembleOutOfOrderDataBeforeIntro(t *testing.T) {
	// The introduction can be lost/reordered relative to data in general
	// designs; the reassembler buffers early data fragments.
	cfg := testConfig(9)
	f := newFragmenter(t, cfg, 8)
	var out []Packet
	r := NewReassembler(cfg, nil, func(p Packet) { out = append(out, p) })
	packet := make([]byte, 60)
	for i := range packet {
		packet[i] = byte(i)
	}
	tx, err := f.Fragment(packet)
	if err != nil {
		t.Fatal(err)
	}
	// Data fragments first, introduction last.
	for _, fr := range tx.Fragments[1:] {
		r.Ingest(fr.Bytes)
	}
	if len(out) != 0 {
		t.Fatal("delivered before introduction arrived")
	}
	r.Ingest(tx.Fragments[0].Bytes)
	if len(out) != 1 || !bytes.Equal(out[0].Data, packet) {
		t.Error("early-data reassembly failed")
	}
	if r.PendingCount() != 0 {
		t.Errorf("pending state leaked: %d", r.PendingCount())
	}
}

func TestReassembleDuplicateFragmentsIdempotent(t *testing.T) {
	cfg := testConfig(9)
	f := newFragmenter(t, cfg, 9)
	var out []Packet
	r := NewReassembler(cfg, nil, func(p Packet) { out = append(out, p) })
	tx, err := f.Fragment(make([]byte, 50))
	if err != nil {
		t.Fatal(err)
	}
	for _, fr := range tx.Fragments {
		r.Ingest(fr.Bytes)
		r.Ingest(fr.Bytes) // duplicate every frame
	}
	if len(out) != 1 {
		t.Errorf("delivered %d, want exactly 1 despite duplicates", len(out))
	}
	if r.Stats().Conflicts != 0 {
		t.Errorf("duplicates flagged as conflicts: %d", r.Stats().Conflicts)
	}
}

func TestMissingFragmentNoDelivery(t *testing.T) {
	cfg := testConfig(9)
	f := newFragmenter(t, cfg, 10)
	var out []Packet
	r := NewReassembler(cfg, nil, func(p Packet) { out = append(out, p) })
	tx, err := f.Fragment(make([]byte, 80))
	if err != nil {
		t.Fatal(err)
	}
	for i, fr := range tx.Fragments {
		if i == 2 {
			continue // drop one data fragment
		}
		r.Ingest(fr.Bytes)
	}
	if len(out) != 0 {
		t.Error("incomplete packet delivered")
	}
	if r.PendingCount() != 1 {
		t.Errorf("PendingCount = %d, want 1", r.PendingCount())
	}
}

// TestIdentifierCollisionDetected is the core collision scenario: two
// senders pick the same identifier; their interleaved fragments must never
// produce a delivered packet.
func TestIdentifierCollisionDetected(t *testing.T) {
	cfg := testConfig(4)
	selA := core.NewSequentialSelector(cfg.Space, 7)
	selB := core.NewSequentialSelector(cfg.Space, 7) // same id: 7
	fa, err := NewFragmenter(cfg, selA, 1)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := NewFragmenter(cfg, selB, 2)
	if err != nil {
		t.Fatal(err)
	}
	pktA := bytes.Repeat([]byte{0xAA}, 60)
	pktB := bytes.Repeat([]byte{0xBB}, 60)
	txA, err := fa.Fragment(pktA)
	if err != nil {
		t.Fatal(err)
	}
	txB, err := fb.Fragment(pktB)
	if err != nil {
		t.Fatal(err)
	}
	if txA.ID != txB.ID {
		t.Fatalf("test setup: ids differ (%d, %d)", txA.ID, txB.ID)
	}

	var out []Packet
	r := NewReassembler(cfg, nil, func(p Packet) { out = append(out, p) })
	// Interleave the two transactions' fragments.
	for i := 0; i < len(txA.Fragments); i++ {
		r.Ingest(txA.Fragments[i].Bytes)
		r.Ingest(txB.Fragments[i].Bytes)
	}
	if len(out) != 0 {
		t.Errorf("delivered %d packets from colliding transactions, want 0", len(out))
	}
	if r.Stats().Conflicts == 0 && r.Stats().ChecksumFailures == 0 {
		t.Error("collision left no trace in stats")
	}
}

// TestCollisionSameLengthDifferentContent: both colliding packets have the
// same announced length, so detection rests on content overlap or checksum.
func TestCollisionSameLengthDiffContentNotDelivered(t *testing.T) {
	cfg := testConfig(4)
	fa, err := NewFragmenter(cfg, core.NewSequentialSelector(cfg.Space, 3), 1)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := NewFragmenter(cfg, core.NewSequentialSelector(cfg.Space, 3), 2)
	if err != nil {
		t.Fatal(err)
	}
	txA, err := fa.Fragment(bytes.Repeat([]byte{1}, 40))
	if err != nil {
		t.Fatal(err)
	}
	txB, err := fb.Fragment(bytes.Repeat([]byte{2}, 40))
	if err != nil {
		t.Fatal(err)
	}

	var out []Packet
	r := NewReassembler(cfg, nil, func(p Packet) { out = append(out, p) })
	// A's intro arrives, then B's fragments fill the buffer: the checksum
	// in A's intro cannot match B's content.
	r.Ingest(txA.Fragments[0].Bytes)
	for _, fr := range txB.Fragments[1:] {
		r.Ingest(fr.Bytes)
	}
	if len(out) != 0 {
		t.Error("cross-assembled packet was delivered")
	}
	st := r.Stats()
	if st.ChecksumFailures == 0 && st.Conflicts == 0 {
		t.Errorf("collision undetected: %+v", st)
	}
}

func TestReassemblyTimeout(t *testing.T) {
	cfg := testConfig(9)
	cfg.ReassemblyTimeout = 10 * time.Second
	now := time.Duration(0)
	clock := func() time.Duration { return now }
	f := newFragmenter(t, cfg, 11)
	var out []Packet
	r := NewReassembler(cfg, clock, func(p Packet) { out = append(out, p) })

	tx, err := f.Fragment(make([]byte, 80))
	if err != nil {
		t.Fatal(err)
	}
	// Deliver all but the last fragment, then go idle past the timeout.
	for _, fr := range tx.Fragments[:len(tx.Fragments)-1] {
		r.Ingest(fr.Bytes)
	}
	now = 20 * time.Second
	// Any later traffic triggers expiry.
	tx2, err := f.Fragment([]byte("later"))
	if err != nil {
		t.Fatal(err)
	}
	for _, fr := range tx2.Fragments {
		r.Ingest(fr.Bytes)
	}
	// The stale packet is gone; its final fragment cannot complete it.
	r.Ingest(tx.Fragments[len(tx.Fragments)-1].Bytes)
	if r.Stats().Timeouts != 1 {
		t.Errorf("Timeouts = %d, want 1", r.Stats().Timeouts)
	}
	if len(out) != 1 { // only the "later" packet
		t.Errorf("delivered %d packets, want 1", len(out))
	}
}

func TestMalformedFrameCounted(t *testing.T) {
	r := NewReassembler(testConfig(9), nil, nil)
	r.Ingest(nil)
	r.Ingest([]byte{})
	if r.Stats().Malformed != 2 {
		t.Errorf("Malformed = %d, want 2", r.Stats().Malformed)
	}
}

func TestObserverSeesIdentifiers(t *testing.T) {
	cfg := testConfig(9)
	f := newFragmenter(t, cfg, 12)
	r := NewReassembler(cfg, nil, nil)
	var observed []uint64
	introCount := 0
	r.SetObserver(func(id uint64, intro bool) {
		observed = append(observed, id)
		if intro {
			introCount++
		}
	})
	tx, err := f.Fragment(make([]byte, 50))
	if err != nil {
		t.Fatal(err)
	}
	for _, fr := range tx.Fragments {
		r.Ingest(fr.Bytes)
	}
	if len(observed) != len(tx.Fragments) {
		t.Fatalf("observer saw %d ids, want %d", len(observed), len(tx.Fragments))
	}
	if introCount != 1 {
		t.Errorf("observer flagged %d introductions, want 1", introCount)
	}
	for _, id := range observed {
		if id != tx.ID {
			t.Errorf("observer saw id %d, want %d", id, tx.ID)
		}
	}
}

func TestDeliveredBitsAccounting(t *testing.T) {
	out := roundTrip(t, testConfig(9), make([]byte, 100), 13)
	if len(out) != 1 {
		t.Fatal("no delivery")
	}
	// Exercised via stats in a fresh run:
	cfg := testConfig(9)
	f := newFragmenter(t, cfg, 14)
	r := NewReassembler(cfg, nil, nil)
	tx, err := f.Fragment(make([]byte, 100))
	if err != nil {
		t.Fatal(err)
	}
	for _, fr := range tx.Fragments {
		r.Ingest(fr.Bytes)
	}
	if got := r.Stats().DeliveredBits; got != 800 {
		t.Errorf("DeliveredBits = %d, want 800", got)
	}
}

// TestRoundTripProperty fuzzes packet sizes and identifier widths through a
// lossless fragment/reassemble cycle.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64, sizeRaw uint16, bitsRaw uint8) bool {
		bits := int(bitsRaw%32) + 1
		size := int(sizeRaw%2000) + 1
		cfg := testConfig(bits)
		rng := xrand.NewSource(seed).Stream("prop")
		sel := core.NewUniformSelector(cfg.Space, rng)
		fr, err := NewFragmenter(cfg, sel, 1)
		if err != nil {
			return false
		}
		packet := make([]byte, size)
		for i := range packet {
			packet[i] = byte(rng.Uint64())
		}
		var out []Packet
		r := NewReassembler(cfg, nil, func(p Packet) { out = append(out, p) })
		tx, err := fr.Fragment(packet)
		if err != nil {
			return false
		}
		for _, f := range tx.Fragments {
			r.Ingest(f.Bytes)
		}
		return len(out) == 1 && bytes.Equal(out[0].Data, packet) && r.PendingCount() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func BenchmarkFragment80Byte(b *testing.B) {
	cfg := testConfig(9)
	sel := core.NewUniformSelector(cfg.Space, xrand.NewSource(1).Stream("bench"))
	f, err := NewFragmenter(cfg, sel, 1)
	if err != nil {
		b.Fatal(err)
	}
	packet := make([]byte, 80)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := f.Fragment(packet); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReassemble80Byte(b *testing.B) {
	cfg := testConfig(9)
	sel := core.NewUniformSelector(cfg.Space, xrand.NewSource(1).Stream("bench"))
	f, err := NewFragmenter(cfg, sel, 1)
	if err != nil {
		b.Fatal(err)
	}
	tx, err := f.Fragment(make([]byte, 80))
	if err != nil {
		b.Fatal(err)
	}
	r := NewReassembler(cfg, nil, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, fr := range tx.Fragments {
			r.Ingest(fr.Bytes)
		}
	}
}
