package aff

import (
	"testing"
	"time"

	"retri/internal/core"
	"retri/internal/xrand"
)

func instrumentedConfig(bits int) Config {
	cfg := testConfig(bits)
	cfg.Instrument = true
	return cfg
}

func TestTruthReassemblerDeliversByUniqueKey(t *testing.T) {
	cfg := instrumentedConfig(2) // tiny space: AFF collisions likely
	// Two senders forced onto the same AFF identifier.
	fa, err := NewFragmenter(cfg, core.NewSequentialSelector(cfg.Space, 1), 100)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := NewFragmenter(cfg, core.NewSequentialSelector(cfg.Space, 1), 200)
	if err != nil {
		t.Fatal(err)
	}
	pktA := make([]byte, 60)
	pktB := make([]byte, 60)
	for i := range pktA {
		pktA[i], pktB[i] = 0xAA, 0xBB
	}
	txA, err := fa.Fragment(pktA)
	if err != nil {
		t.Fatal(err)
	}
	txB, err := fb.Fragment(pktB)
	if err != nil {
		t.Fatal(err)
	}

	under := NewReassembler(cfg, nil, nil)
	truth := NewTruthReassembler(cfg, nil)
	for i := 0; i < len(txA.Fragments); i++ {
		under.Ingest(txA.Fragments[i].Bytes)
		truth.Ingest(txA.Fragments[i].Bytes)
		under.Ingest(txB.Fragments[i].Bytes)
		truth.Ingest(txB.Fragments[i].Bytes)
	}
	// Ground truth reassembles both packets; the AFF-keyed reassembler
	// loses both to the identifier collision. This difference IS the
	// Figure 4 measurement.
	if got := truth.Stats().Delivered; got != 2 {
		t.Errorf("truth Delivered = %d, want 2", got)
	}
	if got := under.Stats().Delivered; got != 0 {
		t.Errorf("AFF Delivered = %d, want 0 under collision", got)
	}
	if truth.Stats().Conflicts != 0 {
		t.Errorf("truth reassembler reported %d conflicts, want 0", truth.Stats().Conflicts)
	}
	if truth.PendingCount() != 0 {
		t.Errorf("truth pending = %d, want 0", truth.PendingCount())
	}
}

func TestTruthReassemblerForcesInstrumentation(t *testing.T) {
	cfg := testConfig(9) // Instrument false
	r := NewTruthReassembler(cfg, nil)
	// Frames encoded *without* instrumentation decode to nil Truth under
	// the instrumented codec or fail; either way they count as malformed
	// and are never delivered.
	f := newFragmenter(t, cfg, 1)
	tx, err := f.Fragment(make([]byte, 30))
	if err != nil {
		t.Fatal(err)
	}
	for _, fr := range tx.Fragments {
		r.Ingest(fr.Bytes)
	}
	if r.Stats().Delivered != 0 {
		t.Error("uninstrumented frames delivered by truth reassembler")
	}
}

func TestTruthReassemblerTimeout(t *testing.T) {
	cfg := instrumentedConfig(9)
	cfg.ReassemblyTimeout = 5 * time.Second
	now := time.Duration(0)
	r := NewTruthReassembler(cfg, func() time.Duration { return now })

	sel := core.NewUniformSelector(cfg.Space, xrand.NewSource(2).Stream("t"))
	f, err := NewFragmenter(cfg, sel, 7)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := f.Fragment(make([]byte, 60))
	if err != nil {
		t.Fatal(err)
	}
	for _, fr := range tx.Fragments[:2] {
		r.Ingest(fr.Bytes)
	}
	now = time.Minute
	tx2, err := f.Fragment([]byte("tick"))
	if err != nil {
		t.Fatal(err)
	}
	for _, fr := range tx2.Fragments {
		r.Ingest(fr.Bytes)
	}
	if r.Stats().Timeouts != 1 {
		t.Errorf("Timeouts = %d, want 1", r.Stats().Timeouts)
	}
	if r.Stats().Delivered != 1 {
		t.Errorf("Delivered = %d, want 1", r.Stats().Delivered)
	}
}

func TestTruthReassemblerEarlyData(t *testing.T) {
	cfg := instrumentedConfig(9)
	sel := core.NewUniformSelector(cfg.Space, xrand.NewSource(3).Stream("e"))
	f, err := NewFragmenter(cfg, sel, 8)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := f.Fragment(make([]byte, 40))
	if err != nil {
		t.Fatal(err)
	}
	r := NewTruthReassembler(cfg, nil)
	for _, fr := range tx.Fragments[1:] {
		r.Ingest(fr.Bytes)
	}
	if r.Stats().Delivered != 0 {
		t.Fatal("delivered before introduction")
	}
	r.Ingest(tx.Fragments[0].Bytes)
	if r.Stats().Delivered != 1 {
		t.Errorf("Delivered = %d, want 1 after introduction", r.Stats().Delivered)
	}
}
