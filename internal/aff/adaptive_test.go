package aff

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"retri/internal/core"
	"retri/internal/xrand"
)

func adaptiveConfig(bits int) Config {
	cfg := testConfig(bits)
	cfg.AdaptiveWidth = true
	return cfg
}

func TestWidthKeySplit(t *testing.T) {
	for _, tc := range []struct {
		bits int
		id   uint64
	}{{1, 0}, {1, 1}, {9, 0x1AB}, {32, 1<<32 - 1}} {
		key := WidthKey(tc.bits, tc.id)
		b, id := SplitWidthKey(key)
		if b != tc.bits || id != tc.id {
			t.Errorf("SplitWidthKey(WidthKey(%d, %d)) = (%d, %d)", tc.bits, tc.id, b, id)
		}
	}
	if WidthKey(4, 3) == WidthKey(9, 3) {
		t.Error("same id at different widths must key differently")
	}
}

func TestFragmentWidthValidation(t *testing.T) {
	fixed := newFragmenter(t, testConfig(9), 1)
	if _, err := fixed.FragmentWidth([]byte("x"), 4); err == nil {
		t.Error("FragmentWidth accepted on a fixed-width fragmenter")
	}
	f := newFragmenter(t, adaptiveConfig(9), 1)
	if _, err := f.FragmentWidth([]byte("x"), 0); err == nil {
		t.Error("width 0 accepted")
	}
	if _, err := f.FragmentWidth([]byte("x"), 10); err == nil {
		t.Error("width beyond the space accepted")
	}
	if _, err := f.FragmentWidth(nil, 4); err == nil {
		t.Error("empty packet accepted")
	}
}

func TestFragmentWidthRoundTrip(t *testing.T) {
	cfg := adaptiveConfig(16)
	f := newFragmenter(t, cfg, 7)
	packet := make([]byte, 80)
	for i := range packet {
		packet[i] = byte(i * 13)
	}
	for _, w := range []int{1, 4, 9, 16} {
		var out []Packet
		r := NewReassembler(cfg, nil, func(p Packet) { out = append(out, p) })
		tx, err := f.FragmentWidth(packet, w)
		if err != nil {
			t.Fatalf("FragmentWidth(%d): %v", w, err)
		}
		if tx.IDBits != w {
			t.Errorf("width %d: tx.IDBits = %d", w, tx.IDBits)
		}
		if tx.ID >= 1<<uint(w) {
			t.Errorf("width %d: id %d exceeds width", w, tx.ID)
		}
		for _, fr := range tx.Fragments {
			r.Ingest(fr.Bytes)
		}
		if len(out) != 1 || !bytes.Equal(out[0].Data, packet) {
			t.Fatalf("width %d: delivered %d packets", w, len(out))
		}
		if out[0].ID != WidthKey(w, tx.ID) {
			t.Errorf("width %d: Packet.ID = %#x, want WidthKey %#x", w, out[0].ID, WidthKey(w, tx.ID))
		}
	}
}

// TestMixedWidthSameIDNoMerge pins the demux invariant at its sharpest
// point: two concurrent transactions whose identifiers are numerically
// equal but drawn at different widths must reassemble independently.
func TestMixedWidthSameIDNoMerge(t *testing.T) {
	cfg := adaptiveConfig(9)
	f := newFragmenter(t, cfg, 3)
	narrow := bytes.Repeat([]byte{0xAA}, 60)
	wide := bytes.Repeat([]byte{0x55}, 90)

	// Redraw until the two widths produce the same numeric identifier.
	var txN, txW Transaction
	for {
		var err error
		if txN, err = f.FragmentWidth(narrow, 4); err != nil {
			t.Fatal(err)
		}
		if txW, err = f.FragmentWidth(wide, 9); err != nil {
			t.Fatal(err)
		}
		if txN.ID == txW.ID {
			break
		}
	}

	var out []Packet
	r := NewReassembler(cfg, nil, func(p Packet) { out = append(out, p) })
	// Interleave the two fragment streams.
	for i := 0; i < len(txN.Fragments) || i < len(txW.Fragments); i++ {
		if i < len(txN.Fragments) {
			r.Ingest(txN.Fragments[i].Bytes)
		}
		if i < len(txW.Fragments) {
			r.Ingest(txW.Fragments[i].Bytes)
		}
	}
	if len(out) != 2 {
		t.Fatalf("delivered %d packets, want 2 (stats %+v)", len(out), r.Stats())
	}
	seen := map[uint64][]byte{}
	for _, p := range out {
		seen[p.ID] = p.Data
	}
	if !bytes.Equal(seen[WidthKey(4, txN.ID)], narrow) {
		t.Error("narrow transaction not delivered intact")
	}
	if !bytes.Equal(seen[WidthKey(9, txW.ID)], wide) {
		t.Error("wide transaction not delivered intact")
	}
}

// TestMixedWidthNeverMisdelivers is the adaptive-width safety property:
// senders hopping widths mid-stream, with interleaved fragments, must
// never deliver a packet that was not sent. Deliveries may be lost to a
// genuine (width, id) collision — collisions are the paper's accepted
// cost — but every delivered payload must byte-match a sent payload.
func TestMixedWidthNeverMisdelivers(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 11))
		cfg := adaptiveConfig(9)
		sent := map[string]bool{}
		var frags [][]byte
		for s := 0; s < 4; s++ {
			sel := core.NewUniformSelector(cfg.Space, xrand.NewSource(seed).Stream("sel", fmt.Sprint(s)))
			f, err := NewFragmenter(cfg, sel, uint32(s))
			if err != nil {
				return false
			}
			for tx := 0; tx < 6; tx++ {
				n := int(rng.Uint64N(120)) + 1
				packet := make([]byte, n)
				for i := range packet {
					packet[i] = byte(rng.Uint64())
				}
				sent[string(packet)] = true
				width := int(rng.Uint64N(9)) + 1
				out, err := f.FragmentWidth(packet, width)
				if err != nil {
					return false
				}
				for _, fr := range out.Fragments {
					frags = append(frags, fr.Bytes)
				}
			}
		}
		// Shuffle fragments across senders and transactions.
		rng.Shuffle(len(frags), func(i, j int) { frags[i], frags[j] = frags[j], frags[i] })
		ok := true
		r := NewReassembler(cfg, nil, func(p Packet) {
			if !sent[string(p.Data)] {
				ok = false
			}
		})
		for _, fb := range frags {
			r.Ingest(fb)
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestFixedConfigIgnoresAdaptiveFrames documents the format boundary: a
// fixed-width reassembler fed adaptive-format frames must fail safe
// (never deliver corrupt data), exactly like the other misconfiguration
// tests.
func TestFixedConfigIgnoresAdaptiveFrames(t *testing.T) {
	adaptive := adaptiveConfig(9)
	f := newFragmenter(t, adaptive, 5)
	tx, err := f.FragmentWidth(bytes.Repeat([]byte{7}, 50), 9)
	if err != nil {
		t.Fatal(err)
	}
	var out []Packet
	r := NewReassembler(testConfig(9), nil, func(p Packet) { out = append(out, p) })
	for _, fr := range tx.Fragments {
		r.Ingest(fr.Bytes)
	}
	for _, p := range out {
		if bytes.Equal(p.Data, bytes.Repeat([]byte{7}, 50)) {
			continue // an accidental clean decode is fine; corrupt data is not
		}
		t.Fatal("fixed-width reassembler delivered corrupt data from adaptive frames")
	}
}
