package aff

import (
	"time"

	"retri/internal/checksum"
	"retri/internal/frame"
)

// Stats counts reassembler outcomes. Conflicts and ChecksumFailures are the
// two ways an identifier collision surfaces at a receiver.
type Stats struct {
	// Delivered counts packets reassembled and checksum-verified.
	Delivered int64
	// DeliveredBits sums the payload bits of delivered packets (the
	// "useful bits received" of Equation 1).
	DeliveredBits int64
	// ChecksumFailures counts complete reassemblies whose checksum failed.
	ChecksumFailures int64
	// Conflicts counts transactions dropped for internal inconsistency:
	// two introductions disagreeing, overlapping fragments with different
	// bytes, or offsets beyond the announced length.
	Conflicts int64
	// Timeouts counts partial packets evicted after inactivity.
	Timeouts int64
	// FragmentsIn counts well-formed fragments ingested.
	FragmentsIn int64
	// Malformed counts undecodable frames.
	Malformed int64
}

// Packet is a reassembled, verified packet.
type Packet struct {
	// ID is the AFF identifier the packet was reassembled under.
	ID uint64
	// Data is the packet payload.
	Data []byte
	// Truth is the instrumentation ground truth from the introduction
	// fragment, nil when the codec is uninstrumented. It exists for the
	// measurement harness only.
	Truth *frame.Truth
}

// Reassembler rebuilds packets from address-free fragments, keyed solely by
// the AFF identifier — the system under test.
type Reassembler struct {
	cfg     Config
	codec   frame.AFFCodec
	now     func() time.Duration
	deliver func(Packet)

	pending map[uint64]*pending
	stats   Stats

	// observer, when set, is told each identifier heard and whether the
	// fragment was an introduction (a transaction start). The node layer
	// wires introductions to a listening selector — the paper's window is
	// the most recent 2T *transactions* — and every fragment to the
	// density estimator.
	observer func(id uint64, intro bool)

	// onConflict, when set, is told each identifier dropped for
	// inconsistency. The node layer's collision-notification extension
	// (Section 3.2's "explicit identifier collision notification")
	// broadcasts these.
	onConflict func(id uint64)
}

// pending accumulates one identifier's fragments.
type pending struct {
	haveIntro bool
	totalLen  int
	sum       uint16
	truth     *frame.Truth

	buf      []byte
	covered  []bool
	gotBytes int

	// early buffers data fragments that arrive before the introduction.
	early []*frame.Data

	lastActivity time.Duration
}

// maxEarlyFragments bounds pre-introduction buffering per identifier so a
// lost introduction cannot pin unbounded state.
const maxEarlyFragments = 1 << 12

// NewReassembler returns a reassembler that calls deliver for each verified
// packet. now supplies virtual time for timeout eviction (pass the engine's
// clock); a nil now disables timeouts.
func NewReassembler(cfg Config, now func() time.Duration, deliver func(Packet)) *Reassembler {
	cfg = cfg.withDefaults()
	if now == nil {
		now = func() time.Duration { return 0 }
		cfg.ReassemblyTimeout = 0
	}
	return &Reassembler{
		cfg:     cfg,
		codec:   cfg.codec(),
		now:     now,
		deliver: deliver,
		pending: make(map[uint64]*pending),
	}
}

// Stats returns a snapshot of the reassembler's counters.
func (r *Reassembler) Stats() Stats { return r.stats }

// PendingCount reports identifiers with partial state, for tests and
// leak checks.
func (r *Reassembler) PendingCount() int { return len(r.pending) }

// SetObserver installs a callback invoked with the identifier of every
// well-formed fragment heard and whether it was a transaction-starting
// introduction. This is the "listening" tap of Section 3.2.
func (r *Reassembler) SetObserver(fn func(id uint64, intro bool)) { r.observer = fn }

// SetConflictHandler installs a callback invoked with each identifier
// dropped for internal inconsistency — the receiver-side trigger for the
// paper's optional collision-notification heuristic.
func (r *Reassembler) SetConflictHandler(fn func(id uint64)) { r.onConflict = fn }

// Ingest processes one received frame.
func (r *Reassembler) Ingest(frameBytes []byte) {
	r.expire()
	decoded, err := r.codec.Decode(frameBytes)
	if err != nil {
		r.stats.Malformed++
		return
	}
	r.stats.FragmentsIn++
	switch fr := decoded.(type) {
	case *frame.Intro:
		if r.observer != nil {
			r.observer(fr.ID, true)
		}
		r.ingestIntro(fr)
	case *frame.Data:
		if r.observer != nil {
			r.observer(fr.ID, false)
		}
		r.ingestData(fr)
	}
}

func (r *Reassembler) ingestIntro(in *frame.Intro) {
	p, ok := r.pending[in.ID]
	if !ok {
		p = &pending{}
		r.pending[in.ID] = p
	}
	p.lastActivity = r.now()
	if p.haveIntro {
		if p.totalLen != in.TotalLen || p.sum != in.Checksum {
			// Two transactions announced under one identifier.
			r.conflict(in.ID)
		}
		// A byte-identical duplicate introduction is harmless.
		return
	}
	p.haveIntro = true
	p.totalLen = in.TotalLen
	p.sum = in.Checksum
	p.truth = in.Truth
	p.buf = make([]byte, in.TotalLen)
	p.covered = make([]bool, in.TotalLen)

	early := p.early
	p.early = nil
	for _, d := range early {
		if !r.apply(in.ID, p, d) {
			return // conflict dropped the state
		}
	}
	r.maybeComplete(in.ID, p)
}

func (r *Reassembler) ingestData(d *frame.Data) {
	p, ok := r.pending[d.ID]
	if !ok {
		p = &pending{}
		r.pending[d.ID] = p
	}
	p.lastActivity = r.now()
	if !p.haveIntro {
		// Introduction not yet seen (reordering is impossible on our
		// radio, but the introduction frame itself can be lost).
		if len(p.early) < maxEarlyFragments {
			p.early = append(p.early, d)
		}
		return
	}
	if !r.apply(d.ID, p, d) {
		return
	}
	r.maybeComplete(d.ID, p)
}

// apply merges a data fragment into a pending packet with a known length.
// It reports false if the fragment triggered a conflict drop.
func (r *Reassembler) apply(id uint64, p *pending, d *frame.Data) bool {
	end := d.Offset + len(d.Payload)
	if end > p.totalLen {
		r.conflict(id)
		return false
	}
	// Overlap with different content is direct evidence that two senders
	// share this identifier.
	for i, b := range d.Payload {
		at := d.Offset + i
		if p.covered[at] && p.buf[at] != b {
			r.conflict(id)
			return false
		}
	}
	for i, b := range d.Payload {
		at := d.Offset + i
		if !p.covered[at] {
			p.covered[at] = true
			p.gotBytes++
		}
		p.buf[at] = b
	}
	return true
}

// maybeComplete delivers or rejects a fully covered packet.
func (r *Reassembler) maybeComplete(id uint64, p *pending) {
	if !p.haveIntro || p.gotBytes != p.totalLen {
		return
	}
	delete(r.pending, id)
	if checksum.Sum(r.cfg.Checksum, p.buf) != p.sum {
		r.stats.ChecksumFailures++
		return
	}
	r.stats.Delivered++
	r.stats.DeliveredBits += int64(8 * len(p.buf))
	if r.deliver != nil {
		r.deliver(Packet{ID: id, Data: p.buf, Truth: p.truth})
	}
}

// conflict drops all state for an identifier.
func (r *Reassembler) conflict(id uint64) {
	delete(r.pending, id)
	r.stats.Conflicts++
	if r.onConflict != nil {
		r.onConflict(id)
	}
}

// expire evicts partial packets idle longer than the configured timeout.
func (r *Reassembler) expire() {
	if r.cfg.ReassemblyTimeout <= 0 {
		return
	}
	cutoff := r.now() - r.cfg.ReassemblyTimeout
	if cutoff <= 0 {
		return
	}
	for id, p := range r.pending {
		if p.lastActivity < cutoff {
			delete(r.pending, id)
			r.stats.Timeouts++
		}
	}
}
