package aff

import (
	"time"

	"retri/internal/checksum"
	"retri/internal/frame"
)

// Stats counts reassembler outcomes. Conflicts and ChecksumFailures are the
// two ways an identifier collision surfaces at a receiver.
type Stats struct {
	// Delivered counts packets reassembled and checksum-verified.
	Delivered int64
	// DeliveredBits sums the payload bits of delivered packets (the
	// "useful bits received" of Equation 1).
	DeliveredBits int64
	// ChecksumFailures counts complete reassemblies whose checksum failed.
	ChecksumFailures int64
	// Conflicts counts transactions dropped for internal inconsistency:
	// two introductions disagreeing, overlapping fragments with different
	// bytes, or offsets beyond the announced length.
	Conflicts int64
	// Timeouts counts partial packets evicted after inactivity.
	Timeouts int64
	// CapEvictions counts partial packets evicted to stay under the
	// MaxPartials memory cap — graceful degradation, not idle timeout,
	// so it is distinct from Timeouts.
	CapEvictions int64
	// PendingPeak is the high-water mark of concurrently-held partial
	// packets, the peak partial-state occupancy the chaos sweep reports.
	PendingPeak int64
	// FragmentsIn counts well-formed fragments ingested.
	FragmentsIn int64
	// Malformed counts undecodable frames.
	Malformed int64
}

// Packet is a reassembled, verified packet.
type Packet struct {
	// ID is the AFF identifier the packet was reassembled under. In
	// adaptive-width mode it is the composite WidthKey(bits, id); use
	// SplitWidthKey to recover the raw identifier.
	ID uint64
	// Data is the packet payload.
	Data []byte
	// Truth is the instrumentation ground truth from the introduction
	// fragment, nil when the codec is uninstrumented. It exists for the
	// measurement harness only.
	Truth *frame.Truth
}

// Reassembler rebuilds packets from address-free fragments, keyed solely by
// the AFF identifier — the system under test.
type Reassembler struct {
	cfg     Config
	codec   frame.AFFCodec
	now     func() time.Duration
	deliver func(Packet)

	pending map[uint64]*pending
	stats   Stats

	// expq is the amortized expiry queue: every fragment pushes one
	// (identifier, activity-time) entry, and activity times are drawn from
	// the monotone virtual clock, so the queue is sorted by construction.
	// A sweep pops due entries and evicts only those whose pending state
	// saw no later activity — O(1) amortized per fragment, replacing the
	// full-map scan Ingest used to do on every frame.
	expq     []expEntry
	expqHead int

	// observer, when set, is told each identifier heard and whether the
	// fragment was an introduction (a transaction start). The node layer
	// wires introductions to a listening selector — the paper's window is
	// the most recent 2T *transactions* — and every fragment to the
	// density estimator.
	observer func(id uint64, intro bool)

	// onConflict, when set, is told each identifier dropped for
	// inconsistency. The node layer's collision-notification extension
	// (Section 3.2's "explicit identifier collision notification")
	// broadcasts these.
	onConflict func(id uint64)

	// onComplete, when set, is told each identifier whose transaction is
	// known complete: a data fragment covering the final byte of the
	// announced length was observed, so the sender has nothing left to
	// transmit. The node layer wires this to turnover-aware density
	// estimators (density.CompletionObserver). Fired whether or not the
	// packet ultimately verifies — a failed checksum still ends the
	// transaction on air.
	onComplete func(id uint64)

	// onExpire, when set, is told each identifier whose partial state was
	// evicted by the reassembly timeout — the receiver-side "this
	// transaction died incomplete" signal the span tracer records.
	onExpire func(id uint64)

	// onBadSum, when set, is told each identifier rejected at completion
	// because its checksum failed — the never-misdeliver rejection the
	// span tracer records as a transaction outcome.
	onBadSum func(id uint64)

	// onCapEvict, when set, is told each identifier evicted by the
	// MaxPartials cap, immediately before onExpire fires for the same
	// identifier. The node layer uses the pairing to distinguish
	// memory-pressure eviction from idle timeout in span outcomes while
	// every onExpire consumer still hears about the abandoned state.
	onCapEvict func(id uint64)
}

// pending accumulates one identifier's fragments.
type pending struct {
	haveIntro bool
	totalLen  int
	sum       uint16
	truth     *frame.Truth

	buf      []byte
	covered  []bool
	gotBytes int

	// early buffers data fragments that arrive before the introduction.
	early []*frame.Data

	lastActivity time.Duration
}

// maxEarlyFragments bounds pre-introduction buffering per identifier so a
// lost introduction cannot pin unbounded state.
const maxEarlyFragments = 1 << 12

// expEntry marks one identifier's activity for the expiry queue.
type expEntry struct {
	id uint64
	at time.Duration
}

// NewReassembler returns a reassembler that calls deliver for each verified
// packet. now supplies virtual time for timeout eviction (pass the engine's
// clock); a nil now disables timeouts.
func NewReassembler(cfg Config, now func() time.Duration, deliver func(Packet)) *Reassembler {
	cfg = cfg.withDefaults()
	if now == nil {
		now = func() time.Duration { return 0 }
		cfg.ReassemblyTimeout = 0
	}
	return &Reassembler{
		cfg:     cfg,
		codec:   cfg.codec(),
		now:     now,
		deliver: deliver,
		pending: make(map[uint64]*pending),
	}
}

// Stats returns a snapshot of the reassembler's counters.
func (r *Reassembler) Stats() Stats { return r.stats }

// PendingCount reports identifiers with partial state, for tests and
// leak checks.
func (r *Reassembler) PendingCount() int { return len(r.pending) }

// SetObserver installs a callback invoked with the identifier of every
// well-formed fragment heard and whether it was a transaction-starting
// introduction. This is the "listening" tap of Section 3.2.
func (r *Reassembler) SetObserver(fn func(id uint64, intro bool)) { r.observer = fn }

// SetConflictHandler installs a callback invoked with each identifier
// dropped for internal inconsistency — the receiver-side trigger for the
// paper's optional collision-notification heuristic.
func (r *Reassembler) SetConflictHandler(fn func(id uint64)) { r.onConflict = fn }

// SetCompleteHandler installs a callback invoked with each identifier
// whose final fragment was observed — the transaction is known over. This
// is the turnover signal for density estimation: an identifier the sender
// has finished with need not be held active for the full idle gap.
func (r *Reassembler) SetCompleteHandler(fn func(id uint64)) { r.onComplete = fn }

// SetExpiryHandler installs a callback invoked with each identifier whose
// partial state the reassembly timeout evicted — the span tracer's
// receiver-side expiry signal.
func (r *Reassembler) SetExpiryHandler(fn func(id uint64)) { r.onExpire = fn }

// SetChecksumFailHandler installs a callback invoked with each identifier
// rejected at completion because its checksum failed — how an identifier
// collision most often surfaces at a receiver.
func (r *Reassembler) SetChecksumFailHandler(fn func(id uint64)) { r.onBadSum = fn }

// SetCapEvictHandler installs a callback invoked with each identifier the
// MaxPartials cap evicted, fired immediately before the onExpire handler
// for the same identifier.
func (r *Reassembler) SetCapEvictHandler(fn func(id uint64)) { r.onCapEvict = fn }

// Ingest processes one received frame.
func (r *Reassembler) Ingest(frameBytes []byte) {
	r.expire()
	decoded, err := r.codec.Decode(frameBytes)
	if err != nil {
		r.stats.Malformed++
		return
	}
	r.stats.FragmentsIn++
	switch fr := decoded.(type) {
	case *frame.Intro:
		key := r.key(fr.IDBits, fr.ID)
		if r.observer != nil {
			r.observer(key, true)
		}
		r.ingestIntro(key, fr)
	case *frame.Data:
		key := r.key(fr.IDBits, fr.ID)
		if r.observer != nil {
			r.observer(key, false)
		}
		r.ingestData(key, fr)
	}
}

// key maps a decoded fragment to its reassembly key. Fixed-width decodes
// report width 0 and key by the raw identifier, exactly as before
// adaptive mode existed; in-band decodes key by (width, id) so
// transactions at different widths never share state.
func (r *Reassembler) key(decodedWidth int, id uint64) uint64 {
	if decodedWidth == 0 {
		return id
	}
	return WidthKey(decodedWidth, id)
}

func (r *Reassembler) ingestIntro(key uint64, in *frame.Intro) {
	p, ok := r.pending[key]
	if !ok {
		p = r.newPending(key)
	}
	r.touch(key, p)
	if p.haveIntro {
		if p.totalLen != in.TotalLen || p.sum != in.Checksum {
			// Two transactions announced under one identifier.
			r.conflict(key)
		}
		// A byte-identical duplicate introduction is harmless.
		return
	}
	p.haveIntro = true
	p.totalLen = in.TotalLen
	p.sum = in.Checksum
	p.truth = in.Truth
	p.buf = make([]byte, in.TotalLen)
	p.covered = make([]bool, in.TotalLen)

	early := p.early
	p.early = nil
	for _, d := range early {
		if !r.apply(key, p, d) {
			return // conflict dropped the state
		}
	}
	r.maybeComplete(key, p)
}

func (r *Reassembler) ingestData(key uint64, d *frame.Data) {
	p, ok := r.pending[key]
	if !ok {
		p = r.newPending(key)
	}
	r.touch(key, p)
	if !p.haveIntro {
		// Introduction not yet seen (reordering is impossible on our
		// radio, but the introduction frame itself can be lost).
		if len(p.early) < maxEarlyFragments {
			p.early = append(p.early, d)
		}
		return
	}
	if !r.apply(key, p, d) {
		return
	}
	r.maybeComplete(key, p)
}

// apply merges a data fragment into a pending packet with a known length.
// It reports false if the fragment triggered a conflict drop.
func (r *Reassembler) apply(id uint64, p *pending, d *frame.Data) bool {
	end := d.Offset + len(d.Payload)
	if end > p.totalLen {
		r.conflict(id)
		return false
	}
	// Overlap with different content is direct evidence that two senders
	// share this identifier.
	for i, b := range d.Payload {
		at := d.Offset + i
		if p.covered[at] && p.buf[at] != b {
			r.conflict(id)
			return false
		}
	}
	for i, b := range d.Payload {
		at := d.Offset + i
		if !p.covered[at] {
			p.covered[at] = true
			p.gotBytes++
		}
		p.buf[at] = b
	}
	if end == p.totalLen && r.onComplete != nil {
		// The fragment covering the last announced byte is the final one
		// the sender transmits (fragments go out in offset order): the
		// transaction is over on air regardless of what was lost before it.
		r.onComplete(id)
	}
	return true
}

// maybeComplete delivers or rejects a fully covered packet.
func (r *Reassembler) maybeComplete(id uint64, p *pending) {
	if !p.haveIntro || p.gotBytes != p.totalLen {
		return
	}
	delete(r.pending, id)
	if checksum.Sum(r.cfg.Checksum, p.buf) != p.sum {
		r.stats.ChecksumFailures++
		if r.onBadSum != nil {
			r.onBadSum(id)
		}
		return
	}
	r.stats.Delivered++
	r.stats.DeliveredBits += int64(8 * len(p.buf))
	if r.deliver != nil {
		r.deliver(Packet{ID: id, Data: p.buf, Truth: p.truth})
	}
}

// conflict drops all state for an identifier.
func (r *Reassembler) conflict(id uint64) {
	delete(r.pending, id)
	r.stats.Conflicts++
	if r.onConflict != nil {
		r.onConflict(id)
	}
}

// newPending makes room under the MaxPartials cap if needed, then
// registers fresh state for key and tracks the occupancy high-water mark.
func (r *Reassembler) newPending(key uint64) *pending {
	if r.cfg.MaxPartials > 0 && len(r.pending) >= r.cfg.MaxPartials {
		r.evictOldest()
	}
	p := &pending{}
	r.pending[key] = p
	if n := int64(len(r.pending)); n > r.stats.PendingPeak {
		r.stats.PendingPeak = n
	}
	return p
}

// evictOldest removes the partial packet with the oldest activity. The
// expiry queue supplies the order: entries are sorted by activity time,
// and the first entry whose pending state saw no later activity names
// the coldest identifier — deterministic for a given ingest order, O(1)
// amortized like expire. The victim's onCapEvict fires first, then
// onExpire, so downstream "transaction abandoned" consumers (span
// tracer, turnover estimator) hear cap evictions exactly like timeouts.
func (r *Reassembler) evictOldest() {
	for r.expqHead < len(r.expq) {
		e := r.expq[r.expqHead]
		r.expqHead++
		p, ok := r.pending[e.id]
		if !ok || p.lastActivity != e.at {
			continue
		}
		delete(r.pending, e.id)
		r.stats.CapEvictions++
		if r.onCapEvict != nil {
			r.onCapEvict(e.id)
		}
		if r.onExpire != nil {
			r.onExpire(e.id)
		}
		break
	}
	r.compactExpq()
}

// touch records activity for an identifier: it stamps the pending state
// and appends an expiry-queue entry. The queue stays sorted because the
// virtual clock is monotone. The cap path needs the queue even with
// timeouts disabled — it is the eviction order.
func (r *Reassembler) touch(id uint64, p *pending) {
	p.lastActivity = r.now()
	if r.cfg.ReassemblyTimeout > 0 || r.cfg.MaxPartials > 0 {
		r.expq = append(r.expq, expEntry{id: id, at: p.lastActivity})
	}
}

// expire evicts partial packets idle longer than the configured timeout.
// Each queue entry is examined once ever, so the amortized cost per
// ingested fragment is O(1); an entry made stale by later activity is
// simply discarded (that activity pushed its own entry).
func (r *Reassembler) expire() {
	if r.cfg.ReassemblyTimeout <= 0 {
		return
	}
	now := r.now()
	for r.expqHead < len(r.expq) {
		e := r.expq[r.expqHead]
		if now-e.at <= r.cfg.ReassemblyTimeout {
			break
		}
		r.expqHead++
		p, ok := r.pending[e.id]
		if !ok || p.lastActivity != e.at {
			continue
		}
		delete(r.pending, e.id)
		r.stats.Timeouts++
		if r.onExpire != nil {
			r.onExpire(e.id)
		}
	}
	r.compactExpq()
}

// compactExpq reclaims consumed queue prefix once it dominates the slice.
func (r *Reassembler) compactExpq() {
	if r.expqHead < 64 || r.expqHead*2 < len(r.expq) {
		return
	}
	n := copy(r.expq, r.expq[r.expqHead:])
	r.expq = r.expq[:n]
	r.expqHead = 0
}

// Sweep runs timeout eviction at the present instant without ingesting a
// frame. Wire it to an engine timer (node.AFFOptions.Engine) so idle
// nodes shed stale partial-packet state instead of retaining it until the
// next reception.
func (r *Reassembler) Sweep() { r.expire() }

// NextExpiry reports the earliest virtual time at which a pending
// identifier could expire, and whether any timeout is outstanding. The
// returned time is when eviction becomes possible, not a promise that
// state will still be stale then.
func (r *Reassembler) NextExpiry() (time.Duration, bool) {
	if r.cfg.ReassemblyTimeout <= 0 || r.expqHead >= len(r.expq) {
		return 0, false
	}
	return r.expq[r.expqHead].at + r.cfg.ReassemblyTimeout, true
}

// Reset discards all partial-packet state, modelling a node crash: RAM is
// gone, counters (which belong to the measurement harness, not the node)
// survive.
func (r *Reassembler) Reset() {
	r.pending = make(map[uint64]*pending)
	r.expq = nil
	r.expqHead = 0
}
