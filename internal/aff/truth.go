package aff

import (
	"time"

	"retri/internal/checksum"
	"retri/internal/frame"
)

// TruthReassembler rebuilds packets keyed by the instrumentation trailer's
// guaranteed-unique (node, sequence) pair instead of the AFF identifier.
//
// This is the measurement side of the Section 5.1 experiment: "By examining
// both the AFF identifier and the guaranteed unique node identifier of
// received fragments, the receiver's driver is able to determine how many
// packets would have been lost due to AFF identifier collisions if the
// unique ID had not been present." Running a TruthReassembler and a
// Reassembler over the same fragment stream gives the two packet counts
// whose ratio is the measured collision rate.
type TruthReassembler struct {
	cfg   Config
	codec frame.AFFCodec
	now   func() time.Duration

	pending map[frame.Truth]*pending
	stats   Stats
}

// NewTruthReassembler returns a ground-truth reassembler. cfg.Instrument
// is forced on — the trailer is the key.
func NewTruthReassembler(cfg Config, now func() time.Duration) *TruthReassembler {
	cfg = cfg.withDefaults()
	cfg.Instrument = true
	if now == nil {
		now = func() time.Duration { return 0 }
		cfg.ReassemblyTimeout = 0
	}
	return &TruthReassembler{
		cfg:     cfg,
		codec:   cfg.codec(),
		now:     now,
		pending: make(map[frame.Truth]*pending),
	}
}

// Stats returns a snapshot of counters. Conflicts stays zero by
// construction: the truth key is genuinely unique.
func (r *TruthReassembler) Stats() Stats { return r.stats }

// PendingCount reports partial packets held.
func (r *TruthReassembler) PendingCount() int { return len(r.pending) }

// Ingest processes one received frame.
func (r *TruthReassembler) Ingest(frameBytes []byte) {
	r.expire()
	decoded, err := r.codec.Decode(frameBytes)
	if err != nil {
		r.stats.Malformed++
		return
	}
	r.stats.FragmentsIn++
	switch fr := decoded.(type) {
	case *frame.Intro:
		if fr.Truth == nil {
			r.stats.Malformed++
			return
		}
		p := r.get(*fr.Truth)
		if p.haveIntro {
			return // duplicate introduction
		}
		p.haveIntro = true
		p.totalLen = fr.TotalLen
		p.sum = fr.Checksum
		p.truth = fr.Truth
		p.buf = make([]byte, fr.TotalLen)
		p.covered = make([]bool, fr.TotalLen)
		early := p.early
		p.early = nil
		for _, d := range early {
			r.apply(p, d)
		}
		r.maybeComplete(*fr.Truth, p)
	case *frame.Data:
		if fr.Truth == nil {
			r.stats.Malformed++
			return
		}
		p := r.get(*fr.Truth)
		if !p.haveIntro {
			if len(p.early) < maxEarlyFragments {
				p.early = append(p.early, fr)
			}
			return
		}
		r.apply(p, fr)
		r.maybeComplete(*fr.Truth, p)
	}
}

func (r *TruthReassembler) get(key frame.Truth) *pending {
	p, ok := r.pending[key]
	if !ok {
		p = &pending{}
		r.pending[key] = p
	}
	p.lastActivity = r.now()
	return p
}

// apply merges a fragment. Under the unique key, out-of-range offsets can
// only mean corruption; the fragment is ignored rather than dropping the
// packet.
func (r *TruthReassembler) apply(p *pending, d *frame.Data) {
	end := d.Offset + len(d.Payload)
	if end > p.totalLen {
		return
	}
	for i, b := range d.Payload {
		at := d.Offset + i
		if !p.covered[at] {
			p.covered[at] = true
			p.gotBytes++
		}
		p.buf[at] = b
	}
}

func (r *TruthReassembler) maybeComplete(key frame.Truth, p *pending) {
	if !p.haveIntro || p.gotBytes != p.totalLen {
		return
	}
	delete(r.pending, key)
	if checksum.Sum(r.cfg.Checksum, p.buf) != p.sum {
		r.stats.ChecksumFailures++
		return
	}
	r.stats.Delivered++
	r.stats.DeliveredBits += int64(8 * len(p.buf))
}

func (r *TruthReassembler) expire() {
	if r.cfg.ReassemblyTimeout <= 0 {
		return
	}
	cutoff := r.now() - r.cfg.ReassemblyTimeout
	if cutoff <= 0 {
		return
	}
	for key, p := range r.pending {
		if p.lastActivity < cutoff {
			delete(r.pending, key)
			r.stats.Timeouts++
		}
	}
}
