package aff

import (
	"testing"

	"retri/internal/checksum"
	"retri/internal/core"
	"retri/internal/xrand"
)

// Misconfiguration interop tests: mismatched ends must fail safe — no
// delivery of corrupted payloads, ever.

func TestChecksumKindMismatchFailsSafe(t *testing.T) {
	// Sender uses CRC16, receiver verifies with the Internet checksum:
	// every reassembly fails verification; nothing corrupt is delivered.
	sendCfg := testConfig(9)
	sendCfg.Checksum = checksum.CRC16
	recvCfg := testConfig(9)
	recvCfg.Checksum = checksum.Internet

	sel := core.NewUniformSelector(sendCfg.Space, xrand.NewSource(1).Stream("mc"))
	f, err := NewFragmenter(sendCfg, sel, 1)
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	r := NewReassembler(recvCfg, nil, func(Packet) { delivered++ })
	for i := 0; i < 5; i++ {
		pkt := make([]byte, 60)
		for j := range pkt {
			pkt[j] = byte(i*7 + j)
		}
		tx, err := f.Fragment(pkt)
		if err != nil {
			t.Fatal(err)
		}
		for _, fr := range tx.Fragments {
			r.Ingest(fr.Bytes)
		}
	}
	if delivered != 0 {
		t.Errorf("delivered %d packets across a checksum-kind mismatch", delivered)
	}
	if r.Stats().ChecksumFailures != 5 {
		t.Errorf("ChecksumFailures = %d, want 5", r.Stats().ChecksumFailures)
	}
}

func TestIDWidthMismatchNeverDeliversCorrupt(t *testing.T) {
	// Sender packs 9-bit identifiers; receiver parses 12-bit ones. Field
	// boundaries shift, so everything downstream is misinterpreted — the
	// checksum must stop all of it.
	sendCfg := testConfig(9)
	recvCfg := testConfig(12)

	sel := core.NewUniformSelector(sendCfg.Space, xrand.NewSource(2).Stream("mw"))
	f, err := NewFragmenter(sendCfg, sel, 1)
	if err != nil {
		t.Fatal(err)
	}
	sent := make(map[string]bool)
	corrupt := 0
	r := NewReassembler(recvCfg, nil, func(p Packet) {
		if !sent[string(p.Data)] {
			corrupt++
		}
	})
	for i := 0; i < 10; i++ {
		pkt := make([]byte, 40)
		for j := range pkt {
			pkt[j] = byte(i + j*3)
		}
		sent[string(pkt)] = true
		tx, err := f.Fragment(pkt)
		if err != nil {
			t.Fatal(err)
		}
		for _, fr := range tx.Fragments {
			r.Ingest(fr.Bytes)
		}
	}
	if corrupt != 0 {
		t.Errorf("%d corrupted packets delivered across an id-width mismatch", corrupt)
	}
}

func TestInstrumentMismatchNeverDeliversCorrupt(t *testing.T) {
	// Sender instruments (64 extra header bits); receiver does not expect
	// them. The receiver misparses offsets/payloads; nothing corrupt may
	// surface.
	sendCfg := instrumentedConfig(9)
	recvCfg := testConfig(9)

	sel := core.NewUniformSelector(sendCfg.Space, xrand.NewSource(3).Stream("mi"))
	f, err := NewFragmenter(sendCfg, sel, 7)
	if err != nil {
		t.Fatal(err)
	}
	sent := make(map[string]bool)
	corrupt := 0
	r := NewReassembler(recvCfg, nil, func(p Packet) {
		if !sent[string(p.Data)] {
			corrupt++
		}
	})
	for i := 0; i < 10; i++ {
		pkt := make([]byte, 50)
		for j := range pkt {
			pkt[j] = byte(i ^ j)
		}
		sent[string(pkt)] = true
		tx, err := f.Fragment(pkt)
		if err != nil {
			t.Fatal(err)
		}
		for _, fr := range tx.Fragments {
			r.Ingest(fr.Bytes)
		}
	}
	if corrupt != 0 {
		t.Errorf("%d corrupted packets delivered across an instrumentation mismatch", corrupt)
	}
}
