package aff

import (
	"testing"
	"time"

	"retri/internal/core"
)

// partialTx ingests all but the final fragment of one fresh transaction,
// leaving exactly one pending reassembly.
func partialTx(t *testing.T, f *Fragmenter, r *Reassembler) {
	t.Helper()
	tx, err := f.Fragment(make([]byte, 80))
	if err != nil {
		t.Fatal(err)
	}
	for _, fr := range tx.Fragments[:len(tx.Fragments)-1] {
		r.Ingest(fr.Bytes)
	}
}

// TestSweepEvictsIdleState is the regression test for the timer-driven
// expiry path: a node that never hears another frame must still shed its
// stale partial-packet state when asked to sweep.
func TestSweepEvictsIdleState(t *testing.T) {
	cfg := testConfig(9)
	cfg.ReassemblyTimeout = 10 * time.Second
	now := time.Duration(0)
	f := newFragmenter(t, cfg, 21)
	r := NewReassembler(cfg, func() time.Duration { return now }, nil)

	partialTx(t, f, r)
	if r.PendingCount() != 1 {
		t.Fatalf("PendingCount = %d, want 1 partial", r.PendingCount())
	}
	next, ok := r.NextExpiry()
	if !ok || next != 10*time.Second {
		t.Fatalf("NextExpiry = (%v, %v), want (10s, true)", next, ok)
	}

	// At the deadline itself nothing is overdue (eviction requires strictly
	// exceeding the timeout) …
	now = next
	r.Sweep()
	if r.PendingCount() != 1 {
		t.Error("Sweep evicted state exactly at the deadline")
	}
	// … one instant later the partial is gone, with no ingest in between.
	now = next + 1
	r.Sweep()
	if r.PendingCount() != 0 {
		t.Errorf("PendingCount = %d after idle sweep, want 0", r.PendingCount())
	}
	if r.Stats().Timeouts != 1 {
		t.Errorf("Timeouts = %d, want 1", r.Stats().Timeouts)
	}
	if _, ok := r.NextExpiry(); ok {
		t.Error("NextExpiry still reports work after the queue drained")
	}
}

func TestLaterActivityDefersEviction(t *testing.T) {
	cfg := testConfig(9)
	cfg.ReassemblyTimeout = 10 * time.Second
	now := time.Duration(0)
	f := newFragmenter(t, cfg, 22)
	r := NewReassembler(cfg, func() time.Duration { return now }, nil)

	tx, err := f.Fragment(make([]byte, 80))
	if err != nil {
		t.Fatal(err)
	}
	r.Ingest(tx.Fragments[0].Bytes) // intro at t=0
	now = 8 * time.Second
	r.Ingest(tx.Fragments[1].Bytes) // refreshed before the deadline

	// The t=0 queue entry comes due, but the state saw later activity: the
	// stale entry must be discarded without evicting.
	now = 10*time.Second + 1
	r.Sweep()
	if r.PendingCount() != 1 {
		t.Fatal("refreshed partial evicted by a stale queue entry")
	}
	if r.Stats().Timeouts != 0 {
		t.Errorf("Timeouts = %d for live state", r.Stats().Timeouts)
	}
	// The refresh's own entry still stands.
	if next, ok := r.NextExpiry(); !ok || next != 18*time.Second {
		t.Errorf("NextExpiry = (%v, %v), want (18s, true)", next, ok)
	}
	now = 18*time.Second + 1
	r.Sweep()
	if r.PendingCount() != 0 || r.Stats().Timeouts != 1 {
		t.Errorf("pending = %d, timeouts = %d after true expiry, want 0/1",
			r.PendingCount(), r.Stats().Timeouts)
	}
}

func TestExpiryQueueCompacts(t *testing.T) {
	cfg := testConfig(9)
	cfg.ReassemblyTimeout = time.Second
	now := time.Duration(0)
	sel := core.NewSequentialSelector(cfg.Space, 0)
	f, err := NewFragmenter(cfg, sel, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReassembler(cfg, func() time.Duration { return now }, nil)

	const n = 200
	for i := 0; i < n; i++ {
		now = time.Duration(i) * time.Millisecond
		partialTx(t, f, r)
	}
	if r.PendingCount() != n {
		t.Fatalf("PendingCount = %d, want %d distinct identifiers", r.PendingCount(), n)
	}
	now += 2 * time.Second
	r.Sweep()
	if r.PendingCount() != 0 {
		t.Errorf("PendingCount = %d after mass expiry, want 0", r.PendingCount())
	}
	if got := r.Stats().Timeouts; got != n {
		t.Errorf("Timeouts = %d, want %d", got, n)
	}
	// The consumed prefix must have been reclaimed, not retained forever.
	if r.expqHead != 0 || len(r.expq) != 0 {
		t.Errorf("expiry queue not compacted: head %d, len %d", r.expqHead, len(r.expq))
	}
}

func TestResetWipesStateKeepsStats(t *testing.T) {
	cfg := testConfig(9)
	cfg.ReassemblyTimeout = 10 * time.Second
	now := time.Duration(0)
	f := newFragmenter(t, cfg, 23)
	r := NewReassembler(cfg, func() time.Duration { return now }, nil)

	partialTx(t, f, r)
	now = 10*time.Second + 1
	r.Sweep() // one real timeout on the books
	partialTx(t, f, r)

	r.Reset()
	if r.PendingCount() != 0 {
		t.Errorf("PendingCount = %d after Reset", r.PendingCount())
	}
	if _, ok := r.NextExpiry(); ok {
		t.Error("NextExpiry outstanding after Reset")
	}
	if r.Stats().Timeouts != 1 {
		t.Errorf("Reset disturbed harness counters: Timeouts = %d, want 1", r.Stats().Timeouts)
	}
	// A post-reset partial expires normally — the queue restarts cleanly.
	partialTx(t, f, r)
	now += 20 * time.Second
	r.Sweep()
	if r.Stats().Timeouts != 2 {
		t.Errorf("post-Reset expiry broken: Timeouts = %d, want 2", r.Stats().Timeouts)
	}
}

func TestNoTimeoutNoQueue(t *testing.T) {
	// A nil clock disables timeouts entirely: no queue growth, no expiry.
	cfg := testConfig(9)
	f := newFragmenter(t, cfg, 24)
	r := NewReassembler(cfg, nil, nil)
	partialTx(t, f, r)
	if len(r.expq) != 0 {
		t.Errorf("expiry queue grew (%d entries) with timeouts disabled", len(r.expq))
	}
	if _, ok := r.NextExpiry(); ok {
		t.Error("NextExpiry reports work with timeouts disabled")
	}
	r.Sweep()
	if r.PendingCount() != 1 {
		t.Error("Sweep evicted state with timeouts disabled")
	}
}
