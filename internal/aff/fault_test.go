package aff

import (
	"bytes"
	"testing"
	"testing/quick"

	"retri/internal/core"
	"retri/internal/xrand"
)

// TestFaultInjectionNeverCorrupts: under arbitrary per-fragment drop,
// duplication and reordering across MANY interleaved transactions, the
// reassembler delivers only byte-exact packets — loss is the only failure
// mode the application ever sees (identifier collisions excluded here by a
// wide space).
func TestFaultInjectionNeverCorrupts(t *testing.T) {
	f := func(seed uint64) bool {
		src := xrand.NewSource(seed)
		rng := src.Stream("faults")
		cfg := testConfig(16)
		sent := make(map[string]bool)

		// Build several transactions from several senders.
		type txFrag struct{ bytes []byte }
		var frags []txFrag
		for s := 0; s < 4; s++ {
			sel := core.NewUniformSelector(cfg.Space, src.Stream("sel", string(rune('0'+s))))
			fr, err := NewFragmenter(cfg, sel, uint32(s))
			if err != nil {
				return false
			}
			for p := 0; p < 3; p++ {
				pkt := make([]byte, int(rng.Uint64N(300))+1)
				for i := range pkt {
					pkt[i] = byte(rng.Uint64())
				}
				sent[string(pkt)] = true
				tx, err := fr.Fragment(pkt)
				if err != nil {
					return false
				}
				for _, fg := range tx.Fragments {
					frags = append(frags, txFrag{bytes: fg.Bytes})
				}
			}
		}

		// Fault injection: drop 20%, duplicate 20%, shuffle everything.
		var stream [][]byte
		for _, fg := range frags {
			switch rng.Uint64N(5) {
			case 0: // drop
			case 1: // duplicate
				stream = append(stream, fg.bytes, fg.bytes)
			default:
				stream = append(stream, fg.bytes)
			}
		}
		rng.Shuffle(len(stream), func(i, j int) { stream[i], stream[j] = stream[j], stream[i] })

		ok := true
		r := NewReassembler(cfg, nil, func(p Packet) {
			if !sent[string(p.Data)] {
				ok = false
			}
		})
		for _, b := range stream {
			r.Ingest(b)
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestLossOnlyAffectsLossyTransactions: dropping fragments of one
// transaction must not prevent other transactions from delivering.
func TestLossOnlyAffectsLossyTransactions(t *testing.T) {
	cfg := testConfig(12)
	src := xrand.NewSource(9)
	selA := core.NewUniformSelector(cfg.Space, src.Stream("a"))
	selB := core.NewUniformSelector(cfg.Space, src.Stream("b"))
	fa, err := NewFragmenter(cfg, selA, 1)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := NewFragmenter(cfg, selB, 2)
	if err != nil {
		t.Fatal(err)
	}
	pktA := bytes.Repeat([]byte{0xA}, 100)
	pktB := bytes.Repeat([]byte{0xB}, 100)
	txA, err := fa.Fragment(pktA)
	if err != nil {
		t.Fatal(err)
	}
	txB, err := fb.Fragment(pktB)
	if err != nil {
		t.Fatal(err)
	}

	var out []Packet
	r := NewReassembler(cfg, nil, func(p Packet) { out = append(out, p) })
	// Interleave, dropping txA's second data fragment.
	for i := 0; i < len(txA.Fragments); i++ {
		if i != 2 {
			r.Ingest(txA.Fragments[i].Bytes)
		}
		r.Ingest(txB.Fragments[i].Bytes)
	}
	if len(out) != 1 || !bytes.Equal(out[0].Data, pktB) {
		t.Fatalf("expected exactly B delivered, got %d packets", len(out))
	}
}

// TestDuplicateIntroAfterDeliveryStartsFresh: after a packet completes,
// its identifier must be immediately reusable — the temporal-reuse
// property the scheme depends on.
func TestIdentifierImmediatelyReusableAfterDelivery(t *testing.T) {
	cfg := testConfig(4)
	sel := core.NewSequentialSelector(cfg.Space, 9)
	sel2 := core.NewSequentialSelector(cfg.Space, 9)
	f1, err := NewFragmenter(cfg, sel, 1)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := NewFragmenter(cfg, sel2, 2)
	if err != nil {
		t.Fatal(err)
	}

	var out []Packet
	r := NewReassembler(cfg, nil, func(p Packet) { out = append(out, p) })
	for round := 0; round < 5; round++ {
		pkt := bytes.Repeat([]byte{byte(round)}, 50)
		fr := f1
		if round%2 == 1 {
			fr = f2 // alternate senders, same id sequence
		}
		tx, err := fr.Fragment(pkt)
		if err != nil {
			t.Fatal(err)
		}
		for _, fg := range tx.Fragments {
			r.Ingest(fg.Bytes)
		}
	}
	if len(out) != 5 {
		t.Errorf("delivered %d/5 sequential same-id-pool transactions", len(out))
	}
	if r.Stats().Conflicts != 0 {
		t.Errorf("conflicts = %d on non-overlapping reuse", r.Stats().Conflicts)
	}
}

// TestPendingStateBounded: a flood of orphan data fragments under many
// identifiers cannot grow per-identifier state beyond the early-fragment
// cap, and the identifier count is bounded by the space size.
func TestPendingStateBounded(t *testing.T) {
	cfg := testConfig(6) // 64 identifiers
	r := NewReassembler(cfg, nil, nil)
	src := xrand.NewSource(10)
	sel := core.NewUniformSelector(cfg.Space, src.Stream("s"))
	f, err := NewFragmenter(cfg, sel, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		tx, err := f.Fragment(bytes.Repeat([]byte{byte(i)}, 60))
		if err != nil {
			t.Fatal(err)
		}
		// Only data fragments; introductions never arrive.
		for _, fg := range tx.Fragments[1:] {
			r.Ingest(fg.Bytes)
		}
	}
	if got := r.PendingCount(); got > 64 {
		t.Errorf("pending identifiers = %d, cannot exceed space size 64", got)
	}
}
