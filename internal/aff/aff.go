// Package aff implements the paper's Address-Free Fragmentation service
// (Sections 3 and 5).
//
// The fragmenter accepts packets of up to 64 KiB, draws one RETRI
// identifier per packet from a core.Selector, and splits the packet into a
// "packet introduction" fragment (identifier, total length, checksum)
// followed by data fragments (identifier, byte offset, data) sized to the
// radio MTU. The reassembler collects fragments by identifier, delivers a
// packet when every byte is covered and the checksum verifies, and treats
// any inconsistency — conflicting introductions, overlapping fragments
// with different content, offsets beyond the announced length — as
// evidence of an identifier collision, discarding the transaction.
// "Packets that suffer from identifier collisions are never delivered
// because of checksum failures or other inconsistencies" (Section 5).
package aff

import (
	"errors"
	"fmt"
	"time"

	"retri/internal/checksum"
	"retri/internal/core"
	"retri/internal/frame"
)

var (
	// ErrPacketTooLarge is returned for packets beyond the 64 KiB driver
	// limit.
	ErrPacketTooLarge = errors.New("aff: packet exceeds 64KiB limit")
	// ErrEmptyPacket is returned for zero-length packets.
	ErrEmptyPacket = errors.New("aff: empty packet")
	// ErrMTUTooSmall is returned when no payload fits in a data fragment.
	ErrMTUTooSmall = errors.New("aff: MTU too small for fragment header")
)

// Config parameterizes a fragmenter/reassembler pair. Both ends of a
// deployment must agree on Space, Checksum and Instrument (they define the
// wire format).
type Config struct {
	// Space is the RETRI identifier pool.
	Space core.Space
	// MTU is the radio's maximum frame size in bytes (default 27).
	MTU int
	// Checksum selects the packet checksum algorithm (default Internet).
	Checksum checksum.Kind
	// Instrument adds the ground-truth trailer to every fragment
	// (Section 5.1 methodology).
	Instrument bool
	// ReassemblyTimeout evicts partial packets idle this long (default
	// 30s). Identifier reuse by later transactions depends on stale state
	// not lingering.
	ReassemblyTimeout time.Duration
	// MaxPartials caps the number of concurrently-held partial packets —
	// the reassembler's memory budget under fragment storms. When a
	// fragment for a new identifier would exceed the cap, the partial
	// with the oldest activity is deterministically evicted first and
	// counted (Stats.CapEvictions). Zero or negative means unbounded,
	// the historical behavior.
	MaxPartials int
	// AdaptiveWidth switches to the in-band-width wire format: every
	// fragment spends 5 extra header bits announcing its identifier's
	// width, letting each transaction pick any width up to Space.Bits()
	// (see Fragmenter.FragmentWidth) and letting one reassembler demux a
	// mix of widths. Both ends must agree on it — it changes the format.
	AdaptiveWidth bool
}

func (c Config) withDefaults() Config {
	if c.MTU == 0 {
		c.MTU = 27
	}
	if c.Checksum == 0 {
		c.Checksum = checksum.Internet
	}
	if c.ReassemblyTimeout == 0 {
		c.ReassemblyTimeout = 30 * time.Second
	}
	return c
}

func (c Config) codec() frame.AFFCodec {
	return frame.AFFCodec{IDBits: c.Space.Bits(), Instrument: c.Instrument, InBandWidth: c.AdaptiveWidth}
}

// WidthKey builds the composite reassembly key for an identifier heard at
// the given width. Identifiers drawn at different widths are distinct
// transactions even when their numeric values coincide — a 4-bit id 3 and
// a 9-bit id 3 must never merge — so adaptive-mode reassembly state is
// keyed by (width, id). It is core.WidthKey: the reassembler, the
// selectors' learned state and the retransmission avoid-set all share one
// keyspace contract.
func WidthKey(bits int, id uint64) uint64 { return core.WidthKey(bits, id) }

// SplitWidthKey undoes WidthKey, returning the width and raw identifier.
func SplitWidthKey(key uint64) (bits int, id uint64) { return core.SplitWidthKey(key) }

// Fragment is one encoded radio frame of a transaction.
type Fragment struct {
	// Bytes is the encoded frame.
	Bytes []byte
	// Bits is the number of meaningful bits (airtime/energy accounting).
	Bits int
}

// Transaction is a fragmented packet ready for transmission. In the
// paper's terms, transmitting all of these frames is one transaction.
type Transaction struct {
	// ID is the RETRI identifier drawn for this packet.
	ID uint64
	// Fragments holds the introduction first, then data fragments in
	// offset order.
	Fragments []Fragment
	// DataBits is the packet's payload size in bits (the "useful bits"
	// numerator of Equation 1).
	DataBits int
	// IDBits is the identifier width this transaction was encoded at. It
	// equals the space width except for adaptive-width transactions, which
	// may choose narrower.
	IDBits int
	// Truth is the instrumentation trailer stamped into every fragment,
	// nil when the config is uninstrumented. It exists for the measurement
	// harness (span tracing, oracle audits); protocol code must not use it.
	Truth *frame.Truth
	// Redraws counts identifier draws discarded by the retransmission
	// avoid-set before this identifier was accepted (always zero outside
	// the FragmentAvoiding paths). Measurement bookkeeping only.
	Redraws int
}

// TotalBits sums the meaningful bits across all fragments (the
// protocol-level "total bits transmitted" denominator of Equation 1,
// excluding MAC framing).
func (t Transaction) TotalBits() int {
	sum := 0
	for _, f := range t.Fragments {
		sum += f.Bits
	}
	return sum
}

// Fragmenter splits packets into address-free fragments.
type Fragmenter struct {
	cfg   Config
	codec frame.AFFCodec
	sel   core.Selector
	node  uint32
	seq   uint32
}

// NewFragmenter returns a fragmenter drawing identifiers from sel.
// truthNode is only used when cfg.Instrument is set, to stamp the
// ground-truth trailer.
func NewFragmenter(cfg Config, sel core.Selector, truthNode uint32) (*Fragmenter, error) {
	cfg = cfg.withDefaults()
	if sel == nil {
		return nil, errors.New("aff: nil selector")
	}
	if sel.Space() != cfg.Space {
		return nil, fmt.Errorf("aff: selector space %d bits != config space %d bits",
			sel.Space().Bits(), cfg.Space.Bits())
	}
	codec := cfg.codec()
	if codec.MaxPayload(cfg.MTU) <= 0 {
		return nil, fmt.Errorf("%w: %d bytes", ErrMTUTooSmall, cfg.MTU)
	}
	if (codec.IntroBits()+7)/8 > cfg.MTU {
		return nil, fmt.Errorf("%w: intro needs %d bytes", ErrMTUTooSmall, (codec.IntroBits()+7)/8)
	}
	return &Fragmenter{cfg: cfg, codec: codec, sel: sel, node: truthNode}, nil
}

// Config returns the effective configuration (defaults applied).
func (f *Fragmenter) Config() Config { return f.cfg }

// Selector returns the identifier selector in use.
func (f *Fragmenter) Selector() core.Selector { return f.sel }

// Fragment draws a fresh identifier and splits packet into fragments:
// one introduction plus ceil(len/payload) data fragments.
func (f *Fragmenter) Fragment(packet []byte) (Transaction, error) {
	if len(packet) == 0 {
		return Transaction{}, ErrEmptyPacket
	}
	if len(packet) > frame.MaxPacketLen {
		return Transaction{}, fmt.Errorf("%w: %d bytes", ErrPacketTooLarge, len(packet))
	}
	return f.fragmentWithID(f.codec, f.sel.Next(), packet)
}

// FragmentWidth is Fragment with a per-transaction identifier width, the
// adaptive-sizing hook (paper Section 4: width should track observed
// density, not network size). It requires AdaptiveWidth and accepts any
// width from 1 to Space.Bits(). The identifier is the selector's own
// width-aware draw (core.Selector.NextWidth), so every strategy keeps its
// selection discipline — listening avoidance, epoch collision-freedom,
// counter spacing — at the narrow width rather than degrading to a masked
// full-width draw.
func (f *Fragmenter) FragmentWidth(packet []byte, bits int) (Transaction, error) {
	if !f.cfg.AdaptiveWidth {
		return Transaction{}, errors.New("aff: FragmentWidth requires Config.AdaptiveWidth")
	}
	if bits < 1 || bits > f.cfg.Space.Bits() {
		return Transaction{}, fmt.Errorf("aff: width %d outside [1, %d]", bits, f.cfg.Space.Bits())
	}
	if len(packet) == 0 {
		return Transaction{}, ErrEmptyPacket
	}
	if len(packet) > frame.MaxPacketLen {
		return Transaction{}, fmt.Errorf("%w: %d bytes", ErrPacketTooLarge, len(packet))
	}
	codec := f.codec
	codec.IDBits = bits
	return f.fragmentWithID(codec, f.sel.NextWidth(bits), packet)
}

// FragmentAvoiding is Fragment with the paper's retransmission invariant
// enforced in code: a retransmitted packet must never reuse the previous
// attempt's identifier (Section 3 — a retry is a new transaction). The
// selector is redrawn until it yields something other than avoid, which
// terminates because redraws are independent (uniform/listening) or
// cycling (sequential); a one-identifier space cannot avoid anything and
// is used as-is.
//
// In fixed-width mode avoid is the previous attempt's raw identifier; in
// adaptive-width mode it is the previous attempt's WidthKey composite —
// identifiers only share the air with same-width identifiers, so that is
// the comparison that actually detects a reuse.
func (f *Fragmenter) FragmentAvoiding(packet []byte, avoid uint64) (Transaction, error) {
	return f.fragmentAvoidingAt(packet, f.cfg.Space.Bits(), avoid)
}

// FragmentWidthAvoiding is FragmentAvoiding at a per-transaction width:
// the retransmission path of an adaptive-width node. It requires
// AdaptiveWidth; avoid is the previous attempt's WidthKey composite (any
// out-of-keyspace sentinel avoids nothing). The avoidance comparison runs
// under (width, id): a retry at a different width never burns redraws on
// an identifier it does not share the air with, and always redraws one it
// does.
func (f *Fragmenter) FragmentWidthAvoiding(packet []byte, bits int, avoid uint64) (Transaction, error) {
	if !f.cfg.AdaptiveWidth {
		return Transaction{}, errors.New("aff: FragmentWidthAvoiding requires Config.AdaptiveWidth")
	}
	if bits < 1 || bits > f.cfg.Space.Bits() {
		return Transaction{}, fmt.Errorf("aff: width %d outside [1, %d]", bits, f.cfg.Space.Bits())
	}
	return f.fragmentAvoidingAt(packet, bits, avoid)
}

// fragmentAvoidingAt draws at the given width until the draw differs from
// avoid, comparing under the mode's reassembly keyspace: raw identifiers
// in fixed-width mode, WidthKey composites in adaptive mode.
func (f *Fragmenter) fragmentAvoidingAt(packet []byte, bits int, avoid uint64) (Transaction, error) {
	if len(packet) == 0 {
		return Transaction{}, ErrEmptyPacket
	}
	if len(packet) > frame.MaxPacketLen {
		return Transaction{}, fmt.Errorf("%w: %d bytes", ErrPacketTooLarge, len(packet))
	}
	key := func(id uint64) uint64 {
		if f.cfg.AdaptiveWidth {
			return WidthKey(bits, id)
		}
		return id
	}
	id := f.sel.NextWidth(bits)
	redraws := 0
	if uint64(1)<<uint(bits) > 1 {
		for key(id) == avoid {
			id = f.sel.NextWidth(bits)
			redraws++
		}
	}
	codec := f.codec
	codec.IDBits = bits
	tx, err := f.fragmentWithID(codec, id, packet)
	if err != nil {
		return Transaction{}, err
	}
	tx.Redraws = redraws
	return tx, nil
}

// fragmentWithID splits a validated packet under the given identifier,
// encoding with the given codec (the fragmenter's own, or a narrower-width
// variant built by FragmentWidth).
func (f *Fragmenter) fragmentWithID(codec frame.AFFCodec, id uint64, packet []byte) (Transaction, error) {
	var truth *frame.Truth
	if f.cfg.Instrument {
		truth = &frame.Truth{Node: f.node, Seq: f.seq}
		f.seq++
	}

	maxPayload := codec.MaxPayload(f.cfg.MTU)
	nData := (len(packet) + maxPayload - 1) / maxPayload
	tx := Transaction{
		ID:        id,
		Fragments: make([]Fragment, 0, nData+1),
		DataBits:  8 * len(packet),
		IDBits:    codec.IDBits,
		Truth:     truth,
	}

	introBytes, introBits, err := codec.EncodeIntro(frame.Intro{
		ID:       id,
		TotalLen: len(packet),
		Checksum: checksum.Sum(f.cfg.Checksum, packet),
		Truth:    truth,
	})
	if err != nil {
		return Transaction{}, fmt.Errorf("aff: encode intro: %w", err)
	}
	tx.Fragments = append(tx.Fragments, Fragment{Bytes: introBytes, Bits: introBits})

	for off := 0; off < len(packet); off += maxPayload {
		end := off + maxPayload
		if end > len(packet) {
			end = len(packet)
		}
		dataBytes, dataBits, err := codec.EncodeData(frame.Data{
			ID:      id,
			Offset:  off,
			Payload: packet[off:end],
			Truth:   truth,
		})
		if err != nil {
			return Transaction{}, fmt.Errorf("aff: encode data at %d: %w", off, err)
		}
		tx.Fragments = append(tx.Fragments, Fragment{Bytes: dataBytes, Bits: dataBits})
	}
	return tx, nil
}
