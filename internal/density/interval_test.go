package density

import (
	"math"
	"testing"
	"time"
)

func TestIntervalFreshReportsOne(t *testing.T) {
	e := NewInterval(0, 0, nil)
	if e.Estimate() != 1 {
		t.Errorf("Estimate() = %v, want 1", e.Estimate())
	}
	if e.Window() != 2 {
		t.Errorf("Window() = %d, want 2", e.Window())
	}
}

func TestIntervalSteadyConcurrency(t *testing.T) {
	// Five transactions continuously alive: time-averaged concurrency 5.
	c := &clock{}
	e := NewInterval(5*time.Second, time.Second, c.now)
	for step := 0; step < 1000; step++ {
		for id := uint64(0); id < 5; id++ {
			e.Observe(id)
		}
		c.t += 50 * time.Millisecond
	}
	got := e.Estimate()
	if math.Abs(got-5) > 0.3 {
		t.Errorf("Estimate() = %v, want ~5", got)
	}
	if w := e.Window(); w != 10 {
		t.Errorf("Window() = %d, want 10", w)
	}
}

func TestIntervalHalfDutyCycle(t *testing.T) {
	// One identifier alive half the time: time-averaged density ~0.5,
	// clamped to 1. Two identifiers alternating -> ~1.
	c := &clock{}
	e := NewInterval(10*time.Second, 100*time.Millisecond, c.now)
	for cycle := 0; cycle < 20; cycle++ {
		// 500ms active...
		for i := 0; i < 10; i++ {
			e.Observe(uint64(cycle)) // fresh id per burst
			c.t += 50 * time.Millisecond
		}
		// ...500ms silent.
		c.t += 500 * time.Millisecond
	}
	got := e.Estimate()
	if got > 1.2 {
		t.Errorf("Estimate() = %v for 50%% duty single stream, want ~<=1.2", got)
	}
}

// TestIntervalBeatsEMAOnBurstyTraffic is the motivation for the second
// estimator: fragment-sampled EMA overweights busy instants, while the
// time average matches the model's definition. Traffic: 4 concurrent
// transactions for 1s, then 4s of silence — true time-averaged T = 0.8
// (clamped to 1); the EMA, sampling only within bursts, reports ~4.
func TestIntervalBeatsEMAOnBurstyTraffic(t *testing.T) {
	c := &clock{}
	ema := New(time.Second, DefaultAlpha, c.now)
	ivl := NewInterval(20*time.Second, time.Second, c.now)
	id := uint64(0)
	for cycle := 0; cycle < 10; cycle++ {
		id += 4
		for step := 0; step < 20; step++ {
			for k := uint64(0); k < 4; k++ {
				ema.Observe(id + k)
				ivl.Observe(id + k)
			}
			c.t += 50 * time.Millisecond
		}
		c.t += 4 * time.Second
	}
	trueT := 1.0 // 0.8 clamped
	emaErr := math.Abs(ema.Estimate() - trueT)
	ivlErr := math.Abs(ivl.Estimate() - trueT)
	if ivlErr >= emaErr {
		t.Errorf("interval error %.3f should beat EMA error %.3f (ema=%.2f ivl=%.2f)",
			ivlErr, emaErr, ema.Estimate(), ivl.Estimate())
	}
	if ivl.Estimate() > 2.5 {
		t.Errorf("interval estimate %.2f far above true bursty density ~1", ivl.Estimate())
	}
}

func TestIntervalPrunesOldIntervals(t *testing.T) {
	c := &clock{}
	e := NewInterval(2*time.Second, 100*time.Millisecond, c.now)
	for i := 0; i < 100; i++ {
		e.Observe(uint64(i))
		c.t += 10 * time.Millisecond
	}
	c.t += time.Minute
	if got := e.Estimate(); got != 1 {
		t.Errorf("Estimate() = %v after long silence, want 1", got)
	}
	if len(e.closed) != 0 {
		t.Errorf("closed intervals not pruned: %d", len(e.closed))
	}
}

func TestIntervalContinuedFragmentsExtendInterval(t *testing.T) {
	c := &clock{}
	e := NewInterval(10*time.Second, time.Second, c.now)
	// One transaction spanning 3s of a 10s window: density 0.3 -> clamp 1.
	for i := 0; i < 30; i++ {
		e.Observe(42)
		c.t += 100 * time.Millisecond
	}
	c.t += 7 * time.Second
	if got := e.Estimate(); got != 1 {
		t.Errorf("Estimate() = %v, want clamp to 1", got)
	}
}

func TestTEstimatorInterface(t *testing.T) {
	var _ TEstimator = New(0, 0, nil)
	var _ TEstimator = NewInterval(0, 0, nil)
}
