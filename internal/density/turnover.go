package density

import "time"

// CompletionObserver is the optional second half of a density estimator:
// besides hearing fragments (TEstimator.Observe), it can be told that an
// identifier's transaction is known complete — its final fragment was
// observed — and discount the identifier immediately instead of holding it
// for a flat idle gap.
//
// The node layer wires the reassembler's final-fragment signal to any
// estimator implementing this interface; estimators that don't implement
// it keep the pure idle-gap semantics unchanged.
type CompletionObserver interface {
	ObserveComplete(id uint64)
}

// Policy names a density-estimation policy for A/B comparison in the
// experiment harness.
type Policy string

const (
	// PolicyIdleGap is the original fragment-sampled EMA: an identifier
	// counts as active until it has gone unheard for the idle gap.
	PolicyIdleGap Policy = "idle-gap"
	// PolicyTurnover is the turnover-aware EMA: an identifier whose final
	// fragment was observed is discounted immediately; the idle gap remains
	// only as the fallback for transactions whose ending was never heard.
	PolicyTurnover Policy = "turnover"
)

// NewPolicy constructs the estimator a policy names, with the shared
// constructor defaults. Unknown policies return nil; callers validate.
func NewPolicy(p Policy, idleGap time.Duration, alpha float64, now func() time.Duration) TEstimator {
	switch p {
	case PolicyIdleGap:
		return New(idleGap, alpha, now)
	case PolicyTurnover:
		return NewTurnover(idleGap, alpha, now)
	default:
		return nil
	}
}

// TurnoverEstimator is the turnover-aware variant of Estimator. The flat
// idle-gap rule over-estimates T by 2-4x under fast transaction turnover:
// every identifier lingers a full idle gap after its last fragment, so a
// node hears several *recent* identifiers per *live* neighbor. This
// estimator removes an identifier the moment its transaction is known
// complete (ObserveComplete, driven by the reassembler observing the
// fragment that covers the final byte of the announced length), keeping
// the idle gap only for transactions whose final fragment was lost.
type TurnoverEstimator struct {
	idleGap time.Duration
	alpha   float64
	now     func() time.Duration

	lastHeard map[uint64]time.Duration
	ema       float64
	seeded    bool

	completions int64
}

var (
	_ TEstimator         = (*TurnoverEstimator)(nil)
	_ CompletionObserver = (*TurnoverEstimator)(nil)
)

// NewTurnover returns a turnover-aware estimator reading virtual time from
// now. Non-positive idleGap or alpha outside (0, 1] select the defaults.
func NewTurnover(idleGap time.Duration, alpha float64, now func() time.Duration) *TurnoverEstimator {
	if idleGap <= 0 {
		idleGap = DefaultIdleGap
	}
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultAlpha
	}
	if now == nil {
		now = func() time.Duration { return 0 }
	}
	return &TurnoverEstimator{
		idleGap:   idleGap,
		alpha:     alpha,
		now:       now,
		lastHeard: make(map[uint64]time.Duration),
	}
}

// Observe records a fragment heard with the given transaction identifier.
func (e *TurnoverEstimator) Observe(id uint64) {
	t := e.now()
	e.prune(t)
	e.lastHeard[id] = t
	e.update()
}

// ObserveComplete records that id's transaction is known complete and
// discounts the identifier immediately. Completion of an identifier not
// currently active (already pruned, or never heard) is a no-op.
func (e *TurnoverEstimator) ObserveComplete(id uint64) {
	t := e.now()
	e.prune(t)
	if _, ok := e.lastHeard[id]; !ok {
		return
	}
	delete(e.lastHeard, id)
	e.completions++
	e.update()
}

// update folds the instantaneous active count into the EMA.
func (e *TurnoverEstimator) update() {
	active := float64(len(e.lastHeard))
	if !e.seeded {
		e.ema = active
		e.seeded = true
		return
	}
	e.ema = e.alpha*active + (1-e.alpha)*e.ema
}

// Active returns the instantaneous count of identifiers believed active:
// heard within the idle gap and not known complete.
func (e *TurnoverEstimator) Active() int {
	e.prune(e.now())
	return len(e.lastHeard)
}

// Completions reports identifiers discounted by the completion signal —
// the observability counter distinguishing turnover discounting from
// idle-gap expiry.
func (e *TurnoverEstimator) Completions() int64 { return e.completions }

// Estimate returns the smoothed transaction density, never below 1.
func (e *TurnoverEstimator) Estimate() float64 {
	if !e.seeded || e.ema < 1 {
		return 1
	}
	return e.ema
}

// Window returns the paper's adaptive listening window, 2*ceil(T).
func (e *TurnoverEstimator) Window() int {
	t := e.Estimate()
	n := int(t)
	if float64(n) < t {
		n++
	}
	return 2 * n
}

func (e *TurnoverEstimator) prune(t time.Duration) {
	for id, last := range e.lastHeard {
		if t-last > e.idleGap {
			delete(e.lastHeard, id)
		}
	}
}
