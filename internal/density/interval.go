package density

import "time"

// TEstimator is the interface both estimators satisfy; the node layer and
// listening selectors depend on it rather than a concrete estimator.
//
// The paper's Section 8 lists "investigating more accurate ways of
// estimating the typical transaction density T" as future work; this
// repository ships two candidates (Estimator, IntervalEstimator) and an
// ablation comparing them.
type TEstimator interface {
	// Observe records a fragment heard with the given transaction
	// identifier.
	Observe(id uint64)
	// Estimate returns the current density estimate (>= 1).
	Estimate() float64
	// Window returns the adaptive listening window, 2*ceil(T).
	Window() int
}

var (
	_ TEstimator = (*Estimator)(nil)
	_ TEstimator = (*IntervalEstimator)(nil)
)

// DefaultWindow is the sliding window over which IntervalEstimator
// averages concurrency.
const DefaultWindow = 5 * time.Second

// IntervalEstimator estimates T as the *time-averaged* number of
// concurrent transactions over a sliding window — a closer match to the
// model's definition ("the average number of concurrent transactions
// visible at any single point", Section 4.1) than the sampled EMA of
// Estimator, and notably more faithful on bursty traffic where sampling
// at fragment arrivals oversamples the busy periods.
type IntervalEstimator struct {
	window  time.Duration
	idleGap time.Duration
	now     func() time.Duration

	// active transactions: first and last fragment times per identifier.
	active map[uint64]*interval
	// closed intervals within the window, oldest first.
	closed []interval
}

type interval struct {
	start, end time.Duration
}

// NewInterval returns a time-averaging estimator. Non-positive window or
// idleGap select defaults.
func NewInterval(window, idleGap time.Duration, now func() time.Duration) *IntervalEstimator {
	if window <= 0 {
		window = DefaultWindow
	}
	if idleGap <= 0 {
		idleGap = DefaultIdleGap
	}
	if now == nil {
		now = func() time.Duration { return 0 }
	}
	return &IntervalEstimator{
		window:  window,
		idleGap: idleGap,
		now:     now,
		active:  make(map[uint64]*interval),
	}
}

// Observe records a fragment heard for id.
func (e *IntervalEstimator) Observe(id uint64) {
	t := e.now()
	e.sweep(t)
	if iv, ok := e.active[id]; ok {
		iv.end = t
		return
	}
	e.active[id] = &interval{start: t, end: t}
}

// Estimate returns the time-averaged concurrency over the window, never
// below 1.
func (e *IntervalEstimator) Estimate() float64 {
	t := e.now()
	e.sweep(t)
	lo := t - e.window
	if lo < 0 {
		lo = 0
	}
	span := t - lo
	if span <= 0 {
		return 1
	}
	var busy time.Duration
	for _, iv := range e.closed {
		busy += overlap(iv, lo, t)
	}
	for _, iv := range e.active {
		// An active transaction is presumed live through the present.
		busy += overlap(interval{start: iv.start, end: t}, lo, t)
	}
	est := float64(busy) / float64(span)
	if est < 1 {
		return 1
	}
	return est
}

// Window returns the paper's adaptive 2T listening window.
func (e *IntervalEstimator) Window() int {
	t := e.Estimate()
	n := int(t)
	if float64(n) < t {
		n++
	}
	return 2 * n
}

// sweep closes idle transactions and prunes intervals beyond the window.
func (e *IntervalEstimator) sweep(t time.Duration) {
	for id, iv := range e.active {
		if t-iv.end > e.idleGap {
			delete(e.active, id)
			e.closed = append(e.closed, *iv)
		}
	}
	lo := t - e.window
	kept := e.closed[:0]
	for _, iv := range e.closed {
		if iv.end >= lo {
			kept = append(kept, iv)
		}
	}
	e.closed = kept
}

func overlap(iv interval, lo, hi time.Duration) time.Duration {
	s, e := iv.start, iv.end
	if s < lo {
		s = lo
	}
	if e > hi {
		e = hi
	}
	if e <= s {
		return 0
	}
	return e - s
}
