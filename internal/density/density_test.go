package density

import (
	"math"
	"testing"
	"time"
)

type clock struct{ t time.Duration }

func (c *clock) now() time.Duration { return c.t }

func TestFreshEstimatorReportsOne(t *testing.T) {
	e := New(0, 0, nil)
	if got := e.Estimate(); got != 1 {
		t.Errorf("Estimate() = %v, want 1 before any observation", got)
	}
	if got := e.Window(); got != 2 {
		t.Errorf("Window() = %d, want 2", got)
	}
	if got := e.Active(); got != 0 {
		t.Errorf("Active() = %d, want 0", got)
	}
}

func TestActiveCountsDistinctIDs(t *testing.T) {
	c := &clock{}
	e := New(time.Second, 1, c.now)
	e.Observe(1)
	e.Observe(2)
	e.Observe(2)
	e.Observe(3)
	if got := e.Active(); got != 3 {
		t.Errorf("Active() = %d, want 3", got)
	}
}

func TestIdleGapExpiresTransactions(t *testing.T) {
	c := &clock{}
	e := New(time.Second, 1, c.now)
	e.Observe(1)
	c.t = 500 * time.Millisecond
	e.Observe(2)
	if got := e.Active(); got != 2 {
		t.Fatalf("Active() = %d, want 2", got)
	}
	c.t = 1600 * time.Millisecond // id 1 idle 1.6s, id 2 idle 1.1s
	if got := e.Active(); got != 0 {
		t.Errorf("Active() = %d, want 0 after idle gap", got)
	}
	// Re-observation revives the identifier.
	e.Observe(2)
	if got := e.Active(); got != 1 {
		t.Errorf("Active() = %d, want 1", got)
	}
}

func TestContinuedFragmentsKeepTransactionAlive(t *testing.T) {
	c := &clock{}
	e := New(time.Second, 1, c.now)
	for i := 0; i < 10; i++ {
		e.Observe(7)
		c.t += 900 * time.Millisecond // always within the gap
	}
	if got := e.Active(); got != 1 {
		t.Errorf("Active() = %d, want 1 for a long-lived transaction", got)
	}
}

func TestEstimateConvergesToSteadyDensity(t *testing.T) {
	// Five senders interleaving fragments forever: the estimate should
	// settle near 5 (the paper's testbed density).
	c := &clock{}
	e := New(time.Second, DefaultAlpha, c.now)
	for round := 0; round < 200; round++ {
		for id := uint64(0); id < 5; id++ {
			e.Observe(id)
			c.t += 10 * time.Millisecond
		}
	}
	got := e.Estimate()
	if math.Abs(got-5) > 0.5 {
		t.Errorf("Estimate() = %v, want ~5", got)
	}
	if w := e.Window(); w != 10 {
		t.Errorf("Window() = %d, want 10 (2T)", w)
	}
}

func TestEstimateNeverBelowOne(t *testing.T) {
	c := &clock{}
	e := New(time.Second, 1, c.now)
	e.Observe(1)
	c.t = time.Hour
	if got := e.Estimate(); got < 1 {
		t.Errorf("Estimate() = %v, want >= 1", got)
	}
}

func TestWindowRoundsUp(t *testing.T) {
	// Force a fractional EMA: seed at 2 then observe density 1.
	c := &clock{}
	e := New(time.Second, 0.5, c.now)
	e.Observe(1)
	e.Observe(2) // ema seeded at 1, then 0.5*2+0.5*1 = 1.5
	if got := e.Estimate(); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("Estimate() = %v, want 1.5", got)
	}
	if got := e.Window(); got != 4 {
		t.Errorf("Window() = %d, want 4 (2*ceil(1.5))", got)
	}
}

func TestDefaultsApplied(t *testing.T) {
	e := New(-1, 5, nil)
	if e.idleGap != DefaultIdleGap {
		t.Errorf("idleGap = %v, want default", e.idleGap)
	}
	if e.alpha != DefaultAlpha {
		t.Errorf("alpha = %v, want default", e.alpha)
	}
}
