package density

import (
	"time"

	"retri/internal/metrics"
)

// SnapshotInto publishes the estimator's current state as gauges on reg
// under the given label (the harness's k=v convention, e.g. "node=0").
// Values derive only from the estimator's deterministic state and the
// virtual clock, and the registry snapshots in sorted key order, so the
// published numbers are byte-stable across runs and parallelism levels.
func (e *Estimator) SnapshotInto(reg *metrics.Registry, label string) {
	reg.Gauge("density_estimate", label).Set(e.Estimate())
	reg.Gauge("density_active", label).Set(float64(e.Active()))
	reg.Gauge("density_window", label).Set(float64(e.Window()))
}

// SnapshotInto publishes the interval estimator's state; see
// Estimator.SnapshotInto.
func (e *IntervalEstimator) SnapshotInto(reg *metrics.Registry, label string) {
	reg.Gauge("density_estimate", label).Set(e.Estimate())
	reg.Gauge("density_active", label).Set(float64(len(e.active)))
	reg.Gauge("density_window", label).Set(float64(e.Window()))
}

// SnapshotInto publishes the turnover estimator's state plus its
// completion-discount counter; see Estimator.SnapshotInto.
func (e *TurnoverEstimator) SnapshotInto(reg *metrics.Registry, label string) {
	reg.Gauge("density_estimate", label).Set(e.Estimate())
	reg.Gauge("density_active", label).Set(float64(e.Active()))
	reg.Gauge("density_window", label).Set(float64(e.Window()))
	reg.Counter("density_completions_total", label).Add(e.completions)
}

// Snapshotter is satisfied by every estimator in this package; harnesses
// hold a TEstimator and publish through this interface without knowing the
// concrete policy.
type Snapshotter interface {
	SnapshotInto(reg *metrics.Registry, label string)
}

var (
	_ Snapshotter = (*Estimator)(nil)
	_ Snapshotter = (*IntervalEstimator)(nil)
	_ Snapshotter = (*TurnoverEstimator)(nil)
)

// Reset wipes all learned state, modelling a node crash: a restarted node
// relearns the channel from nothing. The estimate returns to its floor of
// 1 until fresh observations arrive. node.AFFDriver.Crash calls this
// through an interface assertion, so estimators now genuinely survive the
// crash/restart cycle instead of carrying pre-crash state across it.
func (e *Estimator) Reset() {
	e.lastHeard = make(map[uint64]time.Duration)
	e.ema = 0
	e.seeded = false
}

// Reset wipes all learned state; see Estimator.Reset.
func (e *IntervalEstimator) Reset() {
	e.active = make(map[uint64]*interval)
	e.closed = nil
}

// Reset wipes all learned state; see Estimator.Reset. The completion
// counter belongs to the measurement harness and survives.
func (e *TurnoverEstimator) Reset() {
	e.lastHeard = make(map[uint64]time.Duration)
	e.ema = 0
	e.seeded = false
}
