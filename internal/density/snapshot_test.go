package density

import (
	"reflect"
	"testing"
	"time"

	"retri/internal/metrics"
)

// TestResetWipesLearnedState is the crash/restart regression: before
// Reset existed, node.AFFDriver.Crash's interface assertion silently
// matched nothing and a "rebooted" node kept its pre-crash density — on
// dynamic topologies that stale estimate steers the adaptive width wrong
// for a full relearning period.
func TestResetWipesLearnedState(t *testing.T) {
	c := &clock{}
	e := New(time.Second, 1, c.now)
	for id := uint64(0); id < 8; id++ {
		e.Observe(id)
	}
	if e.Estimate() < 2 {
		t.Fatalf("setup: estimate %v should reflect 8 concurrent ids", e.Estimate())
	}
	e.Reset()
	if got := e.Estimate(); got != 1 {
		t.Errorf("Estimate() after Reset = %v, want the fresh floor 1", got)
	}
	if got := e.Active(); got != 0 {
		t.Errorf("Active() after Reset = %d, want 0", got)
	}
	// A reset estimator must relearn exactly like a fresh one: the first
	// observation seeds the EMA rather than averaging into stale state.
	e.Observe(42)
	fresh := New(time.Second, 1, c.now)
	fresh.Observe(42)
	if e.Estimate() != fresh.Estimate() {
		t.Errorf("post-reset estimate %v differs from fresh estimator %v", e.Estimate(), fresh.Estimate())
	}
}

func TestIntervalResetWipesLearnedState(t *testing.T) {
	c := &clock{}
	e := NewInterval(10*time.Second, time.Second, c.now)
	for id := uint64(0); id < 6; id++ {
		e.Observe(id)
	}
	c.t = 500 * time.Millisecond
	for id := uint64(0); id < 6; id++ {
		e.Observe(id)
	}
	if e.Estimate() < 2 {
		t.Fatalf("setup: estimate %v should reflect 6 concurrent ids", e.Estimate())
	}
	e.Reset()
	if got := e.Estimate(); got != 1 {
		t.Errorf("Estimate() after Reset = %v, want 1", got)
	}
}

// TestSnapshotIntoDeterministic: publishing the same estimator state into
// two registries yields identical snapshots — the property the metrics
// merge discipline needs for byte-identical parallel runs.
func TestSnapshotIntoDeterministic(t *testing.T) {
	c := &clock{}
	e := New(time.Second, 0, c.now)
	for id := uint64(0); id < 5; id++ {
		e.Observe(id)
		c.t += 10 * time.Millisecond
	}
	a, b := metrics.NewRegistry(), metrics.NewRegistry()
	e.SnapshotInto(a, "node=3")
	e.SnapshotInto(b, "node=3")
	if !reflect.DeepEqual(a.Snapshot(), b.Snapshot()) {
		t.Error("snapshots of identical state differ")
	}
	sn := a.Snapshot()
	if len(sn.Gauges) != 3 {
		t.Fatalf("published %d gauges, want 3", len(sn.Gauges))
	}
	byName := map[string]float64{}
	for _, g := range sn.Gauges {
		if g.Label != "node=3" {
			t.Errorf("gauge %q label = %q, want node=3", g.Name, g.Label)
		}
		byName[g.Name] = g.Value
	}
	if byName["density_active"] != float64(e.Active()) {
		t.Errorf("density_active = %v, want %v", byName["density_active"], e.Active())
	}
	if byName["density_estimate"] != e.Estimate() {
		t.Errorf("density_estimate = %v, want %v", byName["density_estimate"], e.Estimate())
	}
	if byName["density_window"] != float64(e.Window()) {
		t.Errorf("density_window = %v, want %v", byName["density_window"], e.Window())
	}
}

func TestIntervalSnapshotInto(t *testing.T) {
	c := &clock{}
	e := NewInterval(0, 0, c.now)
	e.Observe(7)
	c.t = 50 * time.Millisecond
	e.Observe(7)
	reg := metrics.NewRegistry()
	e.SnapshotInto(reg, "")
	sn := reg.Snapshot()
	if len(sn.Gauges) != 3 {
		t.Fatalf("published %d gauges, want 3", len(sn.Gauges))
	}
}
