package density

import (
	"testing"
	"time"

	"retri/internal/metrics"
)

func TestTurnoverDiscountsCompletedImmediately(t *testing.T) {
	var now time.Duration
	e := NewTurnover(100*time.Millisecond, 1, func() time.Duration { return now })

	e.Observe(1)
	e.Observe(2)
	if got := e.Active(); got != 2 {
		t.Fatalf("active = %d, want 2", got)
	}
	e.ObserveComplete(1)
	if got := e.Active(); got != 1 {
		t.Errorf("active after completion = %d, want 1", got)
	}
	if got := e.Completions(); got != 1 {
		t.Errorf("completions = %d, want 1", got)
	}
	// The flat estimator would have held id 1 for the whole idle gap.
	now = 50 * time.Millisecond
	if got := e.Active(); got != 1 {
		t.Errorf("active at 50ms = %d, want 1 (id 2 only)", got)
	}
}

// TestTurnoverFastTurnoverTracksTruth is the bias scenario from ROADMAP:
// one neighbor streams back-to-back transactions of 20ms each. The flat
// idle-gap estimator holds ~6 identifiers active (20ms airtime + 100ms
// linger); the turnover-aware one holds ~1, the true concurrency.
func TestTurnoverFastTurnoverTracksTruth(t *testing.T) {
	var now time.Duration
	clock := func() time.Duration { return now }
	flat := New(0, 0, clock)
	aware := NewTurnover(0, 0, clock)

	id := uint64(0)
	for now = 0; now < 2*time.Second; now += 20 * time.Millisecond {
		id++
		flat.Observe(id)
		aware.Observe(id)
		// final fragment of the same transaction 10ms later
		now += 10 * time.Millisecond
		flat.Observe(id)
		aware.Observe(id)
		aware.ObserveComplete(id)
		now -= 10 * time.Millisecond
	}
	if flatEst := flat.Estimate(); flatEst < 3 {
		t.Errorf("flat estimator = %.2f, expected the idle-gap inflation (>= 3)", flatEst)
	}
	if got := aware.Estimate(); got > 1.5 {
		t.Errorf("turnover estimator = %.2f, want ~1 (true concurrency)", got)
	}
}

// TestTurnoverIdleGapFallback: an identifier whose completion is never
// observed (final fragment lost) still expires after the idle gap.
func TestTurnoverIdleGapFallback(t *testing.T) {
	var now time.Duration
	e := NewTurnover(100*time.Millisecond, 1, func() time.Duration { return now })
	e.Observe(7)
	now = 99 * time.Millisecond
	if got := e.Active(); got != 1 {
		t.Fatalf("active inside gap = %d, want 1", got)
	}
	now = 101 * time.Millisecond
	if got := e.Active(); got != 0 {
		t.Errorf("active past gap = %d, want 0", got)
	}
	// Completing an already-expired identifier is a no-op.
	e.ObserveComplete(7)
	if got := e.Completions(); got != 0 {
		t.Errorf("completions after stale complete = %d, want 0", got)
	}
}

func TestTurnoverCompleteUnknownIsNoOp(t *testing.T) {
	e := NewTurnover(0, 0, nil)
	e.ObserveComplete(42)
	if got := e.Estimate(); got != 1 {
		t.Errorf("estimate after stray completion = %v, want floor 1", got)
	}
	if e.Completions() != 0 {
		t.Errorf("stray completion counted")
	}
}

func TestTurnoverEstimateFloorAndWindow(t *testing.T) {
	e := NewTurnover(0, 0, nil)
	if got := e.Estimate(); got != 1 {
		t.Errorf("unseeded estimate = %v, want 1", got)
	}
	if got := e.Window(); got != 2 {
		t.Errorf("unseeded window = %d, want 2", got)
	}
	e.Observe(1)
	e.Observe(2)
	e.Observe(3)
	if got, want := e.Window(), 2*3; got < 2 || got > want {
		t.Errorf("window = %d, want in [2, %d]", got, want)
	}
}

func TestTurnoverResetWipesStateKeepsCompletions(t *testing.T) {
	e := NewTurnover(0, 0, nil)
	e.Observe(1)
	e.Observe(2)
	e.ObserveComplete(1)
	e.Reset()
	if got := e.Active(); got != 0 {
		t.Errorf("active after reset = %d, want 0", got)
	}
	if got := e.Estimate(); got != 1 {
		t.Errorf("estimate after reset = %v, want floor 1", got)
	}
	if got := e.Completions(); got != 1 {
		t.Errorf("completions after reset = %d, want 1 (harness counter survives)", got)
	}
}

func TestNewPolicy(t *testing.T) {
	if _, ok := NewPolicy(PolicyIdleGap, 0, 0, nil).(*Estimator); !ok {
		t.Errorf("PolicyIdleGap did not build *Estimator")
	}
	if _, ok := NewPolicy(PolicyTurnover, 0, 0, nil).(*TurnoverEstimator); !ok {
		t.Errorf("PolicyTurnover did not build *TurnoverEstimator")
	}
	if got := NewPolicy("psychic", 0, 0, nil); got != nil {
		t.Errorf("unknown policy built %T", got)
	}
}

func TestTurnoverSnapshotInto(t *testing.T) {
	e := NewTurnover(0, 0, nil)
	e.Observe(1)
	e.Observe(2)
	e.ObserveComplete(2)
	reg := metrics.NewRegistry()
	e.SnapshotInto(reg, "node=1")
	if got := reg.Gauge("density_active", "node=1").Value(); got != 1 {
		t.Errorf("density_active = %v, want 1", got)
	}
	if got := reg.Counter("density_completions_total", "node=1").Value(); got != 1 {
		t.Errorf("density_completions_total = %v, want 1", got)
	}
}
