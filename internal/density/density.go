// Package density estimates the transaction density T — "the average
// number of concurrent transactions visible at any single point in the
// network" (Section 4.1).
//
// T drives everything in the paper: Equation 4's collision probability, the
// optimal identifier size, and the listening heuristic's window ("we
// adaptively define 'recently' as within the most recent 2T transactions;
// each node can estimate T based on the number of concurrent transactions
// it observes", Section 5.1).
//
// A node cannot see transaction boundaries directly; it hears fragments.
// The estimator treats an identifier as belonging to an active transaction
// while fragments carrying it keep arriving within an idle gap, and smooths
// the instantaneous count of active identifiers with an exponential moving
// average.
package density

import "time"

// DefaultIdleGap is how long an identifier may go unheard before its
// transaction is presumed over. It should be a few frame airtimes; 100ms
// comfortably covers back-to-back 27-byte frames at tens of kbit/s.
const DefaultIdleGap = 100 * time.Millisecond

// DefaultAlpha is the EMA smoothing weight given to each new observation.
const DefaultAlpha = 0.1

// Estimator tracks concurrent transactions from an observed fragment
// stream.
type Estimator struct {
	idleGap time.Duration
	alpha   float64
	now     func() time.Duration

	lastHeard map[uint64]time.Duration
	ema       float64
	seeded    bool
}

// New returns an estimator reading virtual time from now. Non-positive
// idleGap or alpha outside (0, 1] select the defaults.
func New(idleGap time.Duration, alpha float64, now func() time.Duration) *Estimator {
	if idleGap <= 0 {
		idleGap = DefaultIdleGap
	}
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultAlpha
	}
	if now == nil {
		now = func() time.Duration { return 0 }
	}
	return &Estimator{
		idleGap:   idleGap,
		alpha:     alpha,
		now:       now,
		lastHeard: make(map[uint64]time.Duration),
	}
}

// Observe records a fragment heard with the given transaction identifier.
func (e *Estimator) Observe(id uint64) {
	t := e.now()
	e.prune(t)
	e.lastHeard[id] = t
	active := float64(len(e.lastHeard))
	if !e.seeded {
		e.ema = active
		e.seeded = true
		return
	}
	e.ema = e.alpha*active + (1-e.alpha)*e.ema
}

// Active returns the instantaneous count of identifiers heard within the
// idle gap.
func (e *Estimator) Active() int {
	e.prune(e.now())
	return len(e.lastHeard)
}

// Estimate returns the smoothed transaction density, never below 1 (a node
// estimating T always counts at least its own transaction).
func (e *Estimator) Estimate() float64 {
	if !e.seeded || e.ema < 1 {
		return 1
	}
	return e.ema
}

// Window returns the paper's adaptive listening window: the most recent 2T
// transactions, with T rounded up.
func (e *Estimator) Window() int {
	t := e.Estimate()
	n := int(t)
	if float64(n) < t {
		n++
	}
	return 2 * n
}

func (e *Estimator) prune(t time.Duration) {
	for id, last := range e.lastHeard {
		if t-last > e.idleGap {
			delete(e.lastHeard, id)
		}
	}
}
