// Package runner fans independent experiment trials out across a bounded
// worker pool and merges their results by trial index.
//
// Every trial in the experiment harness is a self-contained deterministic
// simulation: it owns its own sim.Engine and draws from its own xrand
// stream, sharing nothing with its siblings. That independence makes
// trial-level replication parallelism safe, but only if aggregation stays
// order-stable — Welford accumulators fold floating-point samples, so the
// fold order is part of the output. Map therefore returns results indexed
// by trial, and callers fold them in index order; the aggregate output of
// a parallel run is byte-identical to the sequential run.
//
// A panicking trial fails that trial with the panic value and stack
// attached, not the whole process: the pool finishes the remaining trials
// and reports the lowest-indexed failure, which is the same error the
// sequential loop would have surfaced first.
package runner

import (
	"fmt"
	"runtime/debug"
	"sync"
	"time"
)

// Options tunes a Map call.
type Options struct {
	// Parallelism is the number of trials in flight at once. Values of 0
	// or 1 run trials sequentially on the calling goroutine — the default
	// for every experiment config, so existing single-threaded behaviour
	// is untouched unless a caller opts in.
	Parallelism int
	// OnProgress, when non-nil, is invoked after each trial completes with
	// the number of completed trials and the total. Calls are serialized
	// and completed is strictly increasing, but under parallelism they may
	// arrive on worker goroutines.
	OnProgress func(completed, total int)
	// OnTrialTime, when non-nil, is invoked after each trial completes
	// with its index and wall-clock duration (including failed trials).
	// Like OnProgress, calls are serialized but may arrive on worker
	// goroutines in completion order, not trial order. The clock is only
	// read when the hook is set, so a nil hook costs nothing.
	OnTrialTime func(trial int, elapsed time.Duration)
}

// TrialError attaches the failing trial's index to its error.
type TrialError struct {
	Trial int
	Err   error
}

func (e *TrialError) Error() string {
	return fmt.Sprintf("trial %d: %v", e.Trial, e.Err)
}

func (e *TrialError) Unwrap() error { return e.Err }

// PanicError is the error a recovered trial panic becomes.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v\n%s", e.Value, e.Stack)
}

// Map runs fn for every trial index in [0, n) and returns the results in
// index order. With Options.Parallelism > 1 trials run concurrently on a
// bounded pool; fn must therefore not share mutable state between trials
// (the one-engine-per-goroutine rule, DESIGN.md "Parallelism").
//
// On failure Map returns the error of the lowest-indexed failing trial,
// wrapped in *TrialError, regardless of completion order — the same error
// a sequential loop surfaces. A panic inside fn fails only that trial,
// with the panic value and stack preserved as a *PanicError.
func Map[T any](n int, opts Options, fn func(trial int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	workers := opts.Parallelism
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			v, elapsed, err := runTimedTrial(i, opts, fn)
			if err != nil {
				return nil, err
			}
			results[i] = v
			if opts.OnTrialTime != nil {
				opts.OnTrialTime(i, elapsed)
			}
			if opts.OnProgress != nil {
				opts.OnProgress(i+1, n)
			}
		}
		return results, nil
	}

	var (
		mu       sync.Mutex
		done     int
		firstErr *TrialError
	)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				v, elapsed, err := runTimedTrial(i, opts, fn)
				mu.Lock()
				if err == nil {
					results[i] = v
				} else if te := err.(*TrialError); firstErr == nil || te.Trial < firstErr.Trial {
					firstErr = te
				}
				done++
				if opts.OnTrialTime != nil {
					opts.OnTrialTime(i, elapsed)
				}
				if opts.OnProgress != nil {
					opts.OnProgress(done, n)
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// runTimedTrial wraps runTrial with wall-clock measurement, reading the
// clock only when an OnTrialTime hook will consume it.
func runTimedTrial[T any](i int, opts Options, fn func(int) (T, error)) (T, time.Duration, error) {
	if opts.OnTrialTime == nil {
		v, err := runTrial(i, fn)
		return v, 0, err
	}
	start := time.Now()
	v, err := runTrial(i, fn)
	return v, time.Since(start), err
}

// runTrial invokes fn for one trial, converting panics and errors into
// *TrialError.
func runTrial[T any](i int, fn func(int) (T, error)) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &TrialError{Trial: i, Err: &PanicError{Value: r, Stack: debug.Stack()}}
		}
	}()
	v, err = fn(i)
	if err != nil {
		err = &TrialError{Trial: i, Err: err}
	}
	return v, err
}
