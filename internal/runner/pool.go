package runner

import (
	"fmt"
	"runtime/debug"
	"sync"
)

// Pool is a persistent bounded worker pool for barrier-style fan-out: Each
// partitions an index range across long-lived workers and returns only when
// every index has been processed. It exists for callers that fan out the
// same shape of work thousands of times (the sharded engine runs two Each
// calls per lookahead window), where spawning goroutines per call — what
// Map does, correctly, for trial-granularity work — would dominate the
// work itself.
//
// Determinism contract: Each imposes no ordering between indices, so fn
// must write only state owned by its index (the one-engine-per-goroutine
// rule, one level down: one-tile-per-index). Under that rule the result of
// an Each round is independent of the worker count, including the
// workers<=1 inline path.
type Pool struct {
	workers int

	mu   sync.Mutex
	jobs chan poolJob
	wg   sync.WaitGroup

	// round state, guarded by the round WaitGroup inside Each.
	panicOnce sync.Once
	panicked  *PanicError
}

type poolJob struct {
	fn    func(int)
	index int
	done  *sync.WaitGroup
}

// NewPool starts a pool of the given size. Sizes <= 1 run everything inline
// on the calling goroutine (no workers are started). Close releases the
// workers; a Pool must not be used after Close.
func NewPool(workers int) *Pool {
	p := &Pool{workers: workers}
	if workers <= 1 {
		return p
	}
	p.jobs = make(chan poolJob)
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for j := range p.jobs {
				p.run(j)
			}
		}()
	}
	return p
}

// Workers reports the pool's concurrency (1 for the inline pool).
func (p *Pool) Workers() int {
	if p.workers <= 1 {
		return 1
	}
	return p.workers
}

// run executes one job, converting a panic into the round's recorded
// failure so the barrier in Each can re-raise it on the caller.
func (p *Pool) run(j poolJob) {
	defer j.done.Done()
	defer func() {
		if r := recover(); r != nil {
			p.panicOnce.Do(func() {
				p.panicked = &PanicError{Value: r, Stack: debug.Stack()}
			})
		}
	}()
	j.fn(j.index)
}

// Each runs fn(i) for every i in [0, n) and returns when all calls have
// finished. Calls may run concurrently on the pool's workers; fn must not
// share mutable state between indices. A panic inside fn is captured and
// re-raised on the calling goroutine after the barrier, so a failing tile
// fails the trial (and is caught by Map's per-trial recovery) instead of
// killing the process from a worker goroutine.
//
// Each is not reentrant: one Each round at a time per Pool.
func (p *Pool) Each(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if p.jobs == nil {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.panicOnce = sync.Once{}
	p.panicked = nil
	var done sync.WaitGroup
	done.Add(n)
	for i := 0; i < n; i++ {
		p.jobs <- poolJob{fn: fn, index: i, done: &done}
	}
	done.Wait()
	if p.panicked != nil {
		panic(fmt.Errorf("runner: pool worker: %w", p.panicked))
	}
}

// Close shuts the workers down. Safe to call on an inline pool; must not
// race with an in-flight Each.
func (p *Pool) Close() {
	if p.jobs == nil {
		return
	}
	close(p.jobs)
	p.wg.Wait()
	p.jobs = nil
}
