package runner

import (
	"strings"
	"sync/atomic"
	"testing"
)

// TestPoolEachCoversEveryIndex: every index in [0, n) must be processed
// exactly once, at any worker count including the inline path.
func TestPoolEachCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7} {
		p := NewPool(workers)
		const n = 100
		var hits [n]int32
		p.Each(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Errorf("workers=%d: index %d processed %d times, want 1", workers, i, h)
			}
		}
		p.Close()
	}
}

// TestPoolEachIsABarrier: results written by one Each round must be visible
// to the caller after it returns, round after round on the same pool.
func TestPoolEachIsABarrier(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	vals := make([]int, 32)
	for round := 1; round <= 5; round++ {
		round := round
		p.Each(len(vals), func(i int) { vals[i] = round * (i + 1) })
		for i, v := range vals {
			if v != round*(i+1) {
				t.Fatalf("round %d: vals[%d] = %d, want %d", round, i, v, round*(i+1))
			}
		}
	}
}

// TestPoolEachPanicPropagates: a panic on a worker must surface on the
// calling goroutine with the original value and stack preserved, and the
// pool must remain usable afterwards.
func TestPoolEachPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := NewPool(workers)
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
				if !strings.Contains(panicMsg(r), "tile 3 exploded") {
					t.Errorf("workers=%d: recovered %v, want the original panic value", workers, r)
				}
			}()
			p.Each(8, func(i int) {
				if i == 3 {
					panic("tile 3 exploded")
				}
			})
		}()
		// The pool survives the failed round.
		var n int32
		p.Each(4, func(int) { atomic.AddInt32(&n, 1) })
		if n != 4 {
			t.Errorf("workers=%d: pool unusable after panic: %d/4 ran", workers, n)
		}
		p.Close()
	}
}

// panicMsg stringifies a recovered value for assertions.
func panicMsg(v any) string {
	if err, ok := v.(error); ok {
		return err.Error()
	}
	if s, ok := v.(string); ok {
		return s
	}
	return ""
}

// TestPoolZeroAndNegativeN are no-ops.
func TestPoolZeroAndNegativeN(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	p.Each(0, func(int) { t.Error("fn called for n=0") })
	p.Each(-3, func(int) { t.Error("fn called for n<0") })
}
