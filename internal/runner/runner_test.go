package runner

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapSequentialOrder(t *testing.T) {
	got, err := Map(5, Options{}, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Errorf("got[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapParallelMergesByIndex(t *testing.T) {
	const n = 64
	got, err := Map(n, Options{Parallelism: 8}, func(i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("len = %d, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Errorf("got[%d] = %d, want %d", i, v, i)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(0, Options{Parallelism: 4}, func(i int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Errorf("Map(0) = (%v, %v), want (nil, nil)", got, err)
	}
}

func TestMapBoundsWorkers(t *testing.T) {
	// More workers than trials must not deadlock or drop trials.
	got, err := Map(2, Options{Parallelism: 16}, func(i int) (int, error) { return i + 1, nil })
	if err != nil || len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Map = (%v, %v)", got, err)
	}
}

func TestMapConcurrencyCap(t *testing.T) {
	var inFlight, peak atomic.Int32
	var mu sync.Mutex
	_, err := Map(32, Options{Parallelism: 4}, func(i int) (int, error) {
		cur := inFlight.Add(1)
		mu.Lock()
		if cur > peak.Load() {
			peak.Store(cur)
		}
		mu.Unlock()
		inFlight.Add(-1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 4 {
		t.Errorf("observed %d trials in flight, cap is 4", p)
	}
}

func TestMapReturnsLowestIndexedError(t *testing.T) {
	for _, parallelism := range []int{1, 4} {
		_, err := Map(10, Options{Parallelism: parallelism}, func(i int) (int, error) {
			if i >= 3 {
				return 0, fmt.Errorf("boom %d", i)
			}
			return i, nil
		})
		var te *TrialError
		if !errors.As(err, &te) {
			t.Fatalf("parallelism %d: error %v is not a *TrialError", parallelism, err)
		}
		if te.Trial != 3 {
			t.Errorf("parallelism %d: failed trial %d, want lowest index 3", parallelism, te.Trial)
		}
	}
}

func TestMapCapturesPanic(t *testing.T) {
	for _, parallelism := range []int{1, 4} {
		var completed atomic.Int32
		_, err := Map(8, Options{Parallelism: parallelism}, func(i int) (int, error) {
			if i == 2 {
				panic("trial exploded")
			}
			completed.Add(1)
			return i, nil
		})
		var te *TrialError
		if !errors.As(err, &te) || te.Trial != 2 {
			t.Fatalf("parallelism %d: err = %v, want TrialError for trial 2", parallelism, err)
		}
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("parallelism %d: err = %v, want wrapped *PanicError", parallelism, err)
		}
		if fmt.Sprint(pe.Value) != "trial exploded" {
			t.Errorf("panic value = %v", pe.Value)
		}
		if len(pe.Stack) == 0 || !strings.Contains(err.Error(), "trial exploded") {
			t.Errorf("panic context lost: %v", err)
		}
		// The pool must survive the panic: under parallelism every other
		// trial still runs (the sequential path stops at the failure, as
		// the plain loop would).
		if parallelism > 1 && completed.Load() != 7 {
			t.Errorf("parallelism %d: %d trials completed, want 7", parallelism, completed.Load())
		}
	}
}

func TestMapProgress(t *testing.T) {
	for _, parallelism := range []int{1, 4} {
		var mu sync.Mutex
		var seen []int
		_, err := Map(10, Options{
			Parallelism: parallelism,
			OnProgress: func(completed, total int) {
				if total != 10 {
					t.Errorf("total = %d, want 10", total)
				}
				mu.Lock()
				seen = append(seen, completed)
				mu.Unlock()
			},
		}, func(i int) (int, error) { return i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if len(seen) != 10 {
			t.Fatalf("parallelism %d: %d progress calls, want 10", parallelism, len(seen))
		}
		for i, c := range seen {
			if c != i+1 {
				t.Fatalf("parallelism %d: progress sequence %v not strictly increasing", parallelism, seen)
			}
		}
	}
}

// TestMapTrialTime: the timing hook fires once per trial with every index,
// sequentially and in parallel, and non-negative durations.
func TestMapTrialTime(t *testing.T) {
	for _, parallelism := range []int{1, 4} {
		var mu sync.Mutex
		seen := make(map[int]time.Duration)
		_, err := Map(10, Options{
			Parallelism: parallelism,
			OnTrialTime: func(trial int, elapsed time.Duration) {
				mu.Lock()
				defer mu.Unlock()
				if _, dup := seen[trial]; dup {
					t.Errorf("parallelism %d: trial %d timed twice", parallelism, trial)
				}
				seen[trial] = elapsed
			},
		}, func(i int) (int, error) {
			time.Sleep(time.Millisecond)
			return i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(seen) != 10 {
			t.Fatalf("parallelism %d: timed %d trials, want 10", parallelism, len(seen))
		}
		for trial, d := range seen {
			if d < time.Millisecond {
				t.Errorf("parallelism %d: trial %d elapsed %v, want >= 1ms", parallelism, trial, d)
			}
		}
	}
}

// TestMapTrialTimeCoversFailures: failed trials are still timed, so a
// manifest accounts for all wall-clock spent.
func TestMapTrialTimeCoversFailures(t *testing.T) {
	var calls atomic.Int32
	_, err := Map(4, Options{
		Parallelism: 2,
		OnTrialTime: func(trial int, elapsed time.Duration) { calls.Add(1) },
	}, func(i int) (int, error) {
		if i == 1 {
			return 0, errors.New("boom")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected trial error")
	}
	if calls.Load() != 4 {
		t.Errorf("timed %d trials, want all 4 including the failure", calls.Load())
	}
}

func TestMapParallelMatchesSequential(t *testing.T) {
	fn := func(i int) (float64, error) { return float64(i) * 1.5, nil }
	seq, err := Map(100, Options{}, fn)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Map(100, Options{Parallelism: 7}, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("results diverge at %d: %v vs %v", i, seq[i], par[i])
		}
	}
}
