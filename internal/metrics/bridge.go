package metrics

import "retri/internal/trace"

// FrameBitsBuckets is the default on-air frame-size histogram: the paper's
// radio frames top out around 27 bytes of payload plus a few hundred bits
// of heavyweight framing.
var FrameBitsBuckets = []float64{32, 64, 96, 128, 192, 256, 384, 512}

// FromTrace returns a tracer that bridges radio trace events into r: one
// radio_events_total counter per event kind and a radio_frame_bits
// histogram of transmitted frame sizes. The counters are pre-registered so
// Record stays allocation-free inside simulation events; the returned
// tracer shares r's single-goroutine ownership.
func FromTrace(r *Registry) trace.Tracer {
	b := &bridge{bits: r.Histogram("radio_frame_bits", "", FrameBitsBuckets)}
	for k := trace.FrameSent; k <= trace.Custom; k++ {
		b.kinds[k] = r.Counter("radio_events_total", "kind="+k.String())
	}
	return b
}

type bridge struct {
	// kinds is indexed by trace.Kind (1-based; slot 0 unused).
	kinds [trace.Custom + 1]*Counter
	bits  *Histogram
}

var _ trace.Tracer = (*bridge)(nil)

func (b *bridge) Record(e trace.Event) {
	if e.Kind >= 1 && int(e.Kind) < len(b.kinds) {
		b.kinds[e.Kind].Inc()
	}
	if e.Kind == trace.FrameSent {
		b.bits.Observe(float64(e.Bits))
	}
}
