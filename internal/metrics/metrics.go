// Package metrics provides the lightweight metrics registry behind the
// experiment harness's observability layer: counters, gauges and
// fixed-bucket histograms, optionally labelled (per node, per selector,
// per identifier width), with deterministic snapshot ordering and a
// cross-registry merge.
//
// A Registry, like a sim.Engine, is owned by one goroutine — typically one
// simulation trial. Parallel trials each populate a private registry and
// the caller folds them with Merge in trial-index order, so a parallel
// run's merged snapshot is byte-identical to the sequential run's (the
// same ownership-then-merge discipline as the trial runner, DESIGN.md
// "Parallelism"). Instruments are cheap handles: fetch them once at setup,
// after which Inc/Add/Set/Observe are plain field updates with no locking
// and no allocation — free enough to live inside simulation events.
//
// Naming convention (DESIGN.md "Observability"): snake_case instrument
// names, counters suffixed _total, labels as comma-joined k=v pairs
// (e.g. "sel=uniform,bits=4").
package metrics

import (
	"fmt"
	"sort"
	"strconv"
)

// instKey identifies one instrument: a name plus an optional label ("" for
// unlabelled).
type instKey struct {
	name  string
	label string
}

// Node renders the conventional per-node label.
func Node(id int) string { return "node=" + strconv.Itoa(id) }

// Counter is a monotonically increasing integer.
type Counter struct {
	v int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n (negative n is a programming error and is ignored).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v += n
	}
}

// Value reports the current count.
func (c *Counter) Value() int64 { return c.v }

// Gauge is a point-in-time float64. Gauges merge by maximum (see
// Registry.Merge), which suits the high-water-mark readings they record
// here; quantities that must sum or average across trials belong in
// counters or histograms.
type Gauge struct {
	v   float64
	set bool
}

// Set records v unconditionally.
func (g *Gauge) Set(v float64) { g.v, g.set = v, true }

// SetMax records v only if it exceeds the current value (or none is set).
func (g *Gauge) SetMax(v float64) {
	if !g.set || v > g.v {
		g.Set(v)
	}
}

// Value reports the current reading (0 when never set).
func (g *Gauge) Value() float64 { return g.v }

// Histogram counts observations into fixed buckets. Bucket i counts
// observations v <= bounds[i] (and greater than bounds[i-1]); one overflow
// bucket beyond the last bound catches the rest. Fixed bounds keep
// Observe allocation-free and make cross-trial merges exact.
type Histogram struct {
	bounds []float64
	counts []int64
	count  int64
	sum    float64
}

// Observe folds one sample into the histogram.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.count++
	h.sum += v
}

// Count reports the total number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Sum reports the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Registry holds one trial's instruments. Not safe for concurrent use;
// see the package comment for the ownership-then-merge discipline.
type Registry struct {
	counters map[instKey]*Counter
	gauges   map[instKey]*Gauge
	hists    map[instKey]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[instKey]*Counter),
		gauges:   make(map[instKey]*Gauge),
		hists:    make(map[instKey]*Histogram),
	}
}

// Counter returns the counter registered under (name, label), creating it
// on first use.
func (r *Registry) Counter(name, label string) *Counter {
	k := instKey{name, label}
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns the gauge registered under (name, label), creating it on
// first use.
func (r *Registry) Gauge(name, label string) *Gauge {
	k := instKey{name, label}
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns the histogram registered under (name, label), creating
// it with the given bucket upper bounds on first use. Bounds must be
// sorted ascending and non-empty; re-registering the same instrument with
// different bounds is a programming error and panics.
func (r *Registry) Histogram(name, label string, bounds []float64) *Histogram {
	k := instKey{name, label}
	if h, ok := r.hists[k]; ok {
		if !equalBounds(h.bounds, bounds) {
			panic(fmt.Sprintf("metrics: histogram %q label %q re-registered with different bounds", name, label))
		}
		return h
	}
	if len(bounds) == 0 {
		panic(fmt.Sprintf("metrics: histogram %q needs at least one bucket bound", name))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram %q bounds not strictly ascending", name))
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]int64, len(bounds)+1),
	}
	r.hists[k] = h
	return h
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Merge folds another registry into this one: counters and histogram
// buckets add, gauges keep the maximum. All three operations are
// commutative and associative, so any fold order yields the same state —
// callers still fold in trial-index order by convention. Merging
// histograms with mismatched bounds is an error.
func (r *Registry) Merge(from *Registry) error {
	if from == nil {
		return nil
	}
	for k, c := range from.counters {
		r.Counter(k.name, k.label).Add(c.v)
	}
	for k, g := range from.gauges {
		if g.set {
			r.Gauge(k.name, k.label).SetMax(g.v)
		}
	}
	for k, h := range from.hists {
		dst, ok := r.hists[k]
		if !ok {
			dst = r.Histogram(k.name, k.label, h.bounds)
		} else if !equalBounds(dst.bounds, h.bounds) {
			return fmt.Errorf("metrics: merge histogram %q label %q: bucket bounds differ", k.name, k.label)
		}
		for i, n := range h.counts {
			dst.counts[i] += n
		}
		dst.count += h.count
		dst.sum += h.sum
	}
	return nil
}

// CounterSample is one counter in a snapshot.
type CounterSample struct {
	Name  string `json:"name"`
	Label string `json:"label,omitempty"`
	Value int64  `json:"value"`
}

// GaugeSample is one gauge in a snapshot.
type GaugeSample struct {
	Name  string  `json:"name"`
	Label string  `json:"label,omitempty"`
	Value float64 `json:"value"`
}

// HistogramSample is one histogram in a snapshot. Counts has one entry per
// bound plus a final overflow bucket.
type HistogramSample struct {
	Name   string    `json:"name"`
	Label  string    `json:"label,omitempty"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot is a frozen, JSON-serializable view of a registry with
// deterministic ordering: each section sorted by (name, label).
type Snapshot struct {
	Counters   []CounterSample   `json:"counters,omitempty"`
	Gauges     []GaugeSample     `json:"gauges,omitempty"`
	Histograms []HistogramSample `json:"histograms,omitempty"`
}

// Snapshot freezes the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	for _, k := range sortedKeys(r.counters) {
		s.Counters = append(s.Counters, CounterSample{Name: k.name, Label: k.label, Value: r.counters[k].v})
	}
	for _, k := range sortedKeys(r.gauges) {
		s.Gauges = append(s.Gauges, GaugeSample{Name: k.name, Label: k.label, Value: r.gauges[k].v})
	}
	for _, k := range sortedKeys(r.hists) {
		h := r.hists[k]
		s.Histograms = append(s.Histograms, HistogramSample{
			Name:   k.name,
			Label:  k.label,
			Bounds: append([]float64(nil), h.bounds...),
			Counts: append([]int64(nil), h.counts...),
			Count:  h.count,
			Sum:    h.sum,
		})
	}
	return s
}

func sortedKeys[V any](m map[instKey]V) []instKey {
	keys := make([]instKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].name != keys[j].name {
			return keys[i].name < keys[j].name
		}
		return keys[i].label < keys[j].label
	})
	return keys
}
