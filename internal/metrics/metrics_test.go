package metrics

import (
	"encoding/json"
	"reflect"
	"testing"

	"retri/internal/trace"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("frames_total", "")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if r.Counter("frames_total", "") != c {
		t.Error("re-fetching a counter returned a new handle")
	}
	if r.Counter("frames_total", "node=1") == c {
		t.Error("labelled counter aliases the unlabelled one")
	}

	g := r.Gauge("high_water", "")
	g.SetMax(3)
	g.SetMax(1)
	if g.Value() != 3 {
		t.Errorf("SetMax kept %v, want 3", g.Value())
	}
	g.Set(0.5)
	if g.Value() != 0.5 {
		t.Errorf("Set kept %v, want 0.5", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 5, 100} {
		h.Observe(v)
	}
	want := []int64{2, 2, 2, 2} // le1: {0.5,1}; le2: {1.5,2}; le4: {3,4}; +inf: {5,100}
	if !reflect.DeepEqual(h.counts, want) {
		t.Errorf("bucket counts = %v, want %v", h.counts, want)
	}
	if h.Count() != 8 || h.Sum() != 117 {
		t.Errorf("count/sum = %d/%v, want 8/117", h.Count(), h.Sum())
	}
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	r := NewRegistry()
	for name, bounds := range map[string][]float64{
		"empty":    {},
		"unsorted": {2, 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s bounds accepted", name)
				}
			}()
			r.Histogram(name, "", bounds)
		}()
	}
	r.Histogram("ok", "", []float64{1, 2})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("re-registration with different bounds accepted")
			}
		}()
		r.Histogram("ok", "", []float64{1, 3})
	}()
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	build := func(order []string) Snapshot {
		r := NewRegistry()
		for _, name := range order {
			r.Counter(name, "").Inc()
			r.Counter(name, "node=2").Inc()
			r.Counter(name, "node=1").Inc()
		}
		return r.Snapshot()
	}
	a := build([]string{"b", "a", "c"})
	b := build([]string{"c", "b", "a"})
	if !reflect.DeepEqual(a, b) {
		t.Errorf("snapshot order depends on registration order:\n%v\n%v", a, b)
	}
	if a.Counters[0].Name != "a" || a.Counters[0].Label != "" || a.Counters[1].Label != "node=1" {
		t.Errorf("snapshot not sorted by (name, label): %v", a.Counters)
	}
}

func TestSnapshotJSONRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Counter("frames_total", "node=1").Add(7)
	r.Gauge("high_water", "").Set(12)
	r.Histogram("joules", "", []float64{1, 2}).Observe(1.5)
	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, r.Snapshot()) {
		t.Errorf("JSON round trip lost data:\n%s", raw)
	}
}

// TestMergeOrderIndependent pins the guarantee the parallel harness leans
// on: counters sum, gauges take max, histogram buckets add, and the merged
// snapshot is identical no matter the fold order.
func TestMergeOrderIndependent(t *testing.T) {
	mk := func(c int64, g float64, obs float64) *Registry {
		r := NewRegistry()
		r.Counter("n_total", "").Add(c)
		r.Gauge("hw", "").Set(g)
		r.Histogram("h", "", []float64{1, 10}).Observe(obs)
		return r
	}
	parts := func() []*Registry {
		return []*Registry{mk(1, 5, 0.5), mk(2, 9, 3), mk(4, 7, 30)}
	}

	fold := func(order []int) Snapshot {
		dst := NewRegistry()
		p := parts()
		for _, i := range order {
			if err := dst.Merge(p[i]); err != nil {
				t.Fatal(err)
			}
		}
		return dst.Snapshot()
	}
	a, b := fold([]int{0, 1, 2}), fold([]int{2, 0, 1})
	if !reflect.DeepEqual(a, b) {
		t.Errorf("merge is fold-order dependent:\n%v\n%v", a, b)
	}
	if a.Counters[0].Value != 7 {
		t.Errorf("merged counter = %d, want 7", a.Counters[0].Value)
	}
	if a.Gauges[0].Value != 9 {
		t.Errorf("merged gauge = %v, want max 9", a.Gauges[0].Value)
	}
	if want := []int64{1, 1, 1}; !reflect.DeepEqual(a.Histograms[0].Counts, want) {
		t.Errorf("merged histogram counts = %v, want %v", a.Histograms[0].Counts, want)
	}
}

func TestMergeBoundsMismatch(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Histogram("h", "", []float64{1, 2}).Observe(1)
	b.Histogram("h", "", []float64{1, 3}).Observe(1)
	if err := a.Merge(b); err == nil {
		t.Error("merging mismatched histogram bounds succeeded")
	}
	if err := a.Merge(nil); err != nil {
		t.Errorf("merging nil registry: %v", err)
	}
}

func TestFromTraceBridgesKinds(t *testing.T) {
	r := NewRegistry()
	tr := FromTrace(r)
	tr.Record(trace.Event{Kind: trace.FrameSent, Bits: 100})
	tr.Record(trace.Event{Kind: trace.FrameSent, Bits: 300})
	tr.Record(trace.Event{Kind: trace.FrameDelivered, Bits: 100})
	tr.Record(trace.Event{Kind: trace.FrameCollided})

	if got := r.Counter("radio_events_total", "kind=sent").Value(); got != 2 {
		t.Errorf("sent = %d, want 2", got)
	}
	if got := r.Counter("radio_events_total", "kind=delivered").Value(); got != 1 {
		t.Errorf("delivered = %d, want 1", got)
	}
	if got := r.Counter("radio_events_total", "kind=collided").Value(); got != 1 {
		t.Errorf("collided = %d, want 1", got)
	}
	h := r.Histogram("radio_frame_bits", "", FrameBitsBuckets)
	if h.Count() != 2 || h.Sum() != 400 {
		t.Errorf("frame-bits histogram count/sum = %d/%v, want 2/400", h.Count(), h.Sum())
	}
}

func TestNodeLabel(t *testing.T) {
	if Node(7) != "node=7" {
		t.Errorf("Node(7) = %q", Node(7))
	}
}
