// Package workload generates application traffic for experiments.
//
// Three shapes cover the paper's scenarios:
//
//   - Continuous: "a continuous stream of random 80-byte packets"
//     (Section 5.1's transmitters) — the sender keeps its radio queue
//     topped up so the channel sees maximal sustained contention.
//   - Periodic: the sensor-network steady state the paper motivates —
//     "periodic messages consisting of only a few bits to describe the
//     current state" (Section 2.3).
//   - Poisson: memoryless arrivals, for ablations over non-uniform
//     transaction spacing.
package workload

import (
	"math/rand/v2"
	"time"

	"retri/internal/radio"
	"retri/internal/sim"
)

// Driver is the slice of the node stack a generator needs.
type Driver interface {
	SendPacket(p []byte) error
	Radio() *radio.Radio
}

// Stats reports what a generator produced.
type Stats struct {
	// PacketsOffered counts SendPacket calls that succeeded.
	PacketsOffered int64
	// SendErrors counts SendPacket calls that failed (radio down etc.).
	SendErrors int64
}

// payloadFiller writes a fresh random payload.
func fillRandom(p []byte, rng *rand.Rand) {
	for i := range p {
		p[i] = byte(rng.Uint64())
	}
}

// Continuous keeps a driver's transmit queue topped up with random
// packets until a deadline.
type Continuous struct {
	eng   *sim.Engine
	d     Driver
	rng   *rand.Rand
	sizes []int
	poll  time.Duration

	until   time.Duration
	stopped bool
	stats   Stats
}

// NewContinuous returns a continuous streamer of size-byte packets.
// poll is the queue check interval; non-positive selects one frame airtime
// at the paper's radio rate (~6 ms).
func NewContinuous(eng *sim.Engine, d Driver, size int, poll time.Duration, rng *rand.Rand) *Continuous {
	return NewContinuousMixed(eng, d, []int{size}, poll, rng)
}

// NewContinuousMixed is NewContinuous with each packet's size drawn
// uniformly from sizes — the non-uniform-transaction-length ablation the
// paper's Section 8 flags as future work.
func NewContinuousMixed(eng *sim.Engine, d Driver, sizes []int, poll time.Duration, rng *rand.Rand) *Continuous {
	if poll <= 0 {
		poll = 6 * time.Millisecond
	}
	if len(sizes) == 0 {
		sizes = []int{80}
	}
	return &Continuous{eng: eng, d: d, rng: rng, sizes: sizes, poll: poll}
}

// lowWater is the queue depth below which the streamer refills: deep enough
// that the radio never idles, shallow enough that queued traffic tracks the
// virtual clock.
const lowWater = 2

// Start begins streaming until the given absolute virtual time.
func (c *Continuous) Start(until time.Duration) {
	c.until = until
	c.stopped = false
	c.tick()
}

// Stop halts the stream at the next tick.
func (c *Continuous) Stop() { c.stopped = true }

// Stats returns the generator's counters.
func (c *Continuous) Stats() Stats { return c.stats }

func (c *Continuous) tick() {
	if c.stopped || c.eng.Now() >= c.until {
		return
	}
	if c.d.Radio().QueueLen() < lowWater {
		size := c.sizes[0]
		if len(c.sizes) > 1 {
			size = c.sizes[c.rng.IntN(len(c.sizes))]
		}
		p := make([]byte, size)
		fillRandom(p, c.rng)
		if err := c.d.SendPacket(p); err != nil {
			c.stats.SendErrors++
		} else {
			c.stats.PacketsOffered++
		}
	}
	c.eng.Schedule(c.poll, c.tick)
}

// Periodic sends one fixed-size random packet every interval, with optional
// uniform jitter in [0, jitter).
type Periodic struct {
	eng      *sim.Engine
	d        Driver
	rng      *rand.Rand
	size     int
	interval time.Duration
	jitter   time.Duration

	until   time.Duration
	stopped bool
	stats   Stats
}

// NewPeriodic returns a periodic sender.
func NewPeriodic(eng *sim.Engine, d Driver, size int, interval, jitter time.Duration, rng *rand.Rand) *Periodic {
	if interval <= 0 {
		interval = time.Second
	}
	return &Periodic{eng: eng, d: d, rng: rng, size: size, interval: interval, jitter: jitter}
}

// Start begins sending until the given absolute virtual time.
func (p *Periodic) Start(until time.Duration) {
	p.until = until
	p.stopped = false
	p.schedule()
}

// Stop halts the sender before its next emission.
func (p *Periodic) Stop() { p.stopped = true }

// Stats returns the generator's counters.
func (p *Periodic) Stats() Stats { return p.stats }

func (p *Periodic) schedule() {
	d := p.interval
	if p.jitter > 0 {
		d += time.Duration(p.rng.Int64N(int64(p.jitter)))
	}
	p.eng.Schedule(d, p.emit)
}

func (p *Periodic) emit() {
	if p.stopped || p.eng.Now() >= p.until {
		return
	}
	pkt := make([]byte, p.size)
	fillRandom(pkt, p.rng)
	if err := p.d.SendPacket(pkt); err != nil {
		p.stats.SendErrors++
	} else {
		p.stats.PacketsOffered++
	}
	p.schedule()
}

// Poisson sends fixed-size random packets with exponential inter-arrival
// times of the given mean.
type Poisson struct {
	eng  *sim.Engine
	d    Driver
	rng  *rand.Rand
	size int
	mean time.Duration

	until   time.Duration
	stopped bool
	stats   Stats
}

// NewPoisson returns a Poisson-arrival sender with the given mean
// inter-arrival time.
func NewPoisson(eng *sim.Engine, d Driver, size int, mean time.Duration, rng *rand.Rand) *Poisson {
	if mean <= 0 {
		mean = time.Second
	}
	return &Poisson{eng: eng, d: d, rng: rng, size: size, mean: mean}
}

// Start begins sending until the given absolute virtual time.
func (p *Poisson) Start(until time.Duration) {
	p.until = until
	p.stopped = false
	p.schedule()
}

// Stop halts the sender before its next emission.
func (p *Poisson) Stop() { p.stopped = true }

// Stats returns the generator's counters.
func (p *Poisson) Stats() Stats { return p.stats }

func (p *Poisson) schedule() {
	gap := time.Duration(p.rng.ExpFloat64() * float64(p.mean))
	p.eng.Schedule(gap, p.emit)
}

func (p *Poisson) emit() {
	if p.stopped || p.eng.Now() >= p.until {
		return
	}
	pkt := make([]byte, p.size)
	fillRandom(pkt, p.rng)
	if err := p.d.SendPacket(pkt); err != nil {
		p.stats.SendErrors++
	} else {
		p.stats.PacketsOffered++
	}
	p.schedule()
}
