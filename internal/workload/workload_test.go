package workload

import (
	"testing"
	"time"

	"retri/internal/aff"
	"retri/internal/core"
	"retri/internal/node"
	"retri/internal/radio"
	"retri/internal/sim"
	"retri/internal/xrand"
)

type rig struct {
	eng  *sim.Engine
	med  *radio.Medium
	tx   *node.AFFDriver
	rx   *node.AFFDriver
	recv int
}

func newRig(t *testing.T) *rig {
	t.Helper()
	eng := sim.NewEngine()
	src := xrand.NewSource(21)
	med := radio.NewMedium(eng, radio.FullMesh{}, radio.DefaultParams(), src.Stream("med", t.Name()))
	cfg := aff.Config{Space: core.MustSpace(16), MTU: 27}
	mk := func(id radio.NodeID) *node.AFFDriver {
		sel := core.NewUniformSelector(cfg.Space, src.Stream("sel", t.Name(), string(rune('0'+id))))
		d, err := node.NewAFF(med.MustAttach(id), cfg, sel, node.AFFOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	r := &rig{eng: eng, med: med, tx: mk(1), rx: mk(2)}
	r.rx.SetPacketHandler(func([]byte) { r.recv++ })
	return r
}

func TestContinuousSaturatesChannel(t *testing.T) {
	r := newRig(t)
	rng := xrand.NewSource(1).Stream("wl", t.Name())
	c := NewContinuous(r.eng, r.tx, 80, 0, rng)
	c.Start(10 * time.Second)
	r.eng.Run()

	st := c.Stats()
	if st.SendErrors != 0 {
		t.Errorf("SendErrors = %d", st.SendErrors)
	}
	// 80-byte packets = 5 frames * ~6ms airtime ≈ 32ms/packet; 10s of
	// continuous streaming must produce a few hundred packets.
	if st.PacketsOffered < 100 {
		t.Errorf("PacketsOffered = %d, want >= 100 over 10s", st.PacketsOffered)
	}
	if r.recv < int(st.PacketsOffered*9/10) {
		t.Errorf("received %d of %d offered; continuous load on a clean channel should mostly arrive",
			r.recv, st.PacketsOffered)
	}
}

func TestContinuousStops(t *testing.T) {
	r := newRig(t)
	rng := xrand.NewSource(2).Stream("wl")
	c := NewContinuous(r.eng, r.tx, 80, 0, rng)
	c.Start(time.Hour)
	r.eng.RunUntil(100 * time.Millisecond)
	c.Stop()
	offered := c.Stats().PacketsOffered
	r.eng.RunUntil(200 * time.Millisecond)
	if got := c.Stats().PacketsOffered; got != offered {
		t.Errorf("packets offered after Stop: %d -> %d", offered, got)
	}
}

func TestContinuousRespectsDeadline(t *testing.T) {
	r := newRig(t)
	rng := xrand.NewSource(3).Stream("wl")
	c := NewContinuous(r.eng, r.tx, 80, 0, rng)
	c.Start(50 * time.Millisecond)
	r.eng.Run()
	if r.eng.Now() > time.Second {
		t.Errorf("engine ran to %v; generator did not stop at deadline", r.eng.Now())
	}
}

func TestPeriodicRate(t *testing.T) {
	r := newRig(t)
	rng := xrand.NewSource(4).Stream("wl")
	p := NewPeriodic(r.eng, r.tx, 10, time.Second, 0, rng)
	p.Start(10500 * time.Millisecond)
	r.eng.Run()
	if got := p.Stats().PacketsOffered; got != 10 {
		t.Errorf("PacketsOffered = %d, want 10 (one per second)", got)
	}
	if r.recv != 10 {
		t.Errorf("received %d, want 10", r.recv)
	}
}

func TestPeriodicJitterStaysInBounds(t *testing.T) {
	r := newRig(t)
	rng := xrand.NewSource(5).Stream("wl")
	p := NewPeriodic(r.eng, r.tx, 10, time.Second, 500*time.Millisecond, rng)
	p.Start(30 * time.Second)
	r.eng.Run()
	got := p.Stats().PacketsOffered
	// Intervals in [1s, 1.5s): between 19 and 30 packets in 30s.
	if got < 19 || got > 30 {
		t.Errorf("PacketsOffered = %d, want within [19, 30]", got)
	}
}

func TestPoissonApproximatesRate(t *testing.T) {
	r := newRig(t)
	rng := xrand.NewSource(6).Stream("wl")
	p := NewPoisson(r.eng, r.tx, 10, time.Second, rng)
	p.Start(200 * time.Second)
	r.eng.Run()
	got := p.Stats().PacketsOffered
	// ~200 expected; allow wide sampling slack.
	if got < 140 || got > 270 {
		t.Errorf("PacketsOffered = %d, want ~200", got)
	}
}

func TestGeneratorCountsSendErrors(t *testing.T) {
	r := newRig(t)
	r.tx.Radio().SetUp(false)
	rng := xrand.NewSource(7).Stream("wl")
	p := NewPeriodic(r.eng, r.tx, 10, time.Second, 0, rng)
	p.Start(5500 * time.Millisecond)
	r.eng.Run()
	if p.Stats().SendErrors != 5 {
		t.Errorf("SendErrors = %d, want 5", p.Stats().SendErrors)
	}
	if p.Stats().PacketsOffered != 0 {
		t.Errorf("PacketsOffered = %d, want 0", p.Stats().PacketsOffered)
	}
}

func TestDefaultsApplied(t *testing.T) {
	r := newRig(t)
	rng := xrand.NewSource(8).Stream("wl")
	if p := NewPeriodic(r.eng, r.tx, 1, 0, 0, rng); p.interval != time.Second {
		t.Error("periodic default interval not applied")
	}
	if p := NewPoisson(r.eng, r.tx, 1, 0, rng); p.mean != time.Second {
		t.Error("poisson default mean not applied")
	}
	if c := NewContinuous(r.eng, r.tx, 1, 0, rng); c.poll <= 0 {
		t.Error("continuous default poll not applied")
	}
}
