package oracle

import (
	"math"
	"testing"
	"time"

	"retri/internal/aff"
	"retri/internal/core"
	"retri/internal/frame"
	"retri/internal/metrics"
	"retri/internal/radio"
)

// testAFF is a small fixed-width instrumented wire format.
func testAFF() aff.Config {
	return aff.Config{
		Space:             core.MustSpace(8),
		Instrument:        true,
		ReassemblyTimeout: 250 * time.Millisecond,
	}
}

func newTestOracle(t *testing.T, now *time.Duration) *Oracle {
	t.Helper()
	o, err := New(Config{AFF: testAFF(), Now: func() time.Duration { return *now }})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// sendTx airs a full transaction (intro + one data fragment) from the
// given node and returns the frames for reuse on the delivery side.
func sendTx(t *testing.T, o *Oracle, from radio.NodeID, id uint64, truth frame.Truth, payload []byte) []radio.Frame {
	t.Helper()
	codec := frame.AFFCodec{IDBits: 8, Instrument: true}
	ib, ibits, err := codec.EncodeIntro(frame.Intro{ID: id, TotalLen: len(payload), Checksum: 7, Truth: &truth})
	if err != nil {
		t.Fatal(err)
	}
	db, dbits, err := codec.EncodeData(frame.Data{ID: id, Offset: 0, Payload: payload, Truth: &truth})
	if err != nil {
		t.Fatal(err)
	}
	frames := []radio.Frame{
		{From: from, Payload: ib, Bits: ibits},
		{From: from, Payload: db, Bits: dbits},
	}
	for _, f := range frames {
		o.FrameSent(f)
	}
	return frames
}

func TestOracleRequiresInstrument(t *testing.T) {
	cfg := testAFF()
	cfg.Instrument = false
	if _, err := New(Config{AFF: cfg}); err == nil {
		t.Fatal("uninstrumented config accepted")
	}
}

func TestOracleTransactionLifecycle(t *testing.T) {
	now := time.Duration(0)
	o := newTestOracle(t, &now)

	codec := frame.AFFCodec{IDBits: 8, Instrument: true}
	truth := frame.Truth{Node: 1, Seq: 1}
	ib, ibits, _ := codec.EncodeIntro(frame.Intro{ID: 5, TotalLen: 4, Checksum: 7, Truth: &truth})
	o.FrameSent(radio.Frame{From: 1, Payload: ib, Bits: ibits})
	if got := o.OpenCount(); got != 1 {
		t.Fatalf("open after intro = %d, want 1", got)
	}
	if got := o.VisibleT(2); got != 2 {
		t.Errorf("VisibleT(2) = %d, want 2 (own + one open)", got)
	}

	db, dbits, _ := codec.EncodeData(frame.Data{ID: 5, Offset: 0, Payload: []byte{1, 2, 3, 4}, Truth: &truth})
	o.FrameSent(radio.Frame{From: 1, Payload: db, Bits: dbits})
	rep := o.Report()
	if o.OpenCount() != 0 || rep.TransactionsClosed != 1 {
		t.Errorf("final fragment did not close: open=%d closed=%d", o.OpenCount(), rep.TransactionsClosed)
	}
	if err := rep.Check(); err != nil {
		t.Errorf("clean run reported violations: %v", err)
	}

	// Delivery of the sent frames is conservation-clean.
	o.FrameDelivered(2, radio.Frame{From: 1, Payload: ib, Bits: ibits}, false)
	o.FrameDelivered(2, radio.Frame{From: 1, Payload: db, Bits: dbits}, false)
	if rep := o.Report(); rep.ConservationViolations != 0 || rep.FragmentsDelivered != 2 {
		t.Errorf("clean delivery audit: %+v", rep)
	}

	// The reassembled packet matches ground truth.
	o.VerifyDelivered(2, aff.Packet{ID: 5, Data: []byte{1, 2, 3, 4}, Truth: &truth})
	if rep := o.Report(); rep.Misdeliveries != 0 || rep.PacketsAudited != 1 {
		t.Errorf("clean packet audit: %+v", rep)
	}
}

func TestOracleDetectsMisdelivery(t *testing.T) {
	now := time.Duration(0)
	o := newTestOracle(t, &now)
	truth := frame.Truth{Node: 1, Seq: 1}
	sendTx(t, o, 1, 5, truth, []byte{1, 2, 3, 4})

	// Wrong bytes, wrong key, wrong length, unknown transaction.
	o.VerifyDelivered(2, aff.Packet{ID: 5, Data: []byte{9, 9, 9, 9}, Truth: &truth})
	o.VerifyDelivered(2, aff.Packet{ID: 6, Data: []byte{1, 2, 3, 4}, Truth: &truth})
	o.VerifyDelivered(2, aff.Packet{ID: 5, Data: []byte{1, 2}, Truth: &truth})
	o.VerifyDelivered(2, aff.Packet{ID: 5, Data: []byte{1, 2, 3, 4}, Truth: &frame.Truth{Node: 9, Seq: 9}})
	rep := o.Report()
	if rep.Misdeliveries != 4 {
		t.Errorf("misdeliveries = %d, want 4", rep.Misdeliveries)
	}
	if rep.Check() == nil {
		t.Error("Check passed with misdeliveries")
	}
}

func TestOracleDetectsConservationViolation(t *testing.T) {
	now := time.Duration(0)
	o := newTestOracle(t, &now)
	truth := frame.Truth{Node: 1, Seq: 1}
	sendTx(t, o, 1, 5, truth, []byte{1, 2, 3, 4})

	// A delivered data fragment whose bytes were never sent.
	codec := frame.AFFCodec{IDBits: 8, Instrument: true}
	db, dbits, _ := codec.EncodeData(frame.Data{ID: 5, Offset: 0, Payload: []byte{9, 9}, Truth: &truth})
	o.FrameDelivered(2, radio.Frame{From: 1, Payload: db, Bits: dbits}, false)
	if rep := o.Report(); rep.ConservationViolations != 1 {
		t.Errorf("conservation violations = %d, want 1", rep.ConservationViolations)
	}

	// A corrupted delivery is counted, not audited.
	o.FrameDelivered(2, radio.Frame{From: 1, Payload: db, Bits: dbits}, true)
	if rep := o.Report(); rep.ConservationViolations != 1 || rep.CorruptedDeliveries != 1 {
		t.Errorf("corrupted delivery audited: %+v", rep)
	}
}

func TestOracleDetectsCollisionAndFreshness(t *testing.T) {
	now := time.Duration(0)
	o := newTestOracle(t, &now)
	codec := frame.AFFCodec{IDBits: 8, Instrument: true}

	// Two senders open transactions under the same identifier: a true
	// collision, not a freshness violation.
	t1, t2 := frame.Truth{Node: 1, Seq: 1}, frame.Truth{Node: 2, Seq: 1}
	ib1, b1, _ := codec.EncodeIntro(frame.Intro{ID: 5, TotalLen: 2, Checksum: 7, Truth: &t1})
	ib2, b2, _ := codec.EncodeIntro(frame.Intro{ID: 5, TotalLen: 2, Checksum: 8, Truth: &t2})
	o.FrameSent(radio.Frame{From: 1, Payload: ib1, Bits: b1})
	o.FrameSent(radio.Frame{From: 2, Payload: ib2, Bits: b2})
	rep := o.Report()
	if rep.CollisionEvents != 1 || rep.FreshnessViolations != 0 {
		t.Errorf("collisions=%d freshness=%d, want 1/0", rep.CollisionEvents, rep.FreshnessViolations)
	}

	// A transaction switching identifier mid-flight is a freshness
	// violation.
	db, bd, _ := codec.EncodeData(frame.Data{ID: 6, Offset: 0, Payload: []byte{1}, Truth: &t1})
	o.FrameSent(radio.Frame{From: 1, Payload: db, Bits: bd})
	if rep := o.Report(); rep.FreshnessViolations != 1 {
		t.Errorf("freshness violations = %d, want 1 after mid-flight change", rep.FreshnessViolations)
	}

	// The same sender opening a new transaction retires its previous one
	// (the FIFO queue moved on — a crash-restart redrawing the same key is
	// legitimate), so this counts as a collision with node 2's still-open
	// transaction, not a freshness violation.
	t3 := frame.Truth{Node: 1, Seq: 2}
	ib3, b3, _ := codec.EncodeIntro(frame.Intro{ID: 5, TotalLen: 2, Checksum: 9, Truth: &t3})
	o.FrameSent(radio.Frame{From: 1, Payload: ib3, Bits: b3})
	rep = o.Report()
	if rep.FreshnessViolations != 1 || rep.CollisionEvents != 2 {
		t.Errorf("freshness=%d collisions=%d, want 1/2 after crash-redraw", rep.FreshnessViolations, rep.CollisionEvents)
	}
	if rep.TransactionsAbandoned != 1 {
		t.Errorf("abandoned = %d, want 1", rep.TransactionsAbandoned)
	}
}

func TestOracleStallPruning(t *testing.T) {
	now := time.Duration(0)
	o := newTestOracle(t, &now)
	codec := frame.AFFCodec{IDBits: 8, Instrument: true}
	truth := frame.Truth{Node: 1, Seq: 1}
	ib, bits, _ := codec.EncodeIntro(frame.Intro{ID: 5, TotalLen: 4, Checksum: 7, Truth: &truth})
	o.FrameSent(radio.Frame{From: 1, Payload: ib, Bits: bits})

	// The sender goes quiet: no more fragments. Past the stall timeout
	// the transaction no longer counts toward anyone's density.
	now = 300 * time.Millisecond
	if got := o.VisibleT(2); got != 1 {
		t.Errorf("VisibleT after stall = %d, want floor 1", got)
	}
	if rep := o.Report(); rep.TransactionsStalled != 1 {
		t.Errorf("stalled = %d, want 1", rep.TransactionsStalled)
	}

	// A late fragment (a long CSMA contention gap, not a death) revives
	// the transaction: density recovers and the transaction can still
	// close with a clean conservation audit.
	db, dbits, _ := codec.EncodeData(frame.Data{ID: 5, Offset: 0, Payload: []byte{1, 2}, Truth: &truth})
	o.FrameSent(radio.Frame{From: 1, Payload: db, Bits: dbits})
	if got := o.VisibleT(2); got != 2 {
		t.Errorf("VisibleT after revival = %d, want 2", got)
	}
	db2, d2bits, _ := codec.EncodeData(frame.Data{ID: 5, Offset: 2, Payload: []byte{3, 4}, Truth: &truth})
	o.FrameSent(radio.Frame{From: 1, Payload: db2, Bits: d2bits})
	rep := o.Report()
	if rep.TransactionsRevived != 1 || rep.TransactionsClosed != 1 {
		t.Errorf("revived=%d closed=%d, want 1/1", rep.TransactionsRevived, rep.TransactionsClosed)
	}
	if err := rep.Check(); err != nil {
		t.Errorf("revival flagged as violation: %v", err)
	}
}

func TestOracleVisibleTRespectsTopology(t *testing.T) {
	now := time.Duration(0)
	disk := radio.NewUnitDisk(10)
	disk.Place(1, radio.Point{X: 0, Y: 0})
	disk.Place(2, radio.Point{X: 5, Y: 0})   // in range of 1
	disk.Place(3, radio.Point{X: 100, Y: 0}) // out of range
	o, err := New(Config{AFF: testAFF(), Topo: disk, Now: func() time.Duration { return now }})
	if err != nil {
		t.Fatal(err)
	}
	sendTx := func(from radio.NodeID, seq uint32, id uint64) {
		codec := frame.AFFCodec{IDBits: 8, Instrument: true}
		truth := frame.Truth{Node: uint32(from), Seq: seq}
		ib, bits, _ := codec.EncodeIntro(frame.Intro{ID: id, TotalLen: 4, Checksum: 7, Truth: &truth})
		o.FrameSent(radio.Frame{From: from, Payload: ib, Bits: bits})
	}
	sendTx(1, 1, 5)
	sendTx(3, 1, 6)
	if got := o.VisibleT(2); got != 2 {
		t.Errorf("VisibleT(2) = %d, want 2 (own + node 1; node 3 out of range)", got)
	}
	if got := o.VisibleT(1); got != 1 {
		t.Errorf("VisibleT(1) = %d, want 1 (own transaction only)", got)
	}
	if got := o.VisibleT(3); got != 1 {
		t.Errorf("VisibleT(3) = %d, want 1 (isolated)", got)
	}
	sendTx(2, 1, 7)
	if got := o.VisibleT(1); got != 2 {
		t.Errorf("VisibleT(1) = %d, want 2", got)
	}
}

func TestOracleAdaptiveWidthKeys(t *testing.T) {
	now := time.Duration(0)
	cfg := testAFF()
	cfg.Space = core.MustSpace(16)
	cfg.AdaptiveWidth = true
	o, err := New(Config{AFF: cfg, Now: func() time.Duration { return now }})
	if err != nil {
		t.Fatal(err)
	}
	// A 4-bit id 3 and a 9-bit id 3 are distinct transactions, not a
	// collision.
	for i, w := range []int{4, 9} {
		codec := frame.AFFCodec{IDBits: w, Instrument: true, InBandWidth: true}
		truth := frame.Truth{Node: uint32(i + 1), Seq: 1}
		ib, bits, err := codec.EncodeIntro(frame.Intro{ID: 3, TotalLen: 4, Checksum: 7, Truth: &truth})
		if err != nil {
			t.Fatal(err)
		}
		o.FrameSent(radio.Frame{From: radio.NodeID(i + 1), Payload: ib, Bits: bits})
	}
	rep := o.Report()
	if rep.CollisionEvents != 0 {
		t.Errorf("distinct widths counted as collision: %+v", rep)
	}
	if o.OpenCount() != 2 {
		t.Errorf("open = %d, want 2", o.OpenCount())
	}
}

func TestOracleProbe(t *testing.T) {
	now := time.Duration(0)
	o := newTestOracle(t, &now)
	sendTx(t, o, 1, 5, frame.Truth{Node: 1, Seq: 1}, []byte{1}) // closes immediately

	// No open transactions: truth is the floor of 1.
	opt := OptimalWidth(384, 1, 2, 16)
	o.Probe(2, 3.5, 10, 384, 2, 16)
	o.Probe(2, 1.0, opt, 384, 2, 16)
	rep := o.Report()
	if got := rep.MeanEstError(); math.Abs(got-1.25) > 1e-9 {
		t.Errorf("mean est error = %v, want 1.25", got)
	}
	if got := rep.EstErrorPercentile(50); got != 0 {
		t.Errorf("p50 est error = %v, want 0", got)
	}
	if got := rep.EstErrorPercentile(95); got != 2.5 {
		t.Errorf("p95 est error = %v, want 2.5", got)
	}
	if got := rep.MeanWidthGap(); got != float64(10-opt)/2 {
		t.Errorf("mean width gap = %v, want %v", got, float64(10-opt)/2)
	}
	if got := rep.MeanAbsWidthGap(); got != float64(10-opt)/2 {
		t.Errorf("abs width gap = %v", got)
	}
	if got := rep.WidthGapPercentile(95); got != float64(10-opt) {
		t.Errorf("p95 width gap = %v", got)
	}

	// The probe scores against a smoothed truth: a transaction opening
	// moves the instantaneous count to 2, but the EMA only goes halfway.
	codec := frame.AFFCodec{IDBits: 8, Instrument: true}
	truth := frame.Truth{Node: 3, Seq: 1}
	ib, bits, _ := codec.EncodeIntro(frame.Intro{ID: 9, TotalLen: 4, Checksum: 7, Truth: &truth})
	o.FrameSent(radio.Frame{From: 3, Payload: ib, Bits: bits})
	o.Probe(2, 1.5, opt, 384, 2, 16)
	rep = o.Report()
	if got := rep.EstErrors[len(rep.EstErrors)-1]; math.Abs(got) > 1e-9 {
		t.Errorf("smoothed est error = %v, want 0 (EMA of 1 and 2)", got)
	}
}

func TestReportEmptyPercentiles(t *testing.T) {
	var r Report
	if !math.IsNaN(r.EstErrorPercentile(50)) || !math.IsNaN(r.MeanWidthGap()) || !math.IsNaN(r.MeanAbsWidthGap()) {
		t.Error("empty report digests should be NaN")
	}
	if r.Check() != nil {
		t.Error("empty report should be conformant")
	}
}

func TestReportMergeAndSnapshot(t *testing.T) {
	a := Report{TransactionsOpened: 2, FragmentsSent: 5, Misdeliveries: 1, EstErrors: []float64{1}, WidthGaps: []float64{2}}
	b := Report{TransactionsOpened: 3, FragmentsSent: 7, CollisionEvents: 4, EstErrors: []float64{-1}, WidthGaps: []float64{0}}
	a.Merge(b)
	if a.TransactionsOpened != 5 || a.FragmentsSent != 12 || a.CollisionEvents != 4 {
		t.Errorf("merge counters: %+v", a)
	}
	if len(a.EstErrors) != 2 || len(a.WidthGaps) != 2 {
		t.Errorf("merge samples: %+v", a)
	}

	reg := metrics.NewRegistry()
	a.SnapshotInto(reg, "cell=x")
	if got := reg.Counter("oracle_tx_opened_total", "cell=x").Value(); got != 5 {
		t.Errorf("oracle_tx_opened_total = %v, want 5", got)
	}
	if got := reg.Counter("oracle_misdeliveries_total", "cell=x").Value(); got != 1 {
		t.Errorf("oracle_misdeliveries_total = %v, want 1", got)
	}
	if got := reg.Gauge("oracle_width_gap_mean_abs", "cell=x").Value(); got != 1 {
		t.Errorf("oracle_width_gap_mean_abs = %v, want 1", got)
	}
}

func TestOracleUnauditedFrames(t *testing.T) {
	now := time.Duration(0)
	o := newTestOracle(t, &now)
	// Undecodable garbage at send and delivery.
	o.FrameSent(radio.Frame{From: 1, Payload: nil, Bits: 0})
	o.FrameDelivered(2, radio.Frame{From: 1, Payload: nil, Bits: 0}, false)
	// A packet without a truth trailer cannot be audited.
	o.VerifyDelivered(2, aff.Packet{ID: 5, Data: []byte{1}})
	rep := o.Report()
	if rep.Unaudited != 3 {
		t.Errorf("unaudited = %d, want 3", rep.Unaudited)
	}
	if rep.Misdeliveries != 0 || rep.ConservationViolations != 0 {
		t.Errorf("garbage counted as violation: %+v", rep)
	}
}
