// Package oracle is an omniscient conformance harness for the AFF stack.
//
// It watches the medium from the simulator's privileged viewpoint
// (radio.FrameObserver): every frame put on air, with payload bytes and
// the ground-truth sender — information no protocol entity may read. From
// that vantage it maintains the true state of the world:
//
//   - which transactions are open at each instant, keyed by the
//     instrumentation Truth trailer (the Section 5.1 methodology);
//   - the true per-node visible transaction density T — what a perfect
//     estimator at node v would report;
//   - true identifier collisions: two concurrently open transactions
//     sharing one on-air reassembly key.
//
// Against that ground truth it audits the stack's safety properties:
// fragment conservation (every delivered fragment was sent, byte for
// byte), never-misdeliver (every packet the reassembler under test hands
// up matches the true payload of its transaction), and identifier
// freshness (a transaction keeps one identifier for its whole lifetime; a
// mid-flight change is a violation). Transactions from one sender never
// interleave — the transmit queue is FIFO — so a new transaction retires
// any previous one from the same sender rather than being read as a
// concurrent key reuse. It also scores the estimators and width
// controllers under test:
// estimator-minus-truth error samples and achieved-minus-optimal width
// samples, where "optimal" is the omniscient Equation 4 width at the true
// density.
//
// The oracle is strictly passive. It draws no randomness, schedules no
// events and never mutates a payload, so attaching it cannot perturb the
// simulation: runs with and without the oracle are byte-identical.
//
// It understands the plain AFF wire format only (fixed- or in-band-width)
// and requires aff.Config.Instrument; frames it cannot attribute are
// counted in Report.Unaudited rather than guessed at.
package oracle

import (
	"errors"
	"fmt"
	"time"

	"retri/internal/aff"
	"retri/internal/frame"
	"retri/internal/radio"
)

// Config parameterizes an Oracle.
type Config struct {
	// AFF is the wire-format configuration of the stack under observation
	// (both ends of a deployment share it). Instrument must be set: the
	// Truth trailer is how the oracle attributes fragments to
	// transactions.
	AFF aff.Config
	// Topo is the topology VisibleT consults for connectivity. May be nil,
	// in which case every node sees every transaction (full mesh).
	Topo radio.Topology
	// Now supplies virtual time (pass the engine's clock).
	Now func() time.Duration
	// StallTimeout prunes open transactions with no send activity — a
	// churned node's transmit queue dies with its radio, so its final
	// fragment never airs. Zero selects the AFF reassembly timeout.
	StallTimeout time.Duration
	// Retain keeps closed transactions around for the delivery audit
	// (receivers complete reassembly when the final fragment lands, but a
	// fragment lost earlier may leave them waiting on a retransmission
	// that never comes). Zero selects StallTimeout. Under multi-hop
	// relaying, size it to cover the worst relay latency as well: a
	// relayed copy airing after its transaction has been forgotten would
	// be misread as a brand-new transaction.
	Retain time.Duration
	// Unwrap, when set, strips a transport envelope (the flood relay's
	// hop-scope header) from every observed frame before AFF decoding;
	// ok=false counts the frame Unaudited. Nil observes raw payloads.
	Unwrap func(payload []byte) (inner []byte, ok bool)
	// Visible, when set, overrides Topo for the density audit: whether a
	// transaction originated by sender is audible at v. Under multi-hop
	// relaying that is hop-limited reachability, not one-hop
	// connectivity. Nil falls back to Topo.
	Visible func(sender, v radio.NodeID) bool
}

// txKey identifies one true transaction: the instrumentation trailer's
// (node, sequence) pair, unique by construction.
type txKey struct{ node, seq uint32 }

// tx is the oracle's ground-truth record of one transaction.
type tx struct {
	truth    txKey
	sender   radio.NodeID
	key      uint64 // on-air reassembly key (WidthKey in adaptive mode)
	haveLen  bool
	totalLen int
	checksum uint16
	buf      []byte
	covered  []bool
	got      int
	lastSent time.Duration
	closedAt time.Duration
	// stalled marks a transaction dormant: no fragment for a stall
	// timeout, so it no longer counts toward anyone's density, but its
	// ground truth is kept — CSMA contention can stretch inter-fragment
	// gaps arbitrarily, and a late fragment revives the transaction
	// rather than being mistaken for a conservation violation.
	stalled bool
}

// Oracle implements radio.FrameObserver and the conformance audits.
type Oracle struct {
	codec   frame.AFFCodec
	topo    radio.Topology
	now     func() time.Duration
	stall   time.Duration
	retain  time.Duration
	unwrap  func(payload []byte) ([]byte, bool)
	visible func(sender, v radio.NodeID) bool

	open   map[txKey]*tx
	closed map[txKey]*tx
	// openByKey counts live (non-stalled) open transactions per on-air
	// key, for collision detection without scanning.
	openByKey map[uint64]int
	// current tracks each sender's latest transaction. Senders transmit
	// from a FIFO queue, so transactions never interleave: a new one from
	// S is proof that S's previous one is finished or dead (a crash
	// dropped its queue), never that two run concurrently.
	current map[radio.NodeID]txKey
	// smoothT is the per-node probe-averaged true density. Equation 4's T
	// is an *average* concurrency, not the instantaneous open-transaction
	// count (which flickers between consecutive transactions), so the
	// scoring probes fold their instantaneous reads into an EMA.
	smoothT map[radio.NodeID]float64

	rep Report
}

// smoothAlpha is the probe-EMA weight: with ~1s probe spacing, the
// smoothed truth tracks genuine density shifts within a few seconds while
// averaging out sub-transaction flicker.
const smoothAlpha = 0.5

var _ radio.FrameObserver = (*Oracle)(nil)

// New builds an oracle for the given wire format and topology.
func New(cfg Config) (*Oracle, error) {
	if !cfg.AFF.Instrument {
		return nil, errors.New("oracle: requires aff.Config.Instrument (Truth trailers attribute fragments)")
	}
	if cfg.AFF.Space.Bits() < 1 {
		return nil, fmt.Errorf("oracle: invalid identifier space width %d", cfg.AFF.Space.Bits())
	}
	if cfg.Now == nil {
		cfg.Now = func() time.Duration { return 0 }
	}
	if cfg.StallTimeout <= 0 {
		cfg.StallTimeout = cfg.AFF.ReassemblyTimeout
	}
	if cfg.StallTimeout <= 0 {
		cfg.StallTimeout = 250 * time.Millisecond
	}
	if cfg.Retain <= 0 {
		cfg.Retain = cfg.StallTimeout
	}
	return &Oracle{
		codec: frame.AFFCodec{
			IDBits:      cfg.AFF.Space.Bits(),
			Instrument:  true,
			InBandWidth: cfg.AFF.AdaptiveWidth,
		},
		topo:      cfg.Topo,
		now:       cfg.Now,
		stall:     cfg.StallTimeout,
		retain:    cfg.Retain,
		unwrap:    cfg.Unwrap,
		visible:   cfg.Visible,
		open:      make(map[txKey]*tx),
		closed:    make(map[txKey]*tx),
		openByKey: make(map[uint64]int),
		current:   make(map[radio.NodeID]txKey),
		smoothT:   make(map[radio.NodeID]float64),
	}, nil
}

// reassemblyKey maps a decoded width and identifier to the key the
// reassembler under test files the fragment under.
func (o *Oracle) reassemblyKey(decodedWidth int, id uint64) uint64 {
	if decodedWidth == 0 {
		return id
	}
	return aff.WidthKey(decodedWidth, id)
}

// FrameSent ingests a transmission: ground truth advances. The sender is
// attributed from the Truth trailer's originator, not the radio that put
// the frame on air: relays re-broadcast fragments under their own radio
// identity, and in single-hop figures the two coincide by construction.
func (o *Oracle) FrameSent(f radio.Frame) {
	now := o.now()
	o.prune(now)
	payload := f.Payload
	if o.unwrap != nil {
		inner, ok := o.unwrap(payload)
		if !ok {
			o.rep.Unaudited++
			return
		}
		payload = inner
	}
	decoded, err := o.codec.Decode(payload)
	if err != nil {
		o.rep.Unaudited++
		return
	}
	o.rep.FragmentsSent++
	switch fr := decoded.(type) {
	case *frame.Intro:
		if fr.Truth == nil {
			o.rep.Unaudited++
			return
		}
		k := txKey{fr.Truth.Node, fr.Truth.Seq}
		key := o.reassemblyKey(fr.IDBits, fr.ID)
		if t, ok := o.closed[k]; ok {
			// A relay re-airing the introduction of a transaction whose
			// originator already finished (or walked away from) it: verify
			// the copy against ground truth without reopening anything.
			if t.key != key || (t.haveLen && (t.totalLen != fr.TotalLen || t.checksum != fr.Checksum)) {
				o.rep.ConservationViolations++
			}
			return
		}
		t := o.lookup(k, radio.NodeID(fr.Truth.Node), key, now)
		if !t.haveLen {
			t.haveLen = true
			t.totalLen = fr.TotalLen
			t.checksum = fr.Checksum
			t.buf = make([]byte, fr.TotalLen)
			t.covered = make([]bool, fr.TotalLen)
		}
	case *frame.Data:
		if fr.Truth == nil {
			o.rep.Unaudited++
			return
		}
		k := txKey{fr.Truth.Node, fr.Truth.Seq}
		key := o.reassemblyKey(fr.IDBits, fr.ID)
		end := fr.Offset + len(fr.Payload)
		if t, ok := o.closed[k]; ok {
			// A relayed copy of a retired transaction's data fragment must
			// match the bytes its originator actually sent.
			if t.key != key || !t.haveLen || end > t.totalLen {
				o.rep.ConservationViolations++
				return
			}
			for i, b := range fr.Payload {
				at := fr.Offset + i
				if !t.covered[at] || t.buf[at] != b {
					o.rep.ConservationViolations++
					return
				}
			}
			return
		}
		t := o.lookup(k, radio.NodeID(fr.Truth.Node), key, now)
		if !t.haveLen {
			// The fragmenter always airs the introduction first, so a data
			// fragment for an unknown transaction means a protocol bug.
			o.rep.ConservationViolations++
			return
		}
		if end > t.totalLen {
			o.rep.ConservationViolations++
			return
		}
		for i, b := range fr.Payload {
			at := fr.Offset + i
			if !t.covered[at] {
				t.covered[at] = true
				t.got++
			}
			t.buf[at] = b
		}
		if end == t.totalLen {
			o.close(t, now)
		}
	}
}

// lookup finds or opens the ground-truth record for a truth key, checking
// the invariants a fragment's arrival can violate.
func (o *Oracle) lookup(k txKey, sender radio.NodeID, key uint64, now time.Duration) *tx {
	if t, ok := o.open[k]; ok {
		if t.key != key {
			// A transaction changed identifier (or width) mid-flight.
			o.rep.FreshnessViolations++
		}
		if t.stalled {
			// A fragment after a long CSMA-contention gap: the
			// transaction was dormant, not dead.
			t.stalled = false
			o.openByKey[t.key]++
			o.rep.TransactionsRevived++
		}
		t.lastSent = now
		return t
	}
	// A new transaction from this sender finishes off its previous one:
	// the transmit queue is FIFO, so fragments of an older transaction
	// can never air once a newer one has begun — if the old one is still
	// open, a crash dropped the rest of its queue. Retiring it here,
	// rather than flagging a freshness violation when a restarted
	// selector legitimately redraws the same key, keeps the audit aligned
	// with ground truth.
	if prev, ok := o.current[sender]; ok && prev != k {
		if pt, live := o.open[prev]; live {
			o.abandon(pt, now)
		}
	}
	o.current[sender] = k
	t := &tx{truth: k, sender: sender, key: key, lastSent: now}
	// True collisions: this key already carries another live transaction,
	// so receivers will merge fragments of distinct transactions.
	if o.openByKey[key] > 0 {
		o.rep.CollisionEvents++
	}
	o.open[k] = t
	o.openByKey[key]++
	o.rep.TransactionsOpened++
	return t
}

// retire removes a transaction from the open set and parks it in the
// closed set for the delivery-audit retention window.
func (o *Oracle) retire(t *tx, now time.Duration) {
	delete(o.open, t.truth)
	if !t.stalled {
		o.openByKey[t.key]--
		if o.openByKey[t.key] <= 0 {
			delete(o.openByKey, t.key)
		}
	}
	t.closedAt = now
	o.closed[t.truth] = t
}

// close retires a transaction whose final fragment went on air.
func (o *Oracle) close(t *tx, now time.Duration) {
	o.retire(t, now)
	o.rep.TransactionsClosed++
}

// abandon retires a transaction its sender walked away from (the FIFO
// queue moved on, so it can never complete). It stays in the closed set
// briefly: a frame of it may still be in flight when the verdict lands.
func (o *Oracle) abandon(t *tx, now time.Duration) {
	o.retire(t, now)
	o.rep.TransactionsAbandoned++
}

// prune marks open transactions with no send activity dormant — they stop
// counting toward density, but their ground truth is kept in case a
// fragment airs after a long contention gap — and drops closed
// transactions past the delivery-audit retention window.
func (o *Oracle) prune(now time.Duration) {
	for _, t := range o.open {
		if !t.stalled && now-t.lastSent > o.stall {
			t.stalled = true
			o.openByKey[t.key]--
			if o.openByKey[t.key] <= 0 {
				delete(o.openByKey, t.key)
			}
			o.rep.TransactionsStalled++
		}
	}
	for k, t := range o.closed {
		if now-t.closedAt > o.retain {
			delete(o.closed, k)
		}
	}
}

// find returns the ground-truth record for a truth key, open or recently
// closed.
func (o *Oracle) find(k txKey) *tx {
	if t, ok := o.open[k]; ok {
		return t
	}
	return o.closed[k]
}

// FrameDelivered audits one successful reception: fragment conservation.
// A corrupted delivery (fault injection damaged this receiver's copy) is
// counted but not byte-checked — catching it is the checksum layer's job.
func (o *Oracle) FrameDelivered(to radio.NodeID, f radio.Frame, corrupted bool) {
	o.rep.FragmentsDelivered++
	if corrupted {
		o.rep.CorruptedDeliveries++
		return
	}
	payload := f.Payload
	if o.unwrap != nil {
		inner, ok := o.unwrap(payload)
		if !ok {
			o.rep.Unaudited++
			return
		}
		payload = inner
	}
	decoded, err := o.codec.Decode(payload)
	if err != nil {
		o.rep.Unaudited++
		return
	}
	switch fr := decoded.(type) {
	case *frame.Intro:
		if fr.Truth == nil {
			o.rep.Unaudited++
			return
		}
		t := o.find(txKey{fr.Truth.Node, fr.Truth.Seq})
		if t == nil || !t.haveLen || t.totalLen != fr.TotalLen || t.checksum != fr.Checksum {
			o.rep.ConservationViolations++
		}
	case *frame.Data:
		if fr.Truth == nil {
			o.rep.Unaudited++
			return
		}
		t := o.find(txKey{fr.Truth.Node, fr.Truth.Seq})
		if t == nil || !t.haveLen {
			o.rep.ConservationViolations++
			return
		}
		end := fr.Offset + len(fr.Payload)
		if end > t.totalLen {
			o.rep.ConservationViolations++
			return
		}
		for i, b := range fr.Payload {
			at := fr.Offset + i
			if !t.covered[at] || t.buf[at] != b {
				// Delivered bytes the sender never transmitted.
				o.rep.ConservationViolations++
				return
			}
		}
	}
}

// VerifyDelivered audits one packet the reassembler under test delivered
// (wire it to node.AFFOptions.OnDeliver): the never-misdeliver property.
// The packet must correspond to a known transaction, carry that
// transaction's reassembly key, and match its payload byte for byte.
func (o *Oracle) VerifyDelivered(at radio.NodeID, p aff.Packet) {
	o.rep.PacketsAudited++
	if p.Truth == nil {
		o.rep.Unaudited++
		return
	}
	t := o.find(txKey{p.Truth.Node, p.Truth.Seq})
	if t == nil || !t.haveLen {
		// Delivered later than the retention window, or never sent. The
		// retention window is sized to the reassembly timeout, so a
		// legitimate delivery cannot outlive it.
		o.rep.Misdeliveries++
		return
	}
	if p.ID != t.key || len(p.Data) != t.totalLen {
		o.rep.Misdeliveries++
		return
	}
	for i, b := range p.Data {
		if t.buf[i] != b {
			o.rep.Misdeliveries++
			return
		}
	}
}

// VisibleT returns the true transaction density at node v right now: open
// transactions whose sender is v itself or connected to v. A node with no
// transaction of its own currently open still counts one for itself — a
// sender's next transaction always contends with what it hears, and the
// Equation 4 set-point is undefined below T=1 — matching the experiment
// probe's "itself plus awake neighbors" convention.
func (o *Oracle) VisibleT(v radio.NodeID) int {
	o.prune(o.now())
	n := 0
	own := false
	for _, t := range o.open {
		if t.stalled {
			continue
		}
		switch {
		case t.sender == v:
			n++
			own = true
		case o.visible != nil:
			if o.visible(t.sender, v) {
				n++
			}
		case o.topo == nil || o.topo.Connected(t.sender, v):
			n++
		}
	}
	if !own {
		n++
	}
	return n
}

// OpenCount reports open transactions medium-wide (tests, debugging).
func (o *Oracle) OpenCount() int {
	o.prune(o.now())
	return len(o.open)
}

// Probe records one scoring sample for node v: the estimator's error
// (estimate minus smoothed true density) and the width controller's gap
// (achieved width minus the omniscient Equation 4 width at that density,
// clamped to [minBits, maxBits] exactly as the controller's target is).
// The instantaneous visible count is folded into a per-node EMA first:
// Equation 4's T is an average concurrency, and scoring against the raw
// count — which flickers between consecutive transactions on fragment
// timescales — would charge the controller for noise no causal estimator
// is meant to follow. It returns the smoothed truth and the optimal
// width it scored against, so callers building per-region tables reuse
// the exact quantities the conformance report was charged with.
func (o *Oracle) Probe(v radio.NodeID, estimate float64, achieved, dataBits, minBits, maxBits int) (trueT float64, optimal int) {
	inst := float64(o.VisibleT(v))
	t, ok := o.smoothT[v]
	if ok {
		t = smoothAlpha*inst + (1-smoothAlpha)*t
	} else {
		t = inst
	}
	o.smoothT[v] = t
	o.rep.EstErrors = append(o.rep.EstErrors, estimate-t)
	h := OptimalWidth(dataBits, t, minBits, maxBits)
	o.rep.WidthGaps = append(o.rep.WidthGaps, float64(achieved-h))
	return t, h
}

// Report returns a copy of the conformance report accumulated so far. The
// sample slices are shared with the oracle; callers must not mutate them.
func (o *Oracle) Report() Report { return o.rep }
