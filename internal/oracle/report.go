package oracle

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"retri/internal/metrics"
	"retri/internal/model"
)

// Report is the oracle's conformance verdict for one run (or, after
// Merge, several).
type Report struct {
	// Ground-truth transaction lifecycle.
	TransactionsOpened int64
	TransactionsClosed int64
	// TransactionsStalled counts transactions marked dormant because their
	// sender went quiet mid-flight (churn dropped the transmit queue, or a
	// long CSMA contention gap); TransactionsRevived counts dormant
	// transactions whose sender resumed; TransactionsAbandoned counts
	// transactions confirmed dead because their sender's FIFO queue moved
	// on to a newer transaction.
	TransactionsStalled   int64
	TransactionsRevived   int64
	TransactionsAbandoned int64

	// Medium-level fragment accounting.
	FragmentsSent       int64
	FragmentsDelivered  int64
	CorruptedDeliveries int64
	// Unaudited counts frames and packets the oracle could not attribute
	// (undecodable under the AFF codec, or missing the Truth trailer).
	Unaudited int64

	// CollisionEvents counts true identifier collisions: a transaction
	// opening on a reassembly key already carrying another open
	// transaction. This is expected protocol behaviour at small widths,
	// not a violation — Equation 4 prices it.
	CollisionEvents int64

	// Safety violations. All must be zero for a conformant run.
	ConservationViolations int64 // delivered bytes nobody sent
	Misdeliveries          int64 // delivered packet != its transaction's payload
	FreshnessViolations    int64 // identifier changed within a live transaction

	// PacketsAudited counts reassembler deliveries checked by
	// VerifyDelivered.
	PacketsAudited int64

	// EstErrors holds estimator-minus-truth density samples; WidthGaps
	// holds achieved-minus-optimal width samples (signed: positive means
	// over-width).
	EstErrors []float64
	WidthGaps []float64
}

// Merge folds another report into r (counter sums, sample concatenation).
// Fold per-trial reports in trial-index order for deterministic samples.
func (r *Report) Merge(o Report) {
	r.TransactionsOpened += o.TransactionsOpened
	r.TransactionsClosed += o.TransactionsClosed
	r.TransactionsStalled += o.TransactionsStalled
	r.TransactionsRevived += o.TransactionsRevived
	r.TransactionsAbandoned += o.TransactionsAbandoned
	r.FragmentsSent += o.FragmentsSent
	r.FragmentsDelivered += o.FragmentsDelivered
	r.CorruptedDeliveries += o.CorruptedDeliveries
	r.Unaudited += o.Unaudited
	r.CollisionEvents += o.CollisionEvents
	r.ConservationViolations += o.ConservationViolations
	r.Misdeliveries += o.Misdeliveries
	r.FreshnessViolations += o.FreshnessViolations
	r.PacketsAudited += o.PacketsAudited
	r.EstErrors = append(r.EstErrors, o.EstErrors...)
	r.WidthGaps = append(r.WidthGaps, o.WidthGaps...)
}

// Check returns an error describing every violated safety property, or
// nil for a conformant run.
func (r Report) Check() error {
	var faults []string
	if r.ConservationViolations > 0 {
		faults = append(faults, fmt.Sprintf("%d fragment-conservation violations", r.ConservationViolations))
	}
	if r.Misdeliveries > 0 {
		faults = append(faults, fmt.Sprintf("%d misdeliveries", r.Misdeliveries))
	}
	if r.FreshnessViolations > 0 {
		faults = append(faults, fmt.Sprintf("%d identifier-freshness violations", r.FreshnessViolations))
	}
	if len(faults) == 0 {
		return nil
	}
	return fmt.Errorf("oracle: %s", strings.Join(faults, ", "))
}

// percentile returns the p-th percentile (0..100) of xs by the
// nearest-rank method, or NaN for an empty sample.
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// mean returns the arithmetic mean of xs, or NaN for an empty sample.
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// EstErrorPercentile returns the p-th percentile of the signed
// estimator-minus-truth samples.
func (r Report) EstErrorPercentile(p float64) float64 { return percentile(r.EstErrors, p) }

// WidthGapPercentile returns the p-th percentile of the signed
// achieved-minus-optimal width samples.
func (r Report) WidthGapPercentile(p float64) float64 { return percentile(r.WidthGaps, p) }

// MeanEstError returns the mean signed estimator error.
func (r Report) MeanEstError() float64 { return mean(r.EstErrors) }

// MeanWidthGap returns the mean signed width gap.
func (r Report) MeanWidthGap() float64 { return mean(r.WidthGaps) }

// MeanAbsWidthGap returns the mean absolute width gap — the headline
// "bits above the omniscient optimum" number.
func (r Report) MeanAbsWidthGap() float64 {
	if len(r.WidthGaps) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range r.WidthGaps {
		s += math.Abs(x)
	}
	return s / float64(len(r.WidthGaps))
}

// SnapshotInto publishes the report on a metrics registry under the given
// label. Violations and lifecycle tallies are counters (merge by sum);
// the sample digests are gauges published with SetMax so a multi-trial
// snapshot carries the worst trial per cell, matching the registry's
// merge convention.
func (r Report) SnapshotInto(reg *metrics.Registry, label string) {
	reg.Counter("oracle_tx_opened_total", label).Add(r.TransactionsOpened)
	reg.Counter("oracle_tx_closed_total", label).Add(r.TransactionsClosed)
	reg.Counter("oracle_tx_stalled_total", label).Add(r.TransactionsStalled)
	reg.Counter("oracle_tx_revived_total", label).Add(r.TransactionsRevived)
	reg.Counter("oracle_tx_abandoned_total", label).Add(r.TransactionsAbandoned)
	reg.Counter("oracle_fragments_sent_total", label).Add(r.FragmentsSent)
	reg.Counter("oracle_fragments_delivered_total", label).Add(r.FragmentsDelivered)
	reg.Counter("oracle_corrupted_deliveries_total", label).Add(r.CorruptedDeliveries)
	reg.Counter("oracle_unaudited_total", label).Add(r.Unaudited)
	reg.Counter("oracle_collision_events_total", label).Add(r.CollisionEvents)
	reg.Counter("oracle_conservation_violations_total", label).Add(r.ConservationViolations)
	reg.Counter("oracle_misdeliveries_total", label).Add(r.Misdeliveries)
	reg.Counter("oracle_freshness_violations_total", label).Add(r.FreshnessViolations)
	reg.Counter("oracle_packets_audited_total", label).Add(r.PacketsAudited)
	if len(r.EstErrors) > 0 {
		reg.Gauge("oracle_est_error_p50", label).SetMax(r.EstErrorPercentile(50))
		reg.Gauge("oracle_est_error_p95", label).SetMax(r.EstErrorPercentile(95))
	}
	if len(r.WidthGaps) > 0 {
		reg.Gauge("oracle_width_gap_mean_abs", label).SetMax(r.MeanAbsWidthGap())
		reg.Gauge("oracle_width_gap_p95", label).SetMax(r.WidthGapPercentile(95))
	}
}

// OptimalWidth is the omniscient Equation 4 width for the given payload
// size and true density, clamped to [minBits, maxBits] — the yardstick
// the width controllers are scored against.
func OptimalWidth(dataBits int, trueT float64, minBits, maxBits int) int {
	h, _ := model.OptimalBits(dataBits, trueT, maxBits)
	if h < minBits {
		h = minBits
	}
	return h
}
