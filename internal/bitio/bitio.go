// Package bitio implements bit-granular serialization.
//
// RETRI identifiers are sized in bits (typically 1-32), not bytes, and the
// paper's efficiency model prices every transmitted bit. All wire formats in
// this repository are therefore packed with bit precision using this package.
//
// Bits are packed MSB-first: the first bit written becomes the most
// significant bit of the first byte. This matches conventional network
// bit ordering and makes hex dumps readable.
package bitio

import (
	"errors"
	"fmt"
)

// Bit-width limits for a single Read/Write call.
const (
	// MaxBits is the widest field a single ReadBits/WriteBits call handles.
	MaxBits = 64
)

var (
	// ErrShortBuffer is returned by a Reader when fewer bits remain than
	// were requested.
	ErrShortBuffer = errors.New("bitio: read past end of buffer")
)

// Writer accumulates bits into a growing byte buffer.
//
// The zero value is ready to use.
type Writer struct {
	buf   []byte
	nbits int
}

// NewWriter returns an empty Writer.
func NewWriter() *Writer { return &Writer{} }

// WriteBits appends the low n bits of v, MSB-first. n must be in [0, 64].
func (w *Writer) WriteBits(v uint64, n int) error {
	if n < 0 || n > MaxBits {
		return fmt.Errorf("bitio: WriteBits width %d out of range [0, %d]", n, MaxBits)
	}
	if n < 64 {
		v &= (uint64(1) << uint(n)) - 1
	}
	for n > 0 {
		if w.nbits%8 == 0 {
			w.buf = append(w.buf, 0)
		}
		free := 8 - w.nbits%8
		take := free
		if n < take {
			take = n
		}
		chunk := byte(v>>uint(n-take)) & byte((1<<uint(take))-1)
		w.buf[len(w.buf)-1] |= chunk << uint(free-take)
		w.nbits += take
		n -= take
	}
	return nil
}

// WriteBool appends a single bit.
func (w *Writer) WriteBool(b bool) {
	v := uint64(0)
	if b {
		v = 1
	}
	// A 1-bit write cannot fail.
	_ = w.WriteBits(v, 1)
}

// WriteBytes appends p one byte at a time, preserving the current bit offset.
func (w *Writer) WriteBytes(p []byte) {
	if w.nbits%8 == 0 {
		// Fast path: byte-aligned.
		w.buf = append(w.buf, p...)
		w.nbits += 8 * len(p)
		return
	}
	for _, b := range p {
		_ = w.WriteBits(uint64(b), 8)
	}
}

// Align pads with zero bits to the next byte boundary. It is a no-op when
// already aligned.
func (w *Writer) Align() {
	if rem := w.nbits % 8; rem != 0 {
		_ = w.WriteBits(0, 8-rem)
	}
}

// Len reports the number of bits written so far.
func (w *Writer) Len() int { return w.nbits }

// Bytes returns the packed buffer. Trailing bits of the final byte are zero.
// The returned slice aliases the Writer's internal buffer.
func (w *Writer) Bytes() []byte { return w.buf }

// Reset clears the writer for reuse, retaining the allocated buffer.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.nbits = 0
}

// Reader consumes bits from a byte slice, MSB-first.
type Reader struct {
	buf []byte
	pos int // in bits
}

// NewReader returns a Reader over p. The Reader does not copy p.
func NewReader(p []byte) *Reader { return &Reader{buf: p} }

// ReadBits consumes n bits and returns them right-aligned in a uint64.
// n must be in [0, 64].
func (r *Reader) ReadBits(n int) (uint64, error) {
	if n < 0 || n > MaxBits {
		return 0, fmt.Errorf("bitio: ReadBits width %d out of range [0, %d]", n, MaxBits)
	}
	if n > r.Remaining() {
		return 0, fmt.Errorf("%w: want %d bits, have %d", ErrShortBuffer, n, r.Remaining())
	}
	var v uint64
	for n > 0 {
		b := r.buf[r.pos/8]
		avail := 8 - r.pos%8
		take := avail
		if n < take {
			take = n
		}
		chunk := (b >> uint(avail-take)) & byte((1<<uint(take))-1)
		v = v<<uint(take) | uint64(chunk)
		r.pos += take
		n -= take
	}
	return v, nil
}

// ReadBool consumes a single bit.
func (r *Reader) ReadBool() (bool, error) {
	v, err := r.ReadBits(1)
	return v == 1, err
}

// ReadBytes fills p with len(p) bytes read at the current bit offset.
func (r *Reader) ReadBytes(p []byte) error {
	if 8*len(p) > r.Remaining() {
		return fmt.Errorf("%w: want %d bytes, have %d bits", ErrShortBuffer, len(p), r.Remaining())
	}
	if r.pos%8 == 0 {
		start := r.pos / 8
		copy(p, r.buf[start:start+len(p)])
		r.pos += 8 * len(p)
		return nil
	}
	for i := range p {
		v, err := r.ReadBits(8)
		if err != nil {
			return err
		}
		p[i] = byte(v)
	}
	return nil
}

// Align skips to the next byte boundary. It is a no-op when already aligned.
func (r *Reader) Align() {
	if rem := r.pos % 8; rem != 0 {
		r.pos += 8 - rem
	}
}

// Remaining reports the number of unread bits.
func (r *Reader) Remaining() int { return 8*len(r.buf) - r.pos }

// Offset reports the current position in bits from the start of the buffer.
func (r *Reader) Offset() int { return r.pos }

// BitsFor reports the minimum number of bits needed to represent v
// (at least 1, so BitsFor(0) == 1).
func BitsFor(v uint64) int {
	n := 1
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
