package bitio

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestWriteBitsSingleByte(t *testing.T) {
	w := NewWriter()
	if err := w.WriteBits(0b101, 3); err != nil {
		t.Fatalf("WriteBits: %v", err)
	}
	if err := w.WriteBits(0b01101, 5); err != nil {
		t.Fatalf("WriteBits: %v", err)
	}
	got := w.Bytes()
	want := []byte{0b10101101}
	if !bytes.Equal(got, want) {
		t.Errorf("Bytes() = %08b, want %08b", got, want)
	}
	if w.Len() != 8 {
		t.Errorf("Len() = %d, want 8", w.Len())
	}
}

func TestWriteBitsCrossByte(t *testing.T) {
	w := NewWriter()
	if err := w.WriteBits(0xABC, 12); err != nil {
		t.Fatalf("WriteBits: %v", err)
	}
	got := w.Bytes()
	want := []byte{0xAB, 0xC0}
	if !bytes.Equal(got, want) {
		t.Errorf("Bytes() = %x, want %x", got, want)
	}
}

func TestWriteBitsMasksHighBits(t *testing.T) {
	w := NewWriter()
	// Only the low 4 bits of 0xFF should land.
	if err := w.WriteBits(0xFF, 4); err != nil {
		t.Fatalf("WriteBits: %v", err)
	}
	w.Align()
	if got, want := w.Bytes()[0], byte(0xF0); got != want {
		t.Errorf("byte = %02x, want %02x", got, want)
	}
}

func TestWriteBitsZeroWidth(t *testing.T) {
	w := NewWriter()
	if err := w.WriteBits(123, 0); err != nil {
		t.Fatalf("WriteBits(_, 0): %v", err)
	}
	if w.Len() != 0 || len(w.Bytes()) != 0 {
		t.Errorf("zero-width write changed state: len=%d bytes=%d", w.Len(), len(w.Bytes()))
	}
}

func TestWriteBitsWidthErrors(t *testing.T) {
	w := NewWriter()
	if err := w.WriteBits(0, -1); err == nil {
		t.Error("WriteBits(_, -1) = nil, want error")
	}
	if err := w.WriteBits(0, 65); err == nil {
		t.Error("WriteBits(_, 65) = nil, want error")
	}
}

func TestReadBitsWidthErrors(t *testing.T) {
	r := NewReader([]byte{0xFF})
	if _, err := r.ReadBits(-1); err == nil {
		t.Error("ReadBits(-1) = nil, want error")
	}
	if _, err := r.ReadBits(65); err == nil {
		t.Error("ReadBits(65) = nil, want error")
	}
}

func TestReadPastEnd(t *testing.T) {
	r := NewReader([]byte{0xAA})
	if _, err := r.ReadBits(9); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("ReadBits(9) err = %v, want ErrShortBuffer", err)
	}
	// A failed read must not consume bits.
	if r.Remaining() != 8 {
		t.Errorf("Remaining() after failed read = %d, want 8", r.Remaining())
	}
}

func TestWriteBool(t *testing.T) {
	w := NewWriter()
	w.WriteBool(true)
	w.WriteBool(false)
	w.WriteBool(true)
	r := NewReader(w.Bytes())
	for i, want := range []bool{true, false, true} {
		got, err := r.ReadBool()
		if err != nil {
			t.Fatalf("ReadBool #%d: %v", i, err)
		}
		if got != want {
			t.Errorf("ReadBool #%d = %v, want %v", i, got, want)
		}
	}
}

func TestWriteBytesAligned(t *testing.T) {
	w := NewWriter()
	w.WriteBytes([]byte{1, 2, 3})
	if !bytes.Equal(w.Bytes(), []byte{1, 2, 3}) {
		t.Errorf("Bytes() = %v, want [1 2 3]", w.Bytes())
	}
}

func TestWriteBytesUnaligned(t *testing.T) {
	w := NewWriter()
	if err := w.WriteBits(0b1, 1); err != nil {
		t.Fatal(err)
	}
	w.WriteBytes([]byte{0xFF, 0x00})
	r := NewReader(w.Bytes())
	if _, err := r.ReadBits(1); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 2)
	if err := r.ReadBytes(got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{0xFF, 0x00}) {
		t.Errorf("ReadBytes = %x, want ff00", got)
	}
}

func TestReadBytesShort(t *testing.T) {
	r := NewReader([]byte{1})
	p := make([]byte, 2)
	if err := r.ReadBytes(p); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("ReadBytes err = %v, want ErrShortBuffer", err)
	}
}

func TestAlign(t *testing.T) {
	w := NewWriter()
	if err := w.WriteBits(0b111, 3); err != nil {
		t.Fatal(err)
	}
	w.Align()
	if w.Len() != 8 {
		t.Errorf("Len after Align = %d, want 8", w.Len())
	}
	w.Align() // no-op when aligned
	if w.Len() != 8 {
		t.Errorf("Len after second Align = %d, want 8", w.Len())
	}

	r := NewReader(w.Bytes())
	if _, err := r.ReadBits(3); err != nil {
		t.Fatal(err)
	}
	r.Align()
	if r.Offset() != 8 {
		t.Errorf("Offset after Align = %d, want 8", r.Offset())
	}
	r.Align()
	if r.Offset() != 8 {
		t.Errorf("Offset after second Align = %d, want 8", r.Offset())
	}
}

func TestReset(t *testing.T) {
	w := NewWriter()
	if err := w.WriteBits(0xFFFF, 16); err != nil {
		t.Fatal(err)
	}
	w.Reset()
	if w.Len() != 0 {
		t.Errorf("Len after Reset = %d, want 0", w.Len())
	}
	if err := w.WriteBits(0xA, 4); err != nil {
		t.Fatal(err)
	}
	w.Align()
	if !bytes.Equal(w.Bytes(), []byte{0xA0}) {
		t.Errorf("Bytes after Reset+write = %x, want a0", w.Bytes())
	}
}

func TestRoundTrip64(t *testing.T) {
	values := []uint64{0, 1, 0xFF, 0xDEADBEEF, ^uint64(0)}
	for _, v := range values {
		w := NewWriter()
		if err := w.WriteBits(v, 64); err != nil {
			t.Fatal(err)
		}
		r := NewReader(w.Bytes())
		got, err := r.ReadBits(64)
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Errorf("round trip 64-bit %x -> %x", v, got)
		}
	}
}

// TestRoundTripProperty checks that any sequence of variable-width fields
// written and then read back yields the original values.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64, nFields uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		n := int(nFields%40) + 1
		widths := make([]int, n)
		vals := make([]uint64, n)
		w := NewWriter()
		for i := 0; i < n; i++ {
			widths[i] = int(rng.Uint64N(64)) + 1
			vals[i] = rng.Uint64()
			if widths[i] < 64 {
				vals[i] &= (1 << uint(widths[i])) - 1
			}
			if err := w.WriteBits(vals[i], widths[i]); err != nil {
				return false
			}
		}
		r := NewReader(w.Bytes())
		for i := 0; i < n; i++ {
			got, err := r.ReadBits(widths[i])
			if err != nil || got != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestLenMatchesWidths verifies the writer's bit accounting.
func TestLenMatchesWidths(t *testing.T) {
	f := func(widths []uint8) bool {
		w := NewWriter()
		total := 0
		for _, wd := range widths {
			n := int(wd % 65)
			if err := w.WriteBits(0, n); err != nil {
				return false
			}
			total += n
		}
		if w.Len() != total {
			return false
		}
		wantBytes := (total + 7) / 8
		return len(w.Bytes()) == wantBytes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestBytesRoundTripProperty checks interleaved bit and byte writes.
func TestBytesRoundTripProperty(t *testing.T) {
	f := func(prefixBits uint8, payload []byte) bool {
		nb := int(prefixBits % 8)
		w := NewWriter()
		if err := w.WriteBits(0x55, nb); err != nil {
			return false
		}
		w.WriteBytes(payload)
		r := NewReader(w.Bytes())
		if _, err := r.ReadBits(nb); err != nil {
			return false
		}
		got := make([]byte, len(payload))
		if err := r.ReadBytes(got); err != nil {
			return false
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBitsFor(t *testing.T) {
	tests := []struct {
		v    uint64
		want int
	}{
		{0, 1},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{255, 8},
		{256, 9},
		{^uint64(0), 64},
	}
	for _, tt := range tests {
		if got := BitsFor(tt.v); got != tt.want {
			t.Errorf("BitsFor(%d) = %d, want %d", tt.v, got, tt.want)
		}
	}
}

func BenchmarkWriteBits(b *testing.B) {
	w := NewWriter()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Reset()
		for j := 0; j < 32; j++ {
			_ = w.WriteBits(uint64(j), 9)
		}
	}
}

func BenchmarkReadBits(b *testing.B) {
	w := NewWriter()
	for j := 0; j < 32; j++ {
		_ = w.WriteBits(uint64(j), 9)
	}
	buf := w.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewReader(buf)
		for j := 0; j < 32; j++ {
			_, _ = r.ReadBits(9)
		}
	}
}
