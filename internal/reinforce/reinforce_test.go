package reinforce

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"retri/internal/aff"
	"retri/internal/core"
	"retri/internal/node"
	"retri/internal/radio"
	"retri/internal/sim"
	"retri/internal/xrand"
)

func TestReadingWireRoundTrip(t *testing.T) {
	space := core.MustSpace(6)
	r := Reading{Stream: 33, Value: []byte{1, 2, 3}}
	buf, bits, err := EncodeReading(space, r)
	if err != nil {
		t.Fatal(err)
	}
	if bits <= 0 {
		t.Error("zero bits")
	}
	got, err := Decode(space, buf)
	if err != nil {
		t.Fatal(err)
	}
	gr, ok := got.(*Reading)
	if !ok || gr.Stream != 33 || !bytes.Equal(gr.Value, r.Value) {
		t.Errorf("round trip: %+v", got)
	}
}

func TestFeedbackWireRoundTrip(t *testing.T) {
	space := core.MustSpace(6)
	for _, delta := range []int{More, Less} {
		buf, bits, err := EncodeFeedback(space, Feedback{Stream: 4, Delta: delta})
		if err != nil {
			t.Fatal(err)
		}
		// 1 kind + 6 id + 2 delta = 9 bits: the tiny message the paper
		// contrasts with "Sensor #27.201.3.97, send more of your data".
		if bits != 9 {
			t.Errorf("feedback bits = %d, want 9", bits)
		}
		got, err := Decode(space, buf)
		if err != nil {
			t.Fatal(err)
		}
		gf, ok := got.(*Feedback)
		if !ok || gf.Stream != 4 || gf.Delta != delta {
			t.Errorf("round trip: %+v", got)
		}
	}
}

func TestWireValidation(t *testing.T) {
	space := core.MustSpace(4)
	if _, _, err := EncodeReading(space, Reading{Stream: 16}); !errors.Is(err, ErrBadMessage) {
		t.Error("oversize stream accepted")
	}
	if _, _, err := EncodeFeedback(space, Feedback{Stream: 1, Delta: 3}); !errors.Is(err, ErrBadMessage) {
		t.Error("bad delta accepted")
	}
	if _, err := Decode(space, nil); !errors.Is(err, ErrBadMessage) {
		t.Error("empty frame accepted")
	}
}

func TestFeedbackBitsSaved(t *testing.T) {
	if got := FeedbackBitsSaved(core.MustSpace(6), 48); got != 42 {
		t.Errorf("FeedbackBitsSaved = %d, want 42", got)
	}
}

// testNet builds a source node and a sink node over a real simulated radio.
type testNet struct {
	eng    *sim.Engine
	source *Source
	sink   *Sink
}

func newTestNet(t *testing.T, score func(Reading) int) *testNet {
	t.Helper()
	eng := sim.NewEngine()
	src := xrand.NewSource(41).Child("reinforce", t.Name())
	med := radio.NewMedium(eng, radio.FullMesh{}, radio.DefaultParams(), src.Stream("m"))
	space := core.MustSpace(6)
	affCfg := aff.Config{Space: core.MustSpace(9), MTU: 27}

	mkDriver := func(id radio.NodeID) *node.AFFDriver {
		sel := core.NewUniformSelector(affCfg.Space, src.Stream("aff", fmt.Sprint(id)))
		d, err := node.NewAFF(med.MustAttach(id), affCfg, sel, node.AFFOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	srcDriver := mkDriver(1)
	sinkDriver := mkDriver(2)

	streamSel := core.NewUniformSelector(space, src.Stream("stream"))
	source, err := NewSource(SourceConfig{
		Space:           space,
		InitialInterval: time.Second,
		EpochReadings:   8,
	}, eng, srcDriver, streamSel, func() []byte { return []byte{0x17} })
	if err != nil {
		t.Fatal(err)
	}
	srcDriver.SetPacketHandler(source.OnPacket)

	sink, err := NewSink(SinkConfig{
		Space:            space,
		FeedbackInterval: 3 * time.Second,
		Window:           10 * time.Second,
	}, eng, sinkDriver, score)
	if err != nil {
		t.Fatal(err)
	}
	sinkDriver.SetPacketHandler(sink.OnPacket)

	return &testNet{eng: eng, source: source, sink: sink}
}

func TestInterestReinforcementSpeedsUpSource(t *testing.T) {
	net := newTestNet(t, func(Reading) int { return More })
	net.source.Start()
	net.sink.Start()
	net.eng.RunUntil(30 * time.Second)

	if net.source.Stats().ReadingsSent == 0 {
		t.Fatal("source sent nothing")
	}
	if net.sink.Stats().ReadingsHeard == 0 {
		t.Fatal("sink heard nothing")
	}
	if net.sink.Stats().FeedbackSent == 0 {
		t.Fatal("sink sent no feedback")
	}
	if net.source.Stats().MoreReceived == 0 {
		t.Fatal("source received no MORE feedback")
	}
	if got := net.source.Interval(); got >= time.Second {
		t.Errorf("interval = %v, want < initial 1s after MORE feedback", got)
	}
}

func TestNegativeFeedbackSlowsSource(t *testing.T) {
	net := newTestNet(t, func(Reading) int { return Less })
	net.source.Start()
	net.sink.Start()
	net.eng.RunUntil(30 * time.Second)

	if net.source.Stats().LessReceived == 0 {
		t.Fatal("source received no LESS feedback")
	}
	if got := net.source.Interval(); got <= time.Second {
		t.Errorf("interval = %v, want > initial 1s after LESS feedback", got)
	}
}

func TestNeutralScoreSendsNoFeedback(t *testing.T) {
	net := newTestNet(t, func(Reading) int { return 0 })
	net.source.Start()
	net.sink.Start()
	net.eng.RunUntil(20 * time.Second)
	if got := net.sink.Stats().FeedbackSent; got != 0 {
		t.Errorf("FeedbackSent = %d, want 0 for neutral policy", got)
	}
}

func TestIntervalClamping(t *testing.T) {
	space := core.MustSpace(6)
	eng := sim.NewEngine()
	sel := core.NewUniformSelector(space, xrand.NewSource(1).Stream("s"))
	sent := 0
	source, err := NewSource(SourceConfig{
		Space:           space,
		InitialInterval: 200 * time.Millisecond,
		MinInterval:     100 * time.Millisecond,
		MaxInterval:     400 * time.Millisecond,
	}, eng, senderFunc(func([]byte) error { sent++; return nil }), sel, func() []byte { return nil })
	if err != nil {
		t.Fatal(err)
	}
	source.Start()
	id := source.Stream()
	for i := 0; i < 10; i++ {
		source.HandleFeedback(Feedback{Stream: id, Delta: More})
	}
	if source.Interval() != 100*time.Millisecond {
		t.Errorf("interval = %v, want clamped to 100ms", source.Interval())
	}
	for i := 0; i < 10; i++ {
		source.HandleFeedback(Feedback{Stream: id, Delta: Less})
	}
	if source.Interval() != 400*time.Millisecond {
		t.Errorf("interval = %v, want clamped to 400ms", source.Interval())
	}
}

func TestForeignFeedbackIgnored(t *testing.T) {
	space := core.MustSpace(6)
	eng := sim.NewEngine()
	sel := core.NewUniformSelector(space, xrand.NewSource(2).Stream("s"))
	source, err := NewSource(SourceConfig{Space: space}, eng,
		senderFunc(func([]byte) error { return nil }), sel, func() []byte { return nil })
	if err != nil {
		t.Fatal(err)
	}
	source.Start()
	foreign := (source.Stream() + 1) % space.Size()
	before := source.Interval()
	source.HandleFeedback(Feedback{Stream: foreign, Delta: More})
	if source.Interval() != before {
		t.Error("foreign feedback changed the interval")
	}
	if source.Stats().ForeignIgnore != 1 {
		t.Errorf("ForeignIgnore = %d, want 1", source.Stats().ForeignIgnore)
	}
}

func TestEphemeralStreamIdentifiers(t *testing.T) {
	// Each epoch draws a fresh identifier: after several epochs the
	// source must have used multiple distinct streams.
	space := core.MustSpace(16)
	eng := sim.NewEngine()
	sel := core.NewUniformSelector(space, xrand.NewSource(3).Stream("s"))
	streams := make(map[uint64]bool)
	source, err := NewSource(SourceConfig{
		Space:           space,
		InitialInterval: time.Second,
		EpochReadings:   4,
	}, eng, senderFunc(func([]byte) error { return nil }), sel, func() []byte { return nil })
	if err != nil {
		t.Fatal(err)
	}
	source.Start()
	for i := 0; i < 40; i++ {
		streams[source.Stream()] = true
		eng.RunFor(time.Second)
	}
	if len(streams) < 5 {
		t.Errorf("saw %d distinct stream ids over 10 epochs, want several", len(streams))
	}
	if source.Stats().Epochs < 10 {
		t.Errorf("Epochs = %d, want >= 10", source.Stats().Epochs)
	}
}

func TestSourceStop(t *testing.T) {
	space := core.MustSpace(6)
	eng := sim.NewEngine()
	sel := core.NewUniformSelector(space, xrand.NewSource(4).Stream("s"))
	sent := 0
	source, err := NewSource(SourceConfig{Space: space, InitialInterval: time.Second}, eng,
		senderFunc(func([]byte) error { sent++; return nil }), sel, func() []byte { return nil })
	if err != nil {
		t.Fatal(err)
	}
	source.Start()
	eng.RunUntil(3500 * time.Millisecond)
	source.Stop()
	at := sent
	eng.RunUntil(10 * time.Second)
	if sent != at {
		t.Errorf("readings after Stop: %d -> %d", at, sent)
	}
}

func TestConstructorValidation(t *testing.T) {
	space := core.MustSpace(6)
	eng := sim.NewEngine()
	sel := core.NewUniformSelector(space, xrand.NewSource(5).Stream("s"))
	ok := senderFunc(func([]byte) error { return nil })
	if _, err := NewSource(SourceConfig{Space: space}, nil, ok, sel, func() []byte { return nil }); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := NewSource(SourceConfig{Space: core.MustSpace(7)}, eng, ok, sel, func() []byte { return nil }); err == nil {
		t.Error("space mismatch accepted")
	}
	if _, err := NewSink(SinkConfig{Space: space}, eng, nil, func(Reading) int { return 0 }); err == nil {
		t.Error("nil sender accepted")
	}
}

// senderFunc adapts a function to the Sender interface.
type senderFunc func(p []byte) error

func (f senderFunc) SendPacket(p []byte) error { return f(p) }
