package reinforce

import (
	"bytes"
	"testing"

	"retri/internal/core"
)

// FuzzDecode: the reading/feedback decoder must never panic and must
// round-trip whatever it accepts.
func FuzzDecode(f *testing.F) {
	space := core.MustSpace(6)
	rd, _, _ := EncodeReading(space, Reading{Stream: 5, Value: []byte{1}})
	fb, _, _ := EncodeFeedback(space, Feedback{Stream: 5, Delta: More})
	f.Add(rd, 6)
	f.Add(fb, 6)
	f.Add([]byte{}, 1)

	f.Fuzz(func(t *testing.T, p []byte, bits int) {
		b := ((bits % 32) + 32) % 32
		if b == 0 {
			b = 1
		}
		space := core.MustSpace(b)
		msg, err := Decode(space, p)
		if err != nil {
			return
		}
		switch m := msg.(type) {
		case *Reading:
			buf, _, err := EncodeReading(space, *m)
			if err != nil {
				t.Fatalf("re-encode reading: %v", err)
			}
			again, err := Decode(space, buf)
			if err != nil {
				t.Fatalf("re-decode: %v", err)
			}
			ra := again.(*Reading)
			if ra.Stream != m.Stream || !bytes.Equal(ra.Value, m.Value) {
				t.Fatal("reading round trip drift")
			}
		case *Feedback:
			if _, _, err := EncodeFeedback(space, *m); err != nil {
				t.Fatalf("re-encode feedback: %v", err)
			}
		default:
			t.Fatalf("unexpected type %T", msg)
		}
	})
}
