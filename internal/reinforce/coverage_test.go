package reinforce

import (
	"testing"
	"time"

	"retri/internal/core"
	"retri/internal/sim"
	"retri/internal/xrand"
)

func TestSinkStop(t *testing.T) {
	net := newTestNet(t, func(Reading) int { return More })
	net.source.Start()
	net.sink.Start()
	net.eng.RunUntil(10 * time.Second)
	sent := net.sink.Stats().FeedbackSent
	if sent == 0 {
		t.Fatal("no feedback before Stop")
	}
	net.sink.Stop()
	net.eng.RunUntil(30 * time.Second)
	if got := net.sink.Stats().FeedbackSent; got != sent {
		t.Errorf("feedback after Stop: %d -> %d", sent, got)
	}
}

func TestSinkStartIdempotent(t *testing.T) {
	net := newTestNet(t, func(Reading) int { return 0 })
	net.sink.Start()
	net.sink.Start()
	net.source.Start()
	net.eng.RunUntil(10 * time.Second)
	// With a double Start the rounds would double-schedule; heard counts
	// would still be fine but this guards the guard.
	if net.sink.Stats().ReadingsHeard == 0 {
		t.Error("sink heard nothing")
	}
}

func TestSourceStartIdempotent(t *testing.T) {
	space := core.MustSpace(6)
	eng := sim.NewEngine()
	sel := core.NewUniformSelector(space, xrand.NewSource(6).Stream("s"))
	sent := 0
	src, err := NewSource(SourceConfig{Space: space, InitialInterval: time.Second}, eng,
		senderFunc(func([]byte) error { sent++; return nil }), sel, func() []byte { return nil })
	if err != nil {
		t.Fatal(err)
	}
	src.Start()
	src.Start()
	eng.RunUntil(3500 * time.Millisecond)
	// One emission chain: 1 at t=0 plus one per second.
	if sent != 4 {
		t.Errorf("sent = %d, want 4 from a single chain", sent)
	}
	if src.Stats().Epochs != 1 {
		t.Errorf("Epochs = %d, want 1", src.Stats().Epochs)
	}
}

func TestSourceIgnoresPeerReadings(t *testing.T) {
	space := core.MustSpace(6)
	eng := sim.NewEngine()
	sel := core.NewUniformSelector(space, xrand.NewSource(7).Stream("s"))
	src, err := NewSource(SourceConfig{Space: space}, eng,
		senderFunc(func([]byte) error { return nil }), sel, func() []byte { return nil })
	if err != nil {
		t.Fatal(err)
	}
	src.Start()
	msg, _, err := EncodeReading(space, Reading{Stream: src.Stream(), Value: []byte{1}})
	if err != nil {
		t.Fatal(err)
	}
	before := src.Interval()
	src.OnPacket(msg)         // a reading, not feedback
	src.OnPacket([]byte{0xC}) // garbage
	src.OnPacket(nil)
	if src.Interval() != before {
		t.Error("non-feedback packets changed the interval")
	}
}

func TestSinkIgnoresFeedbackAndGarbage(t *testing.T) {
	net := newTestNet(t, func(Reading) int { return 0 })
	space := core.MustSpace(6)
	fb, _, err := EncodeFeedback(space, Feedback{Stream: 1, Delta: More})
	if err != nil {
		t.Fatal(err)
	}
	net.sink.OnPacket(fb)
	net.sink.OnPacket(nil)
	if net.sink.Stats().ReadingsHeard != 0 {
		t.Error("sink counted non-readings")
	}
}

func TestSinkWindowExpiry(t *testing.T) {
	net := newTestNet(t, func(Reading) int { return More })
	net.source.Start()
	net.eng.RunUntil(5 * time.Second)
	net.source.Stop()
	// Let the window lapse, then start feedback rounds: nothing recent to
	// reinforce.
	net.eng.RunUntil(30 * time.Second)
	net.sink.Start()
	net.eng.RunUntil(60 * time.Second)
	if got := net.sink.Stats().FeedbackSent; got != 0 {
		t.Errorf("FeedbackSent = %d for long-expired streams, want 0", got)
	}
}

func TestSourceConfigDefaults(t *testing.T) {
	cfg := SourceConfig{Space: core.MustSpace(6)}.withDefaults()
	if cfg.InitialInterval <= 0 || cfg.MinInterval <= 0 || cfg.MaxInterval <= 0 || cfg.EpochReadings <= 0 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	sc := SinkConfig{Space: core.MustSpace(6)}.withDefaults()
	if sc.FeedbackInterval <= 0 || sc.Window <= 0 {
		t.Errorf("sink defaults not applied: %+v", sc)
	}
}
