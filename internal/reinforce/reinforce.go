// Package reinforce implements the paper's first RETRI application
// (Section 6): interest reinforcement.
//
// "When a node transmits a sensor reading, its neighbors periodically send
// feedback to the transmitter indicating their level of interest. With
// unique addresses assigned to each transmitter, the feedback might take
// the form of a message such as 'Sensor #27.201.3.97, send more of your
// data.' An address is not actually needed in this context ... RETRI can
// serve this purpose equally well: 'Whoever just sent data with Identifier
// 4, send more of that.'"
//
// A Source emits readings tagged with an ephemeral stream identifier,
// drawing a fresh identifier every epoch (the transaction). A Sink scores
// readings and broadcasts feedback naming only the stream identifier. A
// source hearing feedback for its *current* identifier adjusts its rate.
// Identifier collisions make feedback ambiguous — two sources may both
// respond — which is a transient mis-tuning, repaired when the epoch ends
// and fresh identifiers are drawn.
package reinforce

import (
	"errors"
	"fmt"
	"time"

	"retri/internal/bitio"
	"retri/internal/core"
	"retri/internal/sim"
)

// Message kinds.
const (
	kindReading  = 0
	kindFeedback = 1
)

// Feedback deltas.
const (
	// More asks the stream's source to send more frequently.
	More = 1
	// Less asks it to back off.
	Less = 2
)

// ErrBadMessage is returned for undecodable messages.
var ErrBadMessage = errors.New("reinforce: malformed message")

// Reading is one sensor sample under an ephemeral stream identifier.
type Reading struct {
	Stream uint64
	Value  []byte
}

// Feedback names a stream identifier and a direction — no addresses.
type Feedback struct {
	Stream uint64
	Delta  int
}

// EncodeReading packs a reading message.
func EncodeReading(space core.Space, r Reading) ([]byte, int, error) {
	if !space.Contains(r.Stream) {
		return nil, 0, fmt.Errorf("%w: stream %d outside space", ErrBadMessage, r.Stream)
	}
	w := bitio.NewWriter()
	must(w, kindReading, 1)
	must(w, r.Stream, space.Bits())
	w.Align()
	w.WriteBytes(r.Value)
	return w.Bytes(), w.Len(), nil
}

// EncodeFeedback packs a feedback message. Its size — one bit, the stream
// identifier, and two delta bits — is the paper's point: compare with a
// 48-bit unique sensor address.
func EncodeFeedback(space core.Space, f Feedback) ([]byte, int, error) {
	if !space.Contains(f.Stream) {
		return nil, 0, fmt.Errorf("%w: stream %d outside space", ErrBadMessage, f.Stream)
	}
	if f.Delta != More && f.Delta != Less {
		return nil, 0, fmt.Errorf("%w: delta %d", ErrBadMessage, f.Delta)
	}
	w := bitio.NewWriter()
	must(w, kindFeedback, 1)
	must(w, f.Stream, space.Bits())
	must(w, uint64(f.Delta), 2)
	bits := w.Len()
	w.Align()
	return w.Bytes(), bits, nil
}

// Decode parses a message, returning *Reading or *Feedback.
func Decode(space core.Space, p []byte) (any, error) {
	r := bitio.NewReader(p)
	kind, err := r.ReadBits(1)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	stream, err := r.ReadBits(space.Bits())
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	if kind == kindReading {
		r.Align()
		value := make([]byte, r.Remaining()/8)
		if err := r.ReadBytes(value); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
		}
		return &Reading{Stream: stream, Value: value}, nil
	}
	delta, err := r.ReadBits(2)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	if delta != More && delta != Less {
		return nil, fmt.Errorf("%w: delta %d", ErrBadMessage, delta)
	}
	return &Feedback{Stream: stream, Delta: int(delta)}, nil
}

// FeedbackBitsSaved reports how many bits one feedback message saves by
// naming an H-bit ephemeral identifier instead of an addrBits-wide unique
// node address — the comparison the paper's example draws.
func FeedbackBitsSaved(space core.Space, addrBits int) int {
	return addrBits - space.Bits()
}

func must(w *bitio.Writer, v uint64, bits int) {
	if err := w.WriteBits(v, bits); err != nil {
		panic(err)
	}
}

// Sender is the transport both roles need (a node.Driver works).
type Sender interface {
	SendPacket(p []byte) error
}

// SourceConfig tunes a reading source.
type SourceConfig struct {
	// Space is the stream-identifier pool.
	Space core.Space
	// InitialInterval is the starting gap between readings.
	InitialInterval time.Duration
	// MinInterval and MaxInterval clamp adaptation.
	MinInterval time.Duration
	MaxInterval time.Duration
	// EpochReadings is how many readings share one stream identifier
	// before a fresh one is drawn (the transaction length).
	EpochReadings int
}

func (c SourceConfig) withDefaults() SourceConfig {
	if c.InitialInterval <= 0 {
		c.InitialInterval = time.Second
	}
	if c.MinInterval <= 0 {
		c.MinInterval = 100 * time.Millisecond
	}
	if c.MaxInterval <= 0 {
		c.MaxInterval = 30 * time.Second
	}
	if c.EpochReadings <= 0 {
		c.EpochReadings = 16
	}
	return c
}

// SourceStats counts a source's activity.
type SourceStats struct {
	ReadingsSent  int64
	Epochs        int64
	MoreReceived  int64
	LessReceived  int64
	ForeignIgnore int64 // feedback for identifiers this source does not own
}

// Source emits readings and adapts its rate to feedback.
type Source struct {
	cfg      SourceConfig
	clock    *sim.Engine
	sender   Sender
	sel      core.Selector
	sample   func() []byte
	interval time.Duration

	stream    uint64
	remaining int
	running   bool
	stats     SourceStats
}

// NewSource builds a source. sample supplies each reading's value bytes.
func NewSource(cfg SourceConfig, clock *sim.Engine, sender Sender, sel core.Selector, sample func() []byte) (*Source, error) {
	if clock == nil || sender == nil || sel == nil || sample == nil {
		return nil, errors.New("reinforce: nil dependency")
	}
	cfg = cfg.withDefaults()
	if sel.Space() != cfg.Space {
		return nil, errors.New("reinforce: selector space mismatch")
	}
	return &Source{
		cfg:      cfg,
		clock:    clock,
		sender:   sender,
		sel:      sel,
		sample:   sample,
		interval: cfg.InitialInterval,
	}, nil
}

// Interval reports the current sending interval.
func (s *Source) Interval() time.Duration { return s.interval }

// Stream reports the current stream identifier.
func (s *Source) Stream() uint64 { return s.stream }

// Stats returns a snapshot of counters.
func (s *Source) Stats() SourceStats { return s.stats }

// Start begins emitting readings; Stop ends it.
func (s *Source) Start() {
	if s.running {
		return
	}
	s.running = true
	s.newEpoch()
	s.emit()
}

// Stop halts emission before the next reading.
func (s *Source) Stop() { s.running = false }

func (s *Source) newEpoch() {
	s.stream = s.sel.Next()
	s.remaining = s.cfg.EpochReadings
	s.stats.Epochs++
}

func (s *Source) emit() {
	if !s.running {
		return
	}
	if s.remaining == 0 {
		s.newEpoch()
	}
	s.remaining--
	msg, _, err := EncodeReading(s.cfg.Space, Reading{Stream: s.stream, Value: s.sample()})
	if err == nil {
		if err := s.sender.SendPacket(msg); err == nil {
			s.stats.ReadingsSent++
		}
	}
	s.clock.Schedule(s.interval, s.emit)
}

// HandleFeedback adapts the rate if the feedback names the current stream.
// Feedback for foreign identifiers is ignored — the source cannot know (or
// need to know) who it was for.
func (s *Source) HandleFeedback(f Feedback) {
	if f.Stream != s.stream {
		s.stats.ForeignIgnore++
		return
	}
	switch f.Delta {
	case More:
		s.stats.MoreReceived++
		s.interval /= 2
		if s.interval < s.cfg.MinInterval {
			s.interval = s.cfg.MinInterval
		}
	case Less:
		s.stats.LessReceived++
		s.interval *= 2
		if s.interval > s.cfg.MaxInterval {
			s.interval = s.cfg.MaxInterval
		}
	}
}

// OnPacket dispatches a received packet: feedback adapts the source,
// readings are ignored (sources do not consume peer data).
func (s *Source) OnPacket(p []byte) {
	msg, err := Decode(s.cfg.Space, p)
	if err != nil {
		return
	}
	if f, ok := msg.(*Feedback); ok {
		s.HandleFeedback(*f)
	}
}

// SinkConfig tunes a feedback sink.
type SinkConfig struct {
	// Space is the stream-identifier pool.
	Space core.Space
	// FeedbackInterval spaces feedback rounds.
	FeedbackInterval time.Duration
	// Window is how recently a stream must have been heard to receive
	// feedback.
	Window time.Duration
}

func (c SinkConfig) withDefaults() SinkConfig {
	if c.FeedbackInterval <= 0 {
		c.FeedbackInterval = 5 * time.Second
	}
	if c.Window <= 0 {
		c.Window = 10 * time.Second
	}
	return c
}

// SinkStats counts a sink's activity.
type SinkStats struct {
	ReadingsHeard int64
	FeedbackSent  int64
	FeedbackBits  int64
}

// Sink scores readings and periodically reinforces interesting streams.
type Sink struct {
	cfg    SinkConfig
	clock  *sim.Engine
	sender Sender
	// score maps a reading to a delta: More, Less, or 0 for no feedback.
	score func(Reading) int

	heard   map[uint64]time.Duration
	verdict map[uint64]int
	running bool
	stats   SinkStats
}

// NewSink builds a sink with a scoring policy.
func NewSink(cfg SinkConfig, clock *sim.Engine, sender Sender, score func(Reading) int) (*Sink, error) {
	if clock == nil || sender == nil || score == nil {
		return nil, errors.New("reinforce: nil dependency")
	}
	return &Sink{
		cfg:     cfg.withDefaults(),
		clock:   clock,
		sender:  sender,
		score:   score,
		heard:   make(map[uint64]time.Duration),
		verdict: make(map[uint64]int),
	}, nil
}

// Stats returns a snapshot of counters.
func (k *Sink) Stats() SinkStats { return k.stats }

// Start begins periodic feedback rounds; Stop ends them.
func (k *Sink) Start() {
	if k.running {
		return
	}
	k.running = true
	k.clock.Schedule(k.cfg.FeedbackInterval, k.round)
}

// Stop halts feedback before the next round.
func (k *Sink) Stop() { k.running = false }

// OnPacket consumes a received packet: readings are scored, feedback from
// other sinks is ignored.
func (k *Sink) OnPacket(p []byte) {
	msg, err := Decode(k.cfg.Space, p)
	if err != nil {
		return
	}
	r, ok := msg.(*Reading)
	if !ok {
		return
	}
	k.stats.ReadingsHeard++
	k.heard[r.Stream] = k.clock.Now()
	k.verdict[r.Stream] = k.score(*r)
}

// round sends feedback for every interesting stream heard in the window.
func (k *Sink) round() {
	if !k.running {
		return
	}
	cutoff := k.clock.Now() - k.cfg.Window
	for stream, at := range k.heard {
		if at < cutoff {
			delete(k.heard, stream)
			delete(k.verdict, stream)
			continue
		}
		delta := k.verdict[stream]
		if delta != More && delta != Less {
			continue
		}
		msg, bits, err := EncodeFeedback(k.cfg.Space, Feedback{Stream: stream, Delta: delta})
		if err != nil {
			continue
		}
		if err := k.sender.SendPacket(msg); err == nil {
			k.stats.FeedbackSent++
			k.stats.FeedbackBits += int64(bits)
		}
	}
	k.clock.Schedule(k.cfg.FeedbackInterval, k.round)
}
