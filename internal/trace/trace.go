// Package trace provides structured event tracing for the simulator.
//
// The experiment harness works from aggregate counters; debugging a
// protocol or auditing one run's behaviour needs the event stream itself.
// Components emit Events into a Tracer; tracers compose (ring buffers for
// post-mortems, writers for live logs, counters for assertions, filters
// and fan-out for routing). Tracing is optional everywhere and free when
// disabled.
//
// # Ownership
//
// Tracers are not safe for concurrent use. Like the sim.Engine they run
// inside, every tracer — Ring, Counter, Buffer, a Multi fan-out and
// whatever it fans out to — belongs to exactly one simulation trial and
// must only be Recorded into from that trial's goroutine. Do NOT share one
// tracer between parallel trials (runner.Map with Parallelism > 1): Ring
// and Counter mutate unguarded state and the race detector will rightly
// object. The sanctioned cross-trial pattern is capture-then-merge: give
// each trial its own tracer (typically a Buffer and/or a metrics.FromTrace
// bridge composed with Multi), then after the runner returns fold the
// per-trial captures in trial-index order — metrics registries via
// metrics.Registry.Merge, buffered events via Buffer.Replay — so a
// parallel run aggregates byte-identically to a sequential one (see
// experiment.Obs).
package trace

import (
	"fmt"
	"io"
	"time"
)

// Kind classifies an event.
type Kind int

// Event kinds. Frame* events are emitted by the radio medium; higher
// layers may define additional tracers of their own on top of Custom.
const (
	// FrameSent: a frame was put on the air by Node.
	FrameSent Kind = iota + 1
	// FrameDelivered: Node received a frame from Peer.
	FrameDelivered
	// FrameCollided: a frame from Peer was destroyed at Node by an
	// overlapping transmission.
	FrameCollided
	// FrameHalfDuplex: Node missed a frame from Peer because it was
	// transmitting.
	FrameHalfDuplex
	// FrameRandomLoss: the loss model dropped a frame from Peer at Node.
	FrameRandomLoss
	// FrameNotHeard: Node was down or not listening.
	FrameNotHeard
	// FrameCorrupted: the fault model damaged a frame's payload on the way
	// to Node; the frame is still delivered (the checksum layer must catch
	// it).
	FrameCorrupted
	// NodeCrash: the fault engine crashed Node (radio down, soft state
	// wiped).
	NodeCrash
	// NodeRestart: the fault engine restarted Node.
	NodeRestart
	// LinkDown: the fault engine severed the Node—Peer link.
	LinkDown
	// LinkUp: the fault engine restored the Node—Peer link.
	LinkUp
	// Custom: anything a higher layer wants to record; see Note.
	Custom
)

var kindNames = map[Kind]string{
	FrameSent:       "sent",
	FrameDelivered:  "delivered",
	FrameCollided:   "collided",
	FrameHalfDuplex: "half-duplex",
	FrameRandomLoss: "random-loss",
	FrameNotHeard:   "not-heard",
	FrameCorrupted:  "corrupted",
	NodeCrash:       "node-crash",
	NodeRestart:     "node-restart",
	LinkDown:        "link-down",
	LinkUp:          "link-up",
	Custom:          "custom",
}

// String names the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one simulation occurrence.
type Event struct {
	// At is the virtual time of the event.
	At time.Duration
	// Kind classifies it.
	Kind Kind
	// Node is the primary party (receiver for reception outcomes,
	// transmitter for FrameSent).
	Node int
	// Peer is the counterpart (the transmitter for reception outcomes).
	Peer int
	// Bits is the on-air size where applicable.
	Bits int
	// Note carries free-form context for Custom events.
	Note string
}

// String renders one event as a log line.
func (e Event) String() string {
	switch e.Kind {
	case FrameSent:
		return fmt.Sprintf("%12v node %d %s (%d bits)", e.At, e.Node, e.Kind, e.Bits)
	case NodeCrash, NodeRestart:
		return fmt.Sprintf("%12v node %d %s", e.At, e.Node, e.Kind)
	case LinkDown, LinkUp:
		return fmt.Sprintf("%12v link %d—%d %s", e.At, e.Node, e.Peer, e.Kind)
	case Custom:
		return fmt.Sprintf("%12v node %d %s: %s", e.At, e.Node, e.Kind, e.Note)
	default:
		return fmt.Sprintf("%12v node %d %s from %d (%d bits)", e.At, e.Node, e.Kind, e.Peer, e.Bits)
	}
}

// Tracer consumes events. Implementations must be cheap; they run inside
// simulation events.
type Tracer interface {
	Record(Event)
}

// Ring is a fixed-capacity ring buffer of the most recent events — the
// flight recorder.
type Ring struct {
	buf     []Event
	next    int
	full    bool
	dropped int64
}

var _ Tracer = (*Ring)(nil)

// NewRing returns a ring holding the last capacity events (min 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Record stores the event, evicting the oldest when full.
func (r *Ring) Record(e Event) {
	if r.full {
		r.dropped++
	}
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	if !r.full {
		out := make([]Event, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Len reports the number of retained events.
func (r *Ring) Len() int {
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Dropped reports events evicted to make room.
func (r *Ring) Dropped() int64 { return r.dropped }

// Dump writes the retained events to w, one line each.
func (r *Ring) Dump(w io.Writer) error {
	for _, e := range r.Events() {
		if _, err := fmt.Fprintln(w, e); err != nil {
			return err
		}
	}
	return nil
}

// LineWriter streams events to an io.Writer as they happen.
type LineWriter struct {
	w io.Writer
}

var _ Tracer = (*LineWriter)(nil)

// NewLineWriter returns a tracer printing one line per event to w.
func NewLineWriter(w io.Writer) *LineWriter { return &LineWriter{w: w} }

// Record writes the event. Write errors are deliberately swallowed:
// tracing must never perturb a simulation.
func (lw *LineWriter) Record(e Event) {
	_, _ = fmt.Fprintln(lw.w, e)
}

// Counter tallies events by kind.
type Counter struct {
	counts map[Kind]int64
}

var _ Tracer = (*Counter)(nil)

// NewCounter returns an empty tally.
func NewCounter() *Counter { return &Counter{counts: make(map[Kind]int64)} }

// Record increments the kind's tally.
func (c *Counter) Record(e Event) { c.counts[e.Kind]++ }

// Count reports the tally for a kind.
func (c *Counter) Count(k Kind) int64 { return c.counts[k] }

// Total reports all events recorded.
func (c *Counter) Total() int64 {
	var n int64
	for _, v := range c.counts {
		n += v
	}
	return n
}

// Multi fans events out to several tracers.
func Multi(ts ...Tracer) Tracer { return multi(ts) }

type multi []Tracer

func (m multi) Record(e Event) {
	for _, t := range m {
		if t != nil {
			t.Record(e)
		}
	}
}

// Filter passes only the listed kinds through to next.
func Filter(next Tracer, kinds ...Kind) Tracer {
	set := make(map[Kind]bool, len(kinds))
	for _, k := range kinds {
		set[k] = true
	}
	return &filter{next: next, kinds: set}
}

type filter struct {
	next  Tracer
	kinds map[Kind]bool
}

func (f *filter) Record(e Event) {
	if f.kinds[e.Kind] && f.next != nil {
		f.next.Record(e)
	}
}
