package trace

import (
	"strings"
	"testing"
	"time"
)

func ev(k Kind, node int) Event {
	return Event{At: time.Second, Kind: k, Node: node, Peer: 9, Bits: 100}
}

func TestKindString(t *testing.T) {
	tests := map[Kind]string{
		FrameSent:       "sent",
		FrameDelivered:  "delivered",
		FrameCollided:   "collided",
		FrameHalfDuplex: "half-duplex",
		FrameRandomLoss: "random-loss",
		FrameNotHeard:   "not-heard",
		Custom:          "custom",
		Kind(99):        "kind(99)",
	}
	for k, want := range tests {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestEventString(t *testing.T) {
	sent := Event{At: time.Second, Kind: FrameSent, Node: 3, Bits: 256}
	if s := sent.String(); !strings.Contains(s, "node 3") || !strings.Contains(s, "256 bits") {
		t.Errorf("sent String() = %q", s)
	}
	rx := Event{At: time.Second, Kind: FrameDelivered, Node: 2, Peer: 3, Bits: 256}
	if s := rx.String(); !strings.Contains(s, "from 3") {
		t.Errorf("delivered String() = %q", s)
	}
	custom := Event{Kind: Custom, Node: 1, Note: "conflict id=7"}
	if s := custom.String(); !strings.Contains(s, "conflict id=7") {
		t.Errorf("custom String() = %q", s)
	}
}

func TestRingBelowCapacity(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 3; i++ {
		r.Record(ev(FrameSent, i))
	}
	events := r.Events()
	if len(events) != 3 || r.Len() != 3 {
		t.Fatalf("Len = %d, events = %d, want 3", r.Len(), len(events))
	}
	for i, e := range events {
		if e.Node != i {
			t.Errorf("events out of order: %v", events)
		}
	}
	if r.Dropped() != 0 {
		t.Errorf("Dropped = %d, want 0", r.Dropped())
	}
}

func TestRingWrapsOldestFirst(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Record(ev(FrameSent, i))
	}
	events := r.Events()
	if len(events) != 4 {
		t.Fatalf("retained %d, want 4", len(events))
	}
	for i, e := range events {
		if e.Node != 6+i {
			t.Fatalf("wrong retention window: %v", events)
		}
	}
	if r.Dropped() != 6 {
		t.Errorf("Dropped = %d, want 6", r.Dropped())
	}
}

func TestRingMinimumCapacity(t *testing.T) {
	r := NewRing(0)
	r.Record(ev(FrameSent, 1))
	r.Record(ev(FrameSent, 2))
	if r.Len() != 1 || r.Events()[0].Node != 2 {
		t.Error("capacity-0 ring should clamp to 1 and keep the latest")
	}
}

func TestRingDump(t *testing.T) {
	r := NewRing(4)
	r.Record(ev(FrameSent, 1))
	r.Record(ev(FrameDelivered, 2))
	var sb strings.Builder
	if err := r.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "\n") != 2 {
		t.Errorf("Dump produced %q", out)
	}
}

func TestLineWriter(t *testing.T) {
	var sb strings.Builder
	lw := NewLineWriter(&sb)
	lw.Record(ev(FrameCollided, 5))
	if !strings.Contains(sb.String(), "collided") {
		t.Errorf("LineWriter output %q", sb.String())
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Record(ev(FrameSent, 1))
	c.Record(ev(FrameSent, 2))
	c.Record(ev(FrameCollided, 3))
	if c.Count(FrameSent) != 2 || c.Count(FrameCollided) != 1 || c.Count(FrameDelivered) != 0 {
		t.Errorf("counts wrong: sent=%d collided=%d", c.Count(FrameSent), c.Count(FrameCollided))
	}
	if c.Total() != 3 {
		t.Errorf("Total = %d, want 3", c.Total())
	}
}

func TestMultiFansOut(t *testing.T) {
	a, b := NewCounter(), NewCounter()
	m := Multi(a, nil, b)
	m.Record(ev(FrameSent, 1))
	if a.Total() != 1 || b.Total() != 1 {
		t.Error("Multi did not reach all tracers")
	}
}

func TestFilterPassesOnlyListedKinds(t *testing.T) {
	c := NewCounter()
	f := Filter(c, FrameCollided, FrameRandomLoss)
	f.Record(ev(FrameSent, 1))
	f.Record(ev(FrameCollided, 2))
	f.Record(ev(FrameRandomLoss, 3))
	if c.Count(FrameSent) != 0 || c.Count(FrameCollided) != 1 || c.Count(FrameRandomLoss) != 1 {
		t.Error("filter misrouted events")
	}
	// nil next must not panic.
	Filter(nil, FrameSent).Record(ev(FrameSent, 1))
}
