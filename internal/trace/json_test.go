package trace

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestJSONWriterOneObjectPerLine(t *testing.T) {
	var sb strings.Builder
	jw := NewJSONWriter(&sb)
	jw.Record(Event{At: 1500 * time.Microsecond, Kind: FrameSent, Node: 3, Bits: 256})
	jw.Record(Event{At: 2 * time.Millisecond, Kind: FrameDelivered, Node: 2, Peer: 3, Bits: 256})
	jw.Record(Event{Kind: Custom, Node: 1, Note: "conflict id=7"})

	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("wrote %d lines, want 3: %q", len(lines), sb.String())
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0 is not JSON: %v", err)
	}
	if first["at_ns"] != float64(1500000) || first["kind"] != "sent" || first["node"] != float64(3) || first["bits"] != float64(256) {
		t.Errorf("line 0 = %v", first)
	}
	if _, ok := first["peer"]; ok {
		t.Errorf("zero peer should be omitted: %v", first)
	}
	var last map[string]any
	if err := json.Unmarshal([]byte(lines[2]), &last); err != nil {
		t.Fatalf("line 2 is not JSON: %v", err)
	}
	if last["note"] != "conflict id=7" {
		t.Errorf("line 2 = %v", last)
	}
}

func TestJSONWriterSwallowsWriteErrors(t *testing.T) {
	jw := NewJSONWriter(failWriter{})
	jw.Record(ev(FrameSent, 1)) // must not panic
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) {
	return 0, errFail
}

var errFail = &failError{}

type failError struct{}

func (*failError) Error() string { return "fail" }

func TestBufferKeepsBeginning(t *testing.T) {
	b := &Buffer{Max: 3}
	for i := 0; i < 5; i++ {
		b.Record(ev(FrameSent, i))
	}
	if b.Len() != 3 || b.Dropped() != 2 {
		t.Fatalf("Len/Dropped = %d/%d, want 3/2", b.Len(), b.Dropped())
	}
	for i, e := range b.Events() {
		if e.Node != i {
			t.Errorf("buffer did not keep the beginning: %v", b.Events())
		}
	}
}

func TestBufferUnbounded(t *testing.T) {
	b := &Buffer{}
	for i := 0; i < 100; i++ {
		b.Record(ev(FrameSent, i))
	}
	if b.Len() != 100 || b.Dropped() != 0 {
		t.Errorf("Len/Dropped = %d/%d, want 100/0", b.Len(), b.Dropped())
	}
}

func TestBufferReplay(t *testing.T) {
	b := &Buffer{}
	b.Record(ev(FrameSent, 1))
	b.Record(ev(FrameCollided, 2))
	c := NewCounter()
	b.Replay(c)
	if c.Count(FrameSent) != 1 || c.Count(FrameCollided) != 1 {
		t.Error("Replay did not forward all events")
	}
	b.Replay(nil) // must not panic
}
