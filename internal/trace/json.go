package trace

import (
	"encoding/json"
	"io"
)

// jsonEvent is the JSONL wire form of an Event. Virtual time is exported
// as integer nanoseconds so downstream tools need no duration parsing.
type jsonEvent struct {
	AtNS int64  `json:"at_ns"`
	Kind string `json:"kind"`
	Node int    `json:"node"`
	Peer int    `json:"peer,omitempty"`
	Bits int    `json:"bits,omitempty"`
	Note string `json:"note,omitempty"`
}

// JSONWriter streams events to w as JSON Lines, one object per event —
// the machine-readable sibling of LineWriter for -trace-out exports.
type JSONWriter struct {
	enc *json.Encoder
}

var _ Tracer = (*JSONWriter)(nil)

// NewJSONWriter returns a tracer encoding one JSON object per line to w.
// Callers that hand in a bufio.Writer are responsible for flushing it.
func NewJSONWriter(w io.Writer) *JSONWriter {
	return &JSONWriter{enc: json.NewEncoder(w)}
}

// Record encodes the event. Write errors are deliberately swallowed, as in
// LineWriter: tracing must never perturb a simulation.
func (jw *JSONWriter) Record(e Event) {
	_ = jw.enc.Encode(jsonEvent{
		AtNS: int64(e.At),
		Kind: e.Kind.String(),
		Node: e.Node,
		Peer: e.Peer,
		Bits: e.Bits,
		Note: e.Note,
	})
}

// Buffer retains events in arrival order for later replay — the per-trial
// capture half of the capture-then-merge pattern (see the package
// comment). Unlike Ring it keeps the stream's beginning: once Max events
// are held (unbounded when Max <= 0) later events are counted as dropped
// rather than evicting earlier ones, since a truncated trace should keep
// the setup phase it is usually read for.
type Buffer struct {
	// Max bounds retained events; <= 0 means unbounded.
	Max     int
	events  []Event
	dropped int64
}

var _ Tracer = (*Buffer)(nil)

// Record retains the event, or counts it as dropped when full.
func (b *Buffer) Record(e Event) {
	if b.Max > 0 && len(b.events) >= b.Max {
		b.dropped++
		return
	}
	b.events = append(b.events, e)
}

// Events returns the retained events in arrival order (not a copy).
func (b *Buffer) Events() []Event { return b.events }

// Len reports the number of retained events.
func (b *Buffer) Len() int { return len(b.events) }

// Dropped reports events discarded after the buffer filled.
func (b *Buffer) Dropped() int64 { return b.dropped }

// Replay feeds the retained events, in order, into next.
func (b *Buffer) Replay(next Tracer) {
	if next == nil {
		return
	}
	for _, e := range b.events {
		next.Record(e)
	}
}
