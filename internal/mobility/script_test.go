package mobility

import (
	"strings"
	"testing"
	"time"

	"retri/internal/radio"
	"retri/internal/sim"
)

func TestParseScript(t *testing.T) {
	s, err := ParseScriptString(`
# partition-and-merge: group B walks away, then back
10s  walk 4 90 50 2.5   # B leader heads east
5s   move 1 10 20
20s  sleep 2
30s  wake 2
40s  leave 3
50s  join 3 45 45
`)
	if err != nil {
		t.Fatalf("ParseScript: %v", err)
	}
	if len(s.Actions) != 6 {
		t.Fatalf("parsed %d actions, want 6", len(s.Actions))
	}
	// Stable-sorted by time: the 5s move comes first despite line order.
	if s.Actions[0].Op != OpMove || s.Actions[0].At != 5*time.Second {
		t.Errorf("first action = %+v, want the 5s move", s.Actions[0])
	}
	w := s.Actions[1]
	if w.Op != OpWalk || w.Node != 4 || w.X != 90 || w.Y != 50 || w.Speed != 2.5 {
		t.Errorf("walk parsed as %+v", w)
	}
	if got := s.MaxNode(); got != 4 {
		t.Errorf("MaxNode = %d, want 4", got)
	}
	if got := (Script{}).MaxNode(); got != -1 {
		t.Errorf("empty MaxNode = %d, want -1", got)
	}
}

func TestParseScriptRejectsMalformed(t *testing.T) {
	cases := []string{
		"10s",                 // no action
		"10s move",            // no node
		"nonsense move 1 2 3", // bad time
		"-5s move 1 2 3",      // negative time
		"10s move -1 2 3",     // negative node
		"10s move 1 2",        // missing y
		"10s move 1 2 3 4",    // extra arg
		"10s walk 1 2 3",      // missing speed
		"10s walk 1 2 3 0",    // zero speed
		"10s walk 1 2 3 -1",   // negative speed
		"10s walk 1 2 3 +Inf", // infinite speed
		"10s move 1 NaN 3",    // NaN coordinate
		"10s join 1",          // missing position
		"10s leave 1 2",       // extra arg
		"10s sleep 1 2",       // extra arg
		"10s explode 1",       // unknown action
	}
	for _, text := range cases {
		if _, err := ParseScriptString(text); err == nil {
			t.Errorf("script %q accepted", text)
		} else if !strings.Contains(err.Error(), "line 1") {
			t.Errorf("script %q error lacks line number: %v", text, err)
		}
	}
}

func TestDirectorAppliesScript(t *testing.T) {
	eng := sim.NewEngine()
	disk := radio.NewUnitDisk(10)
	ch := NewChurner(eng, horizon)
	ch.SetDisk(disk)
	nodes := map[radio.NodeID]*stubNode{}
	for id := radio.NodeID(0); id < 3; id++ {
		n := &stubNode{up: true}
		nodes[id] = n
		ch.Register(id, n)
		disk.Place(id, radio.Point{X: float64(id), Y: 0})
	}
	d := NewDirector(eng, disk, ch, 0, horizon)
	s, err := ParseScriptString(`
1s  move 0 5 5
2s  walk 1 21 0 2      # 20 units at 2/s: arrives at 12s
5s  sleep 2
8s  wake 2
20s leave 1
30s join 1 7 7
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Apply(s); err != nil {
		t.Fatal(err)
	}

	eng.RunUntil(1500 * time.Millisecond)
	if p, _ := disk.Position(0); p != (radio.Point{X: 5, Y: 5}) {
		t.Errorf("move put node 0 at %v", p)
	}
	eng.RunUntil(7 * time.Second) // mid-walk, node 2 asleep
	if p, _ := disk.Position(1); p.X <= 1 || p.X >= 21 {
		t.Errorf("node 1 mid-walk at %v, want strictly between start and goal", p)
	}
	if ch.Awake(2) || nodes[2].up {
		t.Error("node 2 should be asleep at 7s")
	}
	eng.RunUntil(15 * time.Second)
	if p, _ := disk.Position(1); p != (radio.Point{X: 21, Y: 0}) {
		t.Errorf("walk ended at %v, want (21, 0)", p)
	}
	if !ch.Awake(2) {
		t.Error("node 2 should be awake again at 15s")
	}
	eng.RunUntil(25 * time.Second)
	if _, ok := disk.Position(1); ok {
		t.Error("node 1 still placed after leave")
	}
	eng.Run()
	if p, ok := disk.Position(1); !ok || p != (radio.Point{X: 7, Y: 7}) {
		t.Errorf("node 1 after rejoin at %v, %v", p, ok)
	}
}

// TestDirectorPreemptsWalk: a later order for the same node cancels its
// in-progress glide — the node changes course from wherever it is.
func TestDirectorPreemptsWalk(t *testing.T) {
	eng := sim.NewEngine()
	disk := radio.NewUnitDisk(10)
	disk.Place(0, radio.Point{})
	d := NewDirector(eng, disk, nil, 0, horizon)
	s, err := ParseScriptString(`
0s walk 0 100 0 1     # would take 100s
5s move 0 -3 -3       # preempts at 5s
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Apply(s); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if p, _ := disk.Position(0); p != (radio.Point{X: -3, Y: -3}) {
		t.Errorf("final position %v, want the preempting move target", p)
	}
	if len(d.walkers) != 0 {
		t.Errorf("%d walkers leaked", len(d.walkers))
	}
}

func TestDirectorValidatesAgainstChurner(t *testing.T) {
	eng := sim.NewEngine()
	disk := radio.NewUnitDisk(10)
	s, err := ParseScriptString("1s sleep 0")
	if err != nil {
		t.Fatal(err)
	}
	d := NewDirector(eng, disk, nil, 0, horizon)
	if err := d.Apply(s); err == nil {
		t.Error("membership op accepted without a churner")
	}
	ch := NewChurner(eng, horizon)
	d2 := NewDirector(eng, disk, ch, 0, horizon)
	if err := d2.Apply(s); err == nil {
		t.Error("membership op accepted for an unregistered node")
	}
}

// TestDirectorWalkUnplacedNodePlacesAtGoal documents the edge case: a
// scripted walk of a node with no position is a placement at the goal.
func TestDirectorWalkUnplacedNodePlacesAtGoal(t *testing.T) {
	eng := sim.NewEngine()
	disk := radio.NewUnitDisk(10)
	d := NewDirector(eng, disk, nil, 0, horizon)
	s, _ := ParseScriptString("1s walk 5 8 9 1")
	if err := d.Apply(s); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if p, ok := disk.Position(5); !ok || p != (radio.Point{X: 8, Y: 9}) {
		t.Errorf("unplaced walk target at %v, %v", p, ok)
	}
}
