// Package mobility is the deterministic dynamics engine: it drives
// radio.UnitDisk positions and node membership from simulation-engine
// timers fed by labelled xrand streams, making the "dynamic" half of the
// paper's title measurable. Three mechanisms compose freely:
//
//   - Movement models: random-waypoint (StartWaypoint) for independent
//     node motion and reference-point group mobility (StartGroup) for
//     clusters that roam together — the two standard sensor-network
//     mobility abstractions.
//   - Churn (Churner): join/leave and sleep/wake duty-cycles, reusing the
//     crash/restart semantics from internal/faults — a node that sleeps or
//     leaves loses its RAM state and relearns the channel on return,
//     exactly the regime RETRI's stateless identifiers are designed for.
//   - Scripts (ParseScript + Director): a parsed, validated schedule for
//     reproducible partition-and-merge scenarios, mirroring faults.Script.
//
// Everything runs on virtual time from explicit RNG streams: a (seed,
// config) pair reproduces the same trajectories exactly, so mobility is
// part of a trial's definition and never perturbs determinism.
package mobility

import (
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"retri/internal/radio"
	"retri/internal/sim"
)

// DefaultTick is the position-update interval for moving nodes. 100ms at
// sensor speeds (~1 m/s) moves a node ~0.1 units per update — far finer
// than a radio range, so connectivity changes are not stair-stepped.
const DefaultTick = 100 * time.Millisecond

// Area is the rectangular deployment region [0, W] × [0, H].
type Area struct {
	W, H float64
}

func (a Area) validate() error {
	if !(a.W > 0) || !(a.H > 0) || math.IsInf(a.W, 0) || math.IsInf(a.H, 0) {
		return fmt.Errorf("mobility: area %vx%v must have positive finite sides", a.W, a.H)
	}
	return nil
}

// randPoint draws a uniform position in the area.
func (a Area) randPoint(rng *rand.Rand) radio.Point {
	return radio.Point{X: rng.Float64() * a.W, Y: rng.Float64() * a.H}
}

// clamp pulls a point back inside the area (group members offset from a
// reference near the boundary would otherwise leave it).
func (a Area) clamp(p radio.Point) radio.Point {
	return radio.Point{X: math.Min(math.Max(p.X, 0), a.W), Y: math.Min(math.Max(p.Y, 0), a.H)}
}

// WaypointConfig parameterizes the random-waypoint model: pick a uniform
// destination, glide there at a uniform speed from [MinSpeed, MaxSpeed],
// pause, repeat.
type WaypointConfig struct {
	// Area bounds all positions.
	Area Area
	// Origin shifts the roaming region to [Origin.X, Origin.X+Area.W] ×
	// [Origin.Y, Origin.Y+Area.H], so a walker (or a group reference) can
	// be confined to a sub-region of a larger field — e.g. a dense cluster
	// roaming only the core of a deployment. The zero value keeps the
	// legacy origin-anchored region.
	Origin radio.Point
	// MinSpeed and MaxSpeed bound the per-leg speed in units per second.
	MinSpeed, MaxSpeed float64
	// Pause is the dwell time at each waypoint (0 for continuous motion).
	Pause time.Duration
	// Tick is the position-update interval (default DefaultTick).
	Tick time.Duration
}

func (c WaypointConfig) withDefaults() WaypointConfig {
	if c.Tick <= 0 {
		c.Tick = DefaultTick
	}
	return c
}

func (c WaypointConfig) validate() error {
	if err := c.Area.validate(); err != nil {
		return err
	}
	if !(c.MinSpeed > 0) || c.MaxSpeed < c.MinSpeed || math.IsInf(c.MaxSpeed, 0) {
		return fmt.Errorf("mobility: speed range [%v, %v] must be positive, finite and ordered", c.MinSpeed, c.MaxSpeed)
	}
	if c.Pause < 0 {
		return fmt.Errorf("mobility: negative pause %v", c.Pause)
	}
	if math.IsInf(c.Origin.X, 0) || math.IsInf(c.Origin.Y, 0) ||
		math.IsNaN(c.Origin.X) || math.IsNaN(c.Origin.Y) {
		return fmt.Errorf("mobility: origin %v must be finite", c.Origin)
	}
	return nil
}

// randPoint draws a uniform position in the (origin-shifted) roaming
// region.
func (c WaypointConfig) randPoint(rng *rand.Rand) radio.Point {
	p := c.Area.randPoint(rng)
	return radio.Point{X: p.X + c.Origin.X, Y: p.Y + c.Origin.Y}
}

// clamp pulls a point back inside the (origin-shifted) roaming region.
func (c WaypointConfig) clamp(p radio.Point) radio.Point {
	q := c.Area.clamp(radio.Point{X: p.X - c.Origin.X, Y: p.Y - c.Origin.Y})
	return radio.Point{X: q.X + c.Origin.X, Y: q.Y + c.Origin.Y}
}

// speed draws a uniform per-leg speed.
func (c WaypointConfig) speed(rng *rand.Rand) float64 {
	return c.MinSpeed + rng.Float64()*(c.MaxSpeed-c.MinSpeed)
}

// Walker is a handle on one node's (or one group reference's) motion.
type Walker struct {
	eng     *sim.Engine
	tick    time.Duration
	horizon time.Duration
	timer   *sim.Timer
	stopped bool

	// place is called with the interpolated position on every tick.
	place func(radio.Point)
	// pos is the walker's current interpolated position.
	pos radio.Point
}

// Stop cancels all pending motion; the node freezes where it is.
func (w *Walker) Stop() {
	w.stopped = true
	if w.timer != nil {
		w.timer.Cancel()
		w.timer = nil
	}
}

// Position returns the walker's current interpolated position.
func (w *Walker) Position() radio.Point { return w.pos }

// glide moves the walker in a straight line to dst at speed (units/sec),
// placing an interpolated position every tick, then calls then. Motion
// freezes at the horizon so a bounded experiment's event queue drains.
func (w *Walker) glide(dst radio.Point, speed float64, then func()) {
	from := w.pos
	dist := from.Dist(dst)
	if dist == 0 || speed <= 0 {
		w.pos = dst
		w.place(dst)
		if then != nil {
			then()
		}
		return
	}
	total := time.Duration(float64(time.Second) * dist / speed)
	start := w.eng.Now()
	var step func()
	step = func() {
		w.timer = nil
		if w.stopped {
			return
		}
		elapsed := w.eng.Now() - start
		if elapsed >= total {
			w.pos = dst
			w.place(dst)
			if then != nil {
				then()
			}
			return
		}
		f := float64(elapsed) / float64(total)
		w.pos = radio.Point{X: from.X + f*(dst.X-from.X), Y: from.Y + f*(dst.Y-from.Y)}
		w.place(w.pos)
		next := w.tick
		if rem := total - elapsed; rem < next {
			next = rem
		}
		if w.eng.Now()+next >= w.horizon {
			return // freeze mid-leg rather than schedule past the horizon
		}
		w.timer = w.eng.Schedule(next, step)
	}
	step()
}

// loop runs the waypoint cycle: choose, glide, pause, repeat, until the
// horizon.
func (w *Walker) loop(cfg WaypointConfig, rng *rand.Rand) {
	if w.stopped || w.eng.Now() >= w.horizon {
		return
	}
	dst := cfg.randPoint(rng)
	w.glide(dst, cfg.speed(rng), func() {
		if cfg.Pause > 0 {
			if w.eng.Now()+cfg.Pause >= w.horizon {
				return
			}
			w.timer = w.eng.Schedule(cfg.Pause, func() {
				w.timer = nil
				w.loop(cfg, rng)
			})
			return
		}
		w.loop(cfg, rng)
	})
}

// StartWaypoint starts the random-waypoint model for one node, driving
// disk.Place from engine timers until the horizon. A node not yet placed
// starts at a uniform random position. Use one labelled rng stream per
// node (e.g. src.Stream("mobility", fmt.Sprint(id))) so trajectories are
// independent and reproducible.
func StartWaypoint(eng *sim.Engine, disk *radio.UnitDisk, id radio.NodeID, cfg WaypointConfig, rng *rand.Rand, horizon time.Duration) (*Walker, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if eng == nil || disk == nil || rng == nil {
		return nil, fmt.Errorf("mobility: StartWaypoint needs an engine, a disk and an rng")
	}
	start, ok := disk.Position(id)
	if !ok {
		start = cfg.randPoint(rng)
	}
	w := &Walker{
		eng:     eng,
		tick:    cfg.Tick,
		horizon: horizon,
		pos:     start,
		place:   func(p radio.Point) { disk.Place(id, p) },
	}
	w.place(start)
	w.loop(cfg, rng)
	return w, nil
}
