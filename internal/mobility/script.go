package mobility

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"retri/internal/radio"
	"retri/internal/sim"
)

// Op is a scripted mobility/churn action.
type Op string

// Script operations.
const (
	// OpMove teleports a node: <when> move <node> <x> <y>.
	OpMove Op = "move"
	// OpWalk glides a node in a straight line: <when> walk <node> <x> <y> <speed>.
	OpWalk Op = "walk"
	// OpJoin admits a node at a position: <when> join <node> <x> <y>.
	OpJoin Op = "join"
	// OpLeave removes a node: <when> leave <node>.
	OpLeave Op = "leave"
	// OpSleep duty-cycles a node off: <when> sleep <node>.
	OpSleep Op = "sleep"
	// OpWake duty-cycles a node on: <when> wake <node>.
	OpWake Op = "wake"
)

// Action is one scripted step.
type Action struct {
	// At is the absolute virtual time the action fires.
	At time.Duration
	// Op selects the action.
	Op Op
	// Node is the target.
	Node radio.NodeID
	// X, Y is the destination (move, walk, join).
	X, Y float64
	// Speed is the walk speed in units per second (walk only).
	Speed float64
	// Line is the 1-based script line, for error messages.
	Line int
}

// Script is a parsed, validated mobility schedule.
type Script struct {
	Actions []Action
}

// ParseScript reads a mobility script: one action per line, `#` comments
// and blank lines ignored. Grammar (times are Go durations, coordinates
// finite floats, speeds positive):
//
//	<when> move  <node> <x> <y>
//	<when> walk  <node> <x> <y> <speed>
//	<when> join  <node> <x> <y>
//	<when> leave <node>
//	<when> sleep <node>
//	<when> wake  <node>
//
// Actions are stable-sorted by time, so same-instant actions keep script
// order — a partition-and-merge scenario reads top to bottom.
func ParseScript(r io.Reader) (Script, error) {
	var s Script
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = strings.TrimSpace(text[:i])
		}
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 3 {
			return Script{}, fmt.Errorf("mobility: script line %d: want \"<time> <action> <node> ...\", got %q", line, text)
		}
		at, err := time.ParseDuration(fields[0])
		if err != nil {
			return Script{}, fmt.Errorf("mobility: script line %d: bad time %q: %v", line, fields[0], err)
		}
		if at < 0 {
			return Script{}, fmt.Errorf("mobility: script line %d: negative time %q", line, fields[0])
		}
		a := Action{At: at, Op: Op(fields[1]), Line: line}
		a.Node, err = parseNode(fields[2])
		if err != nil {
			return Script{}, fmt.Errorf("mobility: script line %d: %v", line, err)
		}
		args := fields[3:]
		switch a.Op {
		case OpMove, OpJoin:
			if len(args) != 2 {
				return Script{}, fmt.Errorf("mobility: script line %d: %s wants <x> <y>, got %d args", line, a.Op, len(args))
			}
			if a.X, err = parseCoord(args[0]); err != nil {
				return Script{}, fmt.Errorf("mobility: script line %d: %v", line, err)
			}
			if a.Y, err = parseCoord(args[1]); err != nil {
				return Script{}, fmt.Errorf("mobility: script line %d: %v", line, err)
			}
		case OpWalk:
			if len(args) != 3 {
				return Script{}, fmt.Errorf("mobility: script line %d: walk wants <x> <y> <speed>, got %d args", line, len(args))
			}
			if a.X, err = parseCoord(args[0]); err != nil {
				return Script{}, fmt.Errorf("mobility: script line %d: %v", line, err)
			}
			if a.Y, err = parseCoord(args[1]); err != nil {
				return Script{}, fmt.Errorf("mobility: script line %d: %v", line, err)
			}
			a.Speed, err = strconv.ParseFloat(args[2], 64)
			if err != nil || !(a.Speed > 0) || math.IsInf(a.Speed, 0) {
				return Script{}, fmt.Errorf("mobility: script line %d: bad speed %q (want a positive finite number)", line, args[2])
			}
		case OpLeave, OpSleep, OpWake:
			if len(args) != 0 {
				return Script{}, fmt.Errorf("mobility: script line %d: %s wants only a node ID, got %d extra args", line, a.Op, len(args))
			}
		default:
			return Script{}, fmt.Errorf("mobility: script line %d: unknown action %q (want move, walk, join, leave, sleep or wake)", line, fields[1])
		}
		s.Actions = append(s.Actions, a)
	}
	if err := sc.Err(); err != nil {
		return Script{}, fmt.Errorf("mobility: reading script: %w", err)
	}
	sort.SliceStable(s.Actions, func(i, j int) bool { return s.Actions[i].At < s.Actions[j].At })
	return s, nil
}

// ParseScriptString is ParseScript over a string.
func ParseScriptString(text string) (Script, error) {
	return ParseScript(strings.NewReader(text))
}

// MaxNode returns the largest node ID the script references, or -1 for an
// empty script — used to validate a script against an experiment's
// population before running it.
func (s Script) MaxNode() radio.NodeID {
	max := radio.NodeID(-1)
	for _, a := range s.Actions {
		if a.Node > max {
			max = a.Node
		}
	}
	return max
}

func parseNode(s string) (radio.NodeID, error) {
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad node ID %q (want a non-negative integer)", s)
	}
	return radio.NodeID(n), nil
}

func parseCoord(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("bad coordinate %q (want a finite number)", s)
	}
	return v, nil
}

// Director applies a mobility script to one trial: positions on a unit
// disk, membership through a Churner. The churner is only required when
// the script uses membership ops.
type Director struct {
	eng     *sim.Engine
	disk    *radio.UnitDisk
	churner *Churner
	tick    time.Duration
	horizon time.Duration

	// walkers tracks in-progress scripted walks so a later action on the
	// same node preempts the current glide, like a fresh order to a robot.
	walkers map[radio.NodeID]*Walker
}

// NewDirector returns a director driving disk (and churner, which may be
// nil for pure-movement scripts) until the horizon. tick <= 0 selects
// DefaultTick.
func NewDirector(eng *sim.Engine, disk *radio.UnitDisk, churner *Churner, tick time.Duration, horizon time.Duration) *Director {
	if tick <= 0 {
		tick = DefaultTick
	}
	return &Director{
		eng:     eng,
		disk:    disk,
		churner: churner,
		tick:    tick,
		horizon: horizon,
		walkers: make(map[radio.NodeID]*Walker),
	}
}

// Apply validates the script against this director's capabilities and
// schedules every action at its absolute virtual time. Call it before
// running the engine.
func (d *Director) Apply(s Script) error {
	for _, a := range s.Actions {
		switch a.Op {
		case OpJoin, OpLeave, OpSleep, OpWake:
			if d.churner == nil {
				return fmt.Errorf("mobility: script line %d: %s needs a churner", a.Line, a.Op)
			}
			if _, ok := d.churner.nodes[a.Node]; !ok {
				return fmt.Errorf("mobility: script line %d: node %d not registered with the churner", a.Line, a.Node)
			}
		}
	}
	for _, a := range s.Actions {
		a := a
		d.eng.ScheduleAt(a.At, func() { d.run(a) })
	}
	return nil
}

// run executes one action at its scheduled instant.
func (d *Director) run(a Action) {
	// Any new order for a node cancels its in-progress scripted walk.
	if w, ok := d.walkers[a.Node]; ok {
		w.Stop()
		delete(d.walkers, a.Node)
	}
	switch a.Op {
	case OpMove:
		d.disk.Place(a.Node, radio.Point{X: a.X, Y: a.Y})
	case OpWalk:
		dst := radio.Point{X: a.X, Y: a.Y}
		from, ok := d.disk.Position(a.Node)
		if !ok {
			// Walking an unplaced node is a placement at the destination.
			d.disk.Place(a.Node, dst)
			return
		}
		w := &Walker{
			eng:     d.eng,
			tick:    d.tick,
			horizon: d.horizon,
			pos:     from,
			place:   func(p radio.Point) { d.disk.Place(a.Node, p) },
		}
		d.walkers[a.Node] = w
		w.glide(dst, a.Speed, func() { delete(d.walkers, a.Node) })
	case OpJoin:
		_ = d.churner.Join(a.Node, radio.Point{X: a.X, Y: a.Y})
	case OpLeave:
		_ = d.churner.Leave(a.Node)
	case OpSleep:
		_ = d.churner.Sleep(a.Node)
	case OpWake:
		_ = d.churner.Wake(a.Node)
	}
}
