package mobility

import (
	"math"
	"testing"
	"time"

	"retri/internal/radio"
	"retri/internal/sim"
	"retri/internal/xrand"
)

const horizon = 60 * time.Second

func TestWaypointConfigValidation(t *testing.T) {
	eng := sim.NewEngine()
	disk := radio.NewUnitDisk(10)
	rng := xrand.NewSource(1).Stream("m")
	bad := []WaypointConfig{
		{Area: Area{W: 0, H: 10}, MinSpeed: 1, MaxSpeed: 2},
		{Area: Area{W: 10, H: 10}, MinSpeed: 0, MaxSpeed: 2},
		{Area: Area{W: 10, H: 10}, MinSpeed: 3, MaxSpeed: 2},
		{Area: Area{W: 10, H: 10}, MinSpeed: 1, MaxSpeed: 2, Pause: -time.Second},
		{Area: Area{W: math.Inf(1), H: 10}, MinSpeed: 1, MaxSpeed: 2},
	}
	for _, cfg := range bad {
		if _, err := StartWaypoint(eng, disk, 0, cfg, rng, horizon); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if _, err := StartWaypoint(nil, disk, 0, WaypointConfig{Area: Area{W: 10, H: 10}, MinSpeed: 1, MaxSpeed: 2}, rng, horizon); err == nil {
		t.Error("nil engine accepted")
	}
}

// TestWaypointStaysInAreaAndMoves runs one node for a virtual minute: it
// must actually move, every sampled position must stay inside the area,
// and the event queue must drain (horizon-gated timers).
func TestWaypointStaysInAreaAndMoves(t *testing.T) {
	eng := sim.NewEngine()
	disk := radio.NewUnitDisk(10)
	rng := xrand.NewSource(42).Stream("mobility", "0")
	cfg := WaypointConfig{Area: Area{W: 50, H: 30}, MinSpeed: 1, MaxSpeed: 3, Pause: 500 * time.Millisecond}
	if _, err := StartWaypoint(eng, disk, 0, cfg, rng, horizon); err != nil {
		t.Fatal(err)
	}
	start, ok := disk.Position(0)
	if !ok {
		t.Fatal("StartWaypoint did not place the node")
	}
	var moved bool
	for i := 0; i < 600; i++ {
		eng.RunUntil(time.Duration(i) * 100 * time.Millisecond)
		p, _ := disk.Position(0)
		if p.X < 0 || p.X > 50 || p.Y < 0 || p.Y > 30 {
			t.Fatalf("position %v left the area", p)
		}
		if p != start {
			moved = true
		}
	}
	eng.Run()
	if !moved {
		t.Error("node never moved")
	}
	if eng.Now() >= horizon+time.Second {
		t.Errorf("events ran to %v, far past the horizon", eng.Now())
	}
}

// TestWaypointDeterministic: same seed, same trajectory — byte-identical
// positions at every sample instant across two independent runs.
func TestWaypointDeterministic(t *testing.T) {
	run := func() []radio.Point {
		eng := sim.NewEngine()
		disk := radio.NewUnitDisk(10)
		for id := radio.NodeID(0); id < 4; id++ {
			rng := xrand.NewSource(7).Stream("mobility", string(rune('a'+id)))
			cfg := WaypointConfig{Area: Area{W: 40, H: 40}, MinSpeed: 0.5, MaxSpeed: 2}
			if _, err := StartWaypoint(eng, disk, id, cfg, rng, horizon); err != nil {
				t.Fatal(err)
			}
		}
		var out []radio.Point
		for s := time.Duration(0); s <= horizon; s += 5 * time.Second {
			eng.RunUntil(s)
			for id := radio.NodeID(0); id < 4; id++ {
				p, _ := disk.Position(id)
				out = append(out, p)
			}
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d: %v != %v — trajectories not deterministic", i, a[i], b[i])
		}
	}
}

// TestWalkerSpeed pins the kinematics: a scripted glide at speed v covers
// distance d in d/v seconds of virtual time, within one tick.
func TestWalkerSpeed(t *testing.T) {
	eng := sim.NewEngine()
	disk := radio.NewUnitDisk(10)
	disk.Place(0, radio.Point{})
	w := &Walker{
		eng: eng, tick: DefaultTick, horizon: horizon,
		pos:   radio.Point{},
		place: func(p radio.Point) { disk.Place(0, p) },
	}
	var doneAt time.Duration
	w.glide(radio.Point{X: 30}, 2, func() { doneAt = eng.Now() }) // 30 units at 2/s = 15s
	eng.Run()
	if got, want := doneAt, 15*time.Second; got < want-DefaultTick || got > want+DefaultTick {
		t.Errorf("glide finished at %v, want ~%v", got, want)
	}
	p, _ := disk.Position(0)
	if p != (radio.Point{X: 30}) {
		t.Errorf("final position %v, want (30, 0)", p)
	}
}

func TestGroupMembersRideTogether(t *testing.T) {
	eng := sim.NewEngine()
	disk := radio.NewUnitDisk(10)
	members := []radio.NodeID{0, 1, 2, 3, 4}
	cfg := GroupConfig{
		Waypoint: WaypointConfig{Area: Area{W: 100, H: 100}, MinSpeed: 1, MaxSpeed: 2},
		Spread:   5,
	}
	g, err := StartGroup(eng, disk, members, cfg, xrand.NewSource(9).Stream("group"), horizon)
	if err != nil {
		t.Fatal(err)
	}
	for s := time.Duration(0); s <= horizon; s += 2 * time.Second {
		eng.RunUntil(s)
		ref := g.Reference()
		for _, id := range members {
			p, ok := disk.Position(id)
			if !ok {
				t.Fatalf("member %d unplaced", id)
			}
			// Clamping at the boundary can only shrink the offset, so the
			// spread bound holds everywhere (with float slack).
			if d := p.Dist(ref); d > cfg.Spread+1e-9 {
				t.Fatalf("member %d is %v from the reference, spread is %v", id, d, cfg.Spread)
			}
			if p.X < 0 || p.X > 100 || p.Y < 0 || p.Y > 100 {
				t.Fatalf("member %d at %v left the area", id, p)
			}
		}
	}
	eng.Run()
	if _, err := StartGroup(eng, disk, nil, cfg, xrand.NewSource(9).Stream("g2"), horizon); err == nil {
		t.Error("empty group accepted")
	}
}

// stubNode records the up/down transitions a churner drives.
type stubNode struct {
	up                bool
	crashes, restarts int
}

func (s *stubNode) Crash()   { s.up = false; s.crashes++ }
func (s *stubNode) Restart() { s.up = true; s.restarts++ }

func TestChurnerMembership(t *testing.T) {
	eng := sim.NewEngine()
	disk := radio.NewUnitDisk(10)
	ch := NewChurner(eng, horizon)
	ch.SetDisk(disk)
	n := &stubNode{up: true}
	ch.Register(3, n)
	disk.Place(3, radio.Point{X: 1, Y: 1})

	if !ch.Awake(3) {
		t.Fatal("registered node should start awake")
	}
	if err := ch.Sleep(3); err != nil {
		t.Fatal(err)
	}
	if ch.Awake(3) || n.up {
		t.Error("sleep left the node up")
	}
	if err := ch.Wake(3); err != nil {
		t.Fatal(err)
	}
	if !ch.Awake(3) || !n.up {
		t.Error("wake did not bring the node up")
	}
	if err := ch.Leave(3); err != nil {
		t.Fatal(err)
	}
	if _, ok := disk.Position(3); ok {
		t.Error("leave kept the node's position")
	}
	if err := ch.Join(3, radio.Point{X: 2, Y: 2}); err != nil {
		t.Fatal(err)
	}
	if p, ok := disk.Position(3); !ok || p != (radio.Point{X: 2, Y: 2}) {
		t.Errorf("join placed the node at %v, %v", p, ok)
	}
	c := ch.Counters()
	if c.Sleeps != 1 || c.Wakes != 1 || c.Leaves != 1 || c.Joins != 1 {
		t.Errorf("counters %+v, want one of each", c)
	}
	if err := ch.Sleep(99); err == nil {
		t.Error("churn on an unregistered node accepted")
	}
}

// TestDutyCycleAwakeFraction: the stationary awake probability, including
// the degenerate zero-value cycle.
func TestDutyCycleAwakeFraction(t *testing.T) {
	cases := []struct {
		d    DutyCycle
		want float64
	}{
		{DutyCycle{MeanUp: time.Second, MeanDown: 3 * time.Second}, 0.25},
		{DutyCycle{MeanUp: 200 * time.Millisecond, MeanDown: 9800 * time.Millisecond}, 0.02},
		{DutyCycle{}, 0},
	}
	for _, c := range cases {
		if got := c.d.AwakeFraction(); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("AwakeFraction(%v/%v) = %v, want %v", c.d.MeanUp, c.d.MeanDown, got, c.want)
		}
	}
}

// TestDutyCycleEndsAwake: the horizon contract — no new sleep starts at or
// after the horizon and in-progress sleeps always wake, so a bounded run
// finishes with the node up.
func TestDutyCycleEndsAwake(t *testing.T) {
	eng := sim.NewEngine()
	ch := NewChurner(eng, horizon)
	n := &stubNode{up: true}
	ch.Register(0, n)
	rng := xrand.NewSource(11).Stream("duty")
	if err := ch.StartDutyCycle(0, DutyCycle{MeanUp: 2 * time.Second, MeanDown: time.Second}, rng); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !n.up || !ch.Awake(0) {
		t.Error("duty-cycled node finished the run asleep")
	}
	if n.crashes == 0 {
		t.Error("duty cycle never slept in 60 virtual seconds of ~2s up-times")
	}
	if n.crashes != n.restarts {
		t.Errorf("%d sleeps vs %d wakes — in-progress sleep left hanging", n.crashes, n.restarts)
	}
	if err := ch.StartDutyCycle(0, DutyCycle{MeanUp: 0, MeanDown: time.Second}, rng); err == nil {
		t.Error("invalid duty cycle accepted")
	}
}
