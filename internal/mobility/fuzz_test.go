package mobility

import (
	"testing"
	"time"
)

// FuzzMobilityScript: the parser must never panic on arbitrary text, and
// everything it accepts must satisfy the Script invariants the Director
// relies on — non-negative sorted times, known ops, non-negative nodes,
// finite coordinates, positive walk speeds.
func FuzzMobilityScript(f *testing.F) {
	f.Add("10s move 1 2 3\n5s walk 0 9 9 1.5\n")
	f.Add("# comment only\n\n")
	f.Add("1s sleep 4\n1s wake 4\n2s leave 4\n3s join 4 0 0\n")
	f.Add("10s walk 1 2 3")
	f.Add("1h30m move 0 -5.5 1e3\n")
	f.Add("99999999999999999h move 0 0 0\n")
	f.Add("10s move 1 NaN Inf\n")
	f.Add("\x00\xff")

	f.Fuzz(func(t *testing.T, text string) {
		s, err := ParseScriptString(text)
		if err != nil {
			return
		}
		var prev time.Duration
		for _, a := range s.Actions {
			if a.At < 0 {
				t.Fatalf("accepted negative time %v", a.At)
			}
			if a.At < prev {
				t.Fatalf("actions not sorted: %v after %v", a.At, prev)
			}
			prev = a.At
			if a.Node < 0 {
				t.Fatalf("accepted negative node %d", a.Node)
			}
			switch a.Op {
			case OpMove, OpJoin:
				mustFinite(t, a.X, a.Y)
			case OpWalk:
				mustFinite(t, a.X, a.Y)
				if !(a.Speed > 0) {
					t.Fatalf("accepted non-positive speed %v", a.Speed)
				}
			case OpLeave, OpSleep, OpWake:
			default:
				t.Fatalf("accepted unknown op %q", a.Op)
			}
			if a.Line < 1 {
				t.Fatalf("action missing its script line: %+v", a)
			}
		}
	})
}

func mustFinite(t *testing.T, vs ...float64) {
	t.Helper()
	for _, v := range vs {
		if v != v || v > 1e308 || v < -1e308 {
			t.Fatalf("accepted non-finite coordinate %v", v)
		}
	}
}
