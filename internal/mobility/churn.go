package mobility

import (
	"fmt"
	"math/rand/v2"
	"time"

	"retri/internal/faults"
	"retri/internal/radio"
	"retri/internal/sim"
	"retri/internal/trace"
)

// ChurnCounters tallies membership events.
type ChurnCounters struct {
	Joins  int64
	Leaves int64
	Sleeps int64
	Wakes  int64
}

// Churner schedules node membership dynamics: permanent join/leave and
// duty-cycled sleep/wake. Both reuse the crash/restart semantics from
// internal/faults — a sleeping or departed node's radio goes down and its
// RAM protocol state (partial reassemblies, listening window, density
// estimate, adaptive width) is wiped, so a returning node relearns the
// channel from nothing. That is the paper's dynamics story: RETRI needs no
// state handover because identifiers are ephemeral.
//
// Like the fault injector it mirrors, a Churner is single-goroutine: one
// per trial.
type Churner struct {
	eng     *sim.Engine
	horizon time.Duration
	nodes   map[radio.NodeID]faults.NodeControl
	// disk, when set, also erases a departed node's position (freeing
	// topology state, satellite Remove) and places a joining one.
	disk   *radio.UnitDisk
	awake  map[radio.NodeID]bool
	tracer trace.Tracer
	ctr    ChurnCounters
}

// NewChurner returns a churner on eng whose duty-cycles stop starting new
// downtime at the horizon.
func NewChurner(eng *sim.Engine, horizon time.Duration) *Churner {
	return &Churner{
		eng:     eng,
		horizon: horizon,
		nodes:   make(map[radio.NodeID]faults.NodeControl),
		awake:   make(map[radio.NodeID]bool),
	}
}

// SetDisk installs the unit-disk topology whose positions join/leave
// maintain; nil leaves positions to the caller.
func (c *Churner) SetDisk(d *radio.UnitDisk) { c.disk = d }

// SetTracer installs a tracer for churn events (recorded as the crash/
// restart kinds they reuse); nil disables.
func (c *Churner) SetTracer(t trace.Tracer) { c.tracer = t }

// Register attaches a node's control interface. Nodes start awake.
func (c *Churner) Register(id radio.NodeID, n faults.NodeControl) {
	c.nodes[id] = n
	c.awake[id] = true
}

// Counters returns a snapshot of the membership tallies.
func (c *Churner) Counters() ChurnCounters { return c.ctr }

// Awake reports whether the node is currently up (registered, not asleep,
// not departed). The experiment layer's omniscient density probe counts
// only awake neighbors.
func (c *Churner) Awake(id radio.NodeID) bool { return c.awake[id] }

func (c *Churner) emit(kind trace.Kind, id radio.NodeID) {
	if c.tracer != nil {
		c.tracer.Record(trace.Event{At: c.eng.Now(), Kind: kind, Node: int(id), Peer: int(id)})
	}
}

func (c *Churner) control(id radio.NodeID) (faults.NodeControl, error) {
	n, ok := c.nodes[id]
	if !ok {
		return nil, fmt.Errorf("mobility: churn on unregistered node %d", id)
	}
	return n, nil
}

// Sleep takes a node down (duty-cycle off-phase): radio down, RAM wiped.
func (c *Churner) Sleep(id radio.NodeID) error {
	n, err := c.control(id)
	if err != nil {
		return err
	}
	n.Crash()
	c.awake[id] = false
	c.ctr.Sleeps++
	c.emit(trace.NodeCrash, id)
	return nil
}

// Wake brings a sleeping node back with empty state.
func (c *Churner) Wake(id radio.NodeID) error {
	n, err := c.control(id)
	if err != nil {
		return err
	}
	n.Restart()
	c.awake[id] = true
	c.ctr.Wakes++
	c.emit(trace.NodeRestart, id)
	return nil
}

// Leave removes a node from the network: radio down, state wiped, and its
// position erased so the topology frees its spatial-index slot.
func (c *Churner) Leave(id radio.NodeID) error {
	n, err := c.control(id)
	if err != nil {
		return err
	}
	n.Crash()
	if c.disk != nil {
		c.disk.Remove(id)
	}
	c.awake[id] = false
	c.ctr.Leaves++
	c.emit(trace.NodeCrash, id)
	return nil
}

// Join (re-)admits a node at position p with empty state.
func (c *Churner) Join(id radio.NodeID, p radio.Point) error {
	n, err := c.control(id)
	if err != nil {
		return err
	}
	if c.disk != nil {
		c.disk.Place(id, p)
	}
	n.Restart()
	c.awake[id] = true
	c.ctr.Joins++
	c.emit(trace.NodeRestart, id)
	return nil
}

// DutyCycle is a stochastic sleep/wake schedule: exponential up-times with
// mean MeanUp, exponential sleeps with mean MeanDown — the standard model
// for duty-cycled sensor radios.
type DutyCycle struct {
	MeanUp, MeanDown time.Duration
}

// Validate rejects non-positive means.
func (p DutyCycle) Validate() error {
	if p.MeanUp <= 0 || p.MeanDown <= 0 {
		return fmt.Errorf("mobility: duty cycle needs positive up/down means, got %v/%v", p.MeanUp, p.MeanDown)
	}
	return nil
}

// AwakeFraction is the cycle's stationary probability of being awake,
// MeanUp/(MeanUp+MeanDown) — the factor that converts a spatial node
// density into the awake density the paper's T rides on. Zero for a
// degenerate (unvalidated) cycle.
func (p DutyCycle) AwakeFraction() float64 {
	total := p.MeanUp + p.MeanDown
	if total <= 0 {
		return 0
	}
	return float64(p.MeanUp) / float64(total)
}

// StartDutyCycle runs the cycle for a registered node until the horizon,
// drawing from rng. No new sleep begins at or after the horizon, and an
// in-progress sleep always ends with a wake, so a bounded run finishes
// with every duty-cycled node awake.
func (c *Churner) StartDutyCycle(id radio.NodeID, p DutyCycle, rng *rand.Rand) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if _, ok := c.nodes[id]; !ok {
		return fmt.Errorf("mobility: duty cycle for unregistered node %d", id)
	}
	var up func()
	up = func() {
		life := expDuration(rng, p.MeanUp)
		if c.eng.Now()+life >= c.horizon {
			return
		}
		c.eng.Schedule(life, func() {
			_ = c.Sleep(id)
			down := expDuration(rng, p.MeanDown)
			c.eng.Schedule(down, func() {
				_ = c.Wake(id)
				up()
			})
		})
	}
	up()
	return nil
}

// expDuration draws an exponential duration with the given mean, clamped
// to at least one nanosecond so schedules always advance.
func expDuration(rng *rand.Rand, mean time.Duration) time.Duration {
	d := time.Duration(rng.ExpFloat64() * float64(mean))
	if d < 1 {
		d = 1
	}
	return d
}
