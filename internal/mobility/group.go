package mobility

import (
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"retri/internal/radio"
	"retri/internal/sim"
)

// GroupConfig parameterizes reference-point group mobility (RPGM): a
// virtual reference point follows the random-waypoint model and every
// member rides at a fixed random offset from it, so the cluster roams as
// one — the standard model for patrols, herds and vehicle convoys, and
// the cleanest generator of partition-and-merge dynamics (two groups
// drifting out of mutual range partition the network; drifting back
// merges it).
type GroupConfig struct {
	// Waypoint drives the group's reference point.
	Waypoint WaypointConfig
	// Spread is the maximum member offset radius from the reference.
	Spread float64
}

func (c GroupConfig) validate() error {
	if err := c.Waypoint.withDefaults().validate(); err != nil {
		return err
	}
	if !(c.Spread >= 0) || math.IsInf(c.Spread, 0) {
		return fmt.Errorf("mobility: group spread %v must be non-negative and finite", c.Spread)
	}
	return nil
}

// Group is a handle on one roaming cluster.
type Group struct {
	walker  *Walker
	members []radio.NodeID
	offsets []radio.Point
}

// Stop freezes the whole group.
func (g *Group) Stop() { g.walker.Stop() }

// Reference returns the current virtual reference position.
func (g *Group) Reference() radio.Point { return g.walker.Position() }

// StartGroup starts RPGM for the given members: the virtual reference
// point walks the waypoint model and each tick places every member at its
// fixed offset (drawn once, uniform over the spread disk), clamped to the
// area. Members keep no independent motion; compose with StartWaypoint on
// other nodes for mixed populations.
func StartGroup(eng *sim.Engine, disk *radio.UnitDisk, members []radio.NodeID, cfg GroupConfig, rng *rand.Rand, horizon time.Duration) (*Group, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if eng == nil || disk == nil || rng == nil {
		return nil, fmt.Errorf("mobility: StartGroup needs an engine, a disk and an rng")
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("mobility: empty group")
	}
	wcfg := cfg.Waypoint.withDefaults()
	g := &Group{members: append([]radio.NodeID(nil), members...)}
	g.offsets = make([]radio.Point, len(g.members))
	for i := range g.offsets {
		// Uniform over the disk of radius Spread: r = R*sqrt(u) corrects
		// the area bias of a uniform radius.
		r := cfg.Spread * math.Sqrt(rng.Float64())
		theta := 2 * math.Pi * rng.Float64()
		g.offsets[i] = radio.Point{X: r * math.Cos(theta), Y: r * math.Sin(theta)}
	}
	g.walker = &Walker{
		eng:     eng,
		tick:    wcfg.Tick,
		horizon: horizon,
		pos:     wcfg.randPoint(rng),
		place: func(ref radio.Point) {
			for i, id := range g.members {
				g.placeMember(disk, wcfg, id, ref, g.offsets[i])
			}
		},
	}
	g.walker.place(g.walker.pos)
	g.walker.loop(wcfg, rng)
	return g, nil
}

func (g *Group) placeMember(disk *radio.UnitDisk, wcfg WaypointConfig, id radio.NodeID, ref, off radio.Point) {
	disk.Place(id, wcfg.clamp(radio.Point{X: ref.X + off.X, Y: ref.Y + off.Y}))
}
