// Time-series reduction: the span ledger folded into per-interval
// buckets — active transaction density, collision rate, achieved
// identifier width — the live view of the quantities the paper's
// Equation 4 trades off. The reduction is a pure function of the
// records, so any two ledgers with the same rows produce the same
// series regardless of trial scheduling.
package span

import (
	"encoding/csv"
	"fmt"
	"io"
	"time"
)

// Point is one time bucket of the reduced series. Counts are events in
// the bucket; ActiveMean is the average number of concurrently open
// transactions over the bucket; WidthMean averages the identifier width
// of transactions opened in the bucket; CollisionRate is the fraction
// of those openings that collided.
type Point struct {
	Start         time.Duration `json:"start_ns"`
	Opened        int           `json:"opened"`
	Closed        int           `json:"closed"`
	Collisions    int           `json:"collisions"`
	Delivered     int           `json:"delivered"`
	ActiveMean    float64       `json:"active_mean"`
	WidthMean     float64       `json:"width_mean"`
	CollisionRate float64       `json:"collision_rate"`
}

// Series reduces span records into fixed-interval buckets (default one
// second when interval <= 0). Trials are folded together: the series
// answers "what did the medium look like t seconds into a trial",
// averaged over trials, matching how the figures aggregate.
func Series(recs []Record, interval time.Duration) []Point {
	if interval <= 0 {
		interval = time.Second
	}
	end := time.Duration(0)
	for _, r := range recs {
		if t := time.Duration(r.OpenedNS); t > end {
			end = t
		}
		if t := time.Duration(r.ClosedNS); t > end {
			end = t
		}
	}
	n := int(end/interval) + 1
	if n < 1 || len(recs) == 0 {
		return nil
	}
	pts := make([]Point, n)
	for i := range pts {
		pts[i].Start = time.Duration(i) * interval
	}
	// activeNS accumulates open-interval coverage per bucket, so
	// ActiveMean is exact — not a sampled open count.
	activeNS := make([]float64, n)
	widthSum := make([]float64, n)
	for _, r := range recs {
		if r.OpenedNS < 0 {
			continue // never aired: no on-air presence
		}
		open := time.Duration(r.OpenedNS)
		ob := int(open / interval)
		pts[ob].Opened++
		widthSum[ob] += float64(r.Width)
		if r.Collided {
			pts[ob].Collisions++
		}
		if r.Deliveries > 0 {
			pts[ob].Delivered++
		}
		closed := time.Duration(r.ClosedNS)
		if r.ClosedNS < 0 {
			closed = end
		} else {
			pts[int(closed/interval)].Closed++
		}
		for b := ob; b < n && time.Duration(b)*interval < closed; b++ {
			lo := time.Duration(b) * interval
			hi := lo + interval
			if open > lo {
				lo = open
			}
			if closed < hi {
				hi = closed
			}
			if hi > lo {
				activeNS[b] += float64(hi - lo)
			}
		}
	}
	for i := range pts {
		pts[i].ActiveMean = activeNS[i] / float64(interval)
		if pts[i].Opened > 0 {
			pts[i].WidthMean = widthSum[i] / float64(pts[i].Opened)
			pts[i].CollisionRate = float64(pts[i].Collisions) / float64(pts[i].Opened)
		}
	}
	return pts
}

// WriteSeriesCSV writes the series as CSV with a header row — the
// -timeline output of the query CLI, ready for a plotting script.
func WriteSeriesCSV(w io.Writer, pts []Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"start_s", "opened", "closed", "collisions", "delivered",
		"active_mean", "width_mean", "collision_rate",
	}); err != nil {
		return err
	}
	for _, p := range pts {
		if err := cw.Write([]string{
			fmt.Sprintf("%g", p.Start.Seconds()),
			fmt.Sprintf("%d", p.Opened),
			fmt.Sprintf("%d", p.Closed),
			fmt.Sprintf("%d", p.Collisions),
			fmt.Sprintf("%d", p.Delivered),
			fmt.Sprintf("%.4f", p.ActiveMean),
			fmt.Sprintf("%.4f", p.WidthMean),
			fmt.Sprintf("%.4f", p.CollisionRate),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
