// Chrome trace_event export: load the file at chrome://tracing (or
// https://ui.perfetto.dev) and read a run as a timeline — one process
// row per trial, one thread row per sender, a complete ("X") slice per
// transaction, flow arrows joining ARQ retry chains, and instant
// markers for adaptive-width moves.
package span

import (
	"bufio"
	"encoding/json"
	"io"
)

// chromeEvent is one trace_event object. Only the fields this exporter
// emits; the format tolerates extras but needs none.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int64          `json:"tid"`
	ID    int            `json:"id,omitempty"`
	BP    string         `json:"bp,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChrome writes the records as a trace_event JSON document.
// Trials map to process IDs in first-seen order; senders map to thread
// IDs directly. Never-aired spans have no on-air interval and are
// skipped. Retry chains are flow events bound to the enclosing slices.
func WriteChrome(w io.Writer, recs []Record, widths []WidthRecord) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	pids := map[string]int{}
	pidOf := func(trial string) int {
		if p, ok := pids[trial]; ok {
			return p
		}
		p := len(pids)
		pids[trial] = p
		return p
	}
	first := true
	emit := func(ev chromeEvent) error {
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		_, err = bw.Write(b)
		return err
	}
	// byIdx resolves Parent indices to records for flow binding.
	type trialSpan struct {
		trial string
		span  int
	}
	byIdx := make(map[trialSpan]Record, len(recs))
	for _, r := range recs {
		byIdx[trialSpan{r.Trial, r.Span}] = r
	}
	flowID := 0
	for _, r := range recs {
		if r.OpenedNS < 0 {
			continue
		}
		pid := pidOf(r.Trial)
		ts := float64(r.OpenedNS) / 1e3
		end := r.ClosedNS
		if end < 0 {
			end = r.OpenedNS // still open at run end: zero-length slice
		}
		dur := float64(end-r.OpenedNS) / 1e3
		ev := chromeEvent{
			Name:  r.Outcome,
			Phase: "X",
			TS:    ts,
			Dur:   dur,
			PID:   pid,
			TID:   int64(r.Sender),
			Args: map[string]any{
				"key":      r.Key,
				"id":       r.ID,
				"width":    r.Width,
				"strategy": r.Strategy,
				"outcome":  r.Outcome,
				"frags":    r.FragsSent,
				"redraws":  r.Redraws,
			},
		}
		if r.Retry >= 0 {
			ev.Args["retry"] = r.Retry
			ev.Args["arq_seq"] = r.ARQSeq
		}
		if err := emit(ev); err != nil {
			return err
		}
		if r.Parent >= 0 {
			parent, ok := byIdx[trialSpan{r.Trial, r.Parent}]
			if ok && parent.OpenedNS >= 0 {
				flowID++
				pend := parent.ClosedNS
				if pend < 0 {
					pend = parent.OpenedNS
				}
				if err := emit(chromeEvent{
					Name: "retry", Phase: "s", ID: flowID, PID: pid,
					TID: int64(parent.Sender), TS: float64(pend) / 1e3,
				}); err != nil {
					return err
				}
				if err := emit(chromeEvent{
					Name: "retry", Phase: "f", BP: "e", ID: flowID, PID: pid,
					TID: int64(r.Sender), TS: ts,
				}); err != nil {
					return err
				}
			}
		}
	}
	for _, wc := range widths {
		if err := emit(chromeEvent{
			Name: "width-change", Phase: "i", Scope: "t",
			PID: pidOf(wc.Trial), TID: int64(wc.Node),
			TS:   float64(wc.AtNS) / 1e3,
			Args: map[string]any{"from": wc.From, "to": wc.To},
		}); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
