// Package span is a zero-perturbation transaction-lifecycle tracer for
// the AFF stack. Where the oracle (internal/oracle) audits *aggregate*
// safety properties from the medium's privileged viewpoint, span tracing
// keeps the *individual* story of every transaction as a causal chain:
//
//   - the selector draw that produced its identifier (strategy, width,
//     avoid-set redraws);
//   - every fragment it put on air and that fragment's channel fate at
//     each receiver (delivered, collided, Gilbert-Elliott loss,
//     bit-corrupted, half-duplex miss, out of range);
//   - reassembly progress at receivers: delivery, never-misdeliver
//     rejection (checksum or conflict), or expiry;
//   - ARQ retry links joining a retransmission's fresh identifier back
//     to its parent attempt, so a retry chain reads as one thread.
//
// The tracer ingests the same event feeds the oracle does plus the
// sender- and receiver-side hooks (node.SpanSink, arq.AttemptObserver,
// radio.FateObserver, adapt.Config.OnChange), and mirrors the oracle's
// ground-truth state machine exactly — same stall, revive, FIFO-abandon
// and retention rules — so span-derived lifecycle counts are
// conformance-checkable against the oracle's report.
//
// Like the oracle it is strictly passive: no randomness, no scheduled
// events, no payload mutation. Attaching it cannot perturb a run.
//
// It works in two attribution modes. With aff.Config.Instrument the
// Truth trailer keys every fragment to its transaction exactly (the
// conformance-grade mode). Without instrumentation — a flagless figure
// whose wire format must not change — fragments are attributed by
// (sender, reassembly key) against each sender's FIFO transmit order,
// which is exact for everything except a sender redrawing the same
// identifier for consecutive transactions without an intervening intro.
package span

import (
	"errors"
	"fmt"
	"time"

	"retri/internal/aff"
	"retri/internal/frame"
	"retri/internal/radio"
)

// Config parameterizes a Tracer. The lifecycle timing knobs default
// exactly as the oracle's do, so the two state machines stay in step.
type Config struct {
	// AFF is the wire-format configuration of the stack under trace.
	// Instrument selects truth-keyed attribution; without it the tracer
	// falls back to per-sender FIFO matching.
	AFF aff.Config
	// Now supplies virtual time (pass the engine's clock).
	Now func() time.Duration
	// StallTimeout marks open transactions with no send activity
	// dormant. Zero selects the AFF reassembly timeout.
	StallTimeout time.Duration
	// Retain keeps closed transactions findable for late receiver-side
	// events. Zero selects StallTimeout.
	Retain time.Duration
	// Unwrap, when set, strips a transport envelope (the flood relay's
	// hop-scope header) from every observed frame before AFF decoding,
	// mirroring the oracle's hook; ok=false counts the frame
	// Unattributed. Nil observes raw payloads.
	Unwrap func(payload []byte) (inner []byte, ok bool)
}

// txKey is the instrumentation trailer's (node, sequence) pair.
type txKey struct{ node, seq uint32 }

// skey addresses a span by its sender and on-air reassembly key — the
// only identity visible without instrumentation.
type skey struct {
	sender radio.NodeID
	key    uint64
}

// arqKey addresses an ARQ stream: one endpoint's one sequence number.
type arqKey struct {
	sender radio.NodeID
	seq    uint32
}

// State is a span's position in the transaction lifecycle.
type State int

const (
	// StateQueued: the selector drew an identifier but no fragment has
	// aired yet (still in the transmit queue, or the queue died).
	StateQueued State = iota
	// StateOpen: at least one fragment aired; the final one has not.
	StateOpen
	// StateClosed: the final data fragment went on air.
	StateClosed
	// StateAbandoned: the sender's FIFO queue moved on to a newer
	// transaction before this one finished (a crash dropped its tail).
	StateAbandoned
)

func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateOpen:
		return "open"
	case StateClosed:
		return "closed"
	case StateAbandoned:
		return "abandoned"
	}
	return "unknown"
}

// Frag is one fragment of a span: what went on air and how the channel
// treated each copy (counters are per receiver, so one broadcast frame
// contributes to several).
type Frag struct {
	Intro  bool          `json:"intro,omitempty"`
	Offset int           `json:"offset"`
	Len    int           `json:"len"`
	At     time.Duration `json:"at_ns"`

	Delivered  int `json:"delivered,omitempty"`
	Collided   int `json:"collided,omitempty"`
	RandomLoss int `json:"random_loss,omitempty"`
	Corrupted  int `json:"corrupted,omitempty"`
	NotHeard   int `json:"not_heard,omitempty"`
	HalfDuplex int `json:"half_duplex,omitempty"`
}

// Event is one receiver-side lifecycle event attributed to a span.
type Event struct {
	At   time.Duration `json:"at_ns"`
	Node radio.NodeID  `json:"node"`
	// Kind is one of "delivered", "rejected-checksum",
	// "rejected-conflict", "expired", "evicted".
	Kind string `json:"kind"`
}

// Span is the causal record of one transaction attempt.
type Span struct {
	Index  int
	Truth  *frame.Truth // nil when attribution is FIFO-based
	Sender radio.NodeID
	Key    uint64 // on-air reassembly key (WidthKey in adaptive mode)
	Width  int    // identifier width in bits
	ID     uint64 // raw identifier (Key without the width prefix)

	Strategy string // selector name that drew the identifier
	Redraws  int    // avoid-set redraws before this identifier stuck

	ARQSeq int // ARQ stream sequence, -1 when not an ARQ attempt
	Retry  int // retransmission count so far (0 = first attempt), -1 when not ARQ
	Parent int // Index of the previous attempt in the retry chain, -1 for none

	QueuedAt time.Duration // TxOpen instant; -1 for synthesized spans
	OpenedAt time.Duration // first fragment on air; -1 while queued
	ClosedAt time.Duration // final fragment on air / abandonment; -1 while open

	TotalLen int
	Collided bool // shared a live reassembly key with another span
	Revives  int  // times a stall was revived by a late fragment

	Frags  []Frag
	Events []Event

	FragsSent        int
	Deliveries       int // complete packets handed up by receivers
	RejectedChecksum int
	RejectedConflict int
	Expired          int
	Evicted          int  // receivers that cap-evicted this span's partial state
	BudgetExhausted  bool // ARQ abandoned the retry chain at this attempt
	Anomalies        int  // frames that violated fragmenter invariants

	state     State
	stalled   bool
	haveLen   bool
	introSent bool
	lastSent  time.Duration
	closedAt  time.Duration // retention clock (abandon included)
	fragAt    map[int]int   // offset (-1 intro) -> index into Frags
}

// State reports the span's lifecycle position.
func (s *Span) State() State { return s.state }

// Stalled reports whether an open span is currently dormant.
func (s *Span) Stalled() bool { return s.stalled }

// Outcome classifies what ultimately happened to the transaction, in
// precedence order: delivery evidence wins, then the failure root
// causes, then the residual states.
func (s *Span) Outcome() string {
	switch {
	case s.Deliveries > 0:
		return "delivered"
	case s.Collided:
		return "collided"
	case s.RejectedChecksum+s.RejectedConflict > 0:
		return "rejected"
	case s.Evicted > 0:
		// Receiver-side graceful degradation: the MaxPartials cap evicted
		// this span's partial state to stay under the memory budget.
		return "reassembly-evicted"
	case s.BudgetExhausted:
		// Sender-side graceful degradation: the ARQ endpoint gave up the
		// retry chain (possibly early, under loss-aware budget shedding).
		return "retry-budget-exhausted"
	case s.Expired > 0:
		return "expired"
	case s.state == StateAbandoned:
		return "abandoned"
	case s.state == StateQueued:
		return "never-aired"
	case s.state == StateOpen && s.stalled:
		return "stalled"
	case s.state == StateOpen:
		return "in-flight"
	}
	// Closed with no receiver evidence: every copy died on the channel.
	return "lost"
}

// WidthChange is one adaptive-width controller move.
type WidthChange struct {
	At   time.Duration `json:"at_ns"`
	Node radio.NodeID  `json:"node"`
	From int           `json:"from"`
	To   int           `json:"to"`
}

// Report aggregates span lifecycle counts. The lifecycle fields mirror
// the oracle report field for field so a conformance test can compare
// the two machines directly.
type Report struct {
	Spans               int64 // spans recorded, including never-aired
	Opened              int64
	Closed              int64
	Stalled             int64
	Revived             int64
	Abandoned           int64
	FragmentsSent       int64
	CollisionEvents     int64
	FreshnessViolations int64
	Unattributed        int64 // send-side frames the tracer could not read
	PacketsDelivered    int64 // complete packets handed up by receivers
	OrphanEvents        int64 // receiver/fate events with no matching span
	Anomalies           int64 // fragmenter-invariant violations observed
}

// Merge folds another report into this one.
func (r *Report) Merge(o Report) {
	r.Spans += o.Spans
	r.Opened += o.Opened
	r.Closed += o.Closed
	r.Stalled += o.Stalled
	r.Revived += o.Revived
	r.Abandoned += o.Abandoned
	r.FragmentsSent += o.FragmentsSent
	r.CollisionEvents += o.CollisionEvents
	r.FreshnessViolations += o.FreshnessViolations
	r.Unattributed += o.Unattributed
	r.PacketsDelivered += o.PacketsDelivered
	r.OrphanEvents += o.OrphanEvents
	r.Anomalies += o.Anomalies
}

// Tracer assembles spans from the measurement hooks. It implements
// radio.FateObserver, satisfies node.SpanSink and arq.AttemptObserver
// structurally, and accepts adapt width-change notifications. Like
// every protocol component it is single-threaded within one trial.
type Tracer struct {
	codec      frame.AFFCodec
	instrument bool
	bits       int
	now        func() time.Duration
	stall      time.Duration
	retain     time.Duration
	unwrap     func(payload []byte) ([]byte, bool)

	spans  []*Span
	widths []WidthChange

	// Truth-keyed lifecycle state (instrumented mode) — the exact shape
	// of the oracle's open/closed/current maps.
	queuedTruth map[txKey]*Span
	openTruth   map[txKey]*Span
	closedTruth map[txKey]*Span
	current     map[radio.NodeID]txKey

	// FIFO lifecycle state (uninstrumented mode).
	queuedFIFO  map[radio.NodeID][]*Span
	currentFIFO map[radio.NodeID]*Span

	// liveByKey lists live (non-stalled) open spans per reassembly key:
	// its length is the oracle's openByKey count, and the list lets the
	// tracer mark every party to a collision.
	liveByKey map[uint64][]*Span
	// bySenderKey and lastByKey are best-effort attribution indexes for
	// fate and receiver-side events (latest span wins).
	bySenderKey map[skey]*Span
	lastByKey   map[uint64]*Span
	// lastQueued and arqLast thread ARQ retry chains: the span TxOpen
	// just queued for a sender, and each stream's previous attempt.
	lastQueued map[radio.NodeID]*Span
	arqLast    map[arqKey]*Span

	retained []*Span // closed/abandoned spans inside the retention window

	rep Report
}

var _ radio.FateObserver = (*Tracer)(nil)

// New builds a tracer for the given wire format.
func New(cfg Config) (*Tracer, error) {
	if cfg.AFF.Space.Bits() < 1 {
		return nil, errors.New("span: config needs an identifier space")
	}
	if cfg.Now == nil {
		cfg.Now = func() time.Duration { return 0 }
	}
	if cfg.StallTimeout <= 0 {
		cfg.StallTimeout = cfg.AFF.ReassemblyTimeout
	}
	if cfg.StallTimeout <= 0 {
		cfg.StallTimeout = 250 * time.Millisecond
	}
	if cfg.Retain <= 0 {
		cfg.Retain = cfg.StallTimeout
	}
	return &Tracer{
		codec: frame.AFFCodec{
			IDBits:      cfg.AFF.Space.Bits(),
			Instrument:  cfg.AFF.Instrument,
			InBandWidth: cfg.AFF.AdaptiveWidth,
		},
		instrument:  cfg.AFF.Instrument,
		bits:        cfg.AFF.Space.Bits(),
		now:         cfg.Now,
		stall:       cfg.StallTimeout,
		retain:      cfg.Retain,
		unwrap:      cfg.Unwrap,
		queuedTruth: make(map[txKey]*Span),
		openTruth:   make(map[txKey]*Span),
		closedTruth: make(map[txKey]*Span),
		current:     make(map[radio.NodeID]txKey),
		queuedFIFO:  make(map[radio.NodeID][]*Span),
		currentFIFO: make(map[radio.NodeID]*Span),
		liveByKey:   make(map[uint64][]*Span),
		bySenderKey: make(map[skey]*Span),
		lastByKey:   make(map[uint64]*Span),
		lastQueued:  make(map[radio.NodeID]*Span),
		arqLast:     make(map[arqKey]*Span),
	}, nil
}

// MustNew is New for configurations known valid (tests, harness glue).
func MustNew(cfg Config) *Tracer {
	t, err := New(cfg)
	if err != nil {
		panic(fmt.Sprintf("span.MustNew: %v", err))
	}
	return t
}

// reassemblyKey maps a decoded width and identifier to the key the
// reassembler files the fragment under (the oracle's convention).
func (t *Tracer) reassemblyKey(decodedWidth int, id uint64) uint64 {
	if decodedWidth == 0 {
		return id
	}
	return aff.WidthKey(decodedWidth, id)
}

// widthOf normalizes a decoded in-band width (0 = fixed format) to the
// actual identifier width in bits.
func (t *Tracer) widthOf(decodedWidth int) int {
	if decodedWidth == 0 {
		return t.bits
	}
	return decodedWidth
}

// ---- sender-side hooks (node.SpanSink) ----

// TxOpen records a selector draw: a transaction entered its sender's
// transmit queue. Called synchronously from the fragmenting send path,
// before any fragment airs and before any ARQ attempt bookkeeping.
func (t *Tracer) TxOpen(sender radio.NodeID, tx aff.Transaction, key uint64, strategy string) {
	s := &Span{
		Index:    len(t.spans),
		Truth:    tx.Truth,
		Sender:   sender,
		Key:      key,
		Width:    tx.IDBits,
		ID:       tx.ID,
		Strategy: strategy,
		Redraws:  tx.Redraws,
		ARQSeq:   -1,
		Retry:    -1,
		Parent:   -1,
		QueuedAt: t.now(),
		OpenedAt: -1,
		ClosedAt: -1,
		state:    StateQueued,
		fragAt:   make(map[int]int),
	}
	t.spans = append(t.spans, s)
	t.rep.Spans++
	if t.instrument && tx.Truth != nil {
		t.queuedTruth[txKey{tx.Truth.Node, tx.Truth.Seq}] = s
	} else {
		t.queuedFIFO[sender] = append(t.queuedFIFO[sender], s)
	}
	t.lastQueued[sender] = s
}

// RxDelivered records a receiver handing up a complete packet.
func (t *Tracer) RxDelivered(receiver radio.NodeID, p aff.Packet) {
	t.rep.PacketsDelivered++
	s := t.findForRx(p.Truth, p.ID)
	if s == nil {
		t.rep.OrphanEvents++
		return
	}
	s.Deliveries++
	s.Events = append(s.Events, Event{At: t.now(), Node: receiver, Kind: "delivered"})
}

// RxRejected records a never-misdeliver rejection: a reassembled packet
// failed its checksum, or conflicting introductions poisoned the key.
func (t *Tracer) RxRejected(receiver radio.NodeID, key uint64, checksum bool) {
	s := t.findForRx(nil, key)
	if s == nil {
		t.rep.OrphanEvents++
		return
	}
	kind := "rejected-conflict"
	if checksum {
		kind = "rejected-checksum"
		s.RejectedChecksum++
	} else {
		s.RejectedConflict++
	}
	s.Events = append(s.Events, Event{At: t.now(), Node: receiver, Kind: kind})
}

// RxExpired records a receiver abandoning partial reassembly state.
func (t *Tracer) RxExpired(receiver radio.NodeID, key uint64) {
	s := t.findForRx(nil, key)
	if s == nil {
		t.rep.OrphanEvents++
		return
	}
	s.Expired++
	s.Events = append(s.Events, Event{At: t.now(), Node: receiver, Kind: "expired"})
}

// RxEvicted records a receiver's MaxPartials cap evicting partial
// reassembly state — memory-pressure degradation, distinct from the idle
// timeout RxExpired records.
func (t *Tracer) RxEvicted(receiver radio.NodeID, key uint64) {
	s := t.findForRx(nil, key)
	if s == nil {
		t.rep.OrphanEvents++
		return
	}
	s.Evicted++
	s.Events = append(s.Events, Event{At: t.now(), Node: receiver, Kind: "evicted"})
}

// ARQAbandon marks a retry chain's final attempt: the ARQ endpoint
// exhausted (or, under loss-aware shedding, relinquished) its retry
// budget for this sequence (arq.AbandonObserver). lastKey guards against
// attributing the abandonment to an unrelated span when the stream's
// bookkeeping and the tracer's disagree.
func (t *Tracer) ARQAbandon(sender radio.NodeID, seq uint32, attempts int, hasKey bool, lastKey uint64) {
	s := t.arqLast[arqKey{sender, seq}]
	if s == nil || (hasKey && s.Key != lastKey) {
		t.rep.OrphanEvents++
		return
	}
	s.BudgetExhausted = true
}

// ARQAttempt annotates the span TxOpen just queued with its place in a
// retry chain (arq.AttemptObserver; fires synchronously after the
// transport accepted the attempt).
func (t *Tracer) ARQAttempt(sender radio.NodeID, seq uint32, attempt int, hasPrev bool, prevKey, newKey uint64) {
	s := t.lastQueued[sender]
	if s == nil || s.Key != newKey {
		t.rep.OrphanEvents++
		return
	}
	s.ARQSeq = int(seq)
	s.Retry = attempt
	ak := arqKey{sender, seq}
	if hasPrev {
		if prev := t.arqLast[ak]; prev != nil && prev.Key == prevKey {
			s.Parent = prev.Index
		}
	}
	t.arqLast[ak] = s
}

// NoteWidthChange records an adaptive-width controller move (wire it to
// adapt.Config.OnChange).
func (t *Tracer) NoteWidthChange(node radio.NodeID, oldBits, newBits int) {
	t.widths = append(t.widths, WidthChange{At: t.now(), Node: node, From: oldBits, To: newBits})
}

// ---- medium hooks (radio.FateObserver) ----

// FrameSent advances the lifecycle machine: prune, decode, attribute,
// record — the oracle's FrameSent shape, step for step.
func (t *Tracer) FrameSent(f radio.Frame) {
	now := t.now()
	t.prune(now)
	payload := f.Payload
	if t.unwrap != nil {
		inner, ok := t.unwrap(payload)
		if !ok {
			t.rep.Unattributed++
			return
		}
		payload = inner
	}
	decoded, err := t.codec.Decode(payload)
	if err != nil {
		t.rep.Unattributed++
		return
	}
	t.rep.FragmentsSent++
	switch fr := decoded.(type) {
	case *frame.Intro:
		if t.instrument && fr.Truth == nil {
			t.rep.Unattributed++
			return
		}
		s := t.attributeSend(fr.Truth, f.From, t.reassemblyKey(fr.IDBits, fr.ID), fr.ID, t.widthOf(fr.IDBits), true, now)
		if !s.haveLen {
			s.haveLen = true
			s.TotalLen = fr.TotalLen
		}
		if _, dup := s.fragAt[-1]; dup {
			// A relay re-airing the introduction: the span already has it.
			return
		}
		s.introSent = true
		t.recordFrag(s, true, -1, 0, now)
	case *frame.Data:
		if t.instrument && fr.Truth == nil {
			t.rep.Unattributed++
			return
		}
		s := t.attributeSend(fr.Truth, f.From, t.reassemblyKey(fr.IDBits, fr.ID), fr.ID, t.widthOf(fr.IDBits), false, now)
		if !s.haveLen {
			// The fragmenter airs the introduction first; a data frame
			// for an unknown transaction is a protocol bug.
			s.Anomalies++
			t.rep.Anomalies++
			return
		}
		end := fr.Offset + len(fr.Payload)
		if end > s.TotalLen {
			s.Anomalies++
			t.rep.Anomalies++
			return
		}
		if _, dup := s.fragAt[fr.Offset]; dup {
			// A relayed copy of a fragment already recorded at its first
			// airing: fates still attribute to that record.
			return
		}
		t.recordFrag(s, false, fr.Offset, len(fr.Payload), now)
		if end == s.TotalLen {
			t.close(s, now)
		}
	}
}

// FrameFate attributes one receiver's copy of a frame to its span and
// records the channel verdict. Strictly read-only on lifecycle state:
// fates arrive at delivery instants, not send instants, and must not
// perturb the open/stalled bookkeeping the oracle parity rests on.
func (t *Tracer) FrameFate(to radio.NodeID, f radio.Frame, fate radio.Fate) {
	payload := f.Payload
	if t.unwrap != nil {
		inner, ok := t.unwrap(payload)
		if !ok {
			return
		}
		payload = inner
	}
	decoded, err := t.codec.Decode(payload)
	if err != nil {
		return
	}
	var (
		truth  *frame.Truth
		key    uint64
		offset int
	)
	switch fr := decoded.(type) {
	case *frame.Intro:
		truth, key, offset = fr.Truth, t.reassemblyKey(fr.IDBits, fr.ID), -1
	case *frame.Data:
		truth, key, offset = fr.Truth, t.reassemblyKey(fr.IDBits, fr.ID), fr.Offset
	default:
		return
	}
	s := t.findForFate(truth, f.From, key)
	if s == nil {
		t.rep.OrphanEvents++
		return
	}
	i, ok := s.fragAt[offset]
	if !ok {
		// A fate for a fragment the send path never recorded (an
		// anomalous frame the lifecycle machine refused): drop it.
		return
	}
	bumpFate(&s.Frags[i], fate)
}

// bumpFate applies one channel verdict to a fragment — span-level
// delivery evidence comes from the receiver hooks, not from fates.
func bumpFate(fr *Frag, fate radio.Fate) {
	switch fate {
	case radio.FateDelivered:
		fr.Delivered++
	case radio.FateCollided:
		fr.Collided++
	case radio.FateRandomLoss:
		fr.RandomLoss++
	case radio.FateCorrupted:
		fr.Corrupted++
	case radio.FateNotHeard:
		fr.NotHeard++
	case radio.FateHalfDuplex:
		fr.HalfDuplex++
	}
}

// ---- lifecycle machine ----

// attributeSend finds or opens the span a transmitted fragment belongs
// to, mirroring the oracle's lookup: freshness check, stall revival,
// FIFO abandonment of the sender's previous transaction, and collision
// detection at open.
func (t *Tracer) attributeSend(truth *frame.Truth, sender radio.NodeID, key, id uint64, width int, isIntro bool, now time.Duration) *Span {
	if t.instrument && truth != nil {
		return t.lookupTruth(txKey{truth.Node, truth.Seq}, sender, key, id, width, now)
	}
	return t.lookupFIFO(sender, key, id, width, isIntro, now)
}

// lookupTruth is the oracle's lookup, verbatim, producing spans.
func (t *Tracer) lookupTruth(k txKey, sender radio.NodeID, key, id uint64, width int, now time.Duration) *Span {
	if s, ok := t.openTruth[k]; ok {
		if s.Key != key {
			t.rep.FreshnessViolations++
		}
		if s.stalled {
			s.stalled = false
			t.addLive(s)
			s.Revives++
			t.rep.Revived++
		}
		s.lastSent = now
		return s
	}
	if s, ok := t.closedTruth[k]; ok {
		// A relay re-airing a fragment of a retired span: attribute the
		// copy without touching lifecycle state — the originator's story
		// already ended.
		return s
	}
	if prev, ok := t.current[sender]; ok && prev != k {
		if ps, live := t.openTruth[prev]; live {
			t.abandon(ps, now)
		}
	}
	t.current[sender] = k
	s := t.queuedTruth[k]
	if s != nil {
		delete(t.queuedTruth, k)
	} else {
		s = t.synthesize(k, sender, key, id, width)
	}
	t.openSpan(s, now)
	t.openTruth[k] = s
	return s
}

// lookupFIFO attributes a fragment without instrumentation: a sender's
// transactions never interleave, so the current span continues while
// the key matches (an intro after this span's intro means the selector
// redrew the same key for a new transaction), and anything else begins
// the sender's next queued transaction.
func (t *Tracer) lookupFIFO(sender radio.NodeID, key, id uint64, width int, isIntro bool, now time.Duration) *Span {
	if cur := t.currentFIFO[sender]; cur != nil && cur.state == StateOpen && cur.Key == key {
		if !isIntro || !cur.introSent {
			if cur.stalled {
				cur.stalled = false
				t.addLive(cur)
				cur.Revives++
				t.rep.Revived++
			}
			cur.lastSent = now
			return cur
		}
	}
	if cur := t.currentFIFO[sender]; cur != nil && cur.state == StateOpen {
		t.abandon(cur, now)
	}
	// Pop the sender's queue up to the matching draw; skipped entries
	// died with a crashed transmit queue and stay never-aired.
	var s *Span
	q := t.queuedFIFO[sender]
	for len(q) > 0 {
		head := q[0]
		q = q[1:]
		if head.Key == key {
			s = head
			break
		}
	}
	t.queuedFIFO[sender] = q
	if s == nil {
		s = t.synthesize(txKey{}, sender, key, id, width)
	}
	t.openSpan(s, now)
	t.currentFIFO[sender] = s
	return s
}

// synthesize covers a fragment with no recorded selector draw (span
// sink not wired on that node, or a crash raced the hook): the span
// exists so lifecycle counts still mirror the oracle.
func (t *Tracer) synthesize(k txKey, sender radio.NodeID, key, id uint64, width int) *Span {
	s := &Span{
		Index:    len(t.spans),
		Sender:   sender,
		Key:      key,
		Width:    width,
		ID:       id,
		ARQSeq:   -1,
		Retry:    -1,
		Parent:   -1,
		QueuedAt: -1,
		OpenedAt: -1,
		ClosedAt: -1,
		state:    StateQueued,
		fragAt:   make(map[int]int),
	}
	if t.instrument {
		s.Truth = &frame.Truth{Node: k.node, Seq: k.seq}
	}
	t.spans = append(t.spans, s)
	t.rep.Spans++
	return s
}

// openSpan moves a queued span on air, counting a collision event when
// its reassembly key already carries another live transaction — and
// marking every party, which the oracle's bare counter cannot.
func (t *Tracer) openSpan(s *Span, now time.Duration) {
	if peers := t.liveByKey[s.Key]; len(peers) > 0 {
		t.rep.CollisionEvents++
		s.Collided = true
		for _, p := range peers {
			p.Collided = true
		}
	}
	s.state = StateOpen
	s.OpenedAt = now
	s.lastSent = now
	t.addLive(s)
	t.bySenderKey[skey{s.Sender, s.Key}] = s
	t.lastByKey[s.Key] = s
	t.rep.Opened++
}

// close retires a span whose final data fragment went on air.
func (t *Tracer) close(s *Span, now time.Duration) {
	t.retire(s, now)
	s.state = StateClosed
	t.rep.Closed++
}

// abandon retires a span its sender walked away from.
func (t *Tracer) abandon(s *Span, now time.Duration) {
	t.retire(s, now)
	s.state = StateAbandoned
	t.rep.Abandoned++
}

// retire removes a span from the open set, keeping it findable for the
// retention window so in-flight frames and receiver verdicts still
// attribute.
func (t *Tracer) retire(s *Span, now time.Duration) {
	if s.Truth != nil {
		delete(t.openTruth, txKey{s.Truth.Node, s.Truth.Seq})
	}
	if t.currentFIFO[s.Sender] == s {
		delete(t.currentFIFO, s.Sender)
	}
	if !s.stalled {
		t.removeLive(s)
	}
	s.ClosedAt = now
	s.closedAt = now
	if s.Truth != nil {
		t.closedTruth[txKey{s.Truth.Node, s.Truth.Seq}] = s
	}
	t.retained = append(t.retained, s)
}

// prune stalls idle open spans and drops retained spans past the
// retention window — the oracle's prune, applied at send instants.
func (t *Tracer) prune(now time.Duration) {
	for _, s := range t.openTruth {
		t.stallIfIdle(s, now)
	}
	for _, s := range t.currentFIFO {
		t.stallIfIdle(s, now)
	}
	if len(t.retained) == 0 {
		return
	}
	kept := t.retained[:0]
	for _, s := range t.retained {
		if now-s.closedAt > t.retain {
			if s.Truth != nil {
				k := txKey{s.Truth.Node, s.Truth.Seq}
				if t.closedTruth[k] == s {
					delete(t.closedTruth, k)
				}
			}
			continue
		}
		kept = append(kept, s)
	}
	t.retained = kept
}

func (t *Tracer) stallIfIdle(s *Span, now time.Duration) {
	if s.state == StateOpen && !s.stalled && now-s.lastSent > t.stall {
		s.stalled = true
		t.removeLive(s)
		t.rep.Stalled++
	}
}

func (t *Tracer) addLive(s *Span) {
	t.liveByKey[s.Key] = append(t.liveByKey[s.Key], s)
}

func (t *Tracer) removeLive(s *Span) {
	peers := t.liveByKey[s.Key]
	for i, p := range peers {
		if p == s {
			peers = append(peers[:i], peers[i+1:]...)
			break
		}
	}
	if len(peers) == 0 {
		delete(t.liveByKey, s.Key)
	} else {
		t.liveByKey[s.Key] = peers
	}
}

// findForRx attributes a receiver-side event. Truth is exact when
// present; otherwise the latest span opened under the key is the best
// witness (exact except under an active identifier collision, which the
// Collided mark already flags).
func (t *Tracer) findForRx(truth *frame.Truth, key uint64) *Span {
	if truth != nil {
		k := txKey{truth.Node, truth.Seq}
		if s, ok := t.openTruth[k]; ok {
			return s
		}
		if s, ok := t.closedTruth[k]; ok {
			return s
		}
	}
	return t.lastByKey[key]
}

// findForFate attributes a channel fate, which arrives at a delivery
// instant possibly long after the span closed.
func (t *Tracer) findForFate(truth *frame.Truth, sender radio.NodeID, key uint64) *Span {
	if truth != nil {
		k := txKey{truth.Node, truth.Seq}
		if s, ok := t.openTruth[k]; ok {
			return s
		}
		if s, ok := t.closedTruth[k]; ok {
			return s
		}
	}
	return t.bySenderKey[skey{sender, key}]
}

// recordFrag appends one transmitted fragment to its span.
func (t *Tracer) recordFrag(s *Span, intro bool, offset, n int, now time.Duration) {
	s.FragsSent++
	s.fragAt[offset] = len(s.Frags)
	s.Frags = append(s.Frags, Frag{Intro: intro, Offset: offset, Len: n, At: now})
}

// ---- results ----

// Spans returns the recorded spans in creation order. The slice and the
// spans are live until the run ends; callers must not mutate them.
func (t *Tracer) Spans() []*Span { return t.spans }

// WidthChanges returns the recorded width-controller moves.
func (t *Tracer) WidthChanges() []WidthChange { return t.widths }

// Report returns a copy of the lifecycle counts accumulated so far.
func (t *Tracer) Report() Report { return t.rep }
