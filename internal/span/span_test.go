package span

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"retri/internal/aff"
	"retri/internal/core"
	"retri/internal/frame"
	"retri/internal/radio"
)

// harness bundles a tracer with a settable clock and the codec that
// produces its frames.
type harness struct {
	tr    *Tracer
	codec frame.AFFCodec
	now   time.Duration
}

func newHarness(t *testing.T, instrument bool) *harness {
	t.Helper()
	h := &harness{}
	cfg := Config{
		AFF: aff.Config{
			Space:             core.MustSpace(8),
			MTU:               27,
			Instrument:        instrument,
			ReassemblyTimeout: 100 * time.Millisecond,
		},
		Now: func() time.Duration { return h.now },
	}
	tr, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	h.tr = tr
	h.codec = frame.AFFCodec{IDBits: 8, Instrument: instrument}
	return h
}

func (h *harness) intro(t *testing.T, from radio.NodeID, id uint64, totalLen int, truth *frame.Truth) radio.Frame {
	t.Helper()
	p, bits, err := h.codec.EncodeIntro(frame.Intro{ID: id, TotalLen: totalLen, Checksum: 0xBEEF, Truth: truth})
	if err != nil {
		t.Fatalf("EncodeIntro: %v", err)
	}
	return radio.Frame{From: from, Payload: p, Bits: bits}
}

func (h *harness) data(t *testing.T, from radio.NodeID, id uint64, offset int, payload []byte, truth *frame.Truth) radio.Frame {
	t.Helper()
	p, bits, err := h.codec.EncodeData(frame.Data{ID: id, Offset: offset, Payload: payload, Truth: truth})
	if err != nil {
		t.Fatalf("EncodeData: %v", err)
	}
	return radio.Frame{From: from, Payload: p, Bits: bits}
}

func (h *harness) open(sender radio.NodeID, id uint64, truth *frame.Truth, strategy string, redraws int) {
	h.tr.TxOpen(sender, aff.Transaction{ID: id, IDBits: 8, Truth: truth, Redraws: redraws}, id, strategy)
}

func TestLifecycleDelivered(t *testing.T) {
	h := newHarness(t, true)
	truth := &frame.Truth{Node: 1, Seq: 0}
	h.open(1, 5, truth, "uniform", 2)
	if got := h.tr.Report().Spans; got != 1 {
		t.Fatalf("Spans = %d, want 1", got)
	}

	fi := h.intro(t, 1, 5, 4, truth)
	h.tr.FrameSent(fi)
	h.tr.FrameFate(2, fi, radio.FateDelivered)
	h.now = 2 * time.Millisecond
	fd := h.data(t, 1, 5, 0, []byte{1, 2, 3, 4}, truth)
	h.tr.FrameSent(fd)
	h.tr.FrameFate(2, fd, radio.FateDelivered)
	h.tr.RxDelivered(2, aff.Packet{ID: 5, Data: []byte{1, 2, 3, 4}, Truth: truth})

	rep := h.tr.Report()
	if rep.Opened != 1 || rep.Closed != 1 || rep.FragmentsSent != 2 || rep.PacketsDelivered != 1 {
		t.Fatalf("report = %+v", rep)
	}
	s := h.tr.Spans()[0]
	if s.State() != StateClosed || s.Outcome() != "delivered" {
		t.Fatalf("state %v outcome %q", s.State(), s.Outcome())
	}
	if s.Strategy != "uniform" || s.Redraws != 2 || s.Width != 8 || s.TotalLen != 4 {
		t.Fatalf("span metadata = %+v", s)
	}
	if len(s.Frags) != 2 || s.Frags[0].Delivered != 1 || s.Frags[1].Delivered != 1 {
		t.Fatalf("frags = %+v", s.Frags)
	}
	if s.OpenedAt != 0 || s.ClosedAt != 2*time.Millisecond {
		t.Fatalf("times open %v close %v", s.OpenedAt, s.ClosedAt)
	}
	if len(s.Events) != 1 || s.Events[0].Kind != "delivered" || s.Events[0].Node != 2 {
		t.Fatalf("events = %+v", s.Events)
	}
}

func TestCollisionMarksEveryParty(t *testing.T) {
	h := newHarness(t, true)
	t1 := &frame.Truth{Node: 1, Seq: 0}
	t2 := &frame.Truth{Node: 2, Seq: 0}
	h.open(1, 7, t1, "uniform", 0)
	h.open(2, 7, t2, "uniform", 0)
	h.tr.FrameSent(h.intro(t, 1, 7, 8, t1))
	h.tr.FrameSent(h.intro(t, 2, 7, 8, t2))

	rep := h.tr.Report()
	if rep.CollisionEvents != 1 {
		t.Fatalf("CollisionEvents = %d, want 1", rep.CollisionEvents)
	}
	for i, s := range h.tr.Spans() {
		if !s.Collided {
			t.Fatalf("span %d not marked collided", i)
		}
		if s.Outcome() != "collided" {
			t.Fatalf("span %d outcome %q", i, s.Outcome())
		}
	}
}

func TestStallReviveAbandon(t *testing.T) {
	h := newHarness(t, true)
	tA := &frame.Truth{Node: 1, Seq: 0}
	tB := &frame.Truth{Node: 1, Seq: 1}
	h.open(1, 3, tA, "uniform", 0)
	h.tr.FrameSent(h.intro(t, 1, 3, 8, tA))
	h.tr.FrameSent(h.data(t, 1, 3, 0, []byte{1, 2, 3, 4}, tA))

	// Idle past the stall timeout; an unrelated frame triggers the prune.
	h.now = 150 * time.Millisecond
	other := &frame.Truth{Node: 9, Seq: 0}
	h.open(9, 200, other, "uniform", 0)
	h.tr.FrameSent(h.intro(t, 9, 200, 1, other))
	if rep := h.tr.Report(); rep.Stalled != 1 {
		t.Fatalf("Stalled = %d, want 1", rep.Stalled)
	}
	sA := h.tr.Spans()[0]
	if !sA.Stalled() || sA.Outcome() != "stalled" {
		t.Fatalf("span A stalled=%v outcome=%q", sA.Stalled(), sA.Outcome())
	}

	// A late fragment revives the stalled transaction.
	h.tr.FrameSent(h.data(t, 1, 3, 4, []byte{5, 6}, tA))
	if rep := h.tr.Report(); rep.Revived != 1 {
		t.Fatalf("Revived = %d, want 1", rep.Revived)
	}
	if sA.Stalled() || sA.Revives != 1 {
		t.Fatalf("span A after revive: stalled=%v revives=%d", sA.Stalled(), sA.Revives)
	}

	// A new transaction from the same sender abandons the open one.
	h.open(1, 4, tB, "uniform", 0)
	h.tr.FrameSent(h.intro(t, 1, 4, 2, tB))
	if rep := h.tr.Report(); rep.Abandoned != 1 {
		t.Fatalf("Abandoned = %d, want 1", rep.Abandoned)
	}
	if sA.State() != StateAbandoned || sA.Outcome() != "abandoned" {
		t.Fatalf("span A state %v outcome %q", sA.State(), sA.Outcome())
	}
}

func TestFreshnessViolationCounted(t *testing.T) {
	h := newHarness(t, true)
	tr := &frame.Truth{Node: 1, Seq: 0}
	h.open(1, 3, tr, "uniform", 0)
	h.tr.FrameSent(h.intro(t, 1, 3, 8, tr))
	// Same transaction, different identifier: a mid-flight change.
	h.tr.FrameSent(h.data(t, 1, 9, 0, []byte{1}, tr))
	if rep := h.tr.Report(); rep.FreshnessViolations != 1 {
		t.Fatalf("FreshnessViolations = %d, want 1", rep.FreshnessViolations)
	}
}

func TestTruthlessFIFOAttribution(t *testing.T) {
	h := newHarness(t, false)
	h.open(1, 5, nil, "uniform", 0)
	h.open(1, 9, nil, "uniform", 0)

	// Sender's first draw never airs (queue died); the second does. FIFO
	// matching must skip the dead draw and attribute to the second span.
	h.tr.FrameSent(h.intro(t, 1, 9, 2, nil))
	h.tr.FrameSent(h.data(t, 1, 9, 0, []byte{1, 2}, nil))

	spans := h.tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[0].Outcome() != "never-aired" {
		t.Fatalf("skipped span outcome %q", spans[0].Outcome())
	}
	if spans[1].State() != StateClosed || spans[1].FragsSent != 2 {
		t.Fatalf("aired span state %v frags %d", spans[1].State(), spans[1].FragsSent)
	}
	rep := h.tr.Report()
	if rep.Opened != 1 || rep.Closed != 1 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestTruthlessSameKeyRedrawSplitsOnIntro(t *testing.T) {
	h := newHarness(t, false)
	h.open(1, 5, nil, "uniform", 0)
	h.open(1, 5, nil, "uniform", 0)
	h.tr.FrameSent(h.intro(t, 1, 5, 8, nil)) // tx 1 opens, never finishes
	// A second intro under the same key must begin transaction 2, not
	// continue transaction 1.
	h.tr.FrameSent(h.intro(t, 1, 5, 4, nil))
	spans := h.tr.Spans()
	if spans[0].State() != StateAbandoned {
		t.Fatalf("first span state %v, want abandoned", spans[0].State())
	}
	if spans[1].State() != StateOpen || spans[1].TotalLen != 4 {
		t.Fatalf("second span state %v totalLen %d", spans[1].State(), spans[1].TotalLen)
	}
}

func TestARQRetryChain(t *testing.T) {
	h := newHarness(t, true)
	t0 := &frame.Truth{Node: 1, Seq: 0}
	t1 := &frame.Truth{Node: 1, Seq: 1}
	h.open(1, 5, t0, "uniform", 0)
	h.tr.ARQAttempt(1, 42, 0, false, 0, 5)
	h.open(1, 9, t1, "uniform", 1)
	h.tr.ARQAttempt(1, 42, 1, true, 5, 9)

	spans := h.tr.Spans()
	if spans[0].ARQSeq != 42 || spans[0].Retry != 0 || spans[0].Parent != -1 {
		t.Fatalf("attempt 0 = %+v", spans[0])
	}
	if spans[1].ARQSeq != 42 || spans[1].Retry != 1 || spans[1].Parent != 0 {
		t.Fatalf("attempt 1 = %+v", spans[1])
	}
}

func TestRejectionAndExpiryEvents(t *testing.T) {
	h := newHarness(t, true)
	tr := &frame.Truth{Node: 1, Seq: 0}
	h.open(1, 5, tr, "uniform", 0)
	h.tr.FrameSent(h.intro(t, 1, 5, 2, tr))
	h.tr.RxRejected(3, 5, false)
	h.tr.RxRejected(4, 5, true)
	h.tr.RxExpired(6, 5)
	s := h.tr.Spans()[0]
	if s.RejectedConflict != 1 || s.RejectedChecksum != 1 || s.Expired != 1 {
		t.Fatalf("span rx counters = %+v", s)
	}
	if s.Outcome() != "rejected" {
		t.Fatalf("outcome %q, want rejected", s.Outcome())
	}
	if h.tr.Report().OrphanEvents != 0 {
		t.Fatalf("orphans = %d", h.tr.Report().OrphanEvents)
	}
}

// TestEvictionOutcome pins the memory-pressure degradation path: a
// MaxPartials cap eviction is recorded distinctly from idle expiry, names
// the span's root cause, and still loses to later delivery evidence from
// another receiver.
func TestEvictionOutcome(t *testing.T) {
	h := newHarness(t, true)
	tr := &frame.Truth{Node: 1, Seq: 0}
	h.open(1, 5, tr, "uniform", 0)
	h.tr.FrameSent(h.intro(t, 1, 5, 2, tr))
	h.tr.RxEvicted(2, 5)
	s := h.tr.Spans()[0]
	if s.Evicted != 1 || s.Expired != 0 {
		t.Fatalf("rx counters = %+v, want one eviction and no expiries", s)
	}
	if s.Outcome() != "reassembly-evicted" {
		t.Fatalf("outcome %q, want reassembly-evicted", s.Outcome())
	}
	if last := s.Events[len(s.Events)-1]; last.Kind != "evicted" || last.Node != 2 {
		t.Fatalf("last event = %+v, want evicted@2", last)
	}
	// A surviving receiver completing the packet outranks the eviction.
	h.tr.FrameSent(h.data(t, 1, 5, 0, []byte{1, 2}, tr))
	h.tr.RxDelivered(3, aff.Packet{ID: 5, Data: []byte{1, 2}, Truth: tr})
	if s.Outcome() != "delivered" {
		t.Fatalf("outcome %q after delivery, want delivered", s.Outcome())
	}
	if h.tr.Report().OrphanEvents != 0 {
		t.Fatalf("orphans = %d", h.tr.Report().OrphanEvents)
	}
}

// TestBudgetExhaustedOutcome pins the sender-side degradation path: the
// ARQ endpoint abandoning a chain marks its final attempt so -failed can
// bucket it as retry-budget-exhausted.
func TestBudgetExhaustedOutcome(t *testing.T) {
	h := newHarness(t, true)
	tr := &frame.Truth{Node: 1, Seq: 0}
	h.open(1, 5, tr, "uniform", 0)
	h.tr.ARQAttempt(1, 42, 0, false, 0, 5)
	h.tr.FrameSent(h.intro(t, 1, 5, 2, tr))
	h.tr.ARQAbandon(1, 42, 1, true, 5)
	s := h.tr.Spans()[0]
	if !s.BudgetExhausted {
		t.Fatal("abandonment did not mark the final attempt")
	}
	if s.Outcome() != "retry-budget-exhausted" {
		t.Fatalf("outcome %q, want retry-budget-exhausted", s.Outcome())
	}
	// A stale key must not attribute the abandonment to the wrong span.
	h2 := newHarness(t, true)
	h2.open(1, 5, tr, "uniform", 0)
	h2.tr.ARQAttempt(1, 42, 0, false, 0, 5)
	h2.tr.ARQAbandon(1, 42, 1, true, 9)
	if h2.tr.Spans()[0].BudgetExhausted {
		t.Fatal("abandonment with mismatched key was attributed anyway")
	}
	if h2.tr.Report().OrphanEvents != 1 {
		t.Fatalf("orphans = %d, want 1", h2.tr.Report().OrphanEvents)
	}
}

// TestLedgerCarriesDegradationFields keeps the on-disk contract for the
// two degradation outcomes retri-trace -failed buckets on.
func TestLedgerCarriesDegradationFields(t *testing.T) {
	h := newHarness(t, true)
	t0 := &frame.Truth{Node: 1, Seq: 0}
	t1 := &frame.Truth{Node: 1, Seq: 1}
	h.open(1, 5, t0, "uniform", 0)
	h.tr.FrameSent(h.intro(t, 1, 5, 2, t0))
	h.tr.RxEvicted(2, 5)
	h.open(1, 9, t1, "uniform", 0)
	h.tr.ARQAttempt(1, 7, 0, false, 0, 9)
	h.tr.FrameSent(h.intro(t, 1, 9, 2, t1))
	h.tr.ARQAbandon(1, 7, 1, true, 9)

	l := NewLedger()
	l.AddTrial("trial-0", h.tr)
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	recs, _, err := ReadJSONL(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2", len(recs))
	}
	if recs[0].Evicted != 1 || recs[0].Outcome != "reassembly-evicted" {
		t.Fatalf("evicted record = %+v", recs[0])
	}
	if !recs[1].BudgetExhausted || recs[1].Outcome != "retry-budget-exhausted" {
		t.Fatalf("exhausted record = %+v", recs[1])
	}
}

func TestWidthChangeRecorded(t *testing.T) {
	h := newHarness(t, true)
	h.now = 7 * time.Millisecond
	h.tr.NoteWidthChange(4, 10, 9)
	ws := h.tr.WidthChanges()
	if len(ws) != 1 || ws[0] != (WidthChange{At: 7 * time.Millisecond, Node: 4, From: 10, To: 9}) {
		t.Fatalf("widths = %+v", ws)
	}
}

func TestLedgerJSONLRoundTrip(t *testing.T) {
	h := newHarness(t, true)
	tr := &frame.Truth{Node: 1, Seq: 0}
	h.open(1, 5, tr, "uniform", 1)
	h.tr.FrameSent(h.intro(t, 1, 5, 2, tr))
	h.tr.FrameSent(h.data(t, 1, 5, 0, []byte{1, 2}, tr))
	h.tr.NoteWidthChange(1, 8, 7)

	l := NewLedger()
	l.AddTrial("trial-0", h.tr)
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	recs, widths, err := ReadJSONL(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(recs) != 1 || len(widths) != 1 {
		t.Fatalf("rows = %d spans, %d widths", len(recs), len(widths))
	}
	r := recs[0]
	if r.Trial != "trial-0" || r.Key != 5 || r.Outcome != "lost" || r.State != "closed" {
		t.Fatalf("record = %+v", r)
	}
	if !r.HasTruth || r.Truth().Node != 1 {
		t.Fatalf("truth = %+v", r.Truth())
	}
	if len(r.Frags) != 2 {
		t.Fatalf("frags = %+v", r.Frags)
	}
	if widths[0].From != 8 || widths[0].To != 7 {
		t.Fatalf("width row = %+v", widths[0])
	}
	// Round-trip again: the serialized form is a fixed point.
	var buf2 bytes.Buffer
	enc := json.NewEncoder(&buf2)
	for _, rec := range recs {
		if err := enc.Encode(rec); err != nil {
			t.Fatal(err)
		}
	}
	for _, w := range widths {
		if err := enc.Encode(w); err != nil {
			t.Fatal(err)
		}
	}
	if buf2.String() != buf.String() {
		t.Fatalf("round trip diverged:\n%s\nvs\n%s", buf.String(), buf2.String())
	}
}

func TestReadJSONLRejectsUnknownType(t *testing.T) {
	_, _, err := ReadJSONL(strings.NewReader(`{"type":"mystery"}` + "\n"))
	if err == nil {
		t.Fatal("want error for unknown row type")
	}
}

func TestChromeExportIsValidTraceJSON(t *testing.T) {
	recs := []Record{
		{Type: "span", Trial: "a", Span: 0, Sender: 1, Key: 5, OpenedNS: 0, ClosedNS: 1e6, Outcome: "delivered", Retry: -1, ARQSeq: -1, Parent: -1},
		{Type: "span", Trial: "a", Span: 1, Sender: 1, Key: 9, OpenedNS: 2e6, ClosedNS: 3e6, Outcome: "delivered", Retry: 1, ARQSeq: 7, Parent: 0},
		{Type: "span", Trial: "a", Span: 2, Sender: 2, Key: 3, OpenedNS: -1, ClosedNS: -1, Outcome: "never-aired", Retry: -1, ARQSeq: -1, Parent: -1},
	}
	widths := []WidthRecord{{Type: "width", Trial: "a", AtNS: 5e5, Node: 1, From: 8, To: 7}}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, recs, widths); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	// 2 slices (never-aired skipped) + 2 flow events + 1 instant.
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("events = %d, want 5\n%s", len(doc.TraceEvents), buf.String())
	}
}

func TestSeriesBuckets(t *testing.T) {
	sec := int64(time.Second)
	recs := []Record{
		// Open the whole first second, collides.
		{Span: 0, Width: 8, Collided: true, OpenedNS: 0, ClosedNS: sec},
		// Opens at 0.5s, closes at 1.5s: half coverage in each bucket.
		{Span: 1, Width: 6, Deliveries: 1, OpenedNS: sec / 2, ClosedNS: sec + sec/2},
		// Never aired: invisible.
		{Span: 2, Width: 8, OpenedNS: -1, ClosedNS: -1},
	}
	pts := Series(recs, time.Second)
	if len(pts) != 2 {
		t.Fatalf("points = %d, want 2", len(pts))
	}
	p0, p1 := pts[0], pts[1]
	if p0.Opened != 2 || p0.Collisions != 1 || p0.Delivered != 1 {
		t.Fatalf("p0 = %+v", p0)
	}
	if p0.WidthMean != 7 || p0.CollisionRate != 0.5 {
		t.Fatalf("p0 means = %+v", p0)
	}
	if p0.ActiveMean != 1.5 {
		t.Fatalf("p0 active = %v, want 1.5", p0.ActiveMean)
	}
	if p1.Opened != 0 || p1.Closed != 2 || p1.ActiveMean != 0.5 {
		t.Fatalf("p1 = %+v", p1)
	}

	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, pts); err != nil {
		t.Fatalf("WriteSeriesCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[0], "start_s,") {
		t.Fatalf("csv:\n%s", buf.String())
	}
}
