// Ledger: the queryable, file-backed form of a span trace. Each trial's
// tracer is folded in trial-index order — the same capture-then-merge
// discipline as metrics.Merge — so parallel and sequential runs of the
// same seed produce byte-identical ledgers.
package span

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"retri/internal/frame"
	"retri/internal/radio"
)

// Record is the flat, serializable form of one span: everything the
// query CLI and the exporters need, with no live pointers.
type Record struct {
	Type  string `json:"type"` // "span"
	Trial string `json:"trial,omitempty"`
	Span  int    `json:"span"` // index within the trial, creation order

	Sender    radio.NodeID `json:"sender"`
	HasTruth  bool         `json:"has_truth,omitempty"`
	TruthNode uint32       `json:"truth_node,omitempty"`
	TruthSeq  uint32       `json:"truth_seq,omitempty"`

	Key      uint64 `json:"key"`
	Width    int    `json:"width"`
	ID       uint64 `json:"id"`
	Strategy string `json:"strategy,omitempty"`
	Redraws  int    `json:"redraws,omitempty"`

	ARQSeq int `json:"arq_seq"` // -1 when not an ARQ attempt
	Retry  int `json:"retry"`   // -1 when not an ARQ attempt
	Parent int `json:"parent"`  // span index of previous attempt, -1 none

	QueuedNS int64 `json:"queued_ns"` // -1 unset
	OpenedNS int64 `json:"opened_ns"` // -1 while queued
	ClosedNS int64 `json:"closed_ns"` // -1 while open

	TotalLen int    `json:"total_len"`
	State    string `json:"state"`
	Outcome  string `json:"outcome"`
	Collided bool   `json:"collided,omitempty"`
	Revives  int    `json:"revives,omitempty"`

	FragsSent        int  `json:"frags_sent"`
	Deliveries       int  `json:"deliveries,omitempty"`
	RejectedChecksum int  `json:"rejected_checksum,omitempty"`
	RejectedConflict int  `json:"rejected_conflict,omitempty"`
	Expired          int  `json:"expired,omitempty"`
	Evicted          int  `json:"evicted,omitempty"`
	BudgetExhausted  bool `json:"budget_exhausted,omitempty"`
	Anomalies        int  `json:"anomalies,omitempty"`

	Frags  []Frag  `json:"frags,omitempty"`
	Events []Event `json:"events,omitempty"`
}

// WidthRecord is the serializable form of one width-controller move.
type WidthRecord struct {
	Type  string       `json:"type"` // "width"
	Trial string       `json:"trial,omitempty"`
	AtNS  int64        `json:"at_ns"`
	Node  radio.NodeID `json:"node"`
	From  int          `json:"from"`
	To    int          `json:"to"`
}

// recordOf flattens one live span.
func recordOf(trial string, s *Span) Record {
	r := Record{
		Type:     "span",
		Trial:    trial,
		Span:     s.Index,
		Sender:   s.Sender,
		Key:      s.Key,
		Width:    s.Width,
		ID:       s.ID,
		Strategy: s.Strategy,
		Redraws:  s.Redraws,
		ARQSeq:   s.ARQSeq,
		Retry:    s.Retry,
		Parent:   s.Parent,
		QueuedNS: int64(s.QueuedAt),
		OpenedNS: int64(s.OpenedAt),
		ClosedNS: int64(s.ClosedAt),
		TotalLen: s.TotalLen,
		State:    s.state.String(),
		Outcome:  s.Outcome(),
		Collided: s.Collided,
		Revives:  s.Revives,

		FragsSent:        s.FragsSent,
		Deliveries:       s.Deliveries,
		RejectedChecksum: s.RejectedChecksum,
		RejectedConflict: s.RejectedConflict,
		Expired:          s.Expired,
		Evicted:          s.Evicted,
		BudgetExhausted:  s.BudgetExhausted,
		Anomalies:        s.Anomalies,
		Frags:            s.Frags,
		Events:           s.Events,
	}
	if s.Truth != nil {
		r.HasTruth = true
		r.TruthNode = s.Truth.Node
		r.TruthSeq = s.Truth.Seq
	}
	return r
}

// Truth reconstructs the instrumentation trailer, nil when absent.
func (r Record) Truth() *frame.Truth {
	if !r.HasTruth {
		return nil
	}
	return &frame.Truth{Node: r.TruthNode, Seq: r.TruthSeq}
}

// Ledger accumulates per-trial span traces into one queryable store.
type Ledger struct {
	records []Record
	widths  []WidthRecord
	rep     Report
	trials  int
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger { return &Ledger{} }

// AddTrial folds one trial's tracer into the ledger. Call in trial
// order; the tracer must be done (its trial's engine has drained).
func (l *Ledger) AddTrial(trial string, t *Tracer) {
	if t == nil {
		return
	}
	l.trials++
	for _, s := range t.Spans() {
		l.records = append(l.records, recordOf(trial, s))
	}
	for _, w := range t.WidthChanges() {
		l.widths = append(l.widths, WidthRecord{Type: "width", Trial: trial, AtNS: int64(w.At), Node: w.Node, From: w.From, To: w.To})
	}
	l.rep.Merge(t.Report())
}

// Records returns the folded span records in (trial, creation) order.
func (l *Ledger) Records() []Record { return l.records }

// WidthChanges returns the folded width-move records.
func (l *Ledger) WidthChanges() []WidthRecord { return l.widths }

// Report returns the lifecycle counts merged across trials.
func (l *Ledger) Report() Report { return l.rep }

// Trials returns how many trials were folded in.
func (l *Ledger) Trials() int { return l.trials }

// WriteJSONL streams the ledger as JSON Lines: one object per row,
// "type" discriminating span rows from width rows. Spans first in fold
// order, then width moves — a deterministic, grep- and jq-friendly
// layout.
func (l *Ledger) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range l.records {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	for _, wc := range l.widths {
		if err := enc.Encode(wc); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a ledger written by WriteJSONL. Unknown row types
// are an error — the file is a contract, not a suggestion.
func ReadJSONL(r io.Reader) ([]Record, []WidthRecord, error) {
	var (
		recs   []Record
		widths []WidthRecord
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(b, &probe); err != nil {
			return nil, nil, fmt.Errorf("span ledger line %d: %w", line, err)
		}
		switch probe.Type {
		case "span":
			var rec Record
			if err := json.Unmarshal(b, &rec); err != nil {
				return nil, nil, fmt.Errorf("span ledger line %d: %w", line, err)
			}
			recs = append(recs, rec)
		case "width":
			var wr WidthRecord
			if err := json.Unmarshal(b, &wr); err != nil {
				return nil, nil, fmt.Errorf("span ledger line %d: %w", line, err)
			}
			widths = append(widths, wr)
		default:
			return nil, nil, fmt.Errorf("span ledger line %d: unknown row type %q", line, probe.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return recs, widths, nil
}
