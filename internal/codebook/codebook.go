// Package codebook implements the paper's second RETRI application
// (Section 6): attribute-based name compression.
//
// "The attributes and associated values might be quite large, but the same
// attribute/value pairs might be used frequently by a node. This problem
// has traditionally been solved by creation of a 'codebook' mapping small
// identifiers to long lists of attributes. Nodes using codebooks can
// choose RETRI identifiers instead of traditional alternatives."
//
// A sender announces a binding (code -> full name) once, then tags each
// reading with the short code. Receivers cache bindings with a TTL — the
// binding's lifetime is the transaction. Two senders announcing different
// names under one code is a RETRI collision: receivers detect the
// disagreement, drop the binding, and subsequent readings under that code
// are discarded until a fresh announcement, exactly the
// loss-not-resolution discipline of Section 3.1.
package codebook

import (
	"errors"
	"fmt"
	"time"

	"retri/internal/bitio"
	"retri/internal/core"
	"retri/internal/naming"
)

// Message kinds on the wire.
const (
	kindAnnounce = 0
	kindReading  = 1
)

var (
	// ErrUnknownCode is returned when a reading references no live
	// binding.
	ErrUnknownCode = errors.New("codebook: unknown code")
	// ErrBadMessage is returned for undecodable messages.
	ErrBadMessage = errors.New("codebook: malformed message")
)

// Announcement binds a short code to a full name.
type Announcement struct {
	Code uint64
	Name naming.Name
}

// Reading is a sensor value tagged with a code standing in for its name.
type Reading struct {
	Code  uint64
	Value []byte
}

// Encoder is the sender side: it assigns RETRI codes to names and packs
// announcements and readings.
type Encoder struct {
	space core.Space
	sel   core.Selector
	// codes maps canonical name keys to live codes.
	codes map[string]uint64

	// Bits accounting for the compression comparison.
	announceBits int64
	readingBits  int64
	fullBits     int64 // what the readings would have cost carrying names
}

// NewEncoder returns an encoder drawing codes from sel.
func NewEncoder(sel core.Selector) *Encoder {
	return &Encoder{
		space: sel.Space(),
		sel:   sel,
		codes: make(map[string]uint64),
	}
}

// CodeFor returns the live code for a name, allocating a fresh one (and
// the announcement to broadcast) when none exists. announcement is nil
// when the binding was already live.
func (e *Encoder) CodeFor(name naming.Name) (code uint64, announcement []byte, bits int, err error) {
	key := name.Key()
	if code, ok := e.codes[key]; ok {
		return code, nil, 0, nil
	}
	code = e.sel.Next()
	buf, bits, err := EncodeAnnouncement(e.space, Announcement{Code: code, Name: name})
	if err != nil {
		return 0, nil, 0, err
	}
	e.codes[key] = code
	e.announceBits += int64(bits)
	return code, buf, bits, nil
}

// Retire drops a binding so the next use of the name draws a fresh code —
// ending the transaction. Retiring keeps collisions ephemeral.
func (e *Encoder) Retire(name naming.Name) {
	delete(e.codes, name.Key())
}

// EncodeReading packs a reading under the name's live code.
func (e *Encoder) EncodeReading(name naming.Name, value []byte) (msg []byte, announcement []byte, err error) {
	code, ann, _, err := e.CodeFor(name)
	if err != nil {
		return nil, nil, err
	}
	buf, bits, err := EncodeReadingMsg(e.space, Reading{Code: code, Value: value})
	if err != nil {
		return nil, nil, err
	}
	e.readingBits += int64(bits)
	nameBits, err := name.EncodedBits()
	if err == nil {
		// The uncompressed alternative: every reading carries the name.
		e.fullBits += int64(nameBits + 8*len(value) + 8)
	}
	return buf, ann, nil
}

// BitsStats reports the encoder's accounting: announcement bits spent,
// reading bits spent, and the bits the same readings would have cost with
// full names inline.
func (e *Encoder) BitsStats() (announce, readings, fullNames int64) {
	return e.announceBits, e.readingBits, e.fullBits
}

// Decoder is the receiver side: it learns bindings and resolves readings.
type Decoder struct {
	space core.Space
	ttl   time.Duration
	now   func() time.Duration

	bindings map[uint64]*binding
	stats    DecoderStats
}

type binding struct {
	name     naming.Name
	lastSeen time.Duration
	dead     bool // killed by a collision; stays dead until TTL expiry
}

// DecoderStats counts decoder outcomes.
type DecoderStats struct {
	// Announcements counts bindings learned or refreshed.
	Announcements int64
	// Collisions counts conflicting announcements (two names, one code).
	Collisions int64
	// Resolved counts readings successfully mapped to names.
	Resolved int64
	// Unresolved counts readings with no live binding.
	Unresolved int64
}

// NewDecoder returns a decoder whose bindings live for ttl. A nil now
// disables expiry.
func NewDecoder(space core.Space, ttl time.Duration, now func() time.Duration) *Decoder {
	if now == nil {
		now = func() time.Duration { return 0 }
		ttl = 0
	}
	return &Decoder{
		space:    space,
		ttl:      ttl,
		now:      now,
		bindings: make(map[uint64]*binding),
	}
}

// Stats returns a snapshot of decoder counters.
func (d *Decoder) Stats() DecoderStats { return d.stats }

// HandleAnnouncement learns or refreshes a binding. A conflicting
// announcement — same code, different name — kills the binding: both
// transactions lose, and the code stays dead until the TTL clears it.
func (d *Decoder) HandleAnnouncement(a Announcement) {
	d.expire()
	b, ok := d.bindings[a.Code]
	if !ok {
		d.bindings[a.Code] = &binding{name: a.Name, lastSeen: d.now()}
		d.stats.Announcements++
		return
	}
	b.lastSeen = d.now()
	if b.dead {
		return
	}
	if !naming.Equal(b.name, a.Name) {
		b.dead = true
		d.stats.Collisions++
		return
	}
	d.stats.Announcements++
}

// Resolve maps a reading to its full name.
func (d *Decoder) Resolve(r Reading) (naming.Name, error) {
	d.expire()
	b, ok := d.bindings[r.Code]
	if !ok || b.dead {
		d.stats.Unresolved++
		return nil, fmt.Errorf("%w: %d", ErrUnknownCode, r.Code)
	}
	b.lastSeen = d.now()
	d.stats.Resolved++
	return b.name, nil
}

// Ingest decodes a raw message and dispatches it, returning the resolved
// reading name when the message was a resolvable reading.
func (d *Decoder) Ingest(p []byte) (name naming.Name, value []byte, isReading bool, err error) {
	msg, err := Decode(d.space, p)
	if err != nil {
		return nil, nil, false, err
	}
	switch m := msg.(type) {
	case *Announcement:
		d.HandleAnnouncement(*m)
		return nil, nil, false, nil
	case *Reading:
		n, err := d.Resolve(*m)
		if err != nil {
			return nil, nil, true, err
		}
		return n, m.Value, true, nil
	default:
		return nil, nil, false, ErrBadMessage
	}
}

func (d *Decoder) expire() {
	if d.ttl <= 0 {
		return
	}
	cutoff := d.now() - d.ttl
	if cutoff <= 0 {
		return
	}
	for code, b := range d.bindings {
		if b.lastSeen < cutoff {
			delete(d.bindings, code)
		}
	}
}

// EncodeAnnouncement packs an announcement: kind bit, code, full name.
func EncodeAnnouncement(space core.Space, a Announcement) ([]byte, int, error) {
	if !space.Contains(a.Code) {
		return nil, 0, fmt.Errorf("%w: code %d outside space", ErrBadMessage, a.Code)
	}
	nameBytes, err := a.Name.Encode()
	if err != nil {
		return nil, 0, err
	}
	w := bitio.NewWriter()
	must(w, kindAnnounce, 1)
	must(w, a.Code, space.Bits())
	w.Align()
	w.WriteBytes(nameBytes)
	return w.Bytes(), w.Len(), nil
}

// EncodeReadingMsg packs a reading: kind bit, code, value bytes.
func EncodeReadingMsg(space core.Space, r Reading) ([]byte, int, error) {
	if !space.Contains(r.Code) {
		return nil, 0, fmt.Errorf("%w: code %d outside space", ErrBadMessage, r.Code)
	}
	w := bitio.NewWriter()
	must(w, kindReading, 1)
	must(w, r.Code, space.Bits())
	w.Align()
	w.WriteBytes(r.Value)
	return w.Bytes(), w.Len(), nil
}

// Decode parses a message, returning *Announcement or *Reading.
func Decode(space core.Space, p []byte) (any, error) {
	r := bitio.NewReader(p)
	kind, err := r.ReadBits(1)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	code, err := r.ReadBits(space.Bits())
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	r.Align()
	rest := make([]byte, r.Remaining()/8)
	if err := r.ReadBytes(rest); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	if kind == kindAnnounce {
		name, err := naming.Decode(rest)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
		}
		return &Announcement{Code: code, Name: name}, nil
	}
	return &Reading{Code: code, Value: rest}, nil
}

func must(w *bitio.Writer, v uint64, bits int) {
	if err := w.WriteBits(v, bits); err != nil {
		panic(err)
	}
}
