package codebook

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"retri/internal/core"
	"retri/internal/naming"
	"retri/internal/xrand"
)

func testName() naming.Name {
	return naming.Name{
		{Key: "type", Op: naming.Is, Value: "temperature"},
		{Key: "quadrant", Op: naming.Is, Value: "north-east"},
		{Key: "unit", Op: naming.Is, Value: "celsius"},
	}
}

func otherName() naming.Name {
	return naming.Name{
		{Key: "type", Op: naming.Is, Value: "humidity"},
	}
}

func newEncoder(t *testing.T, bits int, seed uint64) *Encoder {
	t.Helper()
	space := core.MustSpace(bits)
	sel := core.NewUniformSelector(space, xrand.NewSource(seed).Stream("cb", t.Name()))
	return NewEncoder(sel)
}

func TestAnnounceOncePerName(t *testing.T) {
	e := newEncoder(t, 8, 1)
	code1, ann1, bits, err := e.CodeFor(testName())
	if err != nil {
		t.Fatal(err)
	}
	if ann1 == nil || bits == 0 {
		t.Fatal("first use should produce an announcement")
	}
	code2, ann2, _, err := e.CodeFor(testName())
	if err != nil {
		t.Fatal(err)
	}
	if code2 != code1 {
		t.Errorf("second use drew a new code: %d vs %d", code2, code1)
	}
	if ann2 != nil {
		t.Error("second use should not re-announce")
	}
}

func TestRetireDrawsFreshCode(t *testing.T) {
	e := newEncoder(t, 16, 2)
	code1, _, _, err := e.CodeFor(testName())
	if err != nil {
		t.Fatal(err)
	}
	e.Retire(testName())
	code2, ann, _, err := e.CodeFor(testName())
	if err != nil {
		t.Fatal(err)
	}
	if ann == nil {
		t.Error("post-retire use should re-announce")
	}
	if code1 == code2 {
		t.Error("retired name re-drew the same code (possible but 1/65536; treat as failure)")
	}
}

func TestEndToEndReadingFlow(t *testing.T) {
	space := core.MustSpace(8)
	e := newEncoder(t, 8, 3)
	d := NewDecoder(space, 0, nil)

	msg, ann, err := e.EncodeReading(testName(), []byte{42})
	if err != nil {
		t.Fatal(err)
	}
	if ann == nil {
		t.Fatal("first reading must carry an announcement")
	}
	if _, _, _, err := d.Ingest(ann); err != nil {
		t.Fatalf("ingest announcement: %v", err)
	}
	name, value, isReading, err := d.Ingest(msg)
	if err != nil || !isReading {
		t.Fatalf("ingest reading: %v (reading=%v)", err, isReading)
	}
	if !naming.Equal(name, testName()) {
		t.Errorf("resolved name %v, want %v", name, testName())
	}
	if !bytes.Equal(value, []byte{42}) {
		t.Errorf("value = %v, want [42]", value)
	}
	if d.Stats().Resolved != 1 {
		t.Errorf("Resolved = %d, want 1", d.Stats().Resolved)
	}
}

func TestReadingWithoutAnnouncementUnresolved(t *testing.T) {
	space := core.MustSpace(8)
	d := NewDecoder(space, 0, nil)
	msg, _, err := EncodeReadingMsg(space, Reading{Code: 7, Value: []byte{1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := d.Ingest(msg); !errors.Is(err, ErrUnknownCode) {
		t.Errorf("err = %v, want ErrUnknownCode", err)
	}
	if d.Stats().Unresolved != 1 {
		t.Errorf("Unresolved = %d, want 1", d.Stats().Unresolved)
	}
}

func TestCodeCollisionKillsBinding(t *testing.T) {
	// Two senders announce different names under one code: the decoder
	// must refuse to resolve readings for that code — the Section 3.1
	// "collisions are losses" discipline.
	space := core.MustSpace(4)
	d := NewDecoder(space, 0, nil)
	d.HandleAnnouncement(Announcement{Code: 5, Name: testName()})
	d.HandleAnnouncement(Announcement{Code: 5, Name: otherName()})
	if d.Stats().Collisions != 1 {
		t.Fatalf("Collisions = %d, want 1", d.Stats().Collisions)
	}
	if _, err := d.Resolve(Reading{Code: 5}); !errors.Is(err, ErrUnknownCode) {
		t.Errorf("resolve of dead binding err = %v", err)
	}
	// A re-announcement while dead does not resurrect it.
	d.HandleAnnouncement(Announcement{Code: 5, Name: testName()})
	if _, err := d.Resolve(Reading{Code: 5}); err == nil {
		t.Error("dead binding resurrected before TTL")
	}
}

func TestDuplicateAnnouncementRefreshes(t *testing.T) {
	space := core.MustSpace(4)
	d := NewDecoder(space, 0, nil)
	d.HandleAnnouncement(Announcement{Code: 3, Name: testName()})
	d.HandleAnnouncement(Announcement{Code: 3, Name: testName()})
	if d.Stats().Collisions != 0 {
		t.Error("identical announcements flagged as collision")
	}
	if d.Stats().Announcements != 2 {
		t.Errorf("Announcements = %d, want 2", d.Stats().Announcements)
	}
}

func TestTTLExpiryEndsTransaction(t *testing.T) {
	space := core.MustSpace(4)
	now := time.Duration(0)
	d := NewDecoder(space, 10*time.Second, func() time.Duration { return now })
	d.HandleAnnouncement(Announcement{Code: 2, Name: testName()})
	if _, err := d.Resolve(Reading{Code: 2}); err != nil {
		t.Fatal(err)
	}
	now = time.Minute
	if _, err := d.Resolve(Reading{Code: 2}); !errors.Is(err, ErrUnknownCode) {
		t.Errorf("expired binding still resolves: %v", err)
	}
	// Expiry also clears dead bindings, letting the code be reused.
	d.HandleAnnouncement(Announcement{Code: 2, Name: otherName()})
	if _, err := d.Resolve(Reading{Code: 2}); err != nil {
		t.Errorf("code not reusable after expiry: %v", err)
	}
}

func TestCompressionAccounting(t *testing.T) {
	e := newEncoder(t, 8, 4)
	for i := 0; i < 50; i++ {
		if _, _, err := e.EncodeReading(testName(), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	announce, readings, full := e.BitsStats()
	if announce == 0 || readings == 0 || full == 0 {
		t.Fatalf("accounting incomplete: %d/%d/%d", announce, readings, full)
	}
	// The whole point: one announcement plus 50 short readings costs far
	// less than 50 readings carrying the full name.
	if announce+readings >= full {
		t.Errorf("codebook (%d bits) should beat inline names (%d bits)",
			announce+readings, full)
	}
}

func TestWireRoundTrip(t *testing.T) {
	space := core.MustSpace(9)
	ann := Announcement{Code: 300, Name: testName()}
	buf, bits, err := EncodeAnnouncement(space, ann)
	if err != nil {
		t.Fatal(err)
	}
	if bits <= 0 {
		t.Error("zero bits")
	}
	got, err := Decode(space, buf)
	if err != nil {
		t.Fatal(err)
	}
	ga, ok := got.(*Announcement)
	if !ok || ga.Code != 300 || !naming.Equal(ga.Name, ann.Name) {
		t.Errorf("announcement round trip failed: %+v", got)
	}

	rd := Reading{Code: 300, Value: []byte{1, 2, 3}}
	buf, _, err = EncodeReadingMsg(space, rd)
	if err != nil {
		t.Fatal(err)
	}
	got, err = Decode(space, buf)
	if err != nil {
		t.Fatal(err)
	}
	gr, ok := got.(*Reading)
	if !ok || gr.Code != 300 || !bytes.Equal(gr.Value, rd.Value) {
		t.Errorf("reading round trip failed: %+v", got)
	}
}

func TestWireValidation(t *testing.T) {
	space := core.MustSpace(4)
	if _, _, err := EncodeAnnouncement(space, Announcement{Code: 16}); !errors.Is(err, ErrBadMessage) {
		t.Errorf("oversize code err = %v", err)
	}
	if _, _, err := EncodeReadingMsg(space, Reading{Code: 16}); !errors.Is(err, ErrBadMessage) {
		t.Errorf("oversize code err = %v", err)
	}
	if _, err := Decode(space, nil); !errors.Is(err, ErrBadMessage) {
		t.Errorf("empty decode err = %v", err)
	}
}
