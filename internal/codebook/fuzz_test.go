package codebook

import (
	"testing"

	"retri/internal/core"
)

// FuzzDecode: message decoding must never panic on arbitrary bytes, across
// identifier widths, and accepted messages must re-encode.
func FuzzDecode(f *testing.F) {
	space := core.MustSpace(8)
	ann, _, _ := EncodeAnnouncement(space, Announcement{Code: 7})
	rd, _, _ := EncodeReadingMsg(space, Reading{Code: 7, Value: []byte{1}})
	f.Add(ann, 8)
	f.Add(rd, 8)
	f.Add([]byte{}, 1)
	f.Add([]byte{0x80, 0x01}, 16)

	f.Fuzz(func(t *testing.T, p []byte, bits int) {
		b := ((bits % 32) + 32) % 32
		if b == 0 {
			b = 1
		}
		space := core.MustSpace(b)
		msg, err := Decode(space, p)
		if err != nil {
			return
		}
		switch m := msg.(type) {
		case *Announcement:
			if _, _, err := EncodeAnnouncement(space, *m); err != nil {
				t.Fatalf("decoded announcement failed to re-encode: %v", err)
			}
		case *Reading:
			if _, _, err := EncodeReadingMsg(space, *m); err != nil {
				t.Fatalf("decoded reading failed to re-encode: %v", err)
			}
		default:
			t.Fatalf("unexpected type %T", msg)
		}
	})
}
