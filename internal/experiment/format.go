package experiment

import (
	"fmt"
	"sort"
	"strings"
)

func affLabel(t float64) string {
	return fmt.Sprintf("AFF T=%s", formatCount(t))
}

func staticLabel(h int) string {
	return fmt.Sprintf("static %d-bit", h)
}

// formatCount renders densities the way the paper speaks about them
// (16, 256, 64K).
func formatCount(t float64) string {
	if t >= 1024 && t == float64(int64(t)) && int64(t)%1024 == 0 {
		return fmt.Sprintf("%dK", int64(t)/1024)
	}
	if t == float64(int64(t)) {
		return fmt.Sprintf("%d", int64(t))
	}
	return fmt.Sprintf("%g", t)
}

// RenderEfficiencyFigure renders a Figure 1/2 result as a fixed-width
// table: one row per identifier size, one column per curve.
func (fig EfficiencyFigure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Efficiency vs identifier size, %d-bit data\n", fig.DataBits)

	curves := make([]Curve, 0, len(fig.AFF)+len(fig.Static))
	curves = append(curves, fig.AFF...)
	curves = append(curves, fig.Static...)

	fmt.Fprintf(&b, "%6s", "bits")
	for _, c := range curves {
		fmt.Fprintf(&b, " %14s", c.Label)
	}
	b.WriteByte('\n')

	for i := 0; i <= fig.HMax-fig.HMin; i++ {
		fmt.Fprintf(&b, "%6d", fig.HMin+i)
		for _, c := range curves {
			fmt.Fprintf(&b, " %14.4f", c.Points[i].E)
		}
		b.WriteByte('\n')
	}

	// Report the optima the paper calls out in the text.
	ts := make([]float64, 0, len(fig.Optima))
	for t := range fig.Optima {
		ts = append(ts, t)
	}
	sort.Float64s(ts)
	for _, t := range ts {
		opt := fig.Optima[t]
		fmt.Fprintf(&b, "optimum for T=%s: %d bits (E=%.4f)\n", formatCount(t), opt.H, opt.E)
	}
	return b.String()
}

// Render renders Figure 3 as a table of efficiency vs offered load.
func (fig LoadFigure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Efficiency vs offered load, %d-bit data, %d-bit identifiers\n",
		fig.DataBits, fig.AFFBits)
	fmt.Fprintf(&b, "%12s %14s %14s\n", "load T", "AFF", staticLabel(fig.StaticBits))
	for i, t := range fig.Loads {
		st := "undefined"
		if fig.Static[i].Defined {
			st = fmt.Sprintf("%.4f", fig.Static[i].E)
		}
		fmt.Fprintf(&b, "%12s %14.6f %14s\n", formatCount(t), fig.AFF[i].E, st)
	}
	return b.String()
}

// Render renders Figure 4 as a table: model prediction beside each
// selector's measured mean ± stddev.
func (res Figure4Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Collision rate vs identifier size (T=%d, %d trials x %v, %d-byte packets)\n",
		res.Config.Transmitters, res.Config.Trials, res.Config.Duration, res.Config.PacketSize)

	kinds := make([]SelectorKind, 0, len(res.Measured))
	for k := range res.Measured {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })

	fmt.Fprintf(&b, "%6s %12s", "bits", "model")
	for _, k := range kinds {
		fmt.Fprintf(&b, " %24s", k)
	}
	b.WriteByte('\n')

	for _, mp := range res.Model {
		fmt.Fprintf(&b, "%6d %12.6f", mp.H, mp.E)
		for _, k := range kinds {
			if s, ok := res.Measured[k].At(float64(mp.H)); ok {
				fmt.Fprintf(&b, " %15.6f ± %6.4f", s.Mean, s.StdDev)
			} else {
				fmt.Fprintf(&b, " %24s", "-")
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "packets: ground truth delivered %d, AFF delivered %d\n",
		res.TruthDelivered, res.AFFDelivered)
	return b.String()
}
