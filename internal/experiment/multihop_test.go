package experiment

import (
	"encoding/csv"
	"reflect"
	"strings"
	"testing"
	"time"

	"retri/internal/metrics"
	"retri/internal/mobility"
)

// smallMultihop shrinks the sweep to something that can run several times
// in a test while still being genuinely multi-hop (field two ranges
// across) and covering all three arms, churn, and both mobility models.
// The default 40 kb/s radio keeps the saturated channel's event count —
// and hence wall-clock — low.
func smallMultihop() MultihopConfig {
	cfg := DefaultMultihopConfig()
	cfg.Params = nil
	cfg.Senders = 4
	cfg.CoreSenders = 2
	cfg.Trials = 2
	cfg.Duration = 6 * time.Second
	cfg.SampleInterval = time.Second
	cfg.Area = mobility.Area{W: 40, H: 40}
	cfg.Range = 12
	cfg.GroupSpread = 4
	cfg.DedupWindow = 2 * time.Second
	cfg.OracleRetain = 2 * time.Second
	cfg.Duty = mobility.DutyCycle{MeanUp: 3 * time.Second, MeanDown: time.Second}
	return cfg
}

func TestMultihopValidate(t *testing.T) {
	bad := []func(*MultihopConfig){
		func(c *MultihopConfig) { c.Senders = 0 },
		func(c *MultihopConfig) { c.Trials = 0 },
		func(c *MultihopConfig) { c.Arms = nil },
		func(c *MultihopConfig) { c.Arms = []MultihopArm{"telepathic"} },
		func(c *MultihopConfig) { c.CoreSenders = -1 },
		func(c *MultihopConfig) { c.CoreSenders = c.Senders + 1 },
		func(c *MultihopConfig) { c.PacketSize = 0 },
		func(c *MultihopConfig) { c.SampleInterval = 0 },
		func(c *MultihopConfig) { c.SampleInterval = c.Duration + time.Second },
		func(c *MultihopConfig) { c.Regions = 0 },
		func(c *MultihopConfig) { c.Regions = 17 },
		func(c *MultihopConfig) { c.FixedBits = 0 },
		func(c *MultihopConfig) { c.MinBits = 9; c.MaxBits = 4 },
		func(c *MultihopConfig) { c.MaxBits = 40 },
		func(c *MultihopConfig) { c.AddrBits = 0 },
		func(c *MultihopConfig) { c.AddrBits = 17 },
		func(c *MultihopConfig) { c.TTL = 0 },
		func(c *MultihopConfig) { c.TTL = 16 },
		func(c *MultihopConfig) { c.DedupWindow = 0 },
		func(c *MultihopConfig) { c.ForwardJitter = -time.Millisecond },
		func(c *MultihopConfig) { c.OracleRetain = -time.Second },
		func(c *MultihopConfig) { c.Area = mobility.Area{} },
		func(c *MultihopConfig) { c.Range = 0 },
		func(c *MultihopConfig) { c.MinSpeed = 0 },
		func(c *MultihopConfig) { c.MaxSpeed = c.MinSpeed / 2 },
		func(c *MultihopConfig) { c.GroupSpread = -1 },
		func(c *MultihopConfig) { c.Duty = mobility.DutyCycle{} },
		func(c *MultihopConfig) { c.ShardWindow = -time.Millisecond },
	}
	for i, mutate := range bad {
		cfg := DefaultMultihopConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if err := DefaultMultihopConfig().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestParseMultihopArms(t *testing.T) {
	got, err := ParseMultihopArms("fixed, dynaddr")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []MultihopArm{MultihopFixed, MultihopDynaddr}) {
		t.Errorf("parsed %v", got)
	}
	if all, _ := ParseMultihopArms("all"); !reflect.DeepEqual(all, AllMultihopArms()) {
		t.Errorf("all parsed as %v", all)
	}
	for _, bad := range []string{"", "telepathic", "fixed,,bogus", " , "} {
		if _, err := ParseMultihopArms(bad); err == nil {
			t.Errorf("arm list %q accepted", bad)
		}
	}
}

// TestMultihopParallelByteIdentical: the multihop sweep honors the repo's
// parallel-runner contract — table, CSV and folded metrics of a parallel
// run match the sequential run exactly, with the always-on oracle and the
// dynaddr arm's allocator riding along.
func TestMultihopParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	run := func(parallelism int) (MultihopResult, *metrics.Registry) {
		cfg := smallMultihop()
		cfg.Parallelism = parallelism
		reg := metrics.NewRegistry()
		cfg.Obs = &Obs{Metrics: reg}
		res, err := Multihop(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res, reg
	}
	seq, seqReg := run(1)
	par, parReg := run(4)
	if got, want := par.CSV(), seq.CSV(); got != want {
		t.Errorf("parallel CSV differs from sequential:\n--- sequential ---\n%s--- parallel ---\n%s", want, got)
	}
	if got, want := par.Render(), seq.Render(); got != want {
		t.Errorf("parallel table differs from sequential:\n--- sequential ---\n%s--- parallel ---\n%s", want, got)
	}
	if !reflect.DeepEqual(parReg.Snapshot(), seqReg.Snapshot()) {
		t.Error("parallel metrics snapshot differs from sequential")
	}
}

// TestMultihopShardWindowParity: draining each trial under the
// region-sharded driver leaves the rendered output byte-identical to the
// legacy eng.Run() path, at more than one window size.
func TestMultihopShardWindowParity(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	cfg := smallMultihop()
	ref, err := Multihop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, win := range []time.Duration{700 * time.Microsecond, 20 * time.Millisecond} {
		cfg.ShardWindow = win
		got, err := Multihop(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ref.Render() != got.Render() {
			t.Errorf("window %v: Render diverged\n--- legacy:\n%s--- sharded:\n%s", win, ref.Render(), got.Render())
		}
		if ref.CSV() != got.CSV() {
			t.Errorf("window %v: CSV diverged", win)
		}
	}
}

// TestMultihopOracleConformance: the AFF arms always carry an oracle
// report, it audits real traffic, and a healthy sweep produces zero
// misdeliveries, conservation or freshness violations. The dynaddr arm has
// no AFF wire format to audit but must account its allocation overhead.
func TestMultihopOracleConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	res, err := Multihop(smallMultihop())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Arm == MultihopDynaddr {
			if r.Oracle != nil {
				t.Error("dynaddr arm carries an oracle report")
			}
			if r.Alloc.Acquisitions == 0 || r.Alloc.ClaimsSent == 0 || r.Alloc.ControlBits == 0 {
				t.Errorf("dynaddr arm accounted no allocation overhead: %+v", r.Alloc)
			}
			continue
		}
		if r.Oracle == nil {
			t.Fatalf("%s arm missing oracle report", r.Arm)
		}
		if err := r.Oracle.Check(); err != nil {
			t.Errorf("%s arm violates conformance: %v", r.Arm, err)
		}
		if r.Oracle.PacketsAudited == 0 {
			t.Errorf("%s arm oracle audited nothing: %+v", r.Arm, r.Oracle)
		}
		if r.Alloc.ClaimsSent != 0 || r.Alloc.ControlBits != 0 {
			t.Errorf("%s arm charged allocation overhead: %+v", r.Arm, r.Alloc)
		}
	}
}

// TestMultihopCSVShape: every record — summary, per-region, time series —
// has the full header width so downstream plotting can index columns
// positionally.
func TestMultihopCSVShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	cfg := smallMultihop()
	cfg.Trials = 1
	res, err := Multihop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(res.CSV())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 2 {
		t.Fatalf("CSV has %d records", len(recs))
	}
	const wantCols = 29
	if len(recs[0]) != wantCols {
		t.Fatalf("header has %d columns, want %d", len(recs[0]), wantCols)
	}
	kinds := map[string]int{}
	for i, rec := range recs[1:] {
		if len(rec) != wantCols {
			t.Fatalf("record %d has %d columns, want %d", i+1, len(rec), wantCols)
		}
		kinds[rec[0]]++
	}
	if kinds["summary"] != len(res.Rows) {
		t.Errorf("%d summary records, want %d", kinds["summary"], len(res.Rows))
	}
	for _, want := range []string{"summary", "region", "h_t"} {
		if kinds[want] == 0 {
			t.Errorf("no %q records", want)
		}
	}
	for kind := range kinds {
		if kind != "summary" && kind != "region" && kind != "h_t" {
			t.Errorf("unexpected record kind %q", kind)
		}
	}
}

// TestMultihopRegionalDivergence is the tentpole's acceptance gate, on a
// shortened single-trial cut of the tuned deployment: under the same
// mobility the adaptive arm's densest core cell must track its clamped
// Eq. 4 optimum to within striking distance (the full sweep measures
// ~1.1 bits), while the fixed arm's global width overshoots the sparse
// edge's optimum by several bits — the per-region divergence the paper's
// adaptive story predicts.
func TestMultihopRegionalDivergence(t *testing.T) {
	if testing.Short() {
		t.Skip("long tuned simulation sweep")
	}
	cfg := DefaultMultihopConfig()
	cfg.Duration = 80 * time.Second
	cfg.Trials = 1
	cfg.Arms = []MultihopArm{MultihopFixed, MultihopAdaptive}
	res, err := Multihop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := map[MultihopArm]MultihopRow{}
	for _, r := range res.Rows {
		rows[r.Arm] = r
	}
	adaptive, ok := rows[MultihopAdaptive]
	if !ok {
		t.Fatal("no adaptive-turnover row")
	}
	// The densest cell is where the estimators hear the most traffic and
	// the controller has the most evidence; gate conformance there.
	var core MultihopRegion
	for _, reg := range adaptive.Regions {
		if reg.Samples > core.Samples {
			core = reg
		}
	}
	if core.Samples < 100 {
		t.Fatalf("densest adaptive cell has only %d samples", core.Samples)
	}
	if core.Gap > 1.6 {
		t.Errorf("adaptive core cell %d gap %.2f bits (T=%.2f, ach %.2f vs opt %.2f), want <= 1.6",
			core.Index, core.Gap, core.MeanT, core.AchievedH, core.OptimalH)
	}
	if adaptive.Oracle == nil {
		t.Fatal("adaptive row missing oracle report")
	}
	if err := adaptive.Oracle.Check(); err != nil {
		t.Errorf("adaptive arm violates conformance: %v", err)
	}
	fixed, ok := rows[MultihopFixed]
	if !ok {
		t.Fatal("no fixed row")
	}
	// The fixed arm's width never bends toward any region's optimum: its
	// worst cell must waste strictly more bits than the adaptive arm's
	// worst cell, and by a wide margin in the sparse edge.
	worst := func(r MultihopRow) float64 {
		var w float64
		for _, reg := range r.Regions {
			if reg.Samples >= 20 && reg.Gap > w {
				w = reg.Gap
			}
		}
		return w
	}
	wf, wa := worst(fixed), worst(adaptive)
	if wf <= wa {
		t.Errorf("fixed arm worst-cell gap %.2f not worse than adaptive %.2f", wf, wa)
	}
	if wf < 2 {
		t.Errorf("fixed arm worst-cell gap %.2f bits; expected the global width to overshoot a sparse region by >= 2", wf)
	}
}
