package experiment

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"retri/internal/faults"
	"retri/internal/metrics"
	"retri/internal/xrand"
)

// smallRecovery is a sweep small enough to run repeatedly in tests while
// still covering both schemes, both modes, and a compound fault model.
func smallRecovery() RecoveryConfig {
	cfg := DefaultRecoveryConfig()
	cfg.Senders = 2
	cfg.Trials = 2
	cfg.Duration = 8 * time.Second
	cfg.Faults = []FaultKind{FaultIID, FaultGECrash}
	cfg.Crash = faults.CrashPlan{MTBF: 4 * time.Second, MeanDowntime: 500 * time.Millisecond}
	return cfg
}

func TestParseFaultKinds(t *testing.T) {
	all, err := ParseFaultKinds("all")
	if err != nil || len(all) != 7 {
		t.Errorf("all = (%v, %v), want the 7 standard models", all, err)
	}
	got, err := ParseFaultKinds(" iid , ge+crash ")
	if err != nil || len(got) != 2 || got[0] != FaultIID || got[1] != FaultGECrash {
		t.Errorf("list = (%v, %v)", got, err)
	}
	if _, err := ParseFaultKinds("script"); err != nil {
		t.Errorf("script rejected: %v", err)
	}
	if _, err := ParseFaultKinds("bogus"); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Errorf("unknown model: err = %v", err)
	}
	if _, err := ParseFaultKinds(""); err == nil {
		t.Error("empty list accepted")
	}
}

func TestRecoveryConfigValidation(t *testing.T) {
	cfg := DefaultRecoveryConfig()
	cfg.Senders = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero senders accepted")
	}
	cfg = DefaultRecoveryConfig()
	cfg.IIDLoss = 1
	if err := cfg.Validate(); err == nil {
		t.Error("certain i.i.d. loss accepted")
	}
	cfg = DefaultRecoveryConfig()
	cfg.Faults = []FaultKind{FaultScript}
	if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), "script") {
		t.Errorf("script fault without a script: err = %v", err)
	}
	s, err := faults.ParseScriptString("1s crash 5\n2s restart 5\n")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Script = &s
	cfg.Senders = 2 // nodes 0..2; the script names node 5
	if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), "node 5") {
		t.Errorf("out-of-population script: err = %v", err)
	}
	cfg.Senders = 5
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid script config rejected: %v", err)
	}
	cfg = DefaultRecoveryConfig()
	cfg.Faults = []FaultKind{"volcano"}
	if err := cfg.Validate(); err == nil {
		t.Error("unknown fault kind accepted")
	}
}

// TestRecoveryParallelByteIdentical extends the parallel runner's core
// guarantee to the recovery sweep: table, CSV and folded metrics of a
// parallel run must match the sequential run exactly.
func TestRecoveryParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	runOne := func(parallelism int) (RecoveryResult, metrics.Snapshot) {
		cfg := smallRecovery()
		cfg.Parallelism = parallelism
		reg := metrics.NewRegistry()
		cfg.Obs = &Obs{Metrics: reg}
		res, err := Recovery(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res, reg.Snapshot()
	}
	seq, seqSnap := runOne(1)
	par, parSnap := runOne(4)

	if got, want := par.CSV(), seq.CSV(); got != want {
		t.Errorf("parallel CSV differs from sequential:\n--- sequential ---\n%s--- parallel ---\n%s", want, got)
	}
	if got, want := par.Render(), seq.Render(); got != want {
		t.Errorf("parallel table differs from sequential:\n--- sequential ---\n%s--- parallel ---\n%s", want, got)
	}
	a, err := json.Marshal(seqSnap)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(parSnap)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("folded metrics snapshots differ between sequential and parallel runs")
	}
}

// TestRecoveryAcceptanceGECrash is the PR's headline claim: the AFF stack
// plus a conventional ARQ layer delivers essentially everything under
// compound burst-loss + crash faults, with every retransmission under a
// fresh identifier and no identifier ever repeated.
func TestRecoveryAcceptanceGECrash(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	cfg := DefaultRecoveryConfig()
	cfg.Senders = 3
	cfg.Trials = 3
	cfg.Duration = 30 * time.Second
	cfg.Schemes = []Scheme{AFFScheme(8, SelListening)}
	cfg.Faults = []FaultKind{FaultGECrash}
	cfg.Baseline = false
	cfg.Crash = faults.CrashPlan{MTBF: 10 * time.Second, MeanDowntime: 500 * time.Millisecond}

	res, err := Recovery(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
	row := res.Rows[0]
	if row.Ratio.Mean < 0.99 {
		t.Errorf("delivery ratio %.4f under ge+crash, want >= 0.99", row.Ratio.Mean)
	}
	if row.Retransmits == 0 {
		t.Error("no retransmissions under ge+crash; the fault model did nothing")
	}
	if row.FreshIDs == 0 {
		t.Error("no retransmission drew a fresh identifier")
	}
	if row.RepeatedIDs != 0 {
		t.Errorf("RepeatedIDs = %d, want 0 by construction", row.RepeatedIDs)
	}
}

// TestRecoveryTrialInjectsFaults checks a single trial end to end: faults
// actually fire, and the per-model counters surface in the outcome.
func TestRecoveryTrialInjectsFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	cfg := smallRecovery()
	cfg.Duration = 20 * time.Second
	out, err := RunRecoveryTrial(cfg, cfg.Schemes[0], FaultGECrash, true, xrand.NewSource(7).Child("trial"))
	if err != nil {
		t.Fatal(err)
	}
	if out.Offered == 0 {
		t.Fatal("trial offered no packets")
	}
	if out.Faults.Crashes == 0 || out.Faults.Restarts != out.Faults.Crashes {
		t.Errorf("fault counters %+v, want crashes with matching restarts", out.Faults)
	}
	if out.GEDrops == 0 {
		t.Error("burst-loss model dropped nothing over 20s")
	}
	if out.DeliveryRatio() < 0.9 {
		t.Errorf("single-trial ge+crash delivery %.3f suspiciously low", out.DeliveryRatio())
	}

	// The corrupt model surfaces its own counters.
	out, err = RunRecoveryTrial(cfg, cfg.Schemes[0], FaultCorrupt, true, xrand.NewSource(7).Child("corrupt"))
	if err != nil {
		t.Fatal(err)
	}
	if out.CorruptFlips == 0 || out.Radio.Corrupted == 0 {
		t.Errorf("corruption counters (%d flips, %d radio) never moved", out.CorruptFlips, out.Radio.Corrupted)
	}
}

// TestRecoveryScriptedTrial replays a deterministic schedule: crash a
// sender mid-run and bring it back, and require ARQ to ride it out.
func TestRecoveryScriptedTrial(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	s, err := faults.ParseScriptString("3s crash 1\n5s restart 1\n")
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallRecovery()
	cfg.Duration = 15 * time.Second
	cfg.Faults = []FaultKind{FaultScript}
	cfg.Script = &s
	out, err := RunRecoveryTrial(cfg, cfg.Schemes[0], FaultScript, true, xrand.NewSource(9).Child("script"))
	if err != nil {
		t.Fatal(err)
	}
	want := faults.Counters{Crashes: 1, Restarts: 1}
	if out.Faults != want {
		t.Errorf("fault counters %+v, want exactly the scripted %+v", out.Faults, want)
	}
	if out.DeliveryRatio() < 0.99 {
		t.Errorf("scripted-crash delivery %.3f, want ARQ to recover nearly everything", out.DeliveryRatio())
	}
}

// TestRecoveryARQBeatsBaseline: under i.i.d. loss the whole point of the
// ARQ layer is visible — the bare stack loses packets, the reliable one
// does not.
func TestRecoveryARQBeatsBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	cfg := smallRecovery()
	cfg.Faults = []FaultKind{FaultIID}
	cfg.IIDLoss = 0.2
	res, err := Recovery(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byMode := map[bool]float64{}
	for _, row := range res.Rows {
		if row.Scheme.Kind == "aff" {
			byMode[row.Reliable] = row.Ratio.Mean
		}
	}
	if byMode[true] < 0.99 {
		t.Errorf("AFF+ARQ under 20%% i.i.d. loss delivered %.3f, want >= 0.99", byMode[true])
	}
	if byMode[false] > 0.95 {
		t.Errorf("bare AFF under 20%% i.i.d. loss delivered %.3f; baseline suspiciously lossless", byMode[false])
	}
}

func TestRecoveryRenderAndCSVShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	cfg := smallRecovery()
	cfg.Faults = []FaultKind{FaultNone}
	cfg.Trials = 1
	cfg.Duration = 4 * time.Second
	res, err := Recovery(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(cfg.Schemes) * 2 // one fault, bare + arq
	if len(res.Rows) != wantRows {
		t.Fatalf("rows = %d, want %d", len(res.Rows), wantRows)
	}
	table := res.Render()
	for _, needle := range []string{"fault", "delivery", "retx", "fresh"} {
		if !strings.Contains(table, needle) {
			t.Errorf("table lacks %q:\n%s", needle, table)
		}
	}
	lines := strings.Split(strings.TrimSpace(res.CSV()), "\n")
	if len(lines) != wantRows+1 {
		t.Errorf("CSV has %d lines, want header + %d rows:\n%s", len(lines), wantRows, res.CSV())
	}
	if !strings.HasPrefix(lines[0], "scheme,") {
		t.Errorf("CSV header = %q", lines[0])
	}
}

// TestRecoveryOracleConformance pins the paper's fresh-identifier-per-
// retransmission invariant under the omniscient oracle: with the oracle
// attached, every AFF row — including the reliable rows whose ARQ layer
// actually retransmitted through crashes and burst loss — must audit real
// traffic with zero freshness violations (no identifier reuse across
// retransmissions), zero misdeliveries and zero conservation violations.
// Static rows carry no report: there is no AFF wire format to audit.
func TestRecoveryOracleConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	cfg := smallRecovery()
	cfg.Oracle = true
	res, err := Recovery(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var audited, retransmitted bool
	for _, r := range res.Rows {
		if r.Scheme.Kind != "aff" {
			if r.Oracle != nil {
				t.Errorf("%s: static row carries an oracle report", r.Label())
			}
			continue
		}
		if r.Oracle == nil {
			t.Fatalf("%s: AFF row missing oracle report", r.Label())
		}
		if err := r.Oracle.Check(); err != nil {
			t.Errorf("%s: conformance violation: %v", r.Label(), err)
		}
		if r.Oracle.FreshnessViolations != 0 {
			t.Errorf("%s: %d identifier reuses across retransmissions", r.Label(), r.Oracle.FreshnessViolations)
		}
		if r.Oracle.PacketsAudited > 0 {
			audited = true
		}
		// The invariant is only interesting if retries happened: the
		// reliable rows must have drawn fresh identifiers for them.
		if r.Reliable && r.Retransmits > 0 {
			retransmitted = true
			if r.FreshIDs == 0 {
				t.Errorf("%s: %d retransmits but no fresh identifiers", r.Label(), r.Retransmits)
			}
		}
	}
	if !audited {
		t.Error("no AFF row audited any packets")
	}
	if !retransmitted {
		t.Error("no reliable row retransmitted; the sweep exercised nothing")
	}
}
