package experiment

import (
	"encoding/csv"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"retri/internal/aff"
	"retri/internal/arq"
	"retri/internal/core"
	"retri/internal/density"
	"retri/internal/energy"
	"retri/internal/faults"
	"retri/internal/metrics"
	"retri/internal/node"
	"retri/internal/oracle"
	"retri/internal/radio"
	"retri/internal/runner"
	"retri/internal/sim"
	"retri/internal/span"
	"retri/internal/staticaddr"
	"retri/internal/stats"
	"retri/internal/xrand"
)

// FaultKind names a failure model for the recovery experiment.
type FaultKind string

// Fault models under test.
const (
	// FaultNone is the clean-channel control.
	FaultNone FaultKind = "none"
	// FaultIID drops frames independently at the configured rate.
	FaultIID FaultKind = "iid"
	// FaultGE drops frames from a Gilbert–Elliott burst-loss channel.
	FaultGE FaultKind = "ge"
	// FaultCrash crashes and restarts every node stochastically.
	FaultCrash FaultKind = "crash"
	// FaultFlap flaps each sender—sink link stochastically.
	FaultFlap FaultKind = "flap"
	// FaultCorrupt flips payload bits the checksum layer must catch.
	FaultCorrupt FaultKind = "corrupt"
	// FaultGECrash combines burst loss with crash/restart — the
	// harshest standard model.
	FaultGECrash FaultKind = "ge+crash"
	// FaultScript replays the schedule in RecoveryConfig.Script.
	FaultScript FaultKind = "script"
)

// AllFaultKinds lists every named model except script, in sweep order.
func AllFaultKinds() []FaultKind {
	return []FaultKind{FaultNone, FaultIID, FaultGE, FaultCrash, FaultFlap, FaultCorrupt, FaultGECrash}
}

// ParseFaultKinds parses a comma-separated fault list for the CLI.
func ParseFaultKinds(s string) ([]FaultKind, error) {
	if s == "all" {
		return AllFaultKinds(), nil
	}
	known := make(map[FaultKind]bool)
	for _, k := range AllFaultKinds() {
		known[k] = true
	}
	known[FaultScript] = true
	var out []FaultKind
	for _, part := range strings.Split(s, ",") {
		k := FaultKind(strings.TrimSpace(part))
		if k == "" {
			continue
		}
		if !known[k] {
			return nil, fmt.Errorf("experiment: unknown fault model %q (want none, iid, ge, crash, flap, corrupt, ge+crash, script or all)", k)
		}
		out = append(out, k)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiment: empty fault list %q", s)
	}
	return out, nil
}

// RecoveryConfig parameterizes the fault-recovery experiment: several
// senders deliver periodic packets to one sink under a fault model, with
// and without the ARQ layer, over the AFF stack and the static baseline.
// The claim under test is the paper's: identifier collisions behave as
// ordinary loss, so a loss-recovery layer needs no collision-specific
// machinery — every retransmission is simply a new transaction under a
// fresh identifier.
type RecoveryConfig struct {
	// Seed roots all randomness; trials use derived streams.
	Seed uint64
	// Senders deliver packets at the sink (node 0); they are nodes 1..N.
	Senders int
	// PacketSize is the application payload in bytes.
	PacketSize int
	// Interval separates one sender's packets (plus deterministic jitter).
	Interval time.Duration
	// Duration bounds the sending window and the fault horizon; retries
	// in flight at the end still resolve before the trial reports.
	Duration time.Duration
	// Trials per (scheme, fault, arq) row.
	Trials int
	// Schemes are the stacks compared (default AFF vs static).
	Schemes []Scheme
	// Faults are the failure models swept.
	Faults []FaultKind
	// Baseline also runs every row without ARQ: packets carry the same
	// tracking header but nothing is retransmitted.
	Baseline bool
	// ARQ tunes the recovery layer; Reliable/Ack are set per row.
	ARQ arq.Config
	// IIDLoss is the FaultIID drop rate.
	IIDLoss float64
	// GE parameterizes FaultGE and FaultGECrash.
	GE faults.GEParams
	// CorruptProb is FaultCorrupt's per-delivery bit-flip probability.
	CorruptProb float64
	// Crash parameterizes FaultCrash and FaultGECrash (applies to every
	// node, sink included).
	Crash faults.CrashPlan
	// Flap parameterizes FaultFlap on each sender—sink edge.
	Flap faults.FlapPlan
	// Script is the schedule FaultScript replays; required iff FaultScript
	// is selected.
	Script *faults.Script
	// Params overrides the radio parameters when non-nil.
	Params *radio.Params
	// ReassemblyTimeout bounds partial-packet state, as in Figure 4.
	ReassemblyTimeout time.Duration
	// Oracle attaches the omniscient conformance harness to AFF-scheme
	// rows: every frame is observed and every reassembled packet audited
	// for conservation, misdelivery and identifier freshness — including
	// through crashes, link flaps and ARQ retransmissions. The oracle
	// needs the Truth trailer, so enabling it turns on
	// aff.Config.Instrument for AFF rows and widens their wire format;
	// delivery and energy numbers shift accordingly. Output without the
	// flag is unchanged.
	Oracle bool
	// Parallelism, Obs and Hooks behave exactly as in Figure4Config.
	Parallelism int
	Obs         *Obs
	Hooks       RunHooks
}

// DefaultRecoveryConfig is a 4-sender star over two simulated minutes.
func DefaultRecoveryConfig() RecoveryConfig {
	return RecoveryConfig{
		Seed:              1,
		Senders:           4,
		PacketSize:        48,
		Interval:          500 * time.Millisecond,
		Duration:          time.Minute,
		Trials:            5,
		Schemes:           []Scheme{AFFScheme(8, SelListening), StaticScheme(16)},
		Faults:            AllFaultKinds(),
		Baseline:          true,
		IIDLoss:           0.1,
		GE:                faults.DefaultGEParams(),
		CorruptProb:       0.05,
		Crash:             faults.CrashPlan{MTBF: 20 * time.Second, MeanDowntime: time.Second},
		Flap:              faults.FlapPlan{MeanUp: 10 * time.Second, MeanDown: time.Second},
		ReassemblyTimeout: 250 * time.Millisecond,
	}
}

// Validate rejects configurations the trial loop cannot honor.
func (cfg RecoveryConfig) Validate() error {
	if cfg.Senders < 1 || cfg.Trials < 1 || len(cfg.Schemes) == 0 || len(cfg.Faults) == 0 {
		return fmt.Errorf("experiment: degenerate recovery config (senders=%d trials=%d schemes=%d faults=%d)",
			cfg.Senders, cfg.Trials, len(cfg.Schemes), len(cfg.Faults))
	}
	if cfg.Interval <= 0 || cfg.Duration <= 0 {
		return fmt.Errorf("experiment: recovery needs positive interval and duration, got %v/%v", cfg.Interval, cfg.Duration)
	}
	if err := cfg.ARQ.Validate(); err != nil {
		return err
	}
	for _, f := range cfg.Faults {
		switch f {
		case FaultNone, FaultCorrupt:
		case FaultIID:
			if cfg.IIDLoss < 0 || cfg.IIDLoss >= 1 {
				return fmt.Errorf("experiment: i.i.d. loss %v out of [0, 1)", cfg.IIDLoss)
			}
		case FaultGE:
			if err := cfg.GE.Validate(); err != nil {
				return err
			}
		case FaultCrash:
			if err := cfg.Crash.Validate(); err != nil {
				return err
			}
		case FaultFlap:
			if err := cfg.Flap.Validate(); err != nil {
				return err
			}
		case FaultGECrash:
			if err := cfg.GE.Validate(); err != nil {
				return err
			}
			if err := cfg.Crash.Validate(); err != nil {
				return err
			}
		case FaultScript:
			if cfg.Script == nil {
				return fmt.Errorf("experiment: fault model %q selected without a script", FaultScript)
			}
			if max := cfg.Script.MaxNode(); int(max) > cfg.Senders {
				return fmt.Errorf("experiment: fault script references node %d; this run has nodes 0..%d", max, cfg.Senders)
			}
		default:
			return fmt.Errorf("experiment: unknown fault model %q", f)
		}
	}
	return nil
}

// RecoveryOutcome reports one trial.
type RecoveryOutcome struct {
	// Offered counts application packets handed to the recovery layer.
	Offered int64
	// ARQ aggregates every endpoint's counters; ARQ.Delivered minus the
	// senders' overhearing is the sink's unique deliveries.
	ARQ arq.Counters
	// Delivered counts unique packets the sink handed up.
	Delivered int64
	// MeanLatency and P95Latency summarize send-to-unique-delivery times
	// at the sink (zero when nothing was delivered).
	MeanLatency time.Duration
	P95Latency  time.Duration
	// Joules is network-wide radio energy under the default model.
	Joules float64
	// Faults tallies injected crash/restart/link events.
	Faults faults.Counters
	// GEDrops and CorruptFlips count burst-model drops and damaged
	// payloads; Radio is the medium-wide counter snapshot.
	GEDrops      int64
	CorruptFlips int64
	Radio        radio.Counters
	// Oracle is the trial's conformance report, nil unless
	// RecoveryConfig.Oracle was set and the scheme is AFF.
	Oracle *oracle.Report
	// Obs is the trial's private observability capture, nil unless
	// requested.
	Obs *TrialObs
}

// DeliveryRatio is unique sink deliveries over offered packets.
func (o RecoveryOutcome) DeliveryRatio() float64 {
	if o.Offered == 0 {
		return 0
	}
	return float64(o.Delivered) / float64(o.Offered)
}

// EnergyPerDelivered is joules spent per packet delivered (0 if none).
func (o RecoveryOutcome) EnergyPerDelivered() float64 {
	if o.Delivered == 0 {
		return 0
	}
	return o.Joules / float64(o.Delivered)
}

// RecoveryRow aggregates one (scheme, fault, arq) cell over trials.
type RecoveryRow struct {
	Scheme   Scheme
	Fault    FaultKind
	Reliable bool
	// Ratio, LatencyMS, P95MS and EnergyMJ summarize per-trial delivery
	// ratio, mean latency (ms), p95 latency (ms) and energy per delivered
	// packet (mJ).
	Ratio     stats.Summary
	LatencyMS stats.Summary
	P95MS     stats.Summary
	EnergyMJ  stats.Summary
	// Totals across trials.
	Offered     int64
	Delivered   int64
	Retransmits int64
	Abandoned   int64
	FreshIDs    int64
	RepeatedIDs int64
	// Oracle is the conformance report merged over trials in trial order,
	// nil unless the sweep ran with the oracle attached and the row's
	// scheme is AFF.
	Oracle *oracle.Report
}

// Label renders the row's configuration.
func (r RecoveryRow) Label() string {
	mode := "arq"
	if !r.Reliable {
		mode = "bare"
	}
	return fmt.Sprintf("%s %s %s", r.Scheme.Label(), r.Fault, mode)
}

// RecoveryResult is the full sweep.
type RecoveryResult struct {
	Config RecoveryConfig
	Rows   []RecoveryRow
}

// Recovery runs the sweep: scheme x fault x {arq, bare} x trials.
func Recovery(cfg RecoveryConfig) (RecoveryResult, error) {
	if err := cfg.Validate(); err != nil {
		return RecoveryResult{}, err
	}
	modes := []bool{true}
	if cfg.Baseline {
		modes = []bool{false, true}
	}
	src := xrand.NewSource(cfg.Seed).Child("recovery")
	type job struct {
		scheme   Scheme
		fault    FaultKind
		reliable bool
		src      *xrand.Source
	}
	var jobs []job
	for _, scheme := range cfg.Schemes {
		for _, fault := range cfg.Faults {
			for _, reliable := range modes {
				for trial := 0; trial < cfg.Trials; trial++ {
					jobs = append(jobs, job{scheme, fault, reliable,
						src.Child(scheme.Kind, fmt.Sprint(scheme.Bits), string(fault), fmt.Sprint(reliable), fmt.Sprint(trial))})
				}
			}
		}
	}
	outs, err := runner.Map(len(jobs), cfg.Hooks.runnerOptions(cfg.Parallelism), func(i int) (RecoveryOutcome, error) {
		return RunRecoveryTrial(cfg, jobs[i].scheme, jobs[i].fault, jobs[i].reliable, jobs[i].src)
	})
	if err != nil {
		return RecoveryResult{}, err
	}
	// foldTrialObs wants []TrialOutcome-shaped access; adapt via the shared
	// capture field.
	wrapped := make([]TrialOutcome, len(outs))
	for i := range outs {
		wrapped[i].Obs = outs[i].Obs
	}
	if err := foldTrialObs(cfg.Obs, wrapped, func(i int) string {
		return fmt.Sprintf("recovery %s", recoveryLabel(jobs[i].scheme, jobs[i].fault, jobs[i].reliable))
	}); err != nil {
		return RecoveryResult{}, err
	}

	res := RecoveryResult{Config: cfg}
	type accs struct {
		row                     RecoveryRow
		ratio, lat, p95, energy stats.Accumulator
	}
	byRow := make(map[string]*accs)
	var order []string
	for i, out := range outs {
		j := jobs[i]
		k := recoveryLabel(j.scheme, j.fault, j.reliable)
		a, ok := byRow[k]
		if !ok {
			a = &accs{row: RecoveryRow{Scheme: j.scheme, Fault: j.fault, Reliable: j.reliable}}
			byRow[k] = a
			order = append(order, k)
		}
		a.ratio.Add(out.DeliveryRatio())
		a.lat.Add(float64(out.MeanLatency) / float64(time.Millisecond))
		a.p95.Add(float64(out.P95Latency) / float64(time.Millisecond))
		a.energy.Add(out.EnergyPerDelivered() * 1e3)
		a.row.Offered += out.Offered
		a.row.Delivered += out.Delivered
		a.row.Retransmits += out.ARQ.Retransmits
		a.row.Abandoned += out.ARQ.Abandoned
		a.row.FreshIDs += out.ARQ.FreshIDs
		a.row.RepeatedIDs += out.ARQ.RepeatedIDs
		if out.Oracle != nil {
			if a.row.Oracle == nil {
				a.row.Oracle = &oracle.Report{}
			}
			a.row.Oracle.Merge(*out.Oracle)
		}
	}
	for _, k := range order {
		a := byRow[k]
		a.row.Ratio = a.ratio.Summary()
		a.row.LatencyMS = a.lat.Summary()
		a.row.P95MS = a.p95.Summary()
		a.row.EnergyMJ = a.energy.Summary()
		res.Rows = append(res.Rows, a.row)
	}
	return res, nil
}

func recoveryLabel(s Scheme, f FaultKind, reliable bool) string {
	return fmt.Sprintf("scheme=%s%d,fault=%s,arq=%t", s.Kind, s.Bits, f, reliable)
}

// RunRecoveryTrial executes one trial of one (scheme, fault, arq) cell.
func RunRecoveryTrial(cfg RecoveryConfig, scheme Scheme, fault FaultKind, reliable bool, src *xrand.Source) (RecoveryOutcome, error) {
	eng := sim.NewEngine()
	params := radio.DefaultParams()
	if cfg.Params != nil {
		params = *cfg.Params
	}

	var ge *faults.GilbertElliott
	var flipper *faults.BitFlipper
	switch fault {
	case FaultIID:
		params.FrameLoss = cfg.IIDLoss
	case FaultGE, FaultGECrash:
		ge = faults.NewGilbertElliott(cfg.GE, src.Stream("ge"))
		params.Loss = ge
	case FaultCorrupt:
		flipper = faults.NewBitFlipper(cfg.CorruptProb, src.Stream("corrupt"))
		params.Corrupt = flipper
	}

	flaky := faults.NewFlakyTopology(radio.FullMesh{})
	med := radio.NewMedium(eng, flaky, params, src.Stream("medium"))
	trialObs, tracer := newTrialObs(cfg.Obs)
	if tracer != nil {
		med.SetTracer(tracer)
	}

	// The oracle audits AFF rows only: the static baseline has no
	// ephemeral identifiers to check. It needs the Truth trailer, so
	// oracle rows run with an instrumented wire format (see
	// RecoveryConfig.Oracle).
	instrument := cfg.Oracle && scheme.Kind == "aff"
	var orc *oracle.Oracle
	if instrument {
		affCfg, err := recoveryAFFConfig(cfg, scheme, params, true)
		if err != nil {
			return RecoveryOutcome{}, err
		}
		orc, err = oracle.New(oracle.Config{AFF: affCfg, Topo: flaky, Now: eng.Now})
		if err != nil {
			return RecoveryOutcome{}, err
		}
		med.SetFrameObserver(orc)
	}
	// Span tracing likewise covers AFF rows only: the span codec cannot
	// read the static baseline's wire format. Unlike the oracle it does
	// not force instrumentation — flagless recovery rows must stay byte-
	// identical — so without the oracle it attributes by per-sender FIFO
	// order instead of Truth trailers.
	var sp *span.Tracer
	if scheme.Kind == "aff" {
		affCfg, err := recoveryAFFConfig(cfg, scheme, params, instrument)
		if err != nil {
			return RecoveryOutcome{}, err
		}
		sp = newTrialSpan(cfg.Obs, trialObs, affCfg, eng.Now)
		if sp != nil {
			med.SetFateObserver(sp)
		}
	}
	audit := func(id radio.NodeID) func(aff.Packet) {
		if orc == nil {
			return nil
		}
		return func(p aff.Packet) { orc.VerifyDelivered(id, p) }
	}

	inj := faults.NewInjector(eng, cfg.Duration)
	inj.SetFlaky(flaky)
	inj.SetTracer(tracer)

	const sinkID radio.NodeID = 0
	radios := make([]*radio.Radio, 0, cfg.Senders+1)
	build := func(id radio.NodeID, label string) (node.Driver, error) {
		r := med.MustAttach(id)
		radios = append(radios, r)
		d, err := buildRecoveryDriver(cfg, scheme, r, params, src, label, eng, instrument, audit(id), sp)
		if err != nil {
			return nil, err
		}
		ctl, ok := d.(faults.NodeControl)
		if !ok {
			return nil, fmt.Errorf("experiment: driver %T cannot crash", d)
		}
		inj.Register(id, ctl)
		return d, nil
	}

	sinkDrv, err := build(sinkID, "sink")
	if err != nil {
		return RecoveryOutcome{}, err
	}
	sinkCfg := cfg.ARQ
	sinkCfg.Reliable = false
	sinkCfg.Ack = reliable
	sinkEp, err := arq.NewEndpoint(eng, sinkDrv, uint32(sinkID), sinkCfg, src.Stream("arq", "sink"))
	if err != nil {
		return RecoveryOutcome{}, err
	}
	if sp != nil {
		sinkEp.SetAttemptObserver(sp)
	}

	type sendKey struct{ token, seq uint32 }
	sendAt := make(map[sendKey]time.Duration)
	var latencies []time.Duration
	sinkEp.SetDeliver(func(token, seq uint32, _ []byte) {
		if t0, ok := sendAt[sendKey{token, seq}]; ok {
			latencies = append(latencies, eng.Now()-t0)
		}
	})

	var offered int64
	senderEps := make([]*arq.Endpoint, 0, cfg.Senders)
	for i := 1; i <= cfg.Senders; i++ {
		label := fmt.Sprint(i)
		d, err := build(radio.NodeID(i), label)
		if err != nil {
			return RecoveryOutcome{}, err
		}
		epCfg := cfg.ARQ
		epCfg.Reliable = reliable
		epCfg.Ack = false
		ep, err := arq.NewEndpoint(eng, d, uint32(i), epCfg, src.Stream("arq", label))
		if err != nil {
			return RecoveryOutcome{}, err
		}
		if sp != nil {
			ep.SetAttemptObserver(sp)
		}
		senderEps = append(senderEps, ep)

		// Periodic workload with deterministic jitter, scheduled up front.
		wl := src.Stream("wl", label)
		token := uint32(i)
		for t := cfg.Interval; t <= cfg.Duration; t += cfg.Interval {
			at := t + time.Duration(wl.Int64N(int64(cfg.Interval/4)))
			eng.ScheduleAt(at, func() {
				payload := make([]byte, cfg.PacketSize)
				for b := range payload {
					payload[b] = byte(wl.Uint32())
				}
				offered++
				if seq, err := ep.Send(payload); err == nil {
					sendAt[sendKey{token, seq}] = eng.Now()
				}
			})
		}
	}

	switch fault {
	case FaultCrash, FaultGECrash:
		for id := radio.NodeID(0); int(id) <= cfg.Senders; id++ {
			if err := inj.StartCrashPlan(id, cfg.Crash, src.Stream("crash", fmt.Sprint(id))); err != nil {
				return RecoveryOutcome{}, err
			}
		}
	case FaultFlap:
		for i := 1; i <= cfg.Senders; i++ {
			if err := inj.StartFlapPlan(sinkID, radio.NodeID(i), cfg.Flap, src.Stream("flap", fmt.Sprint(i))); err != nil {
				return RecoveryOutcome{}, err
			}
		}
	case FaultScript:
		if err := inj.Apply(*cfg.Script); err != nil {
			return RecoveryOutcome{}, err
		}
	}

	eng.Run()

	out := RecoveryOutcome{
		Offered:   offered,
		Delivered: sinkEp.Counters().Delivered,
		Faults:    inj.Counters(),
		Radio:     med.Counters(),
	}
	out.ARQ.Add(sinkEp.Counters())
	for _, ep := range senderEps {
		out.ARQ.Add(ep.Counters())
	}
	if ge != nil {
		out.GEDrops = ge.Drops()
	}
	if flipper != nil {
		out.CorruptFlips = flipper.Flips()
	}
	if orc != nil {
		rep := orc.Report()
		out.Oracle = &rep
	}
	var total energy.Meter
	for _, r := range radios {
		total.Add(r.Meter())
	}
	out.Joules = energy.DefaultModel().Joules(total)
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		var sum time.Duration
		for _, l := range latencies {
			sum += l
		}
		out.MeanLatency = sum / time.Duration(len(latencies))
		out.P95Latency = latencies[(len(latencies)*95)/100]
	}

	if trialObs != nil && trialObs.Metrics != nil {
		label := recoveryLabel(scheme, fault, reliable)
		collectEngine(trialObs.Metrics, eng.Stats())
		collectARQ(trialObs.Metrics, label, out.ARQ)
		collectFaults(trialObs.Metrics, label, out.Faults, out.GEDrops, out.CorruptFlips, out.Radio)
		if out.Oracle != nil {
			out.Oracle.SnapshotInto(trialObs.Metrics, label)
		}
		for _, r := range radios {
			collectEnergy(trialObs.Metrics, r.ID(), r.Meter())
		}
	}
	out.Obs = trialObs
	return out, nil
}

// recoveryAFFConfig is the AFF wire format one recovery trial runs; the
// oracle (when attached) must share it exactly or it cannot decode what
// it overhears.
func recoveryAFFConfig(cfg RecoveryConfig, s Scheme, params radio.Params, instrument bool) (aff.Config, error) {
	space, err := core.NewSpace(s.Bits)
	if err != nil {
		return aff.Config{}, err
	}
	return aff.Config{
		Space:             space,
		MTU:               params.MTU,
		Instrument:        instrument,
		ReassemblyTimeout: cfg.ReassemblyTimeout,
	}, nil
}

// buildRecoveryDriver is buildDriver with the recovery extras: the
// config's reassembly timeout and, for AFF, engine-timer-driven expiry so
// crashed-and-restarted or idle nodes shed stale partial state, plus the
// oracle's instrumented wire format and delivery audit when attached.
func buildRecoveryDriver(cfg RecoveryConfig, s Scheme, r *radio.Radio, params radio.Params, src *xrand.Source, label string, eng *sim.Engine, instrument bool, audit func(aff.Packet), sp *span.Tracer) (node.Driver, error) {
	switch s.Kind {
	case "static":
		return node.NewStatic(r, staticaddr.Config{
			AddrBits:          s.Bits,
			MTU:               params.MTU,
			ReassemblyTimeout: cfg.ReassemblyTimeout,
		}, uint64(r.ID()))
	case "aff":
		affCfg, err := recoveryAFFConfig(cfg, s, params, instrument)
		if err != nil {
			return nil, err
		}
		est := density.New(0, 0, r.Now)
		sel, err := makeSelector(selectorOrDefault(s.Selector), affCfg.Space, src.Stream("sel", label), est.Window)
		if err != nil {
			return nil, err
		}
		opts := node.AFFOptions{
			Estimator:  est,
			ObserveOwn: s.Selector == SelListening || s.Selector == SelListeningNotify,
			Engine:     eng,
			OnDeliver:  audit,
		}
		if sp != nil {
			opts.Span = sp
		}
		return node.NewAFF(r, affCfg, sel, opts)
	default:
		return nil, fmt.Errorf("experiment: unknown scheme kind %q", s.Kind)
	}
}

// collectARQ records one trial's aggregated recovery-layer counters.
func collectARQ(reg *metrics.Registry, label string, c arq.Counters) {
	reg.Counter("arq_data_sent_total", label).Add(c.DataSent)
	reg.Counter("arq_retransmits_total", label).Add(c.Retransmits)
	reg.Counter("arq_acked_total", label).Add(c.Acked)
	reg.Counter("arq_abandoned_total", label).Add(c.Abandoned)
	reg.Counter("arq_budget_shed_total", label).Add(c.BudgetShed)
	reg.Counter("arq_acks_sent_total", label).Add(c.AcksSent)
	reg.Counter("arq_nacks_sent_total", label).Add(c.NacksSent)
	reg.Counter("arq_delivered_total", label).Add(c.Delivered)
	reg.Counter("arq_duplicates_total", label).Add(c.Duplicates)
	reg.Counter("arq_fresh_ids_total", label).Add(c.FreshIDs)
	reg.Counter("arq_repeated_ids_total", label).Add(c.RepeatedIDs)
	reg.Counter("arq_send_errors_total", label).Add(c.SendErrors)
}

// collectFaults records one trial's injected-fault and channel-damage
// counters beside the medium's view of them.
func collectFaults(reg *metrics.Registry, label string, fc faults.Counters, geDrops, flips int64, rc radio.Counters) {
	reg.Counter("fault_crashes_total", label).Add(fc.Crashes)
	reg.Counter("fault_restarts_total", label).Add(fc.Restarts)
	reg.Counter("fault_link_downs_total", label).Add(fc.LinkDowns)
	reg.Counter("fault_link_ups_total", label).Add(fc.LinkUps)
	reg.Counter("fault_ge_drops_total", label).Add(geDrops)
	reg.Counter("fault_corrupt_flips_total", label).Add(flips)
	reg.Counter("radio_corrupted_total", label).Add(rc.Corrupted)
	reg.Counter("radio_random_loss_total", label).Add(rc.RandomLoss)
}

// Render renders the sweep as a table, one row per cell.
func (res RecoveryResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Delivery under faults (%d senders, %v x %d trials, %d-byte packets every %v)\n",
		res.Config.Senders, res.Config.Duration, res.Config.Trials, res.Config.PacketSize, res.Config.Interval)
	fmt.Fprintf(&b, "%-18s %-9s %-5s %18s %12s %12s %12s %8s %6s %7s %5s\n",
		"scheme", "fault", "mode", "delivery", "lat ms", "p95 ms", "mJ/pkt", "retx", "aband", "fresh", "rep")
	for _, r := range res.Rows {
		mode := "arq"
		if !r.Reliable {
			mode = "bare"
		}
		fmt.Fprintf(&b, "%-18s %-9s %-5s %9.4f ± %.4f %12.2f %12.2f %12.3f %8d %6d %7d %5d\n",
			r.Scheme.Label(), r.Fault, mode,
			r.Ratio.Mean, r.Ratio.StdDev,
			r.LatencyMS.Mean, r.P95MS.Mean, r.EnergyMJ.Mean,
			r.Retransmits, r.Abandoned, r.FreshIDs, r.RepeatedIDs)
	}
	hasOracle := false
	for _, r := range res.Rows {
		if r.Oracle != nil {
			hasOracle = true
			break
		}
	}
	if hasOracle {
		fmt.Fprintf(&b, "\nOracle conformance (omniscient ground truth; AFF rows only)\n")
		fmt.Fprintf(&b, "%-18s %-9s %-5s %9s %8s %9s %12s\n",
			"scheme", "fault", "mode", "audited", "collide", "abandoned", "violations")
		for _, r := range res.Rows {
			o := r.Oracle
			if o == nil {
				continue
			}
			mode := "arq"
			if !r.Reliable {
				mode = "bare"
			}
			fmt.Fprintf(&b, "%-18s %-9s %-5s %9d %8d %9d %12s\n",
				r.Scheme.Label(), r.Fault, mode,
				o.PacketsAudited, o.CollisionEvents, o.TransactionsAbandoned,
				fmt.Sprintf("%d/%d/%d", o.ConservationViolations, o.Misdeliveries, o.FreshnessViolations))
		}
	}
	return b.String()
}

// CSV renders the sweep for plotting: one record per cell.
func (res RecoveryResult) CSV() string {
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	_ = w.Write([]string{"scheme", "fault", "mode",
		"delivery_ratio", "delivery_stddev", "latency_ms", "p95_ms", "mj_per_packet",
		"offered", "delivered", "retransmits", "abandoned", "fresh_ids", "repeated_ids", "trials"})
	for _, r := range res.Rows {
		mode := "arq"
		if !r.Reliable {
			mode = "bare"
		}
		_ = w.Write([]string{
			r.Scheme.Label(), string(r.Fault), mode,
			formatFloat(r.Ratio.Mean), formatFloat(r.Ratio.StdDev),
			formatFloat(r.LatencyMS.Mean), formatFloat(r.P95MS.Mean), formatFloat(r.EnergyMJ.Mean),
			strconv.FormatInt(r.Offered, 10), strconv.FormatInt(r.Delivered, 10),
			strconv.FormatInt(r.Retransmits, 10), strconv.FormatInt(r.Abandoned, 10),
			strconv.FormatInt(r.FreshIDs, 10), strconv.FormatInt(r.RepeatedIDs, 10),
			strconv.Itoa(r.Ratio.N),
		})
	}
	w.Flush()
	return sb.String()
}
