package experiment

import (
	"errors"
	"testing"
	"time"

	"retri/internal/radio"
	"retri/internal/runner"
)

// smallFigure4 is a sweep small enough to run twice in a test yet large
// enough to exercise more jobs than workers.
func smallFigure4() Figure4Config {
	cfg := DefaultFigure4Config()
	cfg.Trials = 2
	cfg.Duration = 2 * time.Second
	cfg.IDBits = []int{4, 6}
	return cfg
}

// TestFigure4ParallelByteIdentical is the core guarantee of the parallel
// runner: table and CSV output of a parallel sweep must match the
// sequential sweep byte for byte.
func TestFigure4ParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	seq, err := Figure4(smallFigure4())
	if err != nil {
		t.Fatal(err)
	}
	parCfg := smallFigure4()
	parCfg.Parallelism = 4
	par, err := Figure4(parCfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := par.CSV(), seq.CSV(); got != want {
		t.Errorf("parallel CSV differs from sequential:\n--- sequential ---\n%s--- parallel ---\n%s", want, got)
	}
	if got, want := par.Render(), seq.Render(); got != want {
		t.Errorf("parallel table differs from sequential:\n--- sequential ---\n%s--- parallel ---\n%s", want, got)
	}
	if par.TruthDelivered != seq.TruthDelivered || par.AFFDelivered != seq.AFFDelivered {
		t.Errorf("totals diverged: parallel (%d, %d) vs sequential (%d, %d)",
			par.TruthDelivered, par.AFFDelivered, seq.TruthDelivered, seq.AFFDelivered)
	}
}

// TestScalingParallelIdentical covers the second flattening shape (grouped
// accumulators folded per grid size).
func TestScalingParallelIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	cfg := DefaultScalingConfig()
	cfg.GridSizes = []int{3}
	cfg.Trials = 2
	cfg.Duration = 5 * time.Second
	seq, err := RunScaling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = 4
	par, err := RunScaling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := par.Render(), seq.Render(); got != want {
		t.Errorf("parallel scaling output differs:\n--- sequential ---\n%s--- parallel ---\n%s", want, got)
	}
}

// TestFigure4TrialPanicIsContained: a panic inside a trial (here a nil
// topology dereferenced mid-simulation) must fail the sweep with the
// trial's context attached, not crash the process or lose the panic.
func TestFigure4TrialPanicIsContained(t *testing.T) {
	for _, parallelism := range []int{1, 4} {
		cfg := smallFigure4()
		cfg.Duration = time.Second
		cfg.Parallelism = parallelism
		cfg.Topology = func(int, radio.NodeID) radio.Topology { return nil }
		_, err := Figure4(cfg)
		if err == nil {
			t.Fatalf("parallelism %d: panicking trials reported no error", parallelism)
		}
		var te *runner.TrialError
		if !errors.As(err, &te) {
			t.Fatalf("parallelism %d: err %v is not a *runner.TrialError", parallelism, err)
		}
		if te.Trial != 0 {
			t.Errorf("parallelism %d: failed trial %d, want lowest index 0", parallelism, te.Trial)
		}
		var pe *runner.PanicError
		if !errors.As(err, &pe) {
			t.Errorf("parallelism %d: err %v does not preserve the panic", parallelism, err)
		}
	}
}
