package experiment

import (
	"encoding/csv"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"retri/internal/adapt"
	"retri/internal/aff"
	"retri/internal/arq"
	"retri/internal/chaos"
	"retri/internal/core"
	"retri/internal/density"
	"retri/internal/faults"
	"retri/internal/metrics"
	"retri/internal/mobility"
	"retri/internal/node"
	"retri/internal/oracle"
	"retri/internal/radio"
	"retri/internal/runner"
	"retri/internal/shard"
	"retri/internal/sim"
	"retri/internal/stats"
	"retri/internal/xrand"
)

// ChaosConfig parameterizes the compound-fault experiment: senders stream
// periodic packets at one central sink on a unit-disk radio while a chaos
// profile layers mobility, churn, burst loss, corruption, crashes and
// link flaps on top, and the graceful-degradation paths — the reassembly
// memory cap, loss-aware ARQ shedding and the adaptive controller's
// overload clamp — are measured on delivery, time-to-recover and
// resource occupancy. The omniscient oracle audits every cell: no
// compound fault may ever produce a misdelivery, a conservation breach
// or a stale identifier, only honest loss.
type ChaosConfig struct {
	// Seed roots all randomness; trials use derived streams.
	Seed uint64
	// Senders stream packets at the sink (node 0); they are nodes 1..N.
	Senders int
	// PacketSize is the application payload in bytes.
	PacketSize int
	// Interval separates one sender's packets (plus deterministic jitter).
	Interval time.Duration
	// Duration bounds each trial; the profile's onset fraction resolves
	// against it.
	Duration time.Duration
	// Trials per (profile, policy, arq) row.
	Trials int
	// Profiles are the chaos intensity levels swept.
	Profiles []chaos.Profile
	// Policies are the width arms compared (default fixed vs
	// adaptive-turnover — the turnover estimator is the one built for
	// fast transaction death, exactly what chaos produces).
	Policies []WidthPolicyKind
	// Baseline also runs every row without ARQ.
	Baseline bool
	// ARQ tunes the recovery layer, including the loss-aware degradation
	// knobs; Reliable/Ack are set per row.
	ARQ arq.Config
	// FixedBits is the fixed arm's identifier width; MinBits/MaxBits
	// clamp the adaptive arm (MaxBits is also its pool width).
	FixedBits        int
	MinBits, MaxBits int
	// Area is the deployment region; the sink sits at its center.
	Area mobility.Area
	// Range is the unit-disk radio range.
	Range float64
	// MaxPartials caps every node's concurrent partial packets
	// (aff.Config.MaxPartials); zero disables the cap.
	MaxPartials int
	// Overload is the adaptive controller's saturation clamp threshold
	// (adapt.Config.Overload); zero disables the clamp.
	Overload float64
	// ReassemblyTimeout bounds partial-packet state.
	ReassemblyTimeout time.Duration
	// CheckpointEvery, when positive, audits the oracle's safety
	// invariants at this period during the run (the -soak mode) instead
	// of only at the end, so a long horizon cannot hide a transient
	// violation behind later counters.
	CheckpointEvery time.Duration
	// ShardWindow, when positive, runs each trial's engine under the
	// region-sharded driver in single-tile adopted mode with this
	// lookahead window; output is byte-identical to the legacy path.
	ShardWindow time.Duration
	// Params overrides the radio parameters when non-nil.
	Params *radio.Params
	// Parallelism, Obs and Hooks behave exactly as in Figure4Config.
	Parallelism int
	Obs         *Obs
	Hooks       RunHooks
}

// DefaultChaosConfig is an 8-sender deployment with every degradation
// path armed: a 32-partial reassembly cap, loss-aware ARQ shedding and
// the overload clamp at four times the sender population.
func DefaultChaosConfig() ChaosConfig {
	return ChaosConfig{
		Seed:       1,
		Senders:    8,
		PacketSize: 48,
		// ~35 ms of airtime per instrumented 48-byte packet at 40 kbit/s:
		// a 2 s interval keeps the 8-sender offered load near 15% of the
		// channel, so losses come from the fault profiles, not saturation.
		Interval: 2 * time.Second,
		Duration: 2 * time.Minute,
		Trials:   5,
		Profiles: chaos.Profiles(),
		Policies: []WidthPolicyKind{WidthFixed, WidthAdaptiveTurnover},
		Baseline: true,
		ARQ: arq.Config{
			RTO:         250 * time.Millisecond,
			MaxRTO:      8 * time.Second,
			RetryBudget: 8,
			LossAware:   true,
		},
		FixedBits: 10,
		MinBits:   2,
		MaxBits:   16,
		// Every point of the area is inside the sink's radio range (the
		// 40x40 region's far corner is ~28 m from the central sink), so
		// the calm control is never starved by roaming alone. Sender pairs
		// can still drift out of mutual range — hidden terminals remain —
		// and the fault profiles do the rest.
		Area:              mobility.Area{W: 40, H: 40},
		Range:             30,
		MaxPartials:       32,
		Overload:          32,
		ReassemblyTimeout: 250 * time.Millisecond,
	}
}

// Validate rejects configurations the trial loop cannot honor.
func (cfg ChaosConfig) Validate() error {
	if cfg.Senders < 1 || cfg.Trials < 1 || len(cfg.Profiles) == 0 || len(cfg.Policies) == 0 {
		return fmt.Errorf("experiment: degenerate chaos config (senders=%d trials=%d profiles=%d policies=%d)",
			cfg.Senders, cfg.Trials, len(cfg.Profiles), len(cfg.Policies))
	}
	if cfg.Interval <= 0 || cfg.Duration <= 0 {
		return fmt.Errorf("experiment: chaos needs positive interval and duration, got %v/%v", cfg.Interval, cfg.Duration)
	}
	if cfg.PacketSize < 1 {
		return fmt.Errorf("experiment: chaos packet size %d must be positive", cfg.PacketSize)
	}
	if cfg.FixedBits < 1 || cfg.FixedBits > 32 {
		return fmt.Errorf("experiment: fixed width %d outside [1, 32]", cfg.FixedBits)
	}
	if cfg.MinBits < 1 || cfg.MaxBits < cfg.MinBits || cfg.MaxBits > 32 {
		return fmt.Errorf("experiment: adaptive width clamp [%d, %d] invalid", cfg.MinBits, cfg.MaxBits)
	}
	if !(cfg.Area.W > 0) || !(cfg.Area.H > 0) || math.IsInf(cfg.Area.W, 0) || math.IsInf(cfg.Area.H, 0) {
		return fmt.Errorf("experiment: chaos area %vx%v invalid", cfg.Area.W, cfg.Area.H)
	}
	if !(cfg.Range > 0) {
		return fmt.Errorf("experiment: chaos radio range %v must be positive", cfg.Range)
	}
	if cfg.MaxPartials < 0 {
		return fmt.Errorf("experiment: negative reassembly cap %d", cfg.MaxPartials)
	}
	if cfg.Overload < 0 {
		return fmt.Errorf("experiment: negative overload threshold %v", cfg.Overload)
	}
	if cfg.CheckpointEvery < 0 || cfg.CheckpointEvery > cfg.Duration {
		return fmt.Errorf("experiment: soak checkpoint period %v outside [0, %v]", cfg.CheckpointEvery, cfg.Duration)
	}
	if cfg.ShardWindow < 0 {
		return fmt.Errorf("experiment: chaos shard window %v must be non-negative", cfg.ShardWindow)
	}
	if err := cfg.ARQ.Validate(); err != nil {
		return err
	}
	for _, p := range cfg.Profiles {
		if err := p.Validate(); err != nil {
			return err
		}
	}
	for _, p := range cfg.Policies {
		if p != WidthFixed && p != WidthAdaptive && p != WidthAdaptiveTurnover {
			return fmt.Errorf("experiment: unknown width policy %q", p)
		}
	}
	return nil
}

// ChaosOutcome reports one trial.
type ChaosOutcome struct {
	// Offered counts application packets handed to the recovery layer.
	Offered int64
	// Delivered counts unique packets the sink handed up.
	Delivered int64
	// ARQ aggregates every endpoint's counters.
	ARQ arq.Counters
	// Recovered reports whether the sink delivered anything at or after
	// the fault onset; TTR is that first post-onset delivery minus the
	// onset, censored at the remaining horizon when nothing arrived.
	Recovered bool
	TTR       time.Duration
	// MeanLatency and P95Latency summarize send-to-unique-delivery times.
	MeanLatency time.Duration
	P95Latency  time.Duration
	// PeakPartials is the worst concurrent partial-packet occupancy any
	// node reached; CapEvictions counts partials shed by the memory cap.
	PeakPartials int64
	CapEvictions int64
	// Overloads counts adaptive-controller saturation-clamp engagements.
	Overloads int64
	// Faults and Churn tally injected events; GEDrops/CorruptFlips count
	// channel damage; Radio is the medium-wide counter snapshot.
	Faults       faults.Counters
	Churn        mobility.ChurnCounters
	GEDrops      int64
	CorruptFlips int64
	Radio        radio.Counters
	// Oracle is the trial's conformance report (always attached).
	Oracle *oracle.Report
	// SoakViolations counts mid-run checkpoints whose invariant audit
	// failed; FirstViolation carries the earliest failure's text.
	SoakViolations int64
	FirstViolation string
	// Obs is the trial's private observability capture, nil unless
	// requested.
	Obs *TrialObs
}

// DeliveryRatio is unique sink deliveries over offered packets.
func (o ChaosOutcome) DeliveryRatio() float64 {
	if o.Offered == 0 {
		return 0
	}
	return float64(o.Delivered) / float64(o.Offered)
}

// RetxRatio is retransmissions over all data frames sent: past 0.5 the
// majority of traffic is retries — the retry-storm regime the loss-aware
// shed exists to exit.
func (o ChaosOutcome) RetxRatio() float64 {
	if o.ARQ.DataSent == 0 {
		return 0
	}
	return float64(o.ARQ.Retransmits) / float64(o.ARQ.DataSent)
}

// RetryStorm reports whether retries dominated the trial's data traffic.
func (o ChaosOutcome) RetryStorm() bool { return o.RetxRatio() > 0.5 }

// ChaosRow aggregates one (profile, policy, arq) cell over trials.
type ChaosRow struct {
	Profile  string
	Policy   WidthPolicyKind
	Reliable bool
	// Delivery, TTRSec, PeakPartials and RetxRatio summarize the
	// per-trial fields of the same names (TTR in seconds).
	Delivery     stats.Summary
	TTRSec       stats.Summary
	PeakPartials stats.Summary
	RetxRatio    stats.Summary
	// Totals across trials.
	Offered      int64
	Delivered    int64
	Retransmits  int64
	Abandoned    int64
	BudgetShed   int64
	CapEvictions int64
	Overloads    int64
	// Recovered and Storms count trials that delivered after onset and
	// trials whose traffic was retry-dominated.
	Recovered int
	Storms    int
	// SoakViolations sums failed mid-run checkpoints; FirstViolation is
	// the earliest failure text across trials ("" when clean).
	SoakViolations int64
	FirstViolation string
	// Oracle is the conformance report merged over trials in trial order.
	Oracle *oracle.Report
}

// Label renders the row's configuration.
func (r ChaosRow) Label() string {
	mode := "arq"
	if !r.Reliable {
		mode = "bare"
	}
	return fmt.Sprintf("%s %s %s", r.Profile, r.Policy, mode)
}

// ChaosResult is the full sweep.
type ChaosResult struct {
	Config ChaosConfig
	Rows   []ChaosRow
}

// Chaos runs the sweep: profile x policy x {arq, bare} x trials.
func Chaos(cfg ChaosConfig) (ChaosResult, error) {
	if err := cfg.Validate(); err != nil {
		return ChaosResult{}, err
	}
	modes := []bool{true}
	if cfg.Baseline {
		modes = []bool{false, true}
	}
	src := xrand.NewSource(cfg.Seed).Child("chaos")
	type job struct {
		profile  chaos.Profile
		policy   WidthPolicyKind
		reliable bool
		src      *xrand.Source
	}
	var jobs []job
	for _, profile := range cfg.Profiles {
		for _, policy := range cfg.Policies {
			for _, reliable := range modes {
				for trial := 0; trial < cfg.Trials; trial++ {
					jobs = append(jobs, job{profile, policy, reliable,
						src.Child(profile.Name, string(policy), fmt.Sprint(reliable), fmt.Sprint(trial))})
				}
			}
		}
	}
	outs, err := runner.Map(len(jobs), cfg.Hooks.runnerOptions(cfg.Parallelism), func(i int) (ChaosOutcome, error) {
		return RunChaosTrial(cfg, jobs[i].profile, jobs[i].policy, jobs[i].reliable, jobs[i].src)
	})
	if err != nil {
		return ChaosResult{}, err
	}
	wrapped := make([]TrialOutcome, len(outs))
	for i := range outs {
		wrapped[i].Obs = outs[i].Obs
	}
	if err := foldTrialObs(cfg.Obs, wrapped, func(i int) string {
		return fmt.Sprintf("chaos %s", chaosLabel(jobs[i].profile.Name, jobs[i].policy, jobs[i].reliable))
	}); err != nil {
		return ChaosResult{}, err
	}

	res := ChaosResult{Config: cfg}
	type accs struct {
		row                  ChaosRow
		del, ttr, peak, retx stats.Accumulator
	}
	byRow := make(map[string]*accs)
	var order []string
	for i, out := range outs {
		j := jobs[i]
		k := chaosLabel(j.profile.Name, j.policy, j.reliable)
		a, ok := byRow[k]
		if !ok {
			a = &accs{row: ChaosRow{Profile: j.profile.Name, Policy: j.policy, Reliable: j.reliable}}
			byRow[k] = a
			order = append(order, k)
		}
		a.del.Add(out.DeliveryRatio())
		a.ttr.Add(out.TTR.Seconds())
		a.peak.Add(float64(out.PeakPartials))
		a.retx.Add(out.RetxRatio())
		a.row.Offered += out.Offered
		a.row.Delivered += out.Delivered
		a.row.Retransmits += out.ARQ.Retransmits
		a.row.Abandoned += out.ARQ.Abandoned
		a.row.BudgetShed += out.ARQ.BudgetShed
		a.row.CapEvictions += out.CapEvictions
		a.row.Overloads += out.Overloads
		if out.Recovered {
			a.row.Recovered++
		}
		if out.RetryStorm() {
			a.row.Storms++
		}
		a.row.SoakViolations += out.SoakViolations
		if a.row.FirstViolation == "" {
			a.row.FirstViolation = out.FirstViolation
		}
		if out.Oracle != nil {
			if a.row.Oracle == nil {
				a.row.Oracle = &oracle.Report{}
			}
			a.row.Oracle.Merge(*out.Oracle)
		}
	}
	for _, k := range order {
		a := byRow[k]
		a.row.Delivery = a.del.Summary()
		a.row.TTRSec = a.ttr.Summary()
		a.row.PeakPartials = a.peak.Summary()
		a.row.RetxRatio = a.retx.Summary()
		res.Rows = append(res.Rows, a.row)
	}
	return res, nil
}

func chaosLabel(profile string, p WidthPolicyKind, reliable bool) string {
	return fmt.Sprintf("profile=%s,policy=%s,arq=%t", profile, p, reliable)
}

// RunChaosTrial executes one trial of one (profile, policy, arq) cell.
func RunChaosTrial(cfg ChaosConfig, profile chaos.Profile, policy WidthPolicyKind, reliable bool, src *xrand.Source) (ChaosOutcome, error) {
	eng := sim.NewEngine()
	params := radio.DefaultParams()
	if cfg.Params != nil {
		params = *cfg.Params
	}
	// Channel damage must exist before the medium; the profile gates it
	// on its own onset so the pre-onset window stays clean.
	ch := profile.InstallChannel(&params, cfg.Duration, eng.Now, src)

	disk := radio.NewUnitDisk(cfg.Range)
	flaky := faults.NewFlakyTopology(disk)
	med := radio.NewMedium(eng, flaky, params, src.Stream("medium"))
	trialObs, tracer := newTrialObs(cfg.Obs)
	if tracer != nil {
		med.SetTracer(tracer)
	}

	// Every chaos cell runs under the omniscient audit: graceful
	// degradation is only graceful if it sheds load without ever
	// breaking conservation, misdelivering or reusing identifiers.
	affCfg := aff.Config{
		Space:             core.MustSpace(cfg.FixedBits),
		MTU:               params.MTU,
		Instrument:        true,
		ReassemblyTimeout: cfg.ReassemblyTimeout,
		MaxPartials:       cfg.MaxPartials,
	}
	if policy.adaptive() {
		affCfg.Space = core.MustSpace(cfg.MaxBits)
		affCfg.AdaptiveWidth = true
	}
	orc, err := oracle.New(oracle.Config{AFF: affCfg, Topo: flaky, Now: eng.Now})
	if err != nil {
		return ChaosOutcome{}, err
	}
	med.SetFrameObserver(orc)
	sp := newTrialSpan(cfg.Obs, trialObs, affCfg, eng.Now)
	if sp != nil {
		med.SetFateObserver(sp)
	}
	audit := func(id radio.NodeID) func(aff.Packet) {
		return func(p aff.Packet) { orc.VerifyDelivered(id, p) }
	}

	inj := faults.NewInjector(eng, cfg.Duration)
	inj.SetFlaky(flaky)
	inj.SetTracer(tracer)
	var churner *mobility.Churner
	if profile.Duty != nil {
		churner = mobility.NewChurner(eng, cfg.Duration)
		churner.SetDisk(disk)
		churner.SetTracer(tracer)
	}

	const sinkID radio.NodeID = 0
	dataBits := 8 * cfg.PacketSize
	var ctls []*adapt.Controller
	var drivers []*node.AFFDriver
	var radios []*radio.Radio
	build := func(id radio.NodeID, label string) (*node.AFFDriver, error) {
		r := med.MustAttach(id)
		radios = append(radios, r)
		est := density.NewPolicy(policy.estimatorPolicy(), 0, 0, eng.Now)
		sel, err := makeSelector(SelListening, affCfg.Space, src.Stream("sel", label), est.Window)
		if err != nil {
			return nil, err
		}
		opts := node.AFFOptions{
			Estimator:  est,
			ObserveOwn: true,
			Engine:     eng,
			OnDeliver:  audit(id),
		}
		if sp != nil {
			opts.Span = sp
		}
		if policy.adaptive() {
			actlCfg := adapt.Config{
				DataBits: dataBits,
				Min:      cfg.MinBits,
				Max:      cfg.MaxBits,
				Overload: cfg.Overload,
			}
			if sp != nil {
				nid := id
				actlCfg.OnChange = func(from, to int) { sp.NoteWidthChange(nid, from, to) }
			}
			ctl, err := adapt.New(actlCfg, est)
			if err != nil {
				return nil, err
			}
			ctls = append(ctls, ctl)
			opts.Width = ctl
		}
		d, err := node.NewAFF(r, affCfg, sel, opts)
		if err != nil {
			return nil, err
		}
		drivers = append(drivers, d)
		inj.Register(id, d)
		return d, nil
	}

	disk.Place(sinkID, radio.Point{X: cfg.Area.W / 2, Y: cfg.Area.H / 2})
	sinkDrv, err := build(sinkID, "sink")
	if err != nil {
		return ChaosOutcome{}, err
	}
	sinkCfg := cfg.ARQ
	sinkCfg.Reliable = false
	sinkCfg.Ack = reliable
	sinkEp, err := arq.NewEndpoint(eng, sinkDrv, uint32(sinkID), sinkCfg, src.Stream("arq", "sink"))
	if err != nil {
		return ChaosOutcome{}, err
	}
	if sp != nil {
		sinkEp.SetAttemptObserver(sp)
	}

	// Latency and recovery tracking at the sink, shared with the sender
	// workload closures below; all of it is trial-local state.
	type sendKey struct{ token, seq uint32 }
	sendAt := make(map[sendKey]time.Duration)
	var latencies []time.Duration

	var offered int64
	senderIDs := make([]radio.NodeID, 0, cfg.Senders)
	senderEps := make([]*arq.Endpoint, 0, cfg.Senders)
	for i := 1; i <= cfg.Senders; i++ {
		id := radio.NodeID(i)
		label := fmt.Sprint(i)
		if !profile.Waypoint {
			// Waypoint walkers place themselves; everyone else scatters
			// uniformly up front.
			pos := src.Stream("pos", label)
			disk.Place(id, radio.Point{X: pos.Float64() * cfg.Area.W, Y: pos.Float64() * cfg.Area.H})
		}
		d, err := build(id, label)
		if err != nil {
			return ChaosOutcome{}, err
		}
		if churner != nil {
			churner.Register(id, d)
		}
		senderIDs = append(senderIDs, id)
		epCfg := cfg.ARQ
		epCfg.Reliable = reliable
		epCfg.Ack = false
		ep, err := arq.NewEndpoint(eng, d, uint32(i), epCfg, src.Stream("arq", label))
		if err != nil {
			return ChaosOutcome{}, err
		}
		if sp != nil {
			ep.SetAttemptObserver(sp)
		}
		senderEps = append(senderEps, ep)

		// Periodic workload with deterministic jitter, scheduled up front.
		wl := src.Stream("wl", label)
		token := uint32(i)
		for t := cfg.Interval; t <= cfg.Duration; t += cfg.Interval {
			at := t + time.Duration(wl.Int64N(int64(cfg.Interval/4)))
			eng.ScheduleAt(at, func() {
				payload := make([]byte, cfg.PacketSize)
				for b := range payload {
					payload[b] = byte(wl.Uint32())
				}
				offered++
				if seq, err := ep.Send(payload); err == nil {
					sendAt[sendKey{token, seq}] = eng.Now()
				}
			})
		}
	}

	onset, err := profile.Apply(chaos.Deps{
		Engine:   eng,
		Disk:     disk,
		Injector: inj,
		Churner:  churner,
		Area:     cfg.Area,
		Horizon:  cfg.Duration,
		Sink:     sinkID,
		Senders:  senderIDs,
		Src:      src,
	})
	if err != nil {
		return ChaosOutcome{}, err
	}

	recovered := false
	var ttr time.Duration
	sinkEp.SetDeliver(func(token, seq uint32, _ []byte) {
		now := eng.Now()
		if t0, ok := sendAt[sendKey{token, seq}]; ok {
			latencies = append(latencies, now-t0)
		}
		if !recovered && now >= onset {
			recovered = true
			ttr = now - onset
		}
	})

	// Soak mode: audit the safety invariants mid-run so a long horizon
	// cannot hide a transient violation behind later counters.
	var soakViolations int64
	var firstViolation string
	if cfg.CheckpointEvery > 0 {
		for t := cfg.CheckpointEvery; t < cfg.Duration; t += cfg.CheckpointEvery {
			eng.ScheduleAt(t, func() {
				if err := orc.Report().Check(); err != nil {
					soakViolations++
					if firstViolation == "" {
						firstViolation = fmt.Sprintf("t=%v: %v", eng.Now(), err)
					}
				}
			})
		}
	}

	if cfg.ShardWindow > 0 {
		shard.DrainAdopted(eng, cfg.ShardWindow)
	} else {
		eng.Run()
	}

	out := ChaosOutcome{
		Offered:        offered,
		Delivered:      sinkEp.Counters().Delivered,
		Recovered:      recovered,
		Faults:         inj.Counters(),
		Radio:          med.Counters(),
		GEDrops:        ch.Drops(),
		CorruptFlips:   ch.Flips(),
		SoakViolations: soakViolations,
		FirstViolation: firstViolation,
	}
	if recovered {
		out.TTR = ttr
	} else {
		// Censor at the post-onset window: the sink never came back.
		out.TTR = cfg.Duration - onset
	}
	out.ARQ.Add(sinkEp.Counters())
	for _, ep := range senderEps {
		out.ARQ.Add(ep.Counters())
	}
	for _, d := range drivers {
		st := d.Reassembler().Stats()
		if st.PendingPeak > out.PeakPartials {
			out.PeakPartials = st.PendingPeak
		}
		out.CapEvictions += st.CapEvictions
	}
	for _, ctl := range ctls {
		out.Overloads += ctl.Overloads()
	}
	if churner != nil {
		out.Churn = churner.Counters()
	}
	rep := orc.Report()
	out.Oracle = &rep
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		var sum time.Duration
		for _, l := range latencies {
			sum += l
		}
		out.MeanLatency = sum / time.Duration(len(latencies))
		out.P95Latency = latencies[(len(latencies)*95)/100]
	}

	if trialObs != nil && trialObs.Metrics != nil {
		label := chaosLabel(profile.Name, policy, reliable)
		collectEngine(trialObs.Metrics, eng.Stats())
		collectARQ(trialObs.Metrics, label, out.ARQ)
		collectFaults(trialObs.Metrics, label, out.Faults, out.GEDrops, out.CorruptFlips, out.Radio)
		collectChaos(trialObs.Metrics, label, out)
		out.Oracle.SnapshotInto(trialObs.Metrics, label)
		for _, r := range radios {
			collectEnergy(trialObs.Metrics, r.ID(), r.Meter())
		}
	}
	out.Obs = trialObs
	return out, nil
}

// collectChaos records one trial's degradation-path counters: everything
// a post-mortem needs to see whether the caps and sheds engaged and how
// hard, beside the recovery gauges.
func collectChaos(reg *metrics.Registry, label string, out ChaosOutcome) {
	reg.Counter("chaos_cap_evictions_total", label).Add(out.CapEvictions)
	reg.Counter("chaos_overload_clamps_total", label).Add(out.Overloads)
	reg.Counter("chaos_soak_violations_total", label).Add(out.SoakViolations)
	reg.Counter("churn_joins_total", label).Add(out.Churn.Joins)
	reg.Counter("churn_leaves_total", label).Add(out.Churn.Leaves)
	reg.Counter("churn_sleeps_total", label).Add(out.Churn.Sleeps)
	reg.Counter("churn_wakes_total", label).Add(out.Churn.Wakes)
	reg.Gauge("chaos_peak_partials", label).SetMax(float64(out.PeakPartials))
	reg.Gauge("chaos_ttr_seconds", label).SetMax(out.TTR.Seconds())
	reg.Gauge("chaos_retx_ratio", label).SetMax(out.RetxRatio())
}

// Render renders the sweep as a table, one row per cell, plus the oracle
// conformance table every cell carries.
func (res ChaosResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Compound-fault chaos (%d senders, %v x %d trials, %d-byte packets every %v, cap %d)\n",
		res.Config.Senders, res.Config.Duration, res.Config.Trials,
		res.Config.PacketSize, res.Config.Interval, res.Config.MaxPartials)
	fmt.Fprintf(&b, "%-8s %-17s %-5s %18s %12s %6s %6s %7s %6s %6s %7s %7s\n",
		"profile", "policy", "mode", "delivery", "ttr s", "rec", "peak", "evict", "retx%", "shed", "clamps", "storms")
	for _, r := range res.Rows {
		mode := "arq"
		if !r.Reliable {
			mode = "bare"
		}
		fmt.Fprintf(&b, "%-8s %-17s %-5s %9.4f ± %.4f %12.2f %6d %6.1f %7d %6.1f %6d %7d %7d\n",
			r.Profile, r.Policy, mode,
			r.Delivery.Mean, r.Delivery.StdDev,
			r.TTRSec.Mean, r.Recovered, r.PeakPartials.Mean,
			r.CapEvictions, 100*r.RetxRatio.Mean,
			r.BudgetShed, r.Overloads, r.Storms)
	}
	fmt.Fprintf(&b, "\nOracle conformance (omniscient ground truth; every cell audited)\n")
	fmt.Fprintf(&b, "%-8s %-17s %-5s %9s %8s %9s %12s %6s\n",
		"profile", "policy", "mode", "audited", "collide", "abandoned", "violations", "soak")
	for _, r := range res.Rows {
		o := r.Oracle
		if o == nil {
			continue
		}
		mode := "arq"
		if !r.Reliable {
			mode = "bare"
		}
		fmt.Fprintf(&b, "%-8s %-17s %-5s %9d %8d %9d %12s %6d\n",
			r.Profile, r.Policy, mode,
			o.PacketsAudited, o.CollisionEvents, o.TransactionsAbandoned,
			fmt.Sprintf("%d/%d/%d", o.ConservationViolations, o.Misdeliveries, o.FreshnessViolations),
			r.SoakViolations)
	}
	for _, r := range res.Rows {
		if r.FirstViolation != "" {
			fmt.Fprintf(&b, "FIRST VIOLATION %s: %s\n", r.Label(), r.FirstViolation)
		}
	}
	return b.String()
}

// CSV renders the sweep for plotting: one record per cell.
func (res ChaosResult) CSV() string {
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	_ = w.Write([]string{"profile", "policy", "mode",
		"delivery_ratio", "delivery_stddev", "ttr_seconds", "ttr_stddev", "recovered",
		"peak_partials", "cap_evictions", "retx_ratio", "budget_shed", "overload_clamps",
		"retry_storms", "offered", "delivered", "retransmits", "abandoned",
		"oracle_violations", "soak_violations", "trials"})
	for _, r := range res.Rows {
		mode := "arq"
		if !r.Reliable {
			mode = "bare"
		}
		var violations int64
		if r.Oracle != nil {
			violations = r.Oracle.ConservationViolations + r.Oracle.Misdeliveries + r.Oracle.FreshnessViolations
		}
		_ = w.Write([]string{
			r.Profile, string(r.Policy), mode,
			formatFloat(r.Delivery.Mean), formatFloat(r.Delivery.StdDev),
			formatFloat(r.TTRSec.Mean), formatFloat(r.TTRSec.StdDev),
			strconv.Itoa(r.Recovered),
			formatFloat(r.PeakPartials.Mean), strconv.FormatInt(r.CapEvictions, 10),
			formatFloat(r.RetxRatio.Mean), strconv.FormatInt(r.BudgetShed, 10),
			strconv.FormatInt(r.Overloads, 10), strconv.Itoa(r.Storms),
			strconv.FormatInt(r.Offered, 10), strconv.FormatInt(r.Delivered, 10),
			strconv.FormatInt(r.Retransmits, 10), strconv.FormatInt(r.Abandoned, 10),
			strconv.FormatInt(violations, 10), strconv.FormatInt(r.SoakViolations, 10),
			strconv.Itoa(r.Delivery.N),
		})
	}
	w.Flush()
	return sb.String()
}
