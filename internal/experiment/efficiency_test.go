package experiment

import (
	"strings"
	"testing"
	"time"

	"retri/internal/energy"
)

func quickEfficiencyConfig(s Scheme) EfficiencyConfig {
	cfg := DefaultEfficiencyConfig(s)
	cfg.Duration = 15 * time.Second
	return cfg
}

func TestEfficiencyTrialBasics(t *testing.T) {
	out, err := RunEfficiencyTrial(quickEfficiencyConfig(AFFScheme(9, SelUniform)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.PacketsDelivered == 0 || out.UsefulBits == 0 {
		t.Fatalf("nothing delivered: %+v", out)
	}
	if out.OnAirBits <= out.ProtocolBits {
		t.Error("on-air bits should exceed protocol bits (MAC framing)")
	}
	if e := out.E(); e <= 0 || e >= 1 {
		t.Errorf("E = %v, want in (0,1)", e)
	}
	if out.EProtocol() <= out.E() {
		t.Error("protocol-only efficiency should exceed framed efficiency")
	}
	if out.Joules <= 0 {
		t.Errorf("Joules = %v", out.Joules)
	}
}

// TestAFFBeatsStaticAtSmallData is the paper's core claim measured end to
// end: with small packets and modest density, a 9-bit AFF pool delivers
// more useful bits per transmitted bit than 32-bit static addressing.
func TestAFFBeatsStaticOnProtocolBits(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	affOut, err := RunEfficiencyTrial(quickEfficiencyConfig(AFFScheme(9, SelUniform)), nil)
	if err != nil {
		t.Fatal(err)
	}
	stOut, err := RunEfficiencyTrial(quickEfficiencyConfig(StaticScheme(32)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if affOut.EProtocol() <= stOut.EProtocol() {
		t.Errorf("AFF 9-bit E=%.4f should beat static 32-bit E=%.4f",
			affOut.EProtocol(), stOut.EProtocol())
	}
}

func TestStaticDeliversEverythingItReceives(t *testing.T) {
	out, err := RunEfficiencyTrial(quickEfficiencyConfig(StaticScheme(16)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.PacketsDelivered == 0 {
		t.Fatal("static scheme delivered nothing")
	}
}

func TestEfficiencyUnknownScheme(t *testing.T) {
	cfg := quickEfficiencyConfig(Scheme{Kind: "carrier-pigeon", Bits: 8})
	if _, err := RunEfficiencyTrial(cfg, nil); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestSchemeLabels(t *testing.T) {
	if got := AFFScheme(9, SelListening).Label(); !strings.Contains(got, "9-bit") || !strings.Contains(got, "listening") {
		t.Errorf("AFF label = %q", got)
	}
	if got := StaticScheme(48).Label(); !strings.Contains(got, "48") {
		t.Errorf("static label = %q", got)
	}
	if AFFScheme(9, "").Selector != SelUniform {
		t.Error("empty selector should default to uniform")
	}
}

func TestAblationMACOverheadShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	base := quickEfficiencyConfig(Scheme{})
	base.Duration = 10 * time.Second
	// Few-bit sensor messages: one data fragment per packet under both
	// schemes, isolating the header-bits effect Section 4.4 describes.
	base.PacketSize = 2
	schemes := []Scheme{AFFScheme(9, SelUniform), StaticScheme(32)}
	profiles := []energy.MACProfile{energy.BareProfile(), energy.RPCProfile(), energy.IEEE80211Profile()}
	res, err := AblationMACOverhead(base, schemes, profiles)
	if err != nil {
		t.Fatal(err)
	}
	affLabel, stLabel := schemes[0].Label(), schemes[1].Label()

	// Under every profile both schemes produce some efficiency.
	for _, p := range profiles {
		for _, label := range []string{affLabel, stLabel} {
			if res.E[p.Name][label] <= 0 {
				t.Errorf("E[%s][%s] = %v", p.Name, label, res.E[p.Name][label])
			}
		}
	}
	// Section 4.4's claim: AFF's relative advantage shrinks as framing
	// overhead grows.
	advantage := func(profile string) float64 {
		return res.E[profile][affLabel] / res.E[profile][stLabel]
	}
	bare, rpc, wifi := advantage("bare"), advantage("rpc-like"), advantage("802.11-like")
	if !(bare > wifi) || !(rpc > wifi) {
		t.Errorf("AFF advantage should shrink under heavy MAC: bare=%.3f rpc=%.3f wifi=%.3f",
			bare, rpc, wifi)
	}
	out := res.Render()
	if !strings.Contains(out, "802.11-like") || !strings.Contains(out, affLabel) {
		t.Error("Render() missing rows/columns")
	}
}
